(* The nimble command-line interface.

   Sources are given as NAME=PATH options: CSV files become scan-only
   flat-file sources, XML files become path-capable XML stores, and .sql
   files (a list of SQL statements) are loaded into an in-memory
   relational source.  With no sources, a small built-in demo federation
   is used so every subcommand works out of the box.

     nimble query  'WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c>$n</c>'
     nimble explain '...'
     nimble repl --csv contacts=./contacts.csv
*)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Source loading                                                      *)
(* ------------------------------------------------------------------ *)

let split_spec spec =
  match String.index_opt spec '=' with
  | Some i ->
    (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
  | None -> failwith (Printf.sprintf "source spec %S is not NAME=PATH" spec)

let load_csv_source spec =
  let name, path = split_spec spec in
  let base = Filename.remove_extension (Filename.basename path) in
  Csv_source.make ~name [ (base, read_file path) ]

let load_xml_source spec =
  let name, path = split_spec spec in
  let base = Filename.remove_extension (Filename.basename path) in
  Xml_source.of_xml_strings ~name [ (base, read_file path) ]

let load_sql_source spec =
  let name, path = split_spec spec in
  let db = Rel_db.create ~name () in
  let text = read_file path in
  (* Statements separated by ';'. *)
  List.iter
    (fun stmt ->
      let stmt = String.trim stmt in
      if stmt <> "" then ignore (Rel_db.exec db stmt))
    (String.split_on_char ';' text);
  Rel_source.make db

let demo_federation () =
  let db = Rel_db.create ~name:"crm" () in
  List.iter
    (fun s -> ignore (Rel_db.exec db s))
    [
      "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, region TEXT, tier INT)";
      "CREATE TABLE orders (oid INT PRIMARY KEY, cust_id INT, item TEXT, amount FLOAT)";
      "INSERT INTO customers VALUES (1, 'Acme', 'west', 1), (2, 'Globex', 'east', 2), \
       (3, 'Initech', 'west', 2)";
      "INSERT INTO orders VALUES (100, 1, 'widget', 250.0), (101, 2, 'server', 9000.0), \
       (102, 3, 'widget', 120.0)";
    ];
  let products =
    Xml_source.of_xml_strings ~name:"products"
      [
        ( "catalog",
          {|<catalog><product sku="widget"><price>25</price></product>
            <product sku="server"><price>4500</price></product></catalog>|} );
      ]
  in
  [ Rel_source.make db; products ]

(* --fetch-mode/--fetch-fanout/--frag-cache plus the resilience knobs
   (--retry/--retry-deadline/--breaker/--flaky), collected into one
   value so every subcommand threads them identically. *)
let apply_fetch sys (mode, fanout, frag_capacity, sem_budget, retries, deadline, breaker, _flaky)
    =
  (match Fetch_sched.mode_of_string mode with
  | Some m -> Nimble.set_fetch_options sys { Fetch_sched.mode = m; fanout = max 1 fanout }
  | None -> failwith (Printf.sprintf "unknown fetch mode %S (seq, gather)" mode));
  if frag_capacity > 0 then Nimble.configure_frag_cache sys ~capacity:frag_capacity ();
  if sem_budget > 0 then Nimble.configure_sem_cache sys ~budget_bytes:sem_budget ();
  if retries < 0 then failwith "--retry must be non-negative";
  if deadline < 0.0 then failwith "--retry-deadline must be non-negative";
  let breaker =
    match breaker with
    | "on" -> true
    | "off" -> false
    | s -> failwith (Printf.sprintf "unknown breaker mode %S (on, off)" s)
  in
  Nimble.set_retry_policy sys
    {
      Src_retry.default_policy with
      max_retries = retries;
      call_deadline_ms = (if deadline > 0.0 then Some deadline else None);
      breaker;
    }

(* --flaky NAME=SPEC[,SPEC...]: wrap an already-registered source in a
   deterministic fault schedule (windows in virtual ms). *)
let parse_fault spec =
  let f s =
    match float_of_string_opt s with
    | Some v -> v
    | None -> failwith (Printf.sprintf "bad fault window number %S" s)
  in
  match String.split_on_char ':' spec with
  | [ "down" ] -> Net_sim.persistently_offline
  | [ "off"; a; b ] -> Net_sim.offline_window ~from_ms:(f a) ~until_ms:(f b)
  | [ "slow"; a; b; x ] ->
    Net_sim.slow_window ~from_ms:(f a) ~until_ms:(f b) ~factor:(f x) ()
  | [ "mid"; a; b; p ] -> (
    match int_of_string_opt p with
    | Some prefix -> Net_sim.midstream_window ~from_ms:(f a) ~until_ms:(f b) ~prefix
    | None -> failwith (Printf.sprintf "bad mid-stream prefix %S" p))
  | _ ->
    failwith
      (Printf.sprintf
         "bad fault spec %S (down, off:FROM:UNTIL, slow:FROM:UNTIL:FACTOR, \
          mid:FROM:UNTIL:PREFIX)"
         spec)

let apply_flaky sys spec =
  match String.index_opt spec '=' with
  | None -> failwith (Printf.sprintf "--flaky %S: expected NAME=SPEC[,SPEC...]" spec)
  | Some i ->
    let name = String.sub spec 0 i in
    let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
    let faults =
      String.split_on_char ',' rest
      |> List.filter (fun s -> s <> "")
      |> List.map parse_fault
    in
    let reg = Med_catalog.registry (Nimble.catalog sys) in
    (match Src_registry.find reg name with
    | None -> failwith (Printf.sprintf "--flaky: unknown source %S" name)
    | Some src ->
      let wrapped, _stats = Net_sim.wrap ~seed:7 ~faults Net_sim.default_profile src in
      Src_registry.remove reg name;
      Src_registry.register reg wrapped)

(* --exec-mode/--chunk-size/--parallel/--optimize/--index: tuple-,
   batch- or morsel-driven parallel plan evaluation, the join-order
   strategy, and the path/value index mode.  --parallel N (N > 0)
   overrides the mode. *)
let apply_exec sys (mode, chunk, par, omode, imode) =
  if chunk <= 0 then failwith "chunk size must be positive";
  if par < 0 then failwith "parallelism must be non-negative";
  (match Med_optimize.mode_of_string omode with
  | Some m -> Nimble.set_optimizer sys m
  | None -> failwith (Printf.sprintf "unknown optimizer mode %S (greedy, dp, dp:N)" omode));
  (match Idx_manager.mode_of_string imode with
  | Ok m -> Nimble.set_index_mode sys m
  | Error m -> failwith m);
  if par > 0 then Nimble.set_exec_mode sys (Alg_batch.Parallel { domains = par; chunk })
  else
    match Alg_batch.mode_of_string mode with
    | Some Alg_batch.Tuple -> Nimble.set_exec_mode sys Alg_batch.Tuple
    | Some (Alg_batch.Batch _) -> Nimble.set_exec_mode sys (Alg_batch.Batch { chunk })
    | Some (Alg_batch.Parallel { domains; _ }) ->
      Nimble.set_exec_mode sys (Alg_batch.Parallel { domains; chunk })
    | None ->
      failwith (Printf.sprintf "unknown exec mode %S (tuple, batch, parallel)" mode)

let build_system csvs xmls sqls fetch exec =
  let sys = Nimble.create () in
  apply_fetch sys fetch;
  apply_exec sys exec;
  let sources =
    List.map load_csv_source csvs
    @ List.map load_xml_source xmls
    @ List.map load_sql_source sqls
  in
  let sources = if sources = [] then demo_federation () else sources in
  List.iter
    (fun src ->
      match Nimble.register_source sys src with
      | Ok () -> ()
      | Error m -> failwith m)
    sources;
  (let _, _, _, _, _, _, _, flaky = fetch in
   List.iter (apply_flaky sys) flaky);
  sys

(* ------------------------------------------------------------------ *)
(* Subcommand bodies                                                   *)
(* ------------------------------------------------------------------ *)

let device_of_flag s =
  match Fe_format.device_of_string s with
  | Some d -> d
  | None -> failwith (Printf.sprintf "unknown device %S (web, wireless, text, xml)" s)

(* Setup failures (bad flags, unreadable files, malformed source data)
   become clean CLI errors rather than uncaught exceptions. *)
let with_setup f =
  try f () with
  | Failure m -> `Error (false, m)
  | Sys_error m -> `Error (false, m)
  | Xml_parser.Parse_error e -> `Error (false, Xml_parser.error_to_string e)
  | Rel_db.Sql_error m -> `Error (false, m)

let run_query csvs xmls sqls fetch exec partial device text =
  with_setup @@ fun () ->
  let sys = build_system csvs xmls sqls fetch exec in
  let device = device_of_flag device in
  if partial then begin
    match Nimble.query_partial_ex sys text with
    | Ok (trees, skipped, stale) ->
      print_endline (Fe_format.render device trees);
      if skipped <> [] then
        Printf.printf "-- incomplete: sources unavailable: %s\n" (String.concat ", " skipped);
      if stale <> [] then
        Printf.printf "-- stale: served cached extents for: %s\n" (String.concat ", " stale);
      `Ok ()
    | Error m -> `Error (false, m)
  end
  else begin
    match Nimble.query_formatted sys ~device text with
    | Ok rendered ->
      print_endline rendered;
      `Ok ()
    | Error m -> `Error (false, m)
  end

let run_explain csvs xmls sqls fetch exec text =
  with_setup @@ fun () ->
  let sys = build_system csvs xmls sqls fetch exec in
  match Nimble.explain sys text with
  | Ok plan ->
    print_string plan;
    `Ok ()
  | Error m -> `Error (false, m)

let run_report csvs xmls sqls fetch exec =
  with_setup @@ fun () ->
  let sys = build_system csvs xmls sqls fetch exec in
  print_string (Nimble.report sys);
  `Ok ()

let run_explain_analyze csvs xmls sqls fetch exec repeat text =
  with_setup @@ fun () ->
  let sys = build_system csvs xmls sqls fetch exec in
  match Nimble.explain_analyze sys ~repeat text with
  | Ok report ->
    print_string report;
    `Ok ()
  | Error m -> `Error (false, m)

(* Run the queries (warming counters, caches and the feedback store),
   then print the metrics registry and the per-source breakdown. *)
let run_stats csvs xmls sqls fetch exec texts =
  with_setup @@ fun () ->
  let sys = build_system csvs xmls sqls fetch exec in
  let rec go = function
    | [] ->
      print_string (Nimble.stats_report sys);
      `Ok ()
    | text :: rest -> (
      match Nimble.query sys text with
      | Ok _ -> go rest
      | Error m -> `Error (false, m))
  in
  go texts

let run_trace csvs xmls sqls fetch exec text =
  with_setup @@ fun () ->
  let sys = build_system csvs xmls sqls fetch exec in
  Nimble.set_tracing true;
  match Nimble.query sys text with
  | Ok _ ->
    print_string (Nimble.trace_report sys);
    `Ok ()
  | Error m -> `Error (false, m)

(* The concurrency server, driven by a request script (see Srv_script
   for the directive set).  Scripts against the built-in demo
   federation start with [demo] to install its users and lenses. *)
let run_serve csvs xmls sqls fetch exec path =
  with_setup @@ fun () ->
  let sys = build_system csvs xmls sqls fetch exec in
  let env = Srv_script.create ~print:print_endline sys in
  match Srv_script.run env (read_file path) with
  | Ok () -> `Ok ()
  | Error m -> `Error (false, m)

(* ------------------------------------------------------------------ *)
(* REPL                                                                *)
(* ------------------------------------------------------------------ *)

let repl_help =
  {|commands:
  \help                       this message
  \report                     system status
  \exports                    addressable source exports
  \define NAME := QUERY       define a mediated schema
  \materialize NAME           materialize a view (manual refresh)
  \refresh NAME               refresh a materialized view
  \explain QUERY              show the physical plan
  \analyze QUERY              run instrumented: est vs actual rows, timings
  \analyze                    collect per-source statistics (rows, histograms)
  \stats                      metrics registry and per-source breakdown
  \trace QUERY                run with tracing on and print the span tree
  \partial QUERY              run in partial-results mode
  \fetch                      show fetch mode and fragment-cache state
  \fetch seq|gather [FANOUT]  switch source fetching (gather = overlapped rounds)
  \fetch cache N              enable a fragment result cache of N entries
  \sem                        show the semantic fragment cache state
  \sem budget BYTES           (re)budget the semantic cache (0 = off)
  \retry                      show the retry/breaker policy and breaker states
  \retry N                    retry failed source calls up to N times
  \retry deadline MS          per-call retry budget in virtual ms (0 = none)
  \retry breaker on|off       per-source circuit breakers
  \retry stale on|off         partial mode may serve stale cached fragments
  \exec                       show the plan execution engine
  \exec tuple|batch [CHUNK]   switch engines (batch = vectorized, CHUNK rows/step)
  \par [DOMAINS]              switch to morsel-driven parallel execution
  \optimize                   show the join-order strategy
  \optimize greedy|dp[:N]     switch optimizers (dp = cost-based DPsize)
  \index                      show path/value index registrations
  \index off|auto|eager       switch the index mode
  \index build VIEW           force-build a view's structural guide
  \save FILE                  write views/materializations as a script
  \load FILE                  replay a saved script
  \serve FILE                 run a concurrency-server request script
  \quit                       exit
anything else is run as an XML-QL query (end with ';' to span lines)|}

let read_statement () =
  (* Accumulate lines until one ends with ';' or the first line is a
     backslash-command. *)
  let rec go acc =
    match In_channel.input_line stdin with
    | None -> None
    | Some line ->
      let line = String.trim line in
      if acc = "" && (line = "" || line.[0] = '\\') then Some line
      else begin
        let acc = if acc = "" then line else acc ^ " " ^ line in
        if String.length acc > 0 && acc.[String.length acc - 1] = ';' then
          Some (String.sub acc 0 (String.length acc - 1))
        else if acc = "" then Some ""
        else go acc
      end
  in
  go ""

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let run_repl csvs xmls sqls fetch exec =
  with_setup @@ fun () ->
  let sys = build_system csvs xmls sqls fetch exec in
  Printf.printf "nimble repl — %d source(s) registered, \\help for commands\n"
    (List.length (Med_catalog.source_names (Nimble.catalog sys)));
  let rec loop () =
    print_string "nimble> ";
    flush stdout;
    match read_statement () with
    | None -> ()
    | Some "" -> loop ()
    | Some "\\quit" -> ()
    | Some "\\help" ->
      print_endline repl_help;
      loop ()
    | Some "\\report" ->
      print_string (Nimble.report sys);
      loop ()
    | Some "\\exports" ->
      List.iter print_endline (Src_registry.exports (Med_catalog.registry (Nimble.catalog sys)));
      loop ()
    | Some line when starts_with "\\define " line -> (
      let rest = String.sub line 8 (String.length line - 8) in
      match String.index_opt rest ':' with
      | Some i when i + 1 < String.length rest && rest.[i + 1] = '=' ->
        let vname = String.trim (String.sub rest 0 i) in
        let body = String.trim (String.sub rest (i + 2) (String.length rest - i - 2)) in
        (match Nimble.define_view sys vname body with
        | Ok () -> Printf.printf "defined view %s\n" vname
        | Error m -> Printf.printf "error: %s\n" m);
        loop ()
      | _ ->
        print_endline "usage: \\define NAME := QUERY";
        loop ())
    | Some line when starts_with "\\materialize " line ->
      let vname = String.trim (String.sub line 13 (String.length line - 13)) in
      (match Nimble.materialize_view sys vname with
      | Ok () -> Printf.printf "materialized %s\n" vname
      | Error m -> Printf.printf "error: %s\n" m);
      loop ()
    | Some line when starts_with "\\refresh " line ->
      let vname = String.trim (String.sub line 9 (String.length line - 9)) in
      (match Nimble.refresh_view sys vname with
      | Ok () -> Printf.printf "refreshed %s\n" vname
      | Error m -> Printf.printf "error: %s\n" m);
      loop ()
    | Some line when starts_with "\\save " line ->
      let path = String.trim (String.sub line 6 (String.length line - 6)) in
      (try
         Out_channel.with_open_text path (fun oc ->
             Out_channel.output_string oc (Nimble.save_config sys));
         Printf.printf "saved configuration to %s\n" path
       with Sys_error m -> Printf.printf "error: %s\n" m);
      loop ()
    | Some line when starts_with "\\load " line ->
      let path = String.trim (String.sub line 6 (String.length line - 6)) in
      (try
         let script = read_file path in
         match Nimble.load_config sys script with
         | Ok () -> Printf.printf "loaded %s\n" path
         | Error m -> Printf.printf "error: %s\n" m
       with Sys_error m -> Printf.printf "error: %s\n" m);
      loop ()
    | Some line when starts_with "\\serve " line ->
      let path = String.trim (String.sub line 7 (String.length line - 7)) in
      (try
         let script = read_file path in
         let env = Srv_script.create ~print:print_endline sys in
         match Srv_script.run env script with
         | Ok () -> ()
         | Error m -> Printf.printf "error: %s\n" m
       with Sys_error m -> Printf.printf "error: %s\n" m);
      loop ()
    | Some line when starts_with "\\explain " line ->
      let text = String.sub line 9 (String.length line - 9) in
      (match Nimble.explain sys text with
      | Ok plan -> print_string plan
      | Error m -> Printf.printf "error: %s\n" m);
      loop ()
    | Some "\\analyze" ->
      (match Nimble.analyze_stats sys with
      | Ok report -> print_string report
      | Error m -> Printf.printf "error: %s\n" m);
      loop ()
    | Some line when starts_with "\\analyze " line ->
      let text = String.sub line 9 (String.length line - 9) in
      (match Nimble.explain_analyze sys text with
      | Ok report -> print_string report
      | Error m -> Printf.printf "error: %s\n" m);
      loop ()
    | Some "\\optimize" ->
      print_string (Nimble.optimizer_report sys);
      loop ()
    | Some line when starts_with "\\optimize " line ->
      (let arg = String.trim (String.sub line 10 (String.length line - 10)) in
       match Med_optimize.mode_of_string arg with
       | Some m ->
         Nimble.set_optimizer sys m;
         print_string (Nimble.optimizer_report sys)
       | None -> print_endline "usage: \\optimize greedy|dp[:N]");
      loop ()
    | Some "\\stats" ->
      print_string (Nimble.stats_report sys);
      loop ()
    | Some line when starts_with "\\trace " line ->
      let text = String.sub line 7 (String.length line - 7) in
      Nimble.set_tracing true;
      (match Nimble.query sys text with
      | Ok _ -> print_string (Nimble.trace_report sys)
      | Error m -> Printf.printf "error: %s\n" m);
      loop ()
    | Some "\\fetch" ->
      print_string (Nimble.fetch_report sys);
      loop ()
    | Some line when starts_with "\\fetch " line ->
      (let args =
         String.split_on_char ' ' (String.trim (String.sub line 7 (String.length line - 7)))
         |> List.filter (fun s -> s <> "")
       in
       match args with
       | [ "cache"; n ] -> (
         match int_of_string_opt n with
         | Some capacity when capacity >= 0 ->
           Nimble.configure_frag_cache sys ~capacity ();
           print_string (Nimble.fetch_report sys)
         | _ -> print_endline "usage: \\fetch cache N")
       | mode :: rest -> (
         match (Fetch_sched.mode_of_string mode, rest) with
         | Some m, [] ->
           Nimble.set_fetch_options sys
             { (Nimble.fetch_options sys) with Fetch_sched.mode = m };
           print_string (Nimble.fetch_report sys)
         | Some m, [ n ] -> (
           match int_of_string_opt n with
           | Some fanout when fanout > 0 ->
             Nimble.set_fetch_options sys { Fetch_sched.mode = m; fanout };
             print_string (Nimble.fetch_report sys)
           | _ -> print_endline "usage: \\fetch seq|gather [FANOUT]")
         | _ -> print_endline "usage: \\fetch seq|gather [FANOUT] | \\fetch cache N")
       | [] -> print_string (Nimble.fetch_report sys));
      loop ()
    | Some "\\sem" ->
      print_string (Nimble.sem_report sys);
      loop ()
    | Some line when starts_with "\\sem " line ->
      (let args =
         String.split_on_char ' ' (String.trim (String.sub line 5 (String.length line - 5)))
         |> List.filter (fun s -> s <> "")
       in
       match args with
       | [ "budget"; n ] -> (
         match int_of_string_opt n with
         | Some budget_bytes when budget_bytes >= 0 ->
           Nimble.configure_sem_cache sys ~budget_bytes ();
           print_string (Nimble.sem_report sys)
         | _ -> print_endline "usage: \\sem budget BYTES")
       | [] -> print_string (Nimble.sem_report sys)
       | _ -> print_endline "usage: \\sem | \\sem budget BYTES");
      loop ()
    | Some "\\retry" ->
      print_string (Nimble.retry_report sys);
      loop ()
    | Some line when starts_with "\\retry " line ->
      (let args =
         String.split_on_char ' ' (String.trim (String.sub line 7 (String.length line - 7)))
         |> List.filter (fun s -> s <> "")
       in
       let pol = Nimble.retry_policy sys in
       let set p =
         Nimble.set_retry_policy sys p;
         print_string (Nimble.retry_report sys)
       in
       match args with
       | [ n ] when int_of_string_opt n <> None -> (
         match int_of_string_opt n with
         | Some retries when retries >= 0 ->
           set { pol with Src_retry.max_retries = retries }
         | _ -> print_endline "usage: \\retry N")
       | [ "deadline"; ms ] -> (
         match float_of_string_opt ms with
         | Some d when d >= 0.0 ->
           set
             {
               pol with
               Src_retry.call_deadline_ms = (if d > 0.0 then Some d else None);
             }
         | _ -> print_endline "usage: \\retry deadline MS")
       | [ "breaker"; ("on" | "off") as v ] ->
         set { pol with Src_retry.breaker = v = "on" }
       | [ "stale"; ("on" | "off") as v ] ->
         set { pol with Src_retry.serve_stale = v = "on" }
       | _ ->
         print_endline
           "usage: \\retry | \\retry N | \\retry deadline MS | \\retry breaker \
            on|off | \\retry stale on|off");
      loop ()
    | Some "\\exec" ->
      print_string (Nimble.exec_report sys);
      loop ()
    | Some line when starts_with "\\exec " line ->
      (let args =
         String.split_on_char ' ' (String.trim (String.sub line 6 (String.length line - 6)))
         |> List.filter (fun s -> s <> "")
       in
       match args with
       | [ "tuple" ] ->
         Nimble.set_exec_mode sys Alg_batch.Tuple;
         print_string (Nimble.exec_report sys)
       | [ "batch" ] ->
         Nimble.set_exec_mode sys (Alg_batch.Batch { chunk = Alg_batch.default_chunk });
         print_string (Nimble.exec_report sys)
       | [ "batch"; n ] -> (
         match int_of_string_opt n with
         | Some chunk when chunk > 0 ->
           Nimble.set_exec_mode sys (Alg_batch.Batch { chunk });
           print_string (Nimble.exec_report sys)
         | _ -> print_endline "usage: \\exec tuple|batch [CHUNK]")
       | [ "parallel" ] ->
         Nimble.set_exec_mode sys
           (Alg_batch.Parallel
              { domains = Alg_par.default_domains (); chunk = Alg_batch.default_chunk });
         print_string (Nimble.exec_report sys)
       | [ "parallel"; n ] -> (
         match int_of_string_opt n with
         | Some domains when domains > 0 ->
           Nimble.set_exec_mode sys
             (Alg_batch.Parallel { domains; chunk = Alg_batch.default_chunk });
           print_string (Nimble.exec_report sys)
         | _ -> print_endline "usage: \\exec tuple|batch [CHUNK] | \\exec parallel [DOMAINS]")
       | _ -> print_endline "usage: \\exec tuple|batch [CHUNK] | \\exec parallel [DOMAINS]");
      loop ()
    | Some "\\index" ->
      print_string (Nimble.index_report sys);
      loop ()
    | Some line when starts_with "\\index " line ->
      (let args =
         String.split_on_char ' ' (String.trim (String.sub line 7 (String.length line - 7)))
         |> List.filter (fun s -> s <> "")
       in
       match args with
       | [ ("off" | "auto" | "eager") as m ] ->
         (match Idx_manager.mode_of_string m with
         | Ok mode -> Nimble.set_index_mode sys mode
         | Error e -> print_endline e);
         print_string (Nimble.index_report sys)
       | [ "build"; name ] -> (
         match Nimble.build_index sys name with
         | Ok msg -> print_string msg
         | Error m -> Printf.printf "error: %s\n" m)
       | _ -> print_endline "usage: \\index | \\index off|auto|eager | \\index build VIEW");
      loop ()
    | Some "\\par" ->
      Nimble.set_exec_mode sys
        (Alg_batch.Parallel
           { domains = Alg_par.default_domains (); chunk = Alg_batch.default_chunk });
      print_string (Nimble.exec_report sys);
      loop ()
    | Some line when starts_with "\\par " line ->
      (let arg = String.trim (String.sub line 5 (String.length line - 5)) in
       match int_of_string_opt arg with
       | Some domains when domains > 0 ->
         Nimble.set_exec_mode sys
           (Alg_batch.Parallel { domains; chunk = Alg_batch.default_chunk });
         print_string (Nimble.exec_report sys)
       | _ -> print_endline "usage: \\par [DOMAINS]");
      loop ()
    | Some line when starts_with "\\partial " line ->
      let text = String.sub line 9 (String.length line - 9) in
      (match Nimble.query_partial_ex sys text with
      | Ok (trees, skipped, stale) ->
        print_string (Fe_format.render Fe_format.Text trees);
        if skipped <> [] then
          Printf.printf "-- incomplete: %s unavailable\n" (String.concat ", " skipped);
        if stale <> [] then
          Printf.printf "-- stale: %s served from cache\n" (String.concat ", " stale)
      | Error m -> Printf.printf "error: %s\n" m);
      loop ()
    | Some line when starts_with "\\" line ->
      Printf.printf "unknown command %s (try \\help)\n" line;
      loop ()
    | Some text ->
      (match Nimble.query sys text with
      | Ok trees -> print_string (Fe_format.render Fe_format.Text trees)
      | Error m -> Printf.printf "error: %s\n" m);
      loop ()
  in
  loop ();
  `Ok ()

(* ------------------------------------------------------------------ *)
(* Cmdliner wiring                                                     *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let csv_opt =
  Arg.(value & opt_all string [] & info [ "csv" ] ~docv:"NAME=PATH" ~doc:"Register a CSV flat-file source.")

let xml_opt =
  Arg.(value & opt_all string [] & info [ "xml" ] ~docv:"NAME=PATH" ~doc:"Register an XML document source.")

let sql_opt =
  Arg.(value & opt_all string [] & info [ "sql" ] ~docv:"NAME=PATH" ~doc:"Load a .sql script into an in-memory relational source.")

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"XML-QL query text.")

let partial_flag =
  Arg.(value & flag & info [ "partial" ] ~doc:"Partial-results mode: skip unavailable sources and annotate.")

let device_opt =
  Arg.(value & opt string "text" & info [ "device" ] ~docv:"DEVICE" ~doc:"Output device: web, wireless, text or xml.")

let fetch_mode_opt =
  Arg.(
    value & opt string "seq"
    & info [ "fetch-mode" ] ~docv:"MODE"
        ~doc:
          "Source fetch scheduling: $(b,seq) (one access at a time) or \
           $(b,gather) (scatter-gather rounds of --fetch-fanout overlapped \
           accesses, with per-source batching and dedup).")

let fetch_fanout_opt =
  Arg.(
    value & opt int Fetch_sched.default_fanout
    & info [ "fetch-fanout" ] ~docv:"K"
        ~doc:"Accesses per scatter-gather round (gather mode only).")

let frag_cache_opt =
  Arg.(
    value & opt int 0
    & info [ "frag-cache" ] ~docv:"N"
        ~doc:
          "Enable a fragment-level source result cache of N entries (0 \
           disables; sits below the whole-query result cache).")

let sem_cache_opt =
  Arg.(
    value & opt int 0
    & info [ "sem-cache" ] ~docv:"BYTES"
        ~doc:
          "Enable the semantic fragment cache with a budget of $(docv) \
           bytes (0 disables).  Cached extents answer repeated source \
           fragments whose predicate is contained in a cached one \
           without contacting the source, and overlapping predicates \
           ship only the remainder.")

let retry_opt =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "Retry transiently unavailable source calls up to $(docv) \
           times with capped exponential backoff and seeded jitter, \
           charged to the virtual clock (0, the default, disables \
           retries).")

let retry_deadline_opt =
  Arg.(
    value & opt float 0.0
    & info [ "retry-deadline" ] ~docv:"MS"
        ~doc:
          "Per-call retry budget in virtual milliseconds: a retry whose \
           backoff would overshoot the budget gives up instead (0 \
           disables the deadline).")

let breaker_opt =
  Arg.(
    value & opt string "off"
    & info [ "breaker" ] ~docv:"on|off"
        ~doc:
          "Per-source circuit breakers: after consecutive failures the \
           breaker opens and calls fail fast (no latency paid) until a \
           cool-down admits a half-open probe.")

let flaky_opt =
  Arg.(
    value & opt_all string []
    & info [ "flaky" ] ~docv:"NAME=SPEC"
        ~doc:
          "Deterministic fault injection: wrap the registered source \
           $(b,NAME) in a seeded fault schedule.  SPECs (comma-separable) \
           are $(b,down) (persistently offline), $(b,off:FROM:UNTIL) \
           (transient offline window in virtual ms), \
           $(b,slow:FROM:UNTIL:FACTOR) (latency multiplier window) and \
           $(b,mid:FROM:UNTIL:PREFIX) (ship PREFIX tuples, then die).")

let fetch_term =
  Term.(
    const (fun mode fanout frag sem retries deadline breaker flaky ->
        (mode, fanout, frag, sem, retries, deadline, breaker, flaky))
    $ fetch_mode_opt $ fetch_fanout_opt $ frag_cache_opt $ sem_cache_opt
    $ retry_opt $ retry_deadline_opt $ breaker_opt $ flaky_opt)

let exec_mode_opt =
  Arg.(
    value & opt string "tuple"
    & info [ "exec-mode" ] ~docv:"MODE"
        ~doc:
          "Plan evaluation engine: $(b,tuple) (one row at a time, the \
           default), $(b,batch) (vectorized batch-at-a-time execution \
           moving --chunk-size rows per step; same answers, less \
           per-row overhead) or $(b,parallel) (morsel-driven multicore \
           execution on a domain pool; same answers again).")

let chunk_size_opt =
  Arg.(
    value & opt int Alg_batch.default_chunk
    & info [ "chunk-size" ] ~docv:"N"
        ~doc:
          "Rows per chunk in batch execution mode, and the morsel size \
           in parallel mode (default 1024).")

let parallel_opt =
  Arg.(
    value & opt int 0
    & info [ "parallel" ] ~docv:"N"
        ~doc:
          "Run plans on the morsel-driven parallel engine with $(docv) \
           domains (the calling domain included), overriding --exec-mode; \
           0 (the default) leaves --exec-mode in charge.")

let optimize_opt =
  Arg.(
    value & opt string "greedy"
    & info [ "optimize" ] ~docv:"MODE"
        ~doc:
          "Join-order strategy: $(b,greedy) (connected cheapest-next \
           walk, the default) or $(b,dp) (DPsize dynamic-programming \
           enumeration over the statistics catalog and network \
           profiles, converting large fragments to bind joins; \
           $(b,dp:N) caps enumeration at N relations, falling back to \
           greedy past it).  Answers are identical in both modes.")

let index_opt =
  Arg.(
    value & opt string "auto"
    & info [ "index" ] ~docv:"MODE"
        ~doc:
          "Path/value index mode: $(b,auto) (build structural guides on \
           first probe, the default), $(b,eager) (build them when a view \
           materializes or a document registers) or $(b,off) (always walk \
           trees).  Answers are identical in all modes.")

let exec_term =
  Term.(
    const (fun mode chunk par omode imode -> (mode, chunk, par, omode, imode))
    $ exec_mode_opt $ chunk_size_opt $ parallel_opt $ optimize_opt $ index_opt)

let wrap f = Term.(ret (const f))

let query_cmd =
  Cmd.v
    (Cmd.info "query" ~doc:"Run an XML-QL query against the registered sources")
    Term.(
      ret (const run_query $ csv_opt $ xml_opt $ sql_opt $ fetch_term $ exec_term $ partial_flag $ device_opt $ query_arg))

let explain_cmd =
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the physical plan and pushed fragments for a query")
    Term.(ret (const run_explain $ csv_opt $ xml_opt $ sql_opt $ fetch_term $ exec_term $ query_arg))

let repeat_opt =
  Arg.(
    value & opt int 1
    & info [ "repeat" ] ~docv:"N"
        ~doc:
          "Run the query N times; each run feeds observed cardinalities back \
           into the planner, so later runs show estimates converging on \
           measured row counts.")

let queries_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"QUERY" ~doc:"XML-QL query text (one or more).")

let explain_analyze_cmd =
  Cmd.v
    (Cmd.info "explain-analyze"
       ~doc:
         "Execute a query instrumented: per-operator estimated vs actual rows \
          and time, and a per-source-fragment table")
    Term.(
      ret (const run_explain_analyze $ csv_opt $ xml_opt $ sql_opt $ fetch_term $ exec_term $ repeat_opt $ query_arg))

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the given queries, then print the metrics registry and the \
          per-source breakdown")
    Term.(ret (const run_stats $ csv_opt $ xml_opt $ sql_opt $ fetch_term $ exec_term $ queries_arg))

let trace_cmd =
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a query with the trace sink enabled and print the span tree")
    Term.(ret (const run_trace $ csv_opt $ xml_opt $ sql_opt $ fetch_term $ exec_term $ query_arg))

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"Print the system status report")
    Term.(ret (const run_report $ csv_opt $ xml_opt $ sql_opt $ fetch_term $ exec_term))

let repl_cmd =
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive shell: queries, view definitions, materialization")
    Term.(ret (const run_repl $ csv_opt $ xml_opt $ sql_opt $ fetch_term $ exec_term))

let script_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"SCRIPT"
        ~doc:
          "Request script: sessions, lens invocations with priorities and \
           deadlines, clock advances, source availability toggles.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the concurrency server over a scripted request stream: \
          multi-query sessions, admission control with deterministic load \
          shedding, the lens plan cache, and load-balanced dispatch over N \
          logical engines")
    Term.(ret (const run_serve $ csv_opt $ xml_opt $ sql_opt $ fetch_term $ exec_term $ script_arg))

let main =
  let doc = "the Nimble XML data integration system" in
  Cmd.group
    (Cmd.info "nimble" ~version:"1.0.0" ~doc)
    [
      query_cmd;
      explain_cmd;
      explain_analyze_cmd;
      stats_cmd;
      trace_cmd;
      report_cmd;
      repl_cmd;
      serve_cmd;
    ]

let () =
  ignore wrap;
  exit (Cmd.eval main)
