(* Customer 360: the paper's first motivating scenario (section 2).

   "Information about the customers of a company is scattered across
   multiple databases in the organization … in some cases the data
   sources … have resulted from continuous activities of mergers and
   acquisitions."

   Two CRM databases (one acquired), with inconsistent conventions and
   duplicated entities.  We:
     1. register both as sources and define a unified mediated schema;
     2. query the unified view (virtual integration);
     3. run a declarative cleaning flow to find the duplicate entities,
        with a concordance database recording determinations and a
        lineage store recording the merges;
     4. answer a consistency question the unified view makes easy.

     dune exec examples/customer_360.exe
*)

let ok = function Ok v -> v | Error m -> failwith m

(* The incumbent CRM: (id, name, city, phone). *)
let make_main_crm () =
  let db = Rel_db.create ~name:"crm_main" () in
  List.iter
    (fun s -> ignore (Rel_db.exec db s))
    [
      "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, city TEXT, phone TEXT)";
      "INSERT INTO customers VALUES \
       (1, 'Acme Corporation', 'Seattle', '(206) 555-0100'), \
       (2, 'Globex Inc', 'New York', '(212) 555-0199'), \
       (3, 'Initech', 'Austin', '(512) 555-0123'), \
       (4, 'Stark Industries', 'Los Angeles', '(310) 555-0177')";
    ];
  db

(* The acquired company's CRM: different schema conventions, overlapping
   customers under different spellings. *)
let make_acquired_crm () =
  let db = Rel_db.create ~name:"crm_acq" () in
  List.iter
    (fun s -> ignore (Rel_db.exec db s))
    [
      "CREATE TABLE accounts (acct_no INT PRIMARY KEY, company TEXT, location TEXT, contact TEXT)";
      "INSERT INTO accounts VALUES \
       (501, 'ACME Corp.', 'Seattle WA', '206-555-0100'), \
       (502, 'Globex', 'NYC', '212.555.0199'), \
       (503, 'Umbrella LLC', 'Raccoon City', '555-0001'), \
       (504, 'Wayne Enterprises', 'Gotham', '555-0002')";
    ];
  db

let () =
  let sys = Nimble.create () in
  ok (Nimble.register_source sys (Rel_source.make (make_main_crm ())));
  ok (Nimble.register_source sys (Rel_source.make (make_acquired_crm ())));

  (* One unified mediated schema over both sources: a UNION view mapping
     each CRM's own schema into a single <customer> shape with
     provenance.  This is global-as-view, built without moving data. *)
  ok
    (Nimble.define_view sys ~description:"unified customer master" "all_customers"
       {|WHERE <row><id>$i</id><name>$n</name><city>$c</city><phone>$p</phone></row>
               IN "crm_main.customers"
         CONSTRUCT <customer src="main"><key>$i</key><name>$n</name><city>$c</city><phone>$p</phone></customer>
         UNION
         WHERE <row><acct_no>$i</acct_no><company>$n</company><location>$c</location><contact>$p</contact></row>
               IN "crm_acq.accounts"
         CONSTRUCT <customer src="acq"><key>$i</key><name>$n</name><city>$c</city><phone>$p</phone></customer>|});

  print_endline "== the unified virtual view (fresh, no warehouse built) ==";
  let unified =
    ok
      (Nimble.query sys
         {|WHERE <customer src=$s><name>$n</name></customer> IN "all_customers"
           CONSTRUCT <c><n>$n</n><s>$s</s></c>|})
  in
  List.iter
    (fun t ->
      let get f = match Dtree.first_named t f with Some k -> Dtree.text k | None -> "" in
      Printf.printf "  %-22s (%s)\n" (get "n") (get "s"))
    unified;

  (* Pull all customers as tuples for the cleaning flow; provenance from
     the view's src attribute keys the records. *)
  let customer_tuples =
    let trees =
      ok
        (Nimble.query sys
           {|WHERE <customer src=$s><key>$k</key><name>$n</name><phone>$p</phone></customer>
                   IN "all_customers"
             CONSTRUCT <r><src>$s</src><key>$k</key><name>$n</name><phone>$p</phone></r>|})
    in
    List.map
      (fun tree ->
        let get f = match Dtree.first_named tree f with Some k -> Dtree.text k | None -> "" in
        Tuple.make
          [
            ("key", Value.String (Printf.sprintf "%s:%s" (get "src") (get "key")));
            ("name", Value.String (get "name"));
            ("phone", Value.String (get "phone"));
          ])
      trees
  in

  (* The cleaning flow: normalize names and phones, then dedupe with
     sorted-neighborhood matching.  The concordance database records
     every determination; the lineage store records the merges. *)
  let concordance = Cl_concordance.create () in
  let lineage = Cl_lineage.create () in
  let flow =
    {
      Cl_flow.flow_name = "cross-crm-dedupe";
      steps =
        [
          Cl_flow.Derive { field = "norm_name"; from_field = "name"; normalizer = "name" };
          Cl_flow.Derive { field = "norm_phone"; from_field = "phone"; normalizer = "phone" };
          Cl_flow.Dedupe
            {
              match_field = "norm_name";
              blocking_fields = [ "norm_name"; "norm_phone" ];
              measure = "jaro_winkler";
              same_above = 0.90;
              different_below = 0.60;
              window = 4;
            };
        ];
    }
  in
  let records = Cl_flow.records_of_tuples ~key_field:"key" customer_tuples in
  let report = Cl_flow.run ~concordance ~lineage flow records in

  Printf.printf "\n== cleaning flow '%s' ==\n" flow.Cl_flow.flow_name;
  Printf.printf "  input records:    %d\n" report.Cl_flow.input_count;
  Printf.printf "  merged clusters:  %d\n" report.Cl_flow.merged_clusters;
  Printf.printf "  surviving:        %d\n" (List.length report.Cl_flow.output);
  Printf.printf "  comparisons:      %d\n" report.Cl_flow.comparisons;
  Printf.printf "  trapped for human review: %d pair(s)\n"
    (List.length report.Cl_flow.exceptions);
  List.iter
    (fun (a, b) -> Printf.printf "    unsure: %s ~ %s\n" a b)
    report.Cl_flow.exceptions;

  print_endline "\n== entities after merge (provenance via lineage) ==";
  List.iter
    (fun r ->
      let name = Value.to_string (Tuple.get_exn r.Cl_merge_purge.data "name") in
      match Cl_lineage.entry_of lineage r.Cl_merge_purge.key with
      | Some e ->
        Printf.printf "  %-20s  merged from [%s]\n" name
          (String.concat "; " e.Cl_lineage.input_keys)
      | None -> Printf.printf "  %-20s  single-source\n" name)
    report.Cl_flow.output;

  (* A human resolves the trapped pair; the determination persists in the
     concordance database and replays on the next run (no re-trap). *)
  (match report.Cl_flow.exceptions with
  | (a, b) :: _ ->
    ignore
      (Cl_concordance.resolve concordance ~note:"distinct companies, steward checked"
         Cl_concordance.Different a b);
    let rerun = Cl_flow.run ~concordance ~lineage flow records in
    Printf.printf "\n== after human resolution (Different), rerun ==\n";
    Printf.printf "  surviving entities: %d, trapped pairs now: %d\n"
      (List.length rerun.Cl_flow.output)
      (List.length rerun.Cl_flow.exceptions);
    Printf.printf "  concordance size: %d determinations\n" (Cl_concordance.size concordance)
  | [] -> ());

  (* Finally, the consistency question integration makes cheap: which
     customers appear in only one CRM? *)
  print_endline "\n== customers present in only one CRM (by normalized name) ==";
  let names_of src =
    ok
      (Nimble.query sys
         (Printf.sprintf
            {|WHERE <customer src="%s"><name>$n</name></customer> IN "all_customers"
              CONSTRUCT <n>$n</n>|}
            src))
    |> List.map (fun t -> Cl_normalize.normalize_name (Dtree.text t))
  in
  let main_names = names_of "main" and acq_names = names_of "acq" in
  let close a b = Cl_similarity.jaro_winkler a b >= 0.9 in
  let only_in names others label =
    List.iter
      (fun n ->
        if not (List.exists (close n) others) then Printf.printf "  %-24s (only in %s)\n" n label)
      names
  in
  only_in main_names acq_names "main";
  only_in acq_names main_names "acquired"
