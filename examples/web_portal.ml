(* Web portal: the paper's second motivating scenario (section 2).

   "Companies who need to build large-scale web sites which serve
   information from multiple internal sources … would like to provide
   the designers of the web site an already integrated view of their
   data sources."

   Three internal sources (product DB, inventory DB, editorial XML) are
   integrated behind mediated schemas; the site team consumes them only
   through lenses — parameterized queries with authentication and
   device-targeted rendering.  Hot views are materialized with periodic
   refresh; the result cache absorbs the skewed page-view workload.

     dune exec examples/web_portal.exe
*)

let ok = function Ok v -> v | Error m -> failwith m

let make_product_db () =
  let db = Rel_db.create ~name:"proddb" () in
  List.iter
    (fun s -> ignore (Rel_db.exec db s))
    [
      "CREATE TABLE products (sku TEXT PRIMARY KEY, title TEXT, price FLOAT, category TEXT)";
      "INSERT INTO products VALUES \
       ('W-1', 'Widget Classic', 19.99, 'widgets'), \
       ('W-2', 'Widget Pro', 49.99, 'widgets'), \
       ('G-1', 'Gizmo Mini', 9.99, 'gizmos'), \
       ('G-2', 'Gizmo Max', 99.99, 'gizmos')";
    ];
  db

let make_inventory_db () =
  let db = Rel_db.create ~name:"invdb" () in
  List.iter
    (fun s -> ignore (Rel_db.exec db s))
    [
      "CREATE TABLE stock (sku TEXT PRIMARY KEY, on_hand INT, warehouse TEXT)";
      "INSERT INTO stock VALUES ('W-1', 120, 'SEA'), ('W-2', 0, 'SEA'), \
       ('G-1', 42, 'NYC'), ('G-2', 7, 'NYC')";
    ];
  db

let editorial =
  {|<reviews>
      <review sku="W-1"><stars>4</stars><blurb>Solid and dependable.</blurb></review>
      <review sku="G-2"><stars>5</stars><blurb>The best gizmo money can buy.</blurb></review>
    </reviews>|}

let () =
  let sys = Nimble.create ~cache_capacity:32 () in
  ok (Nimble.register_source sys (Rel_source.make (make_product_db ())));
  ok (Nimble.register_source sys (Rel_source.make (make_inventory_db ())));
  ok
    (Nimble.register_source sys
       (Xml_source.of_xml_strings ~name:"editorial" [ ("reviews", editorial) ]));

  (* The integrated product page view: catalog x stock x reviews.  Site
     designers never see the three underlying schemas. *)
  ok
    (Nimble.define_view sys ~description:"everything a product page needs" "product_page"
       {|WHERE <row><sku>$s</sku><title>$t</title><price>$p</price><category>$c</category></row>
               IN "proddb.products",
             <row><sku>$s</sku><on_hand>$q</on_hand></row> IN "invdb.stock"
         CONSTRUCT <page><sku>$s</sku><title>$t</title><price>$p</price>
                     <category>$c</category><stock>$q</stock></page>|});

  (* Hot view: materialize with periodic refresh — the hybrid of
     section 3.3 (fresh-enough data at local-copy speed). *)
  ok (Nimble.materialize_view sys ~policy:(Mat_store.Every_n_queries 100) "product_page");

  (* Lenses for the site team. *)
  let category_lens =
    Fe_lens.make ~name:"category-listing" ~device:Fe_format.Web
      ~params:[ Fe_lens.param "cat" Value.TString ]
      [
        ( "list",
          {|WHERE <page><sku>$s</sku><title>$t</title><price>$p</price>
                   <category>%cat%</category><stock>$q</stock></page> IN "product_page",
                 $q > 0
            CONSTRUCT <item><title>$t</title><price>$p</price></item>
            ORDER BY $p|} );
      ]
  in
  let mobile_lens =
    Fe_lens.make ~name:"mobile-stock-check" ~device:Fe_format.Wireless
      ~required_role:Fe_auth.Analyst
      ~params:[ Fe_lens.param "sku" Value.TString ]
      [
        ( "check",
          {|WHERE <page><sku>%sku%</sku><title>$t</title><stock>$q</stock></page> IN "product_page"
            CONSTRUCT <stock><item>$t</item><qty>$q</qty></stock>|} );
      ]
  in
  ok (Nimble.add_lens sys category_lens);
  ok (Nimble.add_lens sys mobile_lens);
  ok (Nimble.add_user sys ~role:Fe_auth.Viewer "webapp" "portal-secret");
  ok (Nimble.add_user sys ~role:Fe_auth.Analyst "ops" "ops-secret");

  print_endline "== /widgets page (web device, via lens) ==";
  print_endline
    (ok
       (Nimble.run_lens sys ~user:"webapp" ~password:"portal-secret" ~lens:"category-listing"
          ~query:"list" [ ("cat", "widgets") ]));

  print_endline "\n== stock check from a wireless device (ops role) ==";
  print_endline
    (ok
       (Nimble.run_lens sys ~user:"ops" ~password:"ops-secret" ~lens:"mobile-stock-check"
          ~query:"check" [ ("sku", "G-2") ]));

  print_endline "\n== webapp cannot use the ops lens ==";
  (match
     Nimble.run_lens sys ~user:"webapp" ~password:"portal-secret" ~lens:"mobile-stock-check"
       ~query:"check" [ ("sku", "G-2") ]
   with
  | Error m -> Printf.printf "denied as expected: %s\n" m
  | Ok _ -> failwith "expected denial");

  (* Page-view workload: skewed to the widgets page; the cache absorbs
     the repeats. *)
  for _ = 1 to 50 do
    ignore
      (ok
         (Nimble.run_lens sys ~user:"webapp" ~password:"portal-secret" ~lens:"category-listing"
            ~query:"list" [ ("cat", "widgets") ]))
  done;
  for _ = 1 to 5 do
    ignore
      (ok
         (Nimble.run_lens sys ~user:"webapp" ~password:"portal-secret" ~lens:"category-listing"
            ~query:"list" [ ("cat", "gizmos") ]))
  done;

  print_endline "\n== system status after the page-view burst ==";
  print_string (Nimble.report sys)
