(* Quickstart: stand up an integration system over one relational source
   and one XML source, and run an XML-QL query that joins them.

     dune exec examples/quickstart.exe
*)

let () =
  (* 1. A relational source: the kind of departmental database the
     mediator compiles SQL fragments for. *)
  let db = Rel_db.create ~name:"crm" () in
  List.iter
    (fun stmt -> ignore (Rel_db.exec db stmt))
    [
      "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, region TEXT)";
      "INSERT INTO customers VALUES (1, 'Acme', 'west'), (2, 'Globex', 'east'), \
       (3, 'Initech', 'west')";
    ];

  (* 2. An XML source: a product catalog document. *)
  let products =
    Xml_source.of_xml_strings ~name:"products"
      [
        ( "catalog",
          {|<catalog>
              <product owner="1"><name>widget</name><price>25</price></product>
              <product owner="3"><name>gizmo</name><price>99</price></product>
            </catalog>|} );
      ]
  in

  (* 3. The integration system. *)
  let sys = Nimble.create () in
  let ok = function Ok v -> v | Error m -> failwith m in
  ok (Nimble.register_source sys (Rel_source.make db));
  ok (Nimble.register_source sys products);

  (* 4. One XML-QL query spanning both sources: which west-region
     customers own which products?  The relational clause is compiled to
     SQL and pushed into crm; the XML clause pattern-matches the catalog;
     the mediator joins them on $i. *)
  let query =
    {|WHERE <row><id>$i</id><name>$n</name><region>"west"</region></row> IN "crm.customers",
           <product owner=$i><name>$p</name><price>$c</price></product> IN "products.catalog"
      CONSTRUCT <owns><customer>$n</customer><product>$p</product><price>$c</price></owns>|}
  in

  print_endline "-- plan --";
  print_endline (ok (Nimble.explain sys query));

  print_endline "-- results --";
  let trees = ok (Nimble.query sys query) in
  print_endline (Fe_format.render Fe_format.Text trees);

  print_endline "-- same results, rendered for the web --";
  print_endline (Fe_format.render Fe_format.Web trees)
