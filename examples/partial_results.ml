(* Partial results under source unavailability: section 3.4.

   "In many applications, it's never the case that all sources are
   available … It is often not acceptable in this situation to simply
   return an error or an empty result."

   A federation of four regional order databases behind simulated
   networks.  With every source up, strict mode answers completely.
   When two regions go dark, strict mode fails — but partial mode
   returns what the live regions know, annotated as incomplete.

     dune exec examples/partial_results.exe
*)

let ok = function Ok v -> v | Error m -> failwith m

let region_db name rows =
  let db = Rel_db.create ~name () in
  ignore (Rel_db.exec db "CREATE TABLE orders (oid INT PRIMARY KEY, item TEXT, amount FLOAT)");
  List.iteri
    (fun i (item, amount) ->
      ignore
        (Rel_db.exec db
           (Printf.sprintf "INSERT INTO orders VALUES (%d, '%s', %g)" (i + 1) item amount)))
    rows;
  db

let () =
  let regions =
    [
      ("west", [ ("widget", 120.0); ("gizmo", 80.0) ], 1.0);
      ("east", [ ("widget", 45.0); ("doohickey", 300.0) ], 1.0);
      ("south", [ ("gizmo", 75.0) ], 0.0);   (* offline *)
      ("north", [ ("widget", 60.0) ], 0.0);  (* offline *)
    ]
  in
  let sys = Nimble.create () in
  List.iter
    (fun (name, rows, availability) ->
      let src = Rel_source.make (region_db name rows) in
      let wrapped, _ =
        Net_sim.wrap { Net_sim.default_profile with Net_sim.availability } src
      in
      ok (Nimble.register_source sys wrapped))
    regions;

  (* One query per region, same shape; a production deployment would
     union them behind a mediated schema per region. *)
  let region_query region =
    Printf.sprintf
      {|WHERE <row><item>$i</item><amount>$a</amount></row> IN "%s.orders"
        CONSTRUCT <order region="%s"><item>$i</item><amount>$a</amount></order>|}
      region region
  in

  print_endline "== strict mode, region by region ==";
  List.iter
    (fun (region, _, _) ->
      match Nimble.query sys (region_query region) with
      | Ok trees -> Printf.printf "  %-6s %d orders\n" region (List.length trees)
      | Error m -> Printf.printf "  %-6s FAILED: %s\n" region m)
    regions;

  print_endline "\n== partial mode: answer what we can, say what we missed ==";
  let all_orders = ref [] in
  let all_skipped = ref [] in
  List.iter
    (fun (region, _, _) ->
      let trees, skipped = ok (Nimble.query_partial sys (region_query region)) in
      all_orders := !all_orders @ trees;
      all_skipped := !all_skipped @ skipped)
    regions;
  Printf.printf "  orders collected: %d\n" (List.length !all_orders);
  Printf.printf "  incomplete: data from [%s] was not reachable\n"
    (String.concat ", " (List.sort_uniq String.compare !all_skipped));

  print_endline "\n== the partial answer itself ==";
  print_string (Fe_format.render Fe_format.Text !all_orders);

  (* The completeness annotation is what lets a UI tell users "results
     were not complete" rather than silently under-reporting. *)
  let total =
    List.fold_left
      (fun acc tree ->
        match Dtree.first_named tree "amount" with
        | Some a -> acc +. (Option.value ~default:0.0 (Value.to_float (Value.of_string_guess (Dtree.text a))))
        | None -> acc)
      0.0 !all_orders
  in
  Printf.printf "\nrevenue visible right now: %.2f (lower bound — %d region(s) offline)\n"
    total
    (List.length (List.sort_uniq String.compare !all_skipped))
