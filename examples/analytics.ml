(* Analytics: aggregate templates, a UNION mediated schema, a query-time
   cleaned source and a saved configuration — the extensions layered on
   the core engine, working together.

   Two regional order databases integrate behind one union view; a
   cleaning flow canonicalizes the customer names referenced by orders;
   aggregate templates compute the report figures; and the integration
   layer round-trips through a configuration script.

     dune exec examples/analytics.exe
*)

let ok = function Ok v -> v | Error m -> failwith m

let region_db name rows =
  let db = Rel_db.create ~name () in
  ignore
    (Rel_db.exec db
       "CREATE TABLE orders (oid INT PRIMARY KEY, customer TEXT, item TEXT, amount FLOAT)");
  List.iteri
    (fun i (customer, item, amount) ->
      ignore
        (Rel_db.exec db
           (Printf.sprintf "INSERT INTO orders VALUES (%d, '%s', '%s', %g)" (i + 1) customer
              item amount)))
    rows;
  db

let () =
  let sys = Nimble.create () in
  ok
    (Nimble.register_source sys
       (Rel_source.make
          (region_db "west"
             [
               ("Acme Corporation", "widget", 120.0);
               ("ACME Corp.", "gizmo", 80.0);
               ("Initech", "widget", 45.0);
             ])));
  ok
    (Nimble.register_source sys
       (Rel_source.make
          (region_db "east"
             [
               ("Globex Inc", "server", 900.0);
               ("globex", "widget", 60.0);
               ("Acme Corporation", "gizmo", 75.0);
             ])));

  (* One union schema over both regions, tagged with provenance. *)
  ok
    (Nimble.define_view sys ~description:"all orders, both regions" "orders"
       {|WHERE <row><customer>$c</customer><item>$i</item><amount>$a</amount></row> IN "west.orders"
         CONSTRUCT <o region="west"><customer>$c</customer><item>$i</item><amount>$a</amount></o>
         UNION
         WHERE <row><customer>$c</customer><item>$i</item><amount>$a</amount></row> IN "east.orders"
         CONSTRUCT <o region="east"><customer>$c</customer><item>$i</item><amount>$a</amount></o>|});

  (* The report: one line per distinct item, with aggregate templates
     computing count / revenue / biggest ticket per item (correlated on
     $i), and a global summary. *)
  print_endline "== revenue by item (aggregates over the union view) ==";
  let per_item =
    ok
      (Nimble.query sys
         {|WHERE <o><item>$i</item></o> IN "orders"
           CONSTRUCT <line><item>$i</item>
             <n>{ COUNT WHERE <o><item>$i</item></o> IN "orders" CONSTRUCT <x/> }</n>
             <revenue>{ SUM WHERE <o><item>$i</item><amount>$a</amount></o> IN "orders"
                        CONSTRUCT <a>$a</a> }</revenue>
             <top>{ MAX WHERE <o><item>$i</item><amount>$a</amount></o> IN "orders"
                    CONSTRUCT <a>$a</a> }</top>
           </line>|})
  in
  (* One line per binding; dedupe by item for display. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun line ->
      let get f = match Dtree.first_named line f with Some k -> Dtree.text k | None -> "" in
      let item = get "item" in
      if not (Hashtbl.mem seen item) then begin
        Hashtbl.add seen item ();
        Printf.printf "  %-10s orders=%-3s revenue=%-8s top=%s\n" item (get "n")
          (get "revenue") (get "top")
      end)
    per_item;

  (* Customer names are dirty across regions; a cleaned source
     canonicalizes them at query time. *)
  let flow =
    {
      Cl_flow.flow_name = "canonical-customers";
      steps =
        [
          Cl_flow.Derive { field = "norm"; from_field = "customer"; normalizer = "name" };
          Cl_flow.Dedupe
            {
              match_field = "norm";
              blocking_fields = [ "norm" ];
              measure = "jaro_winkler";
              same_above = 0.9;
              different_below = 0.6;
              window = 4;
            };
        ];
    }
  in
  ok
    (Nimble.register_cleaned_source sys ~name:"customers" ~key_field:"customer" ~flow
       ~from_query:
         {|WHERE <o><customer>$c</customer></o> IN "orders"
           CONSTRUCT <r><customer>$c</customer></r>|});
  print_endline "\n== distinct customers after query-time cleaning ==";
  let customers =
    ok (Nimble.query sys {|WHERE <row><customer>$c</customer></row> IN "customers" CONSTRUCT <c>$c</c>|})
  in
  List.iter (fun t -> Printf.printf "  %s\n" (Dtree.text t)) customers;
  Printf.printf "  (%d raw order rows -> %d entities)\n" 6 (List.length customers);

  (* The whole integration layer as a replayable script. *)
  print_endline "\n== saved configuration ==";
  print_string (Nimble.save_config sys)
