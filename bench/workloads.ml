(* Synthetic workload generation for the benchmark harness.

   Substitutes for the Fortune-500 customer data of the paper's beta
   deployments (see DESIGN.md, substitution table): deterministic
   generators for relational customer/order data, dirty duplicates with
   the anomaly classes of section 3.2 (abbreviations, truncations, case
   and punctuation noise, typos, conflicting keys), and XML documents of
   controlled size. *)

let first_names =
  [| "james"; "mary"; "robert"; "patricia"; "john"; "jennifer"; "michael";
     "linda"; "david"; "elizabeth"; "william"; "barbara"; "richard"; "susan";
     "joseph"; "jessica"; "thomas"; "sarah"; "charles"; "karen" |]

let company_roots =
  [| "acme"; "globex"; "initech"; "umbrella"; "stark"; "wayne"; "hooli";
     "cyberdyne"; "tyrell"; "wonka"; "dunder"; "sterling"; "oscorp";
     "massive"; "gringotts"; "weyland"; "aperture"; "virtucon"; "monarch";
     "octan" |]

let company_kinds = [| "industries"; "corporation"; "systems"; "logistics"; "holdings" |]

let regions = [| "west"; "east"; "north"; "south"; "central" |]
let items = [| "widget"; "gizmo"; "doohickey"; "gadget"; "server"; "sprocket" |]

let company_name g =
  Printf.sprintf "%s %s"
    (String.capitalize_ascii (Prng.pick g company_roots))
    (String.capitalize_ascii (Prng.pick g company_kinds))

let person_name g =
  Printf.sprintf "%s %s"
    (String.capitalize_ascii (Prng.pick g first_names))
    (String.capitalize_ascii (Prng.pick g company_roots))

(* ------------------------------------------------------------------ *)
(* Relational data                                                     *)
(* ------------------------------------------------------------------ *)

(* A customers table with [n] rows in a fresh database named [name]. *)
let customer_db g ~name ~rows =
  let db = Rel_db.create ~name () in
  ignore
    (Rel_db.exec db
       "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, region TEXT, tier INT, balance FLOAT)");
  for i = 1 to rows do
    let stmt =
      Printf.sprintf "INSERT INTO customers VALUES (%d, '%s %d', '%s', %d, %g)" i
        (company_name g) i (Prng.pick g regions) (1 + Prng.int g 3)
        (float_of_int (Prng.int g 10_000) /. 10.0)
    in
    ignore (Rel_db.exec db stmt)
  done;
  db

let orders_db g ~name ~rows ~customers =
  let db = Rel_db.create ~name () in
  ignore
    (Rel_db.exec db
       "CREATE TABLE orders (oid INT PRIMARY KEY, cust_id INT, item TEXT, amount FLOAT)");
  for i = 1 to rows do
    let stmt =
      Printf.sprintf "INSERT INTO orders VALUES (%d, %d, '%s', %g)" i
        (1 + Prng.int g customers) (Prng.pick g items)
        (float_of_int (5 + Prng.int g 5000) /. 10.0)
    in
    ignore (Rel_db.exec db stmt)
  done;
  db

(* ------------------------------------------------------------------ *)
(* Dirty duplicates (section 3.2 anomaly classes)                      *)
(* ------------------------------------------------------------------ *)

let abbreviations =
  [ ("corporation", "corp"); ("industries", "ind"); ("systems", "sys");
    ("logistics", "log"); ("holdings", "hldg") ]

let replace_word s (long, short) =
  String.concat " "
    (List.map
       (fun w -> if String.lowercase_ascii w = long then short else w)
       (String.split_on_char ' ' s))

let typo g s =
  if String.length s < 4 then s
  else begin
    let i = 1 + Prng.int g (String.length s - 2) in
    let b = Bytes.of_string s in
    (match Prng.int g 3 with
    | 0 ->
      (* transpose *)
      let c = Bytes.get b i in
      Bytes.set b i (Bytes.get b (i - 1));
      Bytes.set b (i - 1) c
    | 1 -> Bytes.set b i 'x' (* substitute *)
    | _ -> Bytes.set b i (Bytes.get b (max 0 (i - 1))) (* double *));
    Bytes.to_string b
  end

(* Produce a dirty variant of a clean name, exercising one anomaly. *)
let dirty_variant g name =
  match Prng.int g 6 with
  | 0 -> String.uppercase_ascii name
  | 1 -> List.fold_left replace_word name abbreviations
  | 2 -> typo g name
  | 3 -> name ^ ", Inc."
  | 4 ->
    (* truncation *)
    if String.length name > 8 then String.sub name 0 (String.length name - 3) else name
  | _ -> "  " ^ name ^ "  "

type dirty_dataset = {
  records : Cl_merge_purge.record list;
  (* ground truth: pairs of keys that denote the same entity *)
  true_pairs : (string * string) list;
}

(* A distinctive pronounceable company root (real-world names are mostly
   unique strings, unlike cross products of a small vocabulary, so a
   string matcher can separate entities). *)
let coined_word g =
  let consonants = "bcdfgklmnprstvz" and vowels = "aeiou" in
  let len = 6 + Prng.int g 5 in
  String.init len (fun i ->
      if i mod 2 = 0 then consonants.[Prng.int g (String.length consonants)]
      else vowels.[Prng.int g (String.length vowels)])

(* [n] base entities; a [dup_rate] fraction get one dirty duplicate with
   a conflicting key (the object-identity problem). *)
let dirty_customers g ~n ~dup_rate =
  let base =
    List.init n (fun i ->
        let name =
          Printf.sprintf "%s %s"
            (String.capitalize_ascii (coined_word g))
            (String.capitalize_ascii (Prng.pick g company_kinds))
        in
        (Printf.sprintf "a:%04d" i, name))
  in
  let dups =
    List.filter_map
      (fun (key, name) ->
        if Prng.bernoulli g dup_rate then
          Some ((Printf.sprintf "b:%s" (String.sub key 2 4), dirty_variant g name), key)
        else None)
      base
  in
  let record (key, name) =
    { Cl_merge_purge.key; data = Tuple.make [ ("name", Value.String name) ] }
  in
  let records = List.map record base @ List.map (fun (d, _) -> record d) dups in
  let true_pairs = List.map (fun ((dkey, _), okey) -> (okey, dkey)) dups in
  { records; true_pairs }

(* ------------------------------------------------------------------ *)
(* XML documents                                                       *)
(* ------------------------------------------------------------------ *)

(* A catalog document with roughly [nodes] tree nodes: a 3-level
   category/product/field hierarchy. *)
let xml_catalog g ~nodes =
  let products_needed = max 1 (nodes / 6) in
  let buf = Buffer.create (nodes * 24) in
  Buffer.add_string buf "<catalog>";
  let cat_count = max 1 (products_needed / 20) in
  let pid = ref 0 in
  for c = 1 to cat_count do
    Buffer.add_string buf (Printf.sprintf "<category name=\"cat%d\">" c);
    for _ = 1 to products_needed / cat_count do
      incr pid;
      Buffer.add_string buf
        (Printf.sprintf
           "<product sku=\"P%05d\"><name>%s</name><price>%d</price><stock>%d</stock></product>"
           !pid (Prng.pick g items) (1 + Prng.int g 500) (Prng.int g 100))
    done;
    Buffer.add_string buf "</category>"
  done;
  Buffer.add_string buf "</catalog>";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, (t1 -. t0) *. 1000.0)

(* Median wall time of [runs] executions, discarding the first (warmup). *)
let bench_ms ?(runs = 5) f =
  ignore (f ());
  let times =
    List.init runs (fun _ ->
        let _, ms = time_ms f in
        ms)
  in
  let sorted = List.sort compare times in
  List.nth sorted (runs / 2)
