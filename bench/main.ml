(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe            -- all experiments + micro-benches
     dune exec bench/main.exe -- E3 E6   -- selected experiments
     dune exec bench/main.exe -- micro   -- only the Bechamel micro suite
     dune exec bench/main.exe -- --quick E11 E12   -- shrunk workloads

   Each experiment (E1..E12) regenerates one table of EXPERIMENTS.md and
   writes a machine-readable BENCH_E<N>.json summary; the Bechamel suite
   gives per-operation timings for the core engine paths. *)

let experiments : (string * (unit -> unit)) list =
  [
    ("E1", Experiments.e1);
    ("E2", Experiments.e2);
    ("E3", Experiments.e3);
    ("E3b", Experiments.e3b);
    ("E4", Experiments.e4);
    ("E4b", Experiments.e4b);
    ("E5", Experiments.e5);
    ("E5b", Experiments.e5b);
    ("E6", Experiments.e6);
    ("E7", Experiments.e7);
    ("E8", Experiments.e8);
    ("E9", Experiments.e9);
    ("E10", Experiments.e10);
    ("E11", Experiments.e11);
    ("E12", Experiments.e12);
    ("E13", Experiments.e13);
    ("E14", Experiments.e14);
    ("E15", Experiments.e15);
    ("E16", Experiments.e16);
    ("E17", Experiments.e17);
    ("E18", Experiments.e18);
    ("E19", Experiments.e19);
  ]

(* Experiments run behind this wrapper so every one of them emits its
   BENCH_E<N>.json record: wall time around the whole experiment, the
   virtual (simulated-network) time as the global clock delta, and
   whatever rows/params the experiment noted while running. *)
let run_experiment id f =
  Bench_json.reset ();
  let v0 = Obs_clock.virtual_ms () in
  let (), wall_ms = Workloads.time_ms f in
  Bench_json.emit ~name:id ~virtual_ms:(Obs_clock.virtual_ms () -. v0) ~wall_ms

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per core engine path       *)
(* ------------------------------------------------------------------ *)

let micro_fixtures () =
  let g = Prng.create 5 in
  let xml_text = Workloads.xml_catalog g ~nodes:2000 in
  let doc = Xml_parser.parse_element_exn xml_text in
  let db = Workloads.customer_db (Prng.create 6) ~name:"crm" ~rows:2000 in
  let cat = Med_catalog.create () in
  Med_catalog.register_source cat (Rel_source.make db);
  let query_text =
    {|WHERE <row><id>$i</id><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 1
      CONSTRUCT <c><id>$i</id><name>$n</name></c>|}
  in
  let parsed = Xq_parser.parse_exn query_text in
  let dirty = Workloads.dirty_customers (Prng.create 8) ~n:300 ~dup_rate:0.2 in
  (xml_text, doc, db, cat, query_text, parsed, dirty)

let micro_tests () =
  let xml_text, doc, db, cat, query_text, parsed, dirty = micro_fixtures () in
  let open Bechamel in
  [
    Test.make ~name:"xml_parse_2k_nodes" (Staged.stage (fun () ->
        ignore (Xml_parser.parse_element_exn xml_text)));
    Test.make ~name:"xml_path_descendants" (Staged.stage (fun () ->
        ignore (Xml_path.select (Xml_path.parse_exn "//product") doc)));
    Test.make ~name:"sql_select_indexed" (Staged.stage (fun () ->
        ignore (Rel_db.query db "SELECT name FROM customers WHERE id = 999")));
    Test.make ~name:"sql_scan_filter_2k" (Staged.stage (fun () ->
        ignore (Rel_db.query db "SELECT name FROM customers WHERE tier = 2")));
    Test.make ~name:"xmlql_parse" (Staged.stage (fun () ->
        ignore (Xq_parser.parse_exn query_text)));
    Test.make ~name:"mediator_compile" (Staged.stage (fun () ->
        ignore (Med_planner.compile cat parsed)));
    Test.make ~name:"mediator_run_pushdown" (Staged.stage (fun () ->
        ignore (Med_exec.run cat parsed)));
    Test.make ~name:"jaro_winkler" (Staged.stage (fun () ->
        ignore (Cl_similarity.jaro_winkler "acme corporation" "acme corp")));
    Test.make ~name:"snm_dedupe_300" (Staged.stage (fun () ->
        let matcher =
          Cl_merge_purge.similarity_matcher
            ~measure:Cl_similarity.jaro ~same_above:0.9 ~different_below:0.6 ()
        in
        let key tup = Value.to_string (Tuple.get_exn tup "name") in
        ignore
          (Cl_merge_purge.sorted_neighborhood ~window:8 ~keys:[ key ] matcher
             dirty.Workloads.records)));
  ]

let run_micro () =
  print_newline ();
  print_endline (String.make 72 '=');
  print_endline "micro: Bechamel per-operation timings (monotonic clock)";
  print_endline (String.make 72 '=');
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let tests = micro_tests () in
  Printf.printf "%-28s %16s %12s\n" "operation" "ns/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some [ e ] -> e
            | _ -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
          Printf.printf "%-28s %16.1f %12.4f\n" name estimate r2)
        analyzed)
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick, args = List.partition (fun a -> a = "--quick") args in
  if quick <> [] then Experiments.quick := true;
  match args with
  | [] ->
    List.iter (fun (id, f) -> run_experiment id f) experiments;
    run_micro ()
  | [ "micro" ] -> run_micro ()
  | "check-json" :: files ->
    (* Validate BENCH_*.json outputs: well-formed JSON with the required
       top-level keys.  Exits non-zero on the first bad file, so the
       bench-smoke alias catches emitter regressions. *)
    if files = [] then begin
      prerr_endline "check-json: no files given";
      exit 1
    end;
    List.iter
      (fun file ->
        match Bench_json.validate_file file with
        | Ok () -> Printf.printf "%s: well-formed\n" file
        | Error msg ->
          Printf.eprintf "%s: %s\n" file msg;
          exit 1)
      files
  | selected ->
    List.iter
      (fun id ->
        if id = "micro" then run_micro ()
        else
          match List.assoc_opt id experiments with
          | Some f -> run_experiment id f
          | None ->
            Printf.eprintf "unknown experiment %s (known: %s, micro)\n" id
              (String.concat ", " (List.map fst experiments));
            exit 1)
      selected
