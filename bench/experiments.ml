(* The experiment harness: one function per experiment in EXPERIMENTS.md
   (E1..E10), each printing the table it regenerates.

   Network costs are measured on Net_sim's virtual clock (deterministic);
   computation costs are wall-clock medians via Workloads.bench_ms. *)

let section id title =
  Printf.printf "\n%s\n%s: %s\n%s\n" (String.make 72 '=') id title (String.make 72 '=')

let row fmt = Printf.printf fmt

(* --quick shrinks the workloads so the whole experiment fits in a test
   run (the bench-smoke alias); headline ratios are unaffected. *)
let quick = ref false

(* ------------------------------------------------------------------ *)
(* E1: warehousing vs virtual integration vs hybrid (section 3.3)      *)
(* ------------------------------------------------------------------ *)

type e1_mode =
  | Virtual
  | Warehouse
  | Hybrid of int

let e1_mode_name = function
  | Virtual -> "virtual"
  | Warehouse -> "warehouse"
  | Hybrid n -> Printf.sprintf "hybrid(refresh=%d)" n

let e1_setup mode seed =
  let g = Prng.create seed in
  let sizes = [ 500; 1000; 2000 ] in
  let dbs =
    List.mapi
      (fun i rows -> Workloads.customer_db g ~name:(Printf.sprintf "crm%d" i) ~rows)
      sizes
  in
  let sys = Nimble.create ~cache_capacity:0 () in
  let stats =
    List.map
      (fun db ->
        let wrapped, st =
          Net_sim.wrap ~seed
            { Net_sim.latency_ms = 10.0; per_tuple_ms = 0.02; availability = 1.0 }
            (Rel_source.make db)
        in
        (match Nimble.register_source sys wrapped with
        | Ok () -> ()
        | Error m -> failwith m);
        st)
      dbs
  in
  List.iteri
    (fun i _ ->
      match
        Nimble.define_view sys
          (Printf.sprintf "v%d" i)
          (Printf.sprintf
             {|WHERE <row><id>$i</id><name>$n</name></row> IN "crm%d.customers"
               CONSTRUCT <customer><id>$i</id><name>$n</name></customer>|}
             i)
      with
      | Ok () -> ()
      | Error m -> failwith m)
    dbs;
  (match mode with
  | Virtual -> ()
  | Warehouse ->
    List.iteri
      (fun i _ ->
        match Nimble.materialize_view sys (Printf.sprintf "v%d" i) with
        | Ok () -> ()
        | Error m -> failwith m)
      dbs
  | Hybrid n ->
    List.iteri
      (fun i _ ->
        match
          Nimble.materialize_view sys
            ~policy:(Mat_store.Every_n_queries n)
            (Printf.sprintf "v%d" i)
        with
        | Ok () -> ()
        | Error m -> failwith m)
      dbs);
  (g, dbs, sys, stats)

let e1_run mode =
  let g, dbs, sys, stats = e1_setup mode 42 in
  let nqueries = 60 in
  let next_id = ref 100_000 in
  let missed = ref 0 in
  let answered = ref 0 in
  let _, wall_ms =
    Workloads.time_ms (fun () ->
        for q = 1 to nqueries do
          (* Updates arrive continuously: one new customer per 5 queries. *)
          if q mod 5 = 0 then begin
            incr next_id;
            let db = List.nth dbs (Prng.int g 3) in
            ignore
              (Rel_db.exec db
                 (Printf.sprintf "INSERT INTO customers VALUES (%d, 'new %d', 'west', 1, 0.0)"
                    !next_id !next_id))
          end;
          let v = Prng.int g 3 in
          let trees =
            match
              Nimble.query sys
                (Printf.sprintf
                   {|WHERE <customer><id>$i</id></customer> IN "v%d" CONSTRUCT <r>$i</r>|} v)
            with
            | Ok trees -> trees
            | Error m -> failwith m
          in
          let truth = Rel_table.row_count (Rel_db.table_exn (List.nth dbs v) "customers") in
          answered := !answered + List.length trees;
          missed := !missed + (truth - List.length trees)
        done)
  in
  let virtual_ms = List.fold_left (fun acc st -> acc +. st.Net_sim.virtual_ms) 0.0 stats in
  let calls = List.fold_left (fun acc st -> acc + st.Net_sim.calls) 0 stats in
  let tuples = List.fold_left (fun acc st -> acc + st.Net_sim.tuples_shipped) 0 stats in
  (e1_mode_name mode, virtual_ms, calls, tuples,
   float_of_int !missed /. float_of_int nqueries, wall_ms)

let e1 () =
  section "E1" "virtual vs warehouse vs hybrid materialization (3 remote sources, 60 queries, continuous updates)";
  row "%-22s %14s %8s %10s %14s %10s\n" "mode" "network ms" "calls" "tuples" "missed/query" "wall ms";
  List.iter
    (fun mode ->
      let name, vms, calls, tuples, staleness, wall = e1_run mode in
      Bench_json.note_param name (Printf.sprintf "%.1f network ms" vms);
      Bench_json.note_rows tuples;
      row "%-22s %14.1f %8d %10d %14.2f %10.1f\n" name vms calls tuples staleness wall)
    [ Virtual; Warehouse; Hybrid 15 ]

(* ------------------------------------------------------------------ *)
(* E2: view selection under budget and drifting load (section 3.3)     *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2" "view selection: greedy benefit/storage under a budget, load shift mid-run";
  let g = Prng.create 7 in
  let candidates =
    List.init 12 (fun i ->
        {
          Mat_select.cand_view = Printf.sprintf "v%02d" i;
          storage = 50 + Prng.int g 400;
          virtual_cost = 10.0 +. Prng.float g 90.0;
          local_cost = 1.0 +. Prng.float g 2.0;
        })
  in
  let total_storage = List.fold_left (fun a c -> a + c.Mat_select.storage) 0 candidates in
  let zipf_load g rotate n =
    let counts = Hashtbl.create 16 in
    for _ = 1 to n do
      let r = (Prng.zipf g ~n:12 ~theta:1.1 + rotate) mod 12 in
      let name = Printf.sprintf "v%02d" r in
      Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
    done;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  in
  let phase_a = zipf_load g 0 1000 in
  let phase_b = zipf_load g 6 1000 in
  row "%-28s %12s %12s %10s\n" "policy" "phaseA cost" "phaseB cost" "storage";
  let print_policy name chosen_a chosen_b =
    let storage sel =
      List.fold_left
        (fun acc c -> if List.mem c.Mat_select.cand_view sel then acc + c.Mat_select.storage else acc)
        0 candidates
    in
    row "%-28s %12.0f %12.0f %10d\n" name
      (Mat_select.evaluate candidates phase_a chosen_a)
      (Mat_select.evaluate candidates phase_b chosen_b)
      (max (storage chosen_a) (storage chosen_b))
  in
  let budget = total_storage * 3 / 10 in
  let all = List.map (fun c -> c.Mat_select.cand_view) candidates in
  let greedy_a = (Mat_select.select ~budget candidates phase_a).Mat_select.chosen in
  let optimal_a = (Mat_select.select_optimal ~budget candidates phase_a).Mat_select.chosen in
  let greedy_b = (Mat_select.select ~budget candidates phase_b).Mat_select.chosen in
  print_policy "materialize nothing" [] [];
  print_policy "materialize everything" all all;
  print_policy (Printf.sprintf "greedy (budget=%d)" budget) greedy_a greedy_a;
  print_policy "greedy + adapt on drift" greedy_a greedy_b;
  print_policy "optimal (phase A, static)" optimal_a optimal_a;
  Bench_json.note_param "budget" (string_of_int budget);
  row "(budget is 30%% of total view storage %d; costs are workload cost units)\n" total_storage

(* ------------------------------------------------------------------ *)
(* E3: predicate/projection pushdown into relational sources           *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3" "fragment pushdown: compiler-generated SQL vs ship-whole-table (5000-row source)";
  let g = Prng.create 11 in
  let db = Workloads.customer_db g ~name:"crm" ~rows:5000 in
  let wrapped, stats =
    Net_sim.wrap { Net_sim.latency_ms = 10.0; per_tuple_ms = 0.05; availability = 1.0 }
      (Rel_source.make db)
  in
  let cat = Med_catalog.create () in
  Med_catalog.register_source cat wrapped;
  let queries =
    [
      ("id = 37 (1 row)", {|WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers", $i = 37 CONSTRUCT <r>$n</r>|});
      ("tier = 1 (~33%)", {|WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 1 CONSTRUCT <r>$n</r>|});
      ("balance < 100 (~10%)", {|WHERE <row><name>$n</name><balance>$b</balance></row> IN "crm.customers", $b < 100 CONSTRUCT <r>$n</r>|});
      ("region = 'west' (~20%)", {|WHERE <row><name>$n</name><region>"west"</region></row> IN "crm.customers" CONSTRUCT <r>$n</r>|});
    ]
  in
  row "%-26s %10s | %10s %12s | %10s %12s %8s\n" "query" "answers" "pushdown" "" "no-push" "" "ratio";
  row "%-26s %10s | %10s %12s | %10s %12s %8s\n" "" "" "tuples" "network ms" "tuples" "network ms" "";
  List.iter
    (fun (label, text) ->
      let run opts =
        Net_sim.reset stats;
        let trees = Med_exec.run_text ~opts cat text in
        (List.length trees, stats.Net_sim.tuples_shipped, stats.Net_sim.virtual_ms)
      in
      let n1, t1, v1 = run Med_sqlgen.default_options in
      let n2, t2, v2 = run Med_sqlgen.no_pushdown in
      assert (n1 = n2);
      Bench_json.note_param label (Printf.sprintf "%.1fx" (v2 /. v1));
      Bench_json.note_rows n1;
      row "%-26s %10d | %10d %12.1f | %10d %12.1f %7.1fx\n" label n1 t1 v1 t2 v2 (v2 /. v1))
    queries

let e3b () =
  section "E3b" "join pushdown: one SQL join fragment vs per-table fragments joined at the mediator";
  let g = Prng.create 13 in
  let db = Rel_db.create ~name:"crm" () in
  ignore
    (Rel_db.exec db
       "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, region TEXT, tier INT, balance FLOAT)");
  ignore
    (Rel_db.exec db
       "CREATE TABLE orders (oid INT PRIMARY KEY, cust_id INT, item TEXT, amount FLOAT)");
  let ncust = 2000 and nord = 6000 in
  for i = 1 to ncust do
    ignore
      (Rel_db.exec db
         (Printf.sprintf "INSERT INTO customers VALUES (%d, 'c%d', '%s', %d, %g)" i i
            (Prng.pick g Workloads.regions) (1 + Prng.int g 3) (Prng.float g 1000.0)))
  done;
  for i = 1 to nord do
    ignore
      (Rel_db.exec db
         (Printf.sprintf "INSERT INTO orders VALUES (%d, %d, '%s', %g)" i
            (1 + Prng.int g ncust) (Prng.pick g Workloads.items)
            (float_of_int (5 + Prng.int g 5000) /. 10.0)))
  done;
  ignore (Rel_db.exec db "CREATE INDEX ON orders (cust_id) USING HASH");
  let wrapped, stats =
    Net_sim.wrap { Net_sim.latency_ms = 10.0; per_tuple_ms = 0.05; availability = 1.0 }
      (Rel_source.make db)
  in
  let cat = Med_catalog.create () in
  Med_catalog.register_source cat wrapped;
  let text =
    {|WHERE <row><id>$i</id><name>$n</name><tier>$t</tier></row> IN "crm.customers",
           <row><cust_id>$i</cust_id><amount>$a</amount></row> IN "crm.orders",
           $t = 1, $a > 400
      CONSTRUCT <big><n>$n</n><a>$a</a></big>|}
  in
  row "%-26s %10s %12s %12s %10s\n" "mode" "answers" "tuples" "network ms" "wall ms";
  let run label opts =
    Net_sim.reset stats;
    let trees = ref [] in
    let wall = Workloads.bench_ms ~runs:3 (fun () -> trees := Med_exec.run_text ~opts cat text) in
    (* bench_ms runs the query 4 times total; report per-run stats *)
    Net_sim.reset stats;
    let trees2 = Med_exec.run_text ~opts cat text in
    assert (List.length !trees = List.length trees2);
    Bench_json.note_param label (Printf.sprintf "%.1f network ms" stats.Net_sim.virtual_ms);
    Bench_json.note_rows (List.length trees2);
    row "%-26s %10d %12d %12.1f %10.1f\n" label (List.length trees2)
      stats.Net_sim.tuples_shipped stats.Net_sim.virtual_ms wall
  in
  run "join pushed (1 fragment)" Med_sqlgen.default_options;
  run "select-only pushdown" Med_sqlgen.no_join_pushdown;
  run "no pushdown at all" Med_sqlgen.no_pushdown

(* ------------------------------------------------------------------ *)
(* E4: dynamic data cleaning                                           *)
(* ------------------------------------------------------------------ *)

let e4_matcher () =
  let measure a b =
    Cl_similarity.jaro_winkler (Cl_normalize.normalize_name a) (Cl_normalize.normalize_name b)
  in
  Cl_merge_purge.similarity_matcher ~measure ~same_above:0.93 ~different_below:0.75 ()

let pairs_of_clusters clusters =
  List.concat_map
    (fun cluster ->
      let rec pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> if x < y then (x, y) else (y, x)) rest @ pairs rest
      in
      pairs cluster)
    clusters

let e4_quality (outcome : Cl_merge_purge.outcome) true_pairs =
  let found = pairs_of_clusters outcome.Cl_merge_purge.clusters in
  let truth = List.map (fun (a, b) -> if a < b then (a, b) else (b, a)) true_pairs in
  let tp = List.length (List.filter (fun p -> List.mem p truth) found) in
  let recall = if truth = [] then 1.0 else float_of_int tp /. float_of_int (List.length truth) in
  let precision =
    if found = [] then 1.0 else float_of_int tp /. float_of_int (List.length found)
  in
  (recall, precision)

let e4 () =
  section "E4" "merge/purge: naive all-pairs vs multi-pass sorted neighborhood (20% injected duplicates)";
  row "%-8s %12s | %12s %8s %8s %8s | %12s %8s %8s %8s\n" "n" "true dups" "naive cmp" "ms"
    "recall" "prec" "snm cmp" "ms" "recall" "prec";
  List.iter
    (fun n ->
      let g = Prng.create (1000 + n) in
      let data = Workloads.dirty_customers g ~n ~dup_rate:0.2 in
      let blocking =
        [
          (fun tup -> Cl_normalize.normalize_name (Value.to_string (Tuple.get_exn tup "name")));
          (fun tup ->
            (* second pass: sorted token set defeats word-order noise *)
            let toks = Cl_similarity.tokens (Value.to_string (Tuple.get_exn tup "name")) in
            String.concat " " (List.sort String.compare toks));
        ]
      in
      let naive = ref None and snm = ref None in
      let naive_ms =
        Workloads.bench_ms ~runs:3 (fun () ->
            naive := Some (Cl_merge_purge.naive_pairs (e4_matcher ()) data.Workloads.records))
      in
      let snm_ms =
        Workloads.bench_ms ~runs:3 (fun () ->
            snm :=
              Some
                (Cl_merge_purge.sorted_neighborhood ~window:10 ~keys:blocking (e4_matcher ())
                   data.Workloads.records))
      in
      let naive = Option.get !naive and snm = Option.get !snm in
      let nrec, nprec = e4_quality naive data.Workloads.true_pairs in
      let srec, sprec = e4_quality snm data.Workloads.true_pairs in
      Bench_json.note_param (string_of_int n) (Printf.sprintf "snm recall %.2f" srec);
      Bench_json.note_rows n;
      row "%-8d %12d | %12d %8.1f %8.2f %8.2f | %12d %8.1f %8.2f %8.2f\n" n
        (List.length data.Workloads.true_pairs)
        naive.Cl_merge_purge.comparisons naive_ms nrec nprec snm.Cl_merge_purge.comparisons
        snm_ms srec sprec)
    [ 250; 500; 1000; 2000 ]

let e4b () =
  section "E4b" "concordance database: cold vs warm extraction runs (cost of re-deciding)";
  row "%-8s %14s %14s %16s\n" "n" "cold matcher" "warm matcher" "determinations";
  List.iter
    (fun n ->
      let g = Prng.create (2000 + n) in
      let data = Workloads.dirty_customers g ~n ~dup_rate:0.2 in
      let conc = Cl_concordance.create () in
      let calls = ref 0 in
      let base = e4_matcher () in
      let counting a b =
        incr calls;
        base a b
      in
      let key_of tup = Value.to_string (Tuple.get_exn tup "name") in
      let matcher = Cl_merge_purge.with_concordance_keys conc ~key_of counting in
      let block tup = Cl_normalize.normalize_name (Value.to_string (Tuple.get_exn tup "name")) in
      let run () =
        ignore
          (Cl_merge_purge.sorted_neighborhood ~window:10 ~keys:[ block ] matcher
             data.Workloads.records)
      in
      run ();
      let cold = !calls in
      run ();
      let warm = !calls - cold in
      Bench_json.note_param (string_of_int n) (Printf.sprintf "%d determinations" (Cl_concordance.size conc));
      row "%-8d %14d %14d %16d\n" n cold warm (Cl_concordance.size conc))
    [ 500; 1000; 2000 ]

(* ------------------------------------------------------------------ *)
(* E5: partial results under source unavailability (section 3.4)       *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5" "partial results: strict vs partial answers as sources go offline (100 trials each)";
  Bench_json.note_param "trials" "100";
  row "%-10s %-14s %16s %16s %16s\n" "sources" "availability" "P(all up)" "strict ok" "partial answer";
  List.iter
    (fun k ->
      List.iter
        (fun p ->
          let g = Prng.create ((k * 100) + int_of_float (p *. 100.0)) in
          let trials = 100 in
          let strict_ok = ref 0 and completeness = ref 0.0 in
          for _ = 1 to trials do
            (* Each source answers independently with probability p. *)
            let up = List.init k (fun _ -> Prng.bernoulli g p) in
            let live = List.length (List.filter (fun b -> b) up) in
            if live = k then incr strict_ok;
            completeness := !completeness +. (float_of_int live /. float_of_int k)
          done;
          row "%-10d %-14.2f %16.2f %16.2f %16.2f\n" k p
            (Float.pow p (float_of_int k))
            (float_of_int !strict_ok /. float_of_int trials)
            (!completeness /. float_of_int trials))
        [ 0.5; 0.9; 0.99 ])
    [ 2; 4; 8; 16 ]

let e5b () =
  section "E5b" "partial results through the engine: a 6-source federation at 0.9 availability";
  let k = 6 in
  let sys = Nimble.create ~cache_capacity:0 () in
  let g = Prng.create 99 in
  for i = 0 to k - 1 do
    let db = Workloads.customer_db g ~name:(Printf.sprintf "s%d" i) ~rows:20 in
    let wrapped, _ =
      Net_sim.wrap ~seed:(500 + i)
        { Net_sim.default_profile with Net_sim.availability = 0.9 }
        (Rel_source.make db)
    in
    match Nimble.register_source sys wrapped with
    | Ok () -> ()
    | Error m -> failwith m
  done;
  let trials = 50 in
  let strict_ok = ref 0 and partial_complete = ref 0 and rows_seen = ref 0 in
  for _ = 1 to trials do
    let all_ok = ref true and skipped_any = ref false in
    for i = 0 to k - 1 do
      let text =
        Printf.sprintf
          {|WHERE <row><id>$x</id></row> IN "s%d.customers" CONSTRUCT <r>$x</r>|} i
      in
      match Nimble.query_partial sys text with
      | Ok (trees, skipped) ->
        rows_seen := !rows_seen + List.length trees;
        if skipped <> [] then begin
          all_ok := false;
          skipped_any := true
        end
      | Error _ -> all_ok := false
    done;
    if !all_ok then incr strict_ok;
    if not !skipped_any then incr partial_complete
  done;
  Bench_json.note_rows !rows_seen;
  row "trials with every source reachable: %d/%d\n" !strict_ok trials;
  row "total rows delivered across trials (partial mode never errors): %d\n" !rows_seen;
  row "expected all-up rate at 0.9^%d: %.2f\n" k (Float.pow 0.9 (float_of_int k))

(* ------------------------------------------------------------------ *)
(* E6: physical join operators (section 3.1)                           *)
(* ------------------------------------------------------------------ *)

let e6_relation g var n distinct_keys =
  Alg_plan.Const_envs
    (List.init n (fun i ->
         Alg_env.of_bindings
           [
             ( var,
               Dtree.of_tuple var
                 (Tuple.make
                    [ ("k", Value.Int (Prng.int g distinct_keys)); ("v", Value.Int i) ]) );
           ]))

let e6 () =
  section "E6" "join operators of the physical algebra (equi-join, |keys| = n/10)";
  row "%-10s %14s %14s %14s %10s\n" "n x n" "nested ms" "hash ms" "merge ms" "rows out";
  let no_sources _ _ = Seq.empty in
  List.iter
    (fun n ->
      let g = Prng.create (31 + n) in
      let left = e6_relation g "l" n (max 1 (n / 10)) in
      let right = e6_relation g "r" n (max 1 (n / 10)) in
      let lk = Alg_expr.Child (Alg_expr.Var "l", "k") in
      let rk = Alg_expr.Child (Alg_expr.Var "r", "k") in
      let nl_plan = Alg_plan.Nl_join { left; right; pred = Some (Alg_expr.Binop (Alg_expr.Eq, lk, rk)) } in
      let hash_plan = Alg_plan.Hash_join { left; right; left_key = lk; right_key = rk; residual = None } in
      let merge_plan = Alg_plan.Merge_join { left; right; left_key = lk; right_key = rk } in
      let count plan = List.length (Alg_exec.run_list no_sources plan) in
      let rows_out = count hash_plan in
      let nl_ms =
        if n <= 1000 then
          Printf.sprintf "%.1f" (Workloads.bench_ms ~runs:3 (fun () -> count nl_plan))
        else "(skipped)"
      in
      let hash_ms = Workloads.bench_ms ~runs:3 (fun () -> count hash_plan) in
      let merge_ms = Workloads.bench_ms ~runs:3 (fun () -> count merge_plan) in
      Bench_json.note_rows rows_out;
      row "%-10s %14s %14.1f %14.1f %10d\n"
        (Printf.sprintf "%dx%d" n n)
        nl_ms hash_ms merge_ms rows_out)
    [ 300; 1000; 3000 ]

(* ------------------------------------------------------------------ *)
(* E7: XML features — parse, navigate, document order (section 4)      *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7" "XML substrate scaling: parse, path query, navigation (document order preserved)";
  row "%-10s %12s %12s %14s %14s %10s\n" "nodes" "parse ms" "path ms" "navigate ms" "order check" "products";
  List.iter
    (fun nodes ->
      let g = Prng.create (17 + nodes) in
      let text = Workloads.xml_catalog g ~nodes in
      let doc = ref None in
      let parse_ms =
        Workloads.bench_ms ~runs:3 (fun () -> doc := Some (Xml_parser.parse_element_exn text))
      in
      let doc = Option.get !doc in
      let path = Xml_path.parse_exn "//product[stock>'50']" in
      let matches = ref [] in
      let path_ms =
        Workloads.bench_ms ~runs:3 (fun () -> matches := Xml_path.select path doc)
      in
      let nav_ms =
        Workloads.bench_ms ~runs:3 (fun () ->
            (* down to every product, then sideways and up *)
            let cursor = Xml_cursor.of_root doc in
            List.iter
              (fun c ->
                ignore (Xml_cursor.next_sibling c);
                ignore (Xml_cursor.parent c))
              (Xml_cursor.descendants cursor))
      in
      (* Document order: path results must be sorted by cursor order. *)
      let cursors = Xml_path.eval path (Xml_cursor.of_root doc) in
      let in_order =
        let rec sorted = function
          | [] | [ _ ] -> true
          | a :: (b :: _ as rest) -> Xml_cursor.compare_order a b < 0 && sorted rest
        in
        sorted cursors
      in
      Bench_json.note_rows (List.length !matches);
      row "%-10d %12.1f %12.1f %14.1f %14s %10d\n" nodes parse_ms path_ms nav_ms
        (if in_order then "ok" else "VIOLATED")
        (List.length !matches))
    [ 1_000; 10_000; 50_000 ]

(* ------------------------------------------------------------------ *)
(* E8: hierarchical mediated schemas (section 2.1)                     *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8" "hierarchical mediated schemas: view-over-view chains (200-row base source)";
  row "%-8s %14s %12s %12s %12s\n" "depth" "plan ms" "run ms" "rows" "matches ref";
  let g = Prng.create 23 in
  let db = Workloads.customer_db g ~name:"crm" ~rows:200 in
  let cat = Med_catalog.create () in
  Med_catalog.register_source cat (Rel_source.make db);
  Med_catalog.define_view_text cat "level1"
    {|WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers"
      CONSTRUCT <c1><id>$i</id><name>$n</name></c1>|};
  for d = 2 to 6 do
    Med_catalog.define_view_text cat
      (Printf.sprintf "level%d" d)
      (Printf.sprintf
         {|WHERE <c%d><id>$i</id><name>$n</name></c%d> IN "level%d"
           CONSTRUCT <c%d><id>$i</id><name>$n</name></c%d>|}
         (d - 1) (d - 1) (d - 1) d d)
  done;
  for d = 1 to 6 do
    let text =
      Printf.sprintf
        {|WHERE <c%d><id>$i</id></c%d> IN "level%d", $i <= 50 CONSTRUCT <out>$i</out>|} d d d
    in
    let q = Xq_parser.parse_exn text in
    let plan_ms = Workloads.bench_ms ~runs:3 (fun () -> Med_planner.compile cat q) in
    let result = ref [] in
    let run_ms = Workloads.bench_ms ~runs:3 (fun () -> result := Med_exec.run cat q) in
    let reference = Xq_eval.eval (Med_exec.direct_resolver cat) q in
    let norm trees = List.sort compare (List.map Dtree.to_string trees) in
    Bench_json.note_rows (List.length !result);
    row "%-8d %14.2f %12.1f %12d %12s\n" d plan_ms run_ms (List.length !result)
      (if norm !result = norm reference then "yes" else "NO")
  done

(* ------------------------------------------------------------------ *)
(* E9: refresh policy — freshness vs remote cost (section 3.3)         *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9" "refresh interval: staleness vs network cost (one view, 120 queries, update every 4)";
  row "%-22s %12s %14s %14s\n" "policy" "calls" "network ms" "missed/query";
  let run policy_label policy =
    let g = Prng.create 77 in
    let db = Workloads.customer_db g ~name:"crm" ~rows:300 in
    let wrapped, stats =
      Net_sim.wrap { Net_sim.latency_ms = 10.0; per_tuple_ms = 0.02; availability = 1.0 }
        (Rel_source.make db)
    in
    let sys = Nimble.create ~cache_capacity:0 () in
    (match Nimble.register_source sys wrapped with Ok () -> () | Error m -> failwith m);
    (match
       Nimble.define_view sys "v"
         {|WHERE <row><id>$i</id></row> IN "crm.customers" CONSTRUCT <customer><id>$i</id></customer>|}
     with
    | Ok () -> ()
    | Error m -> failwith m);
    (match policy with
    | None -> ()
    | Some p -> (
      match Nimble.materialize_view sys ~policy:p "v" with
      | Ok () -> ()
      | Error m -> failwith m));
    let nqueries = 120 in
    let next_id = ref 50_000 in
    let missed = ref 0 in
    for q = 1 to nqueries do
      if q mod 4 = 0 then begin
        incr next_id;
        ignore
          (Rel_db.exec db
             (Printf.sprintf "INSERT INTO customers VALUES (%d, 'n%d', 'west', 1, 0.0)"
                !next_id !next_id))
      end;
      let trees =
        match
          Nimble.query sys {|WHERE <customer><id>$i</id></customer> IN "v" CONSTRUCT <r>$i</r>|}
        with
        | Ok trees -> trees
        | Error m -> failwith m
      in
      let truth = Rel_table.row_count (Rel_db.table_exn db "customers") in
      missed := !missed + (truth - List.length trees)
    done;
    Bench_json.note_param policy_label (Printf.sprintf "%.1f network ms" stats.Net_sim.virtual_ms);
    row "%-22s %12d %14.1f %14.2f\n" policy_label stats.Net_sim.calls stats.Net_sim.virtual_ms
      (float_of_int !missed /. float_of_int nqueries)
  in
  run "virtual (no copy)" None;
  run "refresh every 1" (Some Mat_store.On_access);
  run "refresh every 5" (Some (Mat_store.Every_n_queries 5));
  run "refresh every 20" (Some (Mat_store.Every_n_queries 20));
  run "refresh every 60" (Some (Mat_store.Every_n_queries 60));
  run "never refresh" (Some Mat_store.Manual)

(* ------------------------------------------------------------------ *)
(* E10: result caching under a skewed lens workload (section 4)        *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10" "query-result cache: 400 Zipf-distributed lens queries over 40 templates";
  row "%-12s %-8s %12s %12s %14s\n" "cache size" "theta" "hit rate" "calls" "network ms";
  List.iter
    (fun theta ->
      List.iter
        (fun capacity ->
          let g = Prng.create (int_of_float (theta *. 10.0) + capacity) in
          let db = Workloads.customer_db (Prng.create 3) ~name:"crm" ~rows:500 in
          let wrapped, stats =
            Net_sim.wrap { Net_sim.latency_ms = 5.0; per_tuple_ms = 0.02; availability = 1.0 }
              (Rel_source.make db)
          in
          let sys = Nimble.create ~cache_capacity:capacity () in
          (match Nimble.register_source sys wrapped with Ok () -> () | Error m -> failwith m);
          for _ = 1 to 400 do
            let which = Prng.zipf g ~n:40 ~theta in
            let text =
              Printf.sprintf
                {|WHERE <row><id>$i</id><tier>$t</tier></row> IN "crm.customers", $i <= %d
                  CONSTRUCT <r>$i</r>|}
                ((which + 1) * 10)
            in
            match Nimble.query sys text with
            | Ok _ -> ()
            | Error m -> failwith m
          done;
          Bench_json.note_param
            (Printf.sprintf "cap=%d theta=%.1f" capacity theta)
            (Printf.sprintf "hit %.2f" (Mat_cache.hit_rate (Nimble.cache sys)));
          row "%-12d %-8.1f %12.2f %12d %14.1f\n" capacity theta
            (Mat_cache.hit_rate (Nimble.cache sys))
            stats.Net_sim.calls stats.Net_sim.virtual_ms)
        [ 0; 4; 16; 64 ])
    [ 0.5; 1.2 ]

(* ------------------------------------------------------------------ *)
(* E11: observability — EXPLAIN ANALYZE and cost-model feedback        *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11" "explain-analyze on a federated join: default vs observed cardinalities";
  Obs_metrics.reset_all ();
  let g = Prng.create 11 in
  let ncust = if !quick then 120 else 300 in
  let customers = Workloads.customer_db g ~name:"crm" ~rows:ncust in
  let orders = Workloads.orders_db g ~name:"sales" ~rows:(3 * ncust) ~customers:ncust in
  let cat = Med_catalog.create () in
  List.iter
    (fun db ->
      let wrapped, _ =
        Net_sim.wrap ~seed:11
          { Net_sim.latency_ms = 8.0; per_tuple_ms = 0.05; availability = 1.0 }
          (Rel_source.make db)
      in
      Med_catalog.register_source cat wrapped)
    [ customers; orders ];
  let q =
    match
      Xq_parser.parse
        {|WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers",
                <row><cust_id>$i</cust_id><amount>$a</amount></row> IN "sales.orders",
                $a >= 450
          CONSTRUCT <big><who>$n</who><amount>$a</amount></big>|}
    with
    | Ok q -> q
    | Error m -> failwith m
  in
  (* Run 1 plans blind (every scan estimated at the 1000-row default);
     run 2 replans with the cardinalities run 1 observed. *)
  List.iter
    (fun label ->
      row "---- %s ----\n" label;
      let a = Med_exec.run_analyzed cat q in
      Bench_json.note_rows (List.length a.Med_exec.analyzed_result.Med_exec.trees);
      print_string (Med_exec.analysis_to_string a))
    [ "run 1 (default estimates)"; "run 2 (observed estimates)" ];
  print_string (Obs_report.source_breakdown ())

(* ------------------------------------------------------------------ *)
(* E12: scatter-gather fetching and the fragment cache                 *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "E12"
    "scatter-gather fetch: 4-source join, sequential vs overlapped rounds, cold vs warm fragment cache";
  let nrows = if !quick then 60 else 200 in
  let nsources = 4 in
  let g = Prng.create 12 in
  let cat = Med_catalog.create () in
  for i = 0 to nsources - 1 do
    let db = Workloads.customer_db g ~name:(Printf.sprintf "s%d" i) ~rows:nrows in
    let wrapped, _ =
      Net_sim.wrap ~seed:(120 + i) Net_sim.default_profile (Rel_source.make db)
    in
    Med_catalog.register_source cat wrapped
  done;
  let q =
    Xq_parser.parse_exn
      (Printf.sprintf
         {|WHERE <row><id>$i</id><name>$n0</name></row> IN "s0.customers",
                 <row><id>$i</id><name>$n1</name></row> IN "s1.customers",
                 <row><id>$i</id><name>$n2</name></row> IN "s2.customers",
                 <row><id>$i</id><name>$n3</name></row> IN "s3.customers",
                 $i <= %d
           CONSTRUCT <r><id>$i</id><a>$n0</a><b>$n3</b></r>|}
         (nrows / 2))
  in
  row "%-24s %12s %12s %10s\n" "mode" "virtual ms" "wall ms" "rows";
  let run label =
    let v0 = Obs_clock.virtual_ms () in
    let trees = ref [] in
    let (), wall = Workloads.time_ms (fun () -> trees := Med_exec.run cat q) in
    let dv = Obs_clock.virtual_ms () -. v0 in
    row "%-24s %12.1f %12.1f %10d\n" label dv wall (List.length !trees);
    (List.length !trees, dv)
  in
  Med_catalog.set_fetch_options cat Fetch_sched.default_options;
  let n_seq, v_seq = run "sequential" in
  Med_catalog.set_fetch_options cat (Fetch_sched.gather_options ());
  Med_catalog.configure_frag_cache cat ~capacity:64 ();
  let n_cold, v_cold = run "gather(4), cold cache" in
  let n_warm, v_warm = run "gather(4), warm cache" in
  assert (n_seq = n_cold && n_cold = n_warm);
  let pct a b = if b <= 0.0 then 0.0 else 100.0 *. a /. b in
  row "gather/sequential virtual: %.0f%%   warm/cold: %.0f%%\n" (pct v_cold v_seq)
    (pct v_warm v_cold);
  Bench_json.note_param "sources" (string_of_int nsources);
  Bench_json.note_param "rows_per_source" (string_of_int nrows);
  Bench_json.note_param "fanout" (string_of_int Fetch_sched.default_fanout);
  Bench_json.note_param "sequential_virtual_ms" (Printf.sprintf "%.1f" v_seq);
  Bench_json.note_param "gather_cold_virtual_ms" (Printf.sprintf "%.1f" v_cold);
  Bench_json.note_param "gather_warm_virtual_ms" (Printf.sprintf "%.1f" v_warm);
  Bench_json.note_param "gather_vs_sequential" (Printf.sprintf "%.0f%%" (pct v_cold v_seq));
  Bench_json.note_param "warm_vs_cold" (Printf.sprintf "%.0f%%" (pct v_warm v_cold));
  Bench_json.note_rows n_seq

(* ------------------------------------------------------------------ *)
(* E13: batch-at-a-time vs tuple-at-a-time execution                   *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13"
    "batch vs tuple execution: 10k x 10k hash join and a 4-source federated query";
  let no_sources _ _ = Seq.empty in
  (* Part 1: the E6 hash-join workload over both engines.  The plan
     stacks select+project on the join so the batch engine's fused
     operator is on the hot path too. *)
  let n = if !quick then 2_000 else 10_000 in
  let g = Prng.create 131 in
  let left = e6_relation g "l" n (max 1 (n / 10)) in
  let right = e6_relation g "r" n (max 1 (n / 10)) in
  let lk = Alg_expr.Child (Alg_expr.Var "l", "k") in
  let rk = Alg_expr.Child (Alg_expr.Var "r", "k") in
  let lv = Alg_expr.Child (Alg_expr.Var "l", "v") in
  let plan =
    Alg_plan.Project
      ( Alg_plan.Select
          ( Alg_plan.Hash_join
              { left; right; left_key = lk; right_key = rk; residual = None },
            Alg_expr.Binop (Alg_expr.Ge, lv, Alg_expr.Const (Value.Int 0)) ),
        [ "l"; "r" ] )
  in
  let tuple_envs = Alg_exec.run_list no_sources plan in
  let batch_envs, _ = Alg_exec.run_batched no_sources plan in
  let identical =
    List.length tuple_envs = List.length batch_envs
    && List.for_all2 Alg_env.equal tuple_envs batch_envs
  in
  if not identical then failwith "E13: batch and tuple results differ";
  let rows_out = List.length tuple_envs in
  let tuple_ms =
    Workloads.bench_ms ~runs:3 (fun () -> ignore (Alg_exec.run_list no_sources plan))
  in
  let batch_ms =
    Workloads.bench_ms ~runs:3 (fun () -> ignore (Alg_exec.run_batched no_sources plan))
  in
  let speedup = if batch_ms > 0.0 then tuple_ms /. batch_ms else 0.0 in
  row "%-28s %14s %14s %10s %10s\n" "join workload" "tuple ms" "batch ms" "speedup" "rows";
  row "%-28s %14.1f %14.1f %9.2fx %10d\n"
    (Printf.sprintf "%dx%d, |keys|=%d" n n (max 1 (n / 10)))
    tuple_ms batch_ms speedup rows_out;
  row "results identical (ordered): %s\n" (if identical then "yes" else "NO");
  Bench_json.note_param "join_n" (string_of_int n);
  Bench_json.note_param "join_tuple_ms" (Printf.sprintf "%.1f" tuple_ms);
  Bench_json.note_param "join_batch_ms" (Printf.sprintf "%.1f" batch_ms);
  Bench_json.note_param "join_speedup" (Printf.sprintf "%.2fx" speedup);
  Bench_json.note_rows rows_out;
  (* Part 2: an E12-style 4-source federated join, whole pipeline
     (planner + fetch + execution), under both exec modes. *)
  let nrows = if !quick then 60 else 200 in
  let nsources = 4 in
  let g = Prng.create 13 in
  let cat = Med_catalog.create () in
  for i = 0 to nsources - 1 do
    let db = Workloads.customer_db g ~name:(Printf.sprintf "s%d" i) ~rows:nrows in
    let wrapped, _ =
      Net_sim.wrap ~seed:(130 + i) Net_sim.default_profile (Rel_source.make db)
    in
    Med_catalog.register_source cat wrapped
  done;
  let q =
    Xq_parser.parse_exn
      (Printf.sprintf
         {|WHERE <row><id>$i</id><name>$n0</name></row> IN "s0.customers",
                 <row><id>$i</id><name>$n1</name></row> IN "s1.customers",
                 <row><id>$i</id><name>$n2</name></row> IN "s2.customers",
                 <row><id>$i</id><name>$n3</name></row> IN "s3.customers",
                 $i <= %d
           CONSTRUCT <r><id>$i</id><a>$n0</a><b>$n3</b></r>|}
         (nrows / 2))
  in
  row "%-28s %12s %10s\n" "federated mode" "wall ms" "rows";
  let run_fed label mode =
    Med_catalog.set_exec_mode cat mode;
    let trees = ref [] in
    let wall = Workloads.bench_ms ~runs:3 (fun () -> trees := Med_exec.run cat q) in
    row "%-28s %12.1f %10d\n" label wall (List.length !trees);
    (List.map Dtree.to_string !trees, wall)
  in
  let fed_tuple, fed_tuple_ms = run_fed "tuple" Alg_batch.Tuple in
  let fed_batch, fed_batch_ms =
    run_fed "batch (chunk=1024)" (Alg_batch.Batch { chunk = Alg_batch.default_chunk })
  in
  Med_catalog.set_exec_mode cat Alg_batch.Tuple;
  if fed_tuple <> fed_batch then failwith "E13: federated results differ across engines";
  row "federated results identical: yes\n";
  Bench_json.note_param "fed_sources" (string_of_int nsources);
  Bench_json.note_param "fed_rows_per_source" (string_of_int nrows);
  Bench_json.note_param "fed_tuple_ms" (Printf.sprintf "%.1f" fed_tuple_ms);
  Bench_json.note_param "fed_batch_ms" (Printf.sprintf "%.1f" fed_batch_ms);
  Bench_json.note_rows (List.length fed_tuple)

(* ------------------------------------------------------------------ *)
(* E14: morsel-driven parallel execution scaling                       *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14"
    "parallel vs batch execution: domain scaling on the E13 join workload and a federated query";
  let no_sources _ _ = Seq.empty in
  (* Part 1: the E13 join workload (hash join + select + project) under
     the morsel-driven parallel engine at 1, 2 and 4 domains, against
     the batch engine as baseline.  Results must be byte-identical at
     every domain count — that assertion is the hard part of the
     contract; the speedup depends on how many cores the host grants. *)
  let n = if !quick then 2_000 else 10_000 in
  let g = Prng.create 141 in
  let left = e6_relation g "l" n (max 1 (n / 10)) in
  let right = e6_relation g "r" n (max 1 (n / 10)) in
  let lk = Alg_expr.Child (Alg_expr.Var "l", "k") in
  let rk = Alg_expr.Child (Alg_expr.Var "r", "k") in
  let lv = Alg_expr.Child (Alg_expr.Var "l", "v") in
  let plan =
    Alg_plan.Project
      ( Alg_plan.Select
          ( Alg_plan.Hash_join
              { left; right; left_key = lk; right_key = rk; residual = None },
            Alg_expr.Binop (Alg_expr.Ge, lv, Alg_expr.Const (Value.Int 0)) ),
        [ "l"; "r" ] )
  in
  let cores = Domain.recommended_domain_count () in
  let batch_envs, _ = Alg_exec.run_batched no_sources plan in
  let rows_out = List.length batch_envs in
  let batch_ms =
    Workloads.bench_ms ~runs:3 (fun () -> ignore (Alg_exec.run_batched no_sources plan))
  in
  row "host cores available: %d\n" cores;
  row "%-28s %14s %10s %10s\n" "join workload" "wall ms" "speedup" "rows";
  row "%-28s %14.1f %10s %10d\n" "batch (baseline)" batch_ms "1.00x" rows_out;
  Bench_json.note_param "cores" (string_of_int cores);
  Bench_json.note_param "join_n" (string_of_int n);
  Bench_json.note_param "join_batch_ms" (Printf.sprintf "%.1f" batch_ms);
  List.iter
    (fun domains ->
      let par_envs, _ = Alg_exec.run_parallel ~domains no_sources plan in
      let identical =
        List.length batch_envs = List.length par_envs
        && List.for_all2 Alg_env.equal batch_envs par_envs
      in
      if not identical then
        failwith (Printf.sprintf "E14: parallel(domains=%d) differs from batch" domains);
      let par_ms =
        Workloads.bench_ms ~runs:3 (fun () ->
            ignore (Alg_exec.run_parallel ~domains no_sources plan))
      in
      let speedup = if par_ms > 0.0 then batch_ms /. par_ms else 0.0 in
      row "%-28s %14.1f %9.2fx %10d\n"
        (Printf.sprintf "parallel (domains=%d)" domains)
        par_ms speedup (List.length par_envs);
      Bench_json.note_param
        (Printf.sprintf "join_par%d_ms" domains)
        (Printf.sprintf "%.1f" par_ms);
      Bench_json.note_param
        (Printf.sprintf "join_par%d_speedup" domains)
        (Printf.sprintf "%.2fx" speedup))
    [ 1; 2; 4 ];
  row "results identical at every domain count: yes\n";
  Bench_json.note_rows rows_out;
  (* Part 2: the E13 federated 4-source join, whole pipeline, with the
     catalog switched to the parallel engine.  Scans still run on the
     caller (the network simulator is not shared across domains); only
     the post-fetch algebra is parallelized. *)
  let nrows = if !quick then 60 else 200 in
  let nsources = 4 in
  let g = Prng.create 14 in
  let cat = Med_catalog.create () in
  for i = 0 to nsources - 1 do
    let db = Workloads.customer_db g ~name:(Printf.sprintf "s%d" i) ~rows:nrows in
    let wrapped, _ =
      Net_sim.wrap ~seed:(140 + i) Net_sim.default_profile (Rel_source.make db)
    in
    Med_catalog.register_source cat wrapped
  done;
  let q =
    Xq_parser.parse_exn
      (Printf.sprintf
         {|WHERE <row><id>$i</id><name>$n0</name></row> IN "s0.customers",
                 <row><id>$i</id><name>$n1</name></row> IN "s1.customers",
                 <row><id>$i</id><name>$n2</name></row> IN "s2.customers",
                 <row><id>$i</id><name>$n3</name></row> IN "s3.customers",
                 $i <= %d
           CONSTRUCT <r><id>$i</id><a>$n0</a><b>$n3</b></r>|}
         (nrows / 2))
  in
  row "%-28s %12s %10s\n" "federated mode" "wall ms" "rows";
  let run_fed label mode =
    Med_catalog.set_exec_mode cat mode;
    let trees = ref [] in
    let wall = Workloads.bench_ms ~runs:3 (fun () -> trees := Med_exec.run cat q) in
    row "%-28s %12.1f %10d\n" label wall (List.length !trees);
    (List.map Dtree.to_string !trees, wall)
  in
  let fed_tuple, fed_tuple_ms = run_fed "tuple" Alg_batch.Tuple in
  let fed_par, fed_par_ms =
    run_fed "parallel (domains=2)"
      (Alg_batch.Parallel { domains = 2; chunk = Alg_batch.default_chunk })
  in
  Med_catalog.set_exec_mode cat Alg_batch.Tuple;
  if fed_tuple <> fed_par then failwith "E14: federated results differ across engines";
  row "federated results identical: yes\n";
  Bench_json.note_param "fed_sources" (string_of_int nsources);
  Bench_json.note_param "fed_rows_per_source" (string_of_int nrows);
  Bench_json.note_param "fed_tuple_ms" (Printf.sprintf "%.1f" fed_tuple_ms);
  Bench_json.note_param "fed_par_ms" (Printf.sprintf "%.1f" fed_par_ms)

(* ------------------------------------------------------------------ *)
(* E15: concurrency server — closed-loop workload, plan cache cold vs  *)
(* warm                                                                *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "E15"
    "concurrency server: closed-loop lens workload, plan cache cold vs warm";
  let requests = if !quick then 48 else 480 in
  let spec = { Srv_workload.demo_spec with requests } in
  (* One configuration = fresh federation + server.  Both run one
     untimed pass first — it populates the warm cache, and it leaves
     engines and session counters in the same mid-stream state either
     way, so the measured passes differ only in whether requests pay
     parse + plan. *)
  let run_config ~label ~capacity =
    Obs_clock.reset_virtual ();
    let sys = Srv_workload.demo_system () in
    (* A roomy queue: the experiment measures plan-cache economics, so
       requests should reach the planner instead of being shed. *)
    let config =
      {
        Srv_dispatch.default_config with
        plan_cache_capacity = capacity;
        queue = { Srv_admit.queue_capacity = 64; max_session_in_flight = 32 };
      }
    in
    let srv = Srv_dispatch.create ~config sys in
    List.iter
      (fun (user, password) ->
        match Srv_dispatch.open_session srv ~user ~password with
        | Ok _ -> ()
        | Error m -> failwith ("E15: open_session: " ^ m))
      Srv_workload.demo_users;
    ignore (Srv_workload.run srv spec);
    let summary, wall =
      Workloads.time_ms (fun () -> Srv_workload.run srv spec)
    in
    let completed = summary.Srv_workload.ws_completed in
    let hit_rate =
      if completed = 0 then 0.0
      else float_of_int summary.ws_plan_hits /. float_of_int completed
    in
    let throughput = if wall > 0.0 then float_of_int completed /. wall else 0.0 in
    row "%-24s %10.1f %10.2f %9.0f%% %10d %12.1f\n" label wall throughput
      (100.0 *. hit_rate) completed summary.ws_elapsed_ms;
    (wall, hit_rate, summary)
  in
  row "requests per pass: %d (seed %d)\n" requests spec.Srv_workload.seed;
  row "%-24s %10s %10s %10s %10s %12s\n" "configuration" "wall ms" "req/ms"
    "hit rate" "completed" "virtual ms";
  let cold_ms, cold_hits, cold = run_config ~label:"cold (cache off)" ~capacity:0 in
  let warm_ms, warm_hits, warm = run_config ~label:"warm (cache 32)" ~capacity:32 in
  (* The cache must change costs, never results: both configurations see
     the same deterministic request stream and must settle it the same
     way. *)
  if
    cold.Srv_workload.ws_completed <> warm.Srv_workload.ws_completed
    || cold.ws_rejected <> warm.ws_rejected
    || cold.ws_elapsed_ms <> warm.ws_elapsed_ms
  then failwith "E15: warm and cold runs disagree on outcomes";
  let speedup = if warm_ms > 0.0 then cold_ms /. warm_ms else 0.0 in
  row "warm outcomes identical to cold: yes\n";
  row "parse+plan skipped on warm pass: %.0f%% of completions (%.2fx wall speedup)\n"
    (100.0 *. warm_hits) speedup;
  Bench_json.note_param "requests" (string_of_int requests);
  Bench_json.note_param "cold_ms" (Printf.sprintf "%.1f" cold_ms);
  Bench_json.note_param "warm_ms" (Printf.sprintf "%.1f" warm_ms);
  Bench_json.note_param "speedup" (Printf.sprintf "%.2fx" speedup);
  Bench_json.note_param "cold_hit_rate" (Printf.sprintf "%.2f" cold_hits);
  Bench_json.note_param "warm_hit_rate" (Printf.sprintf "%.2f" warm_hits);
  Bench_json.note_rows (cold.ws_completed + warm.Srv_workload.ws_completed)

(* ------------------------------------------------------------------ *)
(* E16: semantic caching — containment hits and remainder shipping     *)
(* ------------------------------------------------------------------ *)

let e16 () =
  section "E16"
    "semantic cache: contained predicates answered locally, overlaps ship only the remainder";
  let nrows = if !quick then 400 else 2_000 in
  (* Two identical federations, semantic cache off vs on; the cache must
     change shipping volume, never answers. *)
  let make_system ~sem_budget_bytes ~seed =
    let cat = Med_catalog.create ~sem_budget_bytes () in
    let db = Workloads.customer_db (Prng.create 16) ~name:"crm" ~rows:nrows in
    let wrapped, stats =
      Net_sim.wrap ~seed Net_sim.default_profile (Rel_source.make db)
    in
    Med_catalog.register_source cat wrapped;
    (cat, stats)
  in
  let cat_off, st_off = make_system ~sem_budget_bytes:0 ~seed:160 in
  let cat_on, st_on = make_system ~sem_budget_bytes:(1 lsl 22) ~seed:160 in
  let q_le k =
    Xq_parser.parse_exn
      (Printf.sprintf
         {|WHERE <row><id>$i</id><name>$n</name><balance>$b</balance></row> IN "crm.customers",
                 $i <= %d
           CONSTRUCT <c><id>$i</id><n>$n</n><b>$b</b></c>|}
         k)
  in
  let q_range a b =
    Xq_parser.parse_exn
      (Printf.sprintf
         {|WHERE <row><id>$i</id><name>$n</name><balance>$b</balance></row> IN "crm.customers",
                 $i > %d, $i <= %d
           CONSTRUCT <c><id>$i</id><n>$n</n><b>$b</b></c>|}
         a b)
  in
  let render trees = String.concat "\n" (List.map Dtree.to_string trees) in
  let total_rows = ref 0 in
  let run_pair q =
    let t_off = Med_exec.run cat_off q in
    let t_on = Med_exec.run cat_on q in
    if render t_off <> render t_on then
      failwith "E16: semantic cache changed answers";
    total_rows := !total_rows + List.length t_on;
    List.length t_on
  in
  let phase label queries =
    let s_off = st_off.Net_sim.tuples_shipped
    and s_on = st_on.Net_sim.tuples_shipped
    and v_off = st_off.Net_sim.virtual_ms
    and v_on = st_on.Net_sim.virtual_ms in
    let out = List.fold_left (fun acc q -> acc + run_pair q) 0 queries in
    let d_off = st_off.Net_sim.tuples_shipped - s_off
    and d_on = st_on.Net_sim.tuples_shipped - s_on in
    row "%-32s %10d %12d %12d %10.1f %10.1f\n" label out d_off d_on
      (st_off.Net_sim.virtual_ms -. v_off)
      (st_on.Net_sim.virtual_ms -. v_on);
    (d_off, d_on)
  in
  row "%-32s %10s %12s %12s %10s %10s\n" "phase" "rows out" "shipped off"
    "shipped on" "net ms off" "net ms on";
  (* Cold: first contact — both systems ship the full extent. *)
  let cold_off, cold_on = phase "cold: id <= n/2" [ q_le (nrows / 2) ] in
  (* Warm: narrower predicates are contained in the cached extent — the
     semantic cache filters locally and ships nothing. *)
  let contained =
    [ q_le (nrows / 3); q_le (nrows / 4); q_le (nrows / 6); q_le (nrows / 8) ]
  in
  let warm_off, warm_on = phase "warm: contained sweeps" contained in
  (* Overlap: the range (n/4, 3n/4] straddles the cached extent's edge —
     the probe answers (n/4, n/2] locally and ships only (n/2, 3n/4]. *)
  let over_off, over_on =
    phase "overlap: n/4 < id <= 3n/4" [ q_range (nrows / 4) (3 * nrows / 4) ]
  in
  (* Repeat: the merged extent admitted by the partial hit now answers
     the same range without shipping at all. *)
  let rep_off, rep_on =
    phase "repeat overlapping range" [ q_range (nrows / 4) (3 * nrows / 4) ]
  in
  let st = Sem_cache.stats (Med_catalog.sem_cache cat_on) in
  row
    "semantic cache: hits=%d partial=%d miss=%d rows local=%d shipped=%d \
     admitted=%d\n"
    st.Sem_cache.sem_hits st.Sem_cache.sem_partials st.Sem_cache.sem_misses
    st.Sem_cache.sem_rows_local st.Sem_cache.sem_rows_shipped
    st.Sem_cache.sem_admissions;
  row "answers identical with cache on and off: yes\n";
  if warm_on >= warm_off then
    failwith "E16: warm sweep did not reduce shipped rows";
  if over_on >= over_off then
    failwith "E16: overlap did not reduce shipped rows";
  if st.Sem_cache.sem_hits = 0 || st.Sem_cache.sem_partials = 0 then
    failwith "E16: expected both full and partial hits";
  Bench_json.note_param "rows" (string_of_int nrows);
  Bench_json.note_param "cold_shipped_off_on"
    (Printf.sprintf "%d/%d" cold_off cold_on);
  Bench_json.note_param "warm_shipped_off_on"
    (Printf.sprintf "%d/%d" warm_off warm_on);
  Bench_json.note_param "overlap_shipped_off_on"
    (Printf.sprintf "%d/%d" over_off over_on);
  Bench_json.note_param "repeat_shipped_off_on"
    (Printf.sprintf "%d/%d" rep_off rep_on);
  Bench_json.note_param "hits" (string_of_int st.Sem_cache.sem_hits);
  Bench_json.note_param "partial_hits" (string_of_int st.Sem_cache.sem_partials);
  Bench_json.note_param "misses" (string_of_int st.Sem_cache.sem_misses);
  Bench_json.note_param "rows_local" (string_of_int st.Sem_cache.sem_rows_local);
  Bench_json.note_param "rows_shipped"
    (string_of_int st.Sem_cache.sem_rows_shipped);
  Bench_json.note_param "identical" "yes";
  Bench_json.note_rows !total_rows

(* ------------------------------------------------------------------ *)
(* E17: cost-based optimizer — DPsize + bind joins vs greedy           *)
(* ------------------------------------------------------------------ *)

let e17 () =
  section "E17"
    "cost-based optimizer: DPsize join order and bind joins vs greedy on a star join";
  let nfact = if !quick then 600 else 5_000 in
  let ncust = 60 and nprod = 40 and nstore = 30 in
  (* One federation per optimizer mode, identical data (same PRNG seed):
     a fact source and three dimension sources, all behind the network
     simulator.  The optimizer must change shipping volume, never
     answers. *)
  let make_system ~mode =
    let cat = Med_catalog.create () in
    Med_catalog.set_optimizer cat mode;
    let g = Prng.create 170 in
    let mk_db name stmts =
      let db = Rel_db.create ~name () in
      List.iter (fun s -> ignore (Rel_db.exec db s)) stmts;
      db
    in
    let cust =
      mk_db "cust"
        ("CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, tier INT)"
        :: List.init ncust (fun i ->
               Printf.sprintf "INSERT INTO customers VALUES (%d, 'customer %d', %d)"
                 (i + 1) (i + 1) (1 + Prng.int g 3)))
    in
    let prod =
      mk_db "prod"
        ("CREATE TABLE products (pid INT PRIMARY KEY, pname TEXT)"
        :: List.init nprod (fun i ->
               Printf.sprintf "INSERT INTO products VALUES (%d, 'product %d')" (i + 1)
                 (i + 1)))
    in
    let store =
      mk_db "store"
        ("CREATE TABLE stores (stid INT PRIMARY KEY, city TEXT)"
        :: List.init nstore (fun i ->
               Printf.sprintf "INSERT INTO stores VALUES (%d, 'city %d')" (i + 1)
                 (i + 1)))
    in
    let sales =
      mk_db "sales"
        ("CREATE TABLE sales (sid INT PRIMARY KEY, cust_id INT, prod_id INT, \
          store_id INT, amount FLOAT)"
        :: List.init nfact (fun i ->
               Printf.sprintf "INSERT INTO sales VALUES (%d, %d, %d, %d, %g)"
                 (i + 1)
                 (1 + Prng.int g ncust)
                 (1 + Prng.int g nprod)
                 (1 + Prng.int g nstore)
                 (float_of_int (10 + Prng.int g 9_000) /. 10.0)))
    in
    let fact_profile =
      { Net_sim.latency_ms = 8.0; per_tuple_ms = 0.05; availability = 1.0 }
    in
    let dim_profile =
      { Net_sim.latency_ms = 5.0; per_tuple_ms = 0.02; availability = 1.0 }
    in
    let stats =
      List.map
        (fun (db, profile) ->
          let wrapped, st = Net_sim.wrap ~seed:17 profile (Rel_source.make db) in
          Med_catalog.register_source cat wrapped;
          st)
        [
          (sales, fact_profile); (cust, dim_profile); (prod, dim_profile);
          (store, dim_profile);
        ]
    in
    (cat, stats)
  in
  let cat_g, st_g = make_system ~mode:Med_optimize.Greedy in
  let cat_d, st_d = make_system ~mode:Med_optimize.dp in
  (* Exact statistics on both sides: the DP side needs them to tell the
     fact from the dimensions; the greedy side gets the same estimates
     for a fair comparison.  Shipped-row counters are snapshotted after
     this, so the analysis scans are excluded from the measurement. *)
  ignore (Med_catalog.analyze cat_g);
  ignore (Med_catalog.analyze cat_d);
  let q =
    Xq_parser.parse_exn
      {|WHERE <row><sid>$s</sid><cust_id>$c</cust_id><prod_id>$p</prod_id><store_id>$st</store_id><amount>$a</amount></row> IN "sales.sales",
              <row><id>$c</id><name>$cn</name><tier>$t</tier></row> IN "cust.customers",
              <row><pid>$p</pid><pname>$pn</pname></row> IN "prod.products",
              <row><stid>$st</stid><city>$ct</city></row> IN "store.stores",
              $t = 1
        CONSTRUCT <sale><sid>$s</sid><customer>$cn</customer><product>$pn</product><city>$ct</city><amount>$a</amount></sale>
        ORDER BY $s|}
  in
  let render trees = String.concat "\n" (List.map Dtree.to_string trees) in
  let shipped sts = List.fold_left (fun a s -> a + s.Net_sim.tuples_shipped) 0 sts in
  let virt sts = List.fold_left (fun a s -> a +. s.Net_sim.virtual_ms) 0.0 sts in
  let measure cat sts =
    let s0 = shipped sts and v0 = virt sts in
    let trees = Med_exec.run cat q in
    (render trees, List.length trees, shipped sts - s0, virt sts -. v0)
  in
  let ans_g, rows_g, ship_g, ms_g = measure cat_g st_g in
  let ans_d, rows_d, ship_d, ms_d = measure cat_d st_d in
  let compiled_d = Med_planner.compile cat_d q in
  let oi =
    match compiled_d.Med_planner.opt_info with
    | Some oi -> oi
    | None -> failwith "E17: DP compile produced no optimizer info"
  in
  row "%-24s %14s %16s %12s\n" "configuration" "shipped rows" "net virtual ms"
    "answer rows";
  row "%-24s %14d %16.1f %12d\n" "greedy" ship_g ms_g rows_g;
  row "%-24s %14d %16.1f %12d\n" "dp (+bind joins)" ship_d ms_d rows_d;
  row "%s\n" (Med_planner.opt_info_to_string oi);
  if ans_g <> ans_d then failwith "E17: optimizer changed answers";
  if ship_d >= ship_g then
    failwith "E17: DP plan did not ship strictly fewer rows than greedy";
  if ms_d >= ms_g then
    failwith "E17: DP plan did not spend strictly less virtual time than greedy";
  if oi.Med_planner.oi_binds = [] then
    failwith "E17: DP plan converted no access to a bind join";
  (* Same answers from every engine under both optimizers. *)
  let engines =
    [
      ("tuple", Alg_batch.Tuple);
      ("batch", Alg_batch.Batch { chunk = 256 });
      ("parallel", Alg_batch.Parallel { domains = 2; chunk = 128 });
    ]
  in
  List.iter
    (fun (label, m) ->
      Med_catalog.set_exec_mode cat_g m;
      Med_catalog.set_exec_mode cat_d m;
      if render (Med_exec.run cat_g q) <> ans_g
         || render (Med_exec.run cat_d q) <> ans_g
      then failwith (Printf.sprintf "E17: answers diverged under %s engine" label))
    engines;
  row "answers identical across greedy/dp and tuple/batch/parallel engines: yes\n";
  Bench_json.note_param "fact_rows" (string_of_int nfact);
  Bench_json.note_param "greedy_shipped" (string_of_int ship_g);
  Bench_json.note_param "dp_shipped" (string_of_int ship_d);
  Bench_json.note_param "greedy_virtual_ms" (Printf.sprintf "%.1f" ms_g);
  Bench_json.note_param "dp_virtual_ms" (Printf.sprintf "%.1f" ms_d);
  Bench_json.note_param "dp_order" oi.Med_planner.oi_order;
  Bench_json.note_param "bind_joins"
    (string_of_int (List.length oi.Med_planner.oi_binds));
  Bench_json.note_param "identical" "yes";
  Bench_json.note_rows (rows_g + rows_d)

(* ------------------------------------------------------------------ *)
(* E18: path & value indexes — structural probes vs walking the store  *)
(* ------------------------------------------------------------------ *)

let e18 () =
  section "E18"
    "path & value indexes: guide/value probes vs tree walking on a deep XML store";
  let nprod = if !quick then 400 else 4_000 in
  let repeat = if !quick then 20 else 60 in
  (* One deep document: products sit under six levels of section
     nesting, so the walker pays the whole tree on every query while a
     guide probe pays only the matching nodes. *)
  let g = Prng.create 180 in
  let xml =
    let buf = Buffer.create (nprod * 96) in
    Buffer.add_string buf "<catalog>";
    for i = 1 to nprod do
      Buffer.add_string buf "<sect><sect><sect><sect><sect>";
      Buffer.add_string buf
        (Printf.sprintf
           {|<product sku="sku%d"><price>%d</price><cat>%s</cat></product>|}
           i
           (10 + Prng.int g 190)
           (if Prng.int g 2 = 0 then "tools" else "infra"));
      Buffer.add_string buf "</sect></sect></sect></sect></sect>"
    done;
    Buffer.add_string buf "</catalog>";
    Buffer.contents buf
  in
  (* The workload: a guide-answered navigation (variable sku) and a
     value-index-answered point lookup (literal sku). *)
  let queries =
    [
      Xq_parser.parse_exn
        {|WHERE <product sku=$s><price>$p</price></product> IN "shop.catalog", $p < 15
          CONSTRUCT <r><s>$s</s><p>$p</p></r>|};
      Xq_parser.parse_exn
        (Printf.sprintf
           {|WHERE <product sku="sku%d"><price>$p</price></product> IN "shop.catalog"
             CONSTRUCT <hit>$p</hit>|}
           (nprod / 2));
    ]
  in
  let make_cat () =
    let cat = Med_catalog.create () in
    Med_catalog.register_source cat
      (Xml_source.of_xml_strings ~name:"shop" [ ("catalog", xml) ]);
    cat
  in
  let render trees = String.concat "\n" (List.map Dtree.to_string trees) in
  let transcript cat = String.concat "\n==\n" (List.map (fun q -> render (Med_exec.run cat q)) queries) in
  (* Steady-state wall time of [repeat] rounds; one warm-up round first
     so the indexed side builds its guide/value indexes outside the
     measured window (builds are a one-time cost the report shows
     separately via the manager's byte accounting). *)
  let measure mode =
    Idx_manager.clear ();
    Idx_manager.reset_stats ();
    Idx_manager.set_mode mode;
    let cat = make_cat () in
    let answer = transcript cat in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to repeat do ignore (transcript cat) done;
    let ms = (Unix.gettimeofday () -. t0) *. 1_000.0 in
    let guide, value, miss = Idx_manager.counters () in
    (answer, ms, guide, value, miss, Idx_manager.total_bytes ())
  in
  let ans_off, ms_off, _, _, miss_off, _ = measure Idx_manager.Off in
  let ans_on, ms_on, guide_on, value_on, miss_on, bytes_on =
    measure Idx_manager.Auto
  in
  if ans_off <> ans_on then failwith "E18: indexes changed answers";
  if guide_on = 0 || value_on = 0 then
    failwith "E18: workload failed to exercise both guide and value probes";
  row "%-24s %12s %14s %14s %12s\n" "configuration" "wall ms" "guide probes"
    "value probes" "walks";
  row "%-24s %12.1f %14d %14d %12d\n" "indexes off" ms_off 0 0 miss_off;
  row "%-24s %12.1f %14d %14d %12d\n" "indexes auto" ms_on guide_on value_on
    miss_on;
  row "index bytes: %d; speedup: %.1fx over %d rounds\n" bytes_on
    (ms_off /. ms_on) repeat;
  if ms_off < 2.0 *. ms_on then
    failwith
      (Printf.sprintf "E18: expected >= 2x real-time speedup, got %.2fx"
         (ms_off /. ms_on));
  (* Byte-identical answers from every engine, indexed and not. *)
  let engines =
    [
      ("tuple", Alg_batch.Tuple);
      ("batch", Alg_batch.Batch { chunk = 256 });
      ("parallel", Alg_batch.Parallel { domains = 2; chunk = 128 });
    ]
  in
  List.iter
    (fun (label, m) ->
      List.iter
        (fun mode ->
          Idx_manager.clear ();
          Idx_manager.set_mode mode;
          let cat = make_cat () in
          Med_catalog.set_exec_mode cat m;
          if transcript cat <> ans_off then
            failwith
              (Printf.sprintf "E18: answers diverged under %s engine (%s)" label
                 (Idx_manager.mode_to_string mode)))
        [ Idx_manager.Off; Idx_manager.Eager ])
    engines;
  row "answers identical across off/auto/eager and tuple/batch/parallel: yes\n";
  Idx_manager.clear ();
  Idx_manager.set_mode Idx_manager.Auto;
  Bench_json.note_param "products" (string_of_int nprod);
  Bench_json.note_param "rounds" (string_of_int repeat);
  Bench_json.note_param "off_ms" (Printf.sprintf "%.1f" ms_off);
  Bench_json.note_param "auto_ms" (Printf.sprintf "%.1f" ms_on);
  Bench_json.note_param "speedup" (Printf.sprintf "%.1f" (ms_off /. ms_on));
  Bench_json.note_param "guide_probes" (string_of_int guide_on);
  Bench_json.note_param "value_probes" (string_of_int value_on);
  Bench_json.note_param "index_bytes" (string_of_int bytes_on);
  Bench_json.note_param "identical" "yes";
  Bench_json.note_rows (2 * repeat)

(* ------------------------------------------------------------------ *)
(* E19: fault injection — availability sweep with retries on/off, and  *)
(* breaker fail-fast vs naive per-fragment retry timeouts              *)
(* ------------------------------------------------------------------ *)

let e19 () =
  section "E19"
    "fault injection: completeness & virtual time vs availability, breaker fail-fast";
  let rows = if !quick then 40 else 200 in
  let queries = if !quick then 25 else 100 in
  let q =
    Xq_parser.parse_exn
      {|WHERE <row><id>$i</id><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 1
        CONSTRUCT <c>$n</c>|}
  in
  (* Backoff 15/30ms outlasts every transient window the schedule below
     generates at availability >= 0.7 (window <= 12ms per 40ms period). *)
  let retry_policy =
    {
      Src_retry.default_policy with
      max_retries = 2;
      base_backoff_ms = 15.0;
      max_backoff_ms = 60.0;
      jitter = 0.0;
    }
  in
  (* One configuration = fresh federation under a seeded transient
     schedule; [queries] partial-mode queries separated by 13ms of
     think time.  Virtual cost counts only query time (retries,
     backoffs, latencies), not the think time. *)
  let run_config ~availability ~retries =
    Obs_clock.reset_virtual ();
    let faults =
      Net_sim.availability_schedule ~seed:7 ~availability ~period_ms:40.0
        ~horizon_ms:1.0e7
    in
    let cat = Med_catalog.create () in
    let src, _ =
      Net_sim.wrap ~seed:7 ~faults Net_sim.default_profile
        (Rel_source.make (Workloads.customer_db (Prng.create 191) ~name:"crm" ~rows))
    in
    Med_catalog.register_source cat src;
    if retries then Med_catalog.set_retry_policy cat retry_policy;
    let compiled = Med_exec.compile cat q in
    let complete = ref 0 and vms = ref 0.0 in
    for _ = 1 to queries do
      let v0 = Obs_clock.virtual_ms () in
      let r = Med_exec.run_compiled_partial cat compiled in
      vms := !vms +. (Obs_clock.virtual_ms () -. v0);
      if r.Med_exec.skipped_sources = [] then incr complete;
      Obs_clock.advance 13.0
    done;
    (100.0 *. float_of_int !complete /. float_of_int queries, !vms)
  in
  row "%-14s %14s %14s %14s %14s\n" "availability" "complete(off)" "vms(off)"
    "complete(on)" "vms(on)";
  List.iter
    (fun availability ->
      let c_off, v_off = run_config ~availability ~retries:false in
      let c_on, v_on = run_config ~availability ~retries:true in
      row "%-14.1f %13.0f%% %14.1f %13.0f%% %14.1f\n" availability c_off v_off c_on
        v_on;
      (* The acceptance bar: a 2-retry budget recovers every fragment of
         every query when windows are short enough to outlast. *)
      if (availability = 0.7 || availability = 0.9) && c_on < 100.0 then
        failwith
          (Printf.sprintf
             "E19: retries-on completeness %.0f%% at availability %.1f (expected \
              100%%)"
             c_on availability);
      Bench_json.note_param
        (Printf.sprintf "a%.1f" availability)
        (Printf.sprintf "off %.0f%%/%.1fms on %.0f%%/%.1fms" c_off v_off c_on v_on))
    [ 1.0; 0.9; 0.7; 0.5 ];
  (* Breaker fail-fast: against a persistently dead source, naive
     per-fragment retry timeouts pay latency plus backoff on every
     query; a breaker pays them once, then fails fast. *)
  let dead_run ~breaker =
    Obs_clock.reset_virtual ();
    let cat = Med_catalog.create () in
    let src, _ =
      Net_sim.wrap ~seed:7
        ~faults:[ Net_sim.persistently_offline ]
        Net_sim.default_profile
        (Rel_source.make (Workloads.customer_db (Prng.create 192) ~name:"crm" ~rows))
    in
    Med_catalog.register_source cat src;
    Med_catalog.set_retry_policy cat
      { retry_policy with breaker; breaker_threshold = 3; breaker_cooldown_ms = 1.0e6 };
    let compiled = Med_exec.compile cat q in
    let v0 = Obs_clock.virtual_ms () in
    for _ = 1 to queries do
      ignore (Med_exec.run_compiled_partial cat compiled)
    done;
    Obs_clock.virtual_ms () -. v0
  in
  let v_naive = dead_run ~breaker:false in
  let v_breaker = dead_run ~breaker:true in
  row "dead source, %d queries: naive %.1f virtual ms, breaker %.1f virtual ms (%.0fx)\n"
    queries v_naive v_breaker (v_naive /. Float.max v_breaker 0.001);
  if v_breaker >= v_naive then
    failwith "E19: breaker fail-fast did not cut virtual time";
  Bench_json.note_param "naive_virtual_ms" (Printf.sprintf "%.1f" v_naive);
  Bench_json.note_param "breaker_virtual_ms" (Printf.sprintf "%.1f" v_breaker);
  Bench_json.note_param "queries" (string_of_int queries);
  Bench_json.note_param "retries" (string_of_int retry_policy.Src_retry.max_retries);
  Bench_json.note_rows queries

let all () =
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e4b ();
  e5 ();
  e5b ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  e17 ();
  e18 ();
  e19 ()
