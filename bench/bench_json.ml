(* Machine-readable companion to the printed tables: each experiment run
   writes BENCH_<id>.json in the working directory, so scripts (and the
   acceptance harness) can track the headline numbers without scraping
   stdout.

   Experiments accumulate params/rows via [note_*] while they run; the
   harness in main.ml measures wall and virtual time around the whole
   experiment and calls [emit]. *)

let params : (string * string) list ref = ref []
let rows = ref 0

let reset () =
  params := [];
  rows := 0

let note_param key value = params := !params @ [ (key, value) ]
let note_rows n = rows := !rows + n

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let emit ~name ~virtual_ms ~wall_ms =
  let file = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"name\": \"%s\",\n  \"params\": {" (escape name);
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "%s\n    \"%s\": \"%s\"" (if i = 0 then "" else ",") (escape k) (escape v))
    !params;
  if !params <> [] then output_string oc "\n  ";
  Printf.fprintf oc "},\n  \"virtual_ms\": %.3f,\n  \"wall_ms\": %.3f,\n  \"rows\": %d\n}\n"
    virtual_ms wall_ms !rows;
  close_out oc;
  reset ()
