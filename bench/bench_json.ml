(* Machine-readable companion to the printed tables: each experiment run
   writes BENCH_<id>.json in the working directory, so scripts (and the
   acceptance harness) can track the headline numbers without scraping
   stdout.

   Experiments accumulate params/rows via [note_*] while they run; the
   harness in main.ml measures wall and virtual time around the whole
   experiment and calls [emit]. *)

let params : (string * string) list ref = ref []
let rows = ref 0

let reset () =
  params := [];
  rows := 0

let note_param key value = params := !params @ [ (key, value) ]
let note_rows n = rows := !rows + n

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Well-formedness check (the bench-smoke alias runs it on E13's       *)
(* output).  A tiny recursive-descent JSON reader — we avoid a JSON    *)
(* dependency for the same reason [emit] writes by hand.               *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let validate_text text =
  let pos = ref 0 in
  let len = String.length text in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while (match peek () with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        loop ()
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let digits () =
      let saw = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        saw := true;
        advance ()
      done;
      if not !saw then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  (* Returns the keys when the value is an object, [] otherwise: the
     caller only inspects the top level. *)
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' ->
      ignore (parse_string ());
      []
    | Some '{' ->
      advance ();
      skip_ws ();
      let keys = ref [] in
      (match peek () with
      | Some '}' -> advance ()
      | _ ->
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          if List.mem k !keys then fail (Printf.sprintf "duplicate key %S" k);
          keys := k :: !keys;
          skip_ws ();
          expect ':';
          ignore (parse_value ());
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ());
      List.rev !keys
    | Some '[' ->
      advance ();
      skip_ws ();
      (match peek () with
      | Some ']' -> advance ()
      | _ ->
        let rec elements () =
          ignore (parse_value ());
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ());
      []
    | Some ('t' | 'f' | 'n') ->
      let lit = if peek () = Some 't' then "true" else if peek () = Some 'f' then "false" else "null" in
      String.iter (fun c -> if peek () = Some c then advance () else fail "bad literal") lit;
      []
    | Some _ ->
      parse_number ();
      []
    | None -> fail "unexpected end of input"
  in
  try
    let keys = parse_value () in
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing garbage at byte %d" !pos)
    else begin
      let required = [ "name"; "params"; "virtual_ms"; "wall_ms"; "rows" ] in
      match List.filter (fun k -> not (List.mem k keys)) required with
      | [] -> Ok ()
      | missing -> Error ("missing keys: " ^ String.concat ", " missing)
    end
  with Bad msg -> Error msg

let validate_file file =
  match
    try
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      Some text
    with Sys_error msg ->
      prerr_endline msg;
      None
  with
  | None -> Error (Printf.sprintf "cannot read %s" file)
  | Some text -> validate_text text

let emit ~name ~virtual_ms ~wall_ms =
  let file = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"name\": \"%s\",\n  \"params\": {" (escape name);
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "%s\n    \"%s\": \"%s\"" (if i = 0 then "" else ",") (escape k) (escape v))
    !params;
  if !params <> [] then output_string oc "\n  ";
  Printf.fprintf oc "},\n  \"virtual_ms\": %.3f,\n  \"wall_ms\": %.3f,\n  \"rows\": %d\n}\n"
    virtual_ms wall_ms !rows;
  close_out oc;
  reset ()
