(** Hierarchical trace spans.

    A span is one timed region of work — a query, one source access, one
    plan operator — with string attributes and child spans.  Spans record
    both clocks of {!Obs_clock}: wall duration and virtual (simulated
    network) duration.

    The {!null} sentinel makes disabled tracing free: every mutator is a
    no-op on it, so instrumented code can call [set]/[add_child]
    unconditionally. *)

type t

val null : t
(** The do-nothing span handed out when the sink is disabled. *)

val is_null : t -> bool

val make : ?attrs:(string * string) list -> string -> t
(** A live span started now (on both clocks). *)

val name : t -> string

val set : t -> string -> string -> unit
(** Attach or append an attribute (no-op on {!null}). *)

val set_int : t -> string -> int -> unit
val set_ms : t -> string -> float -> unit

val attrs : t -> (string * string) list
(** Attributes in insertion order. *)

val duration_ms : t -> float
val virtual_duration_ms : t -> float
val set_duration_ms : t -> float -> unit
(** Override the wall duration (used when a span is synthesized from
    already-measured statistics rather than timed live). *)

val add_child : t -> t -> unit
val children : t -> t list

val finish : t -> unit
(** Close the span: record wall and virtual durations since [make]. *)
