(* One formatting path for every stats surface: Net_sim's one-line
   summaries, the CLI stats tables and trace rendering all go through
   [cells]. *)

let cells kvs = String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)

let int_cell k n = (k, string_of_int n)

let ms_cell k ms = (k, Printf.sprintf "%.2f" ms)

(* How an access was fetched, for EXPLAIN ANALYZE access tables and span
   attributes: the scatter-gather round it rode in, whether it shared
   another access's execution, and fragment-cache hits it was served. *)
let fetch_cells ~round ~shared ~cache_hits =
  [ ("round", string_of_int round) ]
  @ (if shared then [ ("shared", "yes") ] else [])
  @ if cache_hits > 0 then [ ("cached", string_of_int cache_hits) ] else []

(* Per-request cells of the concurrency server: engine id, virtual queue
   wait, plan-cache outcome. *)
let serve_cells ~engine ~queue_wait_ms ~plan_hit =
  [
    ("engine", string_of_int engine);
    ms_cell "wait" queue_wait_ms;
    ("plan", if plan_hit then "hit" else "miss");
  ]

(* ------------------------------------------------------------------ *)
(* Span trees                                                          *)
(* ------------------------------------------------------------------ *)

let span_tree sp =
  let buf = Buffer.create 256 in
  let rec go indent sp =
    Buffer.add_string buf (String.make (indent * 2) ' ');
    Buffer.add_string buf (Obs_span.name sp);
    Buffer.add_string buf (Printf.sprintf "  %.2fms" (Obs_span.duration_ms sp));
    let vms = Obs_span.virtual_duration_ms sp in
    if vms > 0.0 then Buffer.add_string buf (Printf.sprintf " (virtual %.2fms)" vms);
    (match Obs_span.attrs sp with
    | [] -> ()
    | attrs -> Buffer.add_string buf (Printf.sprintf " {%s}" (cells attrs)));
    Buffer.add_char buf '\n';
    List.iter (go (indent + 1)) (Obs_span.children sp)
  in
  go 0 sp;
  Buffer.contents buf

let trace_report () =
  match Obs_trace.roots () with
  | [] -> "trace: no spans recorded (is the sink enabled?)\n"
  | roots ->
    let buf = Buffer.create 512 in
    Buffer.add_string buf "trace:\n";
    List.iter (fun sp -> Buffer.add_string buf (span_tree sp)) roots;
    Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_report () =
  match Obs_metrics.to_rows () with
  | [] -> "metrics: (empty)\n"
  | rows ->
    let buf = Buffer.create 512 in
    Buffer.add_string buf "metrics:\n";
    List.iter
      (fun (name, value) -> Buffer.add_string buf (Printf.sprintf "  %-40s %s\n" name value))
      rows;
    Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Per-source breakdown                                                *)
(* ------------------------------------------------------------------ *)

(* Metric naming convention: [source.<name>.<field>].  Counters feed
   plain fields; the [latency_ms] histogram contributes its sum as
   virtual_ms; the [available] gauge renders yes/no. *)

let counter_fields = [ "accesses"; "rows"; "calls"; "rejected"; "failed"; "tuples"; "unavailable" ]

let source_names_in_registry () =
  List.filter_map
    (fun name ->
      if String.length name > 7 && String.sub name 0 7 = "source." then
        match String.rindex_opt name '.' with
        | Some i when i > 7 -> Some (String.sub name 7 (i - 7))
        | _ -> None
      else None)
    (Obs_metrics.names ())
  |> List.sort_uniq String.compare

let source_cells source =
  let metric field = Printf.sprintf "source.%s.%s" source field in
  let counters =
    List.filter_map
      (fun field ->
        match Obs_metrics.counter_value (metric field) with
        | Some n -> Some (int_cell field n)
        | None -> None)
      counter_fields
  in
  let latency =
    match Obs_metrics.find_histogram (metric "latency_ms") with
    | Some h -> [ ms_cell "virtual_ms" (Obs_metrics.histogram_sum h) ]
    | None -> []
  in
  let available =
    match Obs_metrics.find_gauge (metric "available") with
    | Some g -> [ ("available", if Obs_metrics.gauge_value g > 0.0 then "yes" else "no") ]
    | None -> []
  in
  counters @ latency @ available

let source_breakdown () =
  match source_names_in_registry () with
  | [] -> "per-source: (no source activity recorded)\n"
  | sources ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf "per-source:\n";
    List.iter
      (fun s -> Buffer.add_string buf (Printf.sprintf "  %-16s %s\n" s (cells (source_cells s))))
      sources;
    Buffer.contents buf
