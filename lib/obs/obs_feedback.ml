type observation = {
  mutable last_rows : float;
  mutable samples : int;
}

type t = { table : (string, observation) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let record t key rows =
  let rows = float_of_int (max 0 rows) in
  match Hashtbl.find_opt t.table key with
  | Some obs ->
    obs.last_rows <- rows;
    obs.samples <- obs.samples + 1
  | None -> Hashtbl.replace t.table key { last_rows = rows; samples = 1 }

let observed t key =
  Option.map (fun obs -> obs.last_rows) (Hashtbl.find_opt t.table key)

let samples t key =
  match Hashtbl.find_opt t.table key with Some obs -> obs.samples | None -> 0

let size t = Hashtbl.length t.table

let reset t = Hashtbl.reset t.table

let to_rows t =
  Hashtbl.fold (fun key obs acc -> (key, obs.last_rows, obs.samples) :: acc) t.table []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
