(** Observed-cardinality store: the cost-model feedback loop.

    Execution records how many rows each access actually produced, keyed
    by a stable description of the access (the pushed SQL text, the path
    expression, …).  The planner's [source_rows] provider consults the
    store, so a repeated query estimates scans with {e measured} rather
    than default cardinalities.  The store keeps the most recent
    observation per key (last-value wins — sources drift, and the last
    run is the best predictor of the next). *)

type t

val create : unit -> t

val record : t -> string -> int -> unit
(** [record t key rows] — negative counts clamp to 0. *)

val observed : t -> string -> float option
(** The most recent observation for [key]. *)

val samples : t -> string -> int
(** How many observations [key] has accumulated (0 when unknown). *)

val size : t -> int
val reset : t -> unit

val to_rows : t -> (string * float * int) list
(** (key, last observed rows, sample count), sorted by key. *)
