(** The two clocks of the observability subsystem.

    Wall time is real elapsed time, used for operator and fragment
    timings.  Virtual time is the deterministic simulated-network clock
    that {!Net_sim} charges (latency + per-tuple transfer); components
    advance it explicitly, so traces can report both "how long did this
    take here" and "how much simulated network time did it cost". *)

val wall_ms : unit -> float
(** Current wall-clock time in milliseconds (monotonic enough for
    span durations). *)

val advance : float -> unit
(** Advance the process-wide virtual clock by [ms] (negative or zero
    amounts are ignored). *)

val virtual_ms : unit -> float
(** Accumulated virtual milliseconds since start (or the last reset).
    Inside an open round this includes the in-progress lane, so virtual
    deltas measured within one fetch stay meaningful. *)

val reset_virtual : unit -> unit

(** {1 Overlapped rounds}

    Scatter-gather accounting: a round models K fetches issued
    concurrently on the virtual clock.  While a round is open,
    {!advance} accumulates into the current {e lane} (one lane per
    fetch, started with {!begin_lane}); {!end_round} advances the clock
    by the {e maximum} lane total — concurrent fetches cost the slowest
    one, not the sum.  Per-source accounting ({!Net_sim.stats}) is
    unaffected: it still records every call's full cost.

    Rounds nest defensively: only the outermost round keeps lanes, and
    a nested round's contributions merge serially into the enclosing
    lane (conservative, deterministic). *)

val begin_round : unit -> unit

val begin_lane : unit -> unit
(** Seal the current lane and start a new one.  No-op outside the
    outermost round. *)

val end_round : unit -> float
(** Close the round; when the outermost round closes, advance the clock
    by the maximum lane total and return it (0 for nested rounds). *)

val in_round : unit -> bool
