(** The two clocks of the observability subsystem.

    Wall time is real elapsed time, used for operator and fragment
    timings.  Virtual time is the deterministic simulated-network clock
    that {!Net_sim} charges (latency + per-tuple transfer); components
    advance it explicitly, so traces can report both "how long did this
    take here" and "how much simulated network time did it cost". *)

val wall_ms : unit -> float
(** Current wall-clock time in milliseconds (monotonic enough for
    span durations). *)

val advance : float -> unit
(** Advance the process-wide virtual clock by [ms] (negative or zero
    amounts are ignored). *)

val virtual_ms : unit -> float
(** Accumulated virtual milliseconds since start (or the last reset). *)

val reset_virtual : unit -> unit
