type t = {
  span_name : string;
  mutable attrs : (string * string) list; (* reversed; insertion order on read *)
  mutable started_wall : float;
  mutable dur_ms : float;
  mutable started_virtual : float;
  mutable dur_vms : float;
  mutable kids : t list; (* reversed *)
}

(* The shared sentinel handed out when tracing is disabled: every
   operation on it is a no-op, so instrumented code pays nothing. *)
let null =
  {
    span_name = "";
    attrs = [];
    started_wall = 0.0;
    dur_ms = 0.0;
    started_virtual = 0.0;
    dur_vms = 0.0;
    kids = [];
  }

let is_null sp = sp == null

let make ?(attrs = []) name =
  {
    span_name = name;
    attrs = List.rev attrs;
    started_wall = Obs_clock.wall_ms ();
    dur_ms = 0.0;
    started_virtual = Obs_clock.virtual_ms ();
    dur_vms = 0.0;
    kids = [];
  }

let name sp = sp.span_name

let set sp key value = if not (is_null sp) then sp.attrs <- (key, value) :: sp.attrs

let set_int sp key n = set sp key (string_of_int n)

let set_ms sp key ms = set sp key (Printf.sprintf "%.2fms" ms)

let attrs sp = List.rev sp.attrs

let duration_ms sp = sp.dur_ms

let virtual_duration_ms sp = sp.dur_vms

let set_duration_ms sp ms = if not (is_null sp) then sp.dur_ms <- ms

let add_child parent child =
  if not (is_null parent || is_null child) then parent.kids <- child :: parent.kids

let children sp = List.rev sp.kids

let finish sp =
  if not (is_null sp) then begin
    sp.dur_ms <- Obs_clock.wall_ms () -. sp.started_wall;
    sp.dur_vms <- Obs_clock.virtual_ms () -. sp.started_virtual
  end
