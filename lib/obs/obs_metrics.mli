(** Process-wide metrics registry: counters, gauges, and histograms with
    fixed bucket boundaries.

    Metric handles are get-or-create by dotted name ([counter "cache.hits"]
    returns the same counter every time), so instrumented modules never
    coordinate registration.  Handles stay valid across {!reset_all},
    which zeroes values in place.  Registering one name under two
    different kinds is a programming error ([Invalid_argument]). *)

type counter
type gauge
type histogram

(** {1 Counters} *)

val counter : string -> counter
val inc : ?by:int -> counter -> unit
val value : counter -> int

(** {1 Gauges} *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

val default_buckets : float list
(** Millisecond-scale boundaries: 1, 5, 10, 25, 50, 100, 250, 500, 1000. *)

val histogram : ?buckets:float list -> string -> histogram
(** [buckets] is only consulted on first registration. *)

val observe : histogram -> float -> unit
val histogram_sum : histogram -> float
val histogram_count : histogram -> int

val histogram_buckets : histogram -> (float * int) list
(** Per-bucket (upper bound, count) pairs; the final bound is
    [infinity]. *)

(** {1 Registry} *)

val find_counter : string -> counter option
val find_gauge : string -> gauge option
val find_histogram : string -> histogram option

val counter_value : string -> int option
(** Shorthand for tests: the value of a registered counter. *)

val reset_all : unit -> unit
(** Zero every registered metric in place (handles stay valid). *)

val names : unit -> string list
(** Registered metric names, sorted. *)

val to_rows : unit -> (string * string) list
(** (name, rendered value) for every metric, sorted by name; histograms
    render as [count=N sum=S]. *)
