(** The pluggable trace sink: a process-wide collector of finished span
    trees.  {e Off by default}: when disabled, {!with_span} passes
    {!Obs_span.null} to its body and allocates nothing, so instrumented
    hot paths cost two branches. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_span : string -> (Obs_span.t -> 'a) -> 'a
(** [with_span name f] runs [f] inside a new span nested under the
    innermost open span (or as a new root).  The span closes when [f]
    returns or raises; an escaping exception is recorded as an [error]
    attribute and re-raised.  When the sink is disabled, [f] receives
    {!Obs_span.null}. *)

val emit : Obs_span.t -> unit
(** Attach an externally-built (already finished) span tree under the
    innermost open span, or as a root.  No-op when disabled. *)

val roots : unit -> Obs_span.t list
(** Finished root spans, oldest first. *)

val clear : unit -> unit
