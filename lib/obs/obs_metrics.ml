type counter = { mutable c_value : int }

type gauge = { mutable g_value : float }

type histogram = {
  h_buckets : float array; (* upper bounds, ascending; implicit +inf last *)
  h_counts : int array;    (* length = Array.length h_buckets + 1 *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let default_buckets = [ 1.0; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0 ]

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register name make select =
  match Hashtbl.find_opt registry name with
  | Some m -> (
    match select m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Obs_metrics: %s is already registered as a %s" name (kind_name m)))
  | None ->
    let m, v = make () in
    Hashtbl.replace registry name m;
    v

let counter name =
  register name
    (fun () ->
      let c = { c_value = 0 } in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let inc ?(by = 1) c = c.c_value <- c.c_value + by

let value c = c.c_value

let gauge name =
  register name
    (fun () ->
      let g = { g_value = 0.0 } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let set_gauge g v = g.g_value <- v

let gauge_value g = g.g_value

let histogram ?(buckets = default_buckets) name =
  register name
    (fun () ->
      let bounds = Array.of_list (List.sort_uniq compare buckets) in
      let h =
        { h_buckets = bounds; h_counts = Array.make (Array.length bounds + 1) 0;
          h_sum = 0.0; h_count = 0 }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  let n = Array.length h.h_buckets in
  let rec slot i = if i >= n || v <= h.h_buckets.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let histogram_sum h = h.h_sum
let histogram_count h = h.h_count

let histogram_buckets h =
  List.init
    (Array.length h.h_counts)
    (fun i ->
      let bound =
        if i < Array.length h.h_buckets then h.h_buckets.(i) else infinity
      in
      (bound, h.h_counts.(i)))

let find_counter name =
  match Hashtbl.find_opt registry name with Some (Counter c) -> Some c | _ -> None

let find_gauge name =
  match Hashtbl.find_opt registry name with Some (Gauge g) -> Some g | _ -> None

let find_histogram name =
  match Hashtbl.find_opt registry name with Some (Histogram h) -> Some h | _ -> None

let counter_value name = Option.map value (find_counter name)

let reset_all () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
        Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
        h.h_sum <- 0.0;
        h.h_count <- 0)
    registry

let names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort String.compare

let render_value = function
  | Counter c -> string_of_int c.c_value
  | Gauge g -> Printf.sprintf "%g" g.g_value
  | Histogram h -> Printf.sprintf "count=%d sum=%.2f" h.h_count h.h_sum

let to_rows () =
  List.map
    (fun name -> (name, render_value (Hashtbl.find registry name)))
    (names ())
