let on = ref false

let enabled () = !on

let set_enabled b = on := b

(* Open spans, innermost first; finished roots, oldest last. *)
let stack : Obs_span.t list ref = ref []
let finished : Obs_span.t list ref = ref []

let attach sp =
  match !stack with
  | parent :: _ -> Obs_span.add_child parent sp
  | [] -> finished := sp :: !finished

let emit sp = if !on && not (Obs_span.is_null sp) then attach sp

let with_span name f =
  if not !on then f Obs_span.null
  else begin
    let sp = Obs_span.make name in
    stack := sp :: !stack;
    let finish () =
      (match !stack with
      | top :: rest when top == sp -> stack := rest
      | _ -> stack := List.filter (fun s -> not (s == sp)) !stack);
      Obs_span.finish sp;
      attach sp
    in
    match f sp with
    | v ->
      finish ();
      v
    | exception e ->
      Obs_span.set sp "error" (Printexc.to_string e);
      finish ();
      raise e
  end

let roots () = List.rev !finished

let clear () =
  stack := [];
  finished := []
