(** Rendering for the observability subsystem — the {e single}
    formatting path shared by Net_sim summaries, the CLI [stats]/[trace]
    commands and EXPLAIN ANALYZE access tables. *)

val cells : (string * string) list -> string
(** ["k=v k=v …"] — the shared cell format. *)

val int_cell : string -> int -> string * string

val ms_cell : string -> float -> string * string
(** [ms_cell k ms] renders with two decimals (no unit suffix), matching
    the historical [virtual_ms=…] cells. *)

val fetch_cells :
  round:int -> shared:bool -> cache_hits:int -> (string * string) list
(** Cells describing how a source access was fetched under
    scatter-gather: its round, outcome sharing (dedup) and
    fragment-cache hits.  Shared by EXPLAIN ANALYZE and span attrs. *)

val serve_cells :
  engine:int -> queue_wait_ms:float -> plan_hit:bool -> (string * string) list
(** The per-request cells of the concurrency server's reports: which
    logical engine ran it, how long it queued (virtual ms), and whether
    the lens plan cache hit. *)

val span_tree : Obs_span.t -> string
(** One span tree, two-space indented:
    [name  1.23ms (virtual 5.00ms) {attr=v …}]. *)

val trace_report : unit -> string
(** Every finished root span in {!Obs_trace}, oldest first. *)

val metrics_report : unit -> string
(** All registered metrics, one [name value] line each, sorted. *)

val source_cells : string -> (string * string) list
(** The per-source stats cells for one source, harvested from registry
    metrics named [source.<name>.<field>]. *)

val source_breakdown : unit -> string
(** Table of every source that has recorded activity. *)
