let wall_ms () = Unix.gettimeofday () *. 1000.0

let virtual_clock = ref 0.0

let advance ms = if ms > 0.0 then virtual_clock := !virtual_clock +. ms

let virtual_ms () = !virtual_clock

let reset_virtual () = virtual_clock := 0.0
