let wall_ms () = Unix.gettimeofday () *. 1000.0

let virtual_clock = ref 0.0

(* Overlapped fetch rounds (scatter-gather): while a round is open,
   advances land in the current lane instead of moving the clock, and
   closing the round moves the clock by the maximum lane total — K
   concurrent fetches cost the slowest one, not the sum.  Only the
   outermost round does lane accounting; nested rounds (a view fetched
   inside a round compiles and gathers its own plan) merge their
   contributions serially into the enclosing lane, which is
   conservative but deterministic. *)
let round_depth = ref 0
let lane_cur = ref 0.0
let lane_max = ref 0.0

let advance ms =
  if ms > 0.0 then
    if !round_depth > 0 then lane_cur := !lane_cur +. ms
    else virtual_clock := !virtual_clock +. ms

let begin_round () =
  incr round_depth;
  if !round_depth = 1 then begin
    lane_cur := 0.0;
    lane_max := 0.0
  end

let begin_lane () =
  if !round_depth = 1 then begin
    lane_max := Float.max !lane_max !lane_cur;
    lane_cur := 0.0
  end

let end_round () =
  if !round_depth > 0 then decr round_depth;
  if !round_depth = 0 then begin
    let cost = Float.max !lane_max !lane_cur in
    lane_cur := 0.0;
    lane_max := 0.0;
    virtual_clock := !virtual_clock +. cost;
    cost
  end
  else 0.0

let in_round () = !round_depth > 0

(* Including the in-progress lane keeps virtual deltas measured inside
   a lane (per-access spans, TTL checks) meaningful mid-round. *)
let virtual_ms () = !virtual_clock +. (if !round_depth > 0 then !lane_cur else 0.0)

let reset_virtual () =
  virtual_clock := 0.0;
  round_depth := 0;
  lane_cur := 0.0;
  lane_max := 0.0
