(** The Nimble data model: ordered trees with typed leaves.

    This is the model of section 3.1 — it accommodates XML (ordered,
    labelled, attributed trees) but its leaves are typed atomic values
    rather than text, so relational and hierarchical data flow through the
    engine without lossy string round-trips. *)

type t =
  | Atom of Value.t
  | Node of node

and node = {
  label : string;
  attrs : (string * Value.t) list;
  kids : t list;
}

(** {1 Constructors} *)

val atom : Value.t -> t
val node : ?attrs:(string * Value.t) list -> string -> t list -> t
val leaf : string -> Value.t -> t
(** [leaf label v] is [node label [atom v]]. *)

(** {1 Accessors} *)

val label : t -> string option
val attr : t -> string -> Value.t option
val kids : t -> t list
val kids_named : t -> string -> t list
val first_named : t -> string -> t option

val atom_value : t -> Value.t option
(** [Some v] when the tree is [Atom v] or a node whose single child is an
    atom. *)

val text : t -> string
(** Concatenated textual form of all atom descendants, in order. *)

val size : t -> int
(** Node + atom count. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Conversions} *)

val of_xml : Xml_types.node -> t
(** Attributes and text become guessed-type atoms; comments, processing
    instructions and whitespace-only text between elements are
    dropped. *)

val of_xml_element : Xml_types.element -> t

val to_xml : t -> Xml_types.node
(** Atoms render via {!Value.to_string}. *)

val to_xml_element : t -> Xml_types.element
(** @raise Invalid_argument when the tree is a bare atom. *)

val of_tuple : string -> Tuple.t -> t
(** [of_tuple label tup] wraps each field as a child leaf:
    [<label><f1>v1</f1>...</label>]. *)

val to_tuple : t -> Tuple.t
(** Inverse of {!of_tuple} for one level of leaves; non-leaf children are
    flattened to their textual form. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
