type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

(* splitmix64 step *)
let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next_int64 t in
  { state = s }

let copy t = { state = t.state }

let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next_nonneg t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let float t bound = unit_float t *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = unit_float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l = pick t (Array.of_list l)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Cache the harmonic normalizer per (n, theta) to keep repeated draws
   cheap inside workload generators. *)
let zipf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 8

let zipf_cdf n theta =
  match Hashtbl.find_opt zipf_cache (n, theta) with
  | Some c -> c
  | None ->
    let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (weights.(i) /. total);
      cdf.(i) <- !acc
    done;
    Hashtbl.replace zipf_cache (n, theta) cdf;
    cdf

let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  if theta <= 0.0 then int t n
  else begin
    let cdf = zipf_cdf n theta in
    let u = unit_float t in
    (* binary search for the first index with cdf >= u *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
  end

let gaussian t =
  let u1 = max 1e-12 (unit_float t) in
  let u2 = unit_float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
