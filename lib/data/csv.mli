(** RFC-4180-style CSV parsing and printing for flat-file sources. *)

val parse : ?separator:char -> string -> string list list
(** Parse CSV text into rows of cells.  Handles double-quoted cells with
    embedded separators, newlines and escaped quotes ([""]).  A trailing
    final newline does not produce an empty row. *)

val parse_rows :
  ?separator:char -> header:bool -> string -> string list * string list list
(** [parse_rows ~header s] returns [(column_names, rows)].  When [header]
    is false, columns are named [c1], [c2], … by the widest row. *)

val to_tuples : ?separator:char -> header:bool -> string -> Tuple.t list
(** Parse into tuples with type-guessed values; short rows pad with
    [Null], long rows drop extra cells. *)

val print : ?separator:char -> string list list -> string
(** Render rows, quoting cells that need it. *)
