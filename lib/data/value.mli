(** Atomic values of the Nimble data model.

    The paper (section 3.1) motivates a data model that accommodates XML
    but is "slightly more structured", so relational and hierarchical data
    are handled naturally.  Atomic values are the leaves of that model:
    typed scalars with total ordering, coercions between the textual world
    of XML and the typed world of relational sources, and NULL. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of date

and date = {
  year : int;
  month : int;  (** 1..12 *)
  day : int;    (** 1..31 *)
}

type ty = TNull | TBool | TInt | TFloat | TString | TDate

val type_of : t -> ty
val ty_to_string : ty -> string

(** {1 Construction and parsing} *)

val date : int -> int -> int -> t
(** [date y m d] validates ranges.  @raise Invalid_argument when out of
    range. *)

val of_string_guess : string -> t
(** Parse with type guessing: int, then float, then ISO date
    ([YYYY-MM-DD]), then bool ([true]/[false]), else string.  The empty
    string parses as [Null]. *)

val parse_as : ty -> string -> t option
(** Parse a string as a specific type; [None] when it does not conform.
    Parsing as [TString] always succeeds; as [TNull] succeeds only on the
    empty string. *)

(** {1 Rendering} *)

val to_string : t -> string
(** Textual form: what the value looks like as XML text content.  [Null]
    renders as the empty string. *)

val to_display : t -> string
(** Like {!to_string} but [Null] renders as ["NULL"] (for tables). *)

val pp : Format.formatter -> t -> unit

(** {1 Comparison and arithmetic} *)

val compare : t -> t -> int
(** Total order used by sort operators: Null < Bool < numbers < String <
    Date; Int and Float compare numerically with each other. *)

val equal : t -> t -> bool

val compare_sql : t -> t -> int option
(** SQL-style comparison: [None] when either side is [Null] (unknown). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Numeric arithmetic; [Null] propagates; [String ^ String]
    concatenates under {!add}.
    @raise Invalid_argument on non-numeric operands otherwise. *)

val neg : t -> t

val is_truthy : t -> bool
(** Boolean coercion for predicates: [Bool b] is [b]; [Null] is false;
    numbers are true when nonzero; strings when non-empty. *)

(** {1 Coercions} *)

val to_int : t -> int option
val to_float : t -> float option
val to_bool : t -> bool option

val cast : ty -> t -> t option
(** Value-level cast, e.g. [cast TInt (String "42") = Some (Int 42)]. *)

val hash : t -> int
(** Hash compatible with {!equal} (numeric Int/Float that are equal hash
    alike). *)

val date_to_days : date -> int
(** Days since 1970-01-01 (civil-calendar conversion); usable for date
    arithmetic and comparisons. *)
