type column = {
  col_name : string;
  col_ty : Value.ty;
  nullable : bool;
}

type relational = {
  rel_name : string;
  columns : column list;
}

let column ?(nullable = false) col_name col_ty = { col_name; col_ty; nullable }

let relational rel_name columns =
  let names = List.map (fun c -> c.col_name) columns in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg (Printf.sprintf "Dschema.relational %S: duplicate column names" rel_name);
  { rel_name; columns }

let find_column r name = List.find_opt (fun c -> String.equal c.col_name name) r.columns

let column_names r = List.map (fun c -> c.col_name) r.columns

let ty_compatible col_ty v =
  match v, col_ty with
  | Value.Null, _ -> true
  | _, Value.TString -> true (* strings absorb anything textual *)
  | v, ty when Value.type_of v = ty -> true
  | Value.Int _, Value.TFloat -> true
  | _, _ -> false

let conforms r tup =
  List.length (Tuple.fields tup) = List.length r.columns
  && List.for_all
       (fun c ->
         match Tuple.get tup c.col_name with
         | None -> false
         | Some Value.Null -> c.nullable
         | Some v -> ty_compatible c.col_ty v)
       r.columns

let coerce_tuple r tup =
  let coerce_col c =
    match Tuple.get tup c.col_name with
    | None | Some Value.Null -> if c.nullable then Some (c.col_name, Value.Null) else None
    | Some v -> (
      if ty_compatible c.col_ty v && c.col_ty <> Value.TString then Some (c.col_name, v)
      else
        match Value.cast c.col_ty v with
        | Some v' -> Some (c.col_name, v')
        | None -> None)
  in
  let rec go acc = function
    | [] -> Some (Tuple.make (List.rev acc))
    | c :: rest -> (
      match coerce_col c with
      | Some binding -> go (binding :: acc) rest
      | None -> None)
  in
  go [] r.columns

let unify_ty a b =
  match a, b with
  | t, u when t = u -> t
  | Value.TNull, t | t, Value.TNull -> t
  | Value.TInt, Value.TFloat | Value.TFloat, Value.TInt -> Value.TFloat
  | _, _ -> Value.TString

let infer_relational name tuples =
  (* First-seen column order. *)
  let order : string list ref = ref [] in
  let info : (string, Value.ty * bool) Hashtbl.t = Hashtbl.create 16 in
  let observe tup =
    List.iter
      (fun (fname, v) ->
        if not (Hashtbl.mem info fname) then begin
          order := fname :: !order;
          Hashtbl.replace info fname (Value.TNull, false)
        end;
        let ty, nullable = Hashtbl.find info fname in
        match v with
        | Value.Null -> Hashtbl.replace info fname (ty, true)
        | v -> Hashtbl.replace info fname (unify_ty ty (Value.type_of v), nullable))
      (Tuple.fields tup)
  in
  List.iter observe tuples;
  (* Columns absent from some tuple are nullable. *)
  let all = List.rev !order in
  let missing_somewhere fname =
    List.exists (fun tup -> not (Tuple.mem tup fname)) tuples
  in
  let columns =
    List.map
      (fun fname ->
        let ty, nullable = Hashtbl.find info fname in
        let ty = if ty = Value.TNull then Value.TString else ty in
        { col_name = fname; col_ty = ty; nullable = nullable || missing_somewhere fname })
      all
  in
  { rel_name = name; columns }

let relational_to_string r =
  let col c =
    Printf.sprintf "%s %s%s" c.col_name (Value.ty_to_string c.col_ty)
      (if c.nullable then "?" else "")
  in
  Printf.sprintf "%s(%s)" r.rel_name (String.concat ", " (List.map col r.columns))

(* ------------------------------------------------------------------ *)
(* Tree schemas                                                        *)
(* ------------------------------------------------------------------ *)

type tree_rule = {
  elem : string;
  elem_attrs : string list;
  elem_children : string list;
  leaf : bool;
}

type tree = tree_rule list

let infer_tree t =
  let rules : (string, tree_rule) Hashtbl.t = Hashtbl.create 16 in
  let add_sorted xs x = if List.mem x xs then xs else List.sort String.compare (x :: xs) in
  let rec go = function
    | Dtree.Atom _ -> ()
    | Dtree.Node n ->
      let rule =
        match Hashtbl.find_opt rules n.Dtree.label with
        | Some r -> r
        | None -> { elem = n.Dtree.label; elem_attrs = []; elem_children = []; leaf = false }
      in
      let rule =
        List.fold_left
          (fun r (aname, _) -> { r with elem_attrs = add_sorted r.elem_attrs aname })
          rule n.Dtree.attrs
      in
      let rule =
        List.fold_left
          (fun r k ->
            match k with
            | Dtree.Atom _ -> { r with leaf = true }
            | Dtree.Node c -> { r with elem_children = add_sorted r.elem_children c.Dtree.label })
          rule n.Dtree.kids
      in
      Hashtbl.replace rules n.Dtree.label rule;
      List.iter go n.Dtree.kids
  in
  go t;
  Hashtbl.fold (fun _ r acc -> r :: acc) rules []
  |> List.sort (fun a b -> String.compare a.elem b.elem)

let tree_conforms schema t =
  let find label = List.find_opt (fun r -> String.equal r.elem label) schema in
  let rec go = function
    | Dtree.Atom _ -> true
    | Dtree.Node n -> (
      match find n.Dtree.label with
      | None -> false
      | Some rule ->
        List.for_all (fun (aname, _) -> List.mem aname rule.elem_attrs) n.Dtree.attrs
        && List.for_all
             (fun k ->
               match k with
               | Dtree.Atom _ -> rule.leaf
               | Dtree.Node c -> List.mem c.Dtree.label rule.elem_children && go k)
             n.Dtree.kids)
  in
  go t

let tree_to_string schema =
  let rule r =
    Printf.sprintf "%s: attrs[%s] children[%s]%s" r.elem
      (String.concat "," r.elem_attrs)
      (String.concat "," r.elem_children)
      (if r.leaf then " +text" else "")
  in
  String.concat "\n" (List.map rule schema)
