(** Schemas for the two shapes the engine cares about.

    Relational schemas describe the tuples a source or operator produces:
    an ordered list of typed columns.  Tree schemas are a DTD-lite for
    XML-shaped data: which children and attributes an element label may
    carry.  Both support inference from data and compatibility checks the
    catalog uses when registering sources. *)

(** {1 Relational schemas} *)

type column = {
  col_name : string;
  col_ty : Value.ty;
  nullable : bool;
}

type relational = {
  rel_name : string;
  columns : column list;
}

val column : ?nullable:bool -> string -> Value.ty -> column

val relational : string -> column list -> relational
(** @raise Invalid_argument on duplicate column names. *)

val find_column : relational -> string -> column option
val column_names : relational -> string list

val conforms : relational -> Tuple.t -> bool
(** Does the tuple have exactly the schema's fields with compatible types?
    [Null] conforms to nullable columns; [Int] conforms to [TFloat]
    columns. *)

val coerce_tuple : relational -> Tuple.t -> Tuple.t option
(** Reorder and cast a tuple into schema shape; [None] when a non-nullable
    column is missing or a cast fails. *)

val infer_relational : string -> Tuple.t list -> relational
(** Infer column names (union, first-seen order), types (widened: Int+Float
    becomes Float, any conflict becomes String) and nullability. *)

val unify_ty : Value.ty -> Value.ty -> Value.ty
(** Widening used by inference. *)

val relational_to_string : relational -> string

(** {1 Tree schemas} *)

type tree_rule = {
  elem : string;
  elem_attrs : string list;
  elem_children : string list;  (** allowed child labels; leaves allow atoms *)
  leaf : bool;                  (** may contain atom children *)
}

type tree = tree_rule list

val infer_tree : Dtree.t -> tree
(** One rule per distinct label, merging observations. *)

val tree_conforms : tree -> Dtree.t -> bool
(** Every node's label has a rule admitting its attributes and children. *)

val tree_to_string : tree -> string
