(** Deterministic splittable PRNG (splitmix64).

    Every random choice in the system — workload generators, network
    simulation, availability sampling — flows through an explicit state of
    this type, so tests and benchmarks are reproducible bit-for-bit. *)

type t

val create : int -> t
(** Seeded generator.  Equal seeds yield equal streams. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument when
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element.  @raise Invalid_argument on an empty array. *)

val pick_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipf-distributed rank in [0, n) with skew [theta] ([theta = 0] is
    uniform).  Uses the standard CDF-inversion by search; adequate for
    workload generation. *)

val gaussian : t -> float
(** Standard normal via Box–Muller. *)
