let parse ?(separator = ',') input =
  let len = String.length input in
  let rows = ref [] in
  let row = ref [] in
  let cell = Buffer.create 32 in
  let flush_cell () =
    row := Buffer.contents cell :: !row;
    Buffer.clear cell
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  let saw_any = ref false in
  while !i < len do
    let c = input.[!i] in
    saw_any := true;
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < len && input.[!i + 1] = '"' then begin
          Buffer.add_char cell '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char cell c
    end
    else if c = '"' then in_quotes := true
    else if c = separator then flush_cell ()
    else if c = '\r' then ()
    else if c = '\n' then flush_row ()
    else Buffer.add_char cell c;
    incr i
  done;
  (* Final row without trailing newline. *)
  if Buffer.length cell > 0 || !row <> [] then flush_row ()
  else if not !saw_any then ()
  else ();
  List.rev !rows

let parse_rows ?separator ~header input =
  match parse ?separator input with
  | [] -> ([], [])
  | first :: rest when header -> (first, rest)
  | rows ->
    let width = List.fold_left (fun acc r -> max acc (List.length r)) 0 rows in
    let names = List.init width (fun i -> Printf.sprintf "c%d" (i + 1)) in
    (names, rows)

let to_tuples ?separator ~header input =
  let names, rows = parse_rows ?separator ~header input in
  let ncols = List.length names in
  let row_to_tuple cells =
    let cells = Array.of_list cells in
    Tuple.make
      (List.mapi
         (fun i name ->
           let v = if i < Array.length cells then Value.of_string_guess cells.(i) else Value.Null in
           (name, v))
         names)
  in
  List.filter_map
    (fun cells -> if cells = [ "" ] && ncols > 1 then None else Some (row_to_tuple cells))
    rows

let needs_quoting separator cell =
  String.exists (fun c -> c = separator || c = '"' || c = '\n' || c = '\r') cell

let print ?(separator = ',') rows =
  let buf = Buffer.create 256 in
  let add_cell cell =
    if needs_quoting separator cell then begin
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
        cell;
      Buffer.add_char buf '"'
    end
    else Buffer.add_string buf cell
  in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_char buf separator;
          add_cell cell)
        row;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
