type t = (string * Value.t) array

let empty = [||]

let make bindings =
  let arr = Array.of_list bindings in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    let name = fst arr.(i) in
    for j = i + 1 to n - 1 do
      if String.equal name (fst arr.(j)) then
        invalid_arg (Printf.sprintf "Tuple.make: duplicate field %S" name)
    done
  done;
  arr

let fields t = Array.to_list t
let field_names t = Array.to_list (Array.map fst t)
let values t = Array.to_list (Array.map snd t)
let arity t = Array.length t

let find_index t name =
  let n = Array.length t in
  let rec go i = if i >= n then -1 else if String.equal (fst t.(i)) name then i else go (i + 1) in
  go 0

let get t name =
  let i = find_index t name in
  if i < 0 then None else Some (snd t.(i))

let get_exn t name =
  let i = find_index t name in
  if i < 0 then raise Not_found else snd t.(i)

let mem t name = find_index t name >= 0

let set t name v =
  let i = find_index t name in
  if i < 0 then Array.append t [| (name, v) |]
  else begin
    let t' = Array.copy t in
    t'.(i) <- (name, v);
    t'
  end

let remove t name =
  let i = find_index t name in
  if i < 0 then t
  else Array.append (Array.sub t 0 i) (Array.sub t (i + 1) (Array.length t - i - 1))

let project t names =
  Array.of_list
    (List.map
       (fun name ->
         match get t name with
         | Some v -> (name, v)
         | None -> (name, Value.Null))
       names)

let rename t mapping =
  Array.map
    (fun (name, v) ->
      match List.assoc_opt name mapping with
      | Some name' -> (name', v)
      | None -> (name, v))
    t

let prefix p t = Array.map (fun (name, v) -> (p ^ "." ^ name, v)) t

let concat a b =
  let extra = Array.to_list b |> List.filter (fun (name, _) -> find_index a name < 0) in
  Array.append a (Array.of_list extra)

let compare a b =
  let c = List.compare String.compare (field_names a) (field_names b) in
  if c <> 0 then c else List.compare Value.compare (values a) (values b)

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc (name, v) -> (acc * 31) + Hashtbl.hash name + Value.hash v) 7 t

let to_string t =
  let field (name, v) = Printf.sprintf "%s=%s" name (Value.to_display v) in
  "{" ^ String.concat ", " (List.map field (fields t)) ^ "}"

let pp ppf t = Format.pp_print_string ppf (to_string t)
