type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of date

and date = {
  year : int;
  month : int;
  day : int;
}

type ty = TNull | TBool | TInt | TFloat | TString | TDate

let type_of = function
  | Null -> TNull
  | Bool _ -> TBool
  | Int _ -> TInt
  | Float _ -> TFloat
  | String _ -> TString
  | Date _ -> TDate

let ty_to_string = function
  | TNull -> "null"
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TString -> "string"
  | TDate -> "date"

let days_in_month year month =
  match month with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 ->
    let leap = (year mod 4 = 0 && year mod 100 <> 0) || year mod 400 = 0 in
    if leap then 29 else 28
  | _ -> 0

let date year month day =
  if month < 1 || month > 12 then invalid_arg "Value.date: month out of range";
  if day < 1 || day > days_in_month year month then invalid_arg "Value.date: day out of range";
  Date { year; month; day }

(* Civil-from-days algorithm (Howard Hinnant's chrono arithmetic). *)
let date_to_days d =
  let y = if d.month <= 2 then d.year - 1 else d.year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (d.month + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + d.day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let parse_date s =
  (* ISO YYYY-MM-DD *)
  if String.length s = 10 && s.[4] = '-' && s.[7] = '-' then
    match
      ( int_of_string_opt (String.sub s 0 4),
        int_of_string_opt (String.sub s 5 2),
        int_of_string_opt (String.sub s 8 2) )
    with
    | Some y, Some m, Some d when m >= 1 && m <= 12 && d >= 1 && d <= days_in_month y m ->
      Some { year = y; month = m; day = d }
    | _, _, _ -> None
  else None

let of_string_guess s =
  if s = "" then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> (
        match parse_date s with
        | Some d -> Date d
        | None -> (
          match s with
          | "true" -> Bool true
          | "false" -> Bool false
          | s -> String s)))

let parse_as ty s =
  match ty with
  | TString -> Some (String s)
  | TNull -> if s = "" then Some Null else None
  | TBool -> (
    match String.lowercase_ascii s with
    | "true" | "t" | "1" -> Some (Bool true)
    | "false" | "f" | "0" -> Some (Bool false)
    | _ -> None)
  | TInt -> Option.map (fun i -> Int i) (int_of_string_opt s)
  | TFloat -> Option.map (fun f -> Float f) (float_of_string_opt s)
  | TDate -> Option.map (fun d -> Date d) (parse_date s)

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

let to_string = function
  | Null -> ""
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | String s -> s
  | Date d -> Printf.sprintf "%04d-%02d-%02d" d.year d.month d.day

let to_display = function
  | Null -> "NULL"
  | v -> to_string v

let pp ppf v = Format.pp_print_string ppf (to_display v)

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | String _ -> 3
  | Date _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | Date x, Date y -> Int.compare (date_to_days x) (date_to_days y)
  | a, b -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let compare_sql a b =
  match a, b with
  | Null, _ | _, Null -> None
  | a, b -> Some (compare a b)

let to_int = function
  | Int i -> Some i
  | Float f -> Some (int_of_float f)
  | Bool b -> Some (if b then 1 else 0)
  | String s -> int_of_string_opt s
  | Null | Date _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | String s -> float_of_string_opt s
  | Null | Date _ -> None

let to_bool = function
  | Bool b -> Some b
  | Int i -> Some (i <> 0)
  | Float f -> Some (f <> 0.0)
  | String "true" -> Some true
  | String "false" -> Some false
  | String _ | Null | Date _ -> None

let numeric_op name fint ffloat a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (fint x y)
  | (Int _ | Float _), (Int _ | Float _) -> (
    match to_float a, to_float b with
    | Some x, Some y -> Float (ffloat x y)
    | _, _ -> invalid_arg name)
  | _, _ -> invalid_arg name

let add a b =
  match a, b with
  | String x, String y -> String (x ^ y)
  | a, b -> numeric_op "Value.add" ( + ) ( +. ) a b

let sub a b = numeric_op "Value.sub" ( - ) ( -. ) a b
let mul a b = numeric_op "Value.mul" ( * ) ( *. ) a b

let div a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | _, Int 0 -> Null
  | _, Float 0.0 -> Null
  | Int x, Int y -> Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) -> (
    match to_float a, to_float b with
    | Some x, Some y -> Float (x /. y)
    | _, _ -> invalid_arg "Value.div")
  | _, _ -> invalid_arg "Value.div"

let neg = function
  | Null -> Null
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | Bool _ | String _ | Date _ -> invalid_arg "Value.neg"

let is_truthy = function
  | Null -> false
  | Bool b -> b
  | Int i -> i <> 0
  | Float f -> f <> 0.0
  | String s -> s <> ""
  | Date _ -> true

let cast ty v =
  match ty, v with
  | TNull, _ -> Some Null
  | TBool, v -> Option.map (fun b -> Bool b) (to_bool v)
  | TInt, v -> Option.map (fun i -> Int i) (to_int v)
  | TFloat, v -> Option.map (fun f -> Float f) (to_float v)
  | TString, v -> Some (String (to_string v))
  | TDate, Date _ -> Some v
  | TDate, String s -> Option.map (fun d -> Date d) (parse_date s)
  | TDate, (Null | Bool _ | Int _ | Float _) -> None

let hash = function
  | Null -> 17
  | Bool b -> if b then 3 else 5
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash (date_to_days d) lxor 0x5bd1
