(** Flat tuples: ordered, named fields bound to atomic values.

    Tuples are the unit of data flow inside the physical algebra — the
    "slightly more structured than XML" part of the Nimble data model that
    lets relational sources be processed without tree overhead.  Field
    order is significant (it is the projection order); lookup is by
    name. *)

type t

val empty : t

val make : (string * Value.t) list -> t
(** Field order is preserved.
    @raise Invalid_argument on duplicate field names. *)

val fields : t -> (string * Value.t) list
val field_names : t -> string list
val values : t -> Value.t list
val arity : t -> int

val get : t -> string -> Value.t option
val get_exn : t -> string -> Value.t
(** @raise Not_found when the field is absent. *)

val mem : t -> string -> bool

val set : t -> string -> Value.t -> t
(** Replace (or append, when absent) a binding. *)

val remove : t -> string -> t

val project : t -> string list -> t
(** Keep the listed fields, in the listed order.  Missing fields bind to
    [Null] (outer-union semantics, section 3.4). *)

val rename : t -> (string * string) list -> t
(** Apply a old-name/new-name mapping to field names. *)

val prefix : string -> t -> t
(** Qualify every field name with ["p."]. *)

val concat : t -> t -> t
(** Concatenate field lists.  When both sides bind the same name, the
    left binding wins and the right one is dropped. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Order by field names first, then values — a total order usable for
    sorting and distinct. *)

val hash : t -> int

val to_string : t -> string
(** [{a=1, b="x"}] rendering for debugging and tests. *)

val pp : Format.formatter -> t -> unit
