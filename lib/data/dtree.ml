type t =
  | Atom of Value.t
  | Node of node

and node = {
  label : string;
  attrs : (string * Value.t) list;
  kids : t list;
}

let atom v = Atom v
let node ?(attrs = []) label kids = Node { label; attrs; kids }
let leaf label v = node label [ atom v ]

let label = function
  | Atom _ -> None
  | Node n -> Some n.label

let attr t name =
  match t with
  | Atom _ -> None
  | Node n -> List.assoc_opt name n.attrs

let kids = function
  | Atom _ -> []
  | Node n -> n.kids

let kids_named t name =
  List.filter
    (function Node n -> String.equal n.label name | Atom _ -> false)
    (kids t)

let first_named t name =
  match kids_named t name with
  | [] -> None
  | k :: _ -> Some k

let atom_value = function
  | Atom v -> Some v
  | Node { kids = [ Atom v ]; _ } -> Some v
  | Node _ -> None

let text t =
  let buf = Buffer.create 32 in
  let rec go = function
    | Atom v -> Buffer.add_string buf (Value.to_string v)
    | Node n -> List.iter go n.kids
  in
  go t;
  Buffer.contents buf

let rec size = function
  | Atom _ -> 1
  | Node n -> 1 + List.fold_left (fun acc k -> acc + size k) 0 n.kids

let rec compare a b =
  match a, b with
  | Atom x, Atom y -> Value.compare x y
  | Atom _, Node _ -> -1
  | Node _, Atom _ -> 1
  | Node x, Node y ->
    let c = String.compare x.label y.label in
    if c <> 0 then c
    else begin
      let cmp_attr (n1, v1) (n2, v2) =
        let c = String.compare n1 n2 in
        if c <> 0 then c else Value.compare v1 v2
      in
      let c = List.compare cmp_attr x.attrs y.attrs in
      if c <> 0 then c else List.compare compare x.kids y.kids
    end

let equal a b = compare a b = 0

let rec hash = function
  | Atom v -> Value.hash v
  | Node n ->
    let h = Hashtbl.hash n.label in
    let h = List.fold_left (fun acc (k, v) -> (acc * 31) + Hashtbl.hash k + Value.hash v) h n.attrs in
    List.fold_left (fun acc k -> (acc * 131) + hash k) h n.kids

let rec of_xml = function
  | Xml_types.Text s | Xml_types.Cdata s -> Atom (Value.of_string_guess s)
  | Xml_types.Element e -> of_xml_element e
  | Xml_types.Comment _ | Xml_types.Pi _ -> Atom Value.Null

and of_xml_element e =
  let attrs =
    List.map
      (fun a -> (a.Xml_types.attr_name, Value.of_string_guess a.Xml_types.attr_value))
      e.Xml_types.attrs
  in
  let keep = function
    | Xml_types.Comment _ | Xml_types.Pi _ -> None
    (* Whitespace-only text between elements is serialization noise, not
       data; dropping it keeps element positions meaningful. *)
    | Xml_types.Text s when String.trim s = "" -> None
    | n -> Some (of_xml n)
  in
  Node { label = e.Xml_types.tag; attrs; kids = List.filter_map keep e.Xml_types.children }

let rec to_xml = function
  | Atom v -> Xml_types.Text (Value.to_string v)
  | Node n ->
    let attrs = List.map (fun (k, v) -> (k, Value.to_string v)) n.attrs in
    Xml_types.el ~attrs n.label (List.map to_xml n.kids)

let to_xml_element t =
  match to_xml t with
  | Xml_types.Element e -> e
  | Xml_types.Text _ | Xml_types.Cdata _ | Xml_types.Comment _ | Xml_types.Pi _ ->
    invalid_arg "Dtree.to_xml_element: bare atom"

let of_tuple lbl tup =
  node lbl (List.map (fun (name, v) -> leaf name v) (Tuple.fields tup))

let to_tuple t =
  let field k =
    match k with
    | Node n -> (
      match atom_value k with
      | Some v -> Some (n.label, v)
      | None -> Some (n.label, Value.String (text k)))
    | Atom _ -> None
  in
  Tuple.make (List.filter_map field (kids t))

let rec pp ppf = function
  | Atom v -> Value.pp ppf v
  | Node n ->
    Format.fprintf ppf "@[<hv 2>%s" n.label;
    List.iter (fun (k, v) -> Format.fprintf ppf "@ @@%s=%a" k Value.pp v) n.attrs;
    Format.fprintf ppf "(";
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp ppf n.kids;
    Format.fprintf ppf ")@]"

let to_string t = Format.asprintf "%a" pp t
