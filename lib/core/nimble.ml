type cleaner = {
  cl_flow : Cl_flow.flow;
  cl_key_field : string;
  cl_query : Xq_ast.query;
  cl_concordance : Cl_concordance.t;
  cl_lineage : Cl_lineage.t;
  mutable cl_exceptions : (string * string) list;
}

type t = {
  sys_name : string;
  cat : Med_catalog.t;
  mat : Mat_store.t;
  results : Mat_cache.t;
  accounts : Fe_auth.t;
  lenses : (string, Fe_lens.t) Hashtbl.t;
  cleaners : (string, cleaner) Hashtbl.t;
}

let create ?(name = "nimble") ?(cache_capacity = 64) ?cache_ttl_ms ?(frag_capacity = 0)
    ?frag_ttl_ms ?(sem_budget_bytes = 0) () =
  let cat = Med_catalog.create ?frag_ttl_ms ~frag_capacity ~sem_budget_bytes () in
  {
    sys_name = name;
    cat;
    mat = Mat_store.create cat;
    results = Mat_cache.create ?ttl_ms:cache_ttl_ms ~capacity:cache_capacity ();
    accounts = Fe_auth.create ();
    lenses = Hashtbl.create 8;
    cleaners = Hashtbl.create 4;
  }

let name t = t.sys_name
let catalog t = t.cat
let store t = t.mat
let cache t = t.results
let auth t = t.accounts

(* Uniform error wrapping: every known subsystem exception becomes a
   string error instead of escaping to the caller. *)
let guard f =
  try Ok (f ()) with
  | Med_catalog.Catalog_error m
  | Med_exec.Exec_error m
  | Mat_store.Mat_error m
  | Fe_lens.Lens_error m
  | Fe_auth.Auth_error m
  | Xq_eval.Eval_error m
  | Cl_flow.Flow_error m
  | Rel_db.Sql_error m -> Error m
  | Med_planner.Plan_error m -> Error ("planning: " ^ m)
  | Source.Unavailable s -> Error (Printf.sprintf "source %s is unavailable" s)
  | Alg_exec.Source_unavailable s -> Error (Printf.sprintf "source %s is unavailable" s)
  | Source.Query_rejected m -> Error ("source rejected query: " ^ m)
  | Invalid_argument m -> Error m

let register_source t src = guard (fun () -> Med_catalog.register_source t.cat src)

let define_view t ?description vname text =
  guard (fun () -> Med_catalog.define_view_text t.cat ?description vname text)

let drop_view t vname =
  guard (fun () ->
      (* Catalog first: its dependency check may refuse, and the
         materialized copy must survive a refused drop. *)
      Med_catalog.drop_view t.cat vname;
      Mat_store.drop t.mat vname)

let materialize_view t ?policy vname =
  guard (fun () -> ignore (Mat_store.materialize t.mat ?policy vname))

let refresh_view t vname = guard (fun () -> Mat_store.refresh t.mat vname)

let dematerialize_view t vname = Mat_store.drop t.mat vname

let add_user t ?role uname password =
  guard (fun () -> Fe_auth.add_user t.accounts ?role uname password)

(* ------------------------------------------------------------------ *)
(* Dynamic cleaning sources                                            *)
(* ------------------------------------------------------------------ *)

(* A query-time cleaning source: every access recomputes the base query
   and runs the flow, replaying recorded determinations (section 3.2's
   extraction phase). *)
let register_cleaned_source t ~name ~key_field ~flow ~from_query =
  match Xq_parser.parse from_query with
  | Error m -> Error m
  | Ok q ->
    guard (fun () ->
        let cleaner =
          {
            cl_flow = flow;
            cl_key_field = key_field;
            cl_query = q;
            cl_concordance = Cl_concordance.create ();
            cl_lineage = Cl_lineage.create ();
            cl_exceptions = [];
          }
        in
        let clean_rows () =
          let trees = Med_exec.run t.cat cleaner.cl_query in
          let tuples = List.map Dtree.to_tuple trees in
          let records = Cl_flow.records_of_tuples ~key_field tuples in
          let report =
            Cl_flow.run ~concordance:cleaner.cl_concordance ~lineage:cleaner.cl_lineage
              cleaner.cl_flow records
          in
          cleaner.cl_exceptions <- report.Cl_flow.exceptions;
          List.map (fun r -> r.Cl_merge_purge.data) report.Cl_flow.output
        in
        let execute = function
          | Source.Q_scan _ ->
            let rows = clean_rows () in
            let names =
              match rows with
              | row :: _ -> Tuple.field_names row
              | [] -> []
            in
            Source.R_rows (names, rows)
          | Source.Q_sql _ | Source.Q_path _ | Source.Q_batch _ ->
            raise (Source.Query_rejected "cleaned sources accept scans only")
        in
        let src =
          {
            Source.name;
            kind = Source.Flat_file;
            capability = Source.scan_only;
            relations = (fun () -> []);
            document_names = (fun () -> [ name ]);
            documents = (fun _ -> [ Source.table_document name (clean_rows ()) ]);
            execute;
            is_available = (fun () -> true);
          }
        in
        Med_catalog.register_source t.cat src;
        Hashtbl.replace t.cleaners name cleaner)

let cleaning_exceptions t name =
  match Hashtbl.find_opt t.cleaners name with
  | Some c -> c.cl_exceptions
  | None -> []

let resolve_match t name verdict a b =
  match Hashtbl.find_opt t.cleaners name with
  | None -> Error (Printf.sprintf "no cleaned source named %s" name)
  | Some c ->
    ignore (Cl_concordance.resolve c.cl_concordance verdict a b);
    Ok ()

let cleaning_lineage t name =
  Option.map (fun c -> c.cl_lineage) (Hashtbl.find_opt t.cleaners name)

let report t =
  Fe_admin.system_report t.cat ~store:t.mat ~cache:t.results ()

(* ------------------------------------------------------------------ *)
(* Configuration scripts                                               *)
(* ------------------------------------------------------------------ *)

let policy_to_directive = function
  | Mat_store.Manual -> "manual"
  | Mat_store.On_access -> "on-access"
  | Mat_store.Every_n_queries n -> Printf.sprintf "every:%d" n

let policy_of_directive = function
  | "manual" -> Some Mat_store.Manual
  | "on-access" -> Some Mat_store.On_access
  | s when String.length s > 6 && String.sub s 0 6 = "every:" ->
    Option.map
      (fun n -> Mat_store.Every_n_queries n)
      (int_of_string_opt (String.sub s 6 (String.length s - 6)))
  | _ -> None

let save_config t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "# nimble configuration script
";
  (* Views in dependency order so a replay re-creates them cleanly. *)
  let views =
    List.sort
      (fun a b -> Int.compare (Med_catalog.view_depth t.cat a) (Med_catalog.view_depth t.cat b))
      (Med_catalog.view_names t.cat)
  in
  List.iter
    (fun vname ->
      match Med_catalog.find_view t.cat vname with
      | None -> ()
      | Some v ->
        Buffer.add_string buf
          (Printf.sprintf "view %s := %s
" vname
             (String.concat " UNION "
                (List.map Xq_pretty.query_to_string v.Med_catalog.definitions)));
        if v.Med_catalog.description <> "" then
          Buffer.add_string buf
            (Printf.sprintf "describe %s %s
" vname v.Med_catalog.description))
    views;
  List.iter
    (fun vname ->
      match Mat_store.peek t.mat vname with
      | Some e ->
        Buffer.add_string buf
          (Printf.sprintf "materialize %s %s
" vname (policy_to_directive e.Mat_store.policy))
      | None -> ())
    (Mat_store.materialized_names t.mat);
  Buffer.contents buf

let load_config t script =
  let directive line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Ok ()
    else
      match String.index_opt line ' ' with
      | None -> Error (Printf.sprintf "malformed directive %S" line)
      | Some i -> (
        let keyword = String.sub line 0 i in
        let rest = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        match keyword with
        | "view" -> (
          match String.index_opt rest ' ' with
          | Some j
            when j + 2 < String.length rest
                 && String.sub rest (j + 1) 2 = ":=" ->
            let vname = String.sub rest 0 j in
            let body = String.trim (String.sub rest (j + 3) (String.length rest - j - 3)) in
            (match define_view t vname body with
            | Ok () -> Ok ()
            | Error m -> Error (Printf.sprintf "view %s: %s" vname m))
          | _ -> Error (Printf.sprintf "malformed view directive %S" line))
        | "describe" -> (
          match String.index_opt rest ' ' with
          | Some j ->
            let vname = String.sub rest 0 j in
            let desc = String.sub rest (j + 1) (String.length rest - j - 1) in
            guard (fun () -> Med_catalog.set_description t.cat vname desc)
          | None -> Error (Printf.sprintf "malformed describe directive %S" line))
        | "materialize" -> (
          match String.split_on_char ' ' rest with
          | [ vname; pol ] -> (
            match policy_of_directive pol with
            | Some policy -> materialize_view t ~policy vname
            | None -> Error (Printf.sprintf "unknown policy %S" pol))
          | [ vname ] -> materialize_view t vname
          | _ -> Error (Printf.sprintf "malformed materialize directive %S" line))
        | kw -> Error (Printf.sprintf "unknown directive %S" kw))
  in
  let rec run_lines = function
    | [] -> Ok ()
    | line :: rest -> (
      match directive line with
      | Ok () -> run_lines rest
      | Error m -> Error m)
  in
  run_lines (String.split_on_char '\n' script)

(* Source closure of a query: clause sources plus, through views, the
   base sources they read — the invalidation tags of cached entries. *)
let rec source_closure t q =
  List.concat_map
    (fun src_name ->
      match Med_catalog.find_view t.cat src_name with
      | Some v ->
        src_name :: List.concat_map (source_closure t) v.Med_catalog.definitions
      | None -> (
        match Hashtbl.find_opt t.cleaners src_name with
        (* Cleaned sources read through their base query, so updates to
           the underlying sources must invalidate them too. *)
        | Some cleaner -> src_name :: source_closure t cleaner.cl_query
        | None -> (
          match String.index_opt src_name '.' with
          | Some i -> [ src_name; String.sub src_name 0 i ]
          | None -> [ src_name ])))
    (Xq_ast.all_sources_of q)
  |> List.sort_uniq String.compare

(* Both cache levels: whole-query results above, raw source fragments
   below.  The return counts query-level entries (the historical
   contract); fragment drops are visible in the fragcache counters. *)
let invalidate_source t source_name =
  let frag_dropped =
    Frag_cache.invalidate_source (Med_catalog.frag_cache t.cat) source_name
  in
  ignore frag_dropped;
  let dropped = Mat_cache.invalidate_source t.results source_name in
  (* Catalog subscribers (the concurrency server's plan cache) evict
     their own artifacts for this source. *)
  Med_catalog.notify_invalidation t.cat source_name;
  dropped

(* ------------------------------------------------------------------ *)
(* Fetch scheduling                                                    *)
(* ------------------------------------------------------------------ *)

let fetch_options t = Med_catalog.fetch_options t.cat

let set_fetch_options t options = Med_catalog.set_fetch_options t.cat options

let configure_frag_cache t ?ttl_ms ~capacity () =
  Med_catalog.configure_frag_cache t.cat ?ttl_ms ~capacity ()

let configure_sem_cache t ~budget_bytes () =
  Med_catalog.configure_sem_cache t.cat ~budget_bytes ()

let sem_cache t = Med_catalog.sem_cache t.cat

let sem_report t = Sem_cache.report (Med_catalog.sem_cache t.cat) ^ "\n"

let fetch_report t =
  let fo = Med_catalog.fetch_options t.cat in
  let frag = Med_catalog.frag_cache t.cat in
  let st = Frag_cache.stats frag in
  let ttl =
    match Frag_cache.ttl_ms frag with
    | None -> ""
    | Some ms -> Printf.sprintf " ttl=%.0fms" ms
  in
  Printf.sprintf
    "fetch: %s\n\
     fragment cache: %d/%d entries,%s hits=%d misses=%d evictions=%d \
     expirations=%d invalidations=%d\n"
    (Fetch_sched.options_to_string fo)
    (Frag_cache.size frag) (Frag_cache.capacity frag) ttl st.Frag_cache.frag_hits
    st.Frag_cache.frag_misses st.Frag_cache.frag_evictions
    st.Frag_cache.frag_expirations st.Frag_cache.frag_invalidations

(* ------------------------------------------------------------------ *)
(* Retry & resilience                                                  *)
(* ------------------------------------------------------------------ *)

let retry_policy t = Med_catalog.retry_policy t.cat

let set_retry_policy t pol = Med_catalog.set_retry_policy t.cat pol

let retry_report t = Src_retry.report (Med_catalog.retry t.cat)

(* ------------------------------------------------------------------ *)
(* Execution engine selection                                          *)
(* ------------------------------------------------------------------ *)

let exec_mode t = Med_catalog.exec_mode t.cat

let set_exec_mode t mode = Med_catalog.set_exec_mode t.cat mode

let exec_report t =
  Printf.sprintf "exec: %s\n"
    (Alg_batch.mode_to_string (Med_catalog.exec_mode t.cat))

(* ------------------------------------------------------------------ *)
(* Path & value indexes                                                *)
(* ------------------------------------------------------------------ *)

let index_mode (_ : t) = Idx_manager.mode ()

let set_index_mode (_ : t) mode = Idx_manager.set_mode mode

(* Views register under "view:<name>"; a raw registry key (with its
   prefix) is accepted too, so documents are reachable. *)
let index_key name = if String.contains name ':' then name else "view:" ^ name

let build_index (_ : t) name =
  let key = index_key name in
  match Idx_manager.build key with
  | Some (paths, nodes, bytes) ->
    Ok
      (Printf.sprintf "built index %s: %d paths, %d nodes, %d bytes\n" key paths
         nodes bytes)
  | None -> Error (Printf.sprintf "nothing registered under %s" key)

let index_report (_ : t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "index: mode=%s epoch=%d bytes=%d\n"
       (Idx_manager.mode_to_string (Idx_manager.mode ()))
       (Idx_manager.epoch ()) (Idx_manager.total_bytes ()));
  List.iter
    (fun (name, built, roots, bytes) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-40s %s roots=%d bytes=%d\n" name
           (if built then "guide" else "unbuilt")
           roots bytes))
    (Idx_manager.registered ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Cost-based optimizer                                                *)
(* ------------------------------------------------------------------ *)

let optimizer t = Med_catalog.optimizer t.cat

let set_optimizer t mode = Med_catalog.set_optimizer t.cat mode

let optimizer_report t =
  Printf.sprintf "optimizer: %s\n"
    (Med_optimize.mode_to_string (Med_catalog.optimizer t.cat))

let analyze_stats t =
  guard (fun () ->
      let analyzed = Med_catalog.analyze t.cat in
      Printf.sprintf "analyzed %d tables\n%s" (List.length analyzed)
        (Med_stats.report (Med_catalog.stats t.cat)))

let stats_catalog_report t = Med_stats.report (Med_catalog.stats t.cat)

let view_lookup t vname =
  match Mat_store.lookup t.mat vname with
  | Some trees -> Some trees
  | None ->
    (* Not materialized by name: a materialized view that {e subsumes}
       this one can still answer, filtered locally (Mat_contain). *)
    Mat_contain.answer t.mat ~sem:(Med_catalog.sem_cache t.cat) t.cat vname

let tick_views t = Mat_store.tick t.mat

let parse_query text =
  match Xq_parser.parse text with
  | Ok q -> Ok q
  | Error m -> Error m

let query t text =
  match parse_query text with
  | Error m -> Error m
  | Ok q ->
    guard (fun () ->
        Mat_store.tick t.mat;
        Mat_cache.get_or_compute t.results ~sources:(source_closure t q) text (fun () ->
            Med_exec.run ~view_lookup:(view_lookup t) t.cat q))

let query_partial_ex t text =
  match parse_query text with
  | Error m -> Error m
  | Ok q ->
    guard (fun () ->
        Mat_store.tick t.mat;
        match Mat_cache.get t.results text with
        | Some trees -> (trees, [], [])
        | None ->
          let r =
            Med_exec.run_compiled_partial ~view_lookup:(view_lookup t) t.cat
              (Med_exec.compile t.cat q)
          in
          (* Only complete, fresh answers are worth caching: a stale
             degradation must not outlive the outage it papered over. *)
          if r.Med_exec.skipped_sources = [] && r.Med_exec.stale_sources = [] then
            Mat_cache.put t.results ~sources:(source_closure t q) text
              r.Med_exec.trees;
          (r.Med_exec.trees, r.Med_exec.skipped_sources, r.Med_exec.stale_sources))

let query_partial t text =
  Result.map (fun (trees, skipped, _stale) -> (trees, skipped)) (query_partial_ex t text)

let query_formatted t ~device text =
  Result.map (Fe_format.render device) (query t text)

let explain t text = guard (fun () -> Med_exec.explain_text t.cat text)

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let explain_analyze t ?(repeat = 1) text =
  match parse_query text with
  | Error m -> Error m
  | Ok q ->
    guard (fun () ->
        (* Deliberately bypasses the result cache: the point is to
           measure execution, and each run feeds the cardinality
           observations the next compilation plans with. *)
        let buf = Buffer.create 512 in
        for i = 1 to max 1 repeat do
          if repeat > 1 then Buffer.add_string buf (Printf.sprintf "== run %d ==\n" i);
          let a = Med_exec.run_analyzed ~view_lookup:(view_lookup t) t.cat q in
          Buffer.add_string buf (Med_exec.analysis_to_string a)
        done;
        Buffer.contents buf)

let stats_report t =
  Src_registry.publish_availability (Med_catalog.registry t.cat);
  (* Index counters live in atomics (probes tick on worker domains);
     mirror them into the metrics registry on the caller before
     rendering. *)
  Idx_manager.publish_metrics ();
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Obs_report.metrics_report ());
  Buffer.add_string buf (Obs_report.source_breakdown ());
  (match Obs_feedback.to_rows (Med_catalog.feedback t.cat) with
  | [] -> ()
  | rows ->
    Buffer.add_string buf "observed cardinalities:\n";
    List.iter
      (fun (key, observed, samples) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-40s rows=%.0f samples=%d\n" key observed samples))
      rows);
  Buffer.contents buf

let trace_report (_ : t) = Obs_report.trace_report ()

let set_tracing enabled = Obs_trace.set_enabled enabled

let add_lens t lens =
  guard (fun () ->
      let lname = lens.Fe_lens.lens_name in
      if Hashtbl.mem t.lenses lname then
        invalid_arg (Printf.sprintf "lens %s already exists" lname);
      Hashtbl.replace t.lenses lname lens)

let lens_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.lenses [] |> List.sort String.compare

let find_lens t lname = Hashtbl.find_opt t.lenses lname

let run_lens t ~user ~password ~lens ~query:query_name args =
  match Hashtbl.find_opt t.lenses lens with
  | None -> Error (Printf.sprintf "unknown lens %s" lens)
  | Some l -> (
    match Fe_auth.authenticate t.accounts user password with
    | None -> Error "authentication failed"
    | Some role ->
      if not (Fe_auth.role_allows l.Fe_lens.required_role role) then
        Error
          (Printf.sprintf "user %s (%s) lacks the %s role required by lens %s" user
             (Fe_auth.role_to_string role)
             (Fe_auth.role_to_string l.Fe_lens.required_role)
             lens)
      else
        guard (fun () ->
            let q = Fe_lens.instantiate l query_name args in
            Mat_store.tick t.mat;
            let key = Xq_pretty.query_to_string q in
            let trees =
              Mat_cache.get_or_compute t.results ~sources:(source_closure t q) key
                (fun () -> Med_exec.run ~view_lookup:(view_lookup t) t.cat q)
            in
            Fe_format.render l.Fe_lens.device trees))
