(** The Nimble data integration system: public facade.

    One value of type {!t} is a running integration engine: a metadata
    catalog of sources and hierarchical mediated schemas, a materialized-
    view store with refresh policies, an LRU result cache, users/roles,
    and lenses.  Queries are XML-QL text; answers are trees of the Nimble
    data model (or device-formatted strings).

    {[
      let sys = Nimble.create () in
      Nimble.register_source sys (Rel_source.make my_db);
      match Nimble.query sys
              {|WHERE <row><name>$n</name></row> IN "crm.customers"
                CONSTRUCT <c>$n</c>|}
      with
      | Ok trees -> List.iter print_tree trees
      | Error msg -> prerr_endline msg
    ]} *)

type t

val create :
  ?name:string ->
  ?cache_capacity:int ->
  ?cache_ttl_ms:float ->
  ?frag_capacity:int ->
  ?frag_ttl_ms:float ->
  ?sem_budget_bytes:int ->
  unit ->
  t
(** Default result-cache capacity 64 entries; 0 disables result caching.
    [cache_ttl_ms] ages result-cache entries on the virtual clock.
    [frag_capacity] (default 0: off) enables the fragment-level source
    result cache below the network layer, with its own optional TTL.
    [sem_budget_bytes] (default 0: off) budgets the semantic fragment
    cache, which answers contained/overlapping predicates by local
    filtering and remainder shipping (see {!Sem_cache}). *)

val name : t -> string

(** {1 Component access (for advanced use and tests)} *)

val catalog : t -> Med_catalog.t
val store : t -> Mat_store.t
val cache : t -> Mat_cache.t
val auth : t -> Fe_auth.t

(** {1 Administration} *)

val register_source : t -> Source.t -> (unit, string) result

val define_view : t -> ?description:string -> string -> string -> (unit, string) result
(** [define_view t name xmlql_text] adds a mediated schema. *)

val drop_view : t -> string -> (unit, string) result

val materialize_view :
  t -> ?policy:Mat_store.policy -> string -> (unit, string) result
(** Store a local copy of the view (section 3.3); subsequent queries
    over it are answered from the copy, honouring its refresh policy. *)

val refresh_view : t -> string -> (unit, string) result
val dematerialize_view : t -> string -> unit

val invalidate_source : t -> string -> int
(** Drop cached results computed from the named source (call after
    out-of-band updates); returns how many query-level entries were
    dropped.  Fragment-cache and semantic-cache entries for the source
    are dropped too (two-level invalidation). *)

(** {1 Fetch scheduling} *)

val fetch_options : t -> Fetch_sched.options
val set_fetch_options : t -> Fetch_sched.options -> unit
(** Sequential (default) or scatter-gather source fetching for every
    subsequent query against this engine. *)

val configure_frag_cache : t -> ?ttl_ms:float -> capacity:int -> unit -> unit
(** Resize/replace the fragment-level result cache (drops contents). *)

val fetch_report : t -> string
(** One-paragraph summary of the fetch mode, fan-out and fragment-cache
    occupancy/counters — the repl's [\fetch] view. *)

(** {1 Semantic cache} *)

val configure_sem_cache : t -> budget_bytes:int -> unit -> unit
(** Re-budget the semantic fragment cache (drops contents); 0 turns it
    off. *)

val sem_cache : t -> Sem_cache.t

val sem_report : t -> string
(** Occupancy and hit/partial/miss counters — the repl's [\sem] view. *)

(** {1 Retry & resilience} *)

val retry_policy : t -> Src_retry.policy
val set_retry_policy : t -> Src_retry.policy -> unit
(** Retry/deadline/circuit-breaker policy ({!Src_retry}) applied to
    every source call of every subsequent query.  The default policy is
    inert; installing one resets breaker state. *)

val retry_report : t -> string
(** The current policy plus per-source breaker states — the repl's
    [\retry] view. *)

(** {1 Execution engine} *)

val exec_mode : t -> Alg_batch.mode
val set_exec_mode : t -> Alg_batch.mode -> unit
(** Tuple-at-a-time (default), batch-at-a-time or morsel-driven
    parallel plan evaluation for every subsequent query against this
    engine; batch mode carries its chunk size, parallel mode its domain
    count and morsel size.  Answers are identical in all three —
    these are throughput knobs. *)

val exec_report : t -> string
(** One-line summary of the execution mode — the repl's [\exec] view. *)

(** {1 Path & value indexes}

    The structural-summary index subsystem ({!Idx_manager}): engines
    answer indexable [Navigate] paths and pushed-down path selections
    from per-view/per-document indexes instead of walking trees.
    Answers are byte-identical with indexes on, off or mixed — this is
    a throughput knob with optimizer visibility (index-backed
    cardinalities, probe-aware costing). *)

val index_mode : t -> Idx_manager.mode
val set_index_mode : t -> Idx_manager.mode -> unit
(** [Off] never probes, [Auto] (the default) builds guides on first
    probe, [Eager] builds them at registration. *)

val build_index : t -> string -> (string, string) result
(** Force-build the structural guide for a materialized view (bare
    name) or any registry key (["view:…"], ["src:source/doc"]);
    returns a one-line build summary.  The repl's [\index build]. *)

val index_report : t -> string
(** Mode, epoch, total bytes and one line per registration — the
    repl's [\index] view. *)

(** {1 Cost-based optimizer} *)

val optimizer : t -> Med_optimize.mode
val set_optimizer : t -> Med_optimize.mode -> unit
(** Join-order strategy for every subsequent compilation against this
    engine: the greedy connected walk (default) or DPsize enumeration
    over the statistics catalog and network profiles, with bind-join
    conversion.  Answers are identical in both — this is a shipped-rows
    and latency knob. *)

val optimizer_report : t -> string
(** One-line summary of the optimizer mode — the repl's [\optimize]
    view. *)

val analyze_stats : t -> (string, string) result
(** Collect exact per-source statistics (row counts, distincts,
    histograms) by scanning every relational export — the repl's bare
    [\analyze].  Bumps the statistics epoch, so plans cached against
    older statistics re-optimize.  Returns the refreshed catalog
    listing. *)

val stats_catalog_report : t -> string
(** The current statistics catalog listing without re-scanning. *)

val add_user : t -> ?role:Fe_auth.role -> string -> string -> (unit, string) result

(** {1 Dynamic data cleaning (section 3.2)} *)

val register_cleaned_source :
  t ->
  name:string ->
  key_field:string ->
  flow:Cl_flow.flow ->
  from_query:string ->
  (unit, string) result
(** Register a derived source whose rows are the result trees of
    [from_query] (which must construct flat records), run through the
    cleaning flow {e at query time} — the paper's dynamic cleaning: "the
    source data is unchanged, and at least some of the cleansing and
    matching need to be performed dynamically."  The source is
    addressable as ["name"] in later queries and views; match
    determinations accumulate in a per-source concordance database and
    merges are recorded in a lineage store. *)

val cleaning_exceptions : t -> string -> (string * string) list
(** Pairs the last runs of the named cleaned source trapped as unsure —
    the human work queue.  [] for unknown names. *)

val resolve_match :
  t -> string -> Cl_concordance.verdict -> string -> string -> (unit, string) result
(** A human answers a trapped pair of the named cleaned source; the
    decision replays on every later query. *)

val cleaning_lineage : t -> string -> Cl_lineage.t option
(** The lineage store of a cleaned source (merge provenance /
    rollback). *)

val report : t -> string
(** Status page: sources, schemas, materializations, cache. *)

val save_config : t -> string
(** A reloadable script of the system's mediated schemas (in dependency
    order) and materialization policies:
    {v
      view <name> := <xml-ql text, UNION allowed>
      describe <name> <description>
      materialize <name> manual|on-access|every:N
    v}
    Sources, lenses and users are live objects and are not serialized. *)

val load_config : t -> string -> (unit, string) result
(** Replay a {!save_config} script (ignoring blank lines and [#]
    comments).  Stops at the first failing directive with its message.
    Sources referenced by the views must already be registered. *)

(** {1 Querying} *)

val query : t -> string -> (Dtree.t list, string) result
(** Strict mode: any unavailable source fails the whole query with an
    error naming it. *)

val query_partial : t -> string -> (Dtree.t list * string list, string) result
(** Partial-results mode (section 3.4): offline sources contribute
    nothing; the second component names them (empty means the answer is
    complete).  Incomplete answers are never cached. *)

val query_partial_ex :
  t -> string -> (Dtree.t list * string list * string list, string) result
(** {!query_partial} with the full answer envelope:
    [(trees, skipped_sources, stale_sources)].  The third component
    lists sources answered from stale fragment-cache extents under
    {!Src_retry.policy.serve_stale} — such answers are flagged here and
    never admitted to the result cache. *)

val query_formatted :
  t -> device:Fe_format.device -> string -> (string, string) result

val explain : t -> string -> (string, string) result
(** The physical plan and the fragments shipped to each source. *)

(** {1 Observability} *)

val explain_analyze : t -> ?repeat:int -> string -> (string, string) result
(** Run the query for real (bypassing the result cache) and report, per
    plan operator, estimated vs measured rows and inclusive time, plus a
    per-source-fragment table (what was pushed, calls, rows, time).  Each
    run records observed cardinalities into the catalog's feedback store,
    so with [repeat > 1] later runs plan with measured rather than
    default scan cardinalities — the report shows the estimates
    converging. *)

val stats_report : t -> string
(** All registered metrics, a per-source breakdown (availability,
    accesses, rows shipped, simulated latency), and the observed-
    cardinality store. *)

val trace_report : t -> string
(** The span trees collected since tracing was enabled (empty hint
    otherwise). *)

val set_tracing : bool -> unit
(** Toggle the process-wide trace sink ({!Obs_trace.set_enabled}). *)

(** {1 Lenses} *)

val add_lens : t -> Fe_lens.t -> (unit, string) result
val lens_names : t -> string list

val find_lens : t -> string -> Fe_lens.t option
(** The registered lens object — the concurrency server resolves
    requests through it. *)

val view_lookup : t -> string -> Dtree.t list option
(** The materialized-copy hook ({!Mat_store.lookup} over this system's
    store) that {!query} threads into the executor; exposed so the
    concurrency server executes with the same view semantics. *)

val tick_views : t -> unit
(** Advance the materialized store's query counter (refresh policies) —
    one tick per served request, as {!query} does. *)

val run_lens :
  t ->
  user:string ->
  password:string ->
  lens:string ->
  query:string ->
  (string * string) list ->
  (string, string) result
(** Authenticate, check the lens's required role, instantiate the named
    query with the arguments, execute (through cache and materialized
    views), and format for the lens's device. *)
