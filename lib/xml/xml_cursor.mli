(** Navigation cursors over an XML tree.

    The paper's feature list (section 4) requires "navigation-style
    access" that moves up, down and sideways through the document while
    respecting document order.  A cursor pairs an element with the path of
    sibling indices that reaches it from the root, which makes parent and
    sibling moves cheap and gives a total document order. *)

type t
(** A cursor positioned on an element. *)

val of_root : Xml_types.element -> t
(** Cursor on the document root. *)

val element : t -> Xml_types.element
(** The element under the cursor. *)

val path : t -> int list
(** Sibling-index path from the root (root is []).  Lexicographic order on
    paths is document (preorder) order. *)

(** {1 Axes} *)

val children : t -> t list
(** Element children, in document order. *)

val parent : t -> t option
(** [None] at the root. *)

val ancestors : t -> t list
(** Nearest first, ending with the root. *)

val next_sibling : t -> t option
(** The next element sibling. *)

val prev_sibling : t -> t option

val following_siblings : t -> t list
val preceding_siblings : t -> t list
(** Nearest first. *)

val descendants : t -> t list
(** Proper element descendants, in document order. *)

val descendants_or_self : t -> t list

val root : t -> t

(** {1 Order} *)

val compare_order : t -> t -> int
(** Document-order comparison.  Both cursors must come from the same
    tree for the result to be meaningful. *)
