type t = {
  element : Xml_types.element;
  (* Chain to the root: each ancestor together with this node's index
     among that ancestor's *element* children. *)
  up : (Xml_types.element * int) list;
}

let of_root root = { element = root; up = [] }

let element c = c.element

let path c = List.rev_map snd c.up

let children c =
  List.mapi
    (fun i child -> { element = child; up = (c.element, i) :: c.up })
    (Xml_types.child_elements c.element)

let parent c =
  match c.up with
  | [] -> None
  | (p, _) :: rest -> Some { element = p; up = rest }

let rec ancestors c =
  match parent c with
  | None -> []
  | Some p -> p :: ancestors p

let sibling_index c =
  match c.up with
  | [] -> None
  | (_, i) :: _ -> Some i

let nth_sibling c k =
  match parent c with
  | None -> None
  | Some p ->
    let siblings = children p in
    if k >= 0 && k < List.length siblings then Some (List.nth siblings k) else None

let next_sibling c =
  match sibling_index c with
  | None -> None
  | Some i -> nth_sibling c (i + 1)

let prev_sibling c =
  match sibling_index c with
  | None -> None
  | Some i -> nth_sibling c (i - 1)

let following_siblings c =
  match sibling_index c, parent c with
  | Some i, Some p ->
    let siblings = children p in
    List.filteri (fun j _ -> j > i) siblings
  | _, _ -> []

let preceding_siblings c =
  match sibling_index c, parent c with
  | Some i, Some p ->
    let siblings = children p in
    List.rev (List.filteri (fun j _ -> j < i) siblings)
  | _, _ -> []

let rec descendants_or_self c =
  c :: List.concat_map descendants_or_self (children c)

let descendants c = List.concat_map descendants_or_self (children c)

let rec root c =
  match parent c with
  | None -> c
  | Some p -> root p

let compare_order a b = compare (path a) (path b)
