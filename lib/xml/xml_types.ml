type attribute = {
  attr_name : string;
  attr_value : string;
}

type node =
  | Element of element
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of string * string

and element = {
  tag : string;
  attrs : attribute list;
  children : node list;
}

type document = {
  decl : (string * string) list;
  root : element;
}

let elem ?(attrs = []) tag children =
  let attrs = List.map (fun (n, v) -> { attr_name = n; attr_value = v }) attrs in
  { tag; attrs; children }

let el ?attrs tag children = Element (elem ?attrs tag children)

let text s = Text s

let doc root = { decl = [ ("version", "1.0") ]; root }

let attr e name =
  let rec find = function
    | [] -> None
    | a :: rest -> if String.equal a.attr_name name then Some a.attr_value else find rest
  in
  find e.attrs

let attr_exn e name =
  match attr e name with
  | Some v -> v
  | None -> raise Not_found

let child_elements e =
  List.filter_map (function Element c -> Some c | Text _ | Cdata _ | Comment _ | Pi _ -> None) e.children

let children_named e name =
  List.filter (fun c -> String.equal c.tag name) (child_elements e)

let first_child_named e name =
  let rec find = function
    | [] -> None
    | Element c :: _ when String.equal c.tag name -> Some c
    | _ :: rest -> find rest
  in
  find e.children

let text_content e =
  let buf = Buffer.create 64 in
  let rec go_node = function
    | Text s | Cdata s -> Buffer.add_string buf s
    | Element c -> go_elem c
    | Comment _ | Pi _ -> ()
  and go_elem c = List.iter go_node c.children in
  go_elem e;
  Buffer.contents buf

let node_text_content = function
  | Text s | Cdata s -> s
  | Element e -> text_content e
  | Comment _ | Pi _ -> ""

let rec equal_node a b =
  match a, b with
  | Text x, Text y | Cdata x, Cdata y | Comment x, Comment y -> String.equal x y
  | Pi (t1, c1), Pi (t2, c2) -> String.equal t1 t2 && String.equal c1 c2
  | Element x, Element y -> equal_element x y
  | (Text _ | Cdata _ | Comment _ | Pi _ | Element _), _ -> false

and equal_element a b =
  String.equal a.tag b.tag
  && List.length a.attrs = List.length b.attrs
  && List.for_all2
       (fun x y -> String.equal x.attr_name y.attr_name && String.equal x.attr_value y.attr_value)
       a.attrs b.attrs
  && List.length a.children = List.length b.children
  && List.for_all2 equal_node a.children b.children

let rec count_nodes e =
  let child_count = function
    | Element c -> count_nodes c
    | Text _ | Cdata _ | Comment _ | Pi _ -> 1
  in
  1 + List.fold_left (fun acc n -> acc + child_count n) 0 e.children

let rec depth e =
  let child_depth = function
    | Element c -> depth c
    | Text _ | Cdata _ | Comment _ | Pi _ -> 0
  in
  1 + List.fold_left (fun acc n -> max acc (child_depth n)) 0 e.children

let rec map_elements f e =
  let map_child = function
    | Element c -> Element (map_elements f c)
    | (Text _ | Cdata _ | Comment _ | Pi _) as n -> n
  in
  f { e with children = List.map map_child e.children }

let rec iter_elements f e =
  f e;
  let iter_child = function
    | Element c -> iter_elements f c
    | Text _ | Cdata _ | Comment _ | Pi _ -> ()
  in
  List.iter iter_child e.children

let rec fold_elements f acc e =
  let acc = f acc e in
  let fold_child acc = function
    | Element c -> fold_elements f acc c
    | Text _ | Cdata _ | Comment _ | Pi _ -> acc
  in
  List.fold_left fold_child acc e.children
