(** Serialization of the XML data model back to text. *)

val escape_text : string -> string
(** Escape [&], [<] and [>] for text content. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and double quote for double-quoted
    attribute values. *)

val node_to_string : Xml_types.node -> string
(** Compact (no added whitespace) serialization of a node. *)

val element_to_string : Xml_types.element -> string

val document_to_string : Xml_types.document -> string
(** Declaration followed by the compact root element. *)

val pp_element : Format.formatter -> Xml_types.element -> unit
(** Indented pretty-printer.  Elements whose children are only text are
    kept on one line; mixed content is emitted compactly to preserve
    document order faithfully. *)

val element_to_pretty_string : Xml_types.element -> string
