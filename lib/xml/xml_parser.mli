(** A from-scratch, non-validating XML parser.

    Supports elements, attributes (single- or double-quoted), text,
    character data sections, comments, processing instructions, the XML
    declaration, the five predefined entities and numeric character
    references (decimal and hexadecimal).  DOCTYPE declarations are
    skipped.  Namespaces are not resolved; prefixed names are kept
    verbatim, which suffices for the integration engine. *)

type error = {
  position : int;   (** byte offset into the input *)
  line : int;       (** 1-based line number *)
  column : int;     (** 1-based column number *)
  message : string;
}

exception Parse_error of error

val error_to_string : error -> string

val parse_document : string -> (Xml_types.document, error) result
(** Parse a complete document: optional declaration, optional misc
    (comments / PIs), exactly one root element. *)

val parse_document_exn : string -> Xml_types.document
(** @raise Parse_error on malformed input. *)

val parse_element : string -> (Xml_types.element, error) result
(** Parse a single element (a document fragment with no prolog). *)

val parse_element_exn : string -> Xml_types.element
