(** A compact path language over XML trees.

    This is the navigation component of the engine: an XPath-like subset
    sufficient for source queries and the construct/navigate operators of
    the physical algebra.

    Grammar:
    {v
      path  ::= ("/" | "//")? step (("/" | "//") step)*
      step  ::= (axis "::")? test pred*
      axis  ::= child | descendant | descendant-or-self | parent
              | ancestor | self | following-sibling | preceding-sibling
      test  ::= NAME | "*" | "." | ".." | "text()" | "@" NAME
      pred  ::= "[" pexpr "]"
      pexpr ::= "@" NAME (op STRING)?      (* attribute presence / compare *)
              | NAME (op STRING)?          (* child-element text compare  *)
              | "text()" op STRING
              | "position()" "=" INT
      op    ::= "=" | "!=" | "<" | "<=" | ">" | ">="
    v}
    [//] before a step means the descendant axis.  String literals use
    single or double quotes.  Comparisons are numeric when both sides
    parse as numbers, string otherwise. *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Self
  | Following_sibling
  | Preceding_sibling

type test =
  | Name of string
  | Any_element
  | Text_node
  | Attribute of string  (** final [@name] step selecting an attribute *)

type cmp_op = Eq | Neq | Lt | Le | Gt | Ge

type pred =
  | Has_attr of string
  | Attr_cmp of string * cmp_op * string
  | Child_exists of string
  | Child_cmp of string * cmp_op * string
  | Text_cmp of cmp_op * string
  | Position of int

type step = {
  axis : axis;
  test : test;
  preds : pred list;
}

type t = {
  absolute : bool;  (** evaluate from the tree root rather than the context *)
  steps : step list;
}

exception Syntax_error of string

val parse : string -> (t, string) result
val parse_exn : string -> t

val compare_values : cmp_op -> string -> string -> bool
(** The comparison used by predicates: numeric when both sides parse as
    floats, string otherwise.  Exposed so index probes can replicate
    predicate semantics exactly. *)

val to_string : t -> string
(** Re-render a parsed path (canonical axis syntax). *)

(** {1 Evaluation} *)

val eval : t -> Xml_cursor.t -> Xml_cursor.t list
(** Matching element cursors, deduplicated, in document order.  A final
    [text()] test selects the elements whose text is examined; use
    {!select_strings} to obtain the strings themselves. *)

val select : t -> Xml_types.element -> Xml_types.element list
(** Evaluate against the root of a tree. *)

val select_strings : t -> Xml_types.element -> string list
(** Like {!select} but returns the text content of each match; when the
    path ends in an attribute step [.../@name] it returns the attribute
    values instead. *)

val matches : t -> Xml_types.element -> bool
(** [matches p root] is true when [select p root] is non-empty. *)
