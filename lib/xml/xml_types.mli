(** Core XML data model.

    The model is a conventional ordered-tree representation of XML:
    elements carry a tag, an ordered attribute list and an ordered child
    list.  Document order is the preorder traversal of this tree, which is
    the order the paper's feature list (section 4) requires the query
    processor to preserve. *)

type attribute = {
  attr_name : string;
  attr_value : string;
}

type node =
  | Element of element
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of string * string  (** processing instruction: target, content *)

and element = {
  tag : string;
  attrs : attribute list;
  children : node list;
}

type document = {
  decl : (string * string) list;  (** pseudo-attributes of [<?xml ...?>] *)
  root : element;
}

(** {1 Constructors} *)

val elem : ?attrs:(string * string) list -> string -> node list -> element
(** [elem tag children] builds an element node. *)

val el : ?attrs:(string * string) list -> string -> node list -> node
(** Like {!elem} but wrapped as a [node]. *)

val text : string -> node

val doc : element -> document
(** Document with the default declaration. *)

(** {1 Accessors} *)

val attr : element -> string -> string option
(** [attr e name] is the value of attribute [name], if present. *)

val attr_exn : element -> string -> string
(** @raise Not_found when the attribute is absent. *)

val child_elements : element -> element list
(** Element children, in document order. *)

val children_named : element -> string -> element list
(** Element children with the given tag, in document order. *)

val first_child_named : element -> string -> element option

val text_content : element -> string
(** Concatenation of all descendant text and CDATA, in document order. *)

val node_text_content : node -> string

(** {1 Structural operations} *)

val equal_node : node -> node -> bool
(** Structural equality (attribute order significant, as in our model). *)

val equal_element : element -> element -> bool

val count_nodes : element -> int
(** Number of nodes in the subtree rooted at the element (inclusive). *)

val depth : element -> int
(** Height of the subtree (a leaf element has depth 1). *)

val map_elements : (element -> element) -> element -> element
(** Bottom-up rewrite of every element in the tree. *)

val iter_elements : (element -> unit) -> element -> unit
(** Preorder visit of every element in the tree. *)

val fold_elements : ('a -> element -> 'a) -> 'a -> element -> 'a
(** Preorder fold over every element in the tree. *)
