type error = {
  position : int;
  line : int;
  column : int;
  message : string;
}

exception Parse_error of error

let error_to_string e =
  Printf.sprintf "XML parse error at line %d, column %d: %s" e.line e.column e.message

(* Mutable scanning state over the input string. *)
type state = {
  input : string;
  len : int;
  mutable pos : int;
}

let make_state input = { input; len = String.length input; pos = 0 }

let line_col st pos =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min pos (st.len - 1) - 1 do
    if st.input.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let fail st message =
  let line, column = line_col st st.pos in
  raise (Parse_error { position = st.pos; line; column; message })

let eof st = st.pos >= st.len
let peek st = if eof st then '\000' else st.input.[st.pos]

let peek_at st k =
  if st.pos + k >= st.len then '\000' else st.input.[st.pos + k]

let advance st = st.pos <- st.pos + 1

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= st.len && String.sub st.input st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then st.pos <- st.pos + String.length prefix
  else fail st (Printf.sprintf "expected %S" prefix)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':' || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* Decode one entity reference starting at '&'; append to [buf]. *)
let read_entity st buf =
  expect st "&";
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' || peek st = 'X' in
    if hex then advance st;
    let start = st.pos in
    let valid c =
      if hex then
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      else c >= '0' && c <= '9'
    in
    while (not (eof st)) && valid (peek st) do
      advance st
    done;
    if st.pos = start then fail st "empty character reference";
    let digits = String.sub st.input start (st.pos - start) in
    expect st ";";
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> fail st "invalid character reference"
    in
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else begin
      (* Encode as UTF-8. *)
      if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    end
  end
  else begin
    let name = read_name st in
    expect st ";";
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "quot" -> Buffer.add_char buf '"'
    | "apos" -> Buffer.add_char buf '\''
    | other -> fail st (Printf.sprintf "unknown entity &%s;" other)
  end

let read_quoted_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected a quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else
      match peek st with
      | c when c = quote -> advance st
      | '&' ->
        read_entity st buf;
        go ()
      | '<' -> fail st "'<' not allowed in attribute value"
      | c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let read_attribute st =
  let name = read_name st in
  skip_space st;
  expect st "=";
  skip_space st;
  let value = read_quoted_value st in
  { Xml_types.attr_name = name; attr_value = value }

let read_attributes st =
  let rec go acc =
    skip_space st;
    if is_name_start (peek st) then go (read_attribute st :: acc) else List.rev acc
  in
  go []

let read_comment st =
  expect st "<!--";
  let start = st.pos in
  let rec go () =
    if eof st then fail st "unterminated comment"
    else if looking_at st "-->" then begin
      let body = String.sub st.input start (st.pos - start) in
      st.pos <- st.pos + 3;
      body
    end
    else begin
      advance st;
      go ()
    end
  in
  go ()

let read_cdata st =
  expect st "<![CDATA[";
  let start = st.pos in
  let rec go () =
    if eof st then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then begin
      let body = String.sub st.input start (st.pos - start) in
      st.pos <- st.pos + 3;
      body
    end
    else begin
      advance st;
      go ()
    end
  in
  go ()

let read_pi st =
  expect st "<?";
  let target = read_name st in
  skip_space st;
  let start = st.pos in
  let rec go () =
    if eof st then fail st "unterminated processing instruction"
    else if looking_at st "?>" then begin
      let body = String.sub st.input start (st.pos - start) in
      st.pos <- st.pos + 2;
      body
    end
    else begin
      advance st;
      go ()
    end
  in
  let content = go () in
  (target, content)

let skip_doctype st =
  expect st "<!DOCTYPE";
  (* Skip to the matching '>', allowing one level of bracketed subset. *)
  let rec go depth =
    if eof st then fail st "unterminated DOCTYPE"
    else
      match peek st with
      | '[' ->
        advance st;
        go (depth + 1)
      | ']' ->
        advance st;
        go (depth - 1)
      | '>' when depth = 0 -> advance st
      | _ ->
        advance st;
        go depth
  in
  go 0

let read_text st =
  let buf = Buffer.create 32 in
  let rec go () =
    if eof st then ()
    else
      match peek st with
      | '<' -> ()
      | '&' ->
        read_entity st buf;
        go ()
      | c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let rec read_element st =
  expect st "<";
  let tag = read_name st in
  let attrs = read_attributes st in
  skip_space st;
  if looking_at st "/>" then begin
    st.pos <- st.pos + 2;
    { Xml_types.tag; attrs; children = [] }
  end
  else begin
    expect st ">";
    let children = read_content st tag in
    { Xml_types.tag; attrs; children }
  end

(* Read child content until the matching close tag of [parent_tag]. *)
and read_content st parent_tag =
  let rec go acc =
    if eof st then fail st (Printf.sprintf "missing close tag </%s>" parent_tag)
    else if looking_at st "</" then begin
      st.pos <- st.pos + 2;
      let name = read_name st in
      skip_space st;
      expect st ">";
      if name <> parent_tag then
        fail st (Printf.sprintf "mismatched close tag </%s>, expected </%s>" name parent_tag);
      List.rev acc
    end
    else if looking_at st "<!--" then go (Xml_types.Comment (read_comment st) :: acc)
    else if looking_at st "<![CDATA[" then go (Xml_types.Cdata (read_cdata st) :: acc)
    else if looking_at st "<?" then begin
      let target, content = read_pi st in
      go (Xml_types.Pi (target, content) :: acc)
    end
    else if peek st = '<' && peek_at st 1 = '!' then fail st "unexpected markup declaration"
    else if peek st = '<' then go (Xml_types.Element (read_element st) :: acc)
    else begin
      let s = read_text st in
      if String.length s = 0 then go acc else go (Xml_types.Text s :: acc)
    end
  in
  go []

let read_declaration st =
  if looking_at st "<?xml" && is_space (peek_at st 5) then begin
    st.pos <- st.pos + 5;
    let attrs = read_attributes st in
    skip_space st;
    expect st "?>";
    List.map (fun a -> (a.Xml_types.attr_name, a.Xml_types.attr_value)) attrs
  end
  else []

let rec skip_misc st =
  skip_space st;
  if looking_at st "<!--" then begin
    ignore (read_comment st);
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" then begin
    skip_doctype st;
    skip_misc st
  end
  else if looking_at st "<?" && not (looking_at st "<?xml") then begin
    ignore (read_pi st);
    skip_misc st
  end

let parse_document_exn input =
  let st = make_state input in
  skip_space st;
  let decl = read_declaration st in
  skip_misc st;
  if eof st || peek st <> '<' then fail st "expected root element";
  let root = read_element st in
  skip_misc st;
  if not (eof st) then fail st "trailing content after root element";
  { Xml_types.decl; root }

let parse_document input =
  try Ok (parse_document_exn input) with Parse_error e -> Error e

let parse_element_exn input =
  let st = make_state input in
  skip_space st;
  if eof st || peek st <> '<' then fail st "expected an element";
  let e = read_element st in
  skip_space st;
  if not (eof st) then fail st "trailing content after element";
  e

let parse_element input =
  try Ok (parse_element_exn input) with Parse_error e -> Error e
