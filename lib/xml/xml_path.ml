type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Self
  | Following_sibling
  | Preceding_sibling

type test =
  | Name of string
  | Any_element
  | Text_node
  | Attribute of string

type cmp_op = Eq | Neq | Lt | Le | Gt | Ge

type pred =
  | Has_attr of string
  | Attr_cmp of string * cmp_op * string
  | Child_exists of string
  | Child_cmp of string * cmp_op * string
  | Text_cmp of cmp_op * string
  | Position of int

type step = {
  axis : axis;
  test : test;
  preds : pred list;
}

type t = {
  absolute : bool;
  steps : step list;
}

exception Syntax_error of string

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type pstate = {
  input : string;
  len : int;
  mutable pos : int;
}

let pfail msg = raise (Syntax_error msg)

let peek st = if st.pos >= st.len then '\000' else st.input.[st.pos]
let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= st.len && String.sub st.input st.pos n = s

let eat st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else pfail (Printf.sprintf "expected %S at offset %d" s st.pos)

let skip_ws st =
  while peek st = ' ' || peek st = '\t' do
    advance st
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = ':' || c = '.'

let read_name st =
  let start = st.pos in
  let continue = ref true in
  while !continue && st.pos < st.len && is_name_char (peek st) do
    (* A single ':' may appear in namespaced tags, but "::" is the axis
       separator and must not be swallowed. *)
    if peek st = ':' && st.pos + 1 < st.len && st.input.[st.pos + 1] = ':' then
      continue := false
    else advance st
  done;
  if st.pos = start then pfail (Printf.sprintf "expected a name at offset %d" start);
  String.sub st.input start (st.pos - start)

let read_string_lit st =
  let quote = peek st in
  if quote <> '\'' && quote <> '"' then pfail "expected a string literal";
  advance st;
  let start = st.pos in
  while st.pos < st.len && peek st <> quote do
    advance st
  done;
  if st.pos >= st.len then pfail "unterminated string literal";
  let s = String.sub st.input start (st.pos - start) in
  advance st;
  s

let read_op st =
  skip_ws st;
  if looking_at st "!=" then begin
    eat st "!=";
    Neq
  end
  else if looking_at st "<=" then begin
    eat st "<=";
    Le
  end
  else if looking_at st ">=" then begin
    eat st ">=";
    Ge
  end
  else if looking_at st "=" then begin
    eat st "=";
    Eq
  end
  else if looking_at st "<" then begin
    eat st "<";
    Lt
  end
  else if looking_at st ">" then begin
    eat st ">";
    Gt
  end
  else pfail "expected a comparison operator"

let read_rhs st =
  skip_ws st;
  if peek st = '\'' || peek st = '"' then read_string_lit st
  else begin
    (* bare number *)
    let start = st.pos in
    while
      st.pos < st.len
      && (let c = peek st in
          (c >= '0' && c <= '9') || c = '.' || c = '-')
    do
      advance st
    done;
    if st.pos = start then pfail "expected a literal";
    String.sub st.input start (st.pos - start)
  end

let read_pred st =
  eat st "[";
  skip_ws st;
  let p =
    if peek st = '@' then begin
      advance st;
      let name = read_name st in
      skip_ws st;
      if peek st = ']' then Has_attr name
      else begin
        let op = read_op st in
        let rhs = read_rhs st in
        Attr_cmp (name, op, rhs)
      end
    end
    else if looking_at st "text()" then begin
      eat st "text()";
      let op = read_op st in
      let rhs = read_rhs st in
      Text_cmp (op, rhs)
    end
    else if looking_at st "position()" then begin
      eat st "position()";
      skip_ws st;
      eat st "=";
      skip_ws st;
      let rhs = read_rhs st in
      match int_of_string_opt rhs with
      | Some k -> Position k
      | None -> pfail "position() requires an integer"
    end
    else begin
      let name = read_name st in
      skip_ws st;
      if peek st = ']' then Child_exists name
      else begin
        let op = read_op st in
        let rhs = read_rhs st in
        Child_cmp (name, op, rhs)
      end
    end
  in
  skip_ws st;
  eat st "]";
  p

let axis_of_string = function
  | "child" -> Child
  | "descendant" -> Descendant
  | "descendant-or-self" -> Descendant_or_self
  | "parent" -> Parent
  | "ancestor" -> Ancestor
  | "self" -> Self
  | "following-sibling" -> Following_sibling
  | "preceding-sibling" -> Preceding_sibling
  | other -> pfail (Printf.sprintf "unknown axis %S" other)

let read_step st default_axis =
  skip_ws st;
  let axis, test =
    if looking_at st ".." then begin
      eat st "..";
      (Parent, Any_element)
    end
    else if looking_at st "text()" then begin
      eat st "text()";
      (default_axis, Text_node)
    end
    else if peek st = '.' then begin
      advance st;
      (Self, Any_element)
    end
    else if peek st = '@' then begin
      advance st;
      let name = read_name st in
      (* [/e/@a] selects the attribute of the elements already in
         context, i.e. the self axis filtered on attribute presence. *)
      (Self, Attribute name)
    end
    else if peek st = '*' then begin
      advance st;
      (default_axis, Any_element)
    end
    else begin
      let name = read_name st in
      if looking_at st "::" then begin
        eat st "::";
        let axis = axis_of_string name in
        let test =
          if peek st = '*' then begin
            advance st;
            Any_element
          end
          else if looking_at st "text()" then begin
            eat st "text()";
            Text_node
          end
          else if peek st = '@' then begin
            advance st;
            Attribute (read_name st)
          end
          else Name (read_name st)
        in
        (axis, test)
      end
      else (default_axis, Name name)
    end
  in
  let rec preds acc = if peek st = '[' then preds (read_pred st :: acc) else List.rev acc in
  { axis; test; preds = preds [] }

let parse_exn input =
  let st = { input; len = String.length input; pos = 0 } in
  skip_ws st;
  if st.pos >= st.len then pfail "empty path";
  let absolute = peek st = '/' in
  let rec steps acc first =
    skip_ws st;
    if st.pos >= st.len then List.rev acc
    else begin
      let default_axis =
        if looking_at st "//" then begin
          eat st "//";
          Descendant
        end
        else if peek st = '/' then begin
          advance st;
          Child
        end
        else if first then Child
        else pfail (Printf.sprintf "expected '/' at offset %d" st.pos)
      in
      skip_ws st;
      if st.pos >= st.len then pfail "trailing '/'";
      let step = read_step st default_axis in
      steps (step :: acc) false
    end
  in
  let steps = steps [] true in
  if steps = [] then pfail "empty path";
  { absolute; steps }

let parse input =
  try Ok (parse_exn input) with Syntax_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let axis_to_string = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Self -> "self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"

let test_to_string = function
  | Name n -> n
  | Any_element -> "*"
  | Text_node -> "text()"
  | Attribute n -> "@" ^ n

let op_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pred_to_string = function
  | Has_attr n -> Printf.sprintf "[@%s]" n
  | Attr_cmp (n, op, v) -> Printf.sprintf "[@%s%s'%s']" n (op_to_string op) v
  | Child_exists n -> Printf.sprintf "[%s]" n
  | Child_cmp (n, op, v) -> Printf.sprintf "[%s%s'%s']" n (op_to_string op) v
  | Text_cmp (op, v) -> Printf.sprintf "[text()%s'%s']" (op_to_string op) v
  | Position k -> Printf.sprintf "[position()=%d]" k

let step_to_string s =
  Printf.sprintf "%s::%s%s" (axis_to_string s.axis) (test_to_string s.test)
    (String.concat "" (List.map pred_to_string s.preds))

let to_string p =
  (if p.absolute then "/" else "")
  ^ String.concat "/" (List.map step_to_string p.steps)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let compare_values op lhs rhs =
  let num =
    match float_of_string_opt lhs, float_of_string_opt rhs with
    | Some a, Some b -> Some (Float.compare a b)
    | _, _ -> None
  in
  let c = match num with Some c -> c | None -> String.compare lhs rhs in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let pred_holds cursor position p =
  let e = Xml_cursor.element cursor in
  match p with
  | Has_attr n -> Xml_types.attr e n <> None
  | Attr_cmp (n, op, rhs) -> (
    match Xml_types.attr e n with
    | Some v -> compare_values op v rhs
    | None -> false)
  | Child_exists n -> Xml_types.children_named e n <> []
  | Child_cmp (n, op, rhs) ->
    List.exists
      (fun c -> compare_values op (Xml_types.text_content c) rhs)
      (Xml_types.children_named e n)
  | Text_cmp (op, rhs) -> compare_values op (Xml_types.text_content e) rhs
  | Position k -> position = k

let axis_candidates axis cursor =
  match axis with
  | Child -> Xml_cursor.children cursor
  | Descendant -> Xml_cursor.descendants cursor
  | Descendant_or_self -> Xml_cursor.descendants_or_self cursor
  | Parent -> ( match Xml_cursor.parent cursor with Some p -> [ p ] | None -> [])
  | Ancestor -> Xml_cursor.ancestors cursor
  | Self -> [ cursor ]
  | Following_sibling -> Xml_cursor.following_siblings cursor
  | Preceding_sibling -> Xml_cursor.preceding_siblings cursor

let test_holds test cursor =
  let e = Xml_cursor.element cursor in
  match test with
  | Any_element -> true
  | Name n -> String.equal e.Xml_types.tag n
  | Text_node -> true (* text selection resolved at extraction time *)
  | Attribute n -> Xml_types.attr e n <> None

let eval_step step cursors =
  List.concat_map
    (fun cursor ->
      let candidates = axis_candidates step.axis cursor in
      let named = List.filter (test_holds step.test) candidates in
      (* Predicates see positions within the candidate list for this
         context node, matching XPath's child-positional semantics. *)
      List.filteri
        (fun i c -> List.for_all (pred_holds c (i + 1)) step.preds)
        named)
    cursors

let dedup_in_order cursors =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      let key = Xml_cursor.path c in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    cursors

let eval p context =
  let start = if p.absolute then Xml_cursor.root context else context in
  let result = List.fold_left (fun cs step -> eval_step step cs) [ start ] p.steps in
  let result = dedup_in_order result in
  List.sort Xml_cursor.compare_order result

let select p root =
  List.map Xml_cursor.element (eval p (Xml_cursor.of_root root))

let select_strings p root =
  let cursors = eval p (Xml_cursor.of_root root) in
  let last_test =
    match List.rev p.steps with
    | [] -> Any_element
    | s :: _ -> s.test
  in
  match last_test with
  | Attribute n ->
    List.filter_map (fun c -> Xml_types.attr (Xml_cursor.element c) n) cursors
  | Name _ | Any_element | Text_node ->
    List.map (fun c -> Xml_types.text_content (Xml_cursor.element c)) cursors

let matches p root = select p root <> []
