let escape generic s =
  let needs_escape c =
    match c with
    | '&' | '<' | '>' -> true
    | '"' -> generic
    | _ -> false
  in
  if String.exists needs_escape s then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string buf "&amp;"
        | '<' -> Buffer.add_string buf "&lt;"
        | '>' -> Buffer.add_string buf "&gt;"
        | '"' when generic -> Buffer.add_string buf "&quot;"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let escape_text s = escape false s
let escape_attr s = escape true s

let add_attrs buf attrs =
  List.iter
    (fun a ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf a.Xml_types.attr_name;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr a.Xml_types.attr_value);
      Buffer.add_char buf '"')
    attrs

let rec add_node buf = function
  | Xml_types.Text s -> Buffer.add_string buf (escape_text s)
  | Xml_types.Cdata s ->
    Buffer.add_string buf "<![CDATA[";
    Buffer.add_string buf s;
    Buffer.add_string buf "]]>"
  | Xml_types.Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Xml_types.Pi (target, content) ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf target;
    if content <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf content
    end;
    Buffer.add_string buf "?>"
  | Xml_types.Element e -> add_element buf e

and add_element buf e =
  Buffer.add_char buf '<';
  Buffer.add_string buf e.Xml_types.tag;
  add_attrs buf e.Xml_types.attrs;
  match e.Xml_types.children with
  | [] -> Buffer.add_string buf "/>"
  | children ->
    Buffer.add_char buf '>';
    List.iter (add_node buf) children;
    Buffer.add_string buf "</";
    Buffer.add_string buf e.Xml_types.tag;
    Buffer.add_char buf '>'

let node_to_string n =
  let buf = Buffer.create 256 in
  add_node buf n;
  Buffer.contents buf

let element_to_string e =
  let buf = Buffer.create 256 in
  add_element buf e;
  Buffer.contents buf

let document_to_string d =
  let buf = Buffer.create 256 in
  if d.Xml_types.decl <> [] then begin
    Buffer.add_string buf "<?xml";
    List.iter
      (fun (n, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf n;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_attr v);
        Buffer.add_char buf '"')
      d.Xml_types.decl;
    Buffer.add_string buf "?>\n"
  end;
  add_element buf d.Xml_types.root;
  Buffer.contents buf

let only_text_children e =
  List.for_all
    (function Xml_types.Text _ | Xml_types.Cdata _ -> true | _ -> false)
    e.Xml_types.children

let pp_attrs ppf attrs =
  List.iter
    (fun a ->
      Format.fprintf ppf " %s=\"%s\"" a.Xml_types.attr_name (escape_attr a.Xml_types.attr_value))
    attrs

let has_element_child e =
  List.exists (function Xml_types.Element _ -> true | _ -> false) e.Xml_types.children

let rec pp_element ppf e =
  match e.Xml_types.children with
  | [] -> Format.fprintf ppf "<%s%a/>" e.Xml_types.tag pp_attrs e.Xml_types.attrs
  | _ when only_text_children e || not (has_element_child e) ->
    Format.fprintf ppf "%s" (element_to_string e)
  | children ->
    Format.fprintf ppf "@[<v 2><%s%a>" e.Xml_types.tag pp_attrs e.Xml_types.attrs;
    List.iter
      (fun n ->
        match n with
        | Xml_types.Text s when String.trim s = "" -> ()
        | Xml_types.Element c -> Format.fprintf ppf "@,%a" pp_element c
        | n -> Format.fprintf ppf "@,%s" (node_to_string n))
      children;
    Format.fprintf ppf "@]@,</%s>" e.Xml_types.tag

let element_to_pretty_string e =
  Format.asprintf "@[<v>%a@]" pp_element e
