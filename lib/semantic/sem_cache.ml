type stats = {
  mutable sem_hits : int;
  mutable sem_partials : int;
  mutable sem_misses : int;
  mutable sem_admissions : int;
  mutable sem_evictions : int;
  mutable sem_invalidations : int;
  mutable sem_rows_local : int;
  mutable sem_rows_shipped : int;
  mutable sem_fallbacks : int;
  mutable sem_view_hits : int;
}

type outcome =
  | O_hit of { local : int }
  | O_partial of { local : int; shipped : int; remainder : string }
  | O_miss

type t = {
  mutable budget_bytes : int;
  mutable entry_list : Sem_entry.t list;  (* most recently admitted first *)
  mutable used : int;
  mutable tick : int;
  st : stats;
  outcomes : (string, outcome) Hashtbl.t;
}

(* Counters are process-global (get-or-create by name), so several
   cache instances aggregate into one [semcache.*] family — the same
   convention Frag_cache and the server follow. *)
let m_hits = Obs_metrics.counter "semcache.hits"
let m_partials = Obs_metrics.counter "semcache.partial_hits"
let m_misses = Obs_metrics.counter "semcache.misses"
let m_admissions = Obs_metrics.counter "semcache.admissions"
let m_evictions = Obs_metrics.counter "semcache.evictions"
let m_invalidations = Obs_metrics.counter "semcache.invalidations"
let m_rows_local = Obs_metrics.counter "semcache.rows_local"
let m_rows_shipped = Obs_metrics.counter "semcache.rows_shipped"
let m_fallbacks = Obs_metrics.counter "semcache.order_fallbacks"
let m_view_hits = Obs_metrics.counter "semcache.view_hits"

let create ?(budget_bytes = 0) () =
  {
    budget_bytes;
    entry_list = [];
    used = 0;
    tick = 0;
    st =
      {
        sem_hits = 0;
        sem_partials = 0;
        sem_misses = 0;
        sem_admissions = 0;
        sem_evictions = 0;
        sem_invalidations = 0;
        sem_rows_local = 0;
        sem_rows_shipped = 0;
        sem_fallbacks = 0;
        sem_view_hits = 0;
      };
    outcomes = Hashtbl.create 16;
  }

let enabled t = t.budget_bytes > 0
let budget t = t.budget_bytes
let bytes_used t = t.used
let entry_count t = List.length t.entry_list
let stats t = t.st

let entries t ~source ~scope =
  List.filter
    (fun e ->
      e.Sem_entry.entry_source = source && e.Sem_entry.entry_scope = scope)
    t.entry_list

let touch t e =
  t.tick <- t.tick + 1;
  e.Sem_entry.entry_stamp <- t.tick

let drop t e =
  t.entry_list <- List.filter (fun e' -> e' != e) t.entry_list;
  t.used <- t.used - e.Sem_entry.entry_bytes

(* Evict until [need] bytes fit: lowest benefit first, oldest stamp as
   the tie-break.  [samples] stands in for the incoming entry's own
   popularity so a hot newcomer can displace cold residents but not the
   other way around. *)
let rec make_room t ~samples ~need =
  if t.used + need <= t.budget_bytes then true
  else
    match
      List.fold_left
        (fun worst e ->
          let score =
            (Sem_entry.benefit e ~samples:0, e.Sem_entry.entry_stamp)
          in
          match worst with
          | Some (_, s) when s <= score -> worst
          | _ -> Some (e, score))
        None t.entry_list
    with
    | None -> false
    | Some (victim, (vb, _)) ->
      if vb > samples + 1 then false
        (* every resident is hotter than the newcomer: refuse admission *)
      else begin
        drop t victim;
        t.st.sem_evictions <- t.st.sem_evictions + 1;
        Obs_metrics.inc m_evictions;
        make_room t ~samples ~need
      end

let admit t ?(samples = 0) e =
  if not (enabled t) then false
  else if e.Sem_entry.entry_bytes > t.budget_bytes then false
  else if
    List.exists
      (fun e' -> e'.Sem_entry.entry_key = e.Sem_entry.entry_key)
      t.entry_list
  then false
  else if not (make_room t ~samples ~need:e.Sem_entry.entry_bytes) then false
  else begin
    touch t e;
    t.entry_list <- e :: t.entry_list;
    t.used <- t.used + e.Sem_entry.entry_bytes;
    t.st.sem_admissions <- t.st.sem_admissions + 1;
    Obs_metrics.inc m_admissions;
    true
  end

let invalidate_name t name =
  let prefix = name ^ "." in
  let matches e =
    e.Sem_entry.entry_source = name
    || List.exists
         (fun x ->
           x = name
           || String.length x > String.length prefix
              && String.sub x 0 (String.length prefix) = prefix)
         e.Sem_entry.entry_exports
  in
  let doomed, kept = List.partition matches t.entry_list in
  t.entry_list <- kept;
  List.iter (fun e -> t.used <- t.used - e.Sem_entry.entry_bytes) doomed;
  let n = List.length doomed in
  if n > 0 then begin
    t.st.sem_invalidations <- t.st.sem_invalidations + n;
    Obs_metrics.inc ~by:n m_invalidations
  end;
  n

let clear t =
  t.entry_list <- [];
  t.used <- 0;
  Hashtbl.reset t.outcomes

let set_budget t b =
  t.budget_bytes <- max 0 b;
  if t.budget_bytes = 0 then clear t
  else ignore (make_room t ~samples:1_000_000_000 ~need:0)

let note_hit t ~rows =
  t.st.sem_hits <- t.st.sem_hits + 1;
  t.st.sem_rows_local <- t.st.sem_rows_local + rows;
  Obs_metrics.inc m_hits;
  Obs_metrics.inc ~by:rows m_rows_local

let note_partial t ~local ~shipped =
  t.st.sem_partials <- t.st.sem_partials + 1;
  t.st.sem_rows_local <- t.st.sem_rows_local + local;
  t.st.sem_rows_shipped <- t.st.sem_rows_shipped + shipped;
  Obs_metrics.inc m_partials;
  Obs_metrics.inc ~by:local m_rows_local;
  Obs_metrics.inc ~by:shipped m_rows_shipped

let note_miss t ~shipped =
  t.st.sem_misses <- t.st.sem_misses + 1;
  t.st.sem_rows_shipped <- t.st.sem_rows_shipped + shipped;
  Obs_metrics.inc m_misses;
  Obs_metrics.inc ~by:shipped m_rows_shipped

let note_fallback t =
  t.st.sem_fallbacks <- t.st.sem_fallbacks + 1;
  Obs_metrics.inc m_fallbacks

let note_view_hit t =
  t.st.sem_view_hits <- t.st.sem_view_hits + 1;
  Obs_metrics.inc m_view_hits

let outcome_cells = function
  | O_hit { local } -> [ ("sem", "hit"); ("local", string_of_int local) ]
  | O_partial { local; shipped; remainder } ->
    [
      ("sem", "partial");
      ("local", string_of_int local);
      ("shipped", string_of_int shipped);
      ("remainder", Printf.sprintf "%S" remainder);
    ]
  | O_miss -> [ ("sem", "miss") ]

let record_outcome t ~sql o = Hashtbl.replace t.outcomes sql o
let last_outcome t ~sql = Hashtbl.find_opt t.outcomes sql

let report t =
  if not (enabled t) then "semantic cache: off"
  else
    Printf.sprintf
      "semantic cache: %d entries, %d/%d bytes / hits=%d partial=%d \
       miss=%d / rows local=%d shipped=%d / admitted=%d evicted=%d \
       invalidated=%d fallbacks=%d view_hits=%d"
      (entry_count t) t.used t.budget_bytes t.st.sem_hits t.st.sem_partials
      t.st.sem_misses t.st.sem_rows_local t.st.sem_rows_shipped
      t.st.sem_admissions t.st.sem_evictions t.st.sem_invalidations
      t.st.sem_fallbacks t.st.sem_view_hits
