(** Predicate containment and subtraction over the SQL-subset expression
    language.

    The semantic cache (section 3.3's "local copies" taken seriously)
    needs three decision procedures over WHERE clauses:

    - {!contains}: does predicate [p] (the cached extent's definition)
      logically contain predicate [q] (the incoming request), i.e. does
      every row satisfying [q] also satisfy [p]?
    - {!overlaps}: can [p] and [q] be satisfied by a common row at all
      (if provably not, a partial-hit rewrite would be pointless)?
    - {!remainder}: the null-safe "requested AND NOT cached" predicate
      shipped to the source on a partial hit.

    Analysis is conjunct-wise and deliberately incomplete: each conjunct
    is classified as a per-column interval / value-set constraint when it
    has one of the shapes [col op literal], [literal op col],
    [col BETWEEN a AND b], or [col IN (literals)]; anything else
    (disjunctions, arithmetic, LIKE, subexpressions over several
    columns) is kept as an {e opaque} conjunct that only matches itself
    syntactically.  Incompleteness is safe: an undecided containment is
    answered [false] and the request simply ships to the source. *)

type col = string option * string
(** A column identity: optional table/alias qualifier and column name. *)

type interval = {
  iv_lo : (Value.t * bool) option;  (** lower bound, [true] = inclusive *)
  iv_hi : (Value.t * bool) option;  (** upper bound, [true] = inclusive *)
  iv_in : Value.t list option;      (** finite allowed set, if any *)
}
(** Conjunction of range and set constraints on a single column. *)

type t = {
  cols : (col * interval) list;  (** one entry per constrained column *)
  opaque : Sql_ast.expr list;    (** conjuncts beyond the analyzer *)
  unsat : bool;  (** provably empty (e.g. [x = 1 AND x = 2]) *)
}
(** Analyzed form of a predicate ([None] = tautology analyzes to the
    empty constraint list). *)

val analyze : Sql_ast.expr option -> t
(** Decompose a WHERE clause (or its absence) into per-column intervals
    plus opaque leftovers. *)

val contains : outer:t -> inner:t -> bool
(** [contains ~outer:p ~inner:q] is [true] only when provably
    [q ⇒ p]: every opaque conjunct of [p] appears syntactically in [q],
    and on every column [p] constrains, [q]'s interval lies within
    [p]'s.  Sound under SQL three-valued logic: a satisfied [q]-conjunct
    forces its column non-null, so the implied [p]-conjunct cannot be
    UNKNOWN. *)

val overlaps : t -> t -> bool
(** [false] only when the two predicates are provably disjoint (some
    shared column's intervals cannot intersect, or either side is
    unsatisfiable).  Opaque conjuncts never prove disjointness. *)

val remainder : cached:Sql_ast.expr option -> Sql_ast.expr option -> Sql_ast.expr option
(** [remainder ~cached:p q] is the predicate shipped to the source on a
    partial hit:

    {v q AND (NOT p OR c1 IS NULL OR ... OR cn IS NULL) v}

    where [c1..cn] are the columns [p] references ([q = None] drops the
    leading conjunct; [p = None] returns [q] unchanged — though a
    tautological cache entry never produces a remainder, it full-hits).
    The IS NULL guards
    make the split exhaustive under three-valued logic: rows where [p]
    evaluates to UNKNOWN (null in a [p]-column) fail the cached extent's
    filter and must come from the source.  Complementarily,
    {!probe_filter} keeps only cached rows with all [p]-columns
    non-null, so probe and remainder partition [σ_q]. *)

val probe_filter : cached:Sql_ast.expr option -> Sql_ast.expr option -> Sql_ast.expr option
(** [probe_filter ~cached:p q] is the predicate applied locally to the
    cached extent on a {e partial} hit: [q] conjoined with
    [ci IS NOT NULL] for each column of [p].  Full hits filter by plain
    [q] (no guards needed: [q ⇒ p] already confines the answer to the
    extent).  The partition argument requires [p] to be UNKNOWN {e only}
    via null columns, which holds exactly when [analyze p] yields no
    opaque conjuncts — {!Sem_rewrite} enforces that before attempting a
    remainder split. *)

val rename_columns : (col * string) list -> Sql_ast.expr -> Sql_ast.expr
(** Rewrite column references through an output-name map (used to
    evaluate join-fragment predicates, written over table aliases,
    against stored rows keyed by output column names).  Columns absent
    from the map keep their name unqualified. *)

val canonical_expr : Sql_ast.expr -> string
(** Stable rendering used for syntactic conjunct matching. *)
