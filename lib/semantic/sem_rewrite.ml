(* Probe/remainder splitting.  See the .mli for the correctness
   contract; the code below errs on the side of shipping the original
   fragment whenever faithfulness of the merged stream is in doubt. *)

type request = {
  req_source : string;
  req_select : Sql_ast.select;
  req_sql_text : string;
  req_exports : string list;
  req_samples : int;
}

type plan =
  | P_local of Source.result
  | P_ship of {
      ship_sql : string;
      finish : Source.result -> Source.result;
    }

let scope_of (s : Sql_ast.select) =
  Sql_print.select_to_string
    {
      Sql_ast.distinct = false;
      items = [ Sql_ast.Star ];
      from = s.from;
      where = None;
      group_by = [];
      having = None;
      order_by = [];
      limit = None;
    }

(* What the projection looks like: [*], or a list of plain columns with
   their output names.  Anything else is beyond the cache. *)
type items_shape =
  | Sh_star
  | Sh_cols of (Sem_pred.col * string) list

let items_shape (items : Sql_ast.select_item list) : items_shape option =
  match items with
  | [ Sql_ast.Star ] -> Some Sh_star
  | [] -> None
  | _ ->
    let rec go acc = function
      | [] -> Some (Sh_cols (List.rev acc))
      | Sql_ast.Expr_item (Sql_ast.Col (q, c), alias) :: rest ->
        go (((q, c), Option.value alias ~default:c) :: acc) rest
      | _ -> None
    in
    go [] items

let eligible (s : Sql_ast.select) =
  (not s.distinct)
  && s.group_by = []
  && s.having = None
  && s.order_by = []
  && s.limit = None
  && s.from <> None
  && items_shape s.items <> None

let single_table (s : Sql_ast.select) =
  match s.from with Some (Sql_ast.From_table _) -> true | _ -> false

(* The sentinel [(None, "*") -> "*"] marks an extent that carries every
   column of its scope, which is the only kind that can answer a [*]
   request. *)
let star_marker = ((None, "*"), "*")

let star_colmap names =
  star_marker :: List.map (fun n -> ((None, n), n)) names

let covers_shape entry shape needed =
  match shape with
  | Sh_star -> List.mem_assoc (fst star_marker) entry.Sem_entry.entry_colmap
  | Sh_cols _ -> Sem_entry.covers entry needed

let dedup cols =
  List.fold_left (fun acc c -> if List.mem c acc then acc else acc @ [ c ]) [] cols

let needed_cols shape (where : Sql_ast.expr option) =
  let item_cols = match shape with Sh_star -> [] | Sh_cols m -> List.map fst m in
  let where_cols =
    match where with None -> [] | Some e -> Sql_ast.expr_columns e
  in
  dedup (item_cols @ where_cols)

let get_value row col =
  Option.value (Tuple.get row col) ~default:Value.Null

(* Project a stored row to the request's output names through the
   entry's source-column → stored-name map. *)
let project_row entry mapping row =
  Tuple.make
    (List.map
       (fun (src, out) ->
         let stored = List.assoc src entry.Sem_entry.entry_colmap in
         (out, get_value row stored))
       mapping)

let filter_rows where_opt rows =
  match where_opt with
  | None -> rows
  | Some e -> List.filter (fun row -> Sql_eval.eval_pred row e) rows

let is_ascending col rows =
  let rec go prev = function
    | [] -> true
    | row :: rest -> (
      match get_value row col with
      | Value.Null -> false
      | v -> (
        match prev with
        | None -> go (Some v) rest
        | Some p -> (
          match Value.compare_sql p v with
          | Some k when k < 0 -> go (Some v) rest
          | _ -> false)))
  in
  go None rows

(* Two-pointer merge by the order column; [None] on a cross-stream tie
   or incomparable pair (the caller falls back to re-shipping). *)
let merge_by col a b =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> Some (List.rev_append acc rest)
    | x :: xs, y :: ys -> (
      match Value.compare_sql (get_value x col) (get_value y col) with
      | Some k when k < 0 -> go xs b (x :: acc)
      | Some k when k > 0 -> go a ys (y :: acc)
      | _ -> None)
  in
  go a b []

let admit_extent cache req ~scope ~colmap ~columns ~rows =
  let entry =
    Sem_entry.make ~source:req.req_source ~scope ~exports:req.req_exports
      ~where:req.req_select.Sql_ast.where ~colmap ~columns ~rows
      ~key:(Sql_print.canonical_select req.req_select)
  in
  ignore (Sem_cache.admit cache ~samples:req.req_samples entry)

let colmap_of_result shape names =
  match shape with
  | Sh_star -> star_colmap names
  | Sh_cols mapping -> mapping

(* ------------------------------------------------------------------ *)

let passthrough req = P_ship { ship_sql = req.req_sql_text; finish = Fun.id }

let miss_plan cache req shape =
  P_ship
    {
      ship_sql = req.req_sql_text;
      finish =
        (fun raw ->
          (match raw with
          | Source.R_rows (names, rows) ->
            Sem_cache.note_miss cache ~shipped:(List.length rows);
            Sem_cache.record_outcome cache ~sql:req.req_sql_text Sem_cache.O_miss;
            admit_extent cache req ~scope:(scope_of req.req_select)
              ~colmap:(colmap_of_result shape names) ~columns:names ~rows
          | _ ->
            Sem_cache.note_miss cache ~shipped:0;
            Sem_cache.record_outcome cache ~sql:req.req_sql_text Sem_cache.O_miss);
          raw);
    }

let full_hit cache req entry shape =
  let open Sem_entry in
  let q = req.req_select.Sql_ast.where in
  let filt = Option.map (Sem_pred.rename_columns entry.entry_colmap) q in
  let rows = filter_rows filt entry.entry_rows in
  let names, projected =
    match shape with
    | Sh_star -> (entry.entry_columns, rows)
    | Sh_cols mapping ->
      (List.map snd mapping, List.map (project_row entry mapping) rows)
  in
  entry.entry_hits <- entry.entry_hits + 1;
  Sem_cache.touch cache entry;
  Sem_cache.note_hit cache ~rows:(List.length projected);
  Sem_cache.record_outcome cache ~sql:req.req_sql_text
    (Sem_cache.O_hit { local = List.length projected });
  P_local (Source.R_rows (names, projected))

let partial_hit cache ~reship req entry shape order_col =
  let open Sem_entry in
  let s = req.req_select in
  let q = s.Sql_ast.where in
  (* Extend the projection with the merge key if it isn't already
     requested; the extra column is invisible to the engine (bindings
     resolve by name) but lets both streams be merged in source order. *)
  let shape' =
    match shape with
    | Sh_star -> Sh_star
    | Sh_cols mapping ->
      if List.mem_assoc (None, order_col) mapping then Sh_cols mapping
      else Sh_cols (mapping @ [ ((None, order_col), order_col) ])
  in
  let items' =
    match shape' with
    | Sh_star -> [ Sql_ast.Star ]
    | Sh_cols mapping ->
      List.map
        (fun ((q, c), out) ->
          Sql_ast.Expr_item
            (Sql_ast.Col (q, c), if out = c then None else Some out))
        mapping
  in
  let rem_where = Sem_pred.remainder ~cached:entry.entry_where q in
  let ship_select = { s with Sql_ast.items = items'; where = rem_where } in
  let ship_sql = Sql_print.select_to_string ship_select in
  let fallback () =
    Sem_cache.note_fallback cache;
    reship ()
  in
  let finish raw =
    match raw with
    | Source.R_rows (names_r, rows_r) -> (
      let probe_pred =
        Option.map
          (Sem_pred.rename_columns entry.entry_colmap)
          (Sem_pred.probe_filter ~cached:entry.entry_where q)
      in
      let probe = filter_rows probe_pred entry.entry_rows in
      let probe_proj =
        match shape' with
        | Sh_star ->
          if entry.entry_columns = names_r then probe else []
        | Sh_cols mapping -> List.map (project_row entry mapping) probe
      in
      let shapes_agree =
        match shape' with
        | Sh_star -> entry.entry_columns = names_r
        | Sh_cols mapping -> List.map snd mapping = names_r
      in
      if not (shapes_agree && is_ascending order_col rows_r) then fallback ()
      else
        match merge_by order_col probe_proj rows_r with
        | None -> fallback ()
        | Some merged ->
          entry.entry_partials <- entry.entry_partials + 1;
          Sem_cache.touch cache entry;
          Sem_cache.note_partial cache ~local:(List.length probe_proj)
            ~shipped:(List.length rows_r);
          Sem_cache.record_outcome cache ~sql:req.req_sql_text
            (Sem_cache.O_partial
               {
                 local = List.length probe_proj;
                 shipped = List.length rows_r;
                 remainder = ship_sql;
               });
          admit_extent cache req ~scope:(scope_of s)
            ~colmap:(colmap_of_result shape' names_r) ~columns:names_r
            ~rows:merged;
          Source.R_rows (names_r, merged))
    | _ -> fallback ()
  in
  P_ship { ship_sql; finish }

let plan cache ~reship req =
  if not (Sem_cache.enabled cache) then passthrough req
  else
    let s = req.req_select in
    match items_shape s.Sql_ast.items with
    | None -> passthrough req
    | Some _ when not (eligible s) -> passthrough req
    | Some shape -> (
      let scope = scope_of s in
      let qa = Sem_pred.analyze s.Sql_ast.where in
      let needed = needed_cols shape s.Sql_ast.where in
      let cands = Sem_cache.entries cache ~source:req.req_source ~scope in
      let full =
        List.find_opt
          (fun e ->
            Sem_pred.contains ~outer:e.Sem_entry.entry_pred ~inner:qa
            && covers_shape e shape needed)
          cands
      in
      match full with
      | Some entry -> full_hit cache req entry shape
      | None -> (
        let partial =
          if not (single_table s) then None
          else
            List.find_map
              (fun e ->
                let open Sem_entry in
                match (e.entry_where, e.entry_order_col) with
                | Some _, Some oc
                  when e.entry_pred.Sem_pred.opaque = []
                       && (not e.entry_pred.Sem_pred.unsat)
                       && Sem_pred.overlaps e.entry_pred qa
                       && covers_shape e shape
                            (dedup
                               (needed
                               @ (match e.entry_where with
                                 | Some p -> Sql_ast.expr_columns p
                                 | None -> [])))
                       && List.mem_assoc (None, oc) e.entry_colmap ->
                  Some (e, oc)
                | _ -> None)
              cands
        in
        match partial with
        | Some (entry, oc) -> partial_hit cache ~reship req entry shape oc
        | None -> miss_plan cache req shape))
