(** The semantic fragment cache: a store of {!Sem_entry} extents probed
    by predicate containment.

    Sits beside {!Frag_cache} (the exact-key layer) under the mediator's
    fragment fetch: an exact repeat hits the fragment cache first; a
    {e different but contained} predicate over the same scope hits here
    and ships nothing; an overlapping predicate ships only the remainder
    (see {!Sem_rewrite}).

    Admission and eviction are accounted against a byte budget
    ([budget_bytes = 0] disables the cache).  Eviction order is lowest
    {!Sem_entry.benefit} first — a frequency signal fed by recorded
    hits plus {!Obs_feedback} sample counts — with least-recent use as
    the tie-break.  All activity is published as [semcache.*] metrics
    through {!Obs_metrics}. *)

type t

type stats = {
  mutable sem_hits : int;          (** full hits: shipped nothing *)
  mutable sem_partials : int;      (** probe + remainder splits *)
  mutable sem_misses : int;        (** eligible probes finding nothing *)
  mutable sem_admissions : int;
  mutable sem_evictions : int;
  mutable sem_invalidations : int; (** entries dropped by invalidation *)
  mutable sem_rows_local : int;    (** rows answered from extents *)
  mutable sem_rows_shipped : int;  (** rows fetched by remainder/miss *)
  mutable sem_fallbacks : int;     (** splits abandoned (no order key) *)
  mutable sem_view_hits : int;     (** pattern queries answered by a
                                       subsuming materialized view *)
}

val create : ?budget_bytes:int -> unit -> t
(** Default budget 0: disabled. *)

val enabled : t -> bool
val budget : t -> int
val bytes_used : t -> int
val entry_count : t -> int
val stats : t -> stats

val set_budget : t -> int -> unit
(** Re-budget in place (evicting down if shrunk); 0 disables and
    clears. *)

val entries : t -> source:string -> scope:string -> Sem_entry.t list
(** Candidate extents for a request, most recently admitted first. *)

val admit : t -> ?samples:int -> Sem_entry.t -> bool
(** Store an extent, evicting lowest-benefit entries to fit the budget.
    Returns [false] (and stores nothing) when disabled, when the entry
    alone exceeds the whole budget, or when an entry with the same key
    is already resident.  [samples] is the {!Obs_feedback} sample count
    used in the eviction scoring of {e other} entries considered for
    removal. *)

val touch : t -> Sem_entry.t -> unit
(** Refresh recency (called on hits). *)

val invalidate_name : t -> string -> int
(** Drop entries whose source or any export matches [name] (or whose
    source is the prefix of a qualified [source.table] name); returns
    how many were dropped.  Wired to {!Med_catalog.on_mutation}
    notifications and [invalidate_source]. *)

val clear : t -> unit

val note_hit : t -> rows:int -> unit
val note_partial : t -> local:int -> shipped:int -> unit
val note_miss : t -> shipped:int -> unit
val note_fallback : t -> unit
val note_view_hit : t -> unit
(** Outcome accounting, mirrored to [semcache.*] counters. *)

type outcome =
  | O_hit of { local : int }
  | O_partial of { local : int; shipped : int; remainder : string }
  | O_miss

val outcome_cells : outcome -> (string * string) list
(** Report cells for EXPLAIN ANALYZE's access lines: [sem=hit local=N],
    [sem=partial local=N shipped=N remainder="..."], or [sem=miss]. *)

val record_outcome : t -> sql:string -> outcome -> unit
val last_outcome : t -> sql:string -> outcome option
(** The most recent outcome per fragment text, kept for EXPLAIN ANALYZE
    cells (the report renders what the fetch layer decided). *)

val report : t -> string
(** One-paragraph summary for the repl's [\sem]. *)
