(** The probe/remainder splitter: decides, for one SQL fragment about to
    ship, whether the semantic cache can answer it fully (ship nothing),
    partially (ship only the remainder predicate and merge), or not at
    all (ship as-is, admit the result).

    The decision is returned as a {!plan} rather than executed here so
    the caller can route the ship through its own machinery — the
    exact-key {!Frag_cache}, batched [Q_batch] fetches, capability
    fallbacks — before calling [finish] on whatever came back.

    Correctness contract (the QCheck property in [test_semantic]):
    with the cache on, answers are byte-identical to the cache off.
    Full hits rely on containment soundness ({!Sem_pred.contains}) plus
    order stability: a cached extent preserves the source's enumeration
    order, and filtering it by [q] yields exactly the subsequence the
    source would have returned.  Remainder splits additionally need a
    merge key: a stored column strictly ascending in both streams
    ({!Sem_entry.detect_order_col}); when none exists, or the shipped
    remainder violates ascending order, the split falls back to shipping
    the original fragment ([semcache.order_fallbacks]).  This reproduces
    the source's order whenever the source enumerates rows in ascending
    key order — true of every fixture and bench in this repo, and
    documented honestly in DESIGN §12. *)

type request = {
  req_source : string;       (** registry name of the source *)
  req_select : Sql_ast.select;  (** AST of the fragment *)
  req_sql_text : string;     (** exact text a plain ship would send *)
  req_exports : string list; (** qualified exports, for invalidation *)
  req_samples : int;         (** {!Obs_feedback} popularity of the access *)
}

type plan =
  | P_local of Source.result
      (** full hit: the filtered extent, projected to the request's
          output columns; nothing ships *)
  | P_ship of {
      ship_sql : string;
          (** what to send: the remainder rendering on a partial hit,
              [req_sql_text] on a miss or when the cache sits out *)
      finish : Source.result -> Source.result;
          (** merge with the probe / admit the extent; on a partial hit
              whose merge cannot be reproduced faithfully this re-ships
              the original fragment via [reship] *)
    }

val plan :
  Sem_cache.t -> reship:(unit -> Source.result) -> request -> plan
(** [reship] must fetch [req_sql_text] from the source (the caller's
    normal uncached path); it is only invoked from [finish], and only
    when a partial merge has to be abandoned. *)

val eligible : Sql_ast.select -> bool
(** True for the fragment shapes the cache handles: plain-column or [*]
    projections over a FROM clause, no DISTINCT / GROUP BY / HAVING /
    ORDER BY / LIMIT / aggregates.  Ineligible fragments ship untouched
    and are never admitted. *)

val scope_of : Sql_ast.select -> string
(** The relation identity containment is scoped to: the [SELECT * FROM
    ...] rendering of the fragment's FROM clause. *)
