type t = {
  entry_source : string;
  entry_scope : string;
  entry_exports : string list;
  entry_where : Sql_ast.expr option;
  entry_pred : Sem_pred.t;
  entry_colmap : (Sem_pred.col * string) list;
  entry_columns : string list;
  entry_rows : Tuple.t list;
  entry_bytes : int;
  entry_order_col : string option;
  entry_key : string;
  mutable entry_hits : int;
  mutable entry_partials : int;
  mutable entry_stamp : int;
}

let value_bytes = function
  | Value.Null -> 1
  | Value.Bool _ -> 1
  | Value.Int _ | Value.Float _ | Value.Date _ -> 8
  | Value.String s -> String.length s

(* Per-field overhead covers the field name and list cell; the point is
   a stable, monotone estimate for budget accounting. *)
let bytes_of_rows rows =
  List.fold_left
    (fun acc row ->
      List.fold_left
        (fun acc (name, v) -> acc + 16 + String.length name + value_bytes v)
        acc (Tuple.fields row))
    0 rows

let detect_order_col columns rows =
  let ascending col =
    let rec go prev = function
      | [] -> true
      | row :: rest -> (
        match Tuple.get row col with
        | None | Some Value.Null -> false
        | Some v -> (
          match prev with
          | None -> go (Some v) rest
          | Some p -> (
            match Value.compare_sql p v with
            | Some k when k < 0 -> go (Some v) rest
            | _ -> false)))
    in
    go None rows
  in
  List.find_opt ascending columns

let make ~source ~scope ~exports ~where ~colmap ~columns ~rows ~key =
  {
    entry_source = source;
    entry_scope = scope;
    entry_exports = exports;
    entry_where = where;
    entry_pred = Sem_pred.analyze where;
    entry_colmap = colmap;
    entry_columns = columns;
    entry_rows = rows;
    entry_bytes = bytes_of_rows rows;
    entry_order_col = detect_order_col columns rows;
    entry_key = key;
    entry_hits = 0;
    entry_partials = 0;
    entry_stamp = 0;
  }

let covers t cols =
  List.for_all (fun c -> List.mem_assoc c t.entry_colmap) cols

let benefit t ~samples = 1 + t.entry_hits + t.entry_partials + samples
