(** A cached extent: the rows a source returned for one fragment,
    remembered together with the predicate that defined them and the
    columns they carry, so later requests can be answered by containment
    rather than by exact key. *)

type t = {
  entry_source : string;  (** registry name of the owning source *)
  entry_scope : string;
      (** identity of the relation(s) scanned — the canonical FROM
          rendering; containment is only attempted between requests and
          entries with equal scope *)
  entry_exports : string list;
      (** qualified export names ([source.table]) for invalidation *)
  entry_where : Sql_ast.expr option;  (** defining predicate [p] *)
  entry_pred : Sem_pred.t;            (** its analysis, precomputed *)
  entry_colmap : (Sem_pred.col * string) list;
      (** source-column → stored-field name; the domain is what the
          extent can answer about, the range is how stored rows spell
          it *)
  entry_columns : string list;  (** stored field names, fetch order *)
  entry_rows : Tuple.t list;
  entry_bytes : int;            (** estimated resident size *)
  entry_order_col : string option;
      (** a stored field strictly ascending across [entry_rows], if
          any — the merge key for remainder splits *)
  entry_key : string;  (** canonical SQL text of the defining fragment *)
  mutable entry_hits : int;
  mutable entry_partials : int;
  mutable entry_stamp : int;  (** last-use tick for eviction tie-breaks *)
}

val make :
  source:string ->
  scope:string ->
  exports:string list ->
  where:Sql_ast.expr option ->
  colmap:(Sem_pred.col * string) list ->
  columns:string list ->
  rows:Tuple.t list ->
  key:string ->
  t
(** Builds an entry, estimating byte size and detecting the order
    column. *)

val bytes_of_rows : Tuple.t list -> int
(** Rough resident-size estimate (per-value payload + per-field
    overhead); used for budget accounting, not exact accounting. *)

val detect_order_col : string list -> Tuple.t list -> string option
(** First column (in given order) whose values are strictly ascending
    under SQL comparison across all rows — [None] when no column
    qualifies or any candidate pair is incomparable/null. *)

val covers : t -> Sem_pred.col list -> bool
(** Does the extent carry every one of these source columns? *)

val benefit : t -> samples:int -> int
(** Eviction score: how many times this extent was (or is expected to
    be) worth a round trip — 1 for admission, plus recorded full/partial
    hits, plus the {!Obs_feedback} sample count for the fragment (how
    often the access actually shipped historically). *)
