(* Conjunct-wise predicate analysis for the semantic cache.  See the
   .mli for the soundness argument; the guiding rule throughout is that
   "don't know" must collapse to "not contained" / "overlapping", never
   the other way around. *)

type col = string option * string

type interval = {
  iv_lo : (Value.t * bool) option;
  iv_hi : (Value.t * bool) option;
  iv_in : Value.t list option;
}

type t = {
  cols : (col * interval) list;
  opaque : Sql_ast.expr list;
  unsat : bool;
}

let unconstrained = { iv_lo = None; iv_hi = None; iv_in = None }

let canonical_expr = Sql_print.expr_to_string

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

(* A conjunct classifies into a single-column constraint or stays
   opaque.  NULL literals stay opaque: [x = NULL] is UNKNOWN-everywhere
   in SQL and not worth modelling as an interval. *)
type classified =
  | K_interval of col * interval
  | K_opaque of Sql_ast.expr

let classify (e : Sql_ast.expr) : classified =
  let open Sql_ast in
  let non_null v = v <> Value.Null in
  match e with
  | Binop (op, Col (q, c), Lit v) when non_null v -> (
    let col = (q, c) in
    match op with
    | Eq -> K_interval (col, { unconstrained with iv_in = Some [ v ] })
    | Lt -> K_interval (col, { unconstrained with iv_hi = Some (v, false) })
    | Le -> K_interval (col, { unconstrained with iv_hi = Some (v, true) })
    | Gt -> K_interval (col, { unconstrained with iv_lo = Some (v, false) })
    | Ge -> K_interval (col, { unconstrained with iv_lo = Some (v, true) })
    | _ -> K_opaque e)
  | Binop (op, Lit v, Col (q, c)) when non_null v -> (
    let col = (q, c) in
    match op with
    | Eq -> K_interval (col, { unconstrained with iv_in = Some [ v ] })
    | Lt -> K_interval (col, { unconstrained with iv_lo = Some (v, false) })
    | Le -> K_interval (col, { unconstrained with iv_lo = Some (v, true) })
    | Gt -> K_interval (col, { unconstrained with iv_hi = Some (v, false) })
    | Ge -> K_interval (col, { unconstrained with iv_hi = Some (v, true) })
    | _ -> K_opaque e)
  | Between (Col (q, c), Lit a, Lit b) when non_null a && non_null b ->
    K_interval ((q, c), { unconstrained with iv_lo = Some (a, true); iv_hi = Some (b, true) })
  | In_list (Col (q, c), items) ->
    let lits =
      List.filter_map (function Lit v when non_null v -> Some v | _ -> None) items
    in
    if List.length lits = List.length items && items <> [] then
      K_interval ((q, c), { unconstrained with iv_in = Some lits })
    else K_opaque e
  | Is_not_null (Col (q, c)) -> K_interval ((q, c), unconstrained)
  | _ -> K_opaque e

(* [cmp] is three-valued: [None] means the values are not comparable
   under SQL ordering (mixed types); any merge touching such a pair
   falls back to opaque handling. *)
let cmp = Value.compare_sql

exception Incomparable

let cmp_exn a b = match cmp a b with Some k -> k | None -> raise Incomparable

(* Tightest-of-two bound merges. *)
let merge_lo a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (va, ia), Some (vb, ib) ->
    let k = cmp_exn va vb in
    if k > 0 then Some (va, ia)
    else if k < 0 then Some (vb, ib)
    else Some (va, ia && ib)

let merge_hi a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (va, ia), Some (vb, ib) ->
    let k = cmp_exn va vb in
    if k < 0 then Some (va, ia)
    else if k > 0 then Some (vb, ib)
    else Some (va, ia && ib)

let value_in_bounds iv v =
  (match iv.iv_lo with
  | None -> true
  | Some (lo, incl) ->
    let k = cmp_exn v lo in
    k > 0 || (k = 0 && incl))
  && (match iv.iv_hi with
     | None -> true
     | Some (hi, incl) ->
       let k = cmp_exn v hi in
       k < 0 || (k = 0 && incl))
  &&
  match iv.iv_in with
  | None -> true
  | Some vs -> List.exists (fun w -> cmp_exn v w = 0) vs

let intersect a b =
  let lo = merge_lo a.iv_lo b.iv_lo and hi = merge_hi a.iv_hi b.iv_hi in
  let iv_in =
    match (a.iv_in, b.iv_in) with
    | None, x | x, None -> x
    | Some xs, Some ys -> Some (List.filter (fun v -> List.exists (fun w -> cmp_exn v w = 0) ys) xs)
  in
  let iv = { iv_lo = lo; iv_hi = hi; iv_in } in
  (* Normalize the value set against the bounds so emptiness is visible. *)
  match iv.iv_in with
  | Some vs -> { unconstrained with iv_in = Some (List.filter (value_in_bounds { iv with iv_in = None }) vs) }
  | None -> iv

let empty_interval iv =
  match iv.iv_in with
  | Some [] -> true
  | Some _ -> false
  | None -> (
    match (iv.iv_lo, iv.iv_hi) with
    | Some (lo, li), Some (hi, hi_i) ->
      let k = cmp_exn lo hi in
      k > 0 || (k = 0 && not (li && hi_i))
    | _ -> false)

let analyze (where : Sql_ast.expr option) : t =
  match where with
  | None -> { cols = []; opaque = []; unsat = false }
  | Some e ->
    List.fold_left
      (fun acc conj ->
        if acc.unsat then acc
        else
          match classify conj with
          | K_opaque o -> { acc with opaque = acc.opaque @ [ o ] }
          | K_interval (c, iv) -> (
            try
              let merged =
                match List.assoc_opt c acc.cols with
                | None -> iv
                | Some prev -> intersect prev iv
              in
              if empty_interval merged then { acc with unsat = true }
              else
                { acc with cols = (c, merged) :: List.remove_assoc c acc.cols }
            with Incomparable ->
              (* Mixed-type comparison: keep the conjunct opaque rather
                 than claim anything about the column. *)
              { acc with opaque = acc.opaque @ [ conj ] }))
      { cols = []; opaque = []; unsat = false }
      (Sql_ast.conjuncts e)

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

(* inner ⊆ outer on one column. *)
let interval_within ~outer ~inner =
  match inner.iv_in with
  | Some vs ->
    List.for_all (fun v -> value_in_bounds outer v) vs
  | None -> (
    match outer.iv_in with
    | Some _ -> false (* an interval can't be proved inside a finite set *)
    | None ->
      (match outer.iv_lo with
      | None -> true
      | Some (lo, l_incl) -> (
        match inner.iv_lo with
        | None -> false
        | Some (ilo, i_incl) ->
          let k = cmp_exn ilo lo in
          k > 0 || (k = 0 && (l_incl || not i_incl))))
      &&
      match outer.iv_hi with
      | None -> true
      | Some (hi, h_incl) -> (
        match inner.iv_hi with
        | None -> false
        | Some (ihi, i_incl) ->
          let k = cmp_exn ihi hi in
          k < 0 || (k = 0 && (h_incl || not i_incl))))

let contains ~outer ~inner =
  if inner.unsat then true
  else if outer.unsat then false
  else
    try
      List.for_all
        (fun op ->
          let key = canonical_expr op in
          List.exists (fun iq -> canonical_expr iq = key) inner.opaque)
        outer.opaque
      && List.for_all
           (fun (c, ivp) ->
             match List.assoc_opt c inner.cols with
             | None -> false
             | Some ivq -> interval_within ~outer:ivp ~inner:ivq)
           outer.cols
    with Incomparable -> false

let overlaps a b =
  if a.unsat || b.unsat then false
  else
    try
      List.for_all
        (fun (c, iva) ->
          match List.assoc_opt c b.cols with
          | None -> true
          | Some ivb -> not (empty_interval (intersect iva ivb)))
        a.cols
    with Incomparable -> true

(* ------------------------------------------------------------------ *)
(* Subtraction                                                         *)
(* ------------------------------------------------------------------ *)

let distinct_columns e =
  List.fold_left
    (fun acc c -> if List.mem c acc then acc else acc @ [ c ])
    [] (Sql_ast.expr_columns e)

let remainder ~cached q =
  match cached with
  | None -> q
  | Some p ->
    let open Sql_ast in
    let guards =
      List.map (fun (qual, name) -> Is_null (Col (qual, name))) (distinct_columns p)
    in
    let not_p =
      List.fold_left (fun acc g -> Binop (Or, acc, g)) (Unop (Not, p)) guards
    in
    Some (match q with None -> not_p | Some q -> Binop (And, q, not_p))

let probe_filter ~cached q =
  let open Sql_ast in
  let guards =
    match cached with
    | None -> []
    | Some p ->
      List.map (fun (qual, name) -> Is_not_null (Col (qual, name))) (distinct_columns p)
  in
  Sql_ast.conjoin (Option.to_list q @ guards)

let rename_columns map e =
  let open Sql_ast in
  let rec go e =
    match e with
    | Col (q, c) -> (
      match List.assoc_opt (q, c) map with
      | Some name -> Col (None, name)
      | None -> Col (None, c))
    | Lit _ -> e
    | Unop (op, a) -> Unop (op, go a)
    | Binop (op, a, b) -> Binop (op, go a, go b)
    | Fncall (f, args) -> Fncall (f, List.map go args)
    | Like (a, pat) -> Like (go a, pat)
    | In_list (a, items) -> In_list (go a, List.map go items)
    | Between (a, b, c) -> Between (go a, go b, go c)
    | Is_null a -> Is_null (go a)
    | Is_not_null a -> Is_not_null (go a)
  in
  go e
