(** Lenses (section 2.1): "a lens is an object that contains a set of
    XML queries, parameters, XSL formatting, and authentication
    information."

    A lens bundles named XML-QL query templates with declared parameters
    (placeholders written [%name%] in the template text), a target
    device for formatting, and the minimum role required to run it. *)

type param = {
  param_name : string;
  param_ty : Value.ty;
  default : Value.t option;
}

type t = {
  lens_name : string;
  queries : (string * string) list;  (** query name -> XML-QL template *)
  params : param list;
  device : Fe_format.device;
  required_role : Fe_auth.role;
}

exception Lens_error of string

val make :
  ?params:param list ->
  ?device:Fe_format.device ->
  ?required_role:Fe_auth.role ->
  name:string ->
  (string * string) list ->
  t
(** Defaults: no parameters, [Text] device, [Viewer] role.
    @raise Lens_error when a template mentions an undeclared [%param%]
    or declares a duplicate query name. *)

val param : ?default:Value.t -> string -> Value.ty -> param

val instantiate :
  t -> string -> (string * string) list -> Xq_ast.query
(** [instantiate lens query_name args] substitutes each placeholder with
    the (type-checked) argument rendered as an XML-QL literal, then
    parses.  Missing arguments fall back to declared defaults.
    @raise Lens_error on unknown query names, missing/ill-typed
    arguments, or a template that fails to parse after substitution. *)

val query_names : t -> string list

val placeholders : string -> string list
(** The distinct [%name%] placeholders of a template, in order. *)
