(** Lenses (section 2.1): "a lens is an object that contains a set of
    XML queries, parameters, XSL formatting, and authentication
    information."

    A lens bundles named XML-QL query templates with declared parameters
    (placeholders written [%name%] in the template text), a target
    device for formatting, and the minimum role required to run it. *)

type param = {
  param_name : string;
  param_ty : Value.ty;
  default : Value.t option;
}

type t = {
  lens_name : string;
  queries : (string * string) list;  (** query name -> XML-QL template *)
  params : param list;
  device : Fe_format.device;
  required_role : Fe_auth.role;
}

exception Lens_error of string

val make :
  ?params:param list ->
  ?device:Fe_format.device ->
  ?required_role:Fe_auth.role ->
  name:string ->
  (string * string) list ->
  t
(** Defaults: no parameters, [Text] device, [Viewer] role.
    @raise Lens_error when a template mentions an undeclared [%param%]
    or declares a duplicate query name. *)

val param : ?default:Value.t -> string -> Value.ty -> param

val instantiate :
  t -> string -> (string * string) list -> Xq_ast.query
(** [instantiate lens query_name args] substitutes each placeholder with
    the (type-checked) argument rendered as an XML-QL literal, then
    parses.  Missing arguments fall back to declared defaults.
    @raise Lens_error on unknown query names, missing/ill-typed
    arguments, or a template that fails to parse after substitution. *)

val query_names : t -> string list

val placeholders : string -> string list
(** The distinct [%name%] placeholders of a template, in order. *)

(** {1 Parameter shapes}

    The plan-cache key machinery of the concurrency server lives here so
    the shape of a lens invocation is derived in exactly one place.

    Two invocations share a {e shape} when they name the same lens and
    query and their resolved parameters differ only in {e rebindable}
    values — values a cached plan can swap in without re-parsing or
    re-planning.  Rebindable classes are backslash-free strings,
    non-negative integers, and non-negative floats whose literal
    rendering round-trips through the XML-QL lexer; everything else
    (booleans, dates, NULLs, negatives, exotic floats) is {e inlined}:
    its rendered literal becomes part of the shape, so such values get a
    plan of their own. *)

val resolve_args :
  t -> string -> (string * string) list -> (string * Value.t) list
(** Typed resolution of the named query's placeholders — arguments
    checked against declared types, defaults applied — in declaration
    order, exactly as {!instantiate} resolves them.
    @raise Lens_error on unknown query names or missing/ill-typed
    arguments. *)

val instantiate_values : t -> string -> (string * Value.t) list -> Xq_ast.query
(** Substitute already-resolved values and parse — the tail half of
    {!instantiate}.  @raise Lens_error when the substituted template
    fails to parse. *)

val rebindable : Value.t -> bool
(** Can a cached plan compiled against a sentinel stand-in of this value
    be re-bound to it without changing what a cold parse would build? *)

val sentinel_for : int -> Value.t -> Value.t
(** [sentinel_for i v] is a distinct stand-in of [v]'s class for the
    [i]-th parameter: a string, integer or float that cannot
    plausibly occur in real data, so a plan compiled with it can later
    be searched for the parameter's landing sites.
    @raise Invalid_argument when [v] is not {!rebindable}. *)

val param_shape : t -> string -> (string * string) list -> string
(** The canonical plan-cache key of an invocation:
    [lens/query?name:class&name=literal&…] — rebindable parameters
    contribute their class, inlined ones their rendered literal.
    @raise Lens_error as {!resolve_args}. *)

val param_shape_exact : t -> string -> (string * string) list -> string
(** Like {!param_shape} but with {e every} parameter inlined — the key
    under which a non-parametric (value-keyed) plan is cached. *)
