(** Device-targeted result formatting (section 2.1: "result formatting
    can be targeted to specific devices (e.g., web interface, wireless
    device)").

    The same result trees render as an HTML fragment for the web, a
    compact card-style text for constrained wireless devices, plain
    indented text for terminals, or raw XML for programmatic
    consumers. *)

type device =
  | Web       (** HTML fragment: one definition list per result *)
  | Wireless  (** terse card text, truncated values *)
  | Text      (** indented plain text *)
  | Raw_xml   (** pretty-printed XML *)

val device_of_string : string -> device option
(** "web" / "wireless" / "text" / "xml". *)

val device_to_string : device -> string

val render : device -> Dtree.t list -> string
(** Render a result list for the device. *)

val render_tree : device -> Dtree.t -> string

val truncate : int -> string -> string
(** Cut to at most n characters with a ["…"]-style ASCII ellipsis
    ([...]); used by the wireless renderer. *)
