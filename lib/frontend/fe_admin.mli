(** Management and monitoring reports (section 2.1/4: "configuration and
    management tools that make it possible for administrators to set up,
    monitor, and understand, the system"). *)

val source_report : Med_catalog.t -> string
(** One line per source: kind, capability summary, exports. *)

val view_report : Med_catalog.t -> string
(** One line per mediated schema: depth, dependencies, variables. *)

val materialization_report : Mat_store.t -> string
(** One line per materialized view: policy, version, size, hits. *)

val cache_report : Mat_cache.t -> string

val system_report :
  Med_catalog.t -> ?store:Mat_store.t -> ?cache:Mat_cache.t -> unit -> string
(** The full status page. *)
