type role =
  | Admin
  | Analyst
  | Viewer

type account = {
  mutable acct_role : role;
  salt : int;
  password_hash : int64;
}

type t = {
  accounts : (string, account) Hashtbl.t;
  mutable salt_counter : int;
}

exception Auth_error of string

let create () = { accounts = Hashtbl.create 16; salt_counter = 0x9747 }

(* FNV-1a over salt + password. *)
let hash_password salt password =
  let h = ref 0xCBF29CE484222325L in
  let feed c =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L
  in
  String.iter feed (string_of_int salt);
  String.iter feed password;
  !h

let add_user t ?(role = Viewer) name password =
  if Hashtbl.mem t.accounts name then
    raise (Auth_error (Printf.sprintf "user %s already exists" name));
  t.salt_counter <- t.salt_counter + 0x61C9;
  let salt = t.salt_counter in
  Hashtbl.replace t.accounts name
    { acct_role = role; salt; password_hash = hash_password salt password }

let authenticate t name password =
  match Hashtbl.find_opt t.accounts name with
  | Some acct when Int64.equal acct.password_hash (hash_password acct.salt password) ->
    Some acct.acct_role
  | Some _ | None -> None

let role_of t name = Option.map (fun a -> a.acct_role) (Hashtbl.find_opt t.accounts name)

let set_role t name role =
  match Hashtbl.find_opt t.accounts name with
  | Some acct -> acct.acct_role <- role
  | None -> raise (Auth_error (Printf.sprintf "unknown user %s" name))

let users t =
  Hashtbl.fold (fun name acct acc -> (name, acct.acct_role) :: acc) t.accounts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let rank = function
  | Admin -> 3
  | Analyst -> 2
  | Viewer -> 1

let role_allows required actual = rank actual >= rank required

let role_to_string = function
  | Admin -> "admin"
  | Analyst -> "analyst"
  | Viewer -> "viewer"

let role_of_string = function
  | "admin" -> Some Admin
  | "analyst" -> Some Analyst
  | "viewer" -> Some Viewer
  | _ -> None
