type param = {
  param_name : string;
  param_ty : Value.ty;
  default : Value.t option;
}

type t = {
  lens_name : string;
  queries : (string * string) list;
  params : param list;
  device : Fe_format.device;
  required_role : Fe_auth.role;
}

exception Lens_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Lens_error m)) fmt

let placeholders template =
  let out = ref [] in
  let n = String.length template in
  let i = ref 0 in
  while !i < n do
    if template.[!i] = '%' then begin
      match String.index_from_opt template (!i + 1) '%' with
      | Some j when j > !i + 1 ->
        let name = String.sub template (!i + 1) (j - !i - 1) in
        let is_ident =
          String.for_all
            (fun c ->
              (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_')
            name
        in
        if is_ident then begin
          if not (List.mem name !out) then out := !out @ [ name ];
          i := j + 1
        end
        else incr i
      | Some _ | None -> incr i
    end
    else incr i
  done;
  !out

let param ?default param_name param_ty = { param_name; param_ty; default }

let make ?(params = []) ?(device = Fe_format.Text) ?(required_role = Fe_auth.Viewer) ~name
    queries =
  let qnames = List.map fst queries in
  if List.length (List.sort_uniq String.compare qnames) <> List.length qnames then
    fail "lens %s: duplicate query names" name;
  List.iter
    (fun (qname, template) ->
      List.iter
        (fun ph ->
          if not (List.exists (fun p -> p.param_name = ph) params) then
            fail "lens %s, query %s: undeclared parameter %%%s%%" name qname ph)
        (placeholders template))
    queries;
  { lens_name = name; queries; params; device; required_role }

let literal_of_value v =
  match v with
  | Value.String s ->
    (* XML-QL string literal with double quotes; escape embedded ones. *)
    let escaped =
      String.concat "\\\"" (String.split_on_char '"' s)
    in
    Printf.sprintf "\"%s\"" escaped
  | Value.Null -> "NULL"
  | Value.Bool true -> "TRUE"
  | Value.Bool false -> "FALSE"
  | Value.Date _ -> Printf.sprintf "\"%s\"" (Value.to_string v)
  | Value.Int _ | Value.Float _ -> Value.to_string v

let substitute template resolved =
  let buf = Buffer.create (String.length template + 32) in
  let n = String.length template in
  let i = ref 0 in
  while !i < n do
    if template.[!i] = '%' then begin
      match String.index_from_opt template (!i + 1) '%' with
      | Some j when j > !i + 1 -> (
        let name = String.sub template (!i + 1) (j - !i - 1) in
        match List.assoc_opt name resolved with
        | Some v ->
          Buffer.add_string buf (literal_of_value v);
          i := j + 1
        | None ->
          Buffer.add_char buf '%';
          incr i)
      | Some _ | None ->
        Buffer.add_char buf '%';
        incr i
    end
    else begin
      Buffer.add_char buf template.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let instantiate lens query_name args =
  let template =
    match List.assoc_opt query_name lens.queries with
    | Some t -> t
    | None -> fail "lens %s has no query %S" lens.lens_name query_name
  in
  let resolve p =
    match List.assoc_opt p.param_name args with
    | Some raw -> (
      match Value.parse_as p.param_ty raw with
      | Some v -> (p.param_name, v)
      | None ->
        fail "lens %s: argument %s=%S is not a %s" lens.lens_name p.param_name raw
          (Value.ty_to_string p.param_ty))
    | None -> (
      match p.default with
      | Some v -> (p.param_name, v)
      | None -> fail "lens %s: missing argument %s" lens.lens_name p.param_name)
  in
  let needed = placeholders template in
  let resolved =
    List.filter_map
      (fun p -> if List.mem p.param_name needed then Some (resolve p) else None)
      lens.params
  in
  let text = substitute template resolved in
  match Xq_parser.parse text with
  | Ok q -> q
  | Error m -> fail "lens %s, query %s: %s" lens.lens_name query_name m

let query_names lens = List.map fst lens.queries
