type param = {
  param_name : string;
  param_ty : Value.ty;
  default : Value.t option;
}

type t = {
  lens_name : string;
  queries : (string * string) list;
  params : param list;
  device : Fe_format.device;
  required_role : Fe_auth.role;
}

exception Lens_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Lens_error m)) fmt

let placeholders template =
  let out = ref [] in
  let n = String.length template in
  let i = ref 0 in
  while !i < n do
    if template.[!i] = '%' then begin
      match String.index_from_opt template (!i + 1) '%' with
      | Some j when j > !i + 1 ->
        let name = String.sub template (!i + 1) (j - !i - 1) in
        let is_ident =
          String.for_all
            (fun c ->
              (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_')
            name
        in
        if is_ident then begin
          if not (List.mem name !out) then out := !out @ [ name ];
          i := j + 1
        end
        else incr i
      | Some _ | None -> incr i
    end
    else incr i
  done;
  !out

let param ?default param_name param_ty = { param_name; param_ty; default }

let make ?(params = []) ?(device = Fe_format.Text) ?(required_role = Fe_auth.Viewer) ~name
    queries =
  let qnames = List.map fst queries in
  if List.length (List.sort_uniq String.compare qnames) <> List.length qnames then
    fail "lens %s: duplicate query names" name;
  List.iter
    (fun (qname, template) ->
      List.iter
        (fun ph ->
          if not (List.exists (fun p -> p.param_name = ph) params) then
            fail "lens %s, query %s: undeclared parameter %%%s%%" name qname ph)
        (placeholders template))
    queries;
  { lens_name = name; queries; params; device; required_role }

let literal_of_value v =
  match v with
  | Value.String s ->
    (* XML-QL string literal with double quotes; escape embedded ones. *)
    let escaped =
      String.concat "\\\"" (String.split_on_char '"' s)
    in
    Printf.sprintf "\"%s\"" escaped
  | Value.Null -> "NULL"
  | Value.Bool true -> "TRUE"
  | Value.Bool false -> "FALSE"
  | Value.Date _ -> Printf.sprintf "\"%s\"" (Value.to_string v)
  | Value.Int _ | Value.Float _ -> Value.to_string v

let substitute template resolved =
  let buf = Buffer.create (String.length template + 32) in
  let n = String.length template in
  let i = ref 0 in
  while !i < n do
    if template.[!i] = '%' then begin
      match String.index_from_opt template (!i + 1) '%' with
      | Some j when j > !i + 1 -> (
        let name = String.sub template (!i + 1) (j - !i - 1) in
        match List.assoc_opt name resolved with
        | Some v ->
          Buffer.add_string buf (literal_of_value v);
          i := j + 1
        | None ->
          Buffer.add_char buf '%';
          incr i)
      | Some _ | None ->
        Buffer.add_char buf '%';
        incr i
    end
    else begin
      Buffer.add_char buf template.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let template_of lens query_name =
  match List.assoc_opt query_name lens.queries with
  | Some t -> t
  | None -> fail "lens %s has no query %S" lens.lens_name query_name

let resolve_args lens query_name args =
  let template = template_of lens query_name in
  let resolve p =
    match List.assoc_opt p.param_name args with
    | Some raw -> (
      match Value.parse_as p.param_ty raw with
      | Some v -> (p.param_name, v)
      | None ->
        fail "lens %s: argument %s=%S is not a %s" lens.lens_name p.param_name raw
          (Value.ty_to_string p.param_ty))
    | None -> (
      match p.default with
      | Some v -> (p.param_name, v)
      | None -> fail "lens %s: missing argument %s" lens.lens_name p.param_name)
  in
  let needed = placeholders template in
  List.filter_map
    (fun p -> if List.mem p.param_name needed then Some (resolve p) else None)
    lens.params

let instantiate_values lens query_name resolved =
  let template = template_of lens query_name in
  let text = substitute template resolved in
  match Xq_parser.parse text with
  | Ok q -> q
  | Error m -> fail "lens %s, query %s: %s" lens.lens_name query_name m

let instantiate lens query_name args =
  instantiate_values lens query_name (resolve_args lens query_name args)

let query_names lens = List.map fst lens.queries

(* ------------------------------------------------------------------ *)
(* Parameter shapes (plan-cache keys)                                  *)
(* ------------------------------------------------------------------ *)

(* A rebindable value is one whose sentinel stand-in parses to the same
   AST shape as the real value, and whose real value can be written into
   the compiled plan without consulting the lexer again:
   - strings without backslashes (the lexer's escape rules are the
     identity on them, modulo the quote escaping [literal_of_value]
     adds and the lexer removes);
   - non-negative integers (negative literals parse as [Neg (Const n)]
     in condition position and are rejected outright in attribute
     position, so their plans are value-specific);
   - non-negative floats whose rendering is plain [digits.digits] and
     parses back to the identical float (no exponent forms — the lexer
     has none — and no precision loss). *)
let rebindable = function
  | Value.String s -> not (String.contains s '\\')
  | Value.Int i -> i >= 0
  | Value.Float f ->
    f >= 0.0
    && Float.is_finite f
    &&
    let s = Value.to_string (Value.Float f) in
    String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.') s
    && (match float_of_string_opt s with Some g -> g = f | None -> false)
  | Value.Bool _ | Value.Null | Value.Date _ -> false

(* DEL-bracketed markers, enormous integers, and huge integral floats:
   none can collide with plausible template text or generated data, and
   each renders/parses exactly. *)
let sentinel_for i v =
  match v with
  | Value.String _ -> Value.String (Printf.sprintf "\127nimble-param-%d\127" i)
  | Value.Int _ -> Value.Int (4611686018427000000 + i)
  | Value.Float _ -> Value.Float (9.0e14 +. float_of_int i)
  | _ -> invalid_arg "Fe_lens.sentinel_for: value class is not rebindable"

let class_tag = function
  | Value.String _ -> "str"
  | Value.Int _ -> "int"
  | Value.Float _ -> "float"
  | _ -> invalid_arg "Fe_lens.class_tag"

let shape_of ~inline_all lens query_name args =
  let resolved = resolve_args lens query_name args in
  let cell (name, v) =
    if (not inline_all) && rebindable v then name ^ ":" ^ class_tag v
    else name ^ "=" ^ String.escaped (literal_of_value v)
  in
  Printf.sprintf "%s/%s?%s" lens.lens_name query_name
    (String.concat "&" (List.map cell resolved))

let param_shape lens query_name args = shape_of ~inline_all:false lens query_name args
let param_shape_exact lens query_name args = shape_of ~inline_all:true lens query_name args
