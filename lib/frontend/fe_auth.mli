(** Users, roles and access control — the "authentication information"
    a lens carries (section 2.1).

    Password handling is salted FNV-1a hashing: adequate for an offline
    reproduction, and clearly {e not} a production password store. *)

type role =
  | Admin    (** manage sources, views, materialization *)
  | Analyst  (** run ad-hoc queries and lenses *)
  | Viewer   (** run lenses only *)

type t

exception Auth_error of string

val create : unit -> t

val add_user : t -> ?role:role -> string -> string -> unit
(** [add_user t name password] (default role [Viewer]).
    @raise Auth_error on duplicates. *)

val authenticate : t -> string -> string -> role option
(** [Some role] on success, [None] on bad user or password. *)

val role_of : t -> string -> role option

val set_role : t -> string -> role -> unit
(** @raise Auth_error for unknown users. *)

val users : t -> (string * role) list
(** Sorted by user name. *)

val role_allows : role -> role -> bool
(** [role_allows required actual]: Admin ⊇ Analyst ⊇ Viewer. *)

val role_to_string : role -> string
val role_of_string : string -> role option
