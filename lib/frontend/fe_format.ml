type device =
  | Web
  | Wireless
  | Text
  | Raw_xml

let device_of_string = function
  | "web" -> Some Web
  | "wireless" -> Some Wireless
  | "text" -> Some Text
  | "xml" -> Some Raw_xml
  | _ -> None

let device_to_string = function
  | Web -> "web"
  | Wireless -> "wireless"
  | Text -> "text"
  | Raw_xml -> "xml"

let truncate n s =
  if String.length s <= n then s
  else if n <= 3 then String.sub s 0 n
  else String.sub s 0 (n - 3) ^ "..."

let html_escape s = Xml_print.escape_text s

let rec render_web_tree buf tree =
  match tree with
  | Dtree.Atom v -> Buffer.add_string buf (html_escape (Value.to_display v))
  | Dtree.Node n ->
    Buffer.add_string buf "<dl class=\"";
    Buffer.add_string buf (html_escape n.Dtree.label);
    Buffer.add_string buf "\">";
    List.iter
      (fun (aname, v) ->
        Buffer.add_string buf "<dt>@";
        Buffer.add_string buf (html_escape aname);
        Buffer.add_string buf "</dt><dd>";
        Buffer.add_string buf (html_escape (Value.to_string v));
        Buffer.add_string buf "</dd>")
      n.Dtree.attrs;
    List.iter
      (fun kid ->
        match kid with
        | Dtree.Node kn ->
          Buffer.add_string buf "<dt>";
          Buffer.add_string buf (html_escape kn.Dtree.label);
          Buffer.add_string buf "</dt><dd>";
          (match Dtree.atom_value kid with
          | Some v -> Buffer.add_string buf (html_escape (Value.to_display v))
          | None -> render_web_tree buf kid);
          Buffer.add_string buf "</dd>"
        | Dtree.Atom v ->
          Buffer.add_string buf "<dd>";
          Buffer.add_string buf (html_escape (Value.to_display v));
          Buffer.add_string buf "</dd>")
      n.Dtree.kids;
    Buffer.add_string buf "</dl>"

let render_web trees =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "<div class=\"results\">\n";
  List.iter
    (fun tree ->
      render_web_tree buf tree;
      Buffer.add_char buf '\n')
    trees;
  Buffer.add_string buf "</div>";
  Buffer.contents buf

let rec render_text_tree buf indent tree =
  let pad = String.make (indent * 2) ' ' in
  match tree with
  | Dtree.Atom v ->
    Buffer.add_string buf pad;
    Buffer.add_string buf (Value.to_display v);
    Buffer.add_char buf '\n'
  | Dtree.Node n ->
    Buffer.add_string buf pad;
    Buffer.add_string buf n.Dtree.label;
    List.iter
      (fun (aname, v) ->
        Buffer.add_string buf (Printf.sprintf " @%s=%s" aname (Value.to_string v)))
      n.Dtree.attrs;
    (match Dtree.atom_value tree with
    | Some v ->
      Buffer.add_string buf ": ";
      Buffer.add_string buf (Value.to_display v);
      Buffer.add_char buf '\n'
    | None ->
      Buffer.add_char buf '\n';
      List.iter (fun kid -> render_text_tree buf (indent + 1) kid) n.Dtree.kids)

let render_text trees =
  let buf = Buffer.create 512 in
  List.iter (fun tree -> render_text_tree buf 0 tree) trees;
  Buffer.contents buf

let render_wireless trees =
  (* One line per result, "label: field=value|field=value", truncated. *)
  let buf = Buffer.create 256 in
  List.iteri
    (fun i tree ->
      if i > 0 then Buffer.add_char buf '\n';
      match tree with
      | Dtree.Atom v -> Buffer.add_string buf (truncate 40 (Value.to_display v))
      | Dtree.Node n ->
        let field kid =
          match kid with
          | Dtree.Node kn ->
            Some
              (Printf.sprintf "%s=%s" kn.Dtree.label
                 (truncate 16 (Dtree.text kid)))
          | Dtree.Atom v -> Some (truncate 16 (Value.to_display v))
        in
        let fields = List.filter_map field n.Dtree.kids in
        Buffer.add_string buf
          (truncate 100 (Printf.sprintf "%s: %s" n.Dtree.label (String.concat "|" fields))))
    trees;
  Buffer.contents buf

let render_xml trees =
  String.concat "\n"
    (List.map
       (fun tree ->
         match tree with
         | Dtree.Node _ -> Xml_print.element_to_pretty_string (Dtree.to_xml_element tree)
         | Dtree.Atom v -> Xml_print.escape_text (Value.to_display v))
       trees)

let render device trees =
  match device with
  | Web -> render_web trees
  | Wireless -> render_wireless trees
  | Text -> render_text trees
  | Raw_xml -> render_xml trees

let render_tree device tree = render device [ tree ]
