let kind_to_string = function
  | Source.Relational -> "relational"
  | Source.Xml_store -> "xml"
  | Source.Flat_file -> "flat-file"

let capability_summary (c : Source.capability) =
  let flag label b = if b then [ label ] else [] in
  match
    flag "select" c.Source.can_select @ flag "project" c.Source.can_project
    @ flag "join" c.Source.can_join @ flag "agg" c.Source.can_aggregate
    @ flag "path" c.Source.can_path
  with
  | [] -> "scan-only"
  | caps -> String.concat "+" caps

let source_report catalog =
  let reg = Med_catalog.registry catalog in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "sources:\n";
  List.iter
    (fun name ->
      match Src_registry.find reg name with
      | None -> ()
      | Some src ->
        Buffer.add_string buf
          (Printf.sprintf "  %-16s %-10s %-28s exports: %s\n" name
             (kind_to_string src.Source.kind)
             (capability_summary src.Source.capability)
             (String.concat ", " (src.Source.document_names ()))))
    (Src_registry.names reg);
  Buffer.contents buf

let view_report catalog =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "mediated schemas:\n";
  List.iter
    (fun name ->
      match Med_catalog.find_view catalog name with
      | None -> ()
      | Some v ->
        Buffer.add_string buf
          (Printf.sprintf "  %-20s depth=%d over [%s] vars [%s]%s\n" name
             (Med_catalog.view_depth catalog name)
             (String.concat ", " (Med_catalog.dependencies catalog name))
             (String.concat ", "
                (List.concat_map Xq_ast.query_vars v.Med_catalog.definitions
                |> List.sort_uniq String.compare))
             (if v.Med_catalog.description = "" then ""
              else " -- " ^ v.Med_catalog.description)))
    (Med_catalog.view_names catalog);
  Buffer.contents buf

let policy_to_string = function
  | Mat_store.Manual -> "manual"
  | Mat_store.On_access -> "on-access"
  | Mat_store.Every_n_queries n -> Printf.sprintf "every-%d-queries" n

let materialization_report store =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "materialized views (clock=%d, storage=%d nodes):\n" (Mat_store.now store)
       (Mat_store.storage_used store));
  List.iter
    (fun name ->
      match Mat_store.peek store name with
      | None -> ()
      | Some e ->
        Buffer.add_string buf
          (Printf.sprintf "  %-20s policy=%-16s version=%d size=%d hits=%d\n" name
             (policy_to_string e.Mat_store.policy)
             e.Mat_store.version (Mat_store.entry_size e) e.Mat_store.hits))
    (Mat_store.materialized_names store);
  Buffer.contents buf

let cache_report cache =
  let st = Mat_cache.stats cache in
  let ttl =
    match Mat_cache.ttl_ms cache with
    | None -> ""
    | Some ms -> Printf.sprintf " ttl=%.0fms" ms
  in
  Printf.sprintf
    "result cache: %d/%d entries,%s hits=%d misses=%d evictions=%d expirations=%d invalidations=%d (hit rate %.1f%%)\n"
    (Mat_cache.size cache) (Mat_cache.capacity cache) ttl st.Mat_cache.cache_hits
    st.Mat_cache.cache_misses st.Mat_cache.evictions st.Mat_cache.expirations
    st.Mat_cache.invalidations
    (100.0 *. Mat_cache.hit_rate cache)

let system_report catalog ?store ?cache () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "=== Nimble system status ===\n";
  Buffer.add_string buf (source_report catalog);
  Buffer.add_string buf (view_report catalog);
  (match store with
  | Some s -> Buffer.add_string buf (materialization_report s)
  | None -> ());
  (match cache with
  | Some c -> Buffer.add_string buf (cache_report c)
  | None -> ());
  Buffer.contents buf
