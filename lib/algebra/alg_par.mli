(** Morsel-driven multicore execution of physical plans.

    The third engine, next to {!Alg_exec} (tuple-at-a-time) and
    {!Alg_batch} (batch-at-a-time): operator outputs are materialized
    bottom-up, per-row work is cut into {e morsels} of [chunk] rows,
    and morsels run on a fixed, process-wide pool of OCaml domains
    (hand-rolled mutex/condition work queue — the caller participates
    as worker 0).  Workers claim morsels from a shared counter, so a
    fast domain steals the tail of a slow one (Leis et al.,
    "Morsel-Driven Parallelism", SIGMOD 2014); per-morsel outputs are
    stitched back in morsel order.

    {b Determinism.}  Answers are byte-identical to the other two
    engines, by construction:

    - maps/filters/expansions stitch per-morsel outputs in input order;
    - the hash join partitions its build side by key hash, each
      partition preserving per-key build order, and probes left rows in
      order against read-only tables (exchange-style, after Graefe's
      Volcano);
    - grouping partitions groups (not rows) across domains, so every
      group folds its rows in ascending input order — float sums
      associate exactly as in the sequential fold — and groups are
      emitted in first-occurrence order;
    - sort runs a parallel stable merge sort over decorated keys where
      ties always take the earlier morsel.

    Operators whose state is inherently order-entangled (nested-loop,
    merge and dependent joins, distinct) fall back to the tuple engine,
    on the caller.

    {b Thread discipline.}  Only pure row work runs on pool domains.
    Scans, the tuple-engine fallback and all {!Obs_metrics} ticks run
    on the caller's domain: source functions reach process-global state
    (fetch scheduler, caches, network simulation), and the metrics
    registry is not thread-safe.  Scans materialize eagerly in plan
    order, so strict/partial source-failure semantics — including
    which sources are recorded as skipped — match the other engines. *)

(** {1 Per-operator statistics} *)

type op_par = {
  op_plan : Alg_plan.t;
  op_parallel : bool;  (** false: subtree ran on the tuple engine *)
  mutable op_pulled : bool;
  mutable op_morsels : int;  (** parallel tasks issued by this operator *)
  mutable op_rows : int;
  mutable op_ms : float;  (** inclusive of input operators *)
  op_idx_probe : int Atomic.t;
      (** Navigate bindings answered by a value probe (atomic: Navigate
          expansion runs on worker domains) *)
  op_idx_guide : int Atomic.t;  (** … answered by the structural guide *)
  op_idx_miss : int Atomic.t;  (** … that fell back to the tree walker *)
  op_kids : op_par list;
}

type stats = {
  domains : int;
  chunk_size : int;  (** the morsel size *)
  busy : float array;  (** per-domain busy ms; slot 0 is the caller *)
  mutable morsels : int;  (** total parallel tasks over the whole run *)
  root : op_par;
}

val actual_of_stats : stats -> Alg_plan.t -> (int * float) option
(** As {!Alg_exec.actual_of_stats}: (rows, inclusive ms) by physical
    node identity, [None] for nodes never evaluated. *)

val cells_of_stats : stats -> Alg_plan.t -> string list
(** The parallel columns of EXPLAIN ANALYZE for one node:
    [morsels=…] for parallel operators, [fallback=tuple] for fallback
    roots; the plan root additionally reports [domains=…] and
    [skew=MAX/MINms] — the busiest vs. idlest domain's busy time. *)

val span_of_stats : stats -> Obs_span.t
(** Statistics as a span tree, for the trace sink. *)

val busy_max : stats -> float
val busy_min : stats -> float

(** {1 Running} *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val run :
  ?domains:int ->
  ?chunk:int ->
  ?cost_rows:(Alg_plan.t -> float) ->
  sources:(string -> string -> Alg_env.t Seq.t) ->
  fallback:(Alg_plan.t -> Alg_env.t Seq.t) ->
  template:(Alg_env.t -> Alg_plan.template -> Dtree.t) ->
  Alg_plan.t ->
  Alg_env.t list * stats
(** Evaluate the plan with [domains] workers (default
    {!default_domains}, caller included, clamped to the pool limit)
    over morsels of [chunk] rows (default {!Alg_batch.default_chunk}).
    [sources]/[fallback]/[template] as in {!Alg_batch.run};
    [cost_rows] estimates a subplan's output rows so per-partition
    hash-join tables pre-size from real cardinalities (default: the
    blind cost model over {!Alg_cost.default_scan_rows}); most
    callers want {!Alg_exec.run_parallel}.  The domain pool is global
    and reused across runs; it grows to the largest [domains] ever
    requested and is joined at exit. *)
