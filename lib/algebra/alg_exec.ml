type source_fn = string -> string -> Alg_env.t Seq.t

exception Source_unavailable of string
exception Exec_error of string

(* ------------------------------------------------------------------ *)
(* Template instantiation                                              *)
(* ------------------------------------------------------------------ *)

let rec build_template env template =
  match template with
  | Alg_plan.T_value e -> Dtree.atom (Alg_expr.eval env e)
  | Alg_plan.T_tree e -> (
    match Alg_expr.eval_tree env e with
    | Some tree -> tree
    | None -> Dtree.atom Value.Null)
  | Alg_plan.T_splice _ ->
    (* A bare splice outside a node context degrades to its tree. *)
    build_template env (Alg_plan.T_tree (splice_expr template))
  | Alg_plan.T_node (label, attr_exprs, kid_templates) ->
    let attrs = List.map (fun (n, e) -> (n, Alg_expr.eval env e)) attr_exprs in
    let kids =
      List.concat_map
        (fun t ->
          match t with
          | Alg_plan.T_splice e -> (
            match Alg_expr.eval_tree env e with
            | Some tree -> Dtree.kids tree
            | None -> [])
          | t -> [ build_template env t ])
        kid_templates
    in
    Dtree.node ~attrs label kids

and splice_expr = function
  | Alg_plan.T_splice e -> e
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Operator implementations                                            *)
(* ------------------------------------------------------------------ *)

let seq_of_list l = List.to_seq l

(* Pre-size a hash table for an operator whose input is [plan]: the
   cost model's cardinality estimate (clamped to something sane)
   replaces the old fixed create 32/64, so big builds skip the rehash
   cascade.  Sort comparison, outer-union schema and grouping live in
   Alg_batch and are shared with the batch engine so the two cannot
   drift. *)
let table_size plan =
  let est =
    Alg_cost.estimate ~source_rows:(fun _ -> Alg_cost.default_scan_rows) plan
  in
  int_of_float (Float.min 1_048_576.0 (Float.max 16.0 est.Alg_cost.rows))

(* The single interpreter, parameterized by a per-node hook: the plain
   entry points use the identity hook; instrumented execution wraps each
   operator's output sequence to count rows and charge time.  [on_idx]
   reports per-binding Navigate index outcomes so instrumentation can
   attribute probe/guide/miss counts to the operator. *)
let rec run_hooked ?(on_idx = fun _ _ -> ()) hook sources plan : Alg_env.t Seq.t =
  let run sources plan = run_hooked ~on_idx hook sources plan in
  let seq =
    match plan with
    | Alg_plan.Scan { source; binding } -> sources source binding
  | Alg_plan.Const_envs envs -> seq_of_list envs
  | Alg_plan.Select (input, pred) ->
    Seq.filter (fun env -> Alg_expr.eval_pred env pred) (run sources input)
  | Alg_plan.Project (input, vs) ->
    Seq.map (fun env -> Alg_env.project env vs) (run sources input)
  | Alg_plan.Rename (input, mapping) ->
    Seq.map (fun env -> Alg_env.rename env mapping) (run sources input)
  | Alg_plan.Extend (input, var, e) ->
    Seq.map (fun env -> Alg_env.bind_value env var (Alg_expr.eval env e)) (run sources input)
  | Alg_plan.Extend_tree (input, var, e) ->
    Seq.map
      (fun env ->
        match Alg_expr.eval_tree env e with
        | Some tree -> Alg_env.bind env var tree
        | None -> Alg_env.bind env var (Dtree.atom Value.Null))
      (run sources input)
  | Alg_plan.Nl_join { left; right; pred } ->
    let rights = List.of_seq (run sources right) in
    Seq.concat_map
      (fun lenv ->
        seq_of_list
          (List.filter_map
             (fun renv ->
               let joined = Alg_env.concat lenv renv in
               match pred with
               | None -> Some joined
               | Some p -> if Alg_expr.eval_pred joined p then Some joined else None)
             rights))
      (run sources left)
  | Alg_plan.Hash_join { left; right; left_key; right_key; residual } ->
    let table : (Value.t, Alg_env.t) Hashtbl.t = Hashtbl.create (table_size right) in
    let rights = List.of_seq (run sources right) in
    (* Hashtbl.add in reverse input order: find_all returns most recent
       first, so probes see build rows in their original order. *)
    List.iter
      (fun renv ->
        match Alg_expr.eval renv right_key with
        | Value.Null -> ()
        | k -> Hashtbl.add table k renv)
      (List.rev rights);
    Seq.concat_map
      (fun lenv ->
        match Alg_expr.eval lenv left_key with
        | Value.Null -> Seq.empty
        | k ->
          seq_of_list
            (Hashtbl.find_all table k
            |> List.filter_map (fun renv ->
                   let joined = Alg_env.concat lenv renv in
                   match residual with
                   | None -> Some joined
                   | Some p -> if Alg_expr.eval_pred joined p then Some joined else None)))
      (run sources left)
  | Alg_plan.Merge_join { left; right; left_key; right_key } ->
    let keyed key_expr env = (Alg_expr.eval env key_expr, env) in
    let ls =
      List.map (keyed left_key) (List.of_seq (run sources left))
      |> List.stable_sort (fun (a, _) (b, _) -> Value.compare a b)
    in
    let rs =
      List.map (keyed right_key) (List.of_seq (run sources right))
      |> List.stable_sort (fun (a, _) (b, _) -> Value.compare a b)
    in
    let out = ref [] in
    let rec merge ls rs =
      match ls, rs with
      | [], _ | _, [] -> ()
      | (lk, _) :: lrest, _ when lk = Value.Null -> merge lrest rs
      | _, (rk, _) :: rrest when rk = Value.Null -> merge ls rrest
      | (lk, _) :: lrest, (rk, _) :: _ when Value.compare lk rk < 0 -> merge lrest rs
      | (lk, _) :: _, (rk, _) :: rrest when Value.compare lk rk > 0 -> merge ls rrest
      | (lk, _) :: _, _ ->
        (* equal keys: cross the two runs *)
        let lrun, lrest = List.partition (fun (k, _) -> Value.compare k lk = 0) ls in
        let rrun, rrest = List.partition (fun (k, _) -> Value.compare k lk = 0) rs in
        List.iter
          (fun (_, lenv) ->
            List.iter (fun (_, renv) -> out := Alg_env.concat lenv renv :: !out) rrun)
          lrun;
        merge lrest rrest
    in
    merge ls rs;
    seq_of_list (List.rev !out)
  | Alg_plan.Dep_join { left; label = _; expand } ->
    Seq.concat_map
      (fun lenv -> Seq.map (fun renv -> Alg_env.concat lenv renv) (expand lenv))
      (run sources left)
  | Alg_plan.Sort (input, specs) ->
    let envs = List.of_seq (run sources input) in
    seq_of_list (Alg_batch.sort_list specs envs)
  | Alg_plan.Distinct input ->
    let seen : (int, Alg_env.t) Hashtbl.t = Hashtbl.create (table_size input) in
    Seq.filter
      (fun env ->
        let key = Alg_env.hash env in
        if List.exists (Alg_env.equal env) (Hashtbl.find_all seen key) then false
        else begin
          Hashtbl.add seen key env;
          true
        end)
      (run sources input)
  | Alg_plan.Group { input; keys; aggs } ->
    let envs = List.of_seq (run sources input) in
    seq_of_list (Alg_batch.group_rows ~size_hint:(table_size input) keys aggs envs)
  | Alg_plan.Union (a, b) -> Seq.append (run sources a) (run sources b)
  | Alg_plan.Outer_union (a, b) ->
    (* Materialize both sides to compute the union schema, then pad. *)
    let la = List.of_seq (run sources a) in
    let lb = List.of_seq (run sources b) in
    let vars = Alg_batch.union_vars (la @ lb) in
    seq_of_list (List.map (fun env -> Alg_env.project env vars) (la @ lb))
  | Alg_plan.Navigate { input; var; path; out } ->
    Seq.concat_map
      (fun env ->
        match Alg_env.get env var with
        | None -> Seq.empty
        | Some (Dtree.Atom _) -> Seq.empty
        | Some tree ->
          let matches, how = Alg_batch.navigate_matches tree path in
          on_idx plan how;
          seq_of_list (List.map (fun m -> Alg_env.bind env out m) matches))
      (run sources input)
  | Alg_plan.Unnest { input; var; label; out } ->
    Seq.concat_map
      (fun env ->
        match Alg_env.get env var with
        | None -> Seq.empty
        | Some tree ->
          let kids =
            match label with
            | Some l -> Dtree.kids_named tree l
            | None -> Dtree.kids tree
          in
          seq_of_list (List.map (fun k -> Alg_env.bind env out k) kids))
      (run sources input)
  | Alg_plan.Construct { input; binding; template } ->
    Seq.map
      (fun env -> Alg_env.bind env binding (build_template env template))
      (run sources input)
  | Alg_plan.Limit (input, n) -> Seq.take n (run sources input)
  in
  hook plan seq

let no_hook _ seq = seq

let run sources plan = run_hooked no_hook sources plan

let run_list sources plan = List.of_seq (run sources plan)

(* Wrap a source function so unavailable sources contribute no rows and
   are recorded instead of failing (section 3.4).  Scans are forced
   eagerly so unavailability surfaces here, in both engines. *)
let partial_guard skipped sources source binding =
  try seq_of_list (List.of_seq (sources source binding))
  with Source_unavailable name ->
    if not (List.mem name !skipped) then skipped := name :: !skipped;
    Seq.empty

let run_partial sources plan =
  let skipped = ref [] in
  let envs = run_list (partial_guard skipped sources) plan in
  (envs, List.rev !skipped)

(* ------------------------------------------------------------------ *)
(* Batch-at-a-time execution (Alg_batch wired to this engine)          *)
(* ------------------------------------------------------------------ *)

let run_batched ?chunk sources plan =
  Alg_batch.run ?chunk ~sources
    ~fallback:(fun p -> run sources p)
    ~template:build_template plan

(* Morsel-driven parallel execution (Alg_par wired to this engine). *)
let run_parallel ?domains ?chunk ?cost_rows sources plan =
  Alg_par.run ?domains ?chunk ?cost_rows ~sources
    ~fallback:(fun p -> run sources p)
    ~template:build_template plan

let run_mode ?cost_rows mode sources plan =
  match mode with
  | Alg_batch.Tuple -> run_list sources plan
  | Alg_batch.Batch { chunk } -> fst (run_batched ~chunk sources plan)
  | Alg_batch.Parallel { domains; chunk } ->
    fst (run_parallel ~domains ~chunk ?cost_rows sources plan)

let run_partial_mode ?cost_rows mode sources plan =
  match mode with
  | Alg_batch.Tuple -> run_partial sources plan
  | Alg_batch.Batch { chunk } ->
    let skipped = ref [] in
    let envs, _ = run_batched ~chunk (partial_guard skipped sources) plan in
    (envs, List.rev !skipped)
  | Alg_batch.Parallel { domains; chunk } ->
    let skipped = ref [] in
    let envs, _ =
      run_parallel ~domains ~chunk ?cost_rows (partial_guard skipped sources) plan
    in
    (envs, List.rev !skipped)

(* Scan resolution against a prefetched buffer: scatter-gather fetches
   every access up front, and scans then pull from the buffer instead of
   the wire.  Buffered failures re-raise here — at pull time — so
   strict/partial semantics (and skipped-source recording) are exactly
   those of sequential execution. *)
let buffered lookup fallback : source_fn =
 fun access_id binding ->
  match lookup access_id with
  | Some (Ok envs) -> seq_of_list envs
  | Some (Error e) -> raise e
  | None -> fallback access_id binding

let of_tuples binding rows =
  seq_of_list
    (List.map
       (fun row -> Alg_env.of_bindings [ (binding, Dtree.of_tuple binding row) ])
       rows)

(* ------------------------------------------------------------------ *)
(* Instrumented execution                                              *)
(* ------------------------------------------------------------------ *)

type op_stats = {
  op_plan : Alg_plan.t;
  mutable actual_rows : int;
  mutable elapsed_ms : float;  (* inclusive of input operators *)
  mutable pulled : bool;
  mutable idx_probe : int;
  mutable idx_guide : int;
  mutable idx_miss : int;
  op_kids : op_stats list;
}

let rec make_stats plan =
  {
    op_plan = plan;
    actual_rows = 0;
    elapsed_ms = 0.0;
    pulled = false;
    idx_probe = 0;
    idx_guide = 0;
    idx_miss = 0;
    op_kids = List.map make_stats (Alg_plan.children plan);
  }

let rec stats_index acc st =
  List.fold_left stats_index ((st.op_plan, st) :: acc) st.op_kids

let find_stats index plan =
  (* Physical identity: each plan node appears once in a compiled tree. *)
  Option.map snd (List.find_opt (fun (p, _) -> p == plan) index)

(* Wrap a sequence so every pull charges inclusive wall time to [st] and
   every element bumps its row count. *)
let counted st seq =
  let rec aux s () =
    st.pulled <- true;
    let t0 = Obs_clock.wall_ms () in
    let node = s () in
    st.elapsed_ms <- st.elapsed_ms +. (Obs_clock.wall_ms () -. t0);
    match node with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) ->
      st.actual_rows <- st.actual_rows + 1;
      Seq.Cons (x, aux rest)
  in
  aux seq

let rec span_of_stats st =
  let sp = Obs_span.make (Alg_plan.node_label st.op_plan) in
  Obs_span.set_int sp "rows" st.actual_rows;
  Obs_span.set_duration_ms sp st.elapsed_ms;
  List.iter (fun k -> Obs_span.add_child sp (span_of_stats k)) st.op_kids;
  sp

let run_instrumented sources plan =
  let root = make_stats plan in
  let index = stats_index [] root in
  let hook p seq =
    match find_stats index p with
    | Some st -> counted st seq
    | None -> seq
  in
  let on_idx p how =
    match find_stats index p with
    | None -> ()
    | Some st -> (
      match how with
      | `Probe -> st.idx_probe <- st.idx_probe + 1
      | `Guide -> st.idx_guide <- st.idx_guide + 1
      | `Miss -> st.idx_miss <- st.idx_miss + 1)
  in
  let envs = List.of_seq (run_hooked ~on_idx hook sources plan) in
  if Obs_trace.enabled () then Obs_trace.emit (span_of_stats root);
  (envs, root)

let actual_of_stats root =
  let index = stats_index [] root in
  fun plan ->
    match find_stats index plan with
    | Some st when st.pulled -> Some (st.actual_rows, st.elapsed_ms)
    | Some _ | None -> None

let idx_cells_of_stats root =
  let index = stats_index [] root in
  fun plan ->
    match find_stats index plan with
    | Some st -> Alg_batch.idx_cell st.idx_probe st.idx_guide st.idx_miss
    | None -> []
