type t = (string * Dtree.t) array

let empty = [||]

let of_bindings bindings =
  let arr = Array.of_list bindings in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if String.equal (fst arr.(i)) (fst arr.(j)) then
        invalid_arg (Printf.sprintf "Alg_env.of_bindings: duplicate variable %S" (fst arr.(i)))
    done
  done;
  arr

let of_tuple tup =
  Array.of_list (List.map (fun (n, v) -> (n, Dtree.atom v)) (Tuple.fields tup))

let bindings t = Array.to_list t
let vars t = Array.to_list (Array.map fst t)
let arity t = Array.length t

let find_index t name =
  let n = Array.length t in
  let rec go i = if i >= n then -1 else if String.equal (fst t.(i)) name then i else go (i + 1) in
  go 0

let get t name =
  let i = find_index t name in
  if i < 0 then None else Some (snd t.(i))

let get_exn t name =
  let i = find_index t name in
  if i < 0 then raise Not_found else snd t.(i)

let mem t name = find_index t name >= 0

let tree_value tree =
  match Dtree.atom_value tree with
  | Some v -> v
  | None -> Value.String (Dtree.text tree)

let value_of t name =
  match get t name with
  | None -> Value.Null
  | Some tree -> tree_value tree

let bind t name tree =
  let i = find_index t name in
  if i < 0 then Array.append t [| (name, tree) |]
  else begin
    let t' = Array.copy t in
    t'.(i) <- (name, tree);
    t'
  end

let bind_value t name v = bind t name (Dtree.atom v)

let unbind t name =
  let i = find_index t name in
  if i < 0 then t
  else Array.append (Array.sub t 0 i) (Array.sub t (i + 1) (Array.length t - i - 1))

let project t names =
  Array.of_list
    (List.map
       (fun name ->
         match get t name with
         | Some tree -> (name, tree)
         | None -> (name, Dtree.atom Value.Null))
       names)

let rename t mapping =
  Array.map
    (fun (name, tree) ->
      match List.assoc_opt name mapping with
      | Some name' -> (name', tree)
      | None -> (name, tree))
    t

let has_layout t names =
  Array.length t = Array.length names
  &&
  let n = Array.length t in
  let rec go i = i >= n || (String.equal (fst t.(i)) names.(i) && go (i + 1)) in
  go 0

let concat a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let dup = ref 0 in
    for i = 0 to nb - 1 do
      if find_index a (fst b.(i)) >= 0 then incr dup
    done;
    if !dup = 0 then Array.append a b
    else begin
      let out = Array.make (na + nb - !dup) a.(0) in
      Array.blit a 0 out 0 na;
      let pos = ref na in
      for i = 0 to nb - 1 do
        if find_index a (fst b.(i)) < 0 then begin
          out.(!pos) <- b.(i);
          incr pos
        end
      done;
      out
    end
  end

let to_tuple t =
  Tuple.make (List.map (fun (name, tree) -> (name, tree_value tree)) (bindings t))

let compare a b =
  let c = List.compare String.compare (vars a) (vars b) in
  if c <> 0 then c
  else List.compare Dtree.compare (List.map snd (bindings a)) (List.map snd (bindings b))

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc (name, tree) -> (acc * 31) + Hashtbl.hash name + Dtree.hash tree) 11 t

let to_string t =
  let binding (name, tree) =
    let rendered =
      match Dtree.atom_value tree with
      | Some v -> Value.to_display v
      | None -> Dtree.to_string tree
    in
    Printf.sprintf "%s=%s" name rendered
  in
  "{" ^ String.concat ", " (List.map binding (bindings t)) ^ "}"

let pp ppf t = Format.pp_print_string ppf (to_string t)
