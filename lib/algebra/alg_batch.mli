(** Batch-at-a-time (vectorized) execution of physical plans.

    Where {!Alg_exec} pulls one environment per step, this engine moves
    {e chunks} — arrays of environments, {!default_chunk} rows by
    default — between operators, amortizing per-row interpretation
    overhead: one virtual dispatch per batch instead of one [Seq] cell
    per row, a single pre-sized hash-join build pass over a precomputed
    key array, and fused select+project.

    The engine is observationally equal to the tuple engine: same rows,
    same (document) order, same sort stability, same aggregates, and
    the same strict/partial semantics with unavailable sources.  Plan
    nodes are evaluated eagerly (sources are opened, and blocking
    operators — sort, group, hash-join build, outer-union — materialize)
    when the plan is compiled, exactly as in {!Alg_exec}; rows then flow
    lazily chunk by chunk, so [LIMIT] still short-circuits its input.

    Operators without a vectorized implementation (nested-loop,
    merge and dependent joins, distinct) fall back per-operator: the
    whole subtree runs on the tuple engine and its rows are re-chunked.

    This module is closed under the algebra layer: the tuple engine is
    injected as a closure ([fallback]/[template] in {!run}), and
    {!Alg_exec.run_batched} does the wiring. *)

type chunk = Alg_env.t array

val default_chunk : int
(** 1024. *)

(** {1 Execution mode}

    The knob surfaced through the mediator, the facade and the CLI
    ([--exec-mode]/[--chunk-size], repl [\exec]). *)

type mode =
  | Tuple  (** the seed engine, {!Alg_exec.run} — the default *)
  | Batch of { chunk : int }
  | Parallel of { domains : int; chunk : int }
      (** the morsel-driven multicore engine, {!Alg_exec.run_parallel} —
          [domains] workers (the caller included) over morsels of
          [chunk] rows *)

val mode_to_string : mode -> string

val mode_of_string : string -> mode option
(** Accepts ["tuple"], ["batch"] (chunk {!default_chunk}) and
    ["parallel"] ([Domain.recommended_domain_count ()] domains). *)

(** {1 Per-operator batch statistics}

    Mirrors {!Alg_exec.op_stats}; additionally counts batches so
    EXPLAIN ANALYZE can show batches, rows/batch and fill ratio. *)

type op_batch = {
  ob_plan : Alg_plan.t;
  ob_vectorized : bool;  (** false: subtree ran on the tuple engine *)
  mutable ob_fused : bool;  (** select fused into its parent project *)
  mutable ob_pulled : bool;
  mutable ob_batches : int;
  mutable ob_rows : int;
  mutable ob_ms : float;  (** inclusive of input operators *)
  mutable ob_idx_probe : int;  (** Navigate bindings answered by a value probe *)
  mutable ob_idx_guide : int;  (** … answered by the structural guide alone *)
  mutable ob_idx_miss : int;   (** … that fell back to the tree walker *)
  ob_kids : op_batch list;
}

type stats = {
  chunk_size : int;
  root : op_batch;
}

val actual_of_stats : stats -> Alg_plan.t -> (int * float) option
(** As {!Alg_exec.actual_of_stats}: (rows, inclusive ms) by physical
    node identity, [None] for nodes never pulled. *)

val cells_of_stats : stats -> Alg_plan.t -> string list
(** The batch columns of EXPLAIN ANALYZE for one node:
    [batches=… rows/batch=… fill=…] for executed vectorized operators,
    [fallback=tuple] for fallback roots, [fused=select] for a select
    absorbed into its parent project; [[]] otherwise. *)

val span_of_stats : stats -> Obs_span.t
(** Statistics as a span tree, for the trace sink. *)

(** {1 Running} *)

val run :
  ?chunk:int ->
  sources:(string -> string -> Alg_env.t Seq.t) ->
  fallback:(Alg_plan.t -> Alg_env.t Seq.t) ->
  template:(Alg_env.t -> Alg_plan.template -> Dtree.t) ->
  Alg_plan.t ->
  Alg_env.t list * stats
(** Compile the plan to a chunk pipeline and drain it.  [sources]
    resolves scans (raise {!Alg_exec.Source_unavailable} as usual);
    [fallback] runs a non-vectorized subtree on the tuple engine;
    [template] instantiates CONSTRUCT templates.  Most callers want
    {!Alg_exec.run_batched}. *)

(** {1 Shared operator semantics}

    One implementation of the order- and null-sensitive pieces, used by
    {e both} engines so they cannot drift: sort comparison, outer-union
    schema, and grouping/aggregation (deterministic over empty input —
    a keyless group over no rows yields exactly one row of aggregate
    identities — and over [Value.Null] keys, which form a group like
    any other value). *)

val navigate_matches :
  Dtree.t -> Xml_path.t -> Dtree.t list * [ `Probe | `Guide | `Miss ]
(** One Navigate binding, shared by all three engines: answered from the
    index subsystem when the tree is a registered root and the path is
    indexable ([`Probe] used a value index, [`Guide] the structural
    summary), otherwise by walking the tree ([`Miss]).  Results are
    byte-identical either way and safe to call from worker domains. *)

val idx_cell : int -> int -> int -> string list
(** [idx_cell probe guide miss] — the [idx=…] EXPLAIN ANALYZE cell,
    empty unless an index answered something. *)

val compare_specs : Alg_plan.sort_spec list -> Alg_env.t -> Alg_env.t -> int
(** Reference sort comparison: evaluates the key expressions on both
    sides.  Kept as the semantic specification; execution goes through
    the decorate–sort–undecorate path below so keys are computed once
    per row, not twice per comparison. *)

val sort_decorate :
  Alg_plan.sort_spec list -> Alg_env.t array -> (Value.t array * Alg_env.t) array
(** Evaluate every sort key once per row: the decorated pair carries the
    key column the comparators read. *)

val sort_compare_keys :
  Alg_plan.sort_spec list -> Value.t array -> Value.t array -> int
(** Compare two precomputed key rows under the specs' directions —
    agrees with {!compare_specs} by construction. *)

val sort_array : Alg_plan.sort_spec list -> Alg_env.t array -> Alg_env.t array
(** Stable sort via decorate–sort–undecorate.  Rows with equal keys keep
    their input order. *)

val sort_list : Alg_plan.sort_spec list -> Alg_env.t list -> Alg_env.t list
(** {!sort_array} over lists — the tuple engine's sort. *)

val union_vars : Alg_env.t list -> string list
(** All variables bound in any of the envs, first-occurrence order. *)

(** {1 Compiled row functions}

    Per-operator expression compilation: name resolution and AST
    dispatch happen once, the returned closure runs per row.  Only hot
    shapes are specialized; everything else falls back to
    {!Alg_expr.eval}, so semantics cannot drift.  Shared with the
    parallel engine ({!Alg_par}). *)

val compile_value : Alg_expr.t -> Alg_env.t -> Value.t
val compile_pred : Alg_expr.t -> Alg_env.t -> bool

val compile_project : string list -> Alg_env.t -> Alg_env.t
(** With the no-op fast path: a row already laid out as [vars] is
    returned unchanged. *)

val group_rows :
  ?size_hint:int ->
  (string * Alg_expr.t) list ->
  (string * Alg_plan.agg) list ->
  Alg_env.t list ->
  Alg_env.t list
(** Group by the key expressions (groups in first-occurrence order) and
    fold the aggregates.  [sum]/[avg]/[min]/[max] of an all-null group
    are [Null]; ["count(*)"] of the empty keyless group is 0. *)

(** {2 Aggregate accumulators}

    The mutable per-(group, aggregate) state {!group_rows} folds with.
    Exposed so the parallel engine can fold per-domain partial states
    with the {e same} code — notably the same fold order dependence for
    float sums — and render results identically. *)

type agg_state

val new_state : unit -> agg_state
val feed : Alg_env.t -> agg_state -> Alg_plan.agg -> unit
val result : agg_state -> Alg_plan.agg -> Dtree.t
