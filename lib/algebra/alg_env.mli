(** Variable environments: the unit of data flow in the physical algebra.

    An environment binds variable names to {e trees} of the Nimble data
    model.  Flat relational rows are environments whose bindings are
    atoms; XML processing binds whole subtrees.  This is exactly the
    "slightly more structured than XML" hybrid of section 3.1: one
    operator signature covers both shapes. *)

type t

val empty : t

val of_bindings : (string * Dtree.t) list -> t
(** @raise Invalid_argument on duplicate variables. *)

val of_tuple : Tuple.t -> t
(** Each field becomes an atom binding. *)

val to_tuple : t -> Tuple.t
(** Atom bindings keep their value; tree bindings flatten to their text. *)

val bindings : t -> (string * Dtree.t) list
val vars : t -> string list
val arity : t -> int

val get : t -> string -> Dtree.t option
val get_exn : t -> string -> Dtree.t
val mem : t -> string -> bool

val value_of : t -> string -> Value.t
(** The atomic value of a binding: the atom itself, a single-atom node's
    value, or the text of a larger tree.  Unbound variables yield
    [Null] — the outer-union convention of section 3.4. *)

val bind : t -> string -> Dtree.t -> t
(** Replace-or-append. *)

val bind_value : t -> string -> Value.t -> t

val unbind : t -> string -> t

val project : t -> string list -> t
(** Keep listed variables in order; missing ones bind to [Atom Null]. *)

val rename : t -> (string * string) list -> t

val has_layout : t -> string array -> bool
(** Does the environment bind exactly [names], in that order?  Cheap
    (no allocation) — the batch engine uses it to skip no-op
    projections. *)

val concat : t -> t -> t
(** Left-biased union of bindings. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
