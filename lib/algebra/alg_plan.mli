(** The physical algebra: operator trees the query processor executes.

    Per section 3.1, this is deliberately a {e physical} algebra — each
    node is an operator the executor implements, not a logical
    abstraction.  Plans are compiled from XML-QL by the mediator and run
    by {!Alg_exec} under the Volcano (iterator) model.

    The operator set covers the paper's feature list (section 4):
    SQL-equivalent operators (select/project/join/sort/group), document
    order and navigation ([Navigate], [Unnest]), result construction
    ([Construct]), and the outer union that underlies partial results
    (section 3.4). *)

type agg =
  | A_count                      (** rows in group *)
  | A_count_expr of Alg_expr.t   (** non-null values *)
  | A_sum of Alg_expr.t
  | A_avg of Alg_expr.t
  | A_min of Alg_expr.t
  | A_max of Alg_expr.t
  | A_collect of Alg_expr.t
      (** collect the tree value of the expression across the group, in
          input order, as a node labelled ["collection"] — the nesting
          primitive behind XML-QL's grouped construction *)

type sort_spec = {
  sort_key : Alg_expr.t;
  ascending : bool;
}

(** Templates describe constructed output trees (XML-QL CONSTRUCT). *)
type template =
  | T_node of string * (string * Alg_expr.t) list * template list
      (** element with computed attributes and child templates *)
  | T_value of Alg_expr.t   (** splice the atomic value *)
  | T_tree of Alg_expr.t    (** splice the whole bound subtree *)
  | T_splice of Alg_expr.t
      (** splice the {e children} of the bound tree (used with
          [A_collect] to nest grouped results) *)

type t =
  | Scan of { source : string; binding : string }
      (** resolved through the executor's source function *)
  | Const_envs of Alg_env.t list
  | Select of t * Alg_expr.t
  | Project of t * string list
  | Rename of t * (string * string) list
  | Extend of t * string * Alg_expr.t
      (** bind a new variable to a computed atomic value *)
  | Extend_tree of t * string * Alg_expr.t
      (** bind a new variable to a computed subtree *)
  | Nl_join of { left : t; right : t; pred : Alg_expr.t option }
  | Hash_join of {
      left : t;
      right : t;
      left_key : Alg_expr.t;
      right_key : Alg_expr.t;
      residual : Alg_expr.t option;
    }
  | Merge_join of {
      left : t;
      right : t;
      left_key : Alg_expr.t;
      right_key : Alg_expr.t;
    }
  | Dep_join of {
      left : t;
      label : string;  (** shown by explain *)
      expand : Alg_env.t -> Alg_env.t Seq.t;
    }  (** dependent join: the right side is re-evaluated per left env *)
  | Sort of t * sort_spec list
  | Distinct of t
  | Group of {
      input : t;
      keys : (string * Alg_expr.t) list;   (** output var, key expr *)
      aggs : (string * agg) list;          (** output var, aggregate *)
    }
  | Union of t * t
  | Outer_union of t * t
      (** union with Null padding for variables missing on either side *)
  | Navigate of { input : t; var : string; path : Xml_path.t; out : string }
      (** for each tree matched by [path] from the binding of [var], emit
          the input env extended with [out] — the up/down/sideways
          navigation operator *)
  | Unnest of { input : t; var : string; label : string option; out : string }
      (** one output env per (optionally label-filtered) child *)
  | Construct of { input : t; binding : string; template : template }
  | Limit of t * int

val node_label : t -> string
(** One-line description of a node without its inputs — the per-operator
    vocabulary shared by {!explain}, cost annotation and EXPLAIN
    ANALYZE. *)

val children : t -> t list
(** Direct plan inputs, left to right ([Dep_join] contributes only its
    left side; the expansion closure is opaque). *)

val explain : t -> string
(** Indented operator tree. *)

val free_sources : t -> string list
(** Distinct [Scan] source names, first-occurrence order. *)

val output_vars : t -> string list
(** Best-effort static computation of the variables the plan emits
    (unknowable pieces — e.g. [Dep_join] expansions — contribute
    nothing). *)
