type binop =
  | Add | Sub | Mul | Div
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type t =
  | Var of string
  | Const of Value.t
  | Child of t * string
  | Attr of t * string
  | Text of t
  | Label of t
  | Binop of binop * t * t
  | Not of t
  | Neg of t
  | Call of string * t list
  | Like of t * string
  | Is_null of t

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let tree_value tree =
  match Dtree.atom_value tree with
  | Some v -> v
  | None -> Value.String (Dtree.text tree)

let rec eval_tree env e =
  match e with
  | Var name -> Alg_env.get env name
  | Const v -> Some (Dtree.atom v)
  | Child (sub, label) -> (
    match eval_tree env sub with
    | Some tree -> Dtree.first_named tree label
    | None -> None)
  | Attr (sub, name) -> (
    match eval_tree env sub with
    | Some tree -> Option.map Dtree.atom (Dtree.attr tree name)
    | None -> None)
  | Text sub -> (
    match eval_tree env sub with
    | Some tree -> Some (Dtree.atom (Value.String (Dtree.text tree)))
    | None -> None)
  | Label sub -> (
    match eval_tree env sub with
    | Some tree -> Option.map (fun l -> Dtree.atom (Value.String l)) (Dtree.label tree)
    | None -> None)
  | Binop _ | Not _ | Neg _ | Call _ | Like _ | Is_null _ ->
    Some (Dtree.atom (eval env e))

and eval env e =
  match e with
  | Var name -> Alg_env.value_of env name
  | Const v -> v
  | Child _ | Attr _ | Text _ | Label _ -> (
    match eval_tree env e with
    | Some tree -> tree_value tree
    | None -> Value.Null)
  | Neg sub -> (
    match eval env sub with
    | Value.Null -> Value.Null
    | v -> (
      try Value.neg v
      with Invalid_argument _ -> fail "cannot negate %s" (Value.to_display v)))
  | Not sub -> (
    match eval env sub with
    | Value.Null -> Value.Null
    | v -> Value.Bool (not (Value.is_truthy v)))
  | Binop (And, a, b) -> (
    match eval env a with
    | Value.Bool false -> Value.Bool false
    | va -> (
      match eval env b with
      | Value.Bool false -> Value.Bool false
      | vb -> (
        match va, vb with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Value.Bool (Value.is_truthy va && Value.is_truthy vb))))
  | Binop (Or, a, b) -> (
    match eval env a with
    | Value.Bool true -> Value.Bool true
    | va -> (
      match eval env b with
      | Value.Bool true -> Value.Bool true
      | vb -> (
        match va, vb with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Value.Bool (Value.is_truthy va || Value.is_truthy vb))))
  | Binop ((Eq | Neq | Lt | Le | Gt | Ge) as op, a, b) -> (
    match Value.compare_sql (eval env a) (eval env b) with
    | None -> Value.Null
    | Some c ->
      Value.Bool
        (match op with
        | Eq -> c = 0
        | Neq -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | Add | Sub | Mul | Div | And | Or -> assert false))
  | Binop (Add, a, b) -> arith Value.add (eval env a) (eval env b)
  | Binop (Sub, a, b) -> arith Value.sub (eval env a) (eval env b)
  | Binop (Mul, a, b) -> arith Value.mul (eval env a) (eval env b)
  | Binop (Div, a, b) -> arith Value.div (eval env a) (eval env b)
  | Call (name, args) -> (
    let tup = Tuple.empty in
    ignore tup;
    let vs = List.map (eval env) args in
    (* Reuse the scalar-function table shape of the SQL substrate. *)
    match name, vs with
    | "upper", [ Value.Null ] | "lower", [ Value.Null ] | "trim", [ Value.Null ] -> Value.Null
    | "upper", [ v ] -> Value.String (String.uppercase_ascii (Value.to_string v))
    | "lower", [ v ] -> Value.String (String.lowercase_ascii (Value.to_string v))
    | "trim", [ v ] -> Value.String (String.trim (Value.to_string v))
    | "length", [ Value.Null ] -> Value.Null
    | "length", [ v ] -> Value.Int (String.length (Value.to_string v))
    | "abs", [ Value.Int i ] -> Value.Int (abs i)
    | "abs", [ Value.Float f ] -> Value.Float (Float.abs f)
    | "abs", [ Value.Null ] -> Value.Null
    | "coalesce", vs ->
      let rec first = function
        | [] -> Value.Null
        | Value.Null :: rest -> first rest
        | v :: _ -> v
      in
      first vs
    | "concat", vs -> Value.String (String.concat "" (List.map Value.to_string vs))
    | name, vs -> fail "unknown function %s/%d" name (List.length vs))
  | Like (sub, pattern) -> (
    match eval env sub with
    | Value.Null -> Value.Null
    | v ->
      (* Inline LIKE matcher (same semantics as the SQL substrate). *)
      let s = Value.to_string v in
      let pn = String.length pattern and sn = String.length s in
      let rec go pi si star_pi star_si =
        if pi < pn && pattern.[pi] = '%' then go (pi + 1) si (pi + 1) si
        else if si < sn && pi < pn && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
          go (pi + 1) (si + 1) star_pi star_si
        else if si >= sn then
          pi >= pn || (pi < pn && pattern.[pi] = '%' && go (pi + 1) si star_pi star_si)
        else if star_pi >= 0 then go star_pi (star_si + 1) star_pi (star_si + 1)
        else false
      in
      Value.Bool (go 0 0 (-1) (-1)))
  | Is_null sub -> Value.Bool (eval env sub = Value.Null)

and arith f a b =
  try f a b
  with Invalid_argument _ ->
    fail "type error in arithmetic on %s and %s" (Value.to_display a) (Value.to_display b)

let eval_pred env e =
  match eval env e with
  | Value.Null -> false
  | v -> Value.is_truthy v

let free_vars e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      out := name :: !out
    end
  in
  let rec go = function
    | Var name -> add name
    | Const _ -> ()
    | Child (sub, _) | Attr (sub, _) | Text sub | Label sub | Not sub | Neg sub
    | Like (sub, _) | Is_null sub -> go sub
    | Binop (_, a, b) ->
      go a;
      go b
    | Call (_, args) -> List.iter go args
  in
  go e;
  List.rev !out

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"

let rec to_string = function
  | Var name -> "$" ^ name
  | Const v -> Value.to_display v
  | Child (sub, label) -> Printf.sprintf "%s/%s" (to_string sub) label
  | Attr (sub, name) -> Printf.sprintf "%s/@%s" (to_string sub) name
  | Text sub -> Printf.sprintf "text(%s)" (to_string sub)
  | Label sub -> Printf.sprintf "label(%s)" (to_string sub)
  | Binop (op, a, b) -> Printf.sprintf "(%s %s %s)" (to_string a) (binop_str op) (to_string b)
  | Not sub -> Printf.sprintf "NOT %s" (to_string sub)
  | Neg sub -> Printf.sprintf "-%s" (to_string sub)
  | Call (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map to_string args))
  | Like (sub, pattern) -> Printf.sprintf "%s LIKE '%s'" (to_string sub) pattern
  | Is_null sub -> Printf.sprintf "%s IS NULL" (to_string sub)

let v name = Var name
let c value = Const value
let ci i = Const (Value.Int i)
let cs s = Const (Value.String s)
let ( =% ) a b = Binop (Eq, a, b)
let ( <% ) a b = Binop (Lt, a, b)
let ( &&% ) a b = Binop (And, a, b)
let ( ||% ) a b = Binop (Or, a, b)
