(* Morsel-driven parallel execution over a reusable domain pool.
   See the interface for the contract; the short version is that the
   engine materializes operator outputs bottom-up (in the same child
   order as the tuple and batch engines), splits per-row work into
   morsels of [chunk] rows, runs morsels on a fixed pool of domains,
   and stitches per-morsel outputs back in morsel order — so answers
   are byte-identical to the other two engines.  Everything touching
   process-global state (source functions, metrics, the fragment
   cache, tuple-engine fallback) runs on the caller's domain only. *)

[@@@ocaml.warnerror "+a"]

(* ------------------------------------------------------------------ *)
(* The domain pool                                                     *)
(* ------------------------------------------------------------------ *)

(* One process-wide pool, grown monotonically to the largest worker
   count ever requested and reused across queries (domain spawn costs
   milliseconds — far too slow per morsel).  Hand-rolled because
   domainslib is not a dependency: a mutex/condition-protected job
   queue; workers block on the condition when idle. *)
module Pool = struct
  let lock = Mutex.create ()
  let cond = Condition.create ()
  let jobs : (unit -> unit) Queue.t = Queue.create ()
  let stop = ref false
  let spawned = ref 0
  let handles : unit Domain.t list ref = ref []

  (* OCaml caps live domains at 128; stay comfortably below. *)
  let max_workers = 64

  let rec worker () =
    Mutex.lock lock;
    let rec take () =
      if !stop then None
      else
        match Queue.take_opt jobs with
        | Some job -> Some job
        | None ->
          Condition.wait cond lock;
          take ()
    in
    let job = take () in
    Mutex.unlock lock;
    match job with
    | None -> ()
    | Some job ->
      (try job () with _ -> ());
      worker ()

  let ensure n =
    let n = min n max_workers in
    Mutex.lock lock;
    while !spawned < n do
      handles := Domain.spawn worker :: !handles;
      incr spawned
    done;
    Mutex.unlock lock

  let submit job =
    Mutex.lock lock;
    Queue.add job jobs;
    Condition.signal cond;
    Mutex.unlock lock

  let shutdown () =
    Mutex.lock lock;
    stop := true;
    Condition.broadcast cond;
    let hs = !handles in
    handles := [];
    Mutex.unlock lock;
    List.iter Domain.join hs

  let () = at_exit shutdown
end

(* Run [n] indexed tasks on up to [domains] workers, the caller
   included (slot 0); tasks are claimed from a shared atomic counter,
   so fast workers steal the tail from slow ones (the morsel-driven
   part).  Returns per-slot busy milliseconds.  A task's exception is
   captured and re-raised on the caller — smallest task index first,
   deterministically.  All cross-domain writes (task outputs, busy
   times, errors) are ordered by the completion mutex, so the caller
   reads them race-free. *)
let run_region ~domains n (task : int -> unit) : float array =
  let domains = max 1 domains in
  let busy = Array.make domains 0.0 in
  if n > 0 then begin
    let errors : exn option array = Array.make n None in
    let wrapped i = try task i with e -> errors.(i) <- Some e in
    let helpers = min (domains - 1) (n - 1) in
    if helpers = 0 then begin
      let t0 = Obs_clock.wall_ms () in
      for i = 0 to n - 1 do
        wrapped i
      done;
      busy.(0) <- Obs_clock.wall_ms () -. t0
    end
    else begin
      Pool.ensure helpers;
      let next = Atomic.make 0 in
      let drain slot =
        let t0 = Obs_clock.wall_ms () in
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            wrapped i;
            loop ()
          end
        in
        loop ();
        busy.(slot) <- busy.(slot) +. (Obs_clock.wall_ms () -. t0)
      in
      let finish_lock = Mutex.create () in
      let finish_cond = Condition.create () in
      let remaining = ref helpers in
      for slot = 1 to helpers do
        Pool.submit (fun () ->
            drain slot;
            Mutex.lock finish_lock;
            decr remaining;
            if !remaining = 0 then Condition.signal finish_cond;
            Mutex.unlock finish_lock)
      done;
      drain 0;
      Mutex.lock finish_lock;
      while !remaining > 0 do
        Condition.wait finish_cond finish_lock
      done;
      Mutex.unlock finish_lock
    end;
    Array.iter (function Some e -> raise e | None -> ()) errors
  end;
  busy

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type op_par = {
  op_plan : Alg_plan.t;
  op_parallel : bool;
  mutable op_pulled : bool;
  mutable op_morsels : int;
  mutable op_rows : int;
  mutable op_ms : float;  (* inclusive *)
  (* Navigate index outcomes tick from worker domains, hence atomics. *)
  op_idx_probe : int Atomic.t;
  op_idx_guide : int Atomic.t;
  op_idx_miss : int Atomic.t;
  op_kids : op_par list;
}

type stats = {
  domains : int;
  chunk_size : int;
  busy : float array;  (* per-domain busy ms; slot 0 is the caller *)
  mutable morsels : int;
  root : op_par;
}

let operator_parallel = function
  | Alg_plan.Nl_join _ | Alg_plan.Merge_join _ | Alg_plan.Dep_join _
  | Alg_plan.Distinct _ -> false
  | _ -> true

let rec make_stats plan =
  {
    op_plan = plan;
    op_parallel = operator_parallel plan;
    op_pulled = false;
    op_morsels = 0;
    op_rows = 0;
    op_ms = 0.0;
    op_idx_probe = Atomic.make 0;
    op_idx_guide = Atomic.make 0;
    op_idx_miss = Atomic.make 0;
    op_kids = List.map make_stats (Alg_plan.children plan);
  }

let rec stats_index acc ob =
  List.fold_left stats_index ((ob.op_plan, ob) :: acc) ob.op_kids

let find_stats stats plan =
  (* Physical identity: each plan node appears once in a compiled tree. *)
  Option.map snd
    (List.find_opt (fun (p, _) -> p == plan) (stats_index [] stats.root))

let actual_of_stats stats plan =
  match find_stats stats plan with
  | Some ob when ob.op_pulled -> Some (ob.op_rows, ob.op_ms)
  | Some _ | None -> None

let busy_max stats = Array.fold_left Float.max 0.0 stats.busy

let busy_min stats =
  match Array.length stats.busy with
  | 0 -> 0.0
  | _ -> Array.fold_left Float.min stats.busy.(0) stats.busy

let cells_of_stats stats plan =
  match find_stats stats plan with
  | None -> []
  | Some ob ->
    if not ob.op_pulled then []
    else begin
      let base =
        if not ob.op_parallel then [ "fallback=tuple" ]
        else if ob.op_morsels > 0 then [ Printf.sprintf "morsels=%d" ob.op_morsels ]
        else []
      in
      let base =
        base
        @ Alg_batch.idx_cell
            (Atomic.get ob.op_idx_probe)
            (Atomic.get ob.op_idx_guide)
            (Atomic.get ob.op_idx_miss)
      in
      if ob == stats.root then
        base
        @ [
            Printf.sprintf "domains=%d" stats.domains;
            Printf.sprintf "skew=%.2f/%.2fms" (busy_max stats) (busy_min stats);
          ]
      else base
    end

let span_of_stats stats =
  let rec go ob =
    let sp = Obs_span.make (Alg_plan.node_label ob.op_plan) in
    Obs_span.set_int sp "rows" ob.op_rows;
    Obs_span.set_int sp "morsels" ob.op_morsels;
    Obs_span.set_duration_ms sp ob.op_ms;
    List.iter (fun k -> Obs_span.add_child sp (go k)) ob.op_kids;
    sp
  in
  go stats.root

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type config = {
  domains : int;
  morsel : int;
  sources : string -> string -> Alg_env.t Seq.t;
  fallback : Alg_plan.t -> Alg_env.t Seq.t;
  template : Alg_env.t -> Alg_plan.template -> Dtree.t;
  cost_rows : Alg_plan.t -> float;  (* build-side estimate for join pre-sizing *)
}

type counters = {
  c_runs : Obs_metrics.counter;
  c_morsels : Obs_metrics.counter;
  c_rows : Obs_metrics.counter;
  c_fallbacks : Obs_metrics.counter;
}

type ctx = {
  cfg : config;
  stats : stats;
  counters : counters;
}

let morsel_ranges morsel n =
  if n = 0 then [||]
  else begin
    let m = (n + morsel - 1) / morsel in
    Array.init m (fun i ->
        let lo = i * morsel in
        (lo, min morsel (n - lo)))
  end

(* Run [m] tasks as one parallel region, folding per-domain busy time
   and morsel counts into the stats.  Metrics tick on the caller only —
   the registry is not thread-safe. *)
let region ctx ob m task =
  let busy = run_region ~domains:ctx.cfg.domains m task in
  let slots = min (Array.length busy) (Array.length ctx.stats.busy) in
  for i = 0 to slots - 1 do
    ctx.stats.busy.(i) <- ctx.stats.busy.(i) +. busy.(i)
  done;
  ctx.stats.morsels <- ctx.stats.morsels + m;
  ob.op_morsels <- ob.op_morsels + m;
  Obs_metrics.inc ~by:m ctx.counters.c_morsels

(* Morsel-parallel 1:1 map; output slots are pre-allocated, so order is
   input order by construction. *)
let par_map ctx ob (f : Alg_env.t -> Alg_env.t) (input : Alg_env.t array) =
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let ranges = morsel_ranges ctx.cfg.morsel n in
    let out = Array.make n Alg_env.empty in
    region ctx ob (Array.length ranges) (fun i ->
        let lo, len = ranges.(i) in
        for j = lo to lo + len - 1 do
          out.(j) <- f input.(j)
        done);
    out
  end

(* Morsel-parallel filter/expand: each morsel collects its own output
   run; runs are stitched in morsel order. *)
let par_expand ctx ob (f : (Alg_env.t -> unit) -> Alg_env.t -> unit) input =
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let ranges = morsel_ranges ctx.cfg.morsel n in
    let m = Array.length ranges in
    let outs = Array.make m [||] in
    region ctx ob m (fun i ->
        let lo, len = ranges.(i) in
        let acc = ref [] in
        let emit env = acc := env :: !acc in
        for j = lo to lo + len - 1 do
          f emit input.(j)
        done;
        outs.(i) <- Array.of_list (List.rev !acc));
    Array.concat (Array.to_list outs)
  end

(* Parallel stable sort: decorate and sort each morsel run in parallel
   (keys evaluated once per row), then merge runs pairwise — ties take
   the left (earlier-morsel) side, so the result is exactly the stable
   sort of the input. *)
let par_sort ctx ob specs arr =
  let n = Array.length arr in
  if n <= 1 || specs = [] then arr
  else begin
    let cmp_keys = Alg_batch.sort_compare_keys specs in
    let ranges = morsel_ranges ctx.cfg.morsel n in
    let m = Array.length ranges in
    let runs = Array.make m [||] in
    region ctx ob m (fun i ->
        let lo, len = ranges.(i) in
        let d = Alg_batch.sort_decorate specs (Array.sub arr lo len) in
        Array.stable_sort (fun (ka, _) (kb, _) -> cmp_keys ka kb) d;
        runs.(i) <- d);
    let merge a b =
      let la = Array.length a and lb = Array.length b in
      if la = 0 then b
      else if lb = 0 then a
      else begin
        let out = Array.make (la + lb) a.(0) in
        let i = ref 0 and j = ref 0 and k = ref 0 in
        while !i < la && !j < lb do
          let ka, _ = a.(!i) and kb, _ = b.(!j) in
          if cmp_keys ka kb <= 0 then begin
            out.(!k) <- a.(!i);
            incr i
          end
          else begin
            out.(!k) <- b.(!j);
            incr j
          end;
          incr k
        done;
        while !i < la do
          out.(!k) <- a.(!i);
          incr i;
          incr k
        done;
        while !j < lb do
          out.(!k) <- b.(!j);
          incr j;
          incr k
        done;
        out
      end
    in
    let rec rounds runs =
      let m = Array.length runs in
      if m <= 1 then if m = 0 then [||] else runs.(0)
      else begin
        let half = (m + 1) / 2 in
        let next = Array.make half [||] in
        region ctx ob half (fun i ->
            if (2 * i) + 1 < m then next.(i) <- merge runs.(2 * i) runs.((2 * i) + 1)
            else next.(i) <- runs.(2 * i));
        rounds next
      end
    in
    Array.map snd (rounds runs)
  end

(* Partition count for joins and grouping: one partition per domain. *)
let partitions ctx = max 1 ctx.cfg.domains

let default_cost_rows plan =
  let est = Alg_cost.estimate ~source_rows:(fun _ -> Alg_cost.default_scan_rows) plan in
  est.Alg_cost.rows

let rec eval ctx ob plan : Alg_env.t array =
  ob.op_pulled <- true;
  let t0 = Obs_clock.wall_ms () in
  let out = eval_node ctx ob plan in
  ob.op_ms <- ob.op_ms +. (Obs_clock.wall_ms () -. t0);
  ob.op_rows <- Array.length out;
  out

and eval_node ctx ob plan : Alg_env.t array =
  let kid i = List.nth ob.op_kids i in
  let fallback () =
    Obs_metrics.inc ctx.counters.c_fallbacks;
    Array.of_seq (ctx.cfg.fallback plan)
  in
  match plan with
  | Alg_plan.Scan { source; binding } ->
    (* Sources (mediator fetches, caches, network simulation, metrics)
       are process-global state: materialize on the caller's domain, in
       plan order — which also keeps strict/partial failure semantics
       identical to the other engines. *)
    Array.of_seq (ctx.cfg.sources source binding)
  | Alg_plan.Const_envs envs -> Array.of_list envs
  | Alg_plan.Select (input, pred) ->
    let test = Alg_batch.compile_pred pred in
    let rows = eval ctx (kid 0) input in
    par_expand ctx ob (fun emit env -> if test env then emit env) rows
  | Alg_plan.Project (input, vars) ->
    par_map ctx ob (Alg_batch.compile_project vars) (eval ctx (kid 0) input)
  | Alg_plan.Rename (input, mapping) ->
    par_map ctx ob (fun env -> Alg_env.rename env mapping) (eval ctx (kid 0) input)
  | Alg_plan.Extend (input, var, e) ->
    let f = Alg_batch.compile_value e in
    par_map ctx ob (fun env -> Alg_env.bind_value env var (f env)) (eval ctx (kid 0) input)
  | Alg_plan.Extend_tree (input, var, e) ->
    par_map ctx ob
      (fun env ->
        match Alg_expr.eval_tree env e with
        | Some tree -> Alg_env.bind env var tree
        | None -> Alg_env.bind env var (Dtree.atom Value.Null))
      (eval ctx (kid 0) input)
  | Alg_plan.Hash_join { left; right; left_key; right_key; residual } ->
    (* Build side first (same evaluation order as the other engines),
       then: parallel key precompute, one build partition per domain
       (each walks the key column backwards so buckets stay in build
       order), and a morsel-parallel probe over read-only tables.  Per
       left row, matches appear in build order; left order survives the
       stitch — byte-identical to the sequential join. *)
    let rights = eval ctx (kid 1) right in
    let lefts = eval ctx (kid 0) left in
    let n = Array.length rights in
    let rkey = Alg_batch.compile_value right_key in
    let rkeys = Array.make n Value.Null in
    let ranges = morsel_ranges ctx.cfg.morsel n in
    region ctx ob (Array.length ranges) (fun i ->
        let lo, len = ranges.(i) in
        for j = lo to lo + len - 1 do
          rkeys.(j) <- rkey rights.(j)
        done);
    let parts = partitions ctx in
    let part_of k = Hashtbl.hash k mod parts in
    (* Pre-size each partition from the cost model's build-side
       estimate, as the sequential engines do for the whole table. *)
    let hint =
      int_of_float
        (Float.min 1_048_576.0
           (Float.max 16.0 (ctx.cfg.cost_rows right /. float_of_int parts)))
    in
    let tables : (Value.t, Alg_env.t list ref) Hashtbl.t array =
      Array.init parts (fun _ -> Hashtbl.create hint)
    in
    region ctx ob parts (fun p ->
        let table = tables.(p) in
        for j = n - 1 downto 0 do
          match rkeys.(j) with
          | Value.Null -> ()
          | k ->
            if part_of k = p then (
              match Hashtbl.find_opt table k with
              | Some bucket -> bucket := rights.(j) :: !bucket
              | None -> Hashtbl.add table k (ref [ rights.(j) ]))
        done);
    let lkey = Alg_batch.compile_value left_key in
    let keep = Option.map Alg_batch.compile_pred residual in
    par_expand ctx ob
      (fun emit lenv ->
        match lkey lenv with
        | Value.Null -> ()
        | k -> (
          match Hashtbl.find_opt tables.(part_of k) k with
          | None -> ()
          | Some bucket ->
            List.iter
              (fun renv ->
                let joined = Alg_env.concat lenv renv in
                match keep with
                | None -> emit joined
                | Some test -> if test joined then emit joined)
              !bucket))
      lefts
  | Alg_plan.Sort (input, specs) -> par_sort ctx ob specs (eval ctx (kid 0) input)
  | Alg_plan.Group { input; keys; aggs } ->
    let rows = eval ctx (kid 0) input in
    let n = Array.length rows in
    if keys = [] then
      (* Scalar aggregation is one group fed in input order — it cannot
         be split without reassociating float sums, so it runs on the
         caller (shared with the other engines, identities included). *)
      Array.of_list (Alg_batch.group_rows ~size_hint:16 keys aggs (Array.to_list rows))
    else begin
      let keyfns = List.map (fun (_, e) -> Alg_batch.compile_value e) keys in
      let keyvals : Value.t list array = Array.make n [] in
      let ranges = morsel_ranges ctx.cfg.morsel n in
      region ctx ob (Array.length ranges) (fun i ->
          let lo, len = ranges.(i) in
          for j = lo to lo + len - 1 do
            keyvals.(j) <- List.map (fun f -> f rows.(j)) keyfns
          done);
      (* One partition per domain: each domain owns the groups whose
         key hashes to it and folds their rows in ascending input
         order, so every per-group aggregate state sees exactly the
         sequence the sequential fold would — float sums associate
         identically.  Groups then merge by first-occurrence row. *)
      let parts = partitions ctx in
      let groups : (int * Value.t list * Alg_batch.agg_state list) list array =
        Array.make parts []
      in
      let hint =
        int_of_float (Float.min 1_048_576.0 (Float.max 16.0 (float_of_int n /. 4.0)))
      in
      region ctx ob parts (fun p ->
          let table = Hashtbl.create hint in
          let order = ref [] in
          for j = 0 to n - 1 do
            let key = keyvals.(j) in
            if Hashtbl.hash key mod parts = p then begin
              let _, _, states =
                match Hashtbl.find_opt table key with
                | Some entry -> entry
                | None ->
                  let entry = (j, key, List.map (fun _ -> Alg_batch.new_state ()) aggs) in
                  Hashtbl.add table key entry;
                  order := entry :: !order;
                  entry
              in
              List.iter2 (fun st (_, agg) -> Alg_batch.feed rows.(j) st agg) states aggs
            end
          done;
          groups.(p) <- List.rev !order);
      let all = List.concat (Array.to_list groups) in
      let all = List.sort (fun (a, _, _) (b, _, _) -> compare a b) all in
      Array.of_list
        (List.map
           (fun (_, key, states) ->
             let key_bindings = List.map2 (fun (var, _) v -> (var, Dtree.atom v)) keys key in
             let agg_bindings =
               List.map2 (fun st (var, agg) -> (var, Alg_batch.result st agg)) states aggs
             in
             Alg_env.of_bindings (key_bindings @ agg_bindings))
           all)
    end
  | Alg_plan.Union (a, b) ->
    let ea = eval ctx (kid 0) a in
    let eb = eval ctx (kid 1) b in
    Array.append ea eb
  | Alg_plan.Outer_union (a, b) ->
    let ea = eval ctx (kid 0) a in
    let eb = eval ctx (kid 1) b in
    let vars = Alg_batch.union_vars (Array.to_list ea @ Array.to_list eb) in
    par_map ctx ob (fun env -> Alg_env.project env vars) (Array.append ea eb)
  | Alg_plan.Navigate { input; var; path; out } ->
    par_expand ctx ob
      (fun emit env ->
        match Alg_env.get env var with
        | None -> ()
        | Some (Dtree.Atom _) -> ()
        | Some (Dtree.Node _ as tree) ->
          let matches, how = Alg_batch.navigate_matches tree path in
          (match how with
          | `Probe -> Atomic.incr ob.op_idx_probe
          | `Guide -> Atomic.incr ob.op_idx_guide
          | `Miss -> Atomic.incr ob.op_idx_miss);
          List.iter (fun m -> emit (Alg_env.bind env out m)) matches)
      (eval ctx (kid 0) input)
  | Alg_plan.Unnest { input; var; label; out } ->
    par_expand ctx ob
      (fun emit env ->
        match Alg_env.get env var with
        | None -> ()
        | Some tree ->
          let kids =
            match label with
            | Some l -> Dtree.kids_named tree l
            | None -> Dtree.kids tree
          in
          List.iter (fun k -> emit (Alg_env.bind env out k)) kids)
      (eval ctx (kid 0) input)
  | Alg_plan.Construct { input; binding; template } ->
    par_map ctx ob
      (fun env -> Alg_env.bind env binding (ctx.cfg.template env template))
      (eval ctx (kid 0) input)
  | Alg_plan.Limit (input, limit) ->
    let rows = eval ctx (kid 0) input in
    if limit <= 0 then [||]
    else if Array.length rows <= limit then rows
    else Array.sub rows 0 limit
  | Alg_plan.Nl_join _ | Alg_plan.Merge_join _ | Alg_plan.Dep_join _
  | Alg_plan.Distinct _ -> fallback ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let default_domains () = max 1 (Domain.recommended_domain_count ())

let run ?domains ?(chunk = Alg_batch.default_chunk) ?(cost_rows = default_cost_rows)
    ~sources ~fallback ~template plan =
  let domains =
    match domains with
    | Some d -> max 1 (min (Pool.max_workers + 1) d)
    | None -> default_domains ()
  in
  let cfg = { domains; morsel = max 1 chunk; sources; fallback; template; cost_rows } in
  let counters =
    {
      c_runs = Obs_metrics.counter "par.runs";
      c_morsels = Obs_metrics.counter "par.morsels";
      c_rows = Obs_metrics.counter "par.rows";
      c_fallbacks = Obs_metrics.counter "par.fallbacks";
    }
  in
  Obs_metrics.inc counters.c_runs;
  let root = make_stats plan in
  let stats =
    { domains; chunk_size = cfg.morsel; busy = Array.make domains 0.0; morsels = 0; root }
  in
  let ctx = { cfg; stats; counters } in
  let out = eval ctx root plan in
  Obs_metrics.inc ~by:(Array.length out) counters.c_rows;
  (Array.to_list out, stats)
