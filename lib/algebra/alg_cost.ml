type estimate = {
  rows : float;
  cost : float;
}

let rec selectivity = function
  | Alg_expr.Binop (Alg_expr.Eq, _, _) -> 0.05
  | Alg_expr.Binop ((Alg_expr.Lt | Alg_expr.Le | Alg_expr.Gt | Alg_expr.Ge), _, _) -> 0.3
  | Alg_expr.Binop (Alg_expr.Neq, _, _) -> 0.9
  | Alg_expr.Binop (Alg_expr.And, a, b) -> selectivity a *. selectivity b
  | Alg_expr.Binop (Alg_expr.Or, a, b) -> min 1.0 (selectivity a +. selectivity b)
  | Alg_expr.Not e -> 1.0 -. selectivity e
  | Alg_expr.Like _ -> 0.25
  | Alg_expr.Is_null _ -> 0.1
  | Alg_expr.Const (Value.Bool true) -> 1.0
  | Alg_expr.Const (Value.Bool false) -> 0.0
  | _ -> 0.5

let fanout = 3.0

let rec go ?(path_rows = fun _ -> None) source_rows plan =
  let go source_rows plan = go ~path_rows source_rows plan in
  match plan with
  | Alg_plan.Scan { source; _ } ->
    let n = max 1.0 (source_rows source) in
    { rows = n; cost = n }
  | Alg_plan.Const_envs envs ->
    let n = float_of_int (List.length envs) in
    { rows = n; cost = n }
  | Alg_plan.Select (input, pred) ->
    let e = go source_rows input in
    { rows = max 1.0 (e.rows *. selectivity pred); cost = e.cost +. e.rows }
  | Alg_plan.Project (input, _)
  | Alg_plan.Rename (input, _)
  | Alg_plan.Extend (input, _, _)
  | Alg_plan.Extend_tree (input, _, _) ->
    let e = go source_rows input in
    { rows = e.rows; cost = e.cost +. e.rows }
  | Alg_plan.Nl_join { left; right; pred } ->
    let l = go source_rows left and r = go source_rows right in
    let sel = match pred with Some p -> selectivity p | None -> 1.0 in
    { rows = max 1.0 (l.rows *. r.rows *. sel); cost = l.cost +. r.cost +. (l.rows *. r.rows) }
  | Alg_plan.Hash_join { left; right; residual; _ } ->
    let l = go source_rows left and r = go source_rows right in
    let sel = 0.05 *. match residual with Some p -> selectivity p | None -> 1.0 in
    { rows = max 1.0 (l.rows *. r.rows *. sel); cost = l.cost +. r.cost +. l.rows +. r.rows }
  | Alg_plan.Merge_join { left; right; _ } ->
    let l = go source_rows left and r = go source_rows right in
    let sort_cost x = x *. log (max 2.0 x) in
    { rows = max 1.0 (l.rows *. r.rows *. 0.05);
      cost = l.cost +. r.cost +. sort_cost l.rows +. sort_cost r.rows }
  | Alg_plan.Dep_join { left; _ } ->
    let l = go source_rows left in
    { rows = l.rows; cost = l.cost +. l.rows }
  | Alg_plan.Sort (input, _) ->
    let e = go source_rows input in
    { rows = e.rows; cost = e.cost +. (e.rows *. log (max 2.0 e.rows)) }
  | Alg_plan.Distinct input ->
    let e = go source_rows input in
    { rows = max 1.0 (e.rows *. 0.8); cost = e.cost +. e.rows }
  | Alg_plan.Group { input; keys; _ } ->
    let e = go source_rows input in
    let groups = if keys = [] then 1.0 else max 1.0 (e.rows *. 0.2) in
    { rows = groups; cost = e.cost +. e.rows }
  | Alg_plan.Union (a, b) ->
    let ea = go source_rows a and eb = go source_rows b in
    { rows = ea.rows +. eb.rows; cost = ea.cost +. eb.cost }
  | Alg_plan.Outer_union (a, b) ->
    let ea = go source_rows a and eb = go source_rows b in
    { rows = ea.rows +. eb.rows; cost = ea.cost +. eb.cost +. ea.rows +. eb.rows }
  | Alg_plan.Navigate { input; path; _ } -> (
    let e = go source_rows input in
    match path_rows path with
    | Some n ->
      (* Index probe: output is the exact match count; the probe costs
         its result size instead of a walk over the whole subtree. *)
      { rows = max 1.0 n; cost = e.cost +. e.rows +. max 1.0 n }
    | None -> { rows = e.rows *. fanout; cost = e.cost +. (e.rows *. fanout) })
  | Alg_plan.Unnest { input; _ } ->
    let e = go source_rows input in
    { rows = e.rows *. fanout; cost = e.cost +. (e.rows *. fanout) }
  | Alg_plan.Construct { input; _ } ->
    let e = go source_rows input in
    { rows = e.rows; cost = e.cost +. e.rows }
  | Alg_plan.Limit (input, n) ->
    let e = go source_rows input in
    { rows = min e.rows (float_of_int n); cost = e.cost }

let estimate ?path_rows ~source_rows plan = go ?path_rows source_rows plan

let default_scan_rows = 1000.0

(* Walk the plan printing one line per operator; [decorate] supplies the
   per-node suffix (estimates alone, or estimates vs. actuals). *)
let render_tree decorate plan =
  let buf = Buffer.create 256 in
  let rec walk indent p =
    Buffer.add_string buf (String.make (indent * 2) ' ');
    Buffer.add_string buf (Alg_plan.node_label p);
    Buffer.add_string buf (decorate p);
    Buffer.add_char buf '\n';
    List.iter (walk (indent + 1)) (Alg_plan.children p)
  in
  walk 0 plan;
  Buffer.contents buf

let annotate ?path_rows ~source_rows plan =
  let body =
    render_tree
      (fun p ->
        let e = estimate ?path_rows ~source_rows p in
        Printf.sprintf "  (est %.0f rows)" e.rows)
      plan
  in
  let total = estimate ?path_rows ~source_rows plan in
  Printf.sprintf "%s-- estimated: %.0f rows, %.0f work units\n" body total.rows total.cost

let explain_analyze ?(extra = fun _ -> []) ?path_rows ~source_rows ~actual plan =
  render_tree
    (fun p ->
      let e = estimate ?path_rows ~source_rows p in
      let tail =
        match extra p with
        | [] -> ""
        | cells -> ", " ^ String.concat " " cells
      in
      match actual p with
      | Some (rows, ms) ->
        Printf.sprintf "  (est %.0f rows, actual %d rows, %.2fms%s)" e.rows rows ms tail
      | None -> Printf.sprintf "  (est %.0f rows, never executed%s)" e.rows tail)
    plan
