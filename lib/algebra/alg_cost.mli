(** Cardinality and cost estimation for physical plans.

    The estimates drive nothing automatically (the mediator's join order
    is variable-connectivity-greedy), but they power EXPLAIN annotations
    and let tests and benches reason about operator choice.  The model is
    the textbook one: per-operator output cardinalities from input
    estimates and predicate selectivities, and a unit-cost charge per
    tuple touched. *)

type estimate = {
  rows : float;      (** expected output cardinality *)
  cost : float;      (** cumulative work in touched-tuple units *)
}

val selectivity : Alg_expr.t -> float
(** Heuristic predicate selectivity: equality 0.05, range 0.3, LIKE 0.25,
    AND multiplies, OR saturating-adds, NOT complements, everything else
    0.5. *)

val estimate :
  ?path_rows:(Xml_path.t -> float option) ->
  source_rows:(string -> float) ->
  Alg_plan.t ->
  estimate
(** [estimate ~source_rows plan] — [source_rows name] supplies the
    expected cardinality of each scan (return a default such as 1000.0
    for unknown sources).  Dependent joins assume one expansion per input
    row; navigate/unnest assume a fan-out of 3.  [path_rows] consults
    the index subsystem: when it answers with a path's exact match
    count, that Navigate estimates the count and is costed as a probe
    (result-sized) instead of a fanned-out subtree walk — what makes
    the optimizer prefer index-answerable navigation.  Default: no
    index knowledge. *)

val default_scan_rows : float
(** 1000.0 — the cardinality assumed for a scan nobody has observed. *)

val annotate :
  ?path_rows:(Xml_path.t -> float option) ->
  source_rows:(string -> float) ->
  Alg_plan.t ->
  string
(** {!Alg_plan.explain} output with an estimated-rows annotation per
    operator line, plus a total [-- estimated: …] footer. *)

val explain_analyze :
  ?extra:(Alg_plan.t -> string list) ->
  ?path_rows:(Xml_path.t -> float option) ->
  source_rows:(string -> float) ->
  actual:(Alg_plan.t -> (int * float) option) ->
  Alg_plan.t ->
  string
(** EXPLAIN ANALYZE body: per operator line, estimated rows next to the
    measured (rows, inclusive milliseconds) that [actual] reports for
    that plan node (physical identity); nodes the executor never pulled
    from print [never executed].  [extra] appends engine-specific cells
    to a node's annotation (the batch engine's batches/rows-per-batch/
    fill columns); it defaults to none. *)
