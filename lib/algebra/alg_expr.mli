(** Scalar expressions of the physical algebra.

    Expressions are evaluated against an {!Alg_env.t}.  They can reach
    into tree bindings (child text, attributes, whole-tree text) so that
    the same predicate machinery works over relational atoms and XML
    subtrees.  Null follows SQL three-valued-logic conventions, matching
    the substrate sources. *)

type binop =
  | Add | Sub | Mul | Div
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type t =
  | Var of string            (** atomic value of a binding (text for trees) *)
  | Const of Value.t
  | Child of t * string      (** value of first child with the label *)
  | Attr of t * string       (** attribute value *)
  | Text of t                (** full concatenated text *)
  | Label of t               (** node label as a string *)
  | Binop of binop * t * t
  | Not of t
  | Neg of t
  | Call of string * t list  (** the scalar functions of {!Sql_eval} *)
  | Like of t * string
  | Is_null of t

exception Error of string

val eval : Alg_env.t -> t -> Value.t
(** @raise Error on type errors or unknown functions.  Unbound variables
    evaluate to [Null] (outer-union convention). *)

val eval_pred : Alg_env.t -> t -> bool
(** WHERE semantics: UNKNOWN is false. *)

val eval_tree : Alg_env.t -> t -> Dtree.t option
(** Tree-valued view: [Var] yields the bound subtree, [Child]/[Attr]
    narrow it.  Value-producing forms wrap their result as an atom. *)

val free_vars : t -> string list
(** Distinct variables, first-occurrence order. *)

val to_string : t -> string

(** {1 Construction sugar} *)

val v : string -> t
val c : Value.t -> t
val ci : int -> t
val cs : string -> t
val ( =% ) : t -> t -> t
val ( <% ) : t -> t -> t
val ( &&% ) : t -> t -> t
val ( ||% ) : t -> t -> t
