(** Volcano-style execution of physical plans.

    Plans pull environments lazily through [Seq.t]; blocking operators
    (sort, group, distinct, hash-join build side) materialize their
    input.  Sources are resolved through a caller-supplied function, so
    the same plan can run against live sources, materialized views or
    test fixtures. *)

type source_fn = string -> string -> Alg_env.t Seq.t
(** [source_fn source binding] yields the environments of a scan.  Raise
    {!Source_unavailable} to signal an offline source (section 3.4). *)

exception Source_unavailable of string
exception Exec_error of string

val run : source_fn -> Alg_plan.t -> Alg_env.t Seq.t
(** Lazy execution; source and evaluation errors surface when the
    sequence is forced. *)

val run_list : source_fn -> Alg_plan.t -> Alg_env.t list
(** Force the whole result. *)

val run_partial :
  source_fn -> Alg_plan.t -> Alg_env.t list * string list
(** Partial-results mode (section 3.4): scans whose source raises
    {!Source_unavailable} contribute no rows instead of failing; the
    returned list names the sources that were skipped, so the caller can
    annotate the answer as incomplete. *)

(** {1 Batch-at-a-time execution}

    The vectorized engine of {!Alg_batch}, wired to this module's
    sources, fallback and template machinery.  Same answers, same
    order, same strict/partial semantics; rows move in chunks. *)

val run_batched :
  ?chunk:int -> source_fn -> Alg_plan.t -> Alg_env.t list * Alg_batch.stats
(** Run on the batch engine (chunk default {!Alg_batch.default_chunk}),
    returning the rows plus the per-operator batch statistics. *)

val run_parallel :
  ?domains:int ->
  ?chunk:int ->
  ?cost_rows:(Alg_plan.t -> float) ->
  source_fn ->
  Alg_plan.t ->
  Alg_env.t list * Alg_par.stats
(** Run on the morsel-driven parallel engine of {!Alg_par} ([domains]
    default {!Alg_par.default_domains}, morsel size default
    {!Alg_batch.default_chunk}), returning the rows plus the
    per-operator parallel statistics.  Same answers, same order, same
    strict/partial semantics as the other engines.  [cost_rows]
    estimates a subplan's output rows so per-partition hash-join tables
    pre-size from real cardinalities (the mediator passes its
    feedback/statistics-backed estimator); default is the blind cost
    model. *)

val run_mode :
  ?cost_rows:(Alg_plan.t -> float) ->
  Alg_batch.mode -> source_fn -> Alg_plan.t -> Alg_env.t list
(** {!run_list}, {!run_batched} or {!run_parallel} according to the
    mode ([cost_rows] reaches the parallel engine only). *)

val run_partial_mode :
  ?cost_rows:(Alg_plan.t -> float) ->
  Alg_batch.mode -> source_fn -> Alg_plan.t -> Alg_env.t list * string list
(** {!run_partial} under any engine: unavailable sources contribute
    no rows and are reported, whichever engine executes the plan. *)

val buffered :
  (string -> (Alg_env.t list, exn) result option) ->
  source_fn ->
  source_fn
(** [buffered lookup fallback] resolves scans against a prefetched
    buffer: when [lookup access_id] finds an entry, its environments
    are served (or its captured exception re-raised — at pull time, so
    strict/partial semantics match sequential fetching); otherwise the
    scan falls through to [fallback].  The scatter-gather fetch path. *)

(** {1 Instrumented execution}

    The observability path: identical semantics to {!run_list}, plus a
    per-operator statistics tree (rows out, inclusive wall time) mirroring
    the plan — the raw material of EXPLAIN ANALYZE.  When the trace sink
    is enabled, the statistics also emit as a span tree. *)

type op_stats = {
  op_plan : Alg_plan.t;          (** the node these numbers describe *)
  mutable actual_rows : int;     (** rows this operator produced *)
  mutable elapsed_ms : float;    (** inclusive wall time (with inputs) *)
  mutable pulled : bool;         (** false: the executor never reached it *)
  mutable idx_probe : int;       (** Navigate bindings answered by value probe *)
  mutable idx_guide : int;       (** … answered by the structural guide *)
  mutable idx_miss : int;        (** … that fell back to the tree walker *)
  op_kids : op_stats list;       (** same shape as {!Alg_plan.children} *)
}

val run_instrumented :
  source_fn -> Alg_plan.t -> Alg_env.t list * op_stats
(** Force the whole result, counting rows and charging inclusive time per
    operator.  With the sink disabled this allocates only the statistics
    tree; results are identical to {!run_list}. *)

val actual_of_stats : op_stats -> Alg_plan.t -> (int * float) option
(** Lookup (by physical node identity) suitable as the [actual] argument
    of {!Alg_cost.explain_analyze}; [None] for nodes never pulled. *)

val idx_cells_of_stats : op_stats -> Alg_plan.t -> string list
(** The [idx=probe:…/guide:…/miss:…] EXPLAIN ANALYZE cell for a node,
    empty unless an index answered some of its Navigate bindings. *)

val build_template :
  Alg_env.t -> Alg_plan.template -> Dtree.t
(** Instantiate a CONSTRUCT template against one environment. *)

val of_tuples : string -> Tuple.t list -> Alg_env.t Seq.t
(** Helper: wrap rows as environments binding one variable per row
    ([binding] bound to the row as a tree labelled with the source
    name)... see implementation note in the interface of the mediator:
    each tuple becomes a tree [<binding><col>v</col>...</binding>]. *)
