(* Batch-at-a-time execution: chunks of environments move between
   operators instead of single rows.  See the interface for the
   contract with the tuple engine; the short version is that plan
   compilation is eager (sources open, blocking operators materialize)
   and row flow is lazy, exactly mirroring Alg_exec, so the two engines
   agree on strict/partial semantics as well as on answers. *)

[@@@ocaml.warnerror "+a"]

type chunk = Alg_env.t array

let default_chunk = 1024

type mode =
  | Tuple
  | Batch of { chunk : int }
  | Parallel of { domains : int; chunk : int }

let mode_to_string = function
  | Tuple -> "tuple"
  | Batch { chunk } ->
    if chunk = default_chunk then "batch" else Printf.sprintf "batch(chunk=%d)" chunk
  | Parallel { domains; chunk } ->
    if chunk = default_chunk then Printf.sprintf "parallel(domains=%d)" domains
    else Printf.sprintf "parallel(domains=%d,chunk=%d)" domains chunk

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "tuple" -> Some Tuple
  | "batch" -> Some (Batch { chunk = default_chunk })
  | "parallel" ->
    Some (Parallel { domains = Domain.recommended_domain_count (); chunk = default_chunk })
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Shared operator semantics (also used by the tuple engine)           *)
(* ------------------------------------------------------------------ *)

let compare_specs specs a b =
  let rec go = function
    | [] -> 0
    | spec :: rest ->
      let va = Alg_expr.eval a spec.Alg_plan.sort_key in
      let vb = Alg_expr.eval b spec.Alg_plan.sort_key in
      let c = Value.compare va vb in
      if c <> 0 then if spec.Alg_plan.ascending then c else -c else go rest
  in
  go specs

let union_vars envs =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun env ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.add seen v ();
            out := v :: !out
          end)
        (Alg_env.vars env))
    envs;
  List.rev !out

type agg_state = {
  mutable count : int;
  mutable nonnull : int;
  mutable sum : Value.t;
  mutable vmin : Value.t option;
  mutable vmax : Value.t option;
  mutable collected : Dtree.t list;  (* reversed *)
}

let new_state () =
  { count = 0; nonnull = 0; sum = Value.Int 0; vmin = None; vmax = None; collected = [] }

let feed env st = function
  | Alg_plan.A_count -> st.count <- st.count + 1
  | Alg_plan.A_count_expr e ->
    if Alg_expr.eval env e <> Value.Null then st.nonnull <- st.nonnull + 1
  | Alg_plan.A_sum e | Alg_plan.A_avg e -> (
    match Alg_expr.eval env e with
    | Value.Null -> ()
    | v ->
      st.nonnull <- st.nonnull + 1;
      st.sum <- (try Value.add st.sum v with Invalid_argument _ -> st.sum))
  | Alg_plan.A_min e -> (
    match Alg_expr.eval env e with
    | Value.Null -> ()
    | v -> (
      match st.vmin with
      | None -> st.vmin <- Some v
      | Some m -> if Value.compare v m < 0 then st.vmin <- Some v))
  | Alg_plan.A_max e -> (
    match Alg_expr.eval env e with
    | Value.Null -> ()
    | v -> (
      match st.vmax with
      | None -> st.vmax <- Some v
      | Some m -> if Value.compare v m > 0 then st.vmax <- Some v))
  | Alg_plan.A_collect e -> (
    match Alg_expr.eval_tree env e with
    | Some tree -> st.collected <- tree :: st.collected
    | None -> ())

let result st = function
  | Alg_plan.A_count -> Dtree.atom (Value.Int st.count)
  | Alg_plan.A_count_expr _ -> Dtree.atom (Value.Int st.nonnull)
  | Alg_plan.A_sum _ -> Dtree.atom (if st.nonnull = 0 then Value.Null else st.sum)
  | Alg_plan.A_avg _ ->
    Dtree.atom
      (if st.nonnull = 0 then Value.Null
       else
         match Value.to_float st.sum with
         | Some total -> Value.Float (total /. float_of_int st.nonnull)
         | None -> Value.Null)
  | Alg_plan.A_min _ -> Dtree.atom (Option.value ~default:Value.Null st.vmin)
  | Alg_plan.A_max _ -> Dtree.atom (Option.value ~default:Value.Null st.vmax)
  | Alg_plan.A_collect _ -> Dtree.node "collection" (List.rev st.collected)

let group_rows ?(size_hint = 32) keys aggs input_envs =
  let table : (Value.t list, Alg_env.t * agg_state list) Hashtbl.t =
    Hashtbl.create (max 16 size_hint)
  in
  let order = ref [] in
  List.iter
    (fun env ->
      let key = List.map (fun (_, e) -> Alg_expr.eval env e) keys in
      let _, states =
        match Hashtbl.find_opt table key with
        | Some entry -> entry
        | None ->
          let entry = (env, List.map (fun _ -> new_state ()) aggs) in
          Hashtbl.add table key entry;
          order := key :: !order;
          entry
      in
      List.iter2 (fun st (_, agg) -> feed env st agg) states aggs)
    input_envs;
  (* A keyless group is scalar aggregation: over empty input it still
     yields exactly one row of aggregate identities (count 0, null
     sum/avg/min/max, empty collection) — in both engines. *)
  if !order = [] && keys = [] then begin
    Hashtbl.add table [] (Alg_env.empty, List.map (fun _ -> new_state ()) aggs);
    order := [ [] ]
  end;
  List.rev_map
    (fun key ->
      let _, states = Hashtbl.find table key in
      let key_bindings = List.map2 (fun (var, _) v -> (var, Dtree.atom v)) keys key in
      let agg_bindings = List.map2 (fun st (var, agg) -> (var, result st agg)) states aggs in
      Alg_env.of_bindings (key_bindings @ agg_bindings))
    !order

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type op_batch = {
  ob_plan : Alg_plan.t;
  ob_vectorized : bool;
  mutable ob_fused : bool;
  mutable ob_pulled : bool;
  mutable ob_batches : int;
  mutable ob_rows : int;
  mutable ob_ms : float;
  mutable ob_idx_probe : int;
  mutable ob_idx_guide : int;
  mutable ob_idx_miss : int;
  ob_kids : op_batch list;
}

type stats = {
  chunk_size : int;
  root : op_batch;
}

let operator_vectorized = function
  | Alg_plan.Nl_join _ | Alg_plan.Merge_join _ | Alg_plan.Dep_join _
  | Alg_plan.Distinct _ -> false
  | _ -> true

let rec make_stats plan =
  {
    ob_plan = plan;
    ob_vectorized = operator_vectorized plan;
    ob_fused = false;
    ob_pulled = false;
    ob_batches = 0;
    ob_rows = 0;
    ob_ms = 0.0;
    ob_idx_probe = 0;
    ob_idx_guide = 0;
    ob_idx_miss = 0;
    ob_kids = List.map make_stats (Alg_plan.children plan);
  }

let rec stats_index acc ob =
  List.fold_left stats_index ((ob.ob_plan, ob) :: acc) ob.ob_kids

let find_stats stats plan =
  (* Physical identity: each plan node appears once in a compiled tree. *)
  Option.map snd
    (List.find_opt (fun (p, _) -> p == plan) (stats_index [] stats.root))

let actual_of_stats stats plan =
  match find_stats stats plan with
  | Some ob when ob.ob_pulled -> Some (ob.ob_rows, ob.ob_ms)
  | Some _ | None -> None

(* The [idx=probe:P/guide:G/miss:M] EXPLAIN ANALYZE cell; rendered only
   once a Navigate actually hit an index, so unindexed plans print
   exactly as before. *)
let idx_cell probe guide miss =
  if probe + guide = 0 then []
  else [ Printf.sprintf "idx=probe:%d/guide:%d/miss:%d" probe guide miss ]

let cells_of_stats stats plan =
  match find_stats stats plan with
  | None -> []
  | Some ob ->
    if not ob.ob_pulled then []
    else if ob.ob_fused then [ "fused=select" ]
    else if not ob.ob_vectorized then [ "fallback=tuple" ]
    else if ob.ob_batches = 0 then []
    else
      let b = float_of_int ob.ob_batches in
      let r = float_of_int ob.ob_rows in
      [
        Printf.sprintf "batches=%d" ob.ob_batches;
        Printf.sprintf "rows/batch=%.1f" (r /. b);
        Printf.sprintf "fill=%.2f" (r /. (b *. float_of_int stats.chunk_size));
      ]
      @ idx_cell ob.ob_idx_probe ob.ob_idx_guide ob.ob_idx_miss

let span_of_stats stats =
  let rec go ob =
    let sp = Obs_span.make (Alg_plan.node_label ob.ob_plan) in
    Obs_span.set_int sp "rows" ob.ob_rows;
    Obs_span.set_int sp "batches" ob.ob_batches;
    Obs_span.set_duration_ms sp ob.ob_ms;
    List.iter (fun k -> Obs_span.add_child sp (go k)) ob.ob_kids;
    sp
  in
  go stats.root

(* ------------------------------------------------------------------ *)
(* Chunk cursors                                                       *)
(* ------------------------------------------------------------------ *)

(* A pull iterator over non-empty chunks; None means exhausted. *)
type cursor = unit -> chunk option

type config = {
  chunk_size : int;
  sources : string -> string -> Alg_env.t Seq.t;
  fallback : Alg_plan.t -> Alg_env.t Seq.t;
  template : Alg_env.t -> Alg_plan.template -> Dtree.t;
}

let cursor_of_seq cfg (s : Alg_env.t Seq.t) : cursor =
  let state = ref s in
  fun () ->
    let buf = Array.make cfg.chunk_size Alg_env.empty in
    let rec fill i s =
      if i = cfg.chunk_size then begin
        state := s;
        i
      end
      else
        match s () with
        | Seq.Nil ->
          state := Seq.empty;
          i
        | Seq.Cons (x, rest) ->
          buf.(i) <- x;
          fill (i + 1) rest
    in
    let n = fill 0 !state in
    if n = 0 then None
    else if n = cfg.chunk_size then Some buf
    else Some (Array.sub buf 0 n)

let cursor_of_array cfg (arr : Alg_env.t array) : cursor =
  let pos = ref 0 in
  fun () ->
    let left = Array.length arr - !pos in
    if left <= 0 then None
    else begin
      let len = min cfg.chunk_size left in
      let ch = Array.sub arr !pos len in
      pos := !pos + len;
      Some ch
    end

(* Drain a cursor into one array (hash-join build, sort, group). *)
let drain_array (c : cursor) : Alg_env.t array =
  let chunks = ref [] in
  let total = ref 0 in
  let rec go () =
    match c () with
    | None -> ()
    | Some ch ->
      chunks := ch :: !chunks;
      total := !total + Array.length ch;
      go ()
  in
  go ();
  match !chunks with
  | [] -> [||]
  | [ only ] -> only
  | many ->
    let out = Array.make !total Alg_env.empty in
    let pos = ref !total in
    List.iter
      (fun ch ->
        pos := !pos - Array.length ch;
        Array.blit ch 0 out !pos (Array.length ch))
      many;
    out

(* Variable-output operators (filter, join probe, navigate/unnest) push
   rows through [step : emit -> still_more]; rows are re-packed into
   full chunks with a carry buffer spanning input chunks, so downstream
   fill stays high. *)
let rechunked cfg (step : (Alg_env.t -> unit) -> bool) : cursor =
  let buf = Array.make cfg.chunk_size Alg_env.empty in
  let len = ref 0 in
  let ready : chunk Queue.t = Queue.create () in
  let finished = ref false in
  let emit env =
    buf.(!len) <- env;
    incr len;
    if !len = cfg.chunk_size then begin
      Queue.add (Array.copy buf) ready;
      len := 0
    end
  in
  let rec next () =
    match Queue.take_opt ready with
    | Some ch -> Some ch
    | None ->
      if !finished then
        if !len > 0 then begin
          let ch = Array.sub buf 0 !len in
          len := 0;
          Some ch
        end
        else None
      else begin
        if not (step emit) then finished := true;
        next ()
      end
  in
  next

let map_chunks f (cur : cursor) : cursor =
 fun () -> Option.map (Array.map f) (cur ())

(* ------------------------------------------------------------------ *)
(* Per-operator compiled expressions                                   *)
(* ------------------------------------------------------------------ *)

(* The tuple engine interprets expression ASTs once per row; here name
   resolution and AST dispatch happen once per operator at plan
   compilation and the returned closures run per row.  Only the hot
   shapes are specialized — everything else falls back to the
   interpreter, so semantics cannot drift. *)

let compile_value e : Alg_env.t -> Value.t =
  match e with
  | Alg_expr.Const v -> fun _ -> v
  | Alg_expr.Var name -> fun env -> Alg_env.value_of env name
  | Alg_expr.Child (Alg_expr.Var name, label) ->
    fun env -> (
      match Alg_env.get env name with
      | None -> Value.Null
      | Some tree -> (
        match Dtree.first_named tree label with
        | None -> Value.Null
        | Some t -> (
          match Dtree.atom_value t with
          | Some v -> v
          | None -> Value.String (Dtree.text t))))
  | e -> fun env -> Alg_expr.eval env e

let compile_pred p : Alg_env.t -> bool =
  match p with
  | Alg_expr.Binop
      ((Alg_expr.Eq | Alg_expr.Neq | Alg_expr.Lt | Alg_expr.Le | Alg_expr.Gt | Alg_expr.Ge) as op,
       a, b) ->
    let fa = compile_value a and fb = compile_value b in
    let test =
      match op with
      | Alg_expr.Eq -> fun c -> c = 0
      | Alg_expr.Neq -> fun c -> c <> 0
      | Alg_expr.Lt -> fun c -> c < 0
      | Alg_expr.Le -> fun c -> c <= 0
      | Alg_expr.Gt -> fun c -> c > 0
      | Alg_expr.Ge -> fun c -> c >= 0
      | _ -> assert false
    in
    fun env -> (
      match Value.compare_sql (fa env) (fb env) with
      | None -> false
      | Some c -> test c)
  | p -> fun env -> Alg_expr.eval_pred env p

(* Projection with the no-op fast path: when a row already binds exactly
   the projected variables in order, reuse it instead of rebuilding. *)
let compile_project vars : Alg_env.t -> Alg_env.t =
  let names = Array.of_list vars in
  fun env -> if Alg_env.has_layout env names then env else Alg_env.project env vars

(* ------------------------------------------------------------------ *)
(* Sorting: decorate, sort, undecorate                                 *)
(* ------------------------------------------------------------------ *)

(* Every sort key is evaluated exactly once per row; the comparator then
   only touches precomputed key columns.  [compare_specs] (above) keeps
   the reference semantics; these helpers are what the engines actually
   run, and the parallel engine reuses decorate/compare for its
   sorted-run merges. *)

let sort_decorate specs (arr : Alg_env.t array) : (Value.t array * Alg_env.t) array =
  let keyfns = List.map (fun s -> compile_value s.Alg_plan.sort_key) specs in
  Array.map (fun env -> (Array.of_list (List.map (fun f -> f env) keyfns), env)) arr

let sort_compare_keys specs =
  let dirs = Array.of_list (List.map (fun s -> s.Alg_plan.ascending) specs) in
  let nkeys = Array.length dirs in
  fun ka kb ->
    let rec go i =
      if i = nkeys then 0
      else
        let c = Value.compare ka.(i) kb.(i) in
        if c <> 0 then if dirs.(i) then c else -c else go (i + 1)
    in
    go 0

let sort_array specs (arr : Alg_env.t array) : Alg_env.t array =
  match specs with
  | [] -> arr
  | _ ->
    let deco = sort_decorate specs arr in
    let cmp_keys = sort_compare_keys specs in
    Array.stable_sort (fun (ka, _) (kb, _) -> cmp_keys ka kb) deco;
    Array.map snd deco

let sort_list specs envs = Array.to_list (sort_array specs (Array.of_list envs))

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* One Navigate binding, shared by all three engines: a registered root
   with an indexable path is answered from the index subsystem (a guide
   or value probe plus a document-order merge); anything else walks the
   tree.  Answers are byte-identical either way — the index round-trips
   its result nodes through the same XML conversion the walker output
   takes.  Safe on worker domains: probes touch only atomics and
   immutable structures. *)
let navigate_matches tree path =
  match tree with
  | Dtree.Atom _ -> ([], `Miss)
  | Dtree.Node _ -> (
    match Idx_manager.try_select tree path with
    | Some (results, Idx_manager.Value) -> (results, `Probe)
    | Some (results, Idx_manager.Guide) -> (results, `Guide)
    | None ->
      ( List.map Dtree.of_xml_element
          (Xml_path.select path (Dtree.to_xml_element tree)),
        `Miss ))

type counters = {
  c_batches : Obs_metrics.counter;
  c_rows : Obs_metrics.counter;
  c_fallbacks : Obs_metrics.counter;
}

let instrument counters ob (cur : cursor) : cursor =
 fun () ->
  ob.ob_pulled <- true;
  let t0 = Obs_clock.wall_ms () in
  let r = cur () in
  ob.ob_ms <- ob.ob_ms +. (Obs_clock.wall_ms () -. t0);
  (match r with
  | Some ch ->
    ob.ob_batches <- ob.ob_batches + 1;
    ob.ob_rows <- ob.ob_rows + Array.length ch;
    Obs_metrics.inc counters.c_batches;
    Obs_metrics.inc ~by:(Array.length ch) counters.c_rows
  | None -> ());
  r

(* Compile [plan] to a cursor.  Node construction is eager (mirroring
   the tuple engine's run_hooked, where e.g. a hash join materializes
   its build side while the plan is being turned into a Seq); the
   returned cursor is the lazy part.  Build-side work is charged to the
   node's inclusive time. *)
let rec compile cfg counters ob plan : cursor =
  let t0 = Obs_clock.wall_ms () in
  let cur = compile_node cfg counters ob plan in
  ob.ob_ms <- ob.ob_ms +. (Obs_clock.wall_ms () -. t0);
  instrument counters ob cur

and compile_node cfg counters ob plan : cursor =
  let kid i = List.nth ob.ob_kids i in
  let fallback () =
    Obs_metrics.inc counters.c_fallbacks;
    cursor_of_seq cfg (cfg.fallback plan)
  in
  match plan with
  | Alg_plan.Scan { source; binding } -> cursor_of_seq cfg (cfg.sources source binding)
  | Alg_plan.Const_envs envs -> cursor_of_seq cfg (List.to_seq envs)
  | Alg_plan.Select (input, pred) ->
    let test = compile_pred pred in
    let input_cur = compile cfg counters (kid 0) input in
    rechunked cfg (fun emit ->
        match input_cur () with
        | None -> false
        | Some ch ->
          Array.iter (fun env -> if test env then emit env) ch;
          true)
  | Alg_plan.Project (Alg_plan.Select (inner, pred), vars) ->
    (* Fused select+project: one pass filters and narrows. *)
    let sel_ob = kid 0 in
    sel_ob.ob_fused <- true;
    sel_ob.ob_pulled <- true;
    let test = compile_pred pred in
    let narrow = compile_project vars in
    let input_cur = compile cfg counters (List.nth sel_ob.ob_kids 0) inner in
    rechunked cfg (fun emit ->
        match input_cur () with
        | None -> false
        | Some ch ->
          sel_ob.ob_batches <- sel_ob.ob_batches + 1;
          Array.iter
            (fun env ->
              if test env then begin
                sel_ob.ob_rows <- sel_ob.ob_rows + 1;
                emit (narrow env)
              end)
            ch;
          true)
  | Alg_plan.Project (input, vars) ->
    map_chunks (compile_project vars) (compile cfg counters (kid 0) input)
  | Alg_plan.Rename (input, mapping) ->
    map_chunks (fun env -> Alg_env.rename env mapping) (compile cfg counters (kid 0) input)
  | Alg_plan.Extend (input, var, e) ->
    map_chunks
      (fun env -> Alg_env.bind_value env var (Alg_expr.eval env e))
      (compile cfg counters (kid 0) input)
  | Alg_plan.Extend_tree (input, var, e) ->
    map_chunks
      (fun env ->
        match Alg_expr.eval_tree env e with
        | Some tree -> Alg_env.bind env var tree
        | None -> Alg_env.bind env var (Dtree.atom Value.Null))
      (compile cfg counters (kid 0) input)
  | Alg_plan.Hash_join { left; right; left_key; right_key; residual } ->
    (* Single build pass: materialize, precompute the key column with
       the compiled key expression, size the table exactly, and store
       whole buckets (walking the key column in reverse keeps each
       bucket in original build order).  Probes then touch the bucket
       list directly — no per-probe [find_all] list rebuild. *)
    let rights = drain_array (compile cfg counters (kid 1) right) in
    let n = Array.length rights in
    let rkey = compile_value right_key in
    let rkeys = Array.map rkey rights in
    let nonnull = ref 0 in
    Array.iter (fun k -> if k <> Value.Null then incr nonnull) rkeys;
    let table : (Value.t, Alg_env.t list ref) Hashtbl.t =
      Hashtbl.create (max 16 !nonnull)
    in
    for i = n - 1 downto 0 do
      match rkeys.(i) with
      | Value.Null -> ()
      | k -> (
        match Hashtbl.find_opt table k with
        | Some bucket -> bucket := rights.(i) :: !bucket
        | None -> Hashtbl.add table k (ref [ rights.(i) ]))
    done;
    let lkey = compile_value left_key in
    let keep = Option.map compile_pred residual in
    let left_cur = compile cfg counters (kid 0) left in
    rechunked cfg (fun emit ->
        match left_cur () with
        | None -> false
        | Some ch ->
          Array.iter
            (fun lenv ->
              match lkey lenv with
              | Value.Null -> ()
              | k -> (
                match Hashtbl.find_opt table k with
                | None -> ()
                | Some bucket ->
                  List.iter
                    (fun renv ->
                      let joined = Alg_env.concat lenv renv in
                      match keep with
                      | None -> emit joined
                      | Some test -> if test joined then emit joined)
                    !bucket))
            ch;
          true)
  | Alg_plan.Sort (input, specs) ->
    let arr = drain_array (compile cfg counters (kid 0) input) in
    cursor_of_array cfg (sort_array specs arr)
  | Alg_plan.Group { input; keys; aggs } ->
    let arr = drain_array (compile cfg counters (kid 0) input) in
    let rows =
      group_rows ~size_hint:(max 16 (Array.length arr / 4)) keys aggs (Array.to_list arr)
    in
    cursor_of_array cfg (Array.of_list rows)
  | Alg_plan.Union (a, b) ->
    let ca = compile cfg counters (kid 0) a in
    let cb = compile cfg counters (kid 1) b in
    let on_b = ref false in
    fun () ->
      if !on_b then cb ()
      else (
        match ca () with
        | Some ch -> Some ch
        | None ->
          on_b := true;
          cb ())
  | Alg_plan.Outer_union (a, b) ->
    (* Materialize both sides to compute the union schema, then pad. *)
    let la = Array.to_list (drain_array (compile cfg counters (kid 0) a)) in
    let lb = Array.to_list (drain_array (compile cfg counters (kid 1) b)) in
    let vars = union_vars (la @ lb) in
    cursor_of_array cfg
      (Array.of_list (List.map (fun env -> Alg_env.project env vars) (la @ lb)))
  | Alg_plan.Navigate { input; var; path; out } ->
    let input_cur = compile cfg counters (kid 0) input in
    rechunked cfg (fun emit ->
        match input_cur () with
        | None -> false
        | Some ch ->
          Array.iter
            (fun env ->
              match Alg_env.get env var with
              | None -> ()
              | Some (Dtree.Atom _) -> ()
              | Some tree ->
                let matches, how = navigate_matches tree path in
                (match how with
                | `Probe -> ob.ob_idx_probe <- ob.ob_idx_probe + 1
                | `Guide -> ob.ob_idx_guide <- ob.ob_idx_guide + 1
                | `Miss -> ob.ob_idx_miss <- ob.ob_idx_miss + 1);
                List.iter (fun m -> emit (Alg_env.bind env out m)) matches)
            ch;
          true)
  | Alg_plan.Unnest { input; var; label; out } ->
    let input_cur = compile cfg counters (kid 0) input in
    rechunked cfg (fun emit ->
        match input_cur () with
        | None -> false
        | Some ch ->
          Array.iter
            (fun env ->
              match Alg_env.get env var with
              | None -> ()
              | Some tree ->
                let kids =
                  match label with
                  | Some l -> Dtree.kids_named tree l
                  | None -> Dtree.kids tree
                in
                List.iter (fun k -> emit (Alg_env.bind env out k)) kids)
            ch;
          true)
  | Alg_plan.Construct { input; binding; template } ->
    map_chunks
      (fun env -> Alg_env.bind env binding (cfg.template env template))
      (compile cfg counters (kid 0) input)
  | Alg_plan.Limit (input, limit) ->
    let input_cur = compile cfg counters (kid 0) input in
    let remaining = ref limit in
    fun () ->
      if !remaining <= 0 then None
      else (
        match input_cur () with
        | None -> None
        | Some ch ->
          let len = Array.length ch in
          if len <= !remaining then begin
            remaining := !remaining - len;
            Some ch
          end
          else begin
            let take = !remaining in
            remaining := 0;
            Some (Array.sub ch 0 take)
          end)
  | Alg_plan.Nl_join _ | Alg_plan.Merge_join _ | Alg_plan.Dep_join _
  | Alg_plan.Distinct _ -> fallback ()

let run ?(chunk = default_chunk) ~sources ~fallback ~template plan =
  let cfg = { chunk_size = max 1 chunk; sources; fallback; template } in
  let counters =
    {
      c_batches = Obs_metrics.counter "batch.batches";
      c_rows = Obs_metrics.counter "batch.rows";
      c_fallbacks = Obs_metrics.counter "batch.fallbacks";
    }
  in
  let root = make_stats plan in
  let cur = compile cfg counters root plan in
  let chunks = ref [] in
  let rec go () =
    match cur () with
    | None -> ()
    | Some ch ->
      chunks := ch :: !chunks;
      go ()
  in
  go ();
  let envs = List.concat_map Array.to_list (List.rev !chunks) in
  (envs, { chunk_size = cfg.chunk_size; root })
