type agg =
  | A_count
  | A_count_expr of Alg_expr.t
  | A_sum of Alg_expr.t
  | A_avg of Alg_expr.t
  | A_min of Alg_expr.t
  | A_max of Alg_expr.t
  | A_collect of Alg_expr.t

type sort_spec = {
  sort_key : Alg_expr.t;
  ascending : bool;
}

type template =
  | T_node of string * (string * Alg_expr.t) list * template list
  | T_value of Alg_expr.t
  | T_tree of Alg_expr.t
  | T_splice of Alg_expr.t

type t =
  | Scan of { source : string; binding : string }
  | Const_envs of Alg_env.t list
  | Select of t * Alg_expr.t
  | Project of t * string list
  | Rename of t * (string * string) list
  | Extend of t * string * Alg_expr.t
  | Extend_tree of t * string * Alg_expr.t
  | Nl_join of { left : t; right : t; pred : Alg_expr.t option }
  | Hash_join of {
      left : t;
      right : t;
      left_key : Alg_expr.t;
      right_key : Alg_expr.t;
      residual : Alg_expr.t option;
    }
  | Merge_join of {
      left : t;
      right : t;
      left_key : Alg_expr.t;
      right_key : Alg_expr.t;
    }
  | Dep_join of {
      left : t;
      label : string;
      expand : Alg_env.t -> Alg_env.t Seq.t;
    }
  | Sort of t * sort_spec list
  | Distinct of t
  | Group of {
      input : t;
      keys : (string * Alg_expr.t) list;
      aggs : (string * agg) list;
    }
  | Union of t * t
  | Outer_union of t * t
  | Navigate of { input : t; var : string; path : Xml_path.t; out : string }
  | Unnest of { input : t; var : string; label : string option; out : string }
  | Construct of { input : t; binding : string; template : template }
  | Limit of t * int

let agg_to_string = function
  | A_count -> "count(*)"
  | A_count_expr e -> Printf.sprintf "count(%s)" (Alg_expr.to_string e)
  | A_sum e -> Printf.sprintf "sum(%s)" (Alg_expr.to_string e)
  | A_avg e -> Printf.sprintf "avg(%s)" (Alg_expr.to_string e)
  | A_min e -> Printf.sprintf "min(%s)" (Alg_expr.to_string e)
  | A_max e -> Printf.sprintf "max(%s)" (Alg_expr.to_string e)
  | A_collect e -> Printf.sprintf "collect(%s)" (Alg_expr.to_string e)

let explain plan =
  let buf = Buffer.create 256 in
  let line indent fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf (String.make (indent * 2) ' ');
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let rec go indent = function
    | Scan { source; binding } -> line indent "SCAN %s AS $%s" source binding
    | Const_envs envs -> line indent "CONST (%d envs)" (List.length envs)
    | Select (input, pred) ->
      line indent "SELECT %s" (Alg_expr.to_string pred);
      go (indent + 1) input
    | Project (input, vars) ->
      line indent "PROJECT [%s]" (String.concat ", " vars);
      go (indent + 1) input
    | Rename (input, mapping) ->
      line indent "RENAME [%s]"
        (String.concat ", " (List.map (fun (a, b) -> a ^ "->" ^ b) mapping));
      go (indent + 1) input
    | Extend (input, var, e) ->
      line indent "EXTEND $%s := %s" var (Alg_expr.to_string e);
      go (indent + 1) input
    | Extend_tree (input, var, e) ->
      line indent "EXTEND-TREE $%s := %s" var (Alg_expr.to_string e);
      go (indent + 1) input
    | Nl_join { left; right; pred } ->
      line indent "NESTED-LOOP%s"
        (match pred with Some p -> " on " ^ Alg_expr.to_string p | None -> "");
      go (indent + 1) left;
      go (indent + 1) right
    | Hash_join { left; right; left_key; right_key; residual } ->
      line indent "HASH-JOIN %s = %s%s" (Alg_expr.to_string left_key)
        (Alg_expr.to_string right_key)
        (match residual with Some p -> " residual " ^ Alg_expr.to_string p | None -> "");
      go (indent + 1) left;
      go (indent + 1) right
    | Merge_join { left; right; left_key; right_key } ->
      line indent "MERGE-JOIN %s = %s" (Alg_expr.to_string left_key)
        (Alg_expr.to_string right_key);
      go (indent + 1) left;
      go (indent + 1) right
    | Dep_join { left; label; expand = _ } ->
      line indent "DEPENDENT-JOIN [%s]" label;
      go (indent + 1) left
    | Sort (input, specs) ->
      line indent "SORT [%s]"
        (String.concat ", "
           (List.map
              (fun s ->
                Alg_expr.to_string s.sort_key ^ if s.ascending then "" else " desc")
              specs));
      go (indent + 1) input
    | Distinct input ->
      line indent "DISTINCT";
      go (indent + 1) input
    | Group { input; keys; aggs } ->
      line indent "GROUP keys[%s] aggs[%s]"
        (String.concat ", "
           (List.map (fun (v, e) -> v ^ ":" ^ Alg_expr.to_string e) keys))
        (String.concat ", " (List.map (fun (v, a) -> v ^ ":" ^ agg_to_string a) aggs));
      go (indent + 1) input
    | Union (a, b) ->
      line indent "UNION";
      go (indent + 1) a;
      go (indent + 1) b
    | Outer_union (a, b) ->
      line indent "OUTER-UNION";
      go (indent + 1) a;
      go (indent + 1) b
    | Navigate { input; var; path; out } ->
      line indent "NAVIGATE $%s %s AS $%s" var (Xml_path.to_string path) out;
      go (indent + 1) input
    | Unnest { input; var; label; out } ->
      line indent "UNNEST $%s%s AS $%s" var
        (match label with Some l -> "/" ^ l | None -> "")
        out;
      go (indent + 1) input
    | Construct { input; binding; template = _ } ->
      line indent "CONSTRUCT AS $%s" binding;
      go (indent + 1) input
    | Limit (input, n) ->
      line indent "LIMIT %d" n;
      go (indent + 1) input
  in
  go 0 plan;
  Buffer.contents buf

let free_sources plan =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      out := s :: !out
    end
  in
  let rec go = function
    | Scan { source; _ } -> add source
    | Const_envs _ -> ()
    | Select (i, _) | Project (i, _) | Rename (i, _) | Extend (i, _, _)
    | Extend_tree (i, _, _) | Sort (i, _) | Distinct i | Limit (i, _) -> go i
    | Nl_join { left; right; _ } | Hash_join { left; right; _ }
    | Merge_join { left; right; _ } ->
      go left;
      go right
    | Dep_join { left; _ } -> go left
    | Group { input; _ } | Navigate { input; _ } | Unnest { input; _ }
    | Construct { input; _ } -> go input
    | Union (a, b) | Outer_union (a, b) ->
      go a;
      go b
  in
  go plan;
  List.rev !out

let rec output_vars = function
  | Scan { binding; _ } -> [ binding ]
  | Const_envs envs -> (
    match envs with
    | [] -> []
    | env :: _ -> Alg_env.vars env)
  | Select (i, _) | Sort (i, _) | Distinct i | Limit (i, _) -> output_vars i
  | Project (_, vars) -> vars
  | Rename (i, mapping) ->
    List.map
      (fun v -> match List.assoc_opt v mapping with Some v' -> v' | None -> v)
      (output_vars i)
  | Extend (i, var, _) | Extend_tree (i, var, _) ->
    let vs = output_vars i in
    if List.mem var vs then vs else vs @ [ var ]
  | Nl_join { left; right; _ } | Hash_join { left; right; _ } | Merge_join { left; right; _ } ->
    let l = output_vars left in
    l @ List.filter (fun v -> not (List.mem v l)) (output_vars right)
  | Dep_join { left; _ } -> output_vars left
  | Group { keys; aggs; _ } -> List.map fst keys @ List.map fst aggs
  | Union (a, b) | Outer_union (a, b) ->
    let l = output_vars a in
    l @ List.filter (fun v -> not (List.mem v l)) (output_vars b)
  | Navigate { input; out; _ } | Unnest { input; out; _ } ->
    let vs = output_vars input in
    if List.mem out vs then vs else vs @ [ out ]
  | Construct { input; binding; _ } ->
    let vs = output_vars input in
    if List.mem binding vs then vs else vs @ [ binding ]
