type agg =
  | A_count
  | A_count_expr of Alg_expr.t
  | A_sum of Alg_expr.t
  | A_avg of Alg_expr.t
  | A_min of Alg_expr.t
  | A_max of Alg_expr.t
  | A_collect of Alg_expr.t

type sort_spec = {
  sort_key : Alg_expr.t;
  ascending : bool;
}

type template =
  | T_node of string * (string * Alg_expr.t) list * template list
  | T_value of Alg_expr.t
  | T_tree of Alg_expr.t
  | T_splice of Alg_expr.t

type t =
  | Scan of { source : string; binding : string }
  | Const_envs of Alg_env.t list
  | Select of t * Alg_expr.t
  | Project of t * string list
  | Rename of t * (string * string) list
  | Extend of t * string * Alg_expr.t
  | Extend_tree of t * string * Alg_expr.t
  | Nl_join of { left : t; right : t; pred : Alg_expr.t option }
  | Hash_join of {
      left : t;
      right : t;
      left_key : Alg_expr.t;
      right_key : Alg_expr.t;
      residual : Alg_expr.t option;
    }
  | Merge_join of {
      left : t;
      right : t;
      left_key : Alg_expr.t;
      right_key : Alg_expr.t;
    }
  | Dep_join of {
      left : t;
      label : string;
      expand : Alg_env.t -> Alg_env.t Seq.t;
    }
  | Sort of t * sort_spec list
  | Distinct of t
  | Group of {
      input : t;
      keys : (string * Alg_expr.t) list;
      aggs : (string * agg) list;
    }
  | Union of t * t
  | Outer_union of t * t
  | Navigate of { input : t; var : string; path : Xml_path.t; out : string }
  | Unnest of { input : t; var : string; label : string option; out : string }
  | Construct of { input : t; binding : string; template : template }
  | Limit of t * int

let agg_to_string = function
  | A_count -> "count(*)"
  | A_count_expr e -> Printf.sprintf "count(%s)" (Alg_expr.to_string e)
  | A_sum e -> Printf.sprintf "sum(%s)" (Alg_expr.to_string e)
  | A_avg e -> Printf.sprintf "avg(%s)" (Alg_expr.to_string e)
  | A_min e -> Printf.sprintf "min(%s)" (Alg_expr.to_string e)
  | A_max e -> Printf.sprintf "max(%s)" (Alg_expr.to_string e)
  | A_collect e -> Printf.sprintf "collect(%s)" (Alg_expr.to_string e)

let node_label = function
  | Scan { source; binding } -> Printf.sprintf "SCAN %s AS $%s" source binding
  | Const_envs envs -> Printf.sprintf "CONST (%d envs)" (List.length envs)
  | Select (_, pred) -> Printf.sprintf "SELECT %s" (Alg_expr.to_string pred)
  | Project (_, vars) -> Printf.sprintf "PROJECT [%s]" (String.concat ", " vars)
  | Rename (_, mapping) ->
    Printf.sprintf "RENAME [%s]"
      (String.concat ", " (List.map (fun (a, b) -> a ^ "->" ^ b) mapping))
  | Extend (_, var, e) -> Printf.sprintf "EXTEND $%s := %s" var (Alg_expr.to_string e)
  | Extend_tree (_, var, e) ->
    Printf.sprintf "EXTEND-TREE $%s := %s" var (Alg_expr.to_string e)
  | Nl_join { pred; _ } ->
    Printf.sprintf "NESTED-LOOP%s"
      (match pred with Some p -> " on " ^ Alg_expr.to_string p | None -> "")
  | Hash_join { left_key; right_key; residual; _ } ->
    Printf.sprintf "HASH-JOIN %s = %s%s" (Alg_expr.to_string left_key)
      (Alg_expr.to_string right_key)
      (match residual with Some p -> " residual " ^ Alg_expr.to_string p | None -> "")
  | Merge_join { left_key; right_key; _ } ->
    Printf.sprintf "MERGE-JOIN %s = %s" (Alg_expr.to_string left_key)
      (Alg_expr.to_string right_key)
  | Dep_join { label; _ } -> Printf.sprintf "DEPENDENT-JOIN [%s]" label
  | Sort (_, specs) ->
    Printf.sprintf "SORT [%s]"
      (String.concat ", "
         (List.map
            (fun s -> Alg_expr.to_string s.sort_key ^ if s.ascending then "" else " desc")
            specs))
  | Distinct _ -> "DISTINCT"
  | Group { keys; aggs; _ } ->
    Printf.sprintf "GROUP keys[%s] aggs[%s]"
      (String.concat ", " (List.map (fun (v, e) -> v ^ ":" ^ Alg_expr.to_string e) keys))
      (String.concat ", " (List.map (fun (v, a) -> v ^ ":" ^ agg_to_string a) aggs))
  | Union _ -> "UNION"
  | Outer_union _ -> "OUTER-UNION"
  | Navigate { var; path; out; _ } ->
    Printf.sprintf "NAVIGATE $%s %s AS $%s" var (Xml_path.to_string path) out
  | Unnest { var; label; out; _ } ->
    Printf.sprintf "UNNEST $%s%s AS $%s" var
      (match label with Some l -> "/" ^ l | None -> "")
      out
  | Construct { binding; _ } -> Printf.sprintf "CONSTRUCT AS $%s" binding
  | Limit (_, n) -> Printf.sprintf "LIMIT %d" n

let children = function
  | Scan _ | Const_envs _ -> []
  | Select (i, _) | Project (i, _) | Rename (i, _) | Extend (i, _, _)
  | Extend_tree (i, _, _) | Sort (i, _) | Distinct i | Limit (i, _) -> [ i ]
  | Nl_join { left; right; _ } | Hash_join { left; right; _ }
  | Merge_join { left; right; _ } -> [ left; right ]
  | Dep_join { left; _ } -> [ left ]
  | Group { input; _ } | Navigate { input; _ } | Unnest { input; _ }
  | Construct { input; _ } -> [ input ]
  | Union (a, b) | Outer_union (a, b) -> [ a; b ]

let explain plan =
  let buf = Buffer.create 256 in
  let rec go indent p =
    Buffer.add_string buf (String.make (indent * 2) ' ');
    Buffer.add_string buf (node_label p);
    Buffer.add_char buf '\n';
    List.iter (go (indent + 1)) (children p)
  in
  go 0 plan;
  Buffer.contents buf

let free_sources plan =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      out := s :: !out
    end
  in
  let rec go = function
    | Scan { source; _ } -> add source
    | Const_envs _ -> ()
    | Select (i, _) | Project (i, _) | Rename (i, _) | Extend (i, _, _)
    | Extend_tree (i, _, _) | Sort (i, _) | Distinct i | Limit (i, _) -> go i
    | Nl_join { left; right; _ } | Hash_join { left; right; _ }
    | Merge_join { left; right; _ } ->
      go left;
      go right
    | Dep_join { left; _ } -> go left
    | Group { input; _ } | Navigate { input; _ } | Unnest { input; _ }
    | Construct { input; _ } -> go input
    | Union (a, b) | Outer_union (a, b) ->
      go a;
      go b
  in
  go plan;
  List.rev !out

let rec output_vars = function
  | Scan { binding; _ } -> [ binding ]
  | Const_envs envs -> (
    match envs with
    | [] -> []
    | env :: _ -> Alg_env.vars env)
  | Select (i, _) | Sort (i, _) | Distinct i | Limit (i, _) -> output_vars i
  | Project (_, vars) -> vars
  | Rename (i, mapping) ->
    List.map
      (fun v -> match List.assoc_opt v mapping with Some v' -> v' | None -> v)
      (output_vars i)
  | Extend (i, var, _) | Extend_tree (i, var, _) ->
    let vs = output_vars i in
    if List.mem var vs then vs else vs @ [ var ]
  | Nl_join { left; right; _ } | Hash_join { left; right; _ } | Merge_join { left; right; _ } ->
    let l = output_vars left in
    l @ List.filter (fun v -> not (List.mem v l)) (output_vars right)
  | Dep_join { left; _ } -> output_vars left
  | Group { keys; aggs; _ } -> List.map fst keys @ List.map fst aggs
  | Union (a, b) | Outer_union (a, b) ->
    let l = output_vars a in
    l @ List.filter (fun v -> not (List.mem v l)) (output_vars b)
  | Navigate { input; out; _ } | Unnest { input; out; _ } ->
    let vs = output_vars input in
    if List.mem out vs then vs else vs @ [ out ]
  | Construct { input; binding; _ } ->
    let vs = output_vars input in
    if List.mem binding vs then vs else vs @ [ binding ]
