(** View selection under a storage budget (section 3.3).

    The paper flags this as the open research problem of its hybrid
    architecture: "algorithms that decide which data (and over which
    sources) need to be materialized", complicated by a query load that
    shifts over time.  We implement the standard greedy benefit-per-unit-
    storage heuristic (the shape of Agrawal et al.'s index/view advisor,
    the paper's [2]), applied to observed per-view statistics, plus an
    adaptive loop that re-selects when the observed load drifts. *)

type candidate = {
  cand_view : string;
  storage : int;           (** tree nodes the materialization occupies *)
  virtual_cost : float;    (** per-query cost when answered from sources *)
  local_cost : float;      (** per-query cost when answered from the copy *)
}

type workload = (string * int) list
(** view name -> number of queries that would use it *)

type selection = {
  chosen : string list;
  total_storage : int;
  total_benefit : float;   (** saved cost over the workload *)
}

val benefit : candidate -> int -> float
(** [benefit c freq = freq * (virtual_cost - local_cost)], floored at
    0. *)

val select : budget:int -> candidate list -> workload -> selection
(** Greedy by benefit/storage ratio; candidates with non-positive
    benefit or that would overflow the remaining budget are skipped.
    Deterministic: ties break on view name. *)

val optimal_candidate_cap : int
(** Above this many candidates {!select_optimal} abandons subset
    enumeration (2^n) and answers with the greedy {!select} instead. *)

val select_optimal : budget:int -> candidate list -> workload -> selection
(** Exhaustive 0/1-knapsack reference (exponential — for small candidate
    sets in tests and the ablation bench).  Inputs larger than
    {!optimal_candidate_cap} fall back to {!select} so a mis-sized call
    cannot hang the process. *)

val evaluate : candidate list -> workload -> string list -> float
(** Total workload cost when exactly the given views are materialized
    (others answered virtually). *)

(** {1 Adaptive re-selection} *)

type monitor

val monitor : budget:int -> candidate list -> monitor

val observe : monitor -> string -> unit
(** Record that a query used the named view. *)

val current_selection : monitor -> selection
(** Greedy selection over the observations so far. *)

val reselect_if_drifted : monitor -> threshold:float -> selection option
(** Re-run selection; [Some] when the chosen set changed and the
    benefit improvement over the previous selection's benefit exceeds
    [threshold] (a fraction, e.g. 0.1 = 10%). *)
