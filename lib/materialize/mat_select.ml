type candidate = {
  cand_view : string;
  storage : int;
  virtual_cost : float;
  local_cost : float;
}

type workload = (string * int) list

type selection = {
  chosen : string list;
  total_storage : int;
  total_benefit : float;
}

let benefit c freq =
  max 0.0 (float_of_int freq *. (c.virtual_cost -. c.local_cost))

let freq_of workload name =
  Option.value ~default:0 (List.assoc_opt name workload)

let select ~budget candidates workload =
  let scored =
    List.filter_map
      (fun c ->
        let b = benefit c (freq_of workload c.cand_view) in
        if b <= 0.0 || c.storage <= 0 then None
        else Some (c, b, b /. float_of_int c.storage))
      candidates
  in
  let ordered =
    List.sort
      (fun (c1, _, r1) (c2, _, r2) ->
        let c = Float.compare r2 r1 in
        if c <> 0 then c else String.compare c1.cand_view c2.cand_view)
      scored
  in
  let chosen, storage, total =
    List.fold_left
      (fun (chosen, used, total) (c, b, _) ->
        if used + c.storage <= budget then (c.cand_view :: chosen, used + c.storage, total +. b)
        else (chosen, used, total))
      ([], 0, 0.0) ordered
  in
  { chosen = List.sort String.compare chosen; total_storage = storage; total_benefit = total }

(* Subset enumeration is 2^n: beyond this many candidates the exhaustive
   reference would stall the caller (20 candidates is already ~1M
   subsets), so larger inputs fall back to the greedy heuristic. *)
let optimal_candidate_cap = 20

let select_optimal ~budget candidates workload =
  if List.length candidates > optimal_candidate_cap then
    select ~budget candidates workload
  else
  let arr = Array.of_list candidates in
  let n = Array.length arr in
  let best = ref { chosen = []; total_storage = 0; total_benefit = 0.0 } in
  (* Enumerate subsets (candidates are few in any sane configuration). *)
  let rec go i chosen storage bene =
    if bene > !best.total_benefit then
      best := { chosen = List.sort String.compare chosen; total_storage = storage; total_benefit = bene };
    if i < n then begin
      let c = arr.(i) in
      if storage + c.storage <= budget then
        go (i + 1) (c.cand_view :: chosen) (storage + c.storage)
          (bene +. benefit c (freq_of workload c.cand_view));
      go (i + 1) chosen storage bene
    end
  in
  go 0 [] 0 0.0;
  !best

let evaluate candidates workload materialized =
  List.fold_left
    (fun acc c ->
      let freq = float_of_int (freq_of workload c.cand_view) in
      let per_query =
        if List.mem c.cand_view materialized then c.local_cost else c.virtual_cost
      in
      acc +. (freq *. per_query))
    0.0 candidates

(* ------------------------------------------------------------------ *)
(* Adaptive monitor                                                    *)
(* ------------------------------------------------------------------ *)

type monitor = {
  budget : int;
  candidates : candidate list;
  counts : (string, int) Hashtbl.t;
  mutable last : selection;
}

let monitor ~budget candidates =
  { budget; candidates; counts = Hashtbl.create 16;
    last = { chosen = []; total_storage = 0; total_benefit = 0.0 } }

let observe m view =
  Hashtbl.replace m.counts view (1 + Option.value ~default:0 (Hashtbl.find_opt m.counts view))

let observed_workload m = Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.counts []

let current_selection m = select ~budget:m.budget m.candidates (observed_workload m)

let reselect_if_drifted m ~threshold =
  let fresh = current_selection m in
  if fresh.chosen = m.last.chosen then None
  else begin
    let improvement =
      if m.last.total_benefit <= 0.0 then infinity
      else (fresh.total_benefit -. m.last.total_benefit) /. m.last.total_benefit
    in
    if improvement > threshold then begin
      m.last <- fresh;
      Some fresh
    end
    else None
  end
