(** Answering view queries from {e subsuming} materialized views.

    [Mat_store] answers a view query only when that exact name was
    materialized.  This module extends the lookup with containment: a
    query against view [V] can be answered from a materialized view [W]
    when [V]'s single definition is the same pattern/construct as [W]'s
    but with {e at least as restrictive} conditions — the classic
    answering-queries-using-views shape, restricted to the fragment we
    can verify:

    - both definitions share the same clause list and construct
      template (syntactic equality), no ORDER BY / LIMIT;
    - every [W] condition either appears verbatim among [V]'s or is
      implied by them (checked by translating both sides to SQL over
      identity bindings and reusing {!Sem_pred.contains});
    - the conditions [V] adds beyond [W] mention only variables that the
      construct template exposes recoverably (a [tag=$v] attribute or a
      single [<tag>$v</tag>] child of the root, with distinct child
      tags), so they can be re-evaluated against [W]'s stored trees.

    The answer is then [W]'s extent filtered by the extra conditions,
    in [W]'s stored order — which equals [V]'s order because both
    definitions enumerate the same clause bindings.  Hits are counted
    as [semcache.view_hits]. *)

val subsumes : outer:Xq_ast.query -> inner:Xq_ast.query -> bool
(** Does every answer of [inner] appear in [outer]'s extent, such that
    filtering reproduces [inner] exactly?  (Conservative: [false] when
    the check cannot be decided.) *)

val filter_trees :
  outer:Xq_ast.query -> inner:Xq_ast.query -> Dtree.t list -> Dtree.t list option
(** Apply [inner]'s extra conditions to [outer]'s materialized trees.
    [None] when some tree does not expose a needed variable (the caller
    must then fall back to recomputation). *)

val answer :
  Mat_store.t -> sem:Sem_cache.t -> Med_catalog.t -> string -> Dtree.t list option
(** [answer store ~sem cat vname] scans the store for a materialized
    view subsuming catalog view [vname] and returns the filtered extent,
    honouring the subsuming entry's refresh policy.  [None] when no
    materialized view qualifies. *)
