(** Materialized views over mediated schemas (section 3.3).

    "One does not design a warehouse schema.  Instead, one materializes
    views over the mediated schema."  Each entry stores the result trees
    of one catalog view, together with a refresh policy; the query
    processor (the [Nimble] facade) consults the store before going to
    the sources, which is the paper's "the query processor knows to make
    use of local copies of data when available".

    Time is logical: the caller ticks the store once per query, and
    periodic policies count queries, which keeps runs deterministic. *)

type policy =
  | Manual             (** refresh only when {!refresh} is called *)
  | On_access          (** refresh every time the view is read (always fresh) *)
  | Every_n_queries of int
      (** refresh when the view is read and at least n queries have been
          ticked since its last refresh *)

type entry = {
  view_name : string;
  policy : policy;
  mutable data : Dtree.t list;
  mutable version : int;          (** number of refreshes *)
  mutable refreshed_at : int;     (** logical time of last refresh *)
  mutable hits : int;             (** reads served from the copy *)
}

type t

exception Mat_error of string

val create : Med_catalog.t -> t

val tick : t -> unit
(** Advance the logical clock (call once per user query). *)

val now : t -> int

val materialize : t -> ?policy:policy -> string -> entry
(** Compute the named catalog view through the mediator and store the
    result.  @raise Mat_error for unknown views. *)

val lookup : t -> string -> Dtree.t list option
(** The materialized trees of a view, honouring its policy ([On_access]
    and due [Every_n_queries] entries refresh first).  [None] when the
    view is not materialized. *)

val peek : t -> string -> entry option
(** The entry without triggering any refresh. *)

val refresh : t -> string -> unit
(** Force a recomputation.  @raise Mat_error for unknown entries. *)

val refresh_all : t -> unit

val drop : t -> string -> unit

val materialized_names : t -> string list

val storage_used : t -> int
(** Total tree-node count across entries — the storage-budget unit of
    the view-selection algorithm. *)

val entry_size : entry -> int
