(* Containment-based view answering: serve a view query from a
   materialized view that subsumes it, filtering locally instead of
   recomputing through the mediator. *)

(* Conditions we can re-evaluate against a stored tree must read
   variables as atomic values only — tree accessors could see a
   different shape after template instantiation re-wrapped the
   binding. *)
let rec plain_expr (e : Alg_expr.t) =
  match e with
  | Alg_expr.Var _ | Alg_expr.Const _ -> true
  | Alg_expr.Child _ | Alg_expr.Attr _ | Alg_expr.Text _ | Alg_expr.Label _ ->
    false
  | Alg_expr.Binop (_, a, b) -> plain_expr a && plain_expr b
  | Alg_expr.Not a | Alg_expr.Neg a | Alg_expr.Is_null a | Alg_expr.Like (a, _)
    ->
    plain_expr a
  | Alg_expr.Call (_, args) -> List.for_all plain_expr args

(* Variable extractors over the construct template: where in a result
   tree does the value of [$v] reappear?  Only shapes whose round trip
   is exact qualify — a [tag=$v] root attribute, or a single
   [<tag>$v</tag>] root child with [tag] unique among the children.
   Any other root child shape (splices, subqueries, nested elements)
   could manufacture colliding children, so the whole template is
   rejected. *)
type extractor = Dtree.t -> Dtree.t option

let extractors (tpl : Xq_ast.template) : (string * extractor) list option =
  match tpl with
  | Xq_ast.Tpl_element (_, rattrs, kids) ->
    let attr_ex =
      List.filter_map
        (fun (aname, ta) ->
          match ta with
          | Xq_ast.TA_var v ->
            Some
              ( v,
                fun tree ->
                  Option.map Dtree.atom (Dtree.attr tree aname) )
          | _ -> None)
        rattrs
    in
    let ok_kid = function
      | Xq_ast.Tpl_element (_, [], [ _ ]) | Xq_ast.Tpl_text _ -> true
      | _ -> false
    in
    let ctags =
      List.filter_map
        (function Xq_ast.Tpl_element (c, _, _) -> Some c | _ -> None)
        kids
    in
    if
      (not (List.for_all ok_kid kids))
      || List.length ctags <> List.length (List.sort_uniq compare ctags)
    then None
    else
      let kid_ex =
        List.filter_map
          (function
            | Xq_ast.Tpl_element (ctag, [], [ Xq_ast.Tpl_var v ]) ->
              Some
                ( v,
                  fun tree ->
                    match Dtree.first_named tree ctag with
                    | Some el -> (
                      match Dtree.kids el with [ k ] -> Some k | _ -> None)
                    | None -> None )
            | _ -> None)
          kids
      in
      Some (attr_ex @ kid_ex)
  | _ -> None

(* The conditions [inner] imposes beyond [outer]'s, syntactically. *)
let delta_conditions ~(outer : Xq_ast.query) ~(inner : Xq_ast.query) =
  List.filter
    (fun c -> not (List.mem c outer.Xq_ast.conditions))
    inner.Xq_ast.conditions

(* Every [outer] condition must hold on all of [inner]'s answers:
   verbatim membership, or implication checked through the SQL
   predicate-containment machinery over identity bindings. *)
let conditions_contained ~(outer : Xq_ast.query) ~(inner : Xq_ast.query) =
  let leftover =
    List.filter
      (fun c -> not (List.mem c inner.Xq_ast.conditions))
      outer.Xq_ast.conditions
  in
  leftover = []
  ||
  let binds = List.map (fun v -> (v, v)) (Xq_ast.query_vars outer) in
  let translate c = Med_sqlgen.translate_condition binds c in
  match
    List.fold_left
      (fun acc c ->
        match (acc, translate c) with
        | Some l, Some e -> Some (e :: l)
        | _ -> None)
      (Some []) leftover
  with
  | None -> false
  | Some outer_exprs ->
    let inner_exprs = List.filter_map translate inner.Xq_ast.conditions in
    (* Untranslatable inner conditions only shrink the inner extent, so
       dropping them from the analysis is conservative. *)
    let outer_pred = Sem_pred.analyze (Sql_ast.conjoin outer_exprs) in
    let inner_pred = Sem_pred.analyze (Sql_ast.conjoin inner_exprs) in
    Sem_pred.contains ~outer:outer_pred ~inner:inner_pred

let subsumes ~(outer : Xq_ast.query) ~(inner : Xq_ast.query) =
  inner.Xq_ast.order_by = []
  && inner.Xq_ast.limit = None
  && outer.Xq_ast.order_by = []
  && outer.Xq_ast.limit = None
  && inner.Xq_ast.clauses = outer.Xq_ast.clauses
  && inner.Xq_ast.construct = outer.Xq_ast.construct
  &&
  let delta = delta_conditions ~outer ~inner in
  List.for_all plain_expr delta
  && (match extractors outer.Xq_ast.construct with
     | None -> delta = []
     | Some exs ->
       List.for_all
         (fun c ->
           List.for_all
             (fun v -> List.mem_assoc v exs)
             (Alg_expr.free_vars c))
         delta)
  && conditions_contained ~outer ~inner

let filter_trees ~(outer : Xq_ast.query) ~(inner : Xq_ast.query) trees =
  match delta_conditions ~outer ~inner with
  | [] -> Some trees
  | delta -> (
    match extractors outer.Xq_ast.construct with
    | None -> None
    | Some exs ->
      let vars =
        List.sort_uniq compare (List.concat_map Alg_expr.free_vars delta)
      in
      let keep tree =
        let env =
          List.fold_left
            (fun env v ->
              match env with
              | None -> None
              | Some env -> (
                match List.assoc_opt v exs with
                | None -> None
                | Some ex -> (
                  match ex tree with
                  | Some sub -> Some (Alg_env.bind env v sub)
                  | None -> None)))
            (Some Alg_env.empty) vars
        in
        match env with
        | None -> None
        | Some env ->
          Some (List.for_all (fun c -> Alg_expr.eval_pred env c) delta)
      in
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | tree :: rest -> (
          match keep tree with
          | None -> None (* tree does not expose a needed variable *)
          | Some true -> go (tree :: acc) rest
          | Some false -> go acc rest)
      in
      go [] trees)

let answer store ~sem cat vname =
  match Med_catalog.find_view cat vname with
  | None -> None
  | Some v -> (
    match v.Med_catalog.definitions with
    | [ inner ] ->
      let rec try_names = function
        | [] -> None
        | wname :: rest -> (
          if wname = vname then try_names rest
          else
            match Med_catalog.find_view cat wname with
            | Some { Med_catalog.definitions = [ outer ]; _ }
              when subsumes ~outer ~inner -> (
              match Mat_store.lookup store wname with
              | Some trees -> (
                match filter_trees ~outer ~inner trees with
                | Some kept ->
                  Sem_cache.note_view_hit sem;
                  Some kept
                | None -> try_names rest)
              | None -> try_names rest)
            | _ -> try_names rest)
      in
      try_names (Mat_store.materialized_names store)
    | _ -> None)
