type stats = {
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable evictions : int;
  mutable expirations : int;
  mutable invalidations : int;
}

(* Local per-cache stats stay the source of truth; the process-wide
   registry mirrors them so cache behaviour shows up in `stats` reports
   next to source and mediator counters. *)
let m_hits = Obs_metrics.counter "cache.hits"
let m_misses = Obs_metrics.counter "cache.misses"
let m_evictions = Obs_metrics.counter "cache.evictions"
let m_expirations = Obs_metrics.counter "cache.expirations"
let m_invalidations = Obs_metrics.counter "cache.invalidations"

type entry = {
  value : Dtree.t list;
  entry_sources : string list;
  born_vms : float;
  mutable last_used : int;
}

type t = {
  cap : int;
  ttl_ms : float option;
  table : (string, entry) Hashtbl.t;
  st : stats;
  mutable clock : int;
}

let create ?ttl_ms ~capacity () =
  {
    cap = capacity;
    ttl_ms;
    table = Hashtbl.create (max 1 capacity);
    st =
      {
        cache_hits = 0;
        cache_misses = 0;
        evictions = 0;
        expirations = 0;
        invalidations = 0;
      };
    clock = 0;
  }

let touch t entry =
  t.clock <- t.clock + 1;
  entry.last_used <- t.clock

(* Freshness ages on the *virtual* clock, so TTL semantics are
   deterministic under the network simulator (and in tests). *)
let expired t entry =
  match t.ttl_ms with
  | None -> false
  | Some ttl -> Obs_clock.virtual_ms () -. entry.born_vms > ttl

let get t key =
  match Hashtbl.find_opt t.table key with
  | Some entry when expired t entry ->
    Hashtbl.remove t.table key;
    t.st.expirations <- t.st.expirations + 1;
    Obs_metrics.inc m_expirations;
    t.st.cache_misses <- t.st.cache_misses + 1;
    Obs_metrics.inc m_misses;
    None
  | Some entry ->
    t.st.cache_hits <- t.st.cache_hits + 1;
    Obs_metrics.inc m_hits;
    touch t entry;
    Some entry.value
  | None ->
    t.st.cache_misses <- t.st.cache_misses + 1;
    Obs_metrics.inc m_misses;
    None

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key entry ->
      match !victim with
      | None -> victim := Some (key, entry.last_used)
      | Some (_, lu) -> if entry.last_used < lu then victim := Some (key, entry.last_used))
    t.table;
  match !victim with
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.st.evictions <- t.st.evictions + 1;
    Obs_metrics.inc m_evictions
  | None -> ()

let put t ?(sources = []) key value =
  if t.cap > 0 then begin
    if (not (Hashtbl.mem t.table key)) && Hashtbl.length t.table >= t.cap then evict_lru t;
    let entry =
      { value; entry_sources = sources; born_vms = Obs_clock.virtual_ms (); last_used = 0 }
    in
    touch t entry;
    Hashtbl.replace t.table key entry
  end

let get_or_compute t ?sources key compute =
  match get t key with
  | Some v -> v
  | None ->
    let v = compute () in
    put t ?sources key v;
    v

let invalidate t key =
  if Hashtbl.mem t.table key then begin
    Hashtbl.remove t.table key;
    t.st.invalidations <- t.st.invalidations + 1;
    Obs_metrics.inc m_invalidations;
    true
  end
  else false

let invalidate_source t source =
  let victims =
    Hashtbl.fold
      (fun key entry acc -> if List.mem source entry.entry_sources then key :: acc else acc)
      t.table []
  in
  List.iter (fun k -> Hashtbl.remove t.table k) victims;
  t.st.invalidations <- t.st.invalidations + List.length victims;
  Obs_metrics.inc ~by:(List.length victims) m_invalidations;
  List.length victims

let clear t = Hashtbl.reset t.table

let size t = Hashtbl.length t.table
let capacity t = t.cap
let ttl_ms t = t.ttl_ms
let stats t = t.st

let hit_rate t =
  let total = t.st.cache_hits + t.st.cache_misses in
  if total = 0 then 0.0 else float_of_int t.st.cache_hits /. float_of_int total
