type policy =
  | Manual
  | On_access
  | Every_n_queries of int

type entry = {
  view_name : string;
  policy : policy;
  mutable data : Dtree.t list;
  mutable version : int;
  mutable refreshed_at : int;
  mutable hits : int;
}

type t = {
  catalog : Med_catalog.t;
  entries : (string, entry) Hashtbl.t;
  mutable clock : int;
}

exception Mat_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Mat_error m)) fmt

let create catalog = { catalog; entries = Hashtbl.create 16; clock = 0 }

let tick t = t.clock <- t.clock + 1

let now t = t.clock

let compute t view_name =
  match Med_catalog.find_view t.catalog view_name with
  | None -> fail "unknown view %s" view_name
  | Some v -> List.concat_map (Med_exec.run t.catalog) v.Med_catalog.definitions

(* Materialized data is indexable: (re)registering under "view:<name>"
   rebuilds or invalidates the structural/value indexes with the data. *)
let idx_name view_name = "view:" ^ view_name

let materialize t ?(policy = Manual) view_name =
  let data = compute t view_name in
  let entry =
    { view_name; policy; data; version = 1; refreshed_at = t.clock; hits = 0 }
  in
  Hashtbl.replace t.entries view_name entry;
  Idx_manager.register (idx_name view_name) data;
  entry

let do_refresh t entry =
  entry.data <- compute t entry.view_name;
  entry.version <- entry.version + 1;
  entry.refreshed_at <- t.clock;
  Idx_manager.register (idx_name entry.view_name) entry.data

let due t entry =
  match entry.policy with
  | Manual -> false
  | On_access -> true
  | Every_n_queries n -> t.clock - entry.refreshed_at >= n

let lookup t view_name =
  match Hashtbl.find_opt t.entries view_name with
  | None -> None
  | Some entry ->
    if due t entry then do_refresh t entry;
    entry.hits <- entry.hits + 1;
    Some entry.data

let peek t view_name = Hashtbl.find_opt t.entries view_name

let refresh t view_name =
  match Hashtbl.find_opt t.entries view_name with
  | None -> fail "view %s is not materialized" view_name
  | Some entry -> do_refresh t entry

let refresh_all t = Hashtbl.iter (fun _ entry -> do_refresh t entry) t.entries

let drop t view_name =
  Hashtbl.remove t.entries view_name;
  Idx_manager.unregister (idx_name view_name)

let materialized_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [] |> List.sort String.compare

let entry_size entry =
  List.fold_left (fun acc tree -> acc + Dtree.size tree) 0 entry.data

let storage_used t =
  Hashtbl.fold (fun _ entry acc -> acc + entry_size entry) t.entries 0
