(** LRU cache of query results (section 4: "caching and other
    performance tuning capabilities").

    Keys are query texts; values are constructed result trees.  Eviction
    is least-recently-used; entries can also carry the set of sources
    they were computed from, so a source update invalidates exactly the
    affected entries.  An optional TTL — measured on the {e virtual}
    clock, {!Obs_clock.virtual_ms} — ages entries out for freshness. *)

type t

type stats = {
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable evictions : int;
  mutable expirations : int;
  mutable invalidations : int;
}

val create : ?ttl_ms:float -> capacity:int -> unit -> t
(** [capacity] is the maximum number of entries; 0 disables caching.
    With [ttl_ms], entries older (in virtual time) than the TTL read as
    misses and are dropped, counted as expirations. *)

val get : t -> string -> Dtree.t list option
(** A hit refreshes the entry's recency. *)

val put : t -> ?sources:string list -> string -> Dtree.t list -> unit
(** Inserting over capacity evicts the least recently used entry.
    Re-inserting an existing key replaces its value. *)

val get_or_compute :
  t -> ?sources:string list -> string -> (unit -> Dtree.t list) -> Dtree.t list

val invalidate : t -> string -> bool
(** Remove one entry by key; returns whether it existed. *)

val invalidate_source : t -> string -> int
(** Remove every entry tagged with the source; returns how many. *)

val clear : t -> unit
val size : t -> int
val capacity : t -> int

val ttl_ms : t -> float option

val stats : t -> stats
val hit_rate : t -> float
(** Hits / (hits + misses); 0 when nothing was looked up. *)
