(** Abstract syntax of XML-QL.

    The system's query language (section 2.1): XML-QL was "the only
    existing expressive query language for XML" when the product was
    designed.  We implement the WHERE-pattern / CONSTRUCT-template core
    of the W3C note the paper cites, plus the SQL-equivalent extensions
    the feature list (section 4) demands: boolean conditions, ORDER BY,
    LIMIT, and nested (correlated) subqueries in templates for grouped
    construction.

    Example:
    {v
      WHERE <book year=$y>
              <title>$t</title>
            </book> IN "bib",
            $y > 1995
      CONSTRUCT <result><title>$t</title></result>
    v} *)

type attr_pattern =
  | A_var of string     (** [attr=$v] binds the attribute value *)
  | A_lit of string     (** [attr="x"] requires equality *)

type pattern = {
  tag : string;  (** element name; ["*"] matches any *)
  attrs : (string * attr_pattern) list;
  children : child_pattern list;
  element_as : string option;  (** [ELEMENT_AS $e] binds the element *)
}

and child_pattern =
  | P_element of pattern  (** must match some child element; one binding
                              per matching child (multi-match semantics) *)
  | P_var of string       (** binds the element content *)
  | P_text of string      (** requires the text content to equal *)

type clause = {
  clause_pattern : pattern;
  clause_source : string;  (** [IN "source"] *)
}

type agg_kind = Ag_count | Ag_sum | Ag_avg | Ag_min | Ag_max

type template =
  | Tpl_element of string * (string * tattr) list * template list
  | Tpl_var of string          (** splice a bound value / content *)
  | Tpl_text of string
  | Tpl_expr of Alg_expr.t     (** computed value in braces *)
  | Tpl_subquery of query      (** correlated nested query *)
  | Tpl_agg of agg_kind * query
      (** aggregate over a correlated subquery's result values, e.g.
          [{COUNT WHERE ... CONSTRUCT ...}] *)

and tattr =
  | TA_var of string
  | TA_lit of string
  | TA_expr of Alg_expr.t

and query = {
  clauses : clause list;
  conditions : Alg_expr.t list;   (** over the pattern variables *)
  construct : template;
  order_by : (Alg_expr.t * bool) list;  (** expr, ascending *)
  limit : int option;
}

val pattern_vars : pattern -> string list
(** Variables bound by the pattern, first-occurrence order. *)

val query_vars : query -> string list
(** Variables bound by all clauses. *)

val free_condition_vars : query -> string list
(** Variables mentioned in conditions. *)

val sources_of : query -> string list
(** Distinct sources of the query (not of nested subqueries). *)

val all_sources_of : query -> string list
(** Including nested subqueries, first-occurrence order. *)
