(** Rendering of XML-QL queries back to concrete syntax.  Output parses
    back through {!Xq_parser} to an equivalent query. *)

val pattern_to_string : Xq_ast.pattern -> string
val template_to_string : Xq_ast.template -> string
val query_to_string : Xq_ast.query -> string
