(** Tokenizer for XML-QL. *)

type token =
  | KW of string      (** uppercased keyword: WHERE, CONSTRUCT, IN, ... *)
  | NAME of string    (** tag / attribute / function identifier *)
  | VAR of string     (** [$x], without the dollar *)
  | STRING of string
  | INT of int
  | FLOAT of float
  | SYM of string     (** punctuation: [<] [</] [/>] [>] [=] [<>] [<=] [>=]
                          [(] [)] [{] [}] [,] [+] [-] [*] [/] *)
  | EOF

exception Lex_error of int * string

val tokenize : string -> token list
(** Keywords (case-sensitive, always upper case, so element names like
    [order] or [in] stay ordinary names): WHERE CONSTRUCT IN ELEMENT_AS
    ORDER BY LIMIT UNION AND OR NOT LIKE IS NULL TRUE FALSE DESC ASC.
    Supports [#] line comments. *)

val token_to_string : token -> string
