type attr_pattern =
  | A_var of string
  | A_lit of string

type pattern = {
  tag : string;
  attrs : (string * attr_pattern) list;
  children : child_pattern list;
  element_as : string option;
}

and child_pattern =
  | P_element of pattern
  | P_var of string
  | P_text of string

type clause = {
  clause_pattern : pattern;
  clause_source : string;
}

type agg_kind = Ag_count | Ag_sum | Ag_avg | Ag_min | Ag_max

type template =
  | Tpl_element of string * (string * tattr) list * template list
  | Tpl_var of string
  | Tpl_text of string
  | Tpl_expr of Alg_expr.t
  | Tpl_subquery of query
  | Tpl_agg of agg_kind * query

and tattr =
  | TA_var of string
  | TA_lit of string
  | TA_expr of Alg_expr.t

and query = {
  clauses : clause list;
  conditions : Alg_expr.t list;
  construct : template;
  order_by : (Alg_expr.t * bool) list;
  limit : int option;
}

let dedup names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

let rec pattern_vars_raw p =
  List.concat_map (fun (_, ap) -> match ap with A_var v -> [ v ] | A_lit _ -> []) p.attrs
  @ List.concat_map
      (function
        | P_element sub -> pattern_vars_raw sub
        | P_var v -> [ v ]
        | P_text _ -> [])
      p.children
  @ (match p.element_as with Some v -> [ v ] | None -> [])

let pattern_vars p = dedup (pattern_vars_raw p)

let query_vars q = dedup (List.concat_map (fun c -> pattern_vars_raw c.clause_pattern) q.clauses)

let free_condition_vars q = dedup (List.concat_map Alg_expr.free_vars q.conditions)

let sources_of q = dedup (List.map (fun c -> c.clause_source) q.clauses)

let rec all_sources_of q =
  let rec template_sources = function
    | Tpl_element (_, _, kids) -> List.concat_map template_sources kids
    | Tpl_var _ | Tpl_text _ | Tpl_expr _ -> []
    | Tpl_subquery sub | Tpl_agg (_, sub) -> all_sources_of sub
  in
  dedup (List.map (fun c -> c.clause_source) q.clauses @ template_sources q.construct)
