exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = {
  toks : Xq_lexer.token array;
  mutable i : int;
}

let peek c = c.toks.(c.i)
let peek_at c k = if c.i + k < Array.length c.toks then c.toks.(c.i + k) else Xq_lexer.EOF
let advance c = c.i <- c.i + 1

let next c =
  let t = peek c in
  advance c;
  t

let expect_sym c s =
  match next c with
  | Xq_lexer.SYM s' when s' = s -> ()
  | t -> fail "expected %S, found %s" s (Xq_lexer.token_to_string t)

let expect_kw c k =
  match next c with
  | Xq_lexer.KW k' when k' = k -> ()
  | t -> fail "expected %s, found %s" k (Xq_lexer.token_to_string t)

let accept_sym c s =
  match peek c with
  | Xq_lexer.SYM s' when s' = s ->
    advance c;
    true
  | _ -> false

let accept_kw c k =
  match peek c with
  | Xq_lexer.KW k' when k' = k ->
    advance c;
    true
  | _ -> false

let name c =
  match next c with
  | Xq_lexer.NAME n -> n
  | t -> fail "expected a name, found %s" (Xq_lexer.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Conditions: precedence climbing over Alg_expr                       *)
(* ------------------------------------------------------------------ *)

let rec parse_or c =
  let lhs = parse_and c in
  if accept_kw c "OR" then Alg_expr.Binop (Alg_expr.Or, lhs, parse_or c) else lhs

and parse_and c =
  let lhs = parse_not c in
  if accept_kw c "AND" then Alg_expr.Binop (Alg_expr.And, lhs, parse_and c) else lhs

and parse_not c =
  if accept_kw c "NOT" then Alg_expr.Not (parse_not c) else parse_cmp c

and parse_cmp c =
  let lhs = parse_add c in
  let bin op =
    advance c;
    Alg_expr.Binop (op, lhs, parse_add c)
  in
  match peek c with
  | Xq_lexer.SYM "=" -> bin Alg_expr.Eq
  | Xq_lexer.SYM "<>" -> bin Alg_expr.Neq
  | Xq_lexer.SYM "<" -> bin Alg_expr.Lt
  | Xq_lexer.SYM "<=" -> bin Alg_expr.Le
  | Xq_lexer.SYM ">" -> bin Alg_expr.Gt
  | Xq_lexer.SYM ">=" -> bin Alg_expr.Ge
  | Xq_lexer.KW "LIKE" -> (
    advance c;
    match next c with
    | Xq_lexer.STRING pat -> Alg_expr.Like (lhs, pat)
    | t -> fail "LIKE requires a string pattern, found %s" (Xq_lexer.token_to_string t))
  | Xq_lexer.KW "IS" ->
    advance c;
    if accept_kw c "NOT" then begin
      expect_kw c "NULL";
      Alg_expr.Not (Alg_expr.Is_null lhs)
    end
    else begin
      expect_kw c "NULL";
      Alg_expr.Is_null lhs
    end
  | _ -> lhs

and parse_add c =
  let rec go lhs =
    if accept_sym c "+" then go (Alg_expr.Binop (Alg_expr.Add, lhs, parse_mul c))
    else if accept_sym c "-" then go (Alg_expr.Binop (Alg_expr.Sub, lhs, parse_mul c))
    else lhs
  in
  go (parse_mul c)

and parse_mul c =
  let rec go lhs =
    if accept_sym c "*" then go (Alg_expr.Binop (Alg_expr.Mul, lhs, parse_unary c))
    else if accept_sym c "/" then go (Alg_expr.Binop (Alg_expr.Div, lhs, parse_unary c))
    else lhs
  in
  go (parse_unary c)

and parse_unary c =
  if accept_sym c "-" then Alg_expr.Neg (parse_unary c) else parse_atom c

and parse_atom c =
  match next c with
  | Xq_lexer.VAR v -> parse_postfix c (Alg_expr.Var v)
  | Xq_lexer.INT i -> Alg_expr.Const (Value.Int i)
  | Xq_lexer.FLOAT f -> Alg_expr.Const (Value.Float f)
  | Xq_lexer.STRING s -> Alg_expr.Const (Value.String s)
  | Xq_lexer.KW "NULL" -> Alg_expr.Const Value.Null
  | Xq_lexer.KW "TRUE" -> Alg_expr.Const (Value.Bool true)
  | Xq_lexer.KW "FALSE" -> Alg_expr.Const (Value.Bool false)
  | Xq_lexer.SYM "(" ->
    let e = parse_or c in
    expect_sym c ")";
    e
  | Xq_lexer.NAME fname ->
    expect_sym c "(";
    if accept_sym c ")" then Alg_expr.Call (String.lowercase_ascii fname, [])
    else begin
      let rec args acc =
        let e = parse_or c in
        if accept_sym c "," then args (e :: acc) else List.rev (e :: acc)
      in
      let es = args [] in
      expect_sym c ")";
      Alg_expr.Call (String.lowercase_ascii fname, es)
    end
  | t -> fail "unexpected token %s in condition" (Xq_lexer.token_to_string t)

(* Postfix tree accessors on variables: [$v/child], [$v/@attr]. *)
and parse_postfix c e =
  if accept_sym c "/" then
    if accept_sym c "@" then parse_postfix c (Alg_expr.Attr (e, name c))
    else parse_postfix c (Alg_expr.Child (e, name c))
  else e

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

let rec parse_pattern c =
  expect_sym c "<";
  let tag =
    match next c with
    | Xq_lexer.NAME n -> n
    | Xq_lexer.SYM "*" -> "*"
    | t -> fail "expected a tag name, found %s" (Xq_lexer.token_to_string t)
  in
  let rec attrs acc =
    match peek c with
    | Xq_lexer.NAME aname ->
      advance c;
      expect_sym c "=";
      let ap =
        match next c with
        | Xq_lexer.VAR v -> Xq_ast.A_var v
        | Xq_lexer.STRING s -> Xq_ast.A_lit s
        | Xq_lexer.INT i -> Xq_ast.A_lit (string_of_int i)
        | t -> fail "expected $var or literal for attribute, found %s" (Xq_lexer.token_to_string t)
      in
      attrs ((aname, ap) :: acc)
    | _ -> List.rev acc
  in
  let attrs = attrs [] in
  let pattern =
    if accept_sym c "/>" then { Xq_ast.tag; attrs; children = []; element_as = None }
    else begin
      expect_sym c ">";
      let rec kids acc =
        match peek c with
        | Xq_lexer.SYM "</" ->
          advance c;
          (match peek c with
          | Xq_lexer.NAME n ->
            advance c;
            if n <> tag then fail "mismatched close tag </%s>, expected </%s>" n tag
          | Xq_lexer.SYM "*" -> advance c
          | _ -> ());
          expect_sym c ">";
          List.rev acc
        | Xq_lexer.SYM "<" -> kids (Xq_ast.P_element (parse_pattern c) :: acc)
        | Xq_lexer.VAR v ->
          advance c;
          kids (Xq_ast.P_var v :: acc)
        | Xq_lexer.STRING s ->
          advance c;
          kids (Xq_ast.P_text s :: acc)
        | t -> fail "unexpected token %s in pattern content" (Xq_lexer.token_to_string t)
      in
      { Xq_ast.tag; attrs; children = kids []; element_as = None }
    end
  in
  if accept_kw c "ELEMENT_AS" then begin
    match next c with
    | Xq_lexer.VAR v -> { pattern with Xq_ast.element_as = Some v }
    | t -> fail "ELEMENT_AS requires a variable, found %s" (Xq_lexer.token_to_string t)
  end
  else pattern

(* ------------------------------------------------------------------ *)
(* Templates                                                           *)
(* ------------------------------------------------------------------ *)

let rec parse_template c =
  match peek c with
  | Xq_lexer.SYM "<" -> parse_template_element c
  | Xq_lexer.VAR v ->
    advance c;
    Xq_ast.Tpl_var v
  | Xq_lexer.STRING s ->
    advance c;
    Xq_ast.Tpl_text s
  | Xq_lexer.SYM "{" -> (
    advance c;
    let agg_kind =
      match peek c with
      | Xq_lexer.KW "COUNT" -> Some Xq_ast.Ag_count
      | Xq_lexer.KW "SUM" -> Some Xq_ast.Ag_sum
      | Xq_lexer.KW "AVG" -> Some Xq_ast.Ag_avg
      | Xq_lexer.KW "MIN" -> Some Xq_ast.Ag_min
      | Xq_lexer.KW "MAX" -> Some Xq_ast.Ag_max
      | _ -> None
    in
    match agg_kind with
    | Some kind ->
      advance c;
      let q = parse_query c in
      expect_sym c "}";
      Xq_ast.Tpl_agg (kind, q)
    | None ->
      if peek c = Xq_lexer.KW "WHERE" then begin
        let q = parse_query c in
        expect_sym c "}";
        Xq_ast.Tpl_subquery q
      end
      else begin
        let e = parse_or c in
        expect_sym c "}";
        Xq_ast.Tpl_expr e
      end)
  | t -> fail "unexpected token %s in template" (Xq_lexer.token_to_string t)

and parse_template_element c =
  expect_sym c "<";
  let tag = name c in
  let rec attrs acc =
    match peek c with
    | Xq_lexer.NAME aname ->
      advance c;
      expect_sym c "=";
      let ta =
        match next c with
        | Xq_lexer.VAR v -> Xq_ast.TA_var v
        | Xq_lexer.STRING s -> Xq_ast.TA_lit s
        | Xq_lexer.INT i -> Xq_ast.TA_lit (string_of_int i)
        | Xq_lexer.SYM "{" ->
          let e = parse_or c in
          expect_sym c "}";
          Xq_ast.TA_expr e
        | t -> fail "bad template attribute value: %s" (Xq_lexer.token_to_string t)
      in
      attrs ((aname, ta) :: acc)
    | _ -> List.rev acc
  in
  let attrs = attrs [] in
  if accept_sym c "/>" then Xq_ast.Tpl_element (tag, attrs, [])
  else begin
    expect_sym c ">";
    let rec kids acc =
      match peek c with
      | Xq_lexer.SYM "</" ->
        advance c;
        (match peek c with
        | Xq_lexer.NAME n ->
          advance c;
          if n <> tag then fail "mismatched close tag </%s>, expected </%s>" n tag
        | _ -> ());
        expect_sym c ">";
        List.rev acc
      | _ -> kids (parse_template c :: acc)
    in
    Xq_ast.Tpl_element (tag, attrs, kids [])
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

and parse_query c =
  expect_kw c "WHERE";
  let rec items patterns conds =
    (* A clause item is either a pattern (starts with '<') or a
       condition. *)
    let patterns, conds =
      match peek c, peek_at c 1 with
      | Xq_lexer.SYM "<", (Xq_lexer.NAME _ | Xq_lexer.SYM "*") ->
        let p = parse_pattern c in
        expect_kw c "IN";
        let src =
          match next c with
          | Xq_lexer.STRING s -> s
          | Xq_lexer.NAME n -> n
          | t -> fail "expected a source name, found %s" (Xq_lexer.token_to_string t)
        in
        ({ Xq_ast.clause_pattern = p; clause_source = src } :: patterns, conds)
      | _, _ -> (patterns, parse_or c :: conds)
    in
    if accept_sym c "," then items patterns conds else (List.rev patterns, List.rev conds)
  in
  let clauses, conditions = items [] [] in
  if clauses = [] then fail "a query needs at least one pattern clause";
  expect_kw c "CONSTRUCT";
  let construct = parse_template c in
  let order_by =
    if accept_kw c "ORDER" then begin
      expect_kw c "BY";
      let rec specs acc =
        let e = parse_or c in
        let asc =
          if accept_kw c "DESC" then false
          else begin
            ignore (accept_kw c "ASC");
            true
          end
        in
        if accept_sym c "," then specs ((e, asc) :: acc) else List.rev ((e, asc) :: acc)
      in
      specs []
    end
    else []
  in
  let limit =
    if accept_kw c "LIMIT" then begin
      match next c with
      | Xq_lexer.INT n -> Some n
      | t -> fail "LIMIT requires an integer, found %s" (Xq_lexer.token_to_string t)
    end
    else None
  in
  { Xq_ast.clauses; conditions; construct; order_by; limit }

let parse_exn input =
  let toks =
    try Xq_lexer.tokenize input
    with Xq_lexer.Lex_error (off, msg) -> fail "lexical error at offset %d: %s" off msg
  in
  let c = { toks = Array.of_list toks; i = 0 } in
  let q = parse_query c in
  match peek c with
  | Xq_lexer.EOF -> q
  | t -> fail "trailing input: %s" (Xq_lexer.token_to_string t)

let parse input =
  try Ok (parse_exn input) with Parse_error m -> Error m

let parse_union_exn input =
  let toks =
    try Xq_lexer.tokenize input
    with Xq_lexer.Lex_error (off, msg) -> fail "lexical error at offset %d: %s" off msg
  in
  let c = { toks = Array.of_list toks; i = 0 } in
  let rec go acc =
    let q = parse_query c in
    if accept_kw c "UNION" then go (q :: acc) else List.rev (q :: acc)
  in
  let qs = go [] in
  match peek c with
  | Xq_lexer.EOF -> qs
  | t -> fail "trailing input: %s" (Xq_lexer.token_to_string t)

let parse_union input =
  try Ok (parse_union_exn input) with Parse_error m -> Error m

let parse_condition_exn input =
  let toks =
    try Xq_lexer.tokenize input
    with Xq_lexer.Lex_error (off, msg) -> fail "lexical error at offset %d: %s" off msg
  in
  let c = { toks = Array.of_list toks; i = 0 } in
  let e = parse_or c in
  match peek c with
  | Xq_lexer.EOF -> e
  | t -> fail "trailing input: %s" (Xq_lexer.token_to_string t)
