type resolver = string -> Dtree.t list

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Eval_error m)) fmt

let content_of tree =
  match Dtree.kids tree with
  | [ single ] -> single
  | kids -> Dtree.node "content" kids

(* Merge two environments, requiring shared variables to agree. *)
let merge_consistent a b =
  let ok =
    List.for_all
      (fun (var, tree) ->
        match Alg_env.get a var with
        | None -> true
        | Some tree' -> Dtree.equal tree tree')
      (Alg_env.bindings b)
  in
  if ok then Some (Alg_env.concat a b) else None

let cross_merge envs_a envs_b =
  List.concat_map
    (fun ea -> List.filter_map (fun eb -> merge_consistent ea eb) envs_b)
    envs_a

(* ------------------------------------------------------------------ *)
(* Pattern matching                                                    *)
(* ------------------------------------------------------------------ *)

let rec match_pattern (p : Xq_ast.pattern) tree =
  match tree with
  | Dtree.Atom _ -> []
  | Dtree.Node n ->
    if p.Xq_ast.tag <> "*" && not (String.equal p.Xq_ast.tag n.Dtree.label) then []
    else begin
      (* Attribute requirements. *)
      let attr_envs =
        List.fold_left
          (fun acc (aname, ap) ->
            match acc with
            | None -> None
            | Some env -> (
              match List.assoc_opt aname n.Dtree.attrs with
              | None -> None
              | Some v -> (
                match ap with
                | Xq_ast.A_lit s ->
                  if String.equal (Value.to_string v) s then Some env else None
                | Xq_ast.A_var var -> (
                  match Alg_env.get env var with
                  | Some bound ->
                    if Dtree.equal bound (Dtree.atom v) then Some env else None
                  | None -> Some (Alg_env.bind env var (Dtree.atom v))))))
          (Some Alg_env.empty) p.Xq_ast.attrs
      in
      match attr_envs with
      | None -> []
      | Some attr_env ->
        (* Each child pattern contributes a list of candidate envs; the
           combinations are merged consistently. *)
        let per_child =
          List.map
            (fun cp ->
              match cp with
              | Xq_ast.P_var var -> [ Alg_env.of_bindings [ (var, content_of tree) ] ]
              | Xq_ast.P_text s ->
                if String.equal (Dtree.text tree) s then [ Alg_env.empty ] else []
              | Xq_ast.P_element sub ->
                List.concat_map (fun kid -> match_pattern sub kid) (Dtree.kids tree))
            p.Xq_ast.children
        in
        let combined =
          List.fold_left (fun acc envs -> cross_merge acc envs) [ attr_env ] per_child
        in
        let with_element_as =
          match p.Xq_ast.element_as with
          | None -> combined
          | Some var ->
            List.filter_map
              (fun env -> merge_consistent env (Alg_env.of_bindings [ (var, tree) ]))
              combined
        in
        with_element_as
    end

let match_anywhere p tree =
  let out = ref [] in
  let rec go t =
    out := !out @ match_pattern p t;
    List.iter (fun k -> match k with Dtree.Node _ -> go k | Dtree.Atom _ -> ()) (Dtree.kids t)
  in
  go tree;
  !out

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let clause_bindings resolver (c : Xq_ast.clause) =
  let docs =
    try resolver c.Xq_ast.clause_source
    with Not_found -> fail "unknown source %S" c.Xq_ast.clause_source
  in
  List.concat_map (fun doc -> match_anywhere c.Xq_ast.clause_pattern doc) docs

let compare_specs specs a b =
  let rec go = function
    | [] -> 0
    | (key, asc) :: rest ->
      let c = Value.compare (Alg_expr.eval a key) (Alg_expr.eval b key) in
      if c <> 0 then if asc then c else -c else go rest
  in
  go specs

let bindings resolver ?(outer = Alg_env.empty) (q : Xq_ast.query) =
  let joined =
    List.fold_left
      (fun acc clause -> cross_merge acc (clause_bindings resolver clause))
      [ outer ] q.Xq_ast.clauses
  in
  let filtered =
    List.filter
      (fun env -> List.for_all (fun cond -> Alg_expr.eval_pred env cond) q.Xq_ast.conditions)
      joined
  in
  let ordered =
    match q.Xq_ast.order_by with
    | [] -> filtered
    | specs -> List.stable_sort (compare_specs specs) filtered
  in
  match q.Xq_ast.limit with
  | None -> ordered
  | Some n ->
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    take n ordered

(* Template instantiation; returns a list because subqueries and content
   splices can contribute several siblings. *)
let rec instantiate resolver env (t : Xq_ast.template) : Dtree.t list =
  match t with
  | Xq_ast.Tpl_text s -> [ Dtree.atom (Value.of_string_guess s) ]
  | Xq_ast.Tpl_expr e -> [ Dtree.atom (Alg_expr.eval env e) ]
  | Xq_ast.Tpl_var var -> (
    match Alg_env.get env var with
    | None -> [ Dtree.atom Value.Null ]
    | Some tree -> (
      match tree with
      | Dtree.Node { label = "content"; kids; _ } -> kids
      | tree -> [ tree ]))
  | Xq_ast.Tpl_subquery sub -> eval resolver ~outer:env sub
  | Xq_ast.Tpl_agg (kind, sub) ->
    let trees = eval resolver ~outer:env sub in
    let value_of tree =
      match Dtree.atom_value tree with
      | Some v -> v
      | None -> Value.of_string_guess (Dtree.text tree)
    in
    let values = List.filter (fun v -> v <> Value.Null) (List.map value_of trees) in
    let result =
      match kind with
      | Xq_ast.Ag_count -> Value.Int (List.length trees)
      | Xq_ast.Ag_sum ->
        if values = [] then Value.Null
        else List.fold_left (fun acc v -> try Value.add acc v with Invalid_argument _ -> acc)
               (Value.Int 0) values
      | Xq_ast.Ag_avg -> (
        if values = [] then Value.Null
        else
          let total =
            List.fold_left (fun acc v -> try Value.add acc v with Invalid_argument _ -> acc)
              (Value.Int 0) values
          in
          match Value.to_float total with
          | Some f -> Value.Float (f /. float_of_int (List.length values))
          | None -> Value.Null)
      | Xq_ast.Ag_min -> (
        match values with
        | [] -> Value.Null
        | v :: rest -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v rest)
      | Xq_ast.Ag_max -> (
        match values with
        | [] -> Value.Null
        | v :: rest -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v rest)
    in
    [ Dtree.atom result ]
  | Xq_ast.Tpl_element (tag, attrs, kids) ->
    let attr (aname, ta) =
      let v =
        match ta with
        | Xq_ast.TA_lit s -> Value.of_string_guess s
        | Xq_ast.TA_var var -> Alg_env.value_of env var
        | Xq_ast.TA_expr e -> Alg_expr.eval env e
      in
      (aname, v)
    in
    let children = List.concat_map (instantiate resolver env) kids in
    [ Dtree.node ~attrs:(List.map attr attrs) tag children ]

and eval resolver ?outer (q : Xq_ast.query) =
  let envs = bindings resolver ?outer q in
  List.concat_map (fun env -> instantiate resolver env q.Xq_ast.construct) envs

let eval_to_xml resolver q =
  let trees = eval resolver q in
  let results = Dtree.node "results" trees in
  Dtree.to_xml_element results
