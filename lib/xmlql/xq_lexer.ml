type token =
  | KW of string
  | NAME of string
  | VAR of string
  | STRING of string
  | INT of int
  | FLOAT of float
  | SYM of string
  | EOF

exception Lex_error of int * string

let keywords =
  [
    "WHERE"; "CONSTRUCT"; "IN"; "ELEMENT_AS"; "ORDER"; "BY"; "LIMIT"; "UNION"; "AND";
    "OR"; "NOT"; "LIKE"; "IS"; "NULL"; "TRUE"; "FALSE"; "DESC"; "ASC";
    "COUNT"; "SUM"; "AVG"; "MIN"; "MAX";
  ]

let keyword_set =
  let h = Hashtbl.create 32 in
  List.iter (fun k -> Hashtbl.replace h k ()) keywords;
  h

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = ':' || c = '.'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let len = String.length input in
  let pos = ref 0 in
  let out = ref [] in
  let peek k = if !pos + k < len then input.[!pos + k] else '\000' in
  let emit tok = out := tok :: !out in
  while !pos < len do
    let c = input.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '#' then
      while !pos < len && input.[!pos] <> '\n' do
        incr pos
      done
    else if c = '$' then begin
      incr pos;
      let start = !pos in
      while !pos < len && is_name_char input.[!pos] do
        incr pos
      done;
      if !pos = start then raise (Lex_error (start, "expected a variable name after '$'"));
      emit (VAR (String.sub input start (!pos - start)))
    end
    else if is_name_start c then begin
      let start = !pos in
      while !pos < len && is_name_char input.[!pos] do
        incr pos
      done;
      let word = String.sub input start (!pos - start) in
      (* Keywords are case-sensitive (all caps), so element names like
         [order] or [in] remain ordinary names. *)
      if Hashtbl.mem keyword_set word then emit (KW word) else emit (NAME word)
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < len && is_digit input.[!pos] do
        incr pos
      done;
      let is_float = ref false in
      if !pos < len && input.[!pos] = '.' && is_digit (peek 1) then begin
        is_float := true;
        incr pos;
        while !pos < len && is_digit input.[!pos] do
          incr pos
        done
      end;
      let word = String.sub input start (!pos - start) in
      if !is_float then emit (FLOAT (float_of_string word))
      else
        match int_of_string_opt word with
        | Some i -> emit (INT i)
        | None -> raise (Lex_error (start, "malformed number " ^ word))
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      incr pos;
      let buf = Buffer.create 16 in
      let finished = ref false in
      while not !finished do
        if !pos >= len then raise (Lex_error (!pos, "unterminated string literal"));
        let c = input.[!pos] in
        if c = quote then begin
          incr pos;
          finished := true
        end
        else if c = '\\' && !pos + 1 < len then begin
          (match input.[!pos + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | c -> Buffer.add_char buf c);
          pos := !pos + 2
        end
        else begin
          Buffer.add_char buf c;
          incr pos
        end
      done;
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !pos + 1 < len then String.sub input !pos 2 else "" in
      match two with
      | "</" | "/>" | "<>" | "<=" | ">=" ->
        emit (SYM two);
        pos := !pos + 2
      | "!=" ->
        emit (SYM "<>");
        pos := !pos + 2
      | _ -> (
        match c with
        | '<' | '>' | '=' | '(' | ')' | '{' | '}' | ',' | '+' | '-' | '*' | '/' | '@' ->
          emit (SYM (String.make 1 c));
          incr pos
        | c -> raise (Lex_error (!pos, Printf.sprintf "unexpected character %C" c)))
    end
  done;
  emit EOF;
  List.rev !out

let token_to_string = function
  | KW k -> k
  | NAME n -> n
  | VAR v -> "$" ^ v
  | STRING s -> Printf.sprintf "%S" s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | SYM s -> s
  | EOF -> "<eof>"
