(** Recursive-descent parser for XML-QL. *)

exception Parse_error of string

val parse : string -> (Xq_ast.query, string) result
val parse_exn : string -> Xq_ast.query

val parse_union_exn : string -> Xq_ast.query list
(** Parse [q1 UNION q2 UNION ...] — one or more queries whose results
    concatenate (bag union, in query order).  Used for mediated-schema
    definitions that integrate several sources into one shape. *)

val parse_union : string -> (Xq_ast.query list, string) result

val parse_condition_exn : string -> Alg_expr.t
(** Parse a standalone condition expression ([$x > 3 AND ...]); variable
    references lose their dollar sign in the resulting {!Alg_expr}. *)
