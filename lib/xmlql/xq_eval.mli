(** Reference (direct) evaluator for XML-QL.

    This module defines the semantics of the language by brute force:
    patterns are matched against whole documents, clause bindings are
    joined with consistency on shared variables, conditions filter, and
    the template is instantiated once per binding.  The mediator's
    compiled plans (which decompose, push down and reorder) are tested
    against this evaluator — it is the oracle, not the fast path.

    Pattern-matching semantics: a clause pattern matches {e any element}
    of its source documents (root or descendant); each child pattern
    [P_element] matches every qualifying child separately, producing one
    binding per combination (XML-QL multi-match semantics); shared
    variables between patterns and clauses must bind equal trees. *)

type resolver = string -> Dtree.t list
(** Documents of a named source.
    @raise Not_found for unknown sources. *)

exception Eval_error of string

val match_pattern : Xq_ast.pattern -> Dtree.t -> Alg_env.t list
(** All ways the pattern matches {e at} this tree (not descendants). *)

val match_anywhere : Xq_ast.pattern -> Dtree.t -> Alg_env.t list
(** All ways the pattern matches the tree or any descendant element, in
    document order. *)

val bindings : resolver -> ?outer:Alg_env.t -> Xq_ast.query -> Alg_env.t list
(** Joined, condition-filtered, ordered and limited bindings of the
    query.  [outer] seeds correlated variables for nested subqueries. *)

val eval : resolver -> ?outer:Alg_env.t -> Xq_ast.query -> Dtree.t list
(** One constructed tree per binding. *)

val instantiate : resolver -> Alg_env.t -> Xq_ast.template -> Dtree.t list
(** Instantiate a template against one binding (a list because content
    splices and subqueries contribute several siblings).  Exposed so the
    compiled execution path shares the construction semantics. *)

val eval_to_xml : resolver -> Xq_ast.query -> Xml_types.element
(** Results wrapped in a [<results>] element. *)

val content_of : Dtree.t -> Dtree.t
(** The content-binding rule for [P_var]: an element's single child when
    there is exactly one, otherwise a node labelled ["content"] holding
    all children. *)
