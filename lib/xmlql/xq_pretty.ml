let quote s = Printf.sprintf "\"%s\"" (String.concat "\\\"" (String.split_on_char '"' s))

(* Alg_expr.to_string prints variables as [$v] already, and its syntax
   for the supported forms coincides with the condition grammar, except
   that string constants need quoting.  We re-render here to stay
   parseable. *)
let rec expr_to_string e =
  let bin op a b = Printf.sprintf "(%s %s %s)" (expr_to_string a) op (expr_to_string b) in
  match e with
  | Alg_expr.Var v -> "$" ^ v
  | Alg_expr.Const (Value.String s) -> quote s
  | Alg_expr.Const Value.Null -> "NULL"
  | Alg_expr.Const (Value.Bool true) -> "TRUE"
  | Alg_expr.Const (Value.Bool false) -> "FALSE"
  | Alg_expr.Const v -> Value.to_string v
  | Alg_expr.Child (sub, l) -> Printf.sprintf "%s/%s" (expr_to_string sub) l
  | Alg_expr.Attr (sub, a) -> Printf.sprintf "%s/@%s" (expr_to_string sub) a
  | Alg_expr.Text sub -> Printf.sprintf "text(%s)" (expr_to_string sub)
  | Alg_expr.Label sub -> Printf.sprintf "label(%s)" (expr_to_string sub)
  | Alg_expr.Binop (op, a, b) ->
    let s =
      match op with
      | Alg_expr.Add -> "+"
      | Alg_expr.Sub -> "-"
      | Alg_expr.Mul -> "*"
      | Alg_expr.Div -> "/"
      | Alg_expr.Eq -> "="
      | Alg_expr.Neq -> "<>"
      | Alg_expr.Lt -> "<"
      | Alg_expr.Le -> "<="
      | Alg_expr.Gt -> ">"
      | Alg_expr.Ge -> ">="
      | Alg_expr.And -> "AND"
      | Alg_expr.Or -> "OR"
    in
    bin s a b
  | Alg_expr.Not sub -> Printf.sprintf "NOT %s" (expr_to_string sub)
  | Alg_expr.Neg sub -> Printf.sprintf "-%s" (expr_to_string sub)
  | Alg_expr.Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Alg_expr.Like (sub, pat) -> Printf.sprintf "%s LIKE %s" (expr_to_string sub) (quote pat)
  | Alg_expr.Is_null sub -> Printf.sprintf "%s IS NULL" (expr_to_string sub)

let rec pattern_to_string (p : Xq_ast.pattern) =
  let attr (aname, ap) =
    match ap with
    | Xq_ast.A_var v -> Printf.sprintf " %s=$%s" aname v
    | Xq_ast.A_lit s -> Printf.sprintf " %s=%s" aname (quote s)
  in
  let attrs = String.concat "" (List.map attr p.Xq_ast.attrs) in
  let suffix =
    match p.Xq_ast.element_as with
    | Some v -> Printf.sprintf " ELEMENT_AS $%s" v
    | None -> ""
  in
  match p.Xq_ast.children with
  | [] -> Printf.sprintf "<%s%s/>%s" p.Xq_ast.tag attrs suffix
  | kids ->
    let kid = function
      | Xq_ast.P_element sub -> pattern_to_string sub
      | Xq_ast.P_var v -> "$" ^ v
      | Xq_ast.P_text s -> quote s
    in
    Printf.sprintf "<%s%s>%s</%s>%s" p.Xq_ast.tag attrs
      (String.concat "" (List.map kid kids))
      p.Xq_ast.tag suffix

let rec template_to_string = function
  | Xq_ast.Tpl_var v -> "$" ^ v
  | Xq_ast.Tpl_text s -> quote s
  | Xq_ast.Tpl_expr e -> Printf.sprintf "{%s}" (expr_to_string e)
  | Xq_ast.Tpl_subquery q -> Printf.sprintf "{ %s }" (query_to_string q)
  | Xq_ast.Tpl_agg (kind, q) ->
    let kw =
      match kind with
      | Xq_ast.Ag_count -> "COUNT"
      | Xq_ast.Ag_sum -> "SUM"
      | Xq_ast.Ag_avg -> "AVG"
      | Xq_ast.Ag_min -> "MIN"
      | Xq_ast.Ag_max -> "MAX"
    in
    Printf.sprintf "{ %s %s }" kw (query_to_string q)
  | Xq_ast.Tpl_element (tag, attrs, kids) ->
    let attr (aname, ta) =
      match ta with
      | Xq_ast.TA_var v -> Printf.sprintf " %s=$%s" aname v
      | Xq_ast.TA_lit s -> Printf.sprintf " %s=%s" aname (quote s)
      | Xq_ast.TA_expr e -> Printf.sprintf " %s={%s}" aname (expr_to_string e)
    in
    let attrs = String.concat "" (List.map attr attrs) in
    (match kids with
    | [] -> Printf.sprintf "<%s%s/>" tag attrs
    | kids ->
      Printf.sprintf "<%s%s>%s</%s>" tag attrs
        (String.concat " " (List.map template_to_string kids))
        tag)

and query_to_string (q : Xq_ast.query) =
  let clause c =
    Printf.sprintf "%s IN %s" (pattern_to_string c.Xq_ast.clause_pattern)
      (quote c.Xq_ast.clause_source)
  in
  let where_items =
    List.map clause q.Xq_ast.clauses @ List.map expr_to_string q.Xq_ast.conditions
  in
  let order =
    match q.Xq_ast.order_by with
    | [] -> ""
    | specs ->
      " ORDER BY "
      ^ String.concat ", "
          (List.map
             (fun (e, asc) -> expr_to_string e ^ if asc then "" else " DESC")
             specs)
  in
  let limit = match q.Xq_ast.limit with Some n -> Printf.sprintf " LIMIT %d" n | None -> "" in
  Printf.sprintf "WHERE %s CONSTRUCT %s%s%s"
    (String.concat ", " where_items)
    (template_to_string q.Xq_ast.construct)
    order limit
