type entry = {
  output_key : string;
  input_keys : string list;
  operation : string;
  detail : string;
  seq : int;
}

type t = {
  entries : (string, entry) Hashtbl.t;  (* output key -> latest entry *)
  mutable next_seq : int;
}

let create () = { entries = Hashtbl.create 64; next_seq = 1 }

let derive t ?(detail = "") ~operation ~inputs output_key =
  let e = { output_key; input_keys = inputs; operation; detail; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  Hashtbl.replace t.entries output_key e;
  e

let entry_of t key = Hashtbl.find_opt t.entries key

let ancestry t key =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go k =
    match Hashtbl.find_opt t.entries k with
    | None -> if k <> key then out := k :: !out
    | Some e ->
      List.iter
        (fun input ->
          if not (Hashtbl.mem seen input) then begin
            Hashtbl.add seen input ();
            go input
          end)
        e.input_keys
  in
  go key;
  List.sort_uniq String.compare !out

let direct_children t key =
  Hashtbl.fold
    (fun out_key e acc -> if List.mem key e.input_keys then out_key :: acc else acc)
    t.entries []

let descendants t key =
  let seen = Hashtbl.create 16 in
  let rec go k =
    List.iter
      (fun child ->
        if not (Hashtbl.mem seen child) then begin
          Hashtbl.add seen child ();
          go child
        end)
      (direct_children t k)
  in
  go key;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort String.compare

let rollback t key =
  let affected = key :: descendants t key in
  let removed = List.filter (fun k -> Hashtbl.mem t.entries k) affected in
  List.iter (fun k -> Hashtbl.remove t.entries k) removed;
  List.sort String.compare removed

let size t = Hashtbl.length t.entries
