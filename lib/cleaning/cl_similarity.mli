(** String similarity measures for record matching.

    Covers the families the data-cleaning literature the paper cites
    relies on: edit distance (Hernandez–Stolfo merge/purge), Jaro/
    Jaro–Winkler (census-style name matching), token overlap and TF-IDF
    cosine (Cohen's WHIRL — "queries based on textual similarity"). *)

val levenshtein : string -> string -> int
(** Classic edit distance (insert/delete/substitute, unit costs). *)

val levenshtein_similarity : string -> string -> float
(** [1 - distance / max-length], in [0, 1]; 1.0 for two empty strings. *)

val jaro : string -> string -> float
val jaro_winkler : ?prefix_scale:float -> string -> string -> float
(** Standard Jaro–Winkler with prefix bonus (default scale 0.1, prefix
    capped at 4). *)

val tokens : string -> string list
(** Whitespace tokens of the {!Cl_normalize.basic} form. *)

val jaccard : string -> string -> float
(** Token-set Jaccard similarity. *)

val ngrams : int -> string -> string list
(** Character n-grams (with boundary padding [#]). *)

val ngram_similarity : ?n:int -> string -> string -> float
(** Dice coefficient over character n-grams (default trigrams). *)

(** {1 TF-IDF cosine (WHIRL)} *)

type corpus
(** Document-frequency statistics over a collection of strings. *)

val corpus_of : string list -> corpus

val tfidf_cosine : corpus -> string -> string -> float
(** Cosine of the TF-IDF vectors of the two strings under the corpus's
    document frequencies.  Rare tokens dominate, so "Acme Corp" and
    "Acme Incorporated" score high even though "corp"/"incorporated"
    differ. *)

(** {1 Registry} *)

val find : string -> (string -> string -> float) option
(** Pre-registered measures: "levenshtein", "jaro", "jaro_winkler",
    "jaccard", "ngram", "exact". *)

val register : string -> (string -> string -> float) -> unit
