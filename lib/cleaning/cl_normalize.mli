(** Normalization functions for dynamic data cleaning (section 3.2).

    The paper calls for an extensible framework "handling immediate needs
    (e.g., name and address standardization)" with "domain-specific and
    customer-provided normalization functions".  This module provides the
    built-ins and a registry for custom ones. *)

val collapse_whitespace : string -> string
(** Trim and squeeze runs of whitespace to single spaces. *)

val strip_punctuation : string -> string
(** Remove punctuation characters (keeps letters, digits, spaces). *)

val casefold : string -> string

val basic : string -> string
(** [casefold ∘ strip_punctuation ∘ collapse_whitespace] — the default
    pre-matching normalization. *)

val normalize_name : string -> string
(** Person/company name standardization: basic normalization, plus
    removal of honorifics (mr, mrs, dr, ...) and corporate suffixes
    (inc, corp, llc, ltd, co, gmbh), and ["last, first"] reordering. *)

val normalize_address : string -> string
(** Street-address standardization: basic normalization plus the USPS
    abbreviation dictionary (st -> street, ave -> avenue, ...). *)

val normalize_phone : string -> string
(** Keep digits only; strip a leading country [1] from 11-digit
    numbers. *)

(** {1 Extensibility} *)

val register : string -> (string -> string) -> unit
(** Register a custom normalizer.  Re-registering replaces. *)

val find : string -> (string -> string) option
(** Built-ins are pre-registered under "basic", "name", "address",
    "phone", "casefold", "identity". *)

val apply : string -> string -> string
(** [apply name s] applies a registered normalizer.
    @raise Not_found for unknown names. *)

val names : unit -> string list
