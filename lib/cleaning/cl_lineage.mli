(** Data lineage (section 3.2): "recording data ancestry, human
    decisions, and supporting roll-back whenever possible."

    Every derived record registered here points at the input record keys
    it came from and the operation that produced it; chains compose, so
    full ancestry walks back to raw source records. *)

type entry = {
  output_key : string;
  input_keys : string list;
  operation : string;      (** e.g. "normalize:name", "merge", "flow:dedupe" *)
  detail : string;
  seq : int;
}

type t

val create : unit -> t

val derive :
  t -> ?detail:string -> operation:string -> inputs:string list -> string -> entry
(** [derive t ~operation ~inputs output_key] records one derivation
    step. *)

val entry_of : t -> string -> entry option
(** The derivation that produced a key (latest, when re-derived). *)

val ancestry : t -> string -> string list
(** Transitive input closure of a key (the key's raw ancestors), sorted,
    without the key itself.  Keys never derived are their own raw
    ancestors and return []. *)

val descendants : t -> string -> string list
(** Keys derived (transitively) from the given key, sorted. *)

val rollback : t -> string -> string list
(** Forget the derivation of a key and of everything derived from it;
    returns the affected output keys.  The inputs are untouched — they
    are what the rollback restores visibility of. *)

val size : t -> int
