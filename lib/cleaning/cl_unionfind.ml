type t = {
  parent : (string, string) Hashtbl.t;
  rank : (string, int) Hashtbl.t;
}

let create () = { parent = Hashtbl.create 64; rank = Hashtbl.create 64 }

let rec find t key =
  match Hashtbl.find_opt t.parent key with
  | None | Some "" -> key
  | Some p when String.equal p key -> key
  | Some p ->
    let root = find t p in
    Hashtbl.replace t.parent key root;
    root

let union t a b =
  let ra = find t a and rb = find t b in
  if not (String.equal ra rb) then begin
    let rank k = Option.value ~default:0 (Hashtbl.find_opt t.rank k) in
    let ka = rank ra and kb = rank rb in
    if ka < kb then Hashtbl.replace t.parent ra rb
    else if ka > kb then Hashtbl.replace t.parent rb ra
    else begin
      Hashtbl.replace t.parent rb ra;
      Hashtbl.replace t.rank ra (ka + 1)
    end
  end
  else ();
  (* Track membership even for self-unions so groups can report. *)
  if not (Hashtbl.mem t.parent a) then Hashtbl.replace t.parent a (find t a);
  if not (Hashtbl.mem t.parent b) then Hashtbl.replace t.parent b (find t b)

let same t a b = String.equal (find t a) (find t b)

let groups t =
  let clusters : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.parent [] in
  List.iter
    (fun k ->
      let root = find t k in
      let members = Option.value ~default:[] (Hashtbl.find_opt clusters root) in
      if not (List.mem k members) then Hashtbl.replace clusters root (k :: members))
    keys;
  Hashtbl.fold (fun _ members acc -> List.sort String.compare members :: acc) clusters []
  |> List.sort (fun a b ->
         match a, b with
         | x :: _, y :: _ -> String.compare x y
         | _, _ -> 0)
