type step =
  | Normalize of { field : string; normalizer : string }
  | Derive of { field : string; from_field : string; normalizer : string }
  | Filter of { label : string; keep : Tuple.t -> bool }
  | Dedupe of {
      match_field : string;
      blocking_fields : string list;
      measure : string;
      same_above : float;
      different_below : float;
      window : int;
    }

type flow = {
  flow_name : string;
  steps : step list;
}

type report = {
  output : Cl_merge_purge.record list;
  input_count : int;
  merged_clusters : int;
  exceptions : (string * string) list;
  comparisons : int;
}

exception Flow_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Flow_error m)) fmt

let normalizer_exn name =
  match Cl_normalize.find name with
  | Some f -> f
  | None -> fail "unknown normalizer %S" name

let measure_exn name =
  match Cl_similarity.find name with
  | Some f -> f
  | None -> fail "unknown similarity measure %S" name

let field_text tup field =
  match Tuple.get tup field with
  | Some v -> Value.to_string v
  | None -> ""

let merge_cluster records =
  match List.sort (fun a b -> String.compare a.Cl_merge_purge.key b.Cl_merge_purge.key) records with
  | [] -> invalid_arg "Cl_flow.merge_cluster: empty cluster"
  | (first :: _) as ordered ->
    (* Field-wise union: first non-null value in key order wins; fields
       appear in first-seen order. *)
    let merged =
      List.fold_left
        (fun acc r ->
          List.fold_left
            (fun acc (fname, v) ->
              match Tuple.get acc fname with
              | None -> Tuple.set acc fname v
              | Some Value.Null when v <> Value.Null -> Tuple.set acc fname v
              | Some _ -> acc)
            acc
            (Tuple.fields r.Cl_merge_purge.data))
        Tuple.empty ordered
    in
    { Cl_merge_purge.key = first.Cl_merge_purge.key; data = merged }

let records_of_tuples ~key_field tuples =
  List.map
    (fun tup -> { Cl_merge_purge.key = field_text tup key_field; data = tup })
    tuples

let apply_dedupe ?concordance ?lineage ~match_field ~blocking_fields ~measure ~same_above
    ~different_below ~window records =
  let base_matcher =
    Cl_merge_purge.similarity_matcher ~field:match_field ~measure:(measure_exn measure)
      ~same_above ~different_below ()
  in
  (* Index records by key so clusters can be merged afterwards. *)
  let by_key = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace by_key r.Cl_merge_purge.key r) records;
  let records, matcher =
    match concordance with
    | None -> (records, base_matcher)
    | Some conc ->
      (* Determinations key on the record keys; thread them through the
         tuples in a reserved field the matcher can read back. *)
      let tagged =
        List.map
          (fun r ->
            { r with
              Cl_merge_purge.data =
                Tuple.set r.Cl_merge_purge.data "__key"
                  (Value.String r.Cl_merge_purge.key) })
          records
      in
      let key_of tup = field_text tup "__key" in
      (tagged, Cl_merge_purge.with_concordance_keys conc ~key_of base_matcher)
  in
  let keys =
    match blocking_fields with
    | [] -> [ (fun tup -> field_text tup match_field) ]
    | fields -> List.map (fun f tup -> field_text tup f) fields
  in
  let outcome = Cl_merge_purge.sorted_neighborhood ~window ~keys matcher records in
  (* From here on, work with the untagged records in [by_key]. *)
  let records =
    List.map
      (fun r ->
        match Hashtbl.find_opt by_key r.Cl_merge_purge.key with
        | Some original -> original
        | None -> r)
      records
  in
  (* Replace each cluster with its merged record. *)
  let clustered_keys = Hashtbl.create 64 in
  List.iter
    (fun cluster -> List.iter (fun k -> Hashtbl.replace clustered_keys k ()) cluster)
    outcome.Cl_merge_purge.clusters;
  let merged_records =
    List.map
      (fun cluster ->
        let members = List.filter_map (Hashtbl.find_opt by_key) cluster in
        let merged = merge_cluster members in
        (match lineage with
        | Some lin ->
          ignore
            (Cl_lineage.derive lin ~operation:"merge"
               ~detail:(String.concat "," cluster)
               ~inputs:cluster
               merged.Cl_merge_purge.key)
        | None -> ());
        merged)
      outcome.Cl_merge_purge.clusters
  in
  let survivors =
    List.filter (fun r -> not (Hashtbl.mem clustered_keys r.Cl_merge_purge.key)) records
  in
  ( survivors @ merged_records,
    List.length outcome.Cl_merge_purge.clusters,
    outcome.Cl_merge_purge.unsure_pairs,
    outcome.Cl_merge_purge.comparisons )

let run ?concordance ?lineage flow records =
  let input_count = List.length records in
  let merged = ref 0 and exceptions = ref [] and comparisons = ref 0 in
  let step records s =
    match s with
    | Normalize { field; normalizer } ->
      let f = normalizer_exn normalizer in
      List.map
        (fun r ->
          match Tuple.get r.Cl_merge_purge.data field with
          | Some v ->
            let normalized = Value.String (f (Value.to_string v)) in
            { r with Cl_merge_purge.data = Tuple.set r.Cl_merge_purge.data field normalized }
          | None -> r)
        records
    | Derive { field; from_field; normalizer } ->
      let f = normalizer_exn normalizer in
      List.map
        (fun r ->
          let derived = Value.String (f (field_text r.Cl_merge_purge.data from_field)) in
          { r with Cl_merge_purge.data = Tuple.set r.Cl_merge_purge.data field derived })
        records
    | Filter { label = _; keep } ->
      List.filter (fun r -> keep r.Cl_merge_purge.data) records
    | Dedupe { match_field; blocking_fields; measure; same_above; different_below; window } ->
      let out, m, unsure, comps =
        apply_dedupe ?concordance ?lineage ~match_field ~blocking_fields ~measure ~same_above
          ~different_below ~window records
      in
      merged := !merged + m;
      exceptions := !exceptions @ unsure;
      comparisons := !comparisons + comps;
      out
  in
  let output = List.fold_left step records flow.steps in
  {
    output;
    input_count;
    merged_clusters = !merged;
    exceptions = !exceptions;
    comparisons = !comparisons;
  }
