(** The concordance database (section 3.2): "a separate data store …
    created to serve to match records from two or more different original
    data sources", recording determinations of object identity so that
    "past human decisions are reapplied … and exceptions are trapped".

    Determinations are keyed on an unordered pair of record keys
    (typically [source:id] strings).  Each carries a verdict, who made
    it, and a monotone sequence number so decisions can be audited and
    rolled back in order. *)

type verdict =
  | Same        (** the two records denote the same real-world object *)
  | Different
  | Unsure      (** trapped for human review *)

type origin =
  | Human
  | Automatic of string  (** rule / similarity measure that decided *)

type determination = {
  key_a : string;
  key_b : string;
  verdict : verdict;
  origin : origin;
  seq : int;
  note : string;
}

type t

val create : unit -> t

val record :
  t -> ?note:string -> origin -> verdict -> string -> string -> determination
(** Record a determination for the (unordered) key pair, superseding any
    earlier one. *)

val lookup : t -> string -> string -> determination option
(** The latest determination for the pair, if any. *)

val pending : t -> determination list
(** All pairs whose latest verdict is [Unsure], oldest first — the human
    work queue. *)

val resolve : t -> ?note:string -> verdict -> string -> string -> determination
(** A human answers a pending (or any) pair. *)

val history : t -> string -> string -> determination list
(** Every determination ever made for the pair, oldest first. *)

val rollback : t -> int -> int
(** [rollback t seq] removes all determinations with sequence number
    [> seq]; returns how many were removed.  Earlier verdicts for the
    affected pairs become current again. *)

val size : t -> int
(** Number of pairs with a current determination. *)

val to_csv : t -> string
val of_csv : string -> t
(** Round-trip persistence for the store. *)
