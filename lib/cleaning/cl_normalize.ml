let collapse_whitespace s =
  let buf = Buffer.create (String.length s) in
  let pending_space = ref false in
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then pending_space := true
      else begin
        if !pending_space && Buffer.length buf > 0 then Buffer.add_char buf ' ';
        pending_space := false;
        Buffer.add_char buf c
      end)
    s;
  Buffer.contents buf

let strip_punctuation s =
  let keep c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = ' '
    || Char.code c >= 128
  in
  let buf = Buffer.create (String.length s) in
  String.iter (fun c -> if keep c then Buffer.add_char buf c else Buffer.add_char buf ' ') s;
  Buffer.contents buf

let casefold = String.lowercase_ascii

let basic s = collapse_whitespace (casefold (strip_punctuation s))

let split_words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let honorifics = [ "mr"; "mrs"; "ms"; "dr"; "prof"; "sir"; "jr"; "sr"; "ii"; "iii" ]
let corp_suffixes = [ "inc"; "incorporated"; "corp"; "corporation"; "llc"; "ltd"; "co"; "gmbh"; "plc" ]

let normalize_name s =
  (* "last, first" reordering happens before punctuation stripping. *)
  let s =
    match String.index_opt s ',' with
    | Some i when i > 0 && i < String.length s - 1 ->
      let last = String.sub s 0 i in
      let first = String.sub s (i + 1) (String.length s - i - 1) in
      first ^ " " ^ last
    | Some _ | None -> s
  in
  let words = split_words (basic s) in
  let drop = honorifics @ corp_suffixes in
  let words = List.filter (fun w -> not (List.mem w drop)) words in
  String.concat " " words

let address_abbrevs =
  [
    ("st", "street"); ("str", "street"); ("ave", "avenue"); ("av", "avenue");
    ("blvd", "boulevard"); ("rd", "road"); ("dr", "drive"); ("ln", "lane");
    ("ct", "court"); ("pl", "place"); ("sq", "square"); ("hwy", "highway");
    ("pkwy", "parkway"); ("apt", "apartment"); ("ste", "suite"); ("fl", "floor");
    ("n", "north"); ("s", "south"); ("e", "east"); ("w", "west");
    ("ne", "northeast"); ("nw", "northwest"); ("se", "southeast"); ("sw", "southwest");
  ]

let normalize_address s =
  let words = split_words (basic s) in
  let expand w = match List.assoc_opt w address_abbrevs with Some full -> full | None -> w in
  String.concat " " (List.map expand words)

let normalize_phone s =
  let digits = String.to_seq s |> Seq.filter (fun c -> c >= '0' && c <= '9') |> String.of_seq in
  if String.length digits = 11 && digits.[0] = '1' then String.sub digits 1 10 else digits

let registry : (string, string -> string) Hashtbl.t = Hashtbl.create 16

let register name f = Hashtbl.replace registry name f

let () =
  register "identity" (fun s -> s);
  register "casefold" casefold;
  register "basic" basic;
  register "name" normalize_name;
  register "address" normalize_address;
  register "phone" normalize_phone

let find name = Hashtbl.find_opt registry name

let apply name s =
  match find name with
  | Some f -> f s
  | None -> raise Not_found

let names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort String.compare
