type record = {
  key : string;
  data : Tuple.t;
}

type matcher = Tuple.t -> Tuple.t -> Cl_concordance.verdict

let similarity_matcher ?(field = "name") ~measure ~same_above ~different_below () =
  fun a b ->
  let get tup =
    match Tuple.get tup field with
    | Some v -> Value.to_string v
    | None -> ""
  in
  let score = measure (get a) (get b) in
  if score >= same_above then Cl_concordance.Same
  else if score < different_below then Cl_concordance.Different
  else Cl_concordance.Unsure

type outcome = {
  clusters : string list list;
  comparisons : int;
  unsure_pairs : (string * string) list;
}

let run_pairs matcher pairs =
  let uf = Cl_unionfind.create () in
  let comparisons = ref 0 in
  let unsure = ref [] in
  List.iter
    (fun (a, b) ->
      (* Skip pairs already known to be the same entity. *)
      if not (Cl_unionfind.same uf a.key b.key) then begin
        incr comparisons;
        match matcher a.data b.data with
        | Cl_concordance.Same -> Cl_unionfind.union uf a.key b.key
        | Cl_concordance.Different -> ()
        | Cl_concordance.Unsure -> unsure := (a.key, b.key) :: !unsure
      end)
    pairs;
  let clusters = List.filter (fun g -> List.length g >= 2) (Cl_unionfind.groups uf) in
  { clusters; comparisons = !comparisons; unsure_pairs = List.rev !unsure }

let naive_pairs matcher records =
  let rec all_pairs acc = function
    | [] -> List.rev acc
    | r :: rest -> all_pairs (List.rev_append (List.map (fun r' -> (r, r')) rest) acc) rest
  in
  run_pairs matcher (all_pairs [] records)

let sorted_neighborhood ?(window = 10) ~keys matcher records =
  (* Collect candidate pairs from every pass, then run the matcher once
     per distinct pair. *)
  let seen = Hashtbl.create 256 in
  let pairs = ref [] in
  List.iter
    (fun block_key ->
      let sorted =
        List.stable_sort
          (fun a b -> String.compare (block_key a.data) (block_key b.data))
          records
      in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for j = i + 1 to min (n - 1) (i + window - 1) do
          let a = arr.(i) and b = arr.(j) in
          let pair_key =
            if String.compare a.key b.key <= 0 then (a.key, b.key) else (b.key, a.key)
          in
          if not (Hashtbl.mem seen pair_key) then begin
            Hashtbl.add seen pair_key ();
            pairs := (a, b) :: !pairs
          end
        done
      done)
    keys;
  run_pairs matcher (List.rev !pairs)

let with_concordance_keys conc ~key_of matcher =
  fun a b ->
  let ka = key_of a and kb = key_of b in
  match Cl_concordance.lookup conc ka kb with
  | Some d -> d.Cl_concordance.verdict
  | None ->
    let verdict = matcher a b in
    ignore (Cl_concordance.record conc (Cl_concordance.Automatic "matcher") verdict ka kb);
    verdict

let with_concordance conc matcher =
  with_concordance_keys conc
    ~key_of:(fun tup ->
      match Tuple.get tup "key" with
      | Some v -> Value.to_string v
      | None -> Tuple.to_string tup)
    matcher
