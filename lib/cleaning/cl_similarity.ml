let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let levenshtein_similarity a b =
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.0
  else 1.0 -. (float_of_int (levenshtein a b) /. float_of_int (max la lb))

let jaro a b =
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.0
  else if la = 0 || lb = 0 then 0.0
  else begin
    let window = max 0 ((max la lb / 2) - 1) in
    let a_matched = Array.make la false and b_matched = Array.make lb false in
    let matches = ref 0 in
    for i = 0 to la - 1 do
      let lo = max 0 (i - window) and hi = min (lb - 1) (i + window) in
      let rec scan j =
        if j > hi then ()
        else if (not b_matched.(j)) && a.[i] = b.[j] then begin
          a_matched.(i) <- true;
          b_matched.(j) <- true;
          incr matches
        end
        else scan (j + 1)
      in
      scan lo
    done;
    if !matches = 0 then 0.0
    else begin
      (* Count transpositions among matched characters. *)
      let transpositions = ref 0 in
      let j = ref 0 in
      for i = 0 to la - 1 do
        if a_matched.(i) then begin
          while not b_matched.(!j) do
            incr j
          done;
          if a.[i] <> b.[!j] then incr transpositions;
          incr j
        end
      done;
      let m = float_of_int !matches in
      let t = float_of_int (!transpositions / 2) in
      ((m /. float_of_int la) +. (m /. float_of_int lb) +. ((m -. t) /. m)) /. 3.0
    end
  end

let jaro_winkler ?(prefix_scale = 0.1) a b =
  let base = jaro a b in
  let max_prefix = min 4 (min (String.length a) (String.length b)) in
  let rec prefix_len i = if i < max_prefix && a.[i] = b.[i] then prefix_len (i + 1) else i in
  let l = float_of_int (prefix_len 0) in
  base +. (l *. prefix_scale *. (1.0 -. base))

let tokens s =
  String.split_on_char ' ' (Cl_normalize.basic s) |> List.filter (fun w -> w <> "")

let jaccard a b =
  let ta = List.sort_uniq String.compare (tokens a) in
  let tb = List.sort_uniq String.compare (tokens b) in
  match ta, tb with
  | [], [] -> 1.0
  | _, _ ->
    let inter = List.length (List.filter (fun t -> List.mem t tb) ta) in
    let union = List.length ta + List.length tb - inter in
    float_of_int inter /. float_of_int union

let ngrams n s =
  let padded = String.concat "" [ String.make (n - 1) '#'; s; String.make (n - 1) '#' ] in
  let len = String.length padded in
  if len < n then [ padded ]
  else List.init (len - n + 1) (fun i -> String.sub padded i n)

let ngram_similarity ?(n = 3) a b =
  let ga = ngrams n (Cl_normalize.basic a) and gb = ngrams n (Cl_normalize.basic b) in
  let count_common ga gb =
    let table = Hashtbl.create 32 in
    List.iter
      (fun g -> Hashtbl.replace table g (1 + Option.value ~default:0 (Hashtbl.find_opt table g)))
      gb;
    List.fold_left
      (fun acc g ->
        match Hashtbl.find_opt table g with
        | Some k when k > 0 ->
          Hashtbl.replace table g (k - 1);
          acc + 1
        | Some _ | None -> acc)
      0 ga
  in
  let common = count_common ga gb in
  let total = List.length ga + List.length gb in
  if total = 0 then 1.0 else 2.0 *. float_of_int common /. float_of_int total

(* ------------------------------------------------------------------ *)
(* TF-IDF cosine                                                       *)
(* ------------------------------------------------------------------ *)

type corpus = {
  doc_count : int;
  doc_freq : (string, int) Hashtbl.t;
}

let corpus_of docs =
  let doc_freq = Hashtbl.create 64 in
  List.iter
    (fun doc ->
      let seen = List.sort_uniq String.compare (tokens doc) in
      List.iter
        (fun t ->
          Hashtbl.replace doc_freq t (1 + Option.value ~default:0 (Hashtbl.find_opt doc_freq t)))
        seen)
    docs;
  { doc_count = List.length docs; doc_freq }

let idf corpus t =
  let df = Option.value ~default:0 (Hashtbl.find_opt corpus.doc_freq t) in
  log (float_of_int (corpus.doc_count + 1) /. float_of_int (df + 1)) +. 1.0

let tfidf_vector corpus s =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun t -> Hashtbl.replace counts t (1 + Option.value ~default:0 (Hashtbl.find_opt counts t)))
    (tokens s);
  let vec = Hashtbl.create 16 in
  Hashtbl.iter
    (fun t tf -> Hashtbl.replace vec t (float_of_int tf *. idf corpus t))
    counts;
  vec

let tfidf_cosine corpus a b =
  let va = tfidf_vector corpus a and vb = tfidf_vector corpus b in
  let dot = ref 0.0 in
  Hashtbl.iter
    (fun t wa ->
      match Hashtbl.find_opt vb t with
      | Some wb -> dot := !dot +. (wa *. wb)
      | None -> ())
    va;
  let norm v = sqrt (Hashtbl.fold (fun _ w acc -> acc +. (w *. w)) v 0.0) in
  let na = norm va and nb = norm vb in
  if na = 0.0 || nb = 0.0 then if na = nb then 1.0 else 0.0 else !dot /. (na *. nb)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, string -> string -> float) Hashtbl.t = Hashtbl.create 16

let register name f = Hashtbl.replace registry name f

let () =
  register "levenshtein" levenshtein_similarity;
  register "jaro" jaro;
  register "jaro_winkler" (fun a b -> jaro_winkler a b);
  register "jaccard" jaccard;
  register "ngram" (fun a b -> ngram_similarity a b);
  register "exact" (fun a b -> if String.equal a b then 1.0 else 0.0)

let find name = Hashtbl.find_opt registry name
