(** Union–find over string keys, used for the transitive closure of
    match decisions (if A=B and B=C then A, B, C are one entity). *)

type t

val create : unit -> t

val union : t -> string -> string -> unit
val find : t -> string -> string
(** Canonical representative (the key itself when never unioned). *)

val same : t -> string -> string -> bool

val groups : t -> string list list
(** Clusters with at least one member, each sorted, ordered by their
    smallest member.  Singletons that were never mentioned do not
    appear. *)
