(** Declarative data-cleaning flows (section 3.2: "We use a declarative
    representation of the flow", citing Galhardas et al.).

    A flow is a named list of steps applied to keyed records:

    - [Normalize]: rewrite a field through a registered normalizer;
    - [Derive]: compute a new field from existing ones;
    - [Filter]: drop records failing a predicate;
    - [Dedupe]: sorted-neighborhood duplicate detection over a field,
      clusters merged into one record (non-null field union, lowest key
      wins), with [Unsure] pairs trapped as exceptions for review.

    Running a flow is the paper's {e extraction} phase: known
    determinations replay from the concordance store, fresh [Unsure]
    pairs are trapped without stopping the run, and merges are recorded
    in the lineage store so they can be rolled back. *)

type step =
  | Normalize of { field : string; normalizer : string }
      (** normalizer is a {!Cl_normalize} registry name *)
  | Derive of { field : string; from_field : string; normalizer : string }
      (** add [field] = normalizer([from_field]) without overwriting *)
  | Filter of { label : string; keep : Tuple.t -> bool }
  | Dedupe of {
      match_field : string;      (** compared field *)
      blocking_fields : string list;  (** multi-pass blocking keys *)
      measure : string;          (** {!Cl_similarity} registry name *)
      same_above : float;
      different_below : float;
      window : int;
    }

type flow = {
  flow_name : string;
  steps : step list;
}

type report = {
  output : Cl_merge_purge.record list;
  input_count : int;
  merged_clusters : int;
  exceptions : (string * string) list;  (** unsure pairs, for humans *)
  comparisons : int;
}

exception Flow_error of string

val run :
  ?concordance:Cl_concordance.t ->
  ?lineage:Cl_lineage.t ->
  flow ->
  Cl_merge_purge.record list ->
  report
(** @raise Flow_error for unknown normalizer/measure names. *)

val merge_cluster :
  Cl_merge_purge.record list -> Cl_merge_purge.record
(** The merge rule: key of the lexicographically-smallest member,
    field-wise first-non-null union in that member order.
    @raise Invalid_argument on an empty cluster. *)

val records_of_tuples : key_field:string -> Tuple.t list -> Cl_merge_purge.record list
(** Key each tuple by the given field's textual value. *)
