(** Duplicate detection: the merge/purge problem (Hernandez–Stolfo,
    cited as [10, 11] in the paper).

    Records are tuples tagged with a unique key.  A {e matcher} decides
    whether two records denote the same entity.  Two algorithms:

    - {!naive_pairs}: compare all O(n²) pairs — the correctness baseline;
    - {!sorted_neighborhood}: sort by a blocking key and compare only
      within a sliding window — the scalable method, optionally run over
      several independent keys (multi-pass) whose results merge through
      the transitive closure.

    Both return entity clusters via union–find closure. *)

type record = {
  key : string;
  data : Tuple.t;
}

type matcher = Tuple.t -> Tuple.t -> Cl_concordance.verdict

val similarity_matcher :
  ?field:string ->
  measure:(string -> string -> float) ->
  same_above:float ->
  different_below:float ->
  unit ->
  matcher
(** Compare one field (default ["name"]) under a similarity measure:
    [Same] at or above [same_above], [Different] below
    [different_below], [Unsure] in between (the human-review band). *)

type outcome = {
  clusters : string list list;        (** entity groups (size >= 2) *)
  comparisons : int;                  (** matcher invocations *)
  unsure_pairs : (string * string) list;
}

val naive_pairs : matcher -> record list -> outcome

val sorted_neighborhood :
  ?window:int ->
  keys:(Tuple.t -> string) list ->
  matcher ->
  record list ->
  outcome
(** Multi-pass sorted neighborhood: one pass per blocking key (default
    window 10), union-find closure across passes. *)

val with_concordance :
  Cl_concordance.t -> matcher -> matcher
(** Wrap a matcher so recorded determinations short-circuit it (replaying
    past human decisions), and new automatic verdicts — including
    [Unsure] traps — are recorded.  Requires record keys; see
    {!with_concordance_keys}. *)

val with_concordance_keys :
  Cl_concordance.t ->
  key_of:(Tuple.t -> string) ->
  matcher ->
  matcher
(** Like {!with_concordance} but extracts pair keys from the tuples via
    [key_of]. *)
