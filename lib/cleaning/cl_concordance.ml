type verdict =
  | Same
  | Different
  | Unsure

type origin =
  | Human
  | Automatic of string

type determination = {
  key_a : string;
  key_b : string;
  verdict : verdict;
  origin : origin;
  seq : int;
  note : string;
}

type t = {
  (* pair key -> determinations, newest first *)
  table : (string * string, determination list) Hashtbl.t;
  mutable next_seq : int;
}

let create () = { table = Hashtbl.create 64; next_seq = 1 }

let norm_pair a b = if String.compare a b <= 0 then (a, b) else (b, a)

let record t ?(note = "") origin verdict a b =
  let key_a, key_b = norm_pair a b in
  let d = { key_a; key_b; verdict; origin; seq = t.next_seq; note } in
  t.next_seq <- t.next_seq + 1;
  let prior = Option.value ~default:[] (Hashtbl.find_opt t.table (key_a, key_b)) in
  Hashtbl.replace t.table (key_a, key_b) (d :: prior);
  d

let lookup t a b =
  match Hashtbl.find_opt t.table (norm_pair a b) with
  | Some (d :: _) -> Some d
  | Some [] | None -> None

let pending t =
  Hashtbl.fold
    (fun _ ds acc ->
      match ds with
      | ({ verdict = Unsure; _ } as d) :: _ -> d :: acc
      | _ -> acc)
    t.table []
  |> List.sort (fun a b -> Int.compare a.seq b.seq)

let resolve t ?note verdict a b = record t ?note Human verdict a b

let history t a b =
  match Hashtbl.find_opt t.table (norm_pair a b) with
  | Some ds -> List.rev ds
  | None -> []

let rollback t seq =
  let removed = ref 0 in
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] in
  List.iter
    (fun k ->
      let ds = Hashtbl.find t.table k in
      let keep = List.filter (fun d -> d.seq <= seq) ds in
      removed := !removed + (List.length ds - List.length keep);
      if keep = [] then Hashtbl.remove t.table k else Hashtbl.replace t.table k keep)
    keys;
  !removed

let size t = Hashtbl.length t.table

let verdict_to_string = function
  | Same -> "same"
  | Different -> "different"
  | Unsure -> "unsure"

let verdict_of_string = function
  | "same" -> Same
  | "different" -> Different
  | _ -> Unsure

let origin_to_string = function
  | Human -> "human"
  | Automatic rule -> "auto:" ^ rule

let origin_of_string s =
  if s = "human" then Human
  else if String.length s >= 5 && String.sub s 0 5 = "auto:" then
    Automatic (String.sub s 5 (String.length s - 5))
  else Automatic s

let to_csv t =
  let all =
    Hashtbl.fold (fun _ ds acc -> ds @ acc) t.table []
    |> List.sort (fun a b -> Int.compare a.seq b.seq)
  in
  let row d =
    [
      string_of_int d.seq; d.key_a; d.key_b; verdict_to_string d.verdict;
      origin_to_string d.origin; d.note;
    ]
  in
  Csv.print ([ "seq"; "key_a"; "key_b"; "verdict"; "origin"; "note" ] :: List.map row all)

let of_csv text =
  let t = create () in
  let rows =
    match Csv.parse text with
    | _header :: rest -> rest
    | [] -> []
  in
  List.iter
    (fun row ->
      match row with
      | [ seq; key_a; key_b; verdict; origin; note ] ->
        let d =
          {
            key_a;
            key_b;
            verdict = verdict_of_string verdict;
            origin = origin_of_string origin;
            seq = int_of_string seq;
            note;
          }
        in
        let prior = Option.value ~default:[] (Hashtbl.find_opt t.table (key_a, key_b)) in
        Hashtbl.replace t.table (key_a, key_b) (d :: prior);
        t.next_seq <- max t.next_seq (d.seq + 1)
      | _ -> ())
    rows;
  t
