type access =
  | A_sql of {
      source_name : string;
      export : string;
      fragment : Med_sqlgen.fragment;
      pattern : Xq_ast.pattern;
    }
  | A_sql_join of {
      source_name : string;
      fragment : Med_sqlgen.join_fragment;
      exports : string list;
    }
  | A_path of {
      source_name : string;
      export : string;
      path : Xml_path.t;
      pattern : Xq_ast.pattern;
    }
  | A_match of {
      source_name : string;
      export : string;
      pattern : Xq_ast.pattern;
    }
  | A_view of {
      view : string;
      pattern : Xq_ast.pattern;
    }
  | A_sql_bind of {
      source_name : string;
      export : string;
      fragment : Med_sqlgen.fragment;
      pattern : Xq_ast.pattern;
      bind_driver : string;  (* access id whose rows supply the key values *)
      bind_var : string;     (* join variable shared with the driver *)
      bind_col : string;     (* column of [fragment] the IN-list filters *)
    }

type opt_info = {
  oi_mode : string;        (* "dp" | "dp-fallback:greedy" *)
  oi_order : string;       (* chosen join tree, e.g. "((a1 ⋈ a0) ⋈ a2)" *)
  oi_est_rows : float;
  oi_est_cost_ms : float;
  oi_binds : (string * string) list;  (* bound access id -> driver id *)
}

type compiled = {
  plan : Alg_plan.t;
  accesses : (string * access) list;
  construct : Xq_ast.template;
  source_query : Xq_ast.query;
  residual_conditions : Alg_expr.t list;
  opt_info : opt_info option;
}

exception Plan_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Plan_error m)) fmt

(* Stable identity of an access across compilations of the same query:
   the cardinality-feedback store is keyed by this, so observations made
   by one execution are found by the next plan of the same shape. *)
let access_key = function
  | A_sql { source_name; fragment; _ } ->
    Printf.sprintf "sql|%s|%s" source_name fragment.Med_sqlgen.sql_text
  | A_sql_join { source_name; fragment; _ } ->
    Printf.sprintf "sqljoin|%s|%s" source_name fragment.Med_sqlgen.jf_sql_text
  | A_path { source_name; export; path; pattern } ->
    Printf.sprintf "path|%s.%s|%s|%s" source_name export (Xml_path.to_string path)
      (Xq_pretty.pattern_to_string pattern)
  | A_match { source_name; export; pattern } ->
    Printf.sprintf "match|%s.%s|%s" source_name export
      (Xq_pretty.pattern_to_string pattern)
  | A_view { view; pattern } ->
    Printf.sprintf "view|%s|%s" view (Xq_pretty.pattern_to_string pattern)
  | A_sql_bind { source_name; fragment; bind_driver; bind_var; _ } ->
    (* A bound fetch ships different SQL per driver extent, so its
       feedback must not pollute the plain fragment's estimates. *)
    Printf.sprintf "sqlbind|%s|%s|%s<-%s" source_name
      fragment.Med_sqlgen.sql_text bind_var bind_driver

let access_target = function
  | A_sql { source_name; _ }
  | A_sql_join { source_name; _ }
  | A_path { source_name; _ }
  | A_match { source_name; _ }
  | A_sql_bind { source_name; _ } -> source_name
  | A_view { view; _ } -> view

(* Satellite of the cost-based optimizer: every row-count guess funnels
   through this chain — exact execution feedback first, statistics-based
   estimation second, the flat default last. *)
let stats_rows stats access =
  match access with
  | A_sql { source_name; fragment; _ } ->
    Med_estimate.select_rows stats ~source:source_name fragment.Med_sqlgen.sql
  | A_sql_bind { source_name; fragment; _ } ->
    (* The IN-list is computed at fetch time; the unbound fragment's
       estimate is a safe superset. *)
    Med_estimate.select_rows stats ~source:source_name fragment.Med_sqlgen.sql
  | A_sql_join { source_name; fragment; _ } ->
    Med_estimate.select_rows stats ~source:source_name fragment.Med_sqlgen.jf_sql
  | A_path { source_name; export; _ } | A_match { source_name; export; _ } ->
    Med_estimate.table_rows stats ~source:source_name ~export
  | A_view _ -> None

(* Exact match counts from an already-built structural guide, for path
   accesses.  Sits between feedback and statistics in the chain: as
   precise as feedback (it counts the actual document), but available
   before the access ever ran. *)
let index_rows = function
  | A_path { source_name; export; path; _ } ->
    Med_estimate.path_rows ~source:source_name ~export path
  | A_sql _ | A_sql_bind _ | A_sql_join _ | A_match _ | A_view _ -> None

let estimated_rows ?feedback ?stats access =
  let observed =
    Option.bind feedback (fun fb -> Obs_feedback.observed fb (access_key access))
  in
  match observed with
  | Some rows -> rows
  | None -> (
    match index_rows access with
    | Some rows -> rows
    | None -> (
      match Option.bind stats (fun s -> stats_rows s access) with
      | Some rows -> rows
      | None -> Med_estimate.default_rows))

(* Variables an access binds. *)
let access_vars = function
  | A_sql { fragment; _ } | A_sql_bind { fragment; _ } ->
    List.map fst fragment.Med_sqlgen.binds
    @ (match fragment.Med_sqlgen.row_var with Some v -> [ v ] | None -> [])
  | A_sql_join { fragment; _ } -> List.map fst fragment.Med_sqlgen.jf_binds
  | A_path { pattern; _ } | A_match { pattern; _ } | A_view { pattern; _ } ->
    Xq_ast.pattern_vars pattern

(* Pick the access path for one clause, absorbing pushable conditions. *)
let clause_access opts catalog (clause : Xq_ast.clause) candidates =
  let name = clause.Xq_ast.clause_source in
  match Med_catalog.find_view catalog name with
  | Some _ -> (A_view { view = name; pattern = clause.Xq_ast.clause_pattern }, [])
  | None -> (
    match Src_registry.resolve_export (Med_catalog.registry catalog) name with
    | None -> fail "unknown source or view %S" name
    | Some (src, export) -> (
      let fallback = A_match { source_name = src.Source.name; export; pattern = clause.Xq_ast.clause_pattern } in
      match src.Source.kind with
      | Source.Xml_store ->
        (* Path preselection when the store accepts it. *)
        if src.Source.capability.Source.can_path && opts.Med_sqlgen.pushdown_select then
          match Med_pathgen.compile_pattern clause.Xq_ast.clause_pattern with
          | Some path ->
            ( A_path
                { source_name = src.Source.name; export; path;
                  pattern = clause.Xq_ast.clause_pattern },
              [] )
          | None -> (fallback, [])
        else (fallback, [])
      | Source.Flat_file -> (fallback, [])
      | Source.Relational -> (
        if not src.Source.capability.Source.can_select then (fallback, [])
        else
          let schema =
            List.find_opt
              (fun r -> String.equal r.Dschema.rel_name export)
              (src.Source.relations ())
          in
          match schema with
          | None -> (fallback, [])
          | Some schema -> (
            (* Only the canonical row shape compiles to SQL. *)
            let pattern = clause.Xq_ast.clause_pattern in
            if pattern.Xq_ast.tag <> "row" && pattern.Xq_ast.tag <> "*" then (fallback, [])
            else
              match Med_sqlgen.compile_clause opts schema pattern candidates with
              | None -> (fallback, [])
              | Some fragment ->
                ( A_sql { source_name = src.Source.name; export; fragment; pattern },
                  fragment.Med_sqlgen.pushed_conditions )))))

(* Join [left] (vars [lvars]) with the scan of [access_id] (vars [rvars])
   on their shared variables.  The right side's shared variables are
   renamed so both keys stay addressable, then projected away. *)
let join_step left lvars right rvars =
  let shared = List.filter (fun v -> List.mem v lvars) rvars in
  let out_vars = lvars @ List.filter (fun v -> not (List.mem v lvars)) rvars in
  match shared with
  | [] ->
    (Alg_plan.Nl_join { left; right; pred = None }, out_vars)
  | key :: rest ->
    let rename_map = List.map (fun v -> (v, v ^ "#r")) shared in
    let renamed = Alg_plan.Rename (right, rename_map) in
    let residual =
      match rest with
      | [] -> None
      | rest ->
        let eqs =
          List.map
            (fun v -> Alg_expr.Binop (Alg_expr.Eq, Alg_expr.Var v, Alg_expr.Var (v ^ "#r")))
            rest
        in
        Some (List.fold_left (fun acc e -> Alg_expr.Binop (Alg_expr.And, acc, e)) (List.hd eqs) (List.tl eqs))
    in
    let join =
      Alg_plan.Hash_join
        {
          left;
          right = renamed;
          left_key = Alg_expr.Var key;
          right_key = Alg_expr.Var (key ^ "#r");
          residual;
        }
    in
    (Alg_plan.Project (join, out_vars), out_vars)

(* When several clauses address tables of the same join-capable
   relational source, try to compile them into one SQL join fragment.
   Returns (grouped access option, indices it covers). *)
let try_join_group opts catalog (clauses : Xq_ast.clause list) candidates =
  let reg = Med_catalog.registry catalog in
  let resolved =
    List.mapi
      (fun i clause ->
        if Med_catalog.find_view catalog clause.Xq_ast.clause_source <> None then (i, None)
        else
          match Src_registry.resolve_export reg clause.Xq_ast.clause_source with
          | Some (src, export)
            when src.Source.kind = Source.Relational
                 && src.Source.capability.Source.can_join
                 && src.Source.capability.Source.can_select ->
            (i, Some (src, export, clause.Xq_ast.clause_pattern))
          | Some _ | None -> (i, None))
      clauses
  in
  (* Group indices by source name. *)
  let by_source : (string, (int * Source.t * string * Xq_ast.pattern) list) Hashtbl.t =
    Hashtbl.create 4
  in
  List.iter
    (fun (i, entry) ->
      match entry with
      | Some (src, export, pattern) ->
        let key = src.Source.name in
        let prior = Option.value ~default:[] (Hashtbl.find_opt by_source key) in
        Hashtbl.replace by_source key (prior @ [ (i, src, export, pattern) ])
      | None -> ())
    resolved;
  Hashtbl.fold
    (fun _ group acc ->
      match acc with
      | Some _ -> acc (* one group per compile pass; others handled next passes *)
      | None ->
        if List.length group < 2 then None
        else begin
          let schemas_ok =
            List.map
              (fun (_, src, export, pattern) ->
                match
                  List.find_opt
                    (fun r -> String.equal r.Dschema.rel_name export)
                    (src.Source.relations ())
                with
                | Some schema -> Some (schema, pattern, export)
                | None -> None)
              group
          in
          if List.exists Option.is_none schemas_ok then None
          else begin
            let entries = List.map Option.get schemas_ok in
            match
              Med_sqlgen.compile_join_clauses opts
                (List.map (fun (schema, pattern, _) -> (schema, pattern)) entries)
                candidates
            with
            | None -> None
            | Some fragment ->
              let _, src, _, _ = List.hd group in
              Some
                ( A_sql_join
                    {
                      source_name = src.Source.name;
                      fragment;
                      exports = List.map (fun (_, _, e) -> e) entries;
                    },
                  List.map (fun (i, _, _, _) -> i) group,
                  fragment.Med_sqlgen.jf_pushed_conditions )
          end
        end)
    by_source None

let rec remove_once x = function
  | [] -> []
  | y :: tl -> if x == y then tl else y :: remove_once x tl

let m_dp_plans = Obs_metrics.counter "opt.dp_plans"
let m_dp_fallbacks = Obs_metrics.counter "opt.dp_fallbacks"
let m_bind_joins = Obs_metrics.counter "opt.bind_joins"

(* Sources not wrapped in the network simulator (and view expansions)
   cost nothing to reach; cardinality alone then drives the order. *)
let local_profile =
  { Net_sim.latency_ms = 0.0; per_tuple_ms = 0.0; availability = 1.0 }

let access_profile access =
  match access with
  | A_view _ -> local_profile
  | _ ->
    Option.value ~default:local_profile (Net_sim.profile_of (access_target access))

(* The column a variable reads from, for accesses whose binds map to
   real source columns (the join-selectivity and bind-join paths). *)
let var_column access v =
  match access with
  | A_sql { source_name; export; fragment; _ }
  | A_sql_bind { source_name; export; fragment; _ } ->
    Option.map
      (fun col -> (source_name, export, col))
      (List.assoc_opt v fragment.Med_sqlgen.binds)
  | A_sql_join _ | A_path _ | A_match _ | A_view _ -> None

(* Bind-join conversion: after the optimizer fixes an order, a large
   relational fragment joined to a small driver on a variable the
   fragment exposes as a column can ship [col IN (driver keys)] instead
   of the whole table.  The IN-list is a superset filter of the
   equi-join above it (NULL keys never join, SQL and engine agree), so
   answers are untouched — only shipped rows shrink.  [bind_cap] bounds
   the keys we are willing to expand into SQL text. *)
let bind_cap = 1024.0

let choose_binds opts rels vars ests =
  let n = Array.length rels in
  if not opts.Med_sqlgen.pushdown_select then []
  else begin
    let is_driver i =
      match snd rels.(i) with A_sql _ | A_sql_join _ -> true | _ -> false
    in
    let used_as_driver = Array.make n false in
    let converted = Array.make n false in
    let by_est_desc =
      List.sort (fun i j -> compare ests.(j) ests.(i)) (List.init n Fun.id)
    in
    List.filter_map
      (fun j ->
        match snd rels.(j) with
        | A_sql { fragment; _ } when not used_as_driver.(j) ->
          let candidates =
            List.filter_map
              (fun i ->
                if i = j || converted.(i) || not (is_driver i)
                   || ests.(i) > bind_cap
                   || ests.(i) *. 2.0 > ests.(j)
                then None
                else
                  (* first bound column shared with the driver *)
                  List.find_map
                    (fun (v, _) ->
                      if List.mem v vars.(i)
                         && var_column (snd rels.(j)) v <> None
                      then Some (i, v)
                      else None)
                    fragment.Med_sqlgen.binds)
              (List.init n Fun.id)
          in
          let best =
            List.fold_left
              (fun acc (i, v) ->
                match acc with
                | Some (bi, _) when ests.(bi) <= ests.(i) -> acc
                | _ -> Some (i, v))
              None candidates
          in
          Option.map
            (fun (i, v) ->
              used_as_driver.(i) <- true;
              converted.(j) <- true;
              (j, i, v))
            best
        | _ -> None)
      by_est_desc
  end

let apply_binds rels binds accesses =
  List.mapi
    (fun j entry ->
      match List.find_opt (fun (t, _, _) -> t = j) binds with
      | None -> entry
      | Some (_, i, v) -> (
        match entry with
        | aid, A_sql { source_name; export; fragment; pattern } ->
          Obs_metrics.inc m_bind_joins;
          let bind_col =
            match List.assoc_opt v fragment.Med_sqlgen.binds with
            | Some col -> col
            | None -> assert false (* choose_binds only picks bound vars *)
          in
          ( aid,
            A_sql_bind
              { source_name; export; fragment; pattern;
                bind_driver = fst rels.(i); bind_var = v; bind_col } )
        | _ -> entry))
    accesses

let compile ?(opts = Med_sqlgen.default_options) ?feedback catalog (q : Xq_ast.query) =
  (* Resolve accesses clause by clause; once a condition is pushed into a
     fragment it leaves the residual pool. *)
  let residual = ref q.Xq_ast.conditions in
  (* First, try to collapse same-source clause groups into single SQL
     join fragments (repeat until no group remains). *)
  let grouped : (string * access) list ref = ref [] in
  let covered : int list ref = ref [] in
  let next_group_id = ref 0 in
  let continue = ref opts.Med_sqlgen.pushdown_join in
  while !continue do
    let remaining_clauses =
      List.filteri (fun i _ -> not (List.mem i !covered)) q.Xq_ast.clauses
    in
    let index_map =
      List.filteri (fun i _ -> not (List.mem i !covered))
        (List.mapi (fun i _ -> i) q.Xq_ast.clauses)
    in
    match try_join_group opts catalog remaining_clauses !residual with
    | Some (access, local_indices, pushed) ->
      let global = List.map (List.nth index_map) local_indices in
      covered := !covered @ global;
      residual := List.filter (fun c -> not (List.memq c pushed)) !residual;
      grouped := !grouped @ [ (Printf.sprintf "j%d" !next_group_id, access) ];
      incr next_group_id
    | None -> continue := false
  done;
  let singles =
    List.concat
      (List.mapi
         (fun i clause ->
           if List.mem i !covered then []
           else begin
             let access, pushed = clause_access opts catalog clause !residual in
             residual := List.filter (fun c -> not (List.memq c pushed)) !residual;
             [ (Printf.sprintf "a%d" i, access) ]
           end)
         q.Xq_ast.clauses)
  in
  let accesses = !grouped @ singles in
  let stats = Med_catalog.stats catalog in
  (* Every row-count guess below goes through the unified estimator:
     exact execution feedback, then statistics, then the flat default. *)
  let weight (_, access) = estimated_rows ?feedback ~stats access in
  let pick_min = function
    | [] -> None
    | first :: rest ->
      let best, _ =
        List.fold_left
          (fun (best, best_w) entry ->
            let w = weight entry in
            if w < best_w then (entry, w) else (best, best_w))
          (first, weight first) rest
      in
      Some best
  in
  let scan (aid, _) = Alg_plan.Scan { source = aid; binding = "*" } in
  (* Greedy connected join order, weighted by estimated cardinality: the
     cheapest access drives the build side, and at each step the
     cheapest access sharing a variable with the accumulated set joins
     next.  Without feedback or statistics every weight is the same
     default, ties keep list order, and the order degenerates to the
     original first-come greedy walk. *)
  let greedy_walk () =
    match pick_min accesses with
    | None -> fail "query has no clauses"
    | Some first ->
      let pending = ref (remove_once first accesses) in
      let current = ref (scan first) in
      let current_vars = ref (access_vars (snd first)) in
      while !pending <> [] do
        let connected, disconnected =
          List.partition
            (fun (_, access) ->
              List.exists (fun v -> List.mem v !current_vars) (access_vars access))
            !pending
        in
        let next, remaining =
          match connected with
          | [] -> (
            match pick_min disconnected with
            | Some next -> (next, remove_once next disconnected)
            | None -> assert false)
          | _ -> (
            match pick_min connected with
            | Some next -> (next, remove_once next connected @ disconnected)
            | None -> assert false)
        in
        let joined, vars =
          join_step !current !current_vars (scan next) (access_vars (snd next))
        in
        current := joined;
        current_vars := vars;
        pending := remaining
      done;
      !current
  in
  let plan, accesses, opt_info =
    match Med_catalog.optimizer catalog with
    | Med_optimize.Greedy -> (greedy_walk (), accesses, None)
    | Med_optimize.Dp _ when List.length accesses < 2 ->
      (greedy_walk (), accesses, None)
    | Med_optimize.Dp { max_relations } -> (
      let rels = Array.of_list accesses in
      let vars = Array.map (fun (_, a) -> access_vars a) rels in
      let ests = Array.map weight rels in
      let shared i j = List.filter (fun v -> List.mem v vars.(j)) vars.(i) in
      let connected i j = shared i j <> [] in
      (* Per-edge selectivity: 1/max(distinct) when statistics know the
         join columns, the flat hash-join guess otherwise. *)
      let join_selectivity i j =
        List.fold_left
          (fun acc v ->
            let distinct_side k =
              Option.bind (var_column (snd rels.(k)) v)
                (fun (source, export, column) ->
                  Med_estimate.column_distinct stats ~source ~export ~column)
            in
            let edge_sel =
              match (distinct_side i, distinct_side j) with
              | Some di, Some dj -> 1.0 /. float_of_int (max 1 (max di dj))
              | Some d, None | None, Some d -> 1.0 /. float_of_int (max 1 d)
              | None, None -> 0.05
            in
            acc *. min 1.0 edge_sel)
          1.0 (shared i j)
      in
      let opt_rels =
        Array.mapi
          (fun i (aid, access) ->
            let profile = access_profile access in
            ignore aid;
            {
              Med_optimize.r_id = fst rels.(i);
              r_rows = ests.(i);
              r_latency_ms = profile.Net_sim.latency_ms;
              r_per_tuple_ms = profile.Net_sim.per_tuple_ms;
            })
          rels
      in
      match
        Med_optimize.enumerate ~max_relations ~connected ~join_selectivity
          opt_rels
      with
      | None ->
        Obs_metrics.inc m_dp_fallbacks;
        ( greedy_walk (), accesses,
          Some
            {
              oi_mode = "dp-fallback:greedy";
              oi_order = "";
              oi_est_rows = 0.0;
              oi_est_cost_ms = 0.0;
              oi_binds = [];
            } )
      | Some chosen ->
        Obs_metrics.inc m_dp_plans;
        let rec build = function
          | Med_optimize.Leaf i -> (scan rels.(i), vars.(i))
          | Med_optimize.Join (l, r) ->
            let lp, lv = build l in
            let rp, rv = build r in
            join_step lp lv rp rv
        in
        let plan, _ = build chosen.Med_optimize.p_tree in
        let binds = choose_binds opts rels vars ests in
        let accesses = apply_binds rels binds accesses in
        ( plan, accesses,
          Some
            {
              oi_mode = "dp";
              oi_order = Med_optimize.to_string opt_rels chosen.Med_optimize.p_tree;
              oi_est_rows = chosen.Med_optimize.p_rows;
              oi_est_cost_ms = chosen.Med_optimize.p_cost;
              oi_binds =
                List.map (fun (j, i, _) -> (fst rels.(j), fst rels.(i))) binds;
            } ))
  in
  (* Residual conditions filter on top. *)
  let plan =
    List.fold_left (fun p cond -> Alg_plan.Select (p, cond)) plan !residual
  in
  (* ORDER BY / LIMIT: when the whole query is a single SQL fragment with
     nothing filtering above it, ship the ordering and the limit to the
     source (only the first rows cross the wire). *)
  let accesses, order_pushed =
    match accesses, !residual with
    | [ (aid, A_sql ({ fragment; _ } as spec)) ], []
      when q.Xq_ast.order_by <> [] || q.Xq_ast.limit <> None ->
      let translated =
        List.map
          (fun (e, asc) ->
            Option.map
              (fun sql_e -> { Sql_ast.order_expr = sql_e; ascending = asc })
              (Med_sqlgen.translate_condition fragment.Med_sqlgen.binds e))
          q.Xq_ast.order_by
      in
      if List.exists Option.is_none translated then (accesses, false)
      else begin
        let select =
          {
            fragment.Med_sqlgen.sql with
            Sql_ast.order_by = List.map Option.get translated;
            limit = q.Xq_ast.limit;
          }
        in
        let fragment =
          {
            fragment with
            Med_sqlgen.sql = select;
            sql_text = Sql_print.select_to_string select;
          }
        in
        ([ (aid, A_sql { spec with fragment }) ], true)
      end
    | _, _ -> (accesses, false)
  in
  ignore order_pushed;
  (* Ordering and limit stay in the plan even when shipped: re-applying
     them over an already ordered/limited stream is a no-op, and it keeps
     the capability fallback (which ships unordered rows) correct. *)
  let plan =
    match q.Xq_ast.order_by with
    | [] -> plan
    | specs ->
      Alg_plan.Sort
        (plan, List.map (fun (e, asc) -> { Alg_plan.sort_key = e; ascending = asc }) specs)
  in
  let plan =
    match q.Xq_ast.limit with
    | None -> plan
    | Some n -> Alg_plan.Limit (plan, n)
  in
  {
    plan;
    accesses;
    construct = q.Xq_ast.construct;
    source_query = q;
    residual_conditions = !residual;
    opt_info;
  }

let source_rows ?feedback ?stats compiled aid =
  match List.assoc_opt aid compiled.accesses with
  | None -> Med_estimate.default_rows
  | Some access -> estimated_rows ?feedback ?stats access

let access_to_string (aid, access) =
  match access with
  | A_sql { source_name; fragment; _ } ->
    Printf.sprintf "  %s -> SQL @%s: %s" aid source_name fragment.Med_sqlgen.sql_text
  | A_sql_join { source_name; fragment; _ } ->
    Printf.sprintf "  %s -> SQL-JOIN @%s: %s" aid source_name fragment.Med_sqlgen.jf_sql_text
  | A_path { source_name; export; path; pattern } ->
    Printf.sprintf "  %s -> PATH @%s.%s: %s then match %s" aid source_name export
      (Xml_path.to_string path)
      (Xq_pretty.pattern_to_string pattern)
  | A_match { source_name; export; pattern } ->
    Printf.sprintf "  %s -> MATCH @%s.%s: %s" aid source_name export
      (Xq_pretty.pattern_to_string pattern)
  | A_view { view; pattern } ->
    Printf.sprintf "  %s -> VIEW %s: %s" aid view (Xq_pretty.pattern_to_string pattern)
  | A_sql_bind { source_name; fragment; bind_driver; bind_var; bind_col; _ } ->
    Printf.sprintf "  %s -> SQL-BIND @%s: %s [%s IN keys of %s.$%s]" aid
      source_name fragment.Med_sqlgen.sql_text bind_col bind_driver bind_var

let opt_info_to_string oi =
  if oi.oi_order = "" then Printf.sprintf "optimizer: %s" oi.oi_mode
  else
    Printf.sprintf "optimizer: %s order=%s est_rows=%.0f est_cost=%.2fms%s"
      oi.oi_mode oi.oi_order oi.oi_est_rows oi.oi_est_cost_ms
      (match oi.oi_binds with
      | [] -> ""
      | binds ->
        " binds="
        ^ String.concat ","
            (List.map (fun (t, d) -> Printf.sprintf "%s<-%s" t d) binds))

let explain compiled =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Alg_plan.explain compiled.plan);
  (match compiled.opt_info with
  | None -> ()
  | Some oi ->
    Buffer.add_string buf (opt_info_to_string oi);
    Buffer.add_char buf '\n');
  Buffer.add_string buf "accesses:\n";
  List.iter
    (fun entry ->
      Buffer.add_string buf (access_to_string entry);
      Buffer.add_char buf '\n')
    compiled.accesses;
  (match compiled.residual_conditions with
  | [] -> ()
  | conds ->
    Buffer.add_string buf "residual conditions:\n";
    List.iter
      (fun c -> Buffer.add_string buf (Printf.sprintf "  %s\n" (Alg_expr.to_string c)))
      conds);
  Buffer.contents buf
