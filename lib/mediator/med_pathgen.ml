let compile_pattern (p : Xq_ast.pattern) =
  if p.Xq_ast.tag = "*" then None
  else begin
    let attr_preds =
      List.map
        (fun (aname, ap) ->
          match ap with
          | Xq_ast.A_lit s -> Xml_path.Attr_cmp (aname, Xml_path.Eq, s)
          | Xq_ast.A_var _ -> Xml_path.Has_attr aname)
        p.Xq_ast.attrs
    in
    let child_preds =
      List.filter_map
        (fun child ->
          match child with
          | Xq_ast.P_element sub when sub.Xq_ast.tag <> "*" -> (
            match sub.Xq_ast.children with
            | [ Xq_ast.P_text s ] ->
              Some (Xml_path.Child_cmp (sub.Xq_ast.tag, Xml_path.Eq, s))
            | _ -> Some (Xml_path.Child_exists sub.Xq_ast.tag))
          (* Content bindings and top-level text matches derive no safe
             predicate (whitespace handling differs between the XML and
             tree views), so they stay client-side. *)
          | Xq_ast.P_element _ | Xq_ast.P_var _ | Xq_ast.P_text _ -> None)
        p.Xq_ast.children
    in
    Some
      {
        Xml_path.absolute = true;
        steps =
          [
            {
              Xml_path.axis = Xml_path.Descendant_or_self;
              test = Xml_path.Name p.Xq_ast.tag;
              preds = attr_preds @ child_preds;
            };
          ];
      }
  end
