(* Per-source statistics catalog: the optimizer's view of the data.

   One entry per exported table ("source.export"): row count, per-column
   distinct/min-max/null counts and an equi-height histogram.  Entries
   come from two channels of very different quality:

   - [analyze] scans every relational export through the source's own
     [Q_scan] path and computes exact statistics (marked [ts_exact]);
   - [observe_rows] seeds or corrects the row count from execution
     feedback (full-table fetches the mediator happens to run anyway).

   Every material change bumps [epoch]; plan caches record the epoch at
   compile time and re-optimize when it moves (stale-plan invalidation). *)

type bucket = {
  b_lo : Value.t;
  b_hi : Value.t;
  b_rows : int;
}

type col_stats = {
  cs_distinct : int;  (* distinct non-null values *)
  cs_nulls : int;
  cs_min : Value.t option;  (* over non-null values *)
  cs_max : Value.t option;
  cs_hist : bucket array;  (* equi-height over non-null values; [||] when empty *)
}

type table_stats = {
  ts_rows : int;
  ts_exact : bool;  (* true: computed by [analyze]; false: seeded from feedback *)
  ts_cols : (string * col_stats) list;
}

type t = {
  tables : (string, table_stats) Hashtbl.t;
  mutable epoch : int;
}

let create () = { tables = Hashtbl.create 16; epoch = 0 }

let epoch t = t.epoch

let table_key ~source ~export = source ^ "." ^ export

let find t ~source ~export = Hashtbl.find_opt t.tables (table_key ~source ~export)

let table_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort String.compare

let set_table t ~source ~export stats =
  Hashtbl.replace t.tables (table_key ~source ~export) stats;
  t.epoch <- t.epoch + 1

(* A row-count change is "material" when it crosses a 2x ratio: small
   drift does not change join orders, so it must not thrash plan caches. *)
let material_drift old_rows new_rows =
  let lo = min old_rows new_rows and hi = max old_rows new_rows in
  if lo = hi then false
  else if lo = 0 then true
  else float_of_int hi /. float_of_int lo >= 2.0

let observe_rows t ~source ~export rows =
  let key = table_key ~source ~export in
  match Hashtbl.find_opt t.tables key with
  | None ->
    Hashtbl.replace t.tables key { ts_rows = rows; ts_exact = false; ts_cols = [] };
    t.epoch <- t.epoch + 1
  | Some prev ->
    if material_drift prev.ts_rows rows then begin
      Hashtbl.replace t.tables key { prev with ts_rows = rows; ts_exact = false };
      t.epoch <- t.epoch + 1
    end

(* ------------------------------------------------------------------ *)
(* Building statistics from scanned rows                               *)
(* ------------------------------------------------------------------ *)

let hist_buckets = 16

let column_stats values =
  let nulls = List.length (List.filter (fun v -> v = Value.Null) values) in
  let non_null =
    List.filter (fun v -> v <> Value.Null) values |> List.sort Value.compare
  in
  let arr = Array.of_list non_null in
  let n = Array.length arr in
  if n = 0 then
    { cs_distinct = 0; cs_nulls = nulls; cs_min = None; cs_max = None; cs_hist = [||] }
  else begin
    let distinct =
      Array.fold_left
        (fun (count, prev) v ->
          match prev with
          | Some p when Value.equal p v -> (count, prev)
          | _ -> (count + 1, Some v))
        (0, None) arr
      |> fst
    in
    let buckets = min hist_buckets n in
    let hist =
      Array.init buckets (fun i ->
          let start = i * n / buckets in
          let stop = (i + 1) * n / buckets in
          { b_lo = arr.(start); b_hi = arr.(stop - 1); b_rows = stop - start })
    in
    { cs_distinct = distinct; cs_nulls = nulls; cs_min = Some arr.(0);
      cs_max = Some arr.(n - 1); cs_hist = hist }
  end

let of_rows ~(schema : Dschema.relational) rows =
  let cols =
    List.map
      (fun col ->
        let name = col.Dschema.col_name in
        let values =
          List.map (fun row -> Option.value ~default:Value.Null (Tuple.get row name)) rows
        in
        (name, column_stats values))
      schema.Dschema.columns
  in
  { ts_rows = List.length rows; ts_exact = true; ts_cols = cols }

(* ------------------------------------------------------------------ *)
(* Analysis driver: scan every relational export of every source       *)
(* ------------------------------------------------------------------ *)

let analyze_source t (src : Source.t) =
  List.filter_map
    (fun schema ->
      let export = schema.Dschema.rel_name in
      match src.Source.execute (Source.Q_scan export) with
      | Source.R_rows (_, rows) ->
        let stats = of_rows ~schema rows in
        Hashtbl.replace t.tables
          (table_key ~source:src.Source.name ~export)
          stats;
        Some (table_key ~source:src.Source.name ~export, stats.ts_rows)
      | Source.R_trees _ | Source.R_batch _ -> None
      | exception (Source.Unavailable _ | Source.Query_rejected _) -> None)
    (src.Source.relations ())

let analyze t registry =
  let analyzed =
    List.concat_map
      (fun name ->
        match Src_registry.find registry name with
        | Some src -> analyze_source t src
        | None -> [])
      (Src_registry.names registry)
  in
  if analyzed <> [] then t.epoch <- t.epoch + 1;
  analyzed

(* ------------------------------------------------------------------ *)
(* Estimation primitives                                               *)
(* ------------------------------------------------------------------ *)

let col_stats_of ts name = List.assoc_opt name ts.ts_cols

let non_null_fraction ts cs =
  if ts.ts_rows = 0 then 0.0
  else float_of_int (ts.ts_rows - cs.cs_nulls) /. float_of_int ts.ts_rows

(* Fraction of the table's rows where [column = v]: uniform across the
   distinct non-null values, zero outside the observed [min, max], zero
   for NULL probes (SQL equality never matches NULL). *)
let eq_fraction ts column v =
  match col_stats_of ts column with
  | None -> None
  | Some cs ->
    if ts.ts_rows = 0 then Some 0.0
    else if v = Value.Null then Some 0.0
    else if cs.cs_distinct = 0 then Some 0.0 (* all-NULL column *)
    else begin
      match (cs.cs_min, cs.cs_max) with
      | Some lo, Some hi when Value.compare v lo < 0 || Value.compare v hi > 0 ->
        Some 0.0
      | _ -> Some (non_null_fraction ts cs /. float_of_int cs.cs_distinct)
    end

(* Fraction of rows satisfying [column OP v] from the equi-height
   histogram: full buckets count fully, the boundary bucket counts half
   (uniform-within-bucket assumption). *)
let cmp_fraction ts column op v =
  match col_stats_of ts column with
  | None -> None
  | Some cs ->
    if ts.ts_rows = 0 then Some 0.0
    else if v = Value.Null then Some 0.0
    else if Array.length cs.cs_hist = 0 then Some 0.0
    else begin
      let non_null =
        Array.fold_left (fun acc b -> acc + b.b_rows) 0 cs.cs_hist
      in
      let below_lo b = Value.compare b.b_hi v < 0 in
      let above_hi b = Value.compare b.b_lo v > 0 in
      let matching =
        Array.fold_left
          (fun acc b ->
            let contribution =
              match op with
              | `Lt | `Le ->
                if below_lo b then float_of_int b.b_rows
                else if above_hi b then 0.0
                else float_of_int b.b_rows /. 2.0
              | `Gt | `Ge ->
                if above_hi b then float_of_int b.b_rows
                else if below_lo b then 0.0
                else float_of_int b.b_rows /. 2.0
            in
            acc +. contribution)
          0.0 cs.cs_hist
      in
      Some (matching /. float_of_int non_null
            *. (float_of_int non_null /. float_of_int ts.ts_rows))
    end

let distinct_of ts column =
  match col_stats_of ts column with
  | Some cs when cs.cs_distinct > 0 -> Some cs.cs_distinct
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let report t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "statistics epoch %d\n" t.epoch);
  let names = table_names t in
  if names = [] then Buffer.add_string buf "  (no statistics collected)\n"
  else
    List.iter
      (fun name ->
        match Hashtbl.find_opt t.tables name with
        | None -> ()
        | Some ts ->
          Buffer.add_string buf
            (Printf.sprintf "  %s: %d rows%s\n" name ts.ts_rows
               (if ts.ts_exact then "" else " (seeded)"));
          List.iter
            (fun (cname, cs) ->
              Buffer.add_string buf
                (Printf.sprintf "    %s: distinct=%d nulls=%d%s\n" cname
                   cs.cs_distinct cs.cs_nulls
                   (match (cs.cs_min, cs.cs_max) with
                   | Some lo, Some hi ->
                     Printf.sprintf " min=%s max=%s buckets=%d"
                       (Value.to_display lo) (Value.to_display hi)
                       (Array.length cs.cs_hist)
                   | _ -> "")))
            ts.ts_cols)
      names;
  Buffer.contents buf
