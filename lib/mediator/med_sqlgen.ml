type fragment = {
  sql : Sql_ast.select;
  sql_text : string;
  binds : (string * string) list;
  row_var : string option;
  pushed_conditions : Alg_expr.t list;
}

type options = {
  pushdown_select : bool;
  pushdown_project : bool;
  pushdown_join : bool;
}

let default_options = { pushdown_select = true; pushdown_project = true; pushdown_join = true }
let no_pushdown = { pushdown_select = false; pushdown_project = false; pushdown_join = false }
let no_join_pushdown = { default_options with pushdown_join = false }

let rec translate_condition binds e =
  let open Alg_expr in
  let binop op a b =
    match translate_condition binds a, translate_condition binds b with
    | Some a', Some b' -> Some (Sql_ast.Binop (op, a', b'))
    | _, _ -> None
  in
  match e with
  | Var v -> Option.map (fun col -> Sql_ast.Col (None, col)) (List.assoc_opt v binds)
  | Const value -> Some (Sql_ast.Lit value)
  | Binop (And, a, b) -> binop Sql_ast.And a b
  | Binop (Or, a, b) -> binop Sql_ast.Or a b
  | Binop (Add, a, b) -> binop Sql_ast.Add a b
  | Binop (Sub, a, b) -> binop Sql_ast.Sub a b
  | Binop (Mul, a, b) -> binop Sql_ast.Mul a b
  | Binop (Div, a, b) -> binop Sql_ast.Div a b
  | Binop (Eq, a, b) -> binop Sql_ast.Eq a b
  | Binop (Neq, a, b) -> binop Sql_ast.Neq a b
  | Binop (Lt, a, b) -> binop Sql_ast.Lt a b
  | Binop (Le, a, b) -> binop Sql_ast.Le a b
  | Binop (Gt, a, b) -> binop Sql_ast.Gt a b
  | Binop (Ge, a, b) -> binop Sql_ast.Ge a b
  | Not sub ->
    Option.map (fun s -> Sql_ast.Unop (Sql_ast.Not, s)) (translate_condition binds sub)
  | Neg sub ->
    Option.map (fun s -> Sql_ast.Unop (Sql_ast.Neg, s)) (translate_condition binds sub)
  | Like (sub, pattern) ->
    Option.map (fun s -> Sql_ast.Like (s, pattern)) (translate_condition binds sub)
  | Is_null sub -> Option.map (fun s -> Sql_ast.Is_null s) (translate_condition binds sub)
  | Call (fname, args) when List.mem fname Sql_eval.scalar_functions ->
    let rec all acc = function
      | [] -> Some (List.rev acc)
      | a :: rest -> (
        match translate_condition binds a with
        | Some a' -> all (a' :: acc) rest
        | None -> None)
    in
    Option.map (fun args' -> Sql_ast.Fncall (fname, args')) (all [] args)
  | Call _ | Child _ | Attr _ | Text _ | Label _ -> None

(* A pattern is row-shaped when it matches the canonical [<row>] trees of
   a table's XML view without nesting or content bindings. *)
let analyze_row_pattern schema (p : Xq_ast.pattern) =
  let tag_ok =
    p.Xq_ast.tag = "row" || p.Xq_ast.tag = "*" || p.Xq_ast.tag = schema.Dschema.rel_name
  in
  if (not tag_ok) || p.Xq_ast.attrs <> [] then None
  else begin
    let column name = Dschema.find_column schema name in
    (* Each child must be a flat column pattern. *)
    let step acc child =
      match acc with
      | None -> None
      | Some (binds, eqs) -> (
        match child with
        | Xq_ast.P_var _ | Xq_ast.P_text _ -> None (* content binding: not relational *)
        | Xq_ast.P_element sub -> (
          if sub.Xq_ast.attrs <> [] || sub.Xq_ast.element_as <> None then None
          else
            match column sub.Xq_ast.tag with
            | None -> None
            | Some col -> (
              match sub.Xq_ast.children with
              | [] -> Some (binds, eqs) (* bare presence: no constraint *)
              | [ Xq_ast.P_var v ] -> Some ((v, col.Dschema.col_name) :: binds, eqs)
              | [ Xq_ast.P_text s ] -> Some (binds, (col, s) :: eqs)
              | _ -> None)))
    in
    match List.fold_left step (Some ([], [])) p.Xq_ast.children with
    | None -> None
    | Some (binds, eqs) -> Some (List.rev binds, List.rev eqs)
  end

let literal_condition (col : Dschema.column) s =
  let value =
    match Value.parse_as col.Dschema.col_ty s with
    | Some v -> v
    | None -> Value.String s
  in
  Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Col (None, col.Dschema.col_name), Sql_ast.Lit value)

let compile_clause opts schema (p : Xq_ast.pattern) candidates =
  match analyze_row_pattern schema p with
  | None -> None
  | Some (raw_binds, eqs) ->
    (* A variable bound twice in the pattern forces column equality. *)
    let rec dedup_binds acc extra_eqs = function
      | [] -> (List.rev acc, List.rev extra_eqs)
      | (v, col) :: rest -> (
        match List.assoc_opt v acc with
        | Some col0 ->
          dedup_binds acc
            (Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Col (None, col0), Sql_ast.Col (None, col))
            :: extra_eqs)
            rest
        | None -> dedup_binds ((v, col) :: acc) extra_eqs rest)
    in
    let binds, var_eqs = dedup_binds [] [] raw_binds in
    if (not opts.pushdown_select) && (eqs <> [] || var_eqs <> []) then
      (* With selection pushdown disabled, literal and repeated-variable
         constraints must be evaluated client-side: reject the fragment
         so the planner ships the table and pattern-matches locally. *)
      None
    else begin
    let lit_conds = List.map (fun (col, s) -> literal_condition col s) eqs in
    (* Absorb candidate conditions whose variables this clause binds. *)
    let pushed, where_extras =
      if not opts.pushdown_select then ([], [])
      else
        List.fold_left
          (fun (pushed, wheres) cond ->
            let vars = Alg_expr.free_vars cond in
            let local = List.for_all (fun v -> List.mem_assoc v binds) vars in
            if not local then (pushed, wheres)
            else
              match translate_condition binds cond with
              | Some sql_cond -> (cond :: pushed, sql_cond :: wheres)
              | None -> (pushed, wheres))
          ([], []) candidates
    in
    let row_var = p.Xq_ast.element_as in
    let items =
      if (not opts.pushdown_project) || row_var <> None || binds = [] then [ Sql_ast.Star ]
      else
        List.map (fun (_, col) -> Sql_ast.Expr_item (Sql_ast.Col (None, col), None)) binds
        |> List.sort_uniq compare
    in
    let where = Sql_ast.conjoin (lit_conds @ var_eqs @ List.rev where_extras) in
    let select =
      {
        Sql_ast.distinct = false;
        items;
        from = Some (Sql_ast.From_table { table = schema.Dschema.rel_name; alias = None });
        where;
        group_by = [];
        having = None;
        order_by = [];
        limit = None;
      }
    in
    Some
      {
        sql = select;
        sql_text = Sql_print.select_to_string select;
        binds;
        row_var;
        pushed_conditions = List.rev pushed;
      }
    end

(* ------------------------------------------------------------------ *)
(* Join fragments                                                      *)
(* ------------------------------------------------------------------ *)

type join_fragment = {
  jf_sql : Sql_ast.select;
  jf_sql_text : string;
  jf_binds : (string * string) list;
  jf_pushed_conditions : Alg_expr.t list;
}

let compile_join_clauses opts clauses candidates =
  if (not opts.pushdown_join) || List.length clauses < 2 then None
  else begin
    (* Analyze every clause; all must be row-shaped without ELEMENT_AS. *)
    let analyzed =
      List.mapi
        (fun i (schema, pattern) ->
          if pattern.Xq_ast.element_as <> None then None
          else
            match analyze_row_pattern schema pattern with
            | None -> None
            | Some (binds, eqs) -> Some (Printf.sprintf "t%d" i, schema, binds, eqs))
        clauses
    in
    if List.exists Option.is_none analyzed then None
    else begin
      let analyzed = List.map Option.get analyzed in
      (* Global variable map: var -> (alias, column) of first binding;
         later bindings of the same var contribute join equalities. *)
      let first_of : (string, string * string) Hashtbl.t = Hashtbl.create 16 in
      let join_eqs = ref [] in
      List.iter
        (fun (alias, _, binds, _) ->
          List.iter
            (fun (v, col) ->
              match Hashtbl.find_opt first_of v with
              | None -> Hashtbl.replace first_of v (alias, col)
              | Some (alias0, col0) ->
                if not (String.equal alias0 alias && String.equal col0 col) then
                  join_eqs :=
                    Sql_ast.Binop
                      (Sql_ast.Eq, Sql_ast.Col (Some alias0, col0), Sql_ast.Col (Some alias, col))
                    :: !join_eqs)
            binds)
        analyzed;
      (* Connectivity: each clause after the first must share a variable
         with an earlier clause (we refuse to push cross products). *)
      let rec connected seen = function
        | [] -> true
        | (_, _, binds, _) :: rest ->
          let vars = List.map fst binds in
          if seen = [] then connected vars rest
          else if List.exists (fun v -> List.mem v seen) vars then
            connected (seen @ vars) rest
          else false
      in
      if not (connected [] analyzed) then None
      else begin
        (* Literal equalities, qualified per alias. *)
        let lit_conds =
          List.concat_map
            (fun (alias, _, _, eqs) ->
              List.map
                (fun ((col : Dschema.column), s) ->
                  let value =
                    match Value.parse_as col.Dschema.col_ty s with
                    | Some v -> v
                    | None -> Value.String s
                  in
                  Sql_ast.Binop
                    (Sql_ast.Eq, Sql_ast.Col (Some alias, col.Dschema.col_name), Sql_ast.Lit value))
                eqs)
            analyzed
        in
        (* Output columns: one generated alias per variable. *)
        let var_list =
          Hashtbl.fold (fun v loc acc -> (v, loc) :: acc) first_of []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        let items, jf_binds =
          List.split
            (List.mapi
               (fun k (v, (alias, col)) ->
                 let out = Printf.sprintf "c%d" k in
                 (Sql_ast.Expr_item (Sql_ast.Col (Some alias, col), Some out), (v, out)))
               var_list)
        in
        (* Conditions: translate against qualified columns. *)
        let qualified_binds =
          List.map (fun (v, (alias, col)) -> (v, alias ^ "." ^ col)) var_list
        in
        (* translate_condition emits Col (None, name); a dotted name would
           not resolve, so translate with a custom variable mapping. *)
        let translate cond =
          let rec subst e =
            match e with
            | Alg_expr.Var v -> (
              match List.assoc_opt v qualified_binds with
              | Some dotted -> (
                match String.index_opt dotted '.' with
                | Some i ->
                  Some
                    (Sql_ast.Col
                       ( Some (String.sub dotted 0 i),
                         String.sub dotted (i + 1) (String.length dotted - i - 1) ))
                | None -> Some (Sql_ast.Col (None, dotted)))
              | None -> None)
            | Alg_expr.Const value -> Some (Sql_ast.Lit value)
            | Alg_expr.Binop (op, a, b) -> (
              let sql_op =
                match op with
                | Alg_expr.And -> Some Sql_ast.And
                | Alg_expr.Or -> Some Sql_ast.Or
                | Alg_expr.Add -> Some Sql_ast.Add
                | Alg_expr.Sub -> Some Sql_ast.Sub
                | Alg_expr.Mul -> Some Sql_ast.Mul
                | Alg_expr.Div -> Some Sql_ast.Div
                | Alg_expr.Eq -> Some Sql_ast.Eq
                | Alg_expr.Neq -> Some Sql_ast.Neq
                | Alg_expr.Lt -> Some Sql_ast.Lt
                | Alg_expr.Le -> Some Sql_ast.Le
                | Alg_expr.Gt -> Some Sql_ast.Gt
                | Alg_expr.Ge -> Some Sql_ast.Ge
              in
              match sql_op, subst a, subst b with
              | Some op, Some a', Some b' -> Some (Sql_ast.Binop (op, a', b'))
              | _, _, _ -> None)
            | Alg_expr.Not sub ->
              Option.map (fun s -> Sql_ast.Unop (Sql_ast.Not, s)) (subst sub)
            | Alg_expr.Neg sub ->
              Option.map (fun s -> Sql_ast.Unop (Sql_ast.Neg, s)) (subst sub)
            | Alg_expr.Like (sub, pat) ->
              Option.map (fun s -> Sql_ast.Like (s, pat)) (subst sub)
            | Alg_expr.Is_null sub -> Option.map (fun s -> Sql_ast.Is_null s) (subst sub)
            | Alg_expr.Call (fname, args) when List.mem fname Sql_eval.scalar_functions ->
              let rec all acc = function
                | [] -> Some (List.rev acc)
                | a :: rest -> (
                  match subst a with
                  | Some a' -> all (a' :: acc) rest
                  | None -> None)
              in
              Option.map (fun args' -> Sql_ast.Fncall (fname, args')) (all [] args)
            | Alg_expr.Call _ | Alg_expr.Child _ | Alg_expr.Attr _ | Alg_expr.Text _
            | Alg_expr.Label _ -> None
          in
          subst cond
        in
        let pushed, where_extras =
          if not opts.pushdown_select then ([], [])
          else
            List.fold_left
              (fun (pushed, wheres) cond ->
                let vars = Alg_expr.free_vars cond in
                let local = List.for_all (fun v -> List.mem_assoc v qualified_binds) vars in
                if not local then (pushed, wheres)
                else
                  match translate cond with
                  | Some sql_cond -> (cond :: pushed, sql_cond :: wheres)
                  | None -> (pushed, wheres))
              ([], []) candidates
        in
        (* FROM: first table, then JOIN each next on its equalities to
           earlier aliases.  For simplicity all join equalities go into
           WHERE and the joins carry TRUE; the source's own planner pools
           conjuncts and picks hash joins anyway. *)
        let from =
          match analyzed with
          | [] -> None
          | (alias0, schema0, _, _) :: rest ->
            Some
              (List.fold_left
                 (fun acc (alias, (schema : Dschema.relational), _, _) ->
                   Sql_ast.From_join
                     ( acc,
                       Sql_ast.Inner,
                       { Sql_ast.table = schema.Dschema.rel_name; alias = Some alias },
                       Sql_ast.Lit (Value.Bool true) ))
                 (Sql_ast.From_table
                    { Sql_ast.table = schema0.Dschema.rel_name; alias = Some alias0 })
                 rest)
        in
        let where = Sql_ast.conjoin (!join_eqs @ lit_conds @ List.rev where_extras) in
        let select =
          {
            Sql_ast.distinct = false;
            items;
            from;
            where;
            group_by = [];
            having = None;
            order_by = [];
            limit = None;
          }
        in
        Some
          {
            jf_sql = select;
            jf_sql_text = Sql_print.select_to_string select;
            jf_binds;
            jf_pushed_conditions = List.rev pushed;
          }
      end
    end
  end
