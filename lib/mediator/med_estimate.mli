(** Cardinality estimation over the statistics catalog.

    The single entry point behind every row-count guess the planner
    makes.  Resolution order: exact execution feedback (handled by the
    planner), then statistics-based estimation here, then the flat
    {!Alg_cost.default_scan_rows} guess.  Estimation never raises:
    unknown columns and un-analyzed tables degrade to the heuristic
    constants the client-side cost model uses. *)

val default_rows : float
(** Alias of {!Alg_cost.default_scan_rows}: the last-resort guess. *)

val select_rows : Med_stats.t -> source:string -> Sql_ast.select -> float option
(** Estimated output rows of a SELECT shipped to [source]: FROM-table
    row counts scaled by the selectivity of ON and WHERE clauses
    (histograms for ranges, distinct counts for equalities and join
    edges), then GROUP BY / LIMIT adjustments.  [None] when any FROM
    table lacks statistics. *)

val table_rows : Med_stats.t -> source:string -> export:string -> float option
(** Row count of one export, when known. *)

val path_rows : source:string -> export:string -> Xml_path.t -> float option
(** Index-backed path cardinality: the exact match count from the
    document's structural guide (refined by value indexes for
    predicate paths) when one is already built; [None] otherwise.
    Never triggers index construction. *)

val column_distinct :
  Med_stats.t -> source:string -> export:string -> column:string -> int option
(** Distinct non-null count of one column, when known. *)
