type view = {
  view_name : string;
  definitions : Xq_ast.query list;
  description : string;
}

type t = {
  reg : Src_registry.t;
  views : (string, view) Hashtbl.t;
  fb : Obs_feedback.t;
  stats : Med_stats.t;
  mutable optimizer : Med_optimize.mode;
  retry : Src_retry.t;
  mutable frag : Frag_cache.t;
  mutable sem : Sem_cache.t;
  mutable fetch : Fetch_sched.options;
  mutable exec : Alg_batch.mode;
  mutable listeners : (string -> unit) list;
      (* mutation subscribers (plan caches), fired with the affected name *)
}

exception Catalog_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Catalog_error m)) fmt

let create ?frag_ttl_ms ?(frag_capacity = 0) ?(sem_budget_bytes = 0) () =
  {
    reg = Src_registry.create ();
    views = Hashtbl.create 16;
    fb = Obs_feedback.create ();
    stats = Med_stats.create ();
    optimizer = Med_optimize.Greedy;
    retry = Src_retry.create ();
    frag = Frag_cache.create ?ttl_ms:frag_ttl_ms ~capacity:frag_capacity ();
    sem = Sem_cache.create ~budget_bytes:sem_budget_bytes ();
    fetch = Fetch_sched.default_options;
    exec = Alg_batch.Tuple;
    listeners = [];
  }

let on_mutation t f = t.listeners <- t.listeners @ [ f ]

(* Mutations invalidate the semantic cache and the source's document
   indexes before the subscribers hear about them: a plan cache
   re-compiling against the new catalog must not find stale extents or
   stale index epochs.  XML stores re-register from their live trees so
   the next probe rebuilds; anything else just loses its entries and
   the engines fall back to walking. *)
let notify_invalidation t name =
  ignore (Sem_cache.invalidate_name t.sem name);
  Idx_manager.drop_prefix ("src:" ^ name ^ "/");
  (* Local XML stores re-register straight from their live trees — not
     through the registered source, whose network wrappers would charge
     phantom traffic for an index rebuild. *)
  (match Src_registry.find t.reg name with
  | Some src when src.Source.kind = Source.Xml_store -> Xml_source.reindex name
  | Some _ | None -> ());
  List.iter (fun f -> f name) t.listeners

let registry t = t.reg

let feedback t = t.fb

let stats t = t.stats

let stats_epoch t = Med_stats.epoch t.stats

let optimizer t = t.optimizer

let set_optimizer t mode = t.optimizer <- mode

let analyze_counter = Obs_metrics.counter "opt.analyze_runs"

(* Collect exact statistics for every relational export.  Bumping the
   statistics epoch is what makes plan caches drop (rather than
   silently reuse) plans optimized against the old numbers. *)
let analyze t =
  Obs_metrics.inc analyze_counter;
  Med_stats.analyze t.stats t.reg

let retry t = t.retry

let retry_policy t = Src_retry.policy t.retry

let set_retry_policy t pol = Src_retry.set_policy t.retry pol

let frag_cache t = t.frag

let configure_frag_cache t ?ttl_ms ~capacity () =
  t.frag <- Frag_cache.create ?ttl_ms ~capacity ()

let sem_cache t = t.sem

let configure_sem_cache t ~budget_bytes () =
  t.sem <- Sem_cache.create ~budget_bytes ()

let fetch_options t = t.fetch

let set_fetch_options t options = t.fetch <- options

let exec_mode t = t.exec

let set_exec_mode t mode = t.exec <- mode

let register_source t src =
  (try Src_registry.register t.reg src
   with Invalid_argument m -> fail "%s" m);
  notify_invalidation t src.Source.name

let source_names t = Src_registry.names t.reg

let find_view t name = Hashtbl.find_opt t.views name

let view_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.views [] |> List.sort String.compare

let is_known_name t name =
  Hashtbl.mem t.views name || Src_registry.resolve_export t.reg name <> None

let view_sources v =
  List.concat_map Xq_ast.all_sources_of v.definitions
  |> List.sort_uniq String.compare

let dependencies t name =
  match find_view t name with
  | None -> []
  | Some v -> view_sources v

(* Would defining [name := qs] introduce a cycle through existing views? *)
let creates_cycle t name qs =
  let rec reachable seen from =
    if List.mem from seen then seen
    else
      let seen = from :: seen in
      match find_view t from with
      | None -> seen
      | Some v -> List.fold_left reachable seen (view_sources v)
  in
  let deps = List.concat_map Xq_ast.all_sources_of qs in
  let reached = List.fold_left reachable [] deps in
  List.mem name reached

let define_union_view t ?(description = "") name qs =
  if qs = [] then fail "view %s: empty definition" name;
  if Hashtbl.mem t.views name then fail "view %s already defined" name;
  if Src_registry.resolve_export t.reg name <> None then
    fail "name %s collides with a source export" name;
  List.iter
    (fun dep ->
      if not (is_known_name t dep) then
        fail "view %s references unknown source or view %S" name dep)
    (List.concat_map Xq_ast.all_sources_of qs);
  if creates_cycle t name qs then fail "view %s would create a cyclic definition" name;
  Hashtbl.replace t.views name { view_name = name; definitions = qs; description };
  notify_invalidation t name

let define_view t ?description name q = define_union_view t ?description name [ q ]

let define_view_text t ?description name text =
  match Xq_parser.parse_union text with
  | Ok qs -> define_union_view t ?description name qs
  | Error m -> fail "view %s: %s" name m

let set_description t name description =
  match Hashtbl.find_opt t.views name with
  | Some v -> Hashtbl.replace t.views name { v with description }
  | None -> fail "unknown view %s" name

let drop_view t name =
  if not (Hashtbl.mem t.views name) then fail "unknown view %s" name;
  let dependents =
    Hashtbl.fold
      (fun vname v acc ->
        if vname <> name && List.mem name (view_sources v) then
          vname :: acc
        else acc)
      t.views []
  in
  if dependents <> [] then
    fail "cannot drop view %s: required by %s" name (String.concat ", " dependents);
  Hashtbl.remove t.views name;
  notify_invalidation t name

let rec view_depth t name =
  match find_view t name with
  | None -> 0
  | Some v ->
    let deps = view_sources v in
    1 + List.fold_left (fun acc dep -> max acc (view_depth t dep)) 0 deps
