(** Per-source statistics catalog for the cost-based optimizer.

    One entry per exported table: row count plus per-column distinct
    count, null count, min/max and an equi-height histogram.  Exact
    entries come from {!analyze} (a [Q_scan] of every relational export);
    approximate entries are seeded from execution feedback through
    {!observe_rows}.  Material changes bump {!epoch}, which plan caches
    record so stale plans re-optimize instead of being silently reused. *)

type bucket = {
  b_lo : Value.t;
  b_hi : Value.t;
  b_rows : int;
}

type col_stats = {
  cs_distinct : int;  (** distinct non-null values *)
  cs_nulls : int;
  cs_min : Value.t option;
  cs_max : Value.t option;
  cs_hist : bucket array;  (** equi-height over non-null values; [[||]] when empty *)
}

type table_stats = {
  ts_rows : int;
  ts_exact : bool;  (** computed by {!analyze}, not merely seeded *)
  ts_cols : (string * col_stats) list;
}

type t

val create : unit -> t

val epoch : t -> int
(** Monotonic counter bumped on every material statistics change. *)

val table_key : source:string -> export:string -> string

val find : t -> source:string -> export:string -> table_stats option

val table_names : t -> string list

val set_table : t -> source:string -> export:string -> table_stats -> unit
(** Install exact statistics and bump the epoch. *)

val observe_rows : t -> source:string -> export:string -> int -> unit
(** Seed (or correct) a table's row count from an observed full-table
    fetch.  The epoch only bumps on {e material} drift — a first
    observation or a row count crossing a 2x ratio — so steady-state
    execution does not thrash plan caches. *)

val of_rows : schema:Dschema.relational -> Tuple.t list -> table_stats
(** Exact statistics for one table's rows. *)

val analyze_source : t -> Source.t -> (string * int) list
(** Scan every relational export of one source through [Q_scan] and
    install exact statistics; unavailable or scan-rejecting sources are
    skipped.  Returns [(table, rows)] for each export analyzed.  Does not
    bump the epoch (callers batch via {!analyze}). *)

val analyze : t -> Src_registry.t -> (string * int) list
(** {!analyze_source} over every registered source; bumps the epoch once
    when anything was analyzed. *)

(** {1 Estimation primitives} *)

val eq_fraction : table_stats -> string -> Value.t -> float option
(** Estimated fraction of rows where [column = v]: uniform over distinct
    non-null values, zero outside the observed min/max, zero for NULL
    probes and all-NULL columns.  [None] when the column is unknown. *)

val cmp_fraction :
  table_stats -> string -> [ `Lt | `Le | `Gt | `Ge ] -> Value.t -> float option
(** Estimated fraction of rows satisfying a range predicate, from the
    equi-height histogram (boundary buckets count half). *)

val distinct_of : table_stats -> string -> int option
(** Distinct non-null count; [None] for unknown or all-NULL columns. *)

val report : t -> string
(** Human-readable catalog listing for the repl's [\analyze]. *)
