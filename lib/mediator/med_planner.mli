(** The query compiler: XML-QL to physical plans.

    Pipeline (section 3.1: "we translate a query into an internal
    representation, and from there directly to query execution plans in
    the physical algebra"):

    + each clause gets an {e access}: a SQL fragment pushed into a
      relational source ({!Med_sqlgen}), a path-preselected or plain
      client-side pattern match over an export's XML view, or a match
      over another mediated schema (hierarchical composition); clause
      groups over one join-capable relational source collapse into a
      single SQL join fragment when {e all} of the group's clauses are
      row-shaped and variable-connected (a partially-connected group
      falls back to per-clause fragments — correct, but it ships rows
      the source could have joined);
    + conditions whose variables one SQL clause binds travel into that
      fragment's WHERE when the source's capability allows;
    + clauses join on their shared variables (hash join, greedy
      connected order), remaining conditions filter on top;
    + ORDER BY / LIMIT become Sort / Limit operators.

    The CONSTRUCT template is carried alongside the plan; {!Med_exec}
    instantiates it per binding (templates may contain correlated
    subqueries, which re-enter the mediator). *)

type access =
  | A_sql of {
      source_name : string;
      export : string;              (** table *)
      fragment : Med_sqlgen.fragment;
      pattern : Xq_ast.pattern;     (** kept for capability fallback *)
    }
  | A_sql_join of {
      source_name : string;
      fragment : Med_sqlgen.join_fragment;
      exports : string list;        (** the grouped tables *)
    }
      (** several clauses over one join-capable relational source,
          compiled into a single SQL join fragment.  The source's
          declared [can_join] capability is trusted: a runtime rejection
          of the fragment is an error, not a fallback. *)
  | A_path of {
      source_name : string;
      export : string;
      path : Xml_path.t;         (** preselection pushed to the store *)
      pattern : Xq_ast.pattern;  (** verified on the candidates *)
    }
  | A_match of {
      source_name : string;
      export : string;
      pattern : Xq_ast.pattern;
    }
  | A_view of {
      view : string;
      pattern : Xq_ast.pattern;
    }
  | A_sql_bind of {
      source_name : string;
      export : string;
      fragment : Med_sqlgen.fragment;
      pattern : Xq_ast.pattern;
      bind_driver : string;  (** access id whose rows supply the keys *)
      bind_var : string;     (** join variable shared with the driver *)
      bind_col : string;     (** column the fetch-time IN-list filters *)
    }
      (** A bind join chosen by the cost-based optimizer: the fragment
          ships with an extra [bind_col IN (...)] filter built from the
          driver access's distinct key values at fetch time.  A strict
          superset of the equi-join above it (NULL keys never join), so
          answers are untouched — only shipped rows shrink.  When the
          driver fails or exceeds the key cap, the executor ships the
          unbound fragment instead. *)

type opt_info = {
  oi_mode : string;   (** ["dp"], or ["dp-fallback:greedy"] past the cap *)
  oi_order : string;  (** chosen join tree, e.g. [((a1 ⋈ a0) ⋈ a2)] *)
  oi_est_rows : float;
  oi_est_cost_ms : float;
  oi_binds : (string * string) list;  (** bound access id -> driver id *)
}

type compiled = {
  plan : Alg_plan.t;
  accesses : (string * access) list;  (** access id -> spec, for Scan leaves *)
  construct : Xq_ast.template;
  source_query : Xq_ast.query;
  residual_conditions : Alg_expr.t list;
  opt_info : opt_info option;
      (** present when the catalog's optimizer mode is [Dp] and the
          query had at least two accesses *)
}

exception Plan_error of string

val compile :
  ?opts:Med_sqlgen.options ->
  ?feedback:Obs_feedback.t ->
  Med_catalog.t ->
  Xq_ast.query ->
  compiled
(** @raise Plan_error on unknown sources.

    Join order follows the catalog's {!Med_catalog.optimizer} mode.
    Under [Greedy] (the default) the access with the fewest estimated
    rows starts the pipeline and, at each step, the cheapest
    variable-connected access joins next.  Under [Dp] the DPsize
    enumerator ({!Med_optimize}) picks the cheapest bushy/left-deep
    tree costed with the network simulator's per-source parameters, and
    large relational fragments may be converted to bind joins
    ([A_sql_bind]); past the relation cap the plan falls back to the
    greedy walk.

    Estimates come from {!estimated_rows}: execution [feedback] first,
    the catalog's statistics ({!Med_stats}) second,
    {!Alg_cost.default_scan_rows} last.  Without feedback or statistics
    every access weighs the same default and the order degenerates to
    the original first-come greedy walk. *)

val estimated_rows :
  ?feedback:Obs_feedback.t -> ?stats:Med_stats.t -> access -> float
(** The unified cardinality estimate for one access — the single entry
    point behind every planner row-count guess. *)

val access_key : access -> string
(** Stable identity of an access across compilations — the key under
    which {!Obs_feedback} stores observed cardinalities.  Built from the
    shipped artifact (SQL text, path + pattern, view name + pattern), so
    the same logical access in a recompiled query maps to the same
    observations. *)

val access_target : access -> string
(** The source (or view) name an access ships work to — the name under
    which per-source counters accumulate and the dedup scope of the
    fetch scheduler's batching. *)

val source_rows :
  ?feedback:Obs_feedback.t -> ?stats:Med_stats.t -> compiled -> string -> float
(** Cardinality provider for {!Alg_cost.estimate}: maps a Scan leaf's
    access id through {!estimated_rows}. *)

val explain : compiled -> string
(** Operator tree plus, per SQL access, the fragment shipped to the
    source; under the DP optimizer also the chosen order and its
    estimates. *)

val opt_info_to_string : opt_info -> string
(** The one-line optimizer cell EXPLAIN and EXPLAIN ANALYZE print. *)

val access_to_string : string * access -> string
(** One [explain] line (two-space indented): access id, strategy, and
    the artifact shipped to the source. *)
