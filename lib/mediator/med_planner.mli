(** The query compiler: XML-QL to physical plans.

    Pipeline (section 3.1: "we translate a query into an internal
    representation, and from there directly to query execution plans in
    the physical algebra"):

    + each clause gets an {e access}: a SQL fragment pushed into a
      relational source ({!Med_sqlgen}), a path-preselected or plain
      client-side pattern match over an export's XML view, or a match
      over another mediated schema (hierarchical composition); clause
      groups over one join-capable relational source collapse into a
      single SQL join fragment when {e all} of the group's clauses are
      row-shaped and variable-connected (a partially-connected group
      falls back to per-clause fragments — correct, but it ships rows
      the source could have joined);
    + conditions whose variables one SQL clause binds travel into that
      fragment's WHERE when the source's capability allows;
    + clauses join on their shared variables (hash join, greedy
      connected order), remaining conditions filter on top;
    + ORDER BY / LIMIT become Sort / Limit operators.

    The CONSTRUCT template is carried alongside the plan; {!Med_exec}
    instantiates it per binding (templates may contain correlated
    subqueries, which re-enter the mediator). *)

type access =
  | A_sql of {
      source_name : string;
      export : string;              (** table *)
      fragment : Med_sqlgen.fragment;
      pattern : Xq_ast.pattern;     (** kept for capability fallback *)
    }
  | A_sql_join of {
      source_name : string;
      fragment : Med_sqlgen.join_fragment;
      exports : string list;        (** the grouped tables *)
    }
      (** several clauses over one join-capable relational source,
          compiled into a single SQL join fragment.  The source's
          declared [can_join] capability is trusted: a runtime rejection
          of the fragment is an error, not a fallback. *)
  | A_path of {
      source_name : string;
      export : string;
      path : Xml_path.t;         (** preselection pushed to the store *)
      pattern : Xq_ast.pattern;  (** verified on the candidates *)
    }
  | A_match of {
      source_name : string;
      export : string;
      pattern : Xq_ast.pattern;
    }
  | A_view of {
      view : string;
      pattern : Xq_ast.pattern;
    }

type compiled = {
  plan : Alg_plan.t;
  accesses : (string * access) list;  (** access id -> spec, for Scan leaves *)
  construct : Xq_ast.template;
  source_query : Xq_ast.query;
  residual_conditions : Alg_expr.t list;
}

exception Plan_error of string

val compile :
  ?opts:Med_sqlgen.options ->
  ?feedback:Obs_feedback.t ->
  Med_catalog.t ->
  Xq_ast.query ->
  compiled
(** @raise Plan_error on unknown sources.

    When [feedback] is given, the greedy join order is weighted by
    observed cardinalities: the access with the fewest rows recorded by
    previous executions starts the pipeline and, at each step, the
    cheapest variable-connected access joins next.  Without [feedback]
    (or before any observation) every access weighs
    {!Alg_cost.default_scan_rows} and the order is the original
    first-come greedy walk. *)

val access_key : access -> string
(** Stable identity of an access across compilations — the key under
    which {!Obs_feedback} stores observed cardinalities.  Built from the
    shipped artifact (SQL text, path + pattern, view name + pattern), so
    the same logical access in a recompiled query maps to the same
    observations. *)

val access_target : access -> string
(** The source (or view) name an access ships work to — the name under
    which per-source counters accumulate and the dedup scope of the
    fetch scheduler's batching. *)

val source_rows :
  ?feedback:Obs_feedback.t -> compiled -> string -> float
(** Cardinality provider for {!Alg_cost.estimate}: maps a Scan leaf's
    access id to the rows observed for that access on previous
    executions, or {!Alg_cost.default_scan_rows} when nothing has been
    recorded yet. *)

val explain : compiled -> string
(** Operator tree plus, per SQL access, the fragment shipped to the
    source. *)

val access_to_string : string * access -> string
(** One [explain] line (two-space indented): access id, strategy, and
    the artifact shipped to the source. *)
