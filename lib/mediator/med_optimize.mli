(** DPsize join-order enumeration for the mediator.

    Exact dynamic programming over connected subsets of the query's
    accesses, producing bushy or left-deep join trees costed in virtual
    milliseconds (source latency + per-tuple transfer for leaves, a
    small per-row mediator charge for joins, the full product for
    forced cartesian splits).  Enumeration caps at [max_relations]; the
    planner falls back to its greedy walk beyond that. *)

type mode =
  | Greedy  (** the feedback-weighted greedy walk (default) *)
  | Dp of { max_relations : int }
      (** DPsize enumeration, greedy fallback past the cap *)

val default_max_relations : int

val dp : mode
(** [Dp] with {!default_max_relations}. *)

val mode_to_string : mode -> string

val mode_of_string : string -> mode option
(** Accepts ["greedy"], ["dp"], and ["dp:<n>"] (cap override, n >= 2). *)

type rel = {
  r_id : string;        (** access id, for display *)
  r_rows : float;       (** estimated rows shipped by this access *)
  r_latency_ms : float; (** source round-trip latency *)
  r_per_tuple_ms : float;
}

type tree =
  | Leaf of int  (** index into the input array *)
  | Join of tree * tree

type plan = {
  p_tree : tree;
  p_rows : float;  (** estimated output rows *)
  p_cost : float;  (** estimated virtual milliseconds *)
}

val leaves : tree -> int list
(** Leaf indices in left-to-right order. *)

val to_string : rel array -> tree -> string
(** Render like [((a0 ⋈ a2) ⋈ a1)]. *)

val enumerate :
  ?max_relations:int ->
  connected:(int -> int -> bool) ->
  join_selectivity:(int -> int -> float) ->
  rel array ->
  plan option
(** Best join tree over the relations, or [None] when there are fewer
    than two relations or more than [max_relations] (caller falls back
    to greedy).  [connected i j] says whether the two accesses share a
    join variable; [join_selectivity i j] is the estimated selectivity
    of that edge (consulted only when connected).  Deterministic:
    equal-cost candidates keep the first one found. *)
