(* Cardinality estimation over the statistics catalog.

   This is the single entry point behind every row-count guess the
   planner makes (the three scattered [Alg_cost.default_scan_rows]
   fallbacks of the pre-optimizer planner).  The resolution order is:

   1. exact execution feedback for the access (most specific, measured);
   2. statistics-based estimation: table row counts scaled by the
      selectivity of the shipped WHERE clause, using histograms and
      distinct counts from [Med_stats];
   3. the flat [Alg_cost.default_scan_rows] guess.

   Estimation never raises: unknown columns and un-analyzed tables fall
   back to the same heuristic constants [Alg_cost.selectivity] uses for
   client-side predicates, so plans degrade to the old behavior. *)

let default_rows = Alg_cost.default_scan_rows

type tbl = {
  t_alias : string option;
  t_export : string;
  t_stats : Med_stats.table_stats;
}

let has_column ts name = List.mem_assoc name ts.Med_stats.ts_cols

(* Resolve a SQL column reference against the FROM tables: an explicit
   qualifier matches the alias or the export name; unqualified columns
   bind to the first table that has them (the sqlgen never emits
   ambiguous unqualified columns). *)
let resolve_col tables (qual, name) =
  match qual with
  | Some q ->
    List.find_opt (fun t -> t.t_alias = Some q || String.equal t.t_export q) tables
    |> Option.map (fun t -> (t.t_stats, name))
  | None ->
    List.find_opt (fun t -> has_column t.t_stats name) tables
    |> Option.map (fun t -> (t.t_stats, name))

let null_fraction ts name =
  match List.assoc_opt name ts.Med_stats.ts_cols with
  | Some cs when ts.Med_stats.ts_rows > 0 ->
    Some (float_of_int cs.Med_stats.cs_nulls /. float_of_int ts.Med_stats.ts_rows)
  | _ -> None

let flip = function `Lt -> `Gt | `Le -> `Ge | `Gt -> `Lt | `Ge -> `Le

let cmp_op_of = function
  | Sql_ast.Lt -> Some `Lt
  | Sql_ast.Le -> Some `Le
  | Sql_ast.Gt -> Some `Gt
  | Sql_ast.Ge -> Some `Ge
  | _ -> None

(* Selectivity of a WHERE expression.  Statistics where we have them,
   [Alg_cost]-style constants where we do not. *)
let rec selectivity tables expr =
  let default_for = function
    | Sql_ast.Binop (Sql_ast.Eq, _, _) -> 0.05
    | Sql_ast.Binop ((Sql_ast.Lt | Sql_ast.Le | Sql_ast.Gt | Sql_ast.Ge), _, _) -> 0.3
    | Sql_ast.Binop (Sql_ast.Neq, _, _) -> 0.9
    | Sql_ast.Like _ -> 0.25
    | Sql_ast.Between _ -> 0.3
    | Sql_ast.Is_null _ -> 0.1
    | Sql_ast.Is_not_null _ -> 0.9
    | _ -> 0.5
  in
  match expr with
  | Sql_ast.Binop (Sql_ast.And, a, b) -> selectivity tables a *. selectivity tables b
  | Sql_ast.Binop (Sql_ast.Or, a, b) ->
    let sa = selectivity tables a and sb = selectivity tables b in
    min 1.0 (sa +. sb -. (sa *. sb))
  | Sql_ast.Unop (Sql_ast.Not, e) -> max 0.0 (1.0 -. selectivity tables e)
  | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Col (q, c), Sql_ast.Lit v)
  | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Lit v, Sql_ast.Col (q, c)) -> (
    match resolve_col tables (q, c) with
    | Some (ts, name) ->
      Option.value ~default:(default_for expr) (Med_stats.eq_fraction ts name v)
    | None -> default_for expr)
  | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Col (ql, cl), Sql_ast.Col (qr, cr)) -> (
    (* Column-column equality: the join-edge case.  1 / max(distinct)
       when both sides are known; the flat hash-join guess otherwise. *)
    match (resolve_col tables (ql, cl), resolve_col tables (qr, cr)) with
    | Some (tl, nl), Some (tr, nr) -> (
      match (Med_stats.distinct_of tl nl, Med_stats.distinct_of tr nr) with
      | Some dl, Some dr -> 1.0 /. float_of_int (max 1 (max dl dr))
      | _ -> 0.05)
    | _ -> 0.05)
  | Sql_ast.Binop (op, Sql_ast.Col (q, c), Sql_ast.Lit v) when cmp_op_of op <> None -> (
    let cmp = Option.get (cmp_op_of op) in
    match resolve_col tables (q, c) with
    | Some (ts, name) ->
      Option.value ~default:(default_for expr) (Med_stats.cmp_fraction ts name cmp v)
    | None -> default_for expr)
  | Sql_ast.Binop (op, Sql_ast.Lit v, Sql_ast.Col (q, c)) when cmp_op_of op <> None -> (
    let cmp = flip (Option.get (cmp_op_of op)) in
    match resolve_col tables (q, c) with
    | Some (ts, name) ->
      Option.value ~default:(default_for expr) (Med_stats.cmp_fraction ts name cmp v)
    | None -> default_for expr)
  | Sql_ast.In_list (Sql_ast.Col (q, c), items) -> (
    match resolve_col tables (q, c) with
    | Some (ts, name) ->
      let fractions =
        List.map
          (function
            | Sql_ast.Lit v ->
              Option.value ~default:0.05 (Med_stats.eq_fraction ts name v)
            | _ -> 0.05)
          items
      in
      min 1.0 (List.fold_left ( +. ) 0.0 fractions)
    | None -> min 1.0 (0.05 *. float_of_int (List.length items)))
  | Sql_ast.Between (Sql_ast.Col (q, c), Sql_ast.Lit lo, Sql_ast.Lit hi) -> (
    match resolve_col tables (q, c) with
    | Some (ts, name) -> (
      match
        (Med_stats.cmp_fraction ts name `Le hi, Med_stats.cmp_fraction ts name `Lt lo)
      with
      | Some below_hi, Some below_lo -> max 0.0 (below_hi -. below_lo)
      | _ -> default_for expr)
    | None -> default_for expr)
  | Sql_ast.Is_null (Sql_ast.Col (q, c)) -> (
    match resolve_col tables (q, c) with
    | Some (ts, name) ->
      Option.value ~default:(default_for expr) (null_fraction ts name)
    | None -> default_for expr)
  | Sql_ast.Is_not_null (Sql_ast.Col (q, c)) -> (
    match resolve_col tables (q, c) with
    | Some (ts, name) -> (
      match null_fraction ts name with
      | Some f -> 1.0 -. f
      | None -> default_for expr)
    | None -> default_for expr)
  | Sql_ast.Lit (Value.Bool true) -> 1.0
  | Sql_ast.Lit (Value.Bool false) -> 0.0
  | e -> default_for e

let rec from_tables = function
  | Sql_ast.From_table { table; alias } -> [ (alias, table) ]
  | Sql_ast.From_join (lhs, _, { table; alias }, _) ->
    from_tables lhs @ [ (alias, table) ]

let has_aggregate items =
  List.exists (function Sql_ast.Agg_item _ -> true | _ -> false) items

(* Estimated output rows of a shipped SELECT.  [None] when any FROM
   table lacks statistics — the caller then falls back to feedback or
   the default guess. *)
let select_rows stats ~source (sel : Sql_ast.select) =
  match sel.Sql_ast.from with
  | None -> Some 1.0
  | Some from ->
    let refs = from_tables from in
    let resolved =
      List.map
        (fun (alias, export) ->
          Option.map
            (fun ts -> { t_alias = alias; t_export = export; t_stats = ts })
            (Med_stats.find stats ~source ~export))
        refs
    in
    if List.exists Option.is_none resolved then None
    else begin
      let tables = List.map Option.get resolved in
      let base =
        List.fold_left
          (fun acc t -> acc *. float_of_int t.t_stats.Med_stats.ts_rows)
          1.0 tables
      in
      (* ON conditions of explicit JOINs filter like WHERE conjuncts. *)
      let rec on_selectivity = function
        | Sql_ast.From_table _ -> 1.0
        | Sql_ast.From_join (lhs, _, _, on) ->
          on_selectivity lhs *. selectivity tables on
      in
      let where_sel =
        match sel.Sql_ast.where with
        | None -> 1.0
        | Some e -> selectivity tables e
      in
      let rows = base *. on_selectivity from *. where_sel in
      let rows =
        if sel.Sql_ast.group_by <> [] then max 1.0 (rows *. 0.2)
        else if has_aggregate sel.Sql_ast.items then 1.0
        else rows
      in
      let rows =
        match sel.Sql_ast.limit with
        | Some n -> min rows (float_of_int n)
        | None -> rows
      in
      Some rows
    end

let table_rows stats ~source ~export =
  Option.map
    (fun ts -> float_of_int ts.Med_stats.ts_rows)
    (Med_stats.find stats ~source ~export)

(* Index-backed path cardinality: when the document's structural guide
   is already built, it answers the match count of an indexable path
   exactly (and value indexes refine predicate paths).  Consults only
   built indexes — estimation never triggers index construction. *)
let path_rows ~source ~export path =
  Idx_manager.estimate ("src:" ^ source ^ "/" ^ export) path

let column_distinct stats ~source ~export ~column =
  match Med_stats.find stats ~source ~export with
  | None -> None
  | Some ts -> Med_stats.distinct_of ts column
