type result = {
  trees : Dtree.t list;
  bindings : Alg_env.t list;
  skipped_sources : string list;
}

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Exec_error m)) fmt

let compile = Med_planner.compile

type view_lookup = string -> Dtree.t list option

let no_lookup : view_lookup = fun _ -> None

(* The reference resolver: exports serve documents, views evaluate
   recursively by direct pattern matching. *)
let rec direct_resolver catalog name =
  match Med_catalog.find_view catalog name with
  | Some view ->
    List.concat_map
      (Xq_eval.eval (fun n -> direct_resolver catalog n))
      view.Med_catalog.definitions
  | None -> Src_registry.documents (Med_catalog.registry catalog) name

(* ------------------------------------------------------------------ *)
(* Access execution                                                    *)
(* ------------------------------------------------------------------ *)

let envs_of_sql_rows (fragment : Med_sqlgen.fragment) rows =
  List.map
    (fun row ->
      let var_bindings =
        List.map
          (fun (var, col) ->
            let v = Option.value ~default:Value.Null (Tuple.get row col) in
            (var, Dtree.atom v))
          fragment.Med_sqlgen.binds
      in
      let row_binding =
        match fragment.Med_sqlgen.row_var with
        | Some var -> [ (var, Dtree.of_tuple "row" row) ]
        | None -> []
      in
      Alg_env.of_bindings (var_bindings @ row_binding))
    rows

let match_documents pattern docs =
  List.concat_map (fun doc -> Xq_eval.match_anywhere pattern doc) docs

(* The XML view of an export, shipping rows (not trees) for tabular
   sources and rebuilding the document client-side. *)
let export_documents (src : Source.t) export =
  match src.Source.kind with
  | Source.Relational | Source.Flat_file -> (
    match src.Source.execute (Source.Q_scan export) with
    | Source.R_rows (_, rows) -> [ Source.table_document export rows ]
    | Source.R_trees trees -> trees)
  | Source.Xml_store -> src.Source.documents export

(* Execute one access; may recurse through the compiler for views. *)
let rec run_access catalog ~opts ~view_lookup access : Alg_env.t list =
  match access with
  | Med_planner.A_sql { source_name; export; fragment; pattern } -> (
    let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
    try
      match src.Source.execute (Source.Q_sql fragment.Med_sqlgen.sql_text) with
      | Source.R_rows (_, rows) -> envs_of_sql_rows fragment rows
      | Source.R_trees trees -> match_documents pattern trees
    with Source.Query_rejected _ ->
      (* Capability miss at runtime: ship the whole export and re-apply
         the conditions the fragment would have evaluated (they left the
         residual pool at plan time). *)
      let envs = match_documents pattern (export_documents src export) in
      List.filter
        (fun env ->
          List.for_all
            (fun cond -> Alg_expr.eval_pred env cond)
            fragment.Med_sqlgen.pushed_conditions)
        envs)
  | Med_planner.A_sql_join { source_name; fragment; exports = _ } -> (
    let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
    match src.Source.execute (Source.Q_sql fragment.Med_sqlgen.jf_sql_text) with
    | Source.R_rows (_, rows) ->
      List.map
        (fun row ->
          Alg_env.of_bindings
            (List.map
               (fun (var, col) ->
                 (var, Dtree.atom (Option.value ~default:Value.Null (Tuple.get row col))))
               fragment.Med_sqlgen.jf_binds))
        rows
    | Source.R_trees _ -> fail "join fragment returned trees from %s" source_name)
  | Med_planner.A_path { source_name; export; path; pattern } -> (
    let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
    try
      match src.Source.execute (Source.Q_path (export, path)) with
      | Source.R_trees candidates ->
        (* Preselection is a superset; full matching verifies and binds. *)
        List.concat_map (Xq_eval.match_pattern pattern) candidates
      | Source.R_rows _ -> match_documents pattern (export_documents src export)
    with Source.Query_rejected _ ->
      match_documents pattern (export_documents src export))
  | Med_planner.A_match { source_name; export; pattern } ->
    let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
    match_documents pattern (export_documents src export)
  | Med_planner.A_view { view; pattern } -> (
    match view_lookup view with
    | Some trees -> match_documents pattern trees
    | None -> (
      match Med_catalog.find_view catalog view with
      | None -> fail "unknown view %s" view
      | Some v ->
        let trees =
          List.concat_map
            (fun def ->
              let sub = Med_planner.compile ~opts catalog def in
              (exec catalog ~opts ~partial:false ~view_lookup sub).trees)
            v.Med_catalog.definitions
        in
        match_documents pattern trees))

(* ------------------------------------------------------------------ *)
(* Plan execution                                                      *)
(* ------------------------------------------------------------------ *)

and source_fn_of catalog ~opts ~view_lookup (compiled : Med_planner.compiled) :
    Alg_exec.source_fn =
 fun access_id _binding ->
  match List.assoc_opt access_id compiled.Med_planner.accesses with
  | None -> fail "internal: unknown access id %s" access_id
  | Some access -> (
    try List.to_seq (run_access catalog ~opts ~view_lookup access)
    with Source.Unavailable name -> raise (Alg_exec.Source_unavailable name))

and exec catalog ~opts ~partial ~view_lookup (compiled : Med_planner.compiled) =
  let sources = source_fn_of catalog ~opts ~view_lookup compiled in
  let envs, skipped =
    if partial then Alg_exec.run_partial sources compiled.Med_planner.plan
    else (Alg_exec.run_list sources compiled.Med_planner.plan, [])
  in
  (* Instantiate the CONSTRUCT template per binding.  Correlated
     subqueries re-enter through the direct resolver. *)
  let resolver = direct_resolver catalog in
  let trees =
    List.concat_map
      (fun env -> Xq_eval.instantiate resolver env compiled.Med_planner.construct)
      envs
  in
  { trees; bindings = envs; skipped_sources = skipped }

let run_compiled ?(view_lookup = no_lookup) catalog compiled =
  exec catalog ~opts:Med_sqlgen.default_options ~partial:false ~view_lookup compiled

let run_compiled_partial ?(view_lookup = no_lookup) catalog compiled =
  exec catalog ~opts:Med_sqlgen.default_options ~partial:true ~view_lookup compiled

let run ?(opts = Med_sqlgen.default_options) ?(view_lookup = no_lookup) catalog q =
  (exec catalog ~opts ~partial:false ~view_lookup (Med_planner.compile ~opts catalog q)).trees

let run_text ?opts ?view_lookup catalog text =
  match Xq_parser.parse text with
  | Ok q -> run ?opts ?view_lookup catalog q
  | Error m -> fail "%s" m

let run_partial ?(opts = Med_sqlgen.default_options) ?(view_lookup = no_lookup) catalog q =
  let r =
    exec catalog ~opts ~partial:true ~view_lookup (Med_planner.compile ~opts catalog q)
  in
  (r.trees, r.skipped_sources)

let explain_text catalog text =
  match Xq_parser.parse text with
  | Ok q -> Med_planner.explain (Med_planner.compile catalog q)
  | Error m -> fail "%s" m
