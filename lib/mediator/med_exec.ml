type result = {
  trees : Dtree.t list;
  bindings : Alg_env.t list;
  skipped_sources : string list;
}

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Exec_error m)) fmt

let compile = Med_planner.compile

type view_lookup = string -> Dtree.t list option

let no_lookup : view_lookup = fun _ -> None

(* The reference resolver: exports serve documents, views evaluate
   recursively by direct pattern matching. *)
let rec direct_resolver catalog name =
  match Med_catalog.find_view catalog name with
  | Some view ->
    List.concat_map
      (Xq_eval.eval (fun n -> direct_resolver catalog n))
      view.Med_catalog.definitions
  | None -> Src_registry.documents (Med_catalog.registry catalog) name

(* ------------------------------------------------------------------ *)
(* Access execution                                                    *)
(* ------------------------------------------------------------------ *)

let envs_of_sql_rows (fragment : Med_sqlgen.fragment) rows =
  List.map
    (fun row ->
      let var_bindings =
        List.map
          (fun (var, col) ->
            let v = Option.value ~default:Value.Null (Tuple.get row col) in
            (var, Dtree.atom v))
          fragment.Med_sqlgen.binds
      in
      let row_binding =
        match fragment.Med_sqlgen.row_var with
        | Some var -> [ (var, Dtree.of_tuple "row" row) ]
        | None -> []
      in
      Alg_env.of_bindings (var_bindings @ row_binding))
    rows

let match_documents pattern docs =
  List.concat_map (fun doc -> Xq_eval.match_anywhere pattern doc) docs

(* Which source (or view) an access targets, and what it ships there —
   the [target]/[push] attributes of the mediator.access span and the
   name under which per-source counters accumulate. *)
let access_target = function
  | Med_planner.A_sql { source_name; _ }
  | Med_planner.A_sql_join { source_name; _ }
  | Med_planner.A_path { source_name; _ }
  | Med_planner.A_match { source_name; _ } -> source_name
  | Med_planner.A_view { view; _ } -> view

let access_push = function
  | Med_planner.A_sql { fragment; _ } -> fragment.Med_sqlgen.sql_text
  | Med_planner.A_sql_join { fragment; _ } -> fragment.Med_sqlgen.jf_sql_text
  | Med_planner.A_path { path; _ } -> Xml_path.to_string path
  | Med_planner.A_match { pattern; _ } | Med_planner.A_view { pattern; _ } ->
    Xq_pretty.pattern_to_string pattern

let capability_fallbacks = Obs_metrics.counter "mediator.capability_fallbacks"

(* The XML view of an export, shipping rows (not trees) for tabular
   sources and rebuilding the document client-side. *)
let export_documents (src : Source.t) export =
  match src.Source.kind with
  | Source.Relational | Source.Flat_file -> (
    match src.Source.execute (Source.Q_scan export) with
    | Source.R_rows (_, rows) -> [ Source.table_document export rows ]
    | Source.R_trees trees -> trees)
  | Source.Xml_store -> src.Source.documents export

(* Execute one access; may recurse through the compiler for views. *)
let rec run_access catalog ~opts ~view_lookup access : Alg_env.t list =
  match access with
  | Med_planner.A_sql { source_name; export; fragment; pattern } -> (
    let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
    try
      match src.Source.execute (Source.Q_sql fragment.Med_sqlgen.sql_text) with
      | Source.R_rows (_, rows) -> envs_of_sql_rows fragment rows
      | Source.R_trees trees -> match_documents pattern trees
    with Source.Query_rejected _ ->
      (* Capability miss at runtime: ship the whole export and re-apply
         the conditions the fragment would have evaluated (they left the
         residual pool at plan time). *)
      Obs_metrics.inc capability_fallbacks;
      let envs = match_documents pattern (export_documents src export) in
      List.filter
        (fun env ->
          List.for_all
            (fun cond -> Alg_expr.eval_pred env cond)
            fragment.Med_sqlgen.pushed_conditions)
        envs)
  | Med_planner.A_sql_join { source_name; fragment; exports = _ } -> (
    let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
    match src.Source.execute (Source.Q_sql fragment.Med_sqlgen.jf_sql_text) with
    | Source.R_rows (_, rows) ->
      List.map
        (fun row ->
          Alg_env.of_bindings
            (List.map
               (fun (var, col) ->
                 (var, Dtree.atom (Option.value ~default:Value.Null (Tuple.get row col))))
               fragment.Med_sqlgen.jf_binds))
        rows
    | Source.R_trees _ -> fail "join fragment returned trees from %s" source_name)
  | Med_planner.A_path { source_name; export; path; pattern } -> (
    let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
    try
      match src.Source.execute (Source.Q_path (export, path)) with
      | Source.R_trees candidates ->
        (* Preselection is a superset; full matching verifies and binds. *)
        List.concat_map (Xq_eval.match_pattern pattern) candidates
      | Source.R_rows _ -> match_documents pattern (export_documents src export)
    with Source.Query_rejected _ ->
      Obs_metrics.inc capability_fallbacks;
      match_documents pattern (export_documents src export))
  | Med_planner.A_match { source_name; export; pattern } ->
    let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
    match_documents pattern (export_documents src export)
  | Med_planner.A_view { view; pattern } -> (
    match view_lookup view with
    | Some trees -> match_documents pattern trees
    | None -> (
      match Med_catalog.find_view catalog view with
      | None -> fail "unknown view %s" view
      | Some v ->
        let trees =
          List.concat_map
            (fun def ->
              let sub = Med_planner.compile ~opts catalog def in
              (exec catalog ~opts ~partial:false ~view_lookup sub).trees)
            v.Med_catalog.definitions
        in
        match_documents pattern trees))

(* ------------------------------------------------------------------ *)
(* Plan execution                                                      *)
(* ------------------------------------------------------------------ *)

and source_fn_of catalog ~opts ~view_lookup (compiled : Med_planner.compiled) :
    Alg_exec.source_fn =
 fun access_id _binding ->
  match List.assoc_opt access_id compiled.Med_planner.accesses with
  | None -> fail "internal: unknown access id %s" access_id
  | Some access ->
    let target = access_target access in
    Obs_trace.with_span "mediator.access" (fun span ->
        Obs_span.set span "id" access_id;
        Obs_span.set span "target" target;
        Obs_span.set span "push" (access_push access);
        Obs_metrics.inc
          (Obs_metrics.counter (Printf.sprintf "source.%s.accesses" target));
        try
          let envs = run_access catalog ~opts ~view_lookup access in
          let n = List.length envs in
          Obs_span.set_int span "rows" n;
          Obs_metrics.inc ~by:n
            (Obs_metrics.counter (Printf.sprintf "source.%s.rows" target));
          (* The feedback loop: whatever this access shipped is the best
             cardinality estimate for its next compilation. *)
          Obs_feedback.record (Med_catalog.feedback catalog)
            (Med_planner.access_key access) n;
          List.to_seq envs
        with Source.Unavailable name ->
          Obs_metrics.inc
            (Obs_metrics.counter (Printf.sprintf "source.%s.unavailable" target));
          raise (Alg_exec.Source_unavailable name))

and exec catalog ~opts ~partial ~view_lookup (compiled : Med_planner.compiled) =
  Obs_trace.with_span "query" (fun qspan ->
      let sources = source_fn_of catalog ~opts ~view_lookup compiled in
      let envs, skipped =
        if partial then Alg_exec.run_partial sources compiled.Med_planner.plan
        else (Alg_exec.run_list sources compiled.Med_planner.plan, [])
      in
      if skipped <> [] then begin
        (* Partial-result degradation (section 3.4): the answer shipped,
           but not all sources contributed. *)
        Obs_metrics.inc (Obs_metrics.counter "mediator.partial.degraded");
        Obs_metrics.inc ~by:(List.length skipped)
          (Obs_metrics.counter "mediator.partial.skipped_sources");
        Obs_span.set qspan "skipped" (String.concat "," skipped)
      end;
      Obs_span.set_int qspan "rows" (List.length envs);
      (* Instantiate the CONSTRUCT template per binding.  Correlated
         subqueries re-enter through the direct resolver. *)
      let resolver = direct_resolver catalog in
      let trees =
        List.concat_map
          (fun env -> Xq_eval.instantiate resolver env compiled.Med_planner.construct)
          envs
      in
      { trees; bindings = envs; skipped_sources = skipped })

let run_compiled ?(view_lookup = no_lookup) catalog compiled =
  exec catalog ~opts:Med_sqlgen.default_options ~partial:false ~view_lookup compiled

let run_compiled_partial ?(view_lookup = no_lookup) catalog compiled =
  exec catalog ~opts:Med_sqlgen.default_options ~partial:true ~view_lookup compiled

let run ?(opts = Med_sqlgen.default_options) ?(view_lookup = no_lookup) catalog q =
  (exec catalog ~opts ~partial:false ~view_lookup (Med_planner.compile ~opts catalog q)).trees

let run_text ?opts ?view_lookup catalog text =
  match Xq_parser.parse text with
  | Ok q -> run ?opts ?view_lookup catalog q
  | Error m -> fail "%s" m

let run_partial ?(opts = Med_sqlgen.default_options) ?(view_lookup = no_lookup) catalog q =
  let r =
    exec catalog ~opts ~partial:true ~view_lookup (Med_planner.compile ~opts catalog q)
  in
  (r.trees, r.skipped_sources)

let explain_text catalog text =
  match Xq_parser.parse text with
  | Ok q -> Med_planner.explain (Med_planner.compile catalog q)
  | Error m -> fail "%s" m

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE                                                     *)
(* ------------------------------------------------------------------ *)

type access_stat = {
  stat_id : string;
  stat_access : Med_planner.access;
  stat_est_rows : float;
  stat_calls : int;
  stat_rows : int;
  stat_ms : float;
}

type analysis = {
  analyzed_result : result;
  analyzed_compiled : Med_planner.compiled;
  analyzed_source_rows : string -> float;
  analyzed_actual : Alg_plan.t -> (int * float) option;
  analyzed_accesses : access_stat list;
  analyzed_wall_ms : float;
}

let run_analyzed ?(opts = Med_sqlgen.default_options) ?(view_lookup = no_lookup)
    catalog q =
  let fb = Med_catalog.feedback catalog in
  let compiled = Med_planner.compile ~opts ~feedback:fb catalog q in
  (* Snapshot the estimates BEFORE executing: the whole point of the
     report is comparing what the planner believed going in against what
     the run measured (the run itself updates the feedback store). *)
  let est_snapshot =
    List.map
      (fun (aid, _) -> (aid, Med_planner.source_rows ~feedback:fb compiled aid))
      compiled.Med_planner.accesses
  in
  let source_rows aid =
    match List.assoc_opt aid est_snapshot with
    | Some rows -> rows
    | None -> Alg_cost.default_scan_rows
  in
  (* Wrap the source function to tally per-access calls / rows / time
     (the per-source-fragment half of the report; the operator half comes
     from the instrumented executor). *)
  let tally : (string, int ref * int ref * float ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let base = source_fn_of catalog ~opts ~view_lookup compiled in
  let sources aid binding =
    let calls, rows, ms =
      match Hashtbl.find_opt tally aid with
      | Some cell -> cell
      | None ->
        let cell = (ref 0, ref 0, ref 0.0) in
        Hashtbl.add tally aid cell;
        cell
    in
    let t0 = Obs_clock.wall_ms () in
    let envs = List.of_seq (base aid binding) in
    incr calls;
    rows := !rows + List.length envs;
    ms := !ms +. (Obs_clock.wall_ms () -. t0);
    List.to_seq envs
  in
  let t0 = Obs_clock.wall_ms () in
  let envs, op_root =
    Obs_trace.with_span "query" (fun qspan ->
        let r = Alg_exec.run_instrumented sources compiled.Med_planner.plan in
        Obs_span.set_int qspan "rows" (List.length (fst r));
        r)
  in
  let wall_ms = Obs_clock.wall_ms () -. t0 in
  let resolver = direct_resolver catalog in
  let trees =
    List.concat_map
      (fun env -> Xq_eval.instantiate resolver env compiled.Med_planner.construct)
      envs
  in
  let accesses =
    List.map
      (fun (aid, access) ->
        let calls, rows, ms =
          match Hashtbl.find_opt tally aid with
          | Some (c, r, m) -> (!c, !r, !m)
          | None -> (0, 0, 0.0)
        in
        {
          stat_id = aid;
          stat_access = access;
          stat_est_rows = source_rows aid;
          stat_calls = calls;
          stat_rows = rows;
          stat_ms = ms;
        })
      compiled.Med_planner.accesses
  in
  {
    analyzed_result = { trees; bindings = envs; skipped_sources = [] };
    analyzed_compiled = compiled;
    analyzed_source_rows = source_rows;
    analyzed_actual = Alg_exec.actual_of_stats op_root;
    analyzed_accesses = accesses;
    analyzed_wall_ms = wall_ms;
  }

let run_analyzed_text ?opts ?view_lookup catalog text =
  match Xq_parser.parse text with
  | Ok q -> run_analyzed ?opts ?view_lookup catalog q
  | Error m -> fail "%s" m

let analysis_to_string a =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Alg_cost.explain_analyze ~source_rows:a.analyzed_source_rows
       ~actual:a.analyzed_actual a.analyzed_compiled.Med_planner.plan);
  Buffer.add_string buf "accesses:\n";
  List.iter
    (fun st ->
      Buffer.add_string buf
        (Med_planner.access_to_string (st.stat_id, st.stat_access));
      Buffer.add_string buf
        (Printf.sprintf "  [%s]\n"
           (Obs_report.cells
              [
                ("est", Printf.sprintf "%.0f" st.stat_est_rows);
                Obs_report.int_cell "calls" st.stat_calls;
                Obs_report.int_cell "rows" st.stat_rows;
                ("time", Printf.sprintf "%.2fms" st.stat_ms);
              ]))
      )
    a.analyzed_accesses;
  Buffer.add_string buf
    (Printf.sprintf "-- %d rows in %.2fms\n"
       (List.length a.analyzed_result.bindings)
       a.analyzed_wall_ms);
  Buffer.contents buf
