type result = {
  trees : Dtree.t list;
  bindings : Alg_env.t list;
  skipped_sources : string list;
  stale_sources : string list;
}

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Exec_error m)) fmt

let compile = Med_planner.compile

type view_lookup = string -> Dtree.t list option

let no_lookup : view_lookup = fun _ -> None

(* The reference resolver: exports serve documents, views evaluate
   recursively by direct pattern matching. *)
let rec direct_resolver catalog name =
  match Med_catalog.find_view catalog name with
  | Some view ->
    List.concat_map
      (Xq_eval.eval (fun n -> direct_resolver catalog n))
      view.Med_catalog.definitions
  | None -> Src_registry.documents (Med_catalog.registry catalog) name

(* ------------------------------------------------------------------ *)
(* Access execution                                                    *)
(* ------------------------------------------------------------------ *)

let envs_of_sql_rows (fragment : Med_sqlgen.fragment) rows =
  List.map
    (fun row ->
      let var_bindings =
        List.map
          (fun (var, col) ->
            let v = Option.value ~default:Value.Null (Tuple.get row col) in
            (var, Dtree.atom v))
          fragment.Med_sqlgen.binds
      in
      let row_binding =
        match fragment.Med_sqlgen.row_var with
        | Some var -> [ (var, Dtree.of_tuple "row" row) ]
        | None -> []
      in
      Alg_env.of_bindings (var_bindings @ row_binding))
    rows

let match_documents pattern docs =
  List.concat_map (fun doc -> Xq_eval.match_anywhere pattern doc) docs

let access_target = Med_planner.access_target

let access_push = function
  | Med_planner.A_sql { fragment; _ } | Med_planner.A_sql_bind { fragment; _ } ->
    fragment.Med_sqlgen.sql_text
  | Med_planner.A_sql_join { fragment; _ } -> fragment.Med_sqlgen.jf_sql_text
  | Med_planner.A_path { path; _ } -> Xml_path.to_string path
  | Med_planner.A_match { pattern; _ } | Med_planner.A_view { pattern; _ } ->
    Xq_pretty.pattern_to_string pattern

let capability_fallbacks = Obs_metrics.counter "mediator.capability_fallbacks"
let batch_fallbacks = Obs_metrics.counter "fetch.batch_fallbacks"

(* Distinct non-NULL key values of [var] across the driver's rows, in
   first-seen order (deterministic SQL text).  NULL keys are dropped:
   the equi-join above the bound scan never matches them anyway. *)
let bind_key_values envs var =
  List.rev
    (List.fold_left
       (fun acc env ->
         let v = Alg_env.value_of env var in
         if v = Value.Null || List.exists (Value.equal v) acc then acc
         else v :: acc)
       [] envs)

(* Keys beyond this cap ship the unbound fragment instead — a mile-long
   IN-list costs more to ship and parse than the rows it would save. *)
let max_bind_keys = 1024

let bound_fragment (fragment : Med_sqlgen.fragment) ~bind_col keys =
  let in_list =
    Sql_ast.In_list
      (Sql_ast.Col (None, bind_col), List.map (fun v -> Sql_ast.Lit v) keys)
  in
  let where =
    match fragment.Med_sqlgen.sql.Sql_ast.where with
    | None -> Some in_list
    | Some w -> Some (Sql_ast.Binop (Sql_ast.And, w, in_list))
  in
  let select = { fragment.Med_sqlgen.sql with Sql_ast.where } in
  {
    fragment with
    Med_sqlgen.sql = select;
    sql_text = Sql_print.select_to_string select;
  }

(* ------------------------------------------------------------------ *)
(* Fragment cache plumbing                                             *)
(* ------------------------------------------------------------------ *)

(* The fragment string is the cache identity of what ships to the
   source; it doubles as a human-readable label.  SQL fragments are
   cached under their text verbatim. *)
let frag_key_path export path =
  Printf.sprintf "path:%s:%s" export (Xml_path.to_string path)

let frag_key_scan export = "scan:" ^ export
let frag_key_doc doc = "doc:" ^ doc

(* One remote call through the fragment cache: a hit skips the wire
   (and the network simulator) entirely; only successful results are
   cached, so rejections and outages keep their live semantics. *)
let frag_fetch catalog (src : Source.t) ~fragment q =
  let frag = Med_catalog.frag_cache catalog in
  match Frag_cache.get frag ~source:src.Source.name ~fragment with
  | Some r -> r
  | None -> (
    let retry = Med_catalog.retry catalog in
    match
      Src_retry.call retry ~source:src.Source.name (fun () -> src.Source.execute q)
    with
    | r ->
      Frag_cache.put frag ~source:src.Source.name ~fragment r;
      r
    | exception (Source.Unavailable _ as e) ->
      (* Partial-mode degradation: once the retry budget is spent, a
         stale extent beats losing the source's whole contribution.
         Strict mode never degrades — the exception propagates. *)
      (match
         if Src_retry.stale_ok retry then
           Frag_cache.get_stale frag ~source:src.Source.name ~fragment
         else None
       with
      | Some r ->
        Src_retry.note_stale retry ~source:src.Source.name;
        r
      | None -> raise e))

(* SQL fragments key the exact-key cache by their canonical rendering
   (stable alias numbering, sorted conjuncts) rather than the shipped
   text, so cosmetically different renderings of one fragment — e.g. a
   plan-cache rebind that re-renders the AST — share an entry. *)
let frag_key_sql select = Sql_print.canonical_select select

(* ------------------------------------------------------------------ *)
(* Semantic cache plumbing                                             *)
(* ------------------------------------------------------------------ *)

(* The semantic layer sits above the exact-key cache: it may answer the
   whole fragment from a cached extent (ship nothing), rewrite it to a
   remainder query, or pass it through untouched; whatever still ships
   goes through the normal exact-key + wire path.  Only relational
   sources participate — their fragments have SQL ASTs to reason
   about. *)
let sem_plan catalog (src : Source.t) access =
  if src.Source.kind <> Source.Relational then None
  else
    let mk select sql_text exports =
      let samples =
        Obs_feedback.samples (Med_catalog.feedback catalog)
          (Med_planner.access_key access)
      in
      let reship () =
        frag_fetch catalog src ~fragment:(frag_key_sql select)
          (Source.Q_sql sql_text)
      in
      Sem_rewrite.plan
        (Med_catalog.sem_cache catalog)
        ~reship
        {
          Sem_rewrite.req_source = src.Source.name;
          req_select = select;
          req_sql_text = sql_text;
          req_exports = exports;
          req_samples = samples;
        }
    in
    match access with
    | Med_planner.A_sql { export; fragment; _ } ->
      Some (mk fragment.Med_sqlgen.sql fragment.Med_sqlgen.sql_text [ export ])
    | Med_planner.A_sql_join { fragment; exports; _ } ->
      Some (mk fragment.Med_sqlgen.jf_sql fragment.Med_sqlgen.jf_sql_text exports)
    | _ -> None

(* Fetch one SQL access's raw result through both cache layers. *)
let fetch_sql catalog (src : Source.t) access =
  let select, sql_text =
    match access with
    | Med_planner.A_sql { fragment; _ } ->
      (fragment.Med_sqlgen.sql, fragment.Med_sqlgen.sql_text)
    | Med_planner.A_sql_join { fragment; _ } ->
      (fragment.Med_sqlgen.jf_sql, fragment.Med_sqlgen.jf_sql_text)
    | _ -> fail "internal: not a SQL access"
  in
  match sem_plan catalog src access with
  | Some (Sem_rewrite.P_local r) -> r
  | Some (Sem_rewrite.P_ship { ship_sql; finish }) ->
    (* Remainder queries key the exact cache by their own text; the
       original fragment keeps its canonical key. *)
    let key = if ship_sql = sql_text then frag_key_sql select else ship_sql in
    finish (frag_fetch catalog src ~fragment:key (Source.Q_sql ship_sql))
  | None -> frag_fetch catalog src ~fragment:(frag_key_sql select) (Source.Q_sql sql_text)

let frag_documents catalog (src : Source.t) doc =
  let frag = Med_catalog.frag_cache catalog in
  let fragment = frag_key_doc doc in
  match Frag_cache.get frag ~source:src.Source.name ~fragment with
  | Some (Source.R_trees trees) -> trees
  | Some _ | None -> (
    let retry = Med_catalog.retry catalog in
    match
      Src_retry.call retry ~source:src.Source.name (fun () -> src.Source.documents doc)
    with
    | trees ->
      Frag_cache.put frag ~source:src.Source.name ~fragment (Source.R_trees trees);
      trees
    | exception (Source.Unavailable _ as e) ->
      (match
         if Src_retry.stale_ok retry then
           Frag_cache.get_stale frag ~source:src.Source.name ~fragment
         else None
       with
      | Some (Source.R_trees trees) ->
        Src_retry.note_stale retry ~source:src.Source.name;
        trees
      | Some _ | None -> raise e))

(* The XML view of an export, shipping rows (not trees) for tabular
   sources and rebuilding the document client-side. *)
let export_documents catalog (src : Source.t) export =
  match src.Source.kind with
  | Source.Relational | Source.Flat_file -> (
    match frag_fetch catalog src ~fragment:(frag_key_scan export) (Source.Q_scan export) with
    | Source.R_rows (_, rows) -> [ Source.table_document export rows ]
    | Source.R_trees trees -> trees
    | Source.R_batch _ -> fail "unexpected batch result from %s" src.Source.name)
  | Source.Xml_store -> frag_documents catalog src export

(* Turn one SQL fragment's raw result into bound environments. *)
let envs_of_sql_access access r =
  match access with
  | Med_planner.A_sql { fragment; pattern; _ } -> (
    match r with
    | Source.R_rows (_, rows) -> envs_of_sql_rows fragment rows
    | Source.R_trees trees -> match_documents pattern trees
    | Source.R_batch _ -> fail "unexpected nested batch result")
  | _ -> fail "internal: non-SQL access in a batch"

(* ------------------------------------------------------------------ *)
(* Scatter-gather prefetch                                             *)
(* ------------------------------------------------------------------ *)

type fetch_info = {
  fi_round : int;
  fi_shared : bool;
  fi_cache_hits : int;
}

type prefetched = {
  pf_result : (Alg_env.t list, exn) Stdlib.result;
  pf_info : fetch_info;
}

(* Execute one access; may recurse through the compiler for views. *)
let rec run_access catalog ~opts ~view_lookup access : Alg_env.t list =
  match access with
  | Med_planner.A_sql { source_name; export; fragment; pattern } -> (
    let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
    try envs_of_sql_access access (fetch_sql catalog src access)
    with Source.Query_rejected _ ->
      (* Capability miss at runtime: ship the whole export and re-apply
         the conditions the fragment would have evaluated (they left the
         residual pool at plan time). *)
      Obs_metrics.inc capability_fallbacks;
      let envs = match_documents pattern (export_documents catalog src export) in
      List.filter
        (fun env ->
          List.for_all
            (fun cond -> Alg_expr.eval_pred env cond)
            fragment.Med_sqlgen.pushed_conditions)
        envs)
  | Med_planner.A_sql_join { source_name; fragment; exports = _ } -> (
    let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
    match fetch_sql catalog src access with
    | Source.R_rows (_, rows) ->
      List.map
        (fun row ->
          Alg_env.of_bindings
            (List.map
               (fun (var, col) ->
                 (var, Dtree.atom (Option.value ~default:Value.Null (Tuple.get row col))))
               fragment.Med_sqlgen.jf_binds))
        rows
    | Source.R_trees _ -> fail "join fragment returned trees from %s" source_name
    | Source.R_batch _ -> fail "unexpected batch result from %s" source_name)
  | Med_planner.A_path { source_name; export; path; pattern } -> (
    let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
    try
      match
        frag_fetch catalog src ~fragment:(frag_key_path export path)
          (Source.Q_path (export, path))
      with
      | Source.R_trees candidates ->
        (* Preselection is a superset; full matching verifies and binds. *)
        List.concat_map (Xq_eval.match_pattern pattern) candidates
      | Source.R_rows _ -> match_documents pattern (export_documents catalog src export)
      | Source.R_batch _ -> fail "unexpected batch result from %s" source_name
    with Source.Query_rejected _ ->
      Obs_metrics.inc capability_fallbacks;
      match_documents pattern (export_documents catalog src export))
  | Med_planner.A_match { source_name; export; pattern } ->
    let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
    match_documents pattern (export_documents catalog src export)
  | Med_planner.A_sql_bind { source_name; export; fragment; pattern; _ } ->
    (* Reached only without a resolved driver (e.g. a live re-pull after
       the prefetch buffer missed): ship the unbound fragment — always a
       correct superset of the bound fetch. *)
    run_access catalog ~opts ~view_lookup
      (Med_planner.A_sql { source_name; export; fragment; pattern })
  | Med_planner.A_view { view; pattern } -> (
    match view_lookup view with
    | Some trees -> match_documents pattern trees
    | None -> (
      match Med_catalog.find_view catalog view with
      | None -> fail "unknown view %s" view
      | Some v ->
        let trees =
          List.concat_map
            (fun def ->
              let sub = Med_planner.compile ~opts catalog def in
              (exec catalog ~opts ~partial:false ~view_lookup sub).trees)
            v.Med_catalog.definitions
        in
        match_documents pattern trees))

(* Several SQL fragments bound for one relational source, shipped as a
   single batched round trip (one latency charge).  Cache hits resolve
   locally; a source without batch capability falls back to individual
   calls inside the same scheduling lane. *)
and run_sql_batch catalog ~opts ~view_lookup source_name members =
  let frag = Med_catalog.frag_cache catalog in
  let src = Src_registry.find_exn (Med_catalog.registry catalog) source_name in
  let classified =
    List.map
      (fun (key, access) ->
        match access with
        | Med_planner.A_sql { fragment; _ } ->
          let sql = fragment.Med_sqlgen.sql_text in
          let ckey = frag_key_sql fragment.Med_sqlgen.sql in
          ( key,
            access,
            sql,
            ckey,
            Frag_cache.get frag ~source:source_name ~fragment:ckey )
        | _ -> fail "internal: non-SQL access in a batch")
      members
  in
  let missing = List.filter (fun (_, _, _, _, c) -> c = None) classified in
  (* Ask the semantic layer about each member the exact-key cache
     missed: full hits resolve locally; the rest ship in one batch —
     possibly as remainder queries, merged back on arrival. *)
  let planned =
    List.map
      (fun (key, access, sql, ckey, _) ->
        match sem_plan catalog src access with
        | Some (Sem_rewrite.P_local r) -> (key, access, sql, ckey, `Local r)
        | Some (Sem_rewrite.P_ship { ship_sql; finish }) ->
          (key, access, sql, ckey, `Ship (ship_sql, finish))
        | None -> (key, access, sql, ckey, `Ship (sql, Fun.id)))
      missing
  in
  let missing_envs : (string, (Alg_env.t list, exn) Stdlib.result) Hashtbl.t =
    Hashtbl.create (max 1 (List.length missing))
  in
  List.iter
    (fun (key, access, _, _, outcome) ->
      match outcome with
      | `Local r ->
        Hashtbl.replace missing_envs key
          (try Ok (envs_of_sql_access access r) with e -> Error e)
      | `Ship _ -> ())
    planned;
  let to_ship =
    List.filter_map
      (fun (key, access, sql, ckey, outcome) ->
        match outcome with
        | `Ship (ship_sql, finish) -> Some (key, access, sql, ckey, ship_sql, finish)
        | `Local _ -> None)
      planned
  in
  let solo (key, access, _sql, _ckey, _ship, _finish) =
    Hashtbl.replace missing_envs key
      (try Ok (run_access catalog ~opts ~view_lookup access) with e -> Error e)
  in
  let land_result (key, access, sql, ckey, ship_sql, finish) r =
    (* Raw remainder results cache under their own text; an untouched
       fragment caches under its canonical key as before. *)
    let putkey = if ship_sql = sql then ckey else ship_sql in
    Frag_cache.put frag ~source:source_name ~fragment:putkey r;
    Hashtbl.replace missing_envs key
      (try Ok (envs_of_sql_access access (finish r)) with e -> Error e)
  in
  (match to_ship with
  | [] -> ()
  | [ m ] -> solo m
  | _ -> (
    let queries = List.map (fun (_, _, _, _, s, _) -> Source.Q_sql s) to_ship in
    match
      Src_retry.call (Med_catalog.retry catalog) ~source:source_name (fun () ->
          src.Source.execute (Source.Q_batch queries))
    with
    | Source.R_batch results when List.length results = List.length to_ship ->
      List.iter2 land_result to_ship results
    | _ ->
      (* Malformed batch reply: refetch the members one by one. *)
      List.iter solo to_ship
    | exception Source.Query_rejected _ ->
      (* No batch capability at this source. *)
      Obs_metrics.inc batch_fallbacks;
      List.iter solo to_ship
    | exception e ->
      (* The whole round trip failed (e.g. the source is offline):
         every member shares the outcome, as one call would have. *)
      List.iter
        (fun (key, _, _, _, _, _) -> Hashtbl.replace missing_envs key (Error e))
        to_ship));
  List.map
    (fun (key, access, _sql, _ckey, cached) ->
      match cached with
      | Some r -> (key, (try Ok (envs_of_sql_access access r) with e -> Error e), 1)
      | None -> (key, Hashtbl.find missing_envs key, 0))
    classified

(* Collect the plan's source accesses and issue them as overlapped
   rounds; the returned buffer (keyed by access key) then resolves
   scans without touching the wire.  View accesses recurse through the
   compiler and stay lazy. *)
and prefetch catalog ~opts ~view_lookup (compiled : Med_planner.compiled) =
  let fo = Med_catalog.fetch_options catalog in
  match fo.Fetch_sched.mode with
  | Fetch_sched.Sequential -> None
  | Fetch_sched.Gather ->
    let fetchable =
      List.filter_map
        (fun (_aid, access) ->
          match access with
          (* Views stay lazy; bind joins resolve after their driver, in
             [resolve_binds] — prefetching one here would ship the
             unbound fragment and defeat the optimizer's choice. *)
          | Med_planner.A_view _ | Med_planner.A_sql_bind _ -> None
          | a -> Some a)
        compiled.Med_planner.accesses
    in
    let is_rel_sql = function
      | Med_planner.A_sql { source_name; _ } -> (
        match Src_registry.find (Med_catalog.registry catalog) source_name with
        | Some src -> src.Source.kind = Source.Relational
        | None -> false)
      | _ -> false
    in
    (* SQL fragments for one relational source group into a batch;
       within a group, identical fragments collapse (counted as dedup
       hits alongside the scheduler's own key dedup). *)
    let groups : (string, (string * Med_planner.access) list ref) Hashtbl.t =
      Hashtbl.create 4
    in
    let dedup_hits = ref 0 in
    List.iter
      (fun access ->
        if is_rel_sql access then begin
          let source = Med_planner.access_target access in
          let key = Med_planner.access_key access in
          let cell =
            match Hashtbl.find_opt groups source with
            | Some c -> c
            | None ->
              let c = ref [] in
              Hashtbl.add groups source c;
              c
          in
          if List.mem_assoc key !cell then incr dedup_hits
          else cell := (key, access) :: !cell
        end)
      fetchable;
    if !dedup_hits > 0 then
      Obs_metrics.inc ~by:!dedup_hits (Obs_metrics.counter "fetch.dedup_hits");
    let individual_task access =
      let key = Med_planner.access_key access in
      {
        Fetch_sched.task_key = key;
        task_run =
          (fun () ->
            let st = Frag_cache.stats (Med_catalog.frag_cache catalog) in
            let h0 = st.Frag_cache.frag_hits in
            let r =
              try Ok (run_access catalog ~opts ~view_lookup access) with e -> Error e
            in
            [ (key, r, st.Frag_cache.frag_hits - h0) ]);
      }
    in
    let batch_task source members =
      {
        Fetch_sched.task_key =
          "batch|" ^ source ^ "|" ^ String.concat "\x00" (List.map fst members);
        task_run =
          (fun () ->
            try run_sql_batch catalog ~opts ~view_lookup source members
            with e -> List.map (fun (key, _) -> (key, Error e, 0)) members);
      }
    in
    (* One task per access, in plan order; each relational-SQL group is
       emitted once, at its first member's position. *)
    let emitted : (string, unit) Hashtbl.t = Hashtbl.create 4 in
    let tasks =
      List.filter_map
        (fun access ->
          if is_rel_sql access then begin
            let source = Med_planner.access_target access in
            if Hashtbl.mem emitted source then None
            else begin
              Hashtbl.add emitted source ();
              match List.rev !(Hashtbl.find groups source) with
              | [ (_, a) ] -> Some (individual_task a)
              | members -> Some (batch_task source members)
            end
          end
          else Some (individual_task access))
        fetchable
    in
    let outcomes = Fetch_sched.run ~fanout:fo.Fetch_sched.fanout tasks in
    let buffer : (string, prefetched) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (o : _ Fetch_sched.outcome) ->
        match o.Fetch_sched.result with
        | Ok entries ->
          List.iter
            (fun (key, pf_result, cache_hits) ->
              if not (Hashtbl.mem buffer key) then
                Hashtbl.replace buffer key
                  {
                    pf_result;
                    pf_info =
                      {
                        fi_round = o.Fetch_sched.round;
                        fi_shared = o.Fetch_sched.shared;
                        fi_cache_hits = cache_hits;
                      };
                  })
            entries
        | Error _ ->
          (* Tasks capture their own failures; an escape here means the
             access resolves live at pull time instead. *)
          ())
      outcomes;
    Some buffer

(* ------------------------------------------------------------------ *)
(* Bind-join resolution                                                *)
(* ------------------------------------------------------------------ *)

(* Resolve every bind-join access: fetch (or reuse) its driver, build
   the IN-list, ship the narrowed fragment, and land both results in
   the prefetch buffer so scans pull them without touching the wire.
   Runs under both fetch modes — sequential execution creates a buffer
   here just for the bound accesses and their drivers. *)
and resolve_binds catalog ~opts ~view_lookup (compiled : Med_planner.compiled)
    buffer =
  let binds =
    List.filter
      (fun (_, a) -> match a with Med_planner.A_sql_bind _ -> true | _ -> false)
      compiled.Med_planner.accesses
  in
  if binds = [] then buffer
  else begin
    let buf =
      match buffer with Some b -> b | None -> Hashtbl.create (List.length binds * 2)
    in
    let no_fetch = { fi_round = 0; fi_shared = false; fi_cache_hits = 0 } in
    let driver_result driver_aid =
      match List.assoc_opt driver_aid compiled.Med_planner.accesses with
      | None -> Error (Exec_error ("unknown bind driver " ^ driver_aid))
      | Some driver ->
        let key = Med_planner.access_key driver in
        (match Hashtbl.find_opt buf key with
        | Some p -> p.pf_result
        | None ->
          let r =
            try Ok (run_access catalog ~opts ~view_lookup driver)
            with e -> Error e
          in
          (* Land the driver too: its own scan reuses this fetch. *)
          Hashtbl.replace buf key { pf_result = r; pf_info = no_fetch };
          r)
    in
    List.iter
      (fun (_aid, access) ->
        match access with
        | Med_planner.A_sql_bind
            { source_name; export; fragment; pattern; bind_driver; bind_var;
              bind_col } ->
          let unbound () =
            run_access catalog ~opts ~view_lookup
              (Med_planner.A_sql { source_name; export; fragment; pattern })
          in
          let st = Frag_cache.stats (Med_catalog.frag_cache catalog) in
          let h0 = st.Frag_cache.frag_hits in
          let result =
            match driver_result bind_driver with
            | Error e ->
              (* Mirror the driver's failure: strict execution raises the
                 same error it would have, partial skips the same
                 source.  Shipping the unbound fragment instead would
                 waste the wire on rows the dead join can never keep. *)
              Error e
            | Ok driver_envs -> (
              match bind_key_values driver_envs bind_var with
              | [] ->
                (* The equi-join above has an empty build side: nothing
                   the bound fetch returns can survive it.  Availability
                   must still mirror the unbound scan, or strict/partial
                   outcomes would depend on the optimizer's plan
                   choice. *)
                let src =
                  Src_registry.find_exn (Med_catalog.registry catalog)
                    source_name
                in
                if
                  Src_retry.call_available (Med_catalog.retry catalog)
                    ~source:source_name src.Source.is_available
                then Ok []
                else Error (Source.Unavailable source_name)
              | keys when List.length keys > max_bind_keys ->
                (try Ok (unbound ()) with e -> Error e)
              | keys -> (
                let bound = bound_fragment fragment ~bind_col keys in
                let src =
                  Src_registry.find_exn (Med_catalog.registry catalog) source_name
                in
                try
                  match
                    frag_fetch catalog src
                      ~fragment:(frag_key_sql bound.Med_sqlgen.sql)
                      (Source.Q_sql bound.Med_sqlgen.sql_text)
                  with
                  | Source.R_rows (_, rows) -> Ok (envs_of_sql_rows fragment rows)
                  | Source.R_trees trees -> Ok (match_documents pattern trees)
                  | Source.R_batch _ -> Error (Exec_error "unexpected batch result")
                with
                | Source.Query_rejected _ -> (
                  (* The source cannot evaluate the IN-list: fall back to
                     the plain fragment (and its own capability ladder). *)
                  Obs_metrics.inc capability_fallbacks;
                  try Ok (unbound ()) with e -> Error e)
                | e -> Error e))
          in
          Hashtbl.replace buf
            (Med_planner.access_key access)
            {
              pf_result = result;
              pf_info = { no_fetch with fi_cache_hits = st.Frag_cache.frag_hits - h0 };
            }
        | _ -> ())
      binds;
    Some buf
  end

(* ------------------------------------------------------------------ *)
(* Plan execution                                                      *)
(* ------------------------------------------------------------------ *)

and source_fn_of catalog ~opts ~view_lookup ?buffer (compiled : Med_planner.compiled) :
    Alg_exec.source_fn =
  let find_access aid =
    match List.assoc_opt aid compiled.Med_planner.accesses with
    | None -> fail "internal: unknown access id %s" aid
    | Some access -> access
  in
  let buffer_entry access =
    match buffer with
    | None -> None
    | Some b -> Hashtbl.find_opt b (Med_planner.access_key access)
  in
  let resolve =
    Alg_exec.buffered
      (fun aid -> Option.map (fun p -> p.pf_result) (buffer_entry (find_access aid)))
      (fun aid _binding ->
        List.to_seq (run_access catalog ~opts ~view_lookup (find_access aid)))
  in
  fun access_id binding ->
    let access = find_access access_id in
    let target = access_target access in
    Obs_trace.with_span "mediator.access" (fun span ->
        Obs_span.set span "id" access_id;
        Obs_span.set span "target" target;
        Obs_span.set span "push" (access_push access);
        (match buffer_entry access with
        | Some p ->
          List.iter
            (fun (k, v) -> Obs_span.set span k v)
            (Obs_report.fetch_cells ~round:p.pf_info.fi_round
               ~shared:p.pf_info.fi_shared ~cache_hits:p.pf_info.fi_cache_hits)
        | None -> ());
        Obs_metrics.inc
          (Obs_metrics.counter (Printf.sprintf "source.%s.accesses" target));
        try
          let envs = List.of_seq (resolve access_id binding) in
          let n = List.length envs in
          Obs_span.set_int span "rows" n;
          Obs_metrics.inc ~by:n
            (Obs_metrics.counter (Printf.sprintf "source.%s.rows" target));
          (* The feedback loop: whatever this access shipped is the best
             cardinality estimate for its next compilation. *)
          Obs_feedback.record (Med_catalog.feedback catalog)
            (Med_planner.access_key access) n;
          (* An unfiltered single-table fetch doubles as a row-count
             observation for the statistics catalog (seeding tables no
             one has analyzed yet). *)
          (match access with
          | Med_planner.A_sql { source_name; export; fragment; _ }
            when fragment.Med_sqlgen.sql.Sql_ast.where = None
                 && fragment.Med_sqlgen.sql.Sql_ast.limit = None
                 && fragment.Med_sqlgen.sql.Sql_ast.group_by = []
                 && not fragment.Med_sqlgen.sql.Sql_ast.distinct ->
            Med_stats.observe_rows (Med_catalog.stats catalog)
              ~source:source_name ~export n
          | _ -> ());
          List.to_seq envs
        with Source.Unavailable name ->
          Obs_metrics.inc
            (Obs_metrics.counter (Printf.sprintf "source.%s.unavailable" target));
          raise (Alg_exec.Source_unavailable name))

(* Prefetch (under the catalog's fetch options), then hand back the
   scan resolver and a per-access fetch-info lookup for reporting. *)
and prepare catalog ~opts ~view_lookup compiled =
  let buffer = prefetch catalog ~opts ~view_lookup compiled in
  let buffer = resolve_binds catalog ~opts ~view_lookup compiled buffer in
  let info access =
    match buffer with
    | None -> None
    | Some b ->
      Option.map
        (fun p -> p.pf_info)
        (Hashtbl.find_opt b (Med_planner.access_key access))
  in
  (source_fn_of catalog ~opts ~view_lookup ?buffer compiled, info)

and exec catalog ~opts ~partial ~view_lookup (compiled : Med_planner.compiled) =
  (* The whole execution runs under one retry-budget context: nested
     view executions inherit the enclosing query's deadline, and the
     sources served stale (partial mode only) surface in the result. *)
  let (trees, envs, skipped), stale =
    Src_retry.with_query (Med_catalog.retry catalog) ~partial (fun () ->
        exec_body catalog ~opts ~partial ~view_lookup compiled)
  in
  { trees; bindings = envs; skipped_sources = skipped; stale_sources = stale }

and exec_body catalog ~opts ~partial ~view_lookup (compiled : Med_planner.compiled) =
  Obs_trace.with_span "query" (fun qspan ->
      let sources, _fetch_info = prepare catalog ~opts ~view_lookup compiled in
      let mode = Med_catalog.exec_mode catalog in
      (* Feedback/statistics/index-backed cardinalities, so the parallel
         engine pre-sizes its per-partition join tables from real
         estimates instead of the blind scan default. *)
      let cost_rows plan =
        let src aid =
          Med_planner.source_rows ~feedback:(Med_catalog.feedback catalog)
            ~stats:(Med_catalog.stats catalog) compiled aid
        in
        (Alg_cost.estimate ~source_rows:src plan).Alg_cost.rows
      in
      let envs, skipped =
        if partial then
          Alg_exec.run_partial_mode ~cost_rows mode sources compiled.Med_planner.plan
        else (Alg_exec.run_mode ~cost_rows mode sources compiled.Med_planner.plan, [])
      in
      if skipped <> [] then begin
        (* Partial-result degradation (section 3.4): the answer shipped,
           but not all sources contributed. *)
        Obs_metrics.inc (Obs_metrics.counter "mediator.partial.degraded");
        Obs_metrics.inc ~by:(List.length skipped)
          (Obs_metrics.counter "mediator.partial.skipped_sources");
        Obs_span.set qspan "skipped" (String.concat "," skipped)
      end;
      Obs_span.set_int qspan "rows" (List.length envs);
      (* Instantiate the CONSTRUCT template per binding.  Correlated
         subqueries re-enter through the direct resolver. *)
      let resolver = direct_resolver catalog in
      let trees =
        List.concat_map
          (fun env -> Xq_eval.instantiate resolver env compiled.Med_planner.construct)
          envs
      in
      (trees, envs, skipped))

let run_compiled ?(view_lookup = no_lookup) catalog compiled =
  exec catalog ~opts:Med_sqlgen.default_options ~partial:false ~view_lookup compiled

let run_compiled_partial ?(view_lookup = no_lookup) catalog compiled =
  exec catalog ~opts:Med_sqlgen.default_options ~partial:true ~view_lookup compiled

let run ?(opts = Med_sqlgen.default_options) ?(view_lookup = no_lookup) catalog q =
  (exec catalog ~opts ~partial:false ~view_lookup (Med_planner.compile ~opts catalog q)).trees

let run_text ?opts ?view_lookup catalog text =
  match Xq_parser.parse text with
  | Ok q -> run ?opts ?view_lookup catalog q
  | Error m -> fail "%s" m

let run_partial ?(opts = Med_sqlgen.default_options) ?(view_lookup = no_lookup) catalog q =
  let r =
    exec catalog ~opts ~partial:true ~view_lookup (Med_planner.compile ~opts catalog q)
  in
  (r.trees, r.skipped_sources)

let explain_text catalog text =
  match Xq_parser.parse text with
  | Ok q -> Med_planner.explain (Med_planner.compile catalog q)
  | Error m -> fail "%s" m

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE                                                     *)
(* ------------------------------------------------------------------ *)

type access_stat = {
  stat_id : string;
  stat_access : Med_planner.access;
  stat_est_rows : float;
  stat_calls : int;
  stat_rows : int;
  stat_ms : float;
  stat_fetch : fetch_info option;
  stat_sem : Sem_cache.outcome option;
  stat_idx : int * int * int;
  stat_retry : int * int * int;
}

type analysis = {
  analyzed_result : result;
  analyzed_compiled : Med_planner.compiled;
  analyzed_source_rows : string -> float;
  analyzed_actual : Alg_plan.t -> (int * float) option;
  analyzed_batch : Alg_plan.t -> string list;
      (* batch-engine cells per node; [] everywhere in tuple mode *)
  analyzed_mode : Alg_batch.mode;
  analyzed_accesses : access_stat list;
  analyzed_wall_ms : float;
  analyzed_virtual_ms : float;
}

let run_analyzed ?(opts = Med_sqlgen.default_options) ?(view_lookup = no_lookup)
    catalog q =
  let fb = Med_catalog.feedback catalog in
  let compiled = Med_planner.compile ~opts ~feedback:fb catalog q in
  (* Snapshot the estimates BEFORE executing: the whole point of the
     report is comparing what the planner believed going in against what
     the run measured (the run itself updates the feedback store). *)
  let est_snapshot =
    List.map
      (fun (aid, _) ->
        ( aid,
          Med_planner.source_rows ~feedback:fb
            ~stats:(Med_catalog.stats catalog) compiled aid ))
      compiled.Med_planner.accesses
  in
  let source_rows aid =
    match List.assoc_opt aid est_snapshot with
    | Some rows -> rows
    | None -> Alg_cost.default_scan_rows
  in
  (* Wrap the source function to tally per-access calls / rows / time
     (the per-source-fragment half of the report; the operator half comes
     from the instrumented executor). *)
  let tally :
      ( string,
        int ref * int ref * float ref * (int * int * int) ref * (int * int * int) ref )
      Hashtbl.t =
    Hashtbl.create 8
  in
  let t0 = Obs_clock.wall_ms () in
  let v0 = Obs_clock.virtual_ms () in
  let analyze () =
  let base, fetch_info = prepare catalog ~opts ~view_lookup compiled in
  let sources aid binding =
    let calls, rows, ms, idx, retry =
      match Hashtbl.find_opt tally aid with
      | Some cell -> cell
      | None ->
        let cell = (ref 0, ref 0, ref 0.0, ref (0, 0, 0), ref (0, 0, 0)) in
        Hashtbl.add tally aid cell;
        cell
    in
    let t0 = Obs_clock.wall_ms () in
    (* Index-outcome deltas around the fetch attribute probe/guide/miss
       counts to the access that triggered them (fetches run on the
       caller's domain, so the deltas are this access's alone); retry
       counter deltas attribute retries/give-ups/fast-fails the same
       way. *)
    let g0, p0, m0 = Idx_manager.counters () in
    let r0, u0, f0 = Src_retry.counters () in
    let envs = List.of_seq (base aid binding) in
    let g1, p1, m1 = Idx_manager.counters () in
    let r1, u1, f1 = Src_retry.counters () in
    incr calls;
    rows := !rows + List.length envs;
    ms := !ms +. (Obs_clock.wall_ms () -. t0);
    (let p, g, m = !idx in
     idx := (p + p1 - p0, g + g1 - g0, m + m1 - m0));
    (let r, u, f = !retry in
     retry := (r + r1 - r0, u + u1 - u0, f + f1 - f0));
    List.to_seq envs
  in
  let mode = Med_catalog.exec_mode catalog in
  let envs, actual, batch_cells =
    Obs_trace.with_span "query" (fun qspan ->
        match mode with
        | Alg_batch.Tuple ->
          let envs, op_root =
            Alg_exec.run_instrumented sources compiled.Med_planner.plan
          in
          Obs_span.set_int qspan "rows" (List.length envs);
          (envs, Alg_exec.actual_of_stats op_root, Alg_exec.idx_cells_of_stats op_root)
        | Alg_batch.Batch { chunk } ->
          let envs, bstats =
            Alg_exec.run_batched ~chunk sources compiled.Med_planner.plan
          in
          Obs_span.set_int qspan "rows" (List.length envs);
          if Obs_trace.enabled () then
            Obs_trace.emit (Alg_batch.span_of_stats bstats);
          (envs, Alg_batch.actual_of_stats bstats, Alg_batch.cells_of_stats bstats)
        | Alg_batch.Parallel { domains; chunk } ->
          let cost_rows plan =
            (Alg_cost.estimate ~source_rows plan).Alg_cost.rows
          in
          let envs, pstats =
            Alg_exec.run_parallel ~domains ~chunk ~cost_rows sources
              compiled.Med_planner.plan
          in
          Obs_span.set_int qspan "rows" (List.length envs);
          if Obs_trace.enabled () then
            Obs_trace.emit (Alg_par.span_of_stats pstats);
          (envs, Alg_par.actual_of_stats pstats, Alg_par.cells_of_stats pstats))
  in
  (envs, actual, batch_cells, fetch_info)
  in
  (* Same retry-budget context as [exec]: the analyzed run is strict,
     so no stale serving — but transient faults retry identically. *)
  let (envs, actual, batch_cells, fetch_info), _stale =
    Src_retry.with_query (Med_catalog.retry catalog) ~partial:false analyze
  in
  let wall_ms = Obs_clock.wall_ms () -. t0 in
  let virtual_ms = Obs_clock.virtual_ms () -. v0 in
  let resolver = direct_resolver catalog in
  let trees =
    List.concat_map
      (fun env -> Xq_eval.instantiate resolver env compiled.Med_planner.construct)
      envs
  in
  let accesses =
    List.map
      (fun (aid, access) ->
        let calls, rows, ms, idx, retry =
          match Hashtbl.find_opt tally aid with
          | Some (c, r, m, i, rt) -> (!c, !r, !m, !i, !rt)
          | None -> (0, 0, 0.0, (0, 0, 0), (0, 0, 0))
        in
        {
          stat_id = aid;
          stat_access = access;
          stat_est_rows = source_rows aid;
          stat_calls = calls;
          stat_rows = rows;
          stat_ms = ms;
          stat_idx = idx;
          stat_retry = retry;
          stat_fetch = fetch_info access;
          stat_sem =
            (let sem = Med_catalog.sem_cache catalog in
             match access with
             | Med_planner.A_sql { fragment; _ } ->
               Sem_cache.last_outcome sem ~sql:fragment.Med_sqlgen.sql_text
             | Med_planner.A_sql_join { fragment; _ } ->
               Sem_cache.last_outcome sem ~sql:fragment.Med_sqlgen.jf_sql_text
             | _ -> None);
        })
      compiled.Med_planner.accesses
  in
  {
    analyzed_result =
      { trees; bindings = envs; skipped_sources = []; stale_sources = [] };
    analyzed_compiled = compiled;
    analyzed_source_rows = source_rows;
    analyzed_actual = actual;
    analyzed_batch = batch_cells;
    analyzed_mode = Med_catalog.exec_mode catalog;
    analyzed_accesses = accesses;
    analyzed_wall_ms = wall_ms;
    analyzed_virtual_ms = virtual_ms;
  }

let run_analyzed_text ?opts ?view_lookup catalog text =
  match Xq_parser.parse text with
  | Ok q -> run_analyzed ?opts ?view_lookup catalog q
  | Error m -> fail "%s" m

let analysis_to_string a =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Alg_cost.explain_analyze ~extra:a.analyzed_batch
       ~source_rows:a.analyzed_source_rows ~actual:a.analyzed_actual
       a.analyzed_compiled.Med_planner.plan);
  (match a.analyzed_compiled.Med_planner.opt_info with
  | None -> ()
  | Some oi ->
    Buffer.add_string buf (Med_planner.opt_info_to_string oi);
    Buffer.add_char buf '\n');
  Buffer.add_string buf "accesses:\n";
  List.iter
    (fun st ->
      let fetch =
        match st.stat_fetch with
        | None -> []
        | Some fi ->
          Obs_report.fetch_cells ~round:fi.fi_round ~shared:fi.fi_shared
            ~cache_hits:fi.fi_cache_hits
      in
      let sem =
        match st.stat_sem with
        | None -> []
        | Some o -> Sem_cache.outcome_cells o
      in
      let idx =
        let p, g, m = st.stat_idx in
        if p + g = 0 then []
        else [ ("idx", Printf.sprintf "probe:%d/guide:%d/miss:%d" p g m) ]
      in
      (* Retry cells appear only when something actually happened, like
         the idx cell — fault-free reports stay byte-identical. *)
      let retry =
        let r, u, f = st.stat_retry in
        (if r > 0 then [ Obs_report.int_cell "retries" r ] else [])
        @ (if u > 0 then [ Obs_report.int_cell "gave_up" u ] else [])
        @ if f > 0 then [ ("breaker", "open") ] else []
      in
      Buffer.add_string buf
        (Med_planner.access_to_string (st.stat_id, st.stat_access));
      Buffer.add_string buf
        (Printf.sprintf "  [%s]\n"
           (Obs_report.cells
              ([
                 ("est", Printf.sprintf "%.0f" st.stat_est_rows);
                 Obs_report.int_cell "calls" st.stat_calls;
                 Obs_report.int_cell "rows" st.stat_rows;
                 ("time", Printf.sprintf "%.2fms" st.stat_ms);
               ]
              @ fetch @ sem @ idx @ retry)))
      )
    a.analyzed_accesses;
  let exec_note =
    match a.analyzed_mode with
    | Alg_batch.Tuple -> ""
    | Alg_batch.Batch { chunk } -> Printf.sprintf " [batch chunk=%d]" chunk
    | Alg_batch.Parallel { domains; chunk } ->
      Printf.sprintf " [parallel domains=%d chunk=%d]" domains chunk
  in
  Buffer.add_string buf
    (Printf.sprintf "-- %d rows in %.2fms (virtual %.2fms)%s\n"
       (List.length a.analyzed_result.bindings)
       a.analyzed_wall_ms a.analyzed_virtual_ms exec_note);
  Buffer.contents buf
