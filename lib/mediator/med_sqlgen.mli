(** The SQL half of the query compiler (section 2.1: "if an RDB is being
    queried, then the compiler generates SQL").

    Given an XML-QL clause whose source is a relational table export, we
    try to compile the pattern plus any pushable conditions into a single
    SELECT: bound leaf children become projected columns, literal
    children and pushable conditions become the WHERE clause.  Patterns
    that exceed the relational shape (nested structure, content
    bindings, wildcard attribute use) are rejected and the planner falls
    back to client-side matching over the table's XML view. *)

type fragment = {
  sql : Sql_ast.select;
  sql_text : string;                 (** what is shipped to the source *)
  binds : (string * string) list;    (** pattern variable -> output column *)
  row_var : string option;           (** ELEMENT_AS variable, rebuilt client-side *)
  pushed_conditions : Alg_expr.t list;  (** conditions folded into WHERE *)
}

type options = {
  pushdown_select : bool;   (** put predicates in the fragment's WHERE *)
  pushdown_project : bool;  (** prune unused columns *)
  pushdown_join : bool;
      (** compile clause groups over one join-capable relational source
          into a single SQL join fragment *)
}

val default_options : options
val no_pushdown : options
val no_join_pushdown : options
(** Selection/projection pushdown without the join grouping — the
    ablation point of experiment E3b. *)

val compile_clause :
  options ->
  Dschema.relational ->
  Xq_ast.pattern ->
  Alg_expr.t list ->
  fragment option
(** [compile_clause opts schema pattern candidate_conditions] returns the
    fragment and records which of the candidate conditions it absorbed;
    [None] when the pattern is not row-shaped over this schema. *)

val translate_condition :
  (string * string) list -> Alg_expr.t -> Sql_ast.expr option
(** Translate an algebra condition to SQL over the variable/column
    binding; [None] when it uses tree accessors or functions the SQL
    subset lacks. *)

(** {1 Join fragments} *)

type join_fragment = {
  jf_sql : Sql_ast.select;  (** AST of the shipped SELECT, for the
                                semantic cache's containment matching *)
  jf_sql_text : string;
  jf_binds : (string * string) list;
      (** pattern variable -> output column (generated aliases) *)
  jf_pushed_conditions : Alg_expr.t list;
}

val compile_join_clauses :
  options ->
  (Dschema.relational * Xq_ast.pattern) list ->
  Alg_expr.t list ->
  join_fragment option
(** Compile several row-shaped clauses over tables of {e one} relational
    source into a single SELECT with JOINs on their shared variables.
    Requirements: at least two clauses, every pattern row-shaped with no
    [ELEMENT_AS], and each adjacent clause connected to the earlier ones
    by at least one shared variable (no cross products are pushed).
    NULL join keys do not join (SQL semantics — matching the engine's
    hash join). *)
