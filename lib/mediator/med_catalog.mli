(** The metadata server (section 2.1): sources plus mediated schemas.

    A {e mediated schema} is a named XML-QL view over source exports
    and/or other mediated schemas (global-as-view).  Views compose
    hierarchically — "we can define successive schemas as views over
    other underlying schemas" — and the catalog enforces acyclicity so
    expansion terminates. *)

type t

type view = {
  view_name : string;
  definitions : Xq_ast.query list;
      (** one or more queries; results concatenate (bag UNION) *)
  description : string;
}

exception Catalog_error of string

val create :
  ?frag_ttl_ms:float -> ?frag_capacity:int -> ?sem_budget_bytes:int -> unit -> t
(** [frag_capacity] (default 0: disabled) sizes the fragment-level
    result cache consulted below the network simulator; [frag_ttl_ms]
    ages its entries on the virtual clock.  [sem_budget_bytes]
    (default 0: disabled) budgets the semantic fragment cache that
    answers contained/overlapping predicates by rewriting. *)

val registry : t -> Src_registry.t

(** {1 Mutation listeners} *)

val on_mutation : t -> (string -> unit) -> unit
(** Subscribe to catalog changes: the callback fires with the affected
    source or view name after every {!register_source},
    {!define_view}/{!define_union_view}, {!drop_view}, and every
    explicit {!notify_invalidation}.  Consumers (the server's plan
    cache) use it to evict artifacts compiled against stale metadata. *)

val notify_invalidation : t -> string -> unit
(** Tell subscribers that cached artifacts derived from [name] are
    stale — the hook the facade's [invalidate_source] fires after an
    out-of-band source update. *)

val feedback : t -> Obs_feedback.t
(** The catalog's observed-cardinality store: every execution records
    how many rows each access produced, and cost-model consumers
    ({!Med_planner.source_rows}, EXPLAIN ANALYZE) read estimates back
    from it.  Scoped to the catalog so independent engines (and tests)
    never share observations. *)

(** {1 Statistics and optimizer mode} *)

val stats : t -> Med_stats.t
(** The catalog's per-source statistics: row counts, distincts and
    histograms feeding the cost-based optimizer.  Scoped to the catalog
    like {!feedback}. *)

val stats_epoch : t -> int
(** Current statistics epoch ({!Med_stats.epoch}); plan caches record
    it so plans optimized against stale statistics re-optimize. *)

val analyze : t -> (string * int) list
(** Collect exact statistics for every relational export of every
    registered source (the repl's bare [\analyze]).  Bumps the
    statistics epoch; returns [(table, rows)] per export analyzed. *)

val optimizer : t -> Med_optimize.mode
(** Join-order strategy used by {!Med_planner.compile} against this
    catalog: the greedy walk (default) or DPsize enumeration. *)

val set_optimizer : t -> Med_optimize.mode -> unit

(** {1 Retry policy} *)

val retry : t -> Src_retry.t
(** The catalog's retry/breaker engine ({!Src_retry}): every source
    call the executor makes against this catalog routes through it.
    Scoped to the catalog like {!feedback}, so independent engines
    never share breaker state. *)

val retry_policy : t -> Src_retry.policy
(** Shorthand for [Src_retry.policy (retry t)]. *)

val set_retry_policy : t -> Src_retry.policy -> unit
(** Install a retry policy, resetting breaker state. *)

(** {1 Fetch scheduling and fragment caching} *)

val frag_cache : t -> Frag_cache.t
(** The catalog's fragment-level result cache (LRU+TTL, below
    {!Mat_cache}'s whole-query cache).  Capacity 0 — the default —
    means every access goes to the wire. *)

val configure_frag_cache : t -> ?ttl_ms:float -> capacity:int -> unit -> unit
(** Replace the fragment cache (dropping its contents). *)

val sem_cache : t -> Sem_cache.t
(** The catalog's semantic fragment cache ({!Sem_cache}): extents
    cached with their defining predicates, probed by containment in
    {!Med_exec}'s SQL fetch path.  Budget 0 — the default — disables
    it.  Catalog mutations ({!notify_invalidation}) drop affected
    extents before plan-cache subscribers run. *)

val configure_sem_cache : t -> budget_bytes:int -> unit -> unit
(** Replace the semantic cache (dropping its contents). *)

val fetch_options : t -> Fetch_sched.options
(** How executions against this catalog issue their source accesses:
    sequential (the default) or scatter-gather rounds. *)

val set_fetch_options : t -> Fetch_sched.options -> unit

val exec_mode : t -> Alg_batch.mode
(** How executions against this catalog evaluate their plans:
    tuple-at-a-time (the default), batch-at-a-time with a configured
    chunk size, or morsel-driven parallel with a configured domain
    count and morsel size. *)

val set_exec_mode : t -> Alg_batch.mode -> unit

(** {1 Sources} *)

val register_source : t -> Source.t -> unit
val source_names : t -> string list

(** {1 Mediated schemas} *)

val define_view : t -> ?description:string -> string -> Xq_ast.query -> unit
(** @raise Catalog_error when the name collides, a clause references an
    unknown source/view, or the definition would create a cycle. *)

val define_union_view :
  t -> ?description:string -> string -> Xq_ast.query list -> unit
(** A mediated schema integrating several queries (typically one per
    source) into one shape; answers concatenate in query order.
    @raise Catalog_error on an empty list or any {!define_view} error. *)

val define_view_text : t -> ?description:string -> string -> string -> unit
(** Parse the XML-QL text first — [UNION]-separated queries define a
    union view.  @raise Catalog_error on syntax errors. *)

val set_description : t -> string -> string -> unit
(** @raise Catalog_error for unknown views. *)

val drop_view : t -> string -> unit
(** @raise Catalog_error when other views depend on it. *)

val find_view : t -> string -> view option
val view_names : t -> string list

val view_depth : t -> string -> int
(** 1 for a view over base sources only; 1 + max child depth otherwise. *)

val is_known_name : t -> string -> bool
(** Is the name resolvable as a view or a source export? *)

val dependencies : t -> string -> string list
(** Direct sources/views a view reads from. *)
