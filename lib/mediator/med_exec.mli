(** Execution of compiled queries against the catalog's live sources.

    Two modes, per section 3.4: {e strict} (any offline source aborts
    the query) and {e partial} (offline sources contribute nothing and
    the answer is annotated with the skipped source names, so callers can
    tell the user "the results were not complete"). *)

type result = {
  trees : Dtree.t list;          (** constructed results, in order *)
  bindings : Alg_env.t list;     (** the variable bindings behind them *)
  skipped_sources : string list; (** non-empty only in partial mode *)
  stale_sources : string list;
      (** sources answered from stale fragment-cache extents because
          their retry budget was exhausted — non-empty only in partial
          mode with {!Src_retry.policy.serve_stale} on *)
}

exception Exec_error of string

val compile :
  ?opts:Med_sqlgen.options ->
  ?feedback:Obs_feedback.t ->
  Med_catalog.t ->
  Xq_ast.query ->
  Med_planner.compiled

type view_lookup = string -> Dtree.t list option
(** Hook consulted before a mediated schema is recomputed: when it
    returns [Some trees] (a materialized local copy, section 3.3), the
    executor matches against the copy instead of going to the sources. *)

val run_compiled :
  ?view_lookup:view_lookup -> Med_catalog.t -> Med_planner.compiled -> result
(** Strict mode.  @raise Source.Unavailable when a source is offline. *)

val run_compiled_partial :
  ?view_lookup:view_lookup -> Med_catalog.t -> Med_planner.compiled -> result

val run :
  ?opts:Med_sqlgen.options ->
  ?view_lookup:view_lookup ->
  Med_catalog.t ->
  Xq_ast.query ->
  Dtree.t list
(** Compile-and-run, strict. *)

val run_text :
  ?opts:Med_sqlgen.options ->
  ?view_lookup:view_lookup ->
  Med_catalog.t ->
  string ->
  Dtree.t list
(** Parse, compile and run.  @raise Exec_error on syntax errors. *)

val run_partial :
  ?opts:Med_sqlgen.options ->
  ?view_lookup:view_lookup ->
  Med_catalog.t ->
  Xq_ast.query ->
  Dtree.t list * string list

val explain_text : Med_catalog.t -> string -> string

(** {1 EXPLAIN ANALYZE}

    Instrumented execution: the query runs for real (strict mode),
    counting rows and inclusive wall time per plan operator and per
    source fragment, and recording observed cardinalities into the
    catalog's feedback store for the next compilation. *)

type fetch_info = {
  fi_round : int;      (** scatter-gather round the fetch rode in *)
  fi_shared : bool;    (** served by another access's execution (dedup) *)
  fi_cache_hits : int; (** fragment-cache hits while fetching it *)
}
(** How an access was fetched when the catalog's {!Fetch_sched.options}
    select gather mode; surfaces in span attributes and EXPLAIN
    ANALYZE. *)

type access_stat = {
  stat_id : string;                  (** Scan-leaf access id *)
  stat_access : Med_planner.access;
  stat_est_rows : float;             (** planner's estimate {e before} the run *)
  stat_calls : int;                  (** times the executor opened the access *)
  stat_rows : int;                   (** rows shipped, total over calls *)
  stat_ms : float;                   (** wall time inside the access *)
  stat_fetch : fetch_info option;    (** [None] under sequential fetching *)
  stat_sem : Sem_cache.outcome option;
      (** semantic-cache verdict for the access's fragment this run
          ([None] when the cache is off or the access is ineligible) *)
  stat_idx : int * int * int;
      (** (value probes, guide probes, walker fallbacks) the index
          subsystem answered inside this access's fetches — non-zero
          only for path accesses against indexed XML stores *)
  stat_retry : int * int * int;
      (** (retries, give-ups, breaker fast-fails) the retry engine spent
          inside this access's fetches — all zero with the default inert
          policy *)
}

type analysis = {
  analyzed_result : result;
  analyzed_compiled : Med_planner.compiled;
  analyzed_source_rows : string -> float;
      (** the pre-run estimate snapshot, keyed by access id *)
  analyzed_actual : Alg_plan.t -> (int * float) option;
      (** per-operator (rows, inclusive ms), by physical node identity *)
  analyzed_batch : Alg_plan.t -> string list;
      (** the batch engine's per-operator cells (batches, rows/batch,
          fill ratio); [[]] everywhere when the run was tuple-at-a-time *)
  analyzed_mode : Alg_batch.mode;
      (** the engine that executed the analyzed run *)
  analyzed_accesses : access_stat list;
  analyzed_wall_ms : float;
  analyzed_virtual_ms : float;
      (** simulated network time the run consumed (overlap-aware) *)
}

val run_analyzed :
  ?opts:Med_sqlgen.options ->
  ?view_lookup:view_lookup ->
  Med_catalog.t ->
  Xq_ast.query ->
  analysis
(** Compiles {e with} the catalog's feedback store (so a repeated query
    plans with observed cardinalities), snapshots the estimates, then
    executes instrumented.  @raise Source.Unavailable as {!run}. *)

val run_analyzed_text :
  ?opts:Med_sqlgen.options ->
  ?view_lookup:view_lookup ->
  Med_catalog.t ->
  string ->
  analysis
(** @raise Exec_error on syntax errors. *)

val analysis_to_string : analysis -> string
(** The EXPLAIN ANALYZE report: the operator tree with estimated vs
    actual rows and per-operator time, the access table with per-fragment
    estimates, calls, rows and time, and a total footer. *)

val direct_resolver : Med_catalog.t -> Xq_eval.resolver
(** The reference-semantics resolver: source exports serve their XML
    view; mediated schemas evaluate their definitions recursively via
    {!Xq_eval} (no compilation).  Used as the oracle in tests and for
    correlated subqueries inside templates. *)
