(* DPsize join-order enumeration.

   The classic dynamic program over connected subsets: best plans for
   all subsets of size 1 (the leaf accesses), then for each size the
   best combination of two smaller disjoint subsets, preferring
   connected splits (cartesian products only when the query graph
   forces them).  Bushy trees fall out naturally — a split may put
   several relations on each side.

   Costs are in virtual milliseconds, the same unit the network
   simulator charges: a leaf pays its source's round-trip latency plus
   per-tuple transfer for its estimated rows; a mediator-side hash join
   pays a small per-row charge on both inputs; a cartesian nested loop
   pays per row of the product.  The enumeration is exact but
   exponential, so it caps at [max_relations] and the caller falls back
   to the greedy walk beyond that. *)

type mode =
  | Greedy
  | Dp of { max_relations : int }

let default_max_relations = 10

let dp = Dp { max_relations = default_max_relations }

let mode_to_string = function
  | Greedy -> "greedy"
  | Dp { max_relations } ->
    if max_relations = default_max_relations then "dp"
    else Printf.sprintf "dp:%d" max_relations

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "greedy" -> Some Greedy
  | "dp" -> Some dp
  | s -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "dp" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some n when n >= 2 -> Some (Dp { max_relations = n })
      | _ -> None)
    | _ -> None)

type rel = {
  r_id : string;        (* access id, for display *)
  r_rows : float;       (* estimated rows shipped by this access *)
  r_latency_ms : float; (* source round-trip latency *)
  r_per_tuple_ms : float;
}

type tree =
  | Leaf of int
  | Join of tree * tree

type plan = {
  p_tree : tree;
  p_rows : float;
  p_cost : float;
}

(* Mediator-side cost of touching one row (hash insert / probe); far
   below the simulated per-tuple network charge, so transfer dominates
   exactly as it does at execution time. *)
let local_row_ms = 0.001

let leaves tree =
  let rec go acc = function
    | Leaf i -> i :: acc
    | Join (l, r) -> go (go acc l) r
  in
  List.rev (go [] tree)

let to_string rels tree =
  let rec go = function
    | Leaf i -> rels.(i).r_id
    | Join (l, r) -> Printf.sprintf "(%s ⋈ %s)" (go l) (go r)
  in
  go tree

let popcount mask =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 mask

let enumerate ?(max_relations = default_max_relations) ~connected ~join_selectivity
    rels =
  let n = Array.length rels in
  if n < 2 || n > max_relations || n > Sys.int_size - 2 then None
  else begin
    let full = (1 lsl n) - 1 in
    let members mask =
      List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id)
    in
    (* Pairwise predicates are consulted O(3^n) times; memoize them. *)
    let edge = Array.init n (fun i -> Array.init n (fun j -> i <> j && connected i j)) in
    let sel = Array.init n (fun i -> Array.init n (fun j -> join_selectivity i j)) in
    let cut_connected m1 m2 =
      List.exists (fun i -> List.exists (fun j -> edge.(i).(j)) (members m2)) (members m1)
    in
    let cut_selectivity m1 m2 =
      List.fold_left
        (fun acc i ->
          List.fold_left
            (fun acc j -> if edge.(i).(j) then acc *. sel.(i).(j) else acc)
            acc (members m2))
        1.0 (members m1)
    in
    let best : plan option array = Array.make (full + 1) None in
    for i = 0 to n - 1 do
      let r = rels.(i) in
      best.(1 lsl i) <-
        Some
          {
            p_tree = Leaf i;
            p_rows = max 1.0 r.r_rows;
            p_cost = r.r_latency_ms +. (max 1.0 r.r_rows *. r.r_per_tuple_ms);
          }
    done;
    for size = 2 to n do
      for mask = 1 to full do
        if popcount mask = size then begin
          (* Does any split of [mask] keep both halves joined by an
             edge?  If so, cartesian splits are not considered. *)
          let has_connected_split =
            let rec probe sub =
              if sub = 0 then false
              else
                let rest = mask lxor sub in
                if rest <> 0 && best.(sub) <> None && best.(rest) <> None
                   && cut_connected sub rest
                then true
                else probe ((sub - 1) land mask)
            in
            probe ((mask - 1) land mask)
          in
          let consider sub =
            let rest = mask lxor sub in
            if rest = 0 then ()
            else
              match (best.(sub), best.(rest)) with
              | Some l, Some r ->
                let joined = cut_connected sub rest in
                if joined || not has_connected_split then begin
                  let rows, cost =
                    if joined then
                      ( max 1.0 (l.p_rows *. r.p_rows *. cut_selectivity sub rest),
                        l.p_cost +. r.p_cost
                        +. ((l.p_rows +. r.p_rows) *. local_row_ms) )
                    else
                      ( max 1.0 (l.p_rows *. r.p_rows),
                        l.p_cost +. r.p_cost
                        +. (l.p_rows *. r.p_rows *. local_row_ms) )
                  in
                  let candidate =
                    { p_tree = Join (l.p_tree, r.p_tree); p_rows = rows;
                      p_cost = cost }
                  in
                  match best.(mask) with
                  | Some b when b.p_cost <= candidate.p_cost -> ()
                  | _ -> best.(mask) <- Some candidate
                end
              | _ -> ()
          in
          let rec splits sub =
            if sub <> 0 then begin
              consider sub;
              splits ((sub - 1) land mask)
            end
          in
          splits ((mask - 1) land mask)
        end
      done
    done;
    best.(full)
  end
