(** The path half of the query compiler: pushing pattern preselection
    into XML stores that declare the [can_path] capability.

    From a clause pattern we derive a path whose matches are a
    {e superset} of the elements the pattern matches —
    [descendant-or-self::tag] with necessary-condition predicates from
    literal attributes, attribute presence, child-tag existence and
    literal child text.  The engine then runs full pattern matching only
    on the returned candidates, so far fewer tree nodes cross the
    simulated network.

    Soundness rule: every derived predicate must be {e implied} by the
    pattern (never narrower), so preselection can only drop guaranteed
    non-matches. *)

val compile_pattern : Xq_ast.pattern -> Xml_path.t option
(** [None] when no useful narrowing exists (wildcard tag). *)
