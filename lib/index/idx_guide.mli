(** Structural summary (DataGuide) over a [Dtree.t] forest.

    One pass over the forest assigns every element node a stable
    preorder id (atoms are skipped, mirroring [Xml_cursor], which walks
    element children only) and groups the ids by their distinct
    root-to-node label path.  Sorting ids therefore reproduces document
    order, and because every node lives under exactly one label path the
    id sets have set semantics by construction — a probe can never
    return the same node twice, no matter how many step alignments of a
    [//a//b]-style pattern reach it. *)

type t

(** Build the guide for a forest.  Roots keep their list order; ids are
    dense over the whole forest, root by root, preorder within each. *)
val build : Dtree.t list -> t

(** Number of element nodes indexed. *)
val node_count : t -> int

(** Number of distinct label paths. *)
val path_count : t -> int

(** Approximate heap footprint in bytes (ids + path strings + node
    pointers), for the manager's byte accounting. *)
val bytes : t -> int

(** The node with the given id. *)
val node : t -> int -> Dtree.t

(** [root_range t k] is the dense id interval [(lo, hi))] covering the
    [k]-th root's subtree. *)
val root_range : t -> int -> int * int

(** Ids whose label path matches the supported pattern, restricted to
    one root's subtree, ascending (= document order).  Returns [None]
    when the path uses an axis, test, or predicate placement the guide
    cannot answer exactly — callers must fall back to the walker. *)
val probe : t -> root:int -> Xml_path.t -> int list option

(** [path_key t id] is the label path of node [id], joined with ['/'].
    Used as the value-index key space. *)
val path_key : t -> int -> string

(** Ids under a label-path key within one root, ascending. *)
val ids_of_key : t -> root:int -> string -> int list

(** Ids under a label-path key across the whole forest, ascending. *)
val all_ids_of_key : t -> string -> int list

(** Exact number of nodes (across all roots) whose label path matches
    the pattern, before final-step predicates; [None] if unsupported.
    This is the index-backed cardinality fed to the optimizer. *)
val count : t -> Xml_path.t -> int option

(** Distinct label-path keys matched by the pattern (root-independent),
    or [None] if unsupported.  The value index is keyed per path, so a
    value probe intersects these keys' posting lists. *)
val matching_keys : t -> Xml_path.t -> string list option

(** Whether a path is answerable exactly from a guide: only
    child/descendant/descendant-or-self axes, name or wildcard tests,
    and position-free predicates on the final step. *)
val supported : Xml_path.t -> bool
