(* Per-forest index registry.

   Concurrency contract: Navigate runs inside the parallel engine on
   worker domains, so probes must be safe without the caller holding any
   lock.  The registry is published as an immutable snapshot behind an
   [Atomic]; guides and value indexes are immutable once built; entry
   mutation (lazy builds) happens under the entry's mutex with a
   double-check, and statistics are [Atomic.t] counters mirrored into
   [Obs_metrics] only by [publish_metrics] on the main domain. *)

type mode = Off | Auto | Eager

let mode_of_string = function
  | "off" -> Ok Off
  | "auto" -> Ok Auto
  | "eager" -> Ok Eager
  | s -> Error (Printf.sprintf "unknown index mode %S (expected auto, off or eager)" s)

let mode_to_string = function
  | Off -> "off"
  | Auto -> "auto"
  | Eager -> "eager"

type entry = {
  e_name : string;
  e_roots : Dtree.t array;
  e_root_labels : (string, unit) Hashtbl.t; (* immutable after creation *)
  e_lock : Mutex.t;
  e_hint : int Atomic.t;                    (* last matched root index *)
  mutable e_guide : Idx_guide.t option;
  (* (label-path key, kind string) -> built value index; read and
     written only under [e_lock]. *)
  e_values : (string * string, Idx_value.t) Hashtbl.t;
  mutable e_value_bytes : int;
}

type state = {
  by_name : (string, entry) Hashtbl.t; (* under [lock] only *)
  mutable snapshot : entry array;      (* mirrored into [snap] *)
}

let lock = Mutex.create ()
let state = { by_name = Hashtbl.create 8; snapshot = [||] }
let snap : entry array Atomic.t = Atomic.make [||]
let hint_entry = Atomic.make (-1)

let mode_a = Atomic.make Auto
let epoch_a = Atomic.make 0

let c_guide_hits = Atomic.make 0
let c_value_hits = Atomic.make 0
let c_misses = Atomic.make 0
let c_builds = Atomic.make 0
let c_invalidations = Atomic.make 0

let tick c = Atomic.incr c
let bump_epoch () = Atomic.incr epoch_a

let epoch () = Atomic.get epoch_a
let mode () = Atomic.get mode_a

let set_mode m =
  if Atomic.get mode_a <> m then begin
    Atomic.set mode_a m;
    bump_epoch ()
  end

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let republish () =
  let arr = Hashtbl.fold (fun _ e acc -> e :: acc) state.by_name [] in
  let arr = Array.of_list (List.sort (fun a b -> String.compare a.e_name b.e_name) arr) in
  state.snapshot <- arr;
  Atomic.set snap arr

(* ------------------------------------------------------------------ *)
(* Building                                                            *)
(* ------------------------------------------------------------------ *)

let build_guide e =
  (* Double-checked under the entry lock so concurrent probes build at
     most once.  A build is planning-visible (estimates that returned
     [None] now answer), so it moves the epoch. *)
  Mutex.lock e.e_lock;
  let g =
    match e.e_guide with
    | Some g -> g
    | None ->
      let g = Idx_guide.build (Array.to_list e.e_roots) in
      e.e_guide <- Some g;
      tick c_builds;
      bump_epoch ();
      g
  in
  Mutex.unlock e.e_lock;
  g

let ensure_guide e =
  match e.e_guide with
  | Some g -> Some g
  | None -> (
    match Atomic.get mode_a with
    | Off -> None
    | Auto | Eager -> Some (build_guide e))

(* Raw strings a node contributes to a value index of [kind].  These are
   exactly what [Xml_path.pred_holds] compares on the XML rendering of
   the node: [Dtree.text] equals [Xml_types.text_content] of the
   serialized element, and attributes compare via [Value.to_string]. *)
let kind_values kind node =
  match kind with
  | Idx_value.Text -> [ Dtree.text node ]
  | Idx_value.Attr a -> (
    match Dtree.attr node a with
    | Some v -> [ Value.to_string v ]
    | None -> [])
  | Idx_value.Child c -> List.map Dtree.text (Dtree.kids_named node c)

let value_index e guide key kind =
  let kkey = (key, Idx_value.kind_to_string kind) in
  Mutex.lock e.e_lock;
  let idx =
    match Hashtbl.find_opt e.e_values kkey with
    | Some idx -> idx
    | None ->
      let entries =
        List.concat_map
          (fun id ->
            List.map (fun raw -> (raw, id)) (kind_values kind (Idx_guide.node guide id)))
          (Idx_guide.all_ids_of_key guide key)
      in
      let idx = Idx_value.build entries in
      Hashtbl.replace e.e_values kkey idx;
      e.e_value_bytes <- e.e_value_bytes + Idx_value.bytes idx;
      tick c_builds;
      bump_epoch ();
      idx
  in
  Mutex.unlock e.e_lock;
  idx

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let make_entry name forest =
  let roots = Array.of_list forest in
  let labels = Hashtbl.create 4 in
  Array.iter
    (fun r -> match Dtree.label r with Some l -> Hashtbl.replace labels l () | None -> ())
    roots;
  {
    e_name = name;
    e_roots = roots;
    e_root_labels = labels;
    e_lock = Mutex.create ();
    e_hint = Atomic.make 0;
    e_guide = None;
    e_values = Hashtbl.create 4;
    e_value_bytes = 0;
  }

(* An entry is planning-visible once something was built from it:
   dropping or replacing it changes what [estimate] answers, so the
   epoch must move.  Removing a never-built entry changes nothing a
   cached plan could have used. *)
let entry_built e = e.e_guide <> None || e.e_value_bytes > 0

let register name forest =
  let e = make_entry name forest in
  let replaced_built =
    with_lock (fun () ->
        let old = Hashtbl.find_opt state.by_name name in
        if old <> None then tick c_invalidations;
        Hashtbl.replace state.by_name name e;
        republish ();
        match old with Some o -> entry_built o | None -> false)
  in
  if replaced_built then bump_epoch ();
  if Atomic.get mode_a = Eager then ignore (build_guide e)

let unregister name =
  let removed_built =
    with_lock (fun () ->
        match Hashtbl.find_opt state.by_name name with
        | None -> None
        | Some e ->
          Hashtbl.remove state.by_name name;
          republish ();
          Some (entry_built e))
  in
  match removed_built with
  | None -> ()
  | Some built ->
    tick c_invalidations;
    if built then bump_epoch ()

let drop_prefix prefix =
  let dropped, any_built =
    with_lock (fun () ->
        let doomed =
          Hashtbl.fold
            (fun n e acc -> if String.starts_with ~prefix n then (n, e) :: acc else acc)
            state.by_name []
        in
        List.iter (fun (n, _) -> Hashtbl.remove state.by_name n) doomed;
        if doomed <> [] then republish ();
        (List.length doomed, List.exists (fun (_, e) -> entry_built e) doomed))
  in
  if dropped > 0 then begin
    Atomic.set c_invalidations (Atomic.get c_invalidations + dropped);
    if any_built then bump_epoch ()
  end

let clear () =
  let any_built =
    with_lock (fun () ->
        let any = Hashtbl.fold (fun _ e acc -> acc || entry_built e) state.by_name false in
        Hashtbl.reset state.by_name;
        republish ();
        any)
  in
  if any_built then bump_epoch ()

let build name =
  let e = with_lock (fun () -> Hashtbl.find_opt state.by_name name) in
  match e with
  | None -> None
  | Some e ->
    let g = build_guide e in
    Some (Idx_guide.path_count g, Idx_guide.node_count g, Idx_guide.bytes g)

let entry_bytes e =
  (match e.e_guide with Some g -> Idx_guide.bytes g | None -> 0) + e.e_value_bytes

let registered () =
  let arr = Atomic.get snap in
  Array.to_list arr
  |> List.map (fun e ->
         (e.e_name, e.e_guide <> None, Array.length e.e_roots, entry_bytes e))

let is_registered name =
  Array.exists (fun e -> String.equal e.e_name name) (Atomic.get snap)

let total_bytes () =
  Array.fold_left (fun acc e -> acc + entry_bytes e) 0 (Atomic.get snap)

(* ------------------------------------------------------------------ *)
(* Probing                                                             *)
(* ------------------------------------------------------------------ *)

(* Find the registered root physically equal to [tree].  Sequential
   scans over a view's rows hit the per-entry hint (last index, then its
   successor) in O(1); otherwise fall back to a pointer scan, skipping
   entries whose root labels cannot contain this tree. *)
let find_root tree =
  let arr = Atomic.get snap in
  if Array.length arr = 0 then None
  else begin
    let label = Dtree.label tree in
    let in_entry e =
      let n = Array.length e.e_roots in
      if n = 0 then None
      else begin
        let viable =
          match label with
          | Some l -> Hashtbl.mem e.e_root_labels l
          | None -> false
        in
        if not viable then None
        else begin
          let h = Atomic.get e.e_hint in
          if h < n && e.e_roots.(h) == tree then Some h
          else if h + 1 < n && e.e_roots.(h + 1) == tree then begin
            Atomic.set e.e_hint (h + 1);
            Some (h + 1)
          end
          else begin
            let found = ref (-1) in
            let i = ref 0 in
            while !found < 0 && !i < n do
              if e.e_roots.(!i) == tree then found := !i;
              incr i
            done;
            if !found >= 0 then begin
              Atomic.set e.e_hint !found;
              Some !found
            end
            else None
          end
        end
      end
    in
    let he = Atomic.get hint_entry in
    let try_entry k =
      if k < 0 || k >= Array.length arr then None
      else
        match in_entry arr.(k) with
        | Some r ->
          Atomic.set hint_entry k;
          Some (arr.(k), r)
        | None -> None
    in
    match try_entry he with
    | Some hit -> Some hit
    | None ->
      let rec scan k =
        if k >= Array.length arr then None
        else if k = he then scan (k + 1)
        else match try_entry k with Some hit -> Some hit | None -> scan (k + 1)
      in
      scan 0
  end

(* The walker applies final-step predicates per candidate; replicate on
   the Dtree side.  Position predicates never reach here — the guide
   rejects them as unsupported. *)
let node_pred_holds node p =
  match p with
  | Xml_path.Has_attr n -> Dtree.attr node n <> None
  | Xml_path.Attr_cmp (n, op, rhs) -> (
    match Dtree.attr node n with
    | Some v -> Xml_path.compare_values op (Value.to_string v) rhs
    | None -> false)
  | Xml_path.Child_exists n -> Dtree.kids_named node n <> []
  | Xml_path.Child_cmp (n, op, rhs) ->
    List.exists
      (fun c -> Xml_path.compare_values op (Dtree.text c) rhs)
      (Dtree.kids_named node n)
  | Xml_path.Text_cmp (op, rhs) ->
    Xml_path.compare_values op (Dtree.text node) rhs
  | Xml_path.Position _ -> false

(* Split a path into its structural part (guide-probeable) and the
   final step's predicates (checked per candidate). *)
let split_preds (p : Xml_path.t) =
  match List.rev p.Xml_path.steps with
  | [] -> (p, [])
  | last :: rev_front ->
    let stripped =
      { p with Xml_path.steps = List.rev ({ last with Xml_path.preds = [] } :: rev_front) }
    in
    (stripped, last.Xml_path.preds)

(* The first predicate a value index can answer outright. *)
let value_probe_of preds =
  List.find_map
    (fun p ->
      match p with
      | Xml_path.Text_cmp (op, rhs) when op <> Xml_path.Neq ->
        Some (Idx_value.Text, op, rhs)
      | Xml_path.Attr_cmp (n, op, rhs) when op <> Xml_path.Neq ->
        Some (Idx_value.Attr n, op, rhs)
      | Xml_path.Child_cmp (n, op, rhs) when op <> Xml_path.Neq ->
        Some (Idx_value.Child n, op, rhs)
      | _ -> None)
    preds

type outcome = Value | Guide

let try_select tree path =
  if Atomic.get mode_a = Off then None
  else
    match find_root tree with
    | None -> None
    | Some (e, root) ->
      if not (Idx_guide.supported path) then begin
        tick c_misses;
        None
      end
      else begin
        match ensure_guide e with
        | None -> None
        | Some guide ->
          let stripped, preds = split_preds path in
          let lo, hi = Idx_guide.root_range guide root in
          let candidates, outcome =
            match value_probe_of preds with
            | Some (kind, op, rhs) -> (
              match Idx_guide.matching_keys guide stripped with
              | None -> (Idx_guide.probe guide ~root stripped, Guide)
              | Some keys ->
                let probed =
                  List.fold_left
                    (fun acc key ->
                      match acc with
                      | None -> None
                      | Some ids -> (
                        match Idx_value.probe (value_index e guide key kind) op rhs with
                        | None -> None
                        | Some more ->
                          Some
                            (List.filter (fun id -> id >= lo && id < hi) more @ ids)))
                    (Some []) keys
                in
                (match probed with
                | Some ids -> (Some (List.sort Int.compare ids), Value)
                | None -> (Idx_guide.probe guide ~root stripped, Guide)))
            | None -> (Idx_guide.probe guide ~root stripped, Guide)
          in
          (match candidates with
          | None ->
            tick c_misses;
            None
          | Some ids ->
            (* Re-check every predicate per node: idempotent for the one
               the value index answered, required for the rest. *)
            let out =
              List.filter_map
                (fun id ->
                  let node = Idx_guide.node guide id in
                  if List.for_all (node_pred_holds node) preds then
                    (* Same XML round-trip the walker's results take, so
                       answers are byte-identical. *)
                    Some (Dtree.of_xml_element (Dtree.to_xml_element node))
                  else None)
                ids
            in
            tick (match outcome with Value -> c_value_hits | Guide -> c_guide_hits);
            Some (out, outcome))
      end

(* ------------------------------------------------------------------ *)
(* Estimation                                                          *)
(* ------------------------------------------------------------------ *)

let estimate name path =
  if Atomic.get mode_a = Off then None
  else
    let arr = Atomic.get snap in
    let e = Array.find_opt (fun e -> String.equal e.e_name name) arr in
    match e with
    | None -> None
    | Some e -> (
      match e.e_guide with
      | None -> None (* estimation never forces a build *)
      | Some guide -> (
        let stripped, preds = split_preds path in
        match Idx_guide.count guide stripped with
        | None -> None
        | Some n -> (
          match value_probe_of preds with
          | None -> Some (float_of_int n)
          | Some (kind, op, rhs) -> (
            (* Refine through a value index only if one is already
               built for every matching key. *)
            match Idx_guide.matching_keys guide stripped with
            | None -> Some (float_of_int n)
            | Some keys ->
              let kstr = Idx_value.kind_to_string kind in
              let refined =
                Mutex.lock e.e_lock;
                let r =
                  List.fold_left
                    (fun acc key ->
                      match acc with
                      | None -> None
                      | Some total -> (
                        match Hashtbl.find_opt e.e_values (key, kstr) with
                        | None -> None
                        | Some idx -> (
                          match Idx_value.probe idx op rhs with
                          | None -> None
                          | Some ids -> Some (total + List.length ids))))
                    (Some 0) keys
                in
                Mutex.unlock e.e_lock;
                r
              in
              (match refined with
              | Some k -> Some (float_of_int k)
              | None -> Some (float_of_int n))))))

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let counters () =
  (Atomic.get c_guide_hits, Atomic.get c_value_hits, Atomic.get c_misses)

let reset_stats () =
  List.iter
    (fun c -> Atomic.set c 0)
    [ c_guide_hits; c_value_hits; c_misses; c_builds; c_invalidations ]

let publish_metrics () =
  let sync name a =
    let c = Obs_metrics.counter name in
    Obs_metrics.inc ~by:(Atomic.get a - Obs_metrics.value c) c
  in
  sync "idx.guide_hits" c_guide_hits;
  sync "idx.value_hits" c_value_hits;
  sync "idx.misses" c_misses;
  sync "idx.builds" c_builds;
  sync "idx.invalidations" c_invalidations;
  Obs_metrics.set_gauge (Obs_metrics.gauge "idx.bytes") (float_of_int (total_bytes ()));
  Obs_metrics.set_gauge
    (Obs_metrics.gauge "idx.indexes")
    (float_of_int (Array.length (Atomic.get snap)))
