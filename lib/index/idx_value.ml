(* Immutable after [build]; probes are lock-free. *)

type kind =
  | Text
  | Attr of string
  | Child of string

let kind_to_string = function
  | Text -> "text()"
  | Attr a -> "@" ^ a
  | Child c -> c

type t = {
  eq : (string, int list) Hashtbl.t;   (* canonical key -> ascending ids *)
  num : (float * int) array;           (* float-parseable, by (value, id) *)
  str_other : (string * int) array;    (* the rest, by (value, id) *)
  str_all : (string * int) array;      (* everything, by raw string *)
  n_entries : int;
  bytes : int;
}

(* [Xml_path.compare_values] uses [Float.compare], under which -0. = 0.
   and nan = nan, so the equality key canonicalizes both before taking
   the bit pattern. *)
let float_key f =
  let f = if f = 0.0 then 0.0 else if Float.is_nan f then Float.nan else f in
  "N:" ^ Int64.to_string (Int64.bits_of_float f)

let canonical_key raw =
  match float_of_string_opt raw with
  | Some f -> float_key f
  | None -> "S:" ^ raw

let build entries =
  let eq = Hashtbl.create (max 16 (List.length entries)) in
  let num = ref [] and str_other = ref [] in
  List.iter
    (fun (raw, id) ->
      let key = canonical_key raw in
      Hashtbl.replace eq key
        (id :: (Option.value ~default:[] (Hashtbl.find_opt eq key)));
      match float_of_string_opt raw with
      | Some f -> num := (f, id) :: !num
      | None -> str_other := (raw, id) :: !str_other)
    entries;
  Hashtbl.iter (fun k ids -> Hashtbl.replace eq k (List.sort_uniq Int.compare ids)) eq;
  let by_float (a, i) (b, j) =
    let c = Float.compare a b in
    if c <> 0 then c else Int.compare i j
  in
  let by_string (a, i) (b, j) =
    let c = String.compare a b in
    if c <> 0 then c else Int.compare i j
  in
  let num = Array.of_list (List.sort by_float !num) in
  let str_other = Array.of_list (List.sort by_string !str_other) in
  let str_all =
    Array.of_list
      (List.sort by_string (List.map (fun (raw, id) -> (raw, id)) entries))
  in
  let bytes =
    List.fold_left (fun a (raw, _) -> a + String.length raw + 24) 0 entries * 3
    + (Array.length num * 16)
  in
  { eq; num; str_other; str_all; n_entries = List.length entries; bytes }

let bytes t = t.bytes
let entries t = t.n_entries

(* First index where [pred] holds; [pred] is monotone over the array. *)
let bound pred arr =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if pred arr.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let ids_in arr i0 i1 =
  let out = ref [] in
  for i = i1 - 1 downto i0 do
    out := snd arr.(i) :: !out
  done;
  !out

(* Entries satisfying [cmp entry_value rhs <op> 0] in a sorted array. *)
let range_ids op cmp arr =
  let len = Array.length arr in
  match op with
  | Xml_path.Lt -> ids_in arr 0 (bound (fun (v, _) -> cmp v >= 0) arr)
  | Xml_path.Le -> ids_in arr 0 (bound (fun (v, _) -> cmp v > 0) arr)
  | Xml_path.Gt -> ids_in arr (bound (fun (v, _) -> cmp v > 0) arr) len
  | Xml_path.Ge -> ids_in arr (bound (fun (v, _) -> cmp v >= 0) arr) len
  | Xml_path.Eq | Xml_path.Neq -> invalid_arg "Idx_value.range_ids"

let probe t op rhs =
  match op with
  | Xml_path.Neq -> None
  | Xml_path.Eq ->
    let key =
      match float_of_string_opt rhs with
      | Some f -> float_key f
      | None -> "S:" ^ rhs
    in
    Some (Option.value ~default:[] (Hashtbl.find_opt t.eq key))
  | Xml_path.Lt | Xml_path.Le | Xml_path.Gt | Xml_path.Ge ->
    let ids =
      match float_of_string_opt rhs with
      | Some rf ->
        (* Numeric lhs compare as floats; non-numeric lhs fall back to
           a string comparison against the raw rhs — both sides of
           [compare_values]. *)
        range_ids op (fun v -> Float.compare v rf) t.num
        @ range_ids op (fun v -> String.compare v rhs) t.str_other
      | None -> range_ids op (fun v -> String.compare v rhs) t.str_all
    in
    Some (List.sort_uniq Int.compare ids)
