(** Registry of path/value indexes over named [Dtree.t] forests.

    Materialized views register under ["view:<name>"], local XML-store
    documents under ["src:<source>/<doc>"].  Structural guides are built
    at registration time in [Eager] mode, on first probe in [Auto] mode;
    value indexes are always built on first value probe.  Invalidation
    is by name (view refresh/drop) or prefix (source mutation), and
    every change of index availability bumps {!epoch} so cached plans
    can detect staleness.

    Probes are safe from any domain: registry snapshots are read through
    an [Atomic], built guides and value indexes are immutable, and all
    statistics are atomic counters.  Nothing here touches the (single-
    domain) [Obs_metrics] registry except {!publish_metrics}, which the
    caller must invoke from the main domain. *)

type mode =
  | Off    (** never probe *)
  | Auto   (** probe registered forests, building guides on demand *)
  | Eager  (** as [Auto], but build guides at registration time *)

val mode_of_string : string -> (mode, string) result
val mode_to_string : mode -> string
val set_mode : mode -> unit
val mode : unit -> mode

(** [register name forest] (re)indexes a forest under [name], replacing
    any previous registration. *)
val register : string -> Dtree.t list -> unit

val unregister : string -> unit

(** Drop every registration whose name starts with [prefix] — e.g.
    ["src:crm/"] when source [crm] is invalidated. *)
val drop_prefix : string -> unit

val clear : unit -> unit

(** Bumped on every planning-visible change: a guide or value index is
    built, an entry something was built from is replaced or dropped, or
    the mode changes.  (Registering or dropping a never-built entry
    moves nothing — no estimate could have depended on it.)  Plan caches
    record it and recompile when it moves. *)
val epoch : unit -> int

(** Force-build the guide for [name]; [Some (paths, nodes, bytes)] on
    success, [None] if nothing is registered under [name]. *)
val build : string -> (int * int * int) option

(** [(name, guide_built, roots, bytes)] per registration, sorted. *)
val registered : unit -> (string * bool * int * int) list

(** Lock-free membership test; an XML store probes this before lazily
    re-registering documents dropped by a source invalidation. *)
val is_registered : string -> bool

val total_bytes : unit -> int

(** How a probe was answered: [Value] used a value index, [Guide] used
    the structural summary alone. *)
type outcome = Value | Guide

(** [try_select tree path] answers [Xml_path.select path] over a
    registered root from its indexes: [Some (results, outcome)] with the
    result nodes in document order, re-imported through the same
    XML round-trip as the walker so answers are byte-identical.  [None]
    when indexing is off, [tree] is not a registered root, or the path
    is outside the indexable subset — callers must then run the walker. *)
val try_select : Dtree.t -> Xml_path.t -> (Dtree.t list * outcome) option

(** Index-backed cardinality: exact matching-node count from [name]'s
    built guide, refined by a value probe when one applies and its index
    is already built.  [None] when unknown (no entry, guide not built,
    or unsupported path) — estimation never forces a build. *)
val estimate : string -> Xml_path.t -> float option

(** Cumulative [(guide_hits, value_hits, misses)] — snapshot around a
    region to attribute probe activity to one operator or access. *)
val counters : unit -> int * int * int

(** Mirror the atomic statistics into [Obs_metrics] ([idx.*] counters
    and gauges).  Main domain only. *)
val publish_metrics : unit -> unit

(** Reset statistics (not registrations); for tests. *)
val reset_stats : unit -> unit
