(** Value index over one (label path, extraction) pair.

    Entries map a raw string value (element text, attribute value, or a
    named child's text) to the node ids that carry it.  Probes replicate
    [Xml_path.compare_values] exactly: two values compare numerically
    iff both parse as floats, otherwise as strings — so equality keys
    are split into a numeric bucket (keyed by the canonical float) and a
    raw-string bucket, and range probes combine a float-ordered scan of
    the numeric entries with a string-ordered scan of the rest. *)

type t

(** What a path's predicate compares; determines which raw strings feed
    the index. *)
type kind =
  | Text               (** [text() <op> v] — the element's text content *)
  | Attr of string     (** [@a <op> v] — the attribute's value *)
  | Child of string    (** [c <op> v] — each child [c]'s text content *)

val kind_to_string : kind -> string

(** Build from [(raw value, node id)] entries; an id may appear under
    several values (e.g. repeated children). *)
val build : (string * int) list -> t

(** Approximate heap footprint in bytes. *)
val bytes : t -> int

(** Number of entries. *)
val entries : t -> int

(** Ids whose value satisfies [<op> rhs], ascending and deduplicated.
    [None] for operators the index cannot answer ([Neq]). *)
val probe : t -> Xml_path.cmp_op -> string -> int list option
