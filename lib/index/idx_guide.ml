(* DataGuide-style structural summary.  The whole structure is immutable
   after [build], so probes are safe from any domain without locking —
   the manager only serializes construction. *)

type t = {
  nodes : Dtree.t array;          (* id -> element node, forest preorder *)
  slot_of_id : int array;         (* id -> label-path slot *)
  keys : string array;            (* slot -> labels joined with '/' *)
  labels : string list array;     (* slot -> label sequence from the root *)
  slot_by_key : (string, int) Hashtbl.t;
  ids : int array array;          (* slot -> ascending ids *)
  ranges : (int * int) array;     (* root k -> (lo, hi) id interval *)
  bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let build forest =
  let nodes = ref [] and slot_of = ref [] in
  let n = ref 0 in
  let keys = ref [] and labels = ref [] and slots = Hashtbl.create 32 in
  let nslots = ref 0 in
  let posting : int list array ref = ref (Array.make 16 []) in
  let slot_for key label_path =
    match Hashtbl.find_opt slots key with
    | Some s -> s
    | None ->
      let s = !nslots in
      incr nslots;
      Hashtbl.add slots key s;
      keys := key :: !keys;
      labels := label_path :: !labels;
      if s >= Array.length !posting then begin
        let bigger = Array.make (2 * Array.length !posting) [] in
        Array.blit !posting 0 bigger 0 (Array.length !posting);
        posting := bigger
      end;
      s
  in
  let rec walk key rev_labels tree =
    match tree with
    | Dtree.Atom _ -> ()
    | Dtree.Node nd ->
      let key = if key = "" then nd.Dtree.label else key ^ "/" ^ nd.Dtree.label in
      let rev_labels = nd.Dtree.label :: rev_labels in
      let slot = slot_for key (List.rev rev_labels) in
      let id = !n in
      incr n;
      nodes := tree :: !nodes;
      slot_of := slot :: !slot_of;
      !posting.(slot) <- id :: !posting.(slot);
      List.iter (walk key rev_labels) nd.Dtree.kids
  in
  let ranges =
    List.map
      (fun root ->
        let lo = !n in
        walk "" [] root;
        (lo, !n))
      forest
  in
  let nodes = Array.of_list (List.rev !nodes) in
  let slot_of_id = Array.of_list (List.rev !slot_of) in
  let keys = Array.of_list (List.rev !keys) in
  let labels = Array.of_list (List.rev !labels) in
  (* Preorder appends built each posting list in descending id order. *)
  let ids =
    Array.init !nslots (fun s -> Array.of_list (List.rev !posting.(s)))
  in
  let bytes =
    let key_bytes = Array.fold_left (fun a k -> a + String.length k + 24) 0 keys in
    (Array.length nodes * 16) + (Array.length slot_of_id * 8)
    + Array.fold_left (fun a arr -> a + (Array.length arr * 8) + 16) 0 ids
    + key_bytes
  in
  {
    nodes;
    slot_of_id;
    keys;
    labels;
    slot_by_key = slots;
    ids;
    ranges = Array.of_list ranges;
    bytes;
  }

let node_count t = Array.length t.nodes
let path_count t = Array.length t.keys
let bytes t = t.bytes
let node t id = t.nodes.(id)
let root_range t k = t.ranges.(k)
let path_key t id = t.keys.(t.slot_of_id.(id))

(* ------------------------------------------------------------------ *)
(* Path-pattern support                                                *)
(* ------------------------------------------------------------------ *)

(* The guide answers a path exactly when the label sequence alone
   determines membership: downward axes, name/wildcard tests, and
   predicates confined to the final step (where the manager re-checks
   them per node).  [Text_node] passes every element candidate in the
   walker ([Xml_path.test_holds]), so it is a wildcard here too.
   Position predicates depend on per-context candidate order, which the
   guide does not track. *)

let axis_ok = function
  | Xml_path.Child | Xml_path.Descendant | Xml_path.Descendant_or_self -> true
  | Xml_path.Parent | Xml_path.Ancestor | Xml_path.Self
  | Xml_path.Following_sibling | Xml_path.Preceding_sibling -> false

let test_supported = function
  | Xml_path.Name _ | Xml_path.Any_element | Xml_path.Text_node -> true
  | Xml_path.Attribute _ -> false

let pred_positionless = function
  | Xml_path.Position _ -> false
  | Xml_path.Has_attr _ | Xml_path.Attr_cmp _ | Xml_path.Child_exists _
  | Xml_path.Child_cmp _ | Xml_path.Text_cmp _ -> true

let supported (p : Xml_path.t) =
  let rec steps_ok = function
    | [] -> true
    | [ (last : Xml_path.step) ] ->
      axis_ok last.Xml_path.axis
      && test_supported last.Xml_path.test
      && List.for_all pred_positionless last.Xml_path.preds
    | (s : Xml_path.step) :: tl ->
      axis_ok s.Xml_path.axis && test_supported s.Xml_path.test
      && s.Xml_path.preds = [] && steps_ok tl
  in
  p.Xml_path.steps <> [] && steps_ok p.Xml_path.steps

let test_ok test l =
  match test with
  | Xml_path.Name n -> String.equal n l
  | Xml_path.Any_element | Xml_path.Text_node -> true
  | Xml_path.Attribute _ -> false

(* Match the steps against a label sequence.  [cur] is the label of the
   context node (initially the root); [labels] the labels still to be
   consumed below it.  Mirrors the walker: both absolute and relative
   paths start at the root cursor, descendant consumes >= 1 label,
   descendant-or-self >= 0. *)
let rec match_steps cur steps labels =
  match steps with
  | [] -> labels = []
  | (s : Xml_path.step) :: tl -> (
    let ok = test_ok s.Xml_path.test in
    match s.Xml_path.axis with
    | Xml_path.Child -> (
      match labels with
      | l :: ls -> ok l && match_steps l tl ls
      | [] -> false)
    | Xml_path.Descendant ->
      let rec go = function
        | [] -> false
        | l :: ls -> (ok l && match_steps l tl ls) || go ls
      in
      go labels
    | Xml_path.Descendant_or_self ->
      (ok cur && match_steps cur tl labels)
      ||
      let rec go = function
        | [] -> false
        | l :: ls -> (ok l && match_steps l tl ls) || go ls
      in
      go labels
    | _ -> false)

let matching_slots t (p : Xml_path.t) =
  if not (supported p) then None
  else begin
    let out = ref [] in
    for s = Array.length t.labels - 1 downto 0 do
      match t.labels.(s) with
      | [] -> ()
      | root_label :: rest ->
        if match_steps root_label p.Xml_path.steps rest then out := s :: !out
    done;
    Some !out
  end

let matching_keys t p =
  Option.map (List.map (fun s -> t.keys.(s))) (matching_slots t p)

(* First index in the ascending array whose value is >= v. *)
let lower_bound arr v =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let slot_ids_in_range t slot lo hi =
  let arr = t.ids.(slot) in
  let i0 = lower_bound arr lo and i1 = lower_bound arr hi in
  Array.to_list (Array.sub arr i0 (i1 - i0))

let ids_of_key t ~root key =
  match Hashtbl.find_opt t.slot_by_key key with
  | None -> []
  | Some slot ->
    let lo, hi = t.ranges.(root) in
    slot_ids_in_range t slot lo hi

let all_ids_of_key t key =
  match Hashtbl.find_opt t.slot_by_key key with
  | None -> []
  | Some slot -> Array.to_list t.ids.(slot)

let count t p =
  match matching_slots t p with
  | None -> None
  | Some slots ->
    Some (List.fold_left (fun acc s -> acc + Array.length t.ids.(s)) 0 slots)

let probe t ~root p =
  match matching_slots t p with
  | None -> None
  | Some slots ->
    let lo, hi = t.ranges.(root) in
    let lists = List.map (fun s -> slot_ids_in_range t s lo hi) slots in
    (* Each node belongs to exactly one slot, so the lists are disjoint;
       a sort is a k-way merge back into document order. *)
    Some (List.sort Int.compare (List.concat lists))
