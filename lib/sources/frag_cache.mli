(** Fragment-level LRU+TTL result cache.

    Sits {e below} {!Mat_cache}'s whole-query cache: keys are
    [(source, fragment)] pairs — the fragment being the artifact
    actually shipped to the source (SQL text, path expression, scan or
    document name) — and values are raw {!Source.result}s, cached
    before any mediator post-processing.  A hit replaces a remote round
    trip, so it costs nothing on the virtual clock.

    Eviction is least-recently-used, O(1) per operation (recency is an
    intrusive doubly-linked list threaded through the entries, not a
    table scan); an optional TTL, measured on the
    {e virtual} clock ({!Obs_clock.virtual_ms}), ages entries out for
    freshness (section 3.3's warehousing trade-off).  Capacity 0
    disables the cache entirely (no lookups are counted). *)

type t

type stats = {
  mutable frag_hits : int;
  mutable frag_misses : int;
  mutable frag_evictions : int;
  mutable frag_expirations : int;
  mutable frag_invalidations : int;
}

val create : ?ttl_ms:float -> capacity:int -> unit -> t

val enabled : t -> bool
(** [capacity > 0]. *)

val get : t -> source:string -> fragment:string -> Source.result option
(** A hit refreshes recency; an entry past its TTL expires (counted
    separately from evictions) and reads as a miss. *)

val get_stale : t -> source:string -> fragment:string -> Source.result option
(** Last known value for the key, fresh or not: a live entry, or a
    TTL-expired value parked when {!get} removed it.  Partial-mode
    degradation serves these for sources whose retry budget is
    exhausted; no hit/miss counters move.  Stale values disappear on
    {!put} (refresh), {!invalidate_source}, and {!clear}. *)

val put : t -> source:string -> fragment:string -> Source.result -> unit

val invalidate_source : t -> string -> int
(** Drop every fragment cached from the source; returns how many. *)

val clear : t -> unit
val size : t -> int
val capacity : t -> int
val ttl_ms : t -> float option
val stats : t -> stats
val hit_rate : t -> float
