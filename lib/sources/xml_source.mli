(** XML document source: a named collection of documents supporting path
    selection pushdown. *)

val make : name:string -> (string * Dtree.t) list -> Source.t
(** [make ~name docs] with [(doc_name, tree)] pairs.  Capability:
    select/path pushdown, no joins or aggregates. *)

val of_xml_strings : name:string -> (string * string) list -> Source.t
(** Parse each document from text.
    @raise Xml_parser.Parse_error on malformed input. *)

val add_document : Source.t -> string -> Dtree.t -> unit
(** Sources made by this module are backed by a mutable store; adding a
    document makes it visible to subsequent queries.
    @raise Invalid_argument when the source was not made here. *)

val reindex : string -> unit
(** Re-register every document of the named store with {!Idx_manager}
    from its live trees — no source call, so network wrappers between
    the catalog and the store see nothing.  No-op for names this module
    never made (e.g. relational sources).  The catalog calls this after
    an invalidation drops the source's index entries. *)
