(** Scatter-gather fetch scheduling.

    Source accesses collected from a compiled plan are issued in
    overlapped {e rounds}: up to [fanout] fetches share a round, and the
    shared virtual clock ({!Obs_clock}) advances by the {e maximum} of
    the round's per-call costs instead of their sum — per-source
    {!Net_sim} stats still charge every call in full.  Tasks carrying
    the same dedup key collapse into a single execution whose outcome
    (value or exception) is shared by every holder of the key. *)

type mode =
  | Sequential  (** one access at a time, in plan order — the default *)
  | Gather  (** overlapped rounds of [fanout] accesses *)

type options = {
  mode : mode;
  fanout : int;
}

val default_fanout : int
(** 4. *)

val default_options : options
(** [Sequential] with the default fan-out, preserving the exact
    observable behaviour of plans compiled before the scheduler
    existed. *)

val gather_options : ?fanout:int -> unit -> options

val mode_to_string : mode -> string
val mode_of_string : string -> mode option
val options_to_string : options -> string

type 'a outcome = {
  result : ('a, exn) result;
  round : int;  (** 0-based round the execution ran in *)
  shared : bool;  (** served by an earlier task's execution (dedup) *)
}

type 'a task = {
  task_key : string;  (** dedup identity — e.g. [Med_planner.access_key] *)
  task_run : unit -> 'a;
}

val run : fanout:int -> 'a task list -> 'a outcome list
(** Executes the distinct tasks (first occurrence of each key, input
    order preserved) in rounds of [fanout] under
    {!Obs_clock.begin_round} lanes, capturing exceptions per task.
    Returns one outcome per {e input} task, duplicates sharing the
    executed outcome with [shared = true].  Counts [fetch.rounds],
    [fetch.tasks] and [fetch.dedup_hits] in the metrics registry and
    observes each round's clock cost on [fetch.round_ms]. *)
