(* Retry / deadline / circuit-breaker policy for remote source calls.

   Everything runs on the virtual clock: backoff sleeps are charged with
   Obs_clock.advance (so they compose with gather rounds — concurrent
   lanes overlap their backoffs just like their latencies), breaker
   cool-downs compare against Obs_clock.virtual_ms, and jitter comes
   from a Prng seeded at creation, so a fault schedule plus a policy
   replays byte-identically.

   The default policy is inert (no retries, breaker off): [call] is then
   a pure passthrough and every pre-existing test and cram stays
   byte-identical.  All retry.*/breaker.* metrics are registered lazily
   at event time for the same reason. *)

type policy = {
  max_retries : int;
  base_backoff_ms : float;
  max_backoff_ms : float;
  jitter : float;
  call_deadline_ms : float option;
  breaker : bool;
  breaker_threshold : int;
  breaker_cooldown_ms : float;
  serve_stale : bool;
}

let default_policy =
  {
    max_retries = 0;
    base_backoff_ms = 4.0;
    max_backoff_ms = 64.0;
    jitter = 0.25;
    call_deadline_ms = None;
    breaker = false;
    breaker_threshold = 3;
    breaker_cooldown_ms = 100.0;
    serve_stale = false;
  }

let active p = p.max_retries > 0 || p.breaker

(* Capped exponential backoff plus a seeded jitter fraction of the
   capped value.  attempt 0 = delay before the first retry. *)
let backoff_ms pol rng ~attempt =
  let base = pol.base_backoff_ms *. (2.0 ** float_of_int attempt) in
  let capped = Float.min base pol.max_backoff_ms in
  let jit =
    if pol.jitter <= 0.0 then 0.0 else capped *. pol.jitter *. Prng.float rng 1.0
  in
  capped +. jit

type breaker_state = Closed | Open of float | Half_open

type breaker = {
  mutable br_state : breaker_state;
  mutable br_failures : int;
  mutable br_opens : int;
}

(* Per-source tally inside one query, keyed by source name: feeds the
   EXPLAIN ANALYZE cells and partial-mode bookkeeping. *)
type ctx = {
  cx_partial : bool;
  cx_deadline : float option; (* absolute virtual ms *)
  mutable cx_stale : string list;
}

type t = {
  mutable pol : policy;
  rng : Prng.t;
  breakers : (string, breaker) Hashtbl.t;
  mutable ctx : ctx option;
}

let create ?(seed = 11) () =
  { pol = default_policy; rng = Prng.create seed; breakers = Hashtbl.create 8; ctx = None }

let policy t = t.pol

(* Reconfiguring resets breaker state so a fresh policy starts clean. *)
let set_policy t pol =
  t.pol <- pol;
  Hashtbl.reset t.breakers

(* Process-wide totals snapshotted around each access pull by EXPLAIN
   ANALYZE; plain refs, deliberately not registered metrics. *)
let retries_total = ref 0
let gave_up_total = ref 0
let fast_fail_total = ref 0
let counters () = (!retries_total, !gave_up_total, !fast_fail_total)

let event name = Obs_metrics.inc (Obs_metrics.counter name)

let breaker_of t source =
  match Hashtbl.find_opt t.breakers source with
  | Some br -> br
  | None ->
    let br = { br_state = Closed; br_failures = 0; br_opens = 0 } in
    Hashtbl.replace t.breakers source br;
    br

let breaker_state_name t source =
  match Hashtbl.find_opt t.breakers source with
  | None | Some { br_state = Closed; _ } -> "closed"
  | Some { br_state = Open _; _ } -> "open"
  | Some { br_state = Half_open; _ } -> "half-open"

let with_query t ?(partial = false) ?deadline_ms f =
  let parent = t.ctx in
  let inherited = match parent with Some c -> c.cx_deadline | None -> None in
  let abs_deadline =
    match deadline_ms with
    | None -> inherited
    | Some d ->
      let a = Obs_clock.virtual_ms () +. d in
      Some (match inherited with Some i -> Float.min i a | None -> a)
  in
  let cx = { cx_partial = partial; cx_deadline = abs_deadline; cx_stale = [] } in
  t.ctx <- Some cx;
  match f () with
  | v ->
    t.ctx <- parent;
    (v, List.rev cx.cx_stale)
  | exception e ->
    t.ctx <- parent;
    raise e

let stale_ok t =
  t.pol.serve_stale && (match t.ctx with Some cx -> cx.cx_partial | None -> false)

let note_stale t ~source =
  event "retry.stale_served";
  match t.ctx with
  | Some cx -> if not (List.mem source cx.cx_stale) then cx.cx_stale <- source :: cx.cx_stale
  | None -> ()

let call t ~source f =
  let pol = t.pol in
  if not (active pol) then f ()
  else begin
    let br = breaker_of t source in
    let now () = Obs_clock.virtual_ms () in
    (* Breaker gate: open + cooling down fails fast without paying the
       source's latency; open + cooled down lets one probe through. *)
    (match br.br_state with
    | Open until_ms when now () < until_ms ->
      incr fast_fail_total;
      event "breaker.fast_fails";
      raise (Source.Unavailable source)
    | Open _ ->
      br.br_state <- Half_open;
      event "breaker.half_opens"
    | Closed | Half_open -> ());
    let deadline =
      let call_dl = Option.map (fun d -> now () +. d) pol.call_deadline_ms in
      let query_dl = match t.ctx with Some cx -> cx.cx_deadline | None -> None in
      match (call_dl, query_dl) with
      | Some a, Some b -> Some (Float.min a b)
      | (Some _ as d), None | None, (Some _ as d) -> d
      | None, None -> None
    in
    let trip () =
      br.br_state <- Open (now () +. pol.breaker_cooldown_ms);
      br.br_opens <- br.br_opens + 1;
      event "breaker.opens"
    in
    let on_failure () =
      br.br_failures <- br.br_failures + 1;
      match br.br_state with
      | Half_open -> trip () (* failed probe re-opens immediately *)
      | Closed when pol.breaker && br.br_failures >= pol.breaker_threshold -> trip ()
      | Closed | Open _ -> ()
    in
    let give_up e =
      incr gave_up_total;
      event "retry.gave_up";
      raise e
    in
    let rec attempt n =
      match f () with
      | r ->
        (match br.br_state with
        | Half_open -> event "breaker.closes"
        | Closed | Open _ -> ());
        br.br_state <- Closed;
        br.br_failures <- 0;
        r
      | exception (Source.Query_rejected _ as e) ->
        (* A capability rejection is the source answering, not failing:
           never retried, never a breaker strike. *)
        raise e
      | exception (Source.Unavailable _ as e) ->
        on_failure ();
        let tripped = match br.br_state with Open _ -> true | Closed | Half_open -> false in
        if tripped || n >= pol.max_retries then give_up e
        else
          let delay = backoff_ms pol t.rng ~attempt:n in
          (match deadline with
          | Some dl when now () +. delay > dl -> give_up e
          | Some _ | None ->
            Obs_clock.advance delay;
            incr retries_total;
            event "retry.retries";
            attempt (n + 1))
    in
    attempt 0
  end

(* Availability probes go through the same retry/breaker machinery:
   [false] counts as a failure (strike + optional retry), and an open
   breaker answers [false] without touching the source. *)
let call_available t ~source f =
  if not (active t.pol) then f ()
  else
    match
      call t ~source (fun () -> if f () then () else raise (Source.Unavailable source))
    with
    | () -> true
    | exception Source.Unavailable _ -> false

let policy_to_string pol =
  Printf.sprintf
    "retry: retries=%d backoff=%.0f..%.0fms jitter=%.2f deadline=%s breaker=%s \
     threshold=%d cooldown=%.0fms stale=%s"
    pol.max_retries pol.base_backoff_ms pol.max_backoff_ms pol.jitter
    (match pol.call_deadline_ms with
    | Some d -> Printf.sprintf "%.0fms" d
    | None -> "none")
    (if pol.breaker then "on" else "off")
    pol.breaker_threshold pol.breaker_cooldown_ms
    (if pol.serve_stale then "on" else "off")

let report t =
  let b = Buffer.create 128 in
  Buffer.add_string b (policy_to_string t.pol);
  Buffer.add_char b '\n';
  let entries =
    Hashtbl.fold (fun name br acc -> (name, br) :: acc) t.breakers []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, br) ->
      Buffer.add_string b
        (Printf.sprintf "  breaker %s: %s failures=%d opens=%d\n" name
           (breaker_state_name t name) br.br_failures br.br_opens))
    entries;
  Buffer.contents b
