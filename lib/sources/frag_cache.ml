(* The fragment-level result cache: raw source round trips, keyed by
   (source, shipped fragment), below Mat_cache's whole-query cache.  A
   hit short-circuits the network simulator entirely, so repeated
   fragments — within a lens burst or across queries — cost nothing on
   the virtual clock.  Expiry is LRU for capacity and TTL on the
   virtual clock for freshness (section 3.3's trade-off). *)

type stats = {
  mutable frag_hits : int;
  mutable frag_misses : int;
  mutable frag_evictions : int;
  mutable frag_expirations : int;
  mutable frag_invalidations : int;
}

(* Registry mirror, so fragment-cache behaviour shows up in `stats`
   reports next to the whole-query cache counters. *)
let m_hits = Obs_metrics.counter "fragcache.hits"
let m_misses = Obs_metrics.counter "fragcache.misses"
let m_evictions = Obs_metrics.counter "fragcache.evictions"
let m_expirations = Obs_metrics.counter "fragcache.expirations"
let m_invalidations = Obs_metrics.counter "fragcache.invalidations"

type entry = {
  value : Source.result;
  entry_source : string;
  born_vms : float;
  mutable last_used : int;
}

type t = {
  cap : int;
  ttl_ms : float option;
  table : (string * string, entry) Hashtbl.t;
  st : stats;
  mutable clock : int;
}

let create ?ttl_ms ~capacity () =
  {
    cap = capacity;
    ttl_ms;
    table = Hashtbl.create (max 1 capacity);
    st =
      {
        frag_hits = 0;
        frag_misses = 0;
        frag_evictions = 0;
        frag_expirations = 0;
        frag_invalidations = 0;
      };
    clock = 0;
  }

let enabled t = t.cap > 0

let touch t entry =
  t.clock <- t.clock + 1;
  entry.last_used <- t.clock

let expired t entry =
  match t.ttl_ms with
  | None -> false
  | Some ttl -> Obs_clock.virtual_ms () -. entry.born_vms > ttl

let get t ~source ~fragment =
  if t.cap = 0 then None
  else
    let key = (source, fragment) in
    match Hashtbl.find_opt t.table key with
    | Some entry when expired t entry ->
      Hashtbl.remove t.table key;
      t.st.frag_expirations <- t.st.frag_expirations + 1;
      Obs_metrics.inc m_expirations;
      t.st.frag_misses <- t.st.frag_misses + 1;
      Obs_metrics.inc m_misses;
      None
    | Some entry ->
      t.st.frag_hits <- t.st.frag_hits + 1;
      Obs_metrics.inc m_hits;
      touch t entry;
      Some entry.value
    | None ->
      t.st.frag_misses <- t.st.frag_misses + 1;
      Obs_metrics.inc m_misses;
      None

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key entry ->
      match !victim with
      | None -> victim := Some (key, entry.last_used)
      | Some (_, lu) -> if entry.last_used < lu then victim := Some (key, entry.last_used))
    t.table;
  match !victim with
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.st.frag_evictions <- t.st.frag_evictions + 1;
    Obs_metrics.inc m_evictions
  | None -> ()

let put t ~source ~fragment value =
  if t.cap > 0 then begin
    let key = (source, fragment) in
    if (not (Hashtbl.mem t.table key)) && Hashtbl.length t.table >= t.cap then evict_lru t;
    let entry =
      { value; entry_source = source; born_vms = Obs_clock.virtual_ms (); last_used = 0 }
    in
    touch t entry;
    Hashtbl.replace t.table key entry
  end

let invalidate_source t source =
  let victims =
    Hashtbl.fold
      (fun key entry acc -> if String.equal entry.entry_source source then key :: acc else acc)
      t.table []
  in
  List.iter (fun k -> Hashtbl.remove t.table k) victims;
  t.st.frag_invalidations <- t.st.frag_invalidations + List.length victims;
  Obs_metrics.inc ~by:(List.length victims) m_invalidations;
  List.length victims

let clear t = Hashtbl.reset t.table

let size t = Hashtbl.length t.table
let capacity t = t.cap
let ttl_ms t = t.ttl_ms
let stats t = t.st

let hit_rate t =
  let total = t.st.frag_hits + t.st.frag_misses in
  if total = 0 then 0.0 else float_of_int t.st.frag_hits /. float_of_int total
