(* The fragment-level result cache: raw source round trips, keyed by
   (source, shipped fragment), below Mat_cache's whole-query cache.  A
   hit short-circuits the network simulator entirely, so repeated
   fragments — within a lens burst or across queries — cost nothing on
   the virtual clock.  Expiry is LRU for capacity and TTL on the
   virtual clock for freshness (section 3.3's trade-off).

   Recency is an intrusive doubly-linked list threaded through the
   entries (head = most recent, tail = victim), so touching an entry
   and evicting the LRU are both O(1) — the old implementation scanned
   the whole table per insertion at capacity. *)

type stats = {
  mutable frag_hits : int;
  mutable frag_misses : int;
  mutable frag_evictions : int;
  mutable frag_expirations : int;
  mutable frag_invalidations : int;
}

(* Registry mirror, so fragment-cache behaviour shows up in `stats`
   reports next to the whole-query cache counters. *)
let m_hits = Obs_metrics.counter "fragcache.hits"
let m_misses = Obs_metrics.counter "fragcache.misses"
let m_evictions = Obs_metrics.counter "fragcache.evictions"
let m_expirations = Obs_metrics.counter "fragcache.expirations"
let m_invalidations = Obs_metrics.counter "fragcache.invalidations"

type entry = {
  key : string * string;
  value : Source.result;
  entry_source : string;
  born_vms : float;
  mutable prev : entry option;  (* toward the head (more recent) *)
  mutable next : entry option;  (* toward the tail (less recent) *)
}

type t = {
  cap : int;
  ttl_ms : float option;
  table : (string * string, entry) Hashtbl.t;
  (* TTL-expired values parked for partial-mode stale serving: [get]
     still removes and miss-counts them exactly as before, but the last
     known value stays reachable through [get_stale] until the key is
     refreshed or the source invalidated. *)
  stale : (string * string, Source.result) Hashtbl.t;
  st : stats;
  mutable head : entry option;  (* most recently used *)
  mutable tail : entry option;  (* least recently used — the victim *)
}

let create ?ttl_ms ~capacity () =
  {
    cap = capacity;
    ttl_ms;
    table = Hashtbl.create (max 1 capacity);
    stale = Hashtbl.create 8;
    st =
      {
        frag_hits = 0;
        frag_misses = 0;
        frag_evictions = 0;
        frag_expirations = 0;
        frag_invalidations = 0;
      };
    head = None;
    tail = None;
  }

let enabled t = t.cap > 0

(* ---- intrusive recency list ---- *)

let unlink t entry =
  (match entry.prev with
  | Some p -> p.next <- entry.next
  | None -> t.head <- entry.next);
  (match entry.next with
  | Some n -> n.prev <- entry.prev
  | None -> t.tail <- entry.prev);
  entry.prev <- None;
  entry.next <- None

let push_front t entry =
  entry.prev <- None;
  entry.next <- t.head;
  (match t.head with
  | Some h -> h.prev <- Some entry
  | None -> t.tail <- Some entry);
  t.head <- Some entry

let touch t entry =
  match t.head with
  | Some h when h == entry -> ()
  | _ ->
    unlink t entry;
    push_front t entry

let remove t entry =
  Hashtbl.remove t.table entry.key;
  unlink t entry

(* ---- cache operations ---- *)

let expired t entry =
  match t.ttl_ms with
  | None -> false
  | Some ttl -> Obs_clock.virtual_ms () -. entry.born_vms > ttl

let get t ~source ~fragment =
  if t.cap = 0 then None
  else
    let key = (source, fragment) in
    match Hashtbl.find_opt t.table key with
    | Some entry when expired t entry ->
      Hashtbl.replace t.stale key entry.value;
      remove t entry;
      t.st.frag_expirations <- t.st.frag_expirations + 1;
      Obs_metrics.inc m_expirations;
      t.st.frag_misses <- t.st.frag_misses + 1;
      Obs_metrics.inc m_misses;
      None
    | Some entry ->
      t.st.frag_hits <- t.st.frag_hits + 1;
      Obs_metrics.inc m_hits;
      touch t entry;
      Some entry.value
    | None ->
      t.st.frag_misses <- t.st.frag_misses + 1;
      Obs_metrics.inc m_misses;
      None

(* Last-known-value lookup for partial-mode degradation: a live entry
   (even one past its TTL) or a parked expired value.  No hit/miss
   accounting — the caller decides whether staleness was acceptable. *)
let get_stale t ~source ~fragment =
  if t.cap = 0 then None
  else
    let key = (source, fragment) in
    match Hashtbl.find_opt t.table key with
    | Some entry -> Some entry.value
    | None -> Hashtbl.find_opt t.stale key

let evict_lru t =
  match t.tail with
  | Some victim ->
    remove t victim;
    t.st.frag_evictions <- t.st.frag_evictions + 1;
    Obs_metrics.inc m_evictions
  | None -> ()

let put t ~source ~fragment value =
  if t.cap > 0 then begin
    let key = (source, fragment) in
    Hashtbl.remove t.stale key;
    (match Hashtbl.find_opt t.table key with
    | Some old -> remove t old
    | None -> if Hashtbl.length t.table >= t.cap then evict_lru t);
    let entry =
      {
        key;
        value;
        entry_source = source;
        born_vms = Obs_clock.virtual_ms ();
        prev = None;
        next = None;
      }
    in
    push_front t entry;
    Hashtbl.replace t.table key entry
  end

let invalidate_source t source =
  let victims =
    Hashtbl.fold
      (fun _ entry acc -> if String.equal entry.entry_source source then entry :: acc else acc)
      t.table []
  in
  List.iter (remove t) victims;
  (* Stale values are no fresher than the live ones: an invalidation
     means the source changed, so stale serving must not resurrect
     pre-mutation extents either. *)
  let stale_victims =
    Hashtbl.fold
      (fun ((s, _) as key) _ acc -> if String.equal s source then key :: acc else acc)
      t.stale []
  in
  List.iter (Hashtbl.remove t.stale) stale_victims;
  t.st.frag_invalidations <- t.st.frag_invalidations + List.length victims;
  Obs_metrics.inc ~by:(List.length victims) m_invalidations;
  List.length victims

let clear t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.stale;
  t.head <- None;
  t.tail <- None

let size t = Hashtbl.length t.table
let capacity t = t.cap
let ttl_ms t = t.ttl_ms
let stats t = t.st

let hit_rate t =
  let total = t.st.frag_hits + t.st.frag_misses in
  if total = 0 then 0.0 else float_of_int t.st.frag_hits /. float_of_int total
