(** Retry, deadline, and circuit-breaker policy for remote source calls.

    The mediator routes every source [execute]/[documents] call through
    {!call}: transient {!Source.Unavailable} failures are retried with
    capped exponential backoff and seeded jitter {e charged to the
    virtual clock} (so backoff composes with gather-round lanes), while
    a per-source circuit breaker (closed → open → half-open probe) makes
    a persistently dead source fail fast instead of paying latency plus
    backoff per fragment.

    The {!default_policy} is inert — no retries, breaker off — and then
    {!call} is a pure passthrough, so resilience is strictly opt-in.
    All [retry.*]/[breaker.*] metrics are registered lazily at event
    time. *)

type policy = {
  max_retries : int;  (** extra attempts after the first failure *)
  base_backoff_ms : float;  (** delay before the first retry *)
  max_backoff_ms : float;  (** exponential backoff cap *)
  jitter : float;  (** seeded jitter as a fraction of the capped delay *)
  call_deadline_ms : float option;
      (** per-call retry budget in virtual ms; a retry whose backoff
          would overshoot it gives up instead *)
  breaker : bool;  (** enable per-source circuit breakers *)
  breaker_threshold : int;  (** consecutive failures before opening *)
  breaker_cooldown_ms : float;  (** open time before a half-open probe *)
  serve_stale : bool;
      (** partial mode may serve TTL-expired {!Frag_cache} extents for a
          source whose retry budget is exhausted *)
}

val default_policy : policy
(** No retries, no deadline, breaker off, stale serving off: resolves
    every call to a plain passthrough. *)

val active : policy -> bool
(** True when the policy does anything (retries > 0 or breaker on). *)

val backoff_ms : policy -> Prng.t -> attempt:int -> float
(** The delay charged before retry [attempt] (0-based):
    [min (base * 2^attempt) max] plus [jitter * capped * uniform(0,1)]
    drawn from [rng].  Exposed for the arithmetic tests. *)

type t
(** Mutable policy engine: current policy, jitter PRNG, and per-source
    breaker states.  One per {!Med_catalog.t}. *)

val create : ?seed:int -> unit -> t
(** Fresh engine with {!default_policy}; [seed] (default 11) drives the
    jitter stream. *)

val policy : t -> policy

val set_policy : t -> policy -> unit
(** Install a policy and reset all breaker state. *)

val call : t -> source:string -> (unit -> 'a) -> 'a
(** Run [f] under the current policy.  {!Source.Unavailable} is retried
    up to [max_retries] times, each retry preceded by {!backoff_ms}
    advanced on the virtual clock; {!Source.Query_rejected} is never
    retried and never counts as a breaker strike.  When the budget
    (retries, per-call deadline, or enclosing {!with_query} deadline) is
    exhausted, the original exception is re-raised and [retry.gave_up]
    counted.  An open breaker raises {!Source.Unavailable} immediately
    ([breaker.fast_fails]) until its cool-down expires, then admits a
    single half-open probe. *)

val call_available : t -> source:string -> (unit -> bool) -> bool
(** Availability probes through the same machinery: [false] counts as a
    failure (breaker strike, optional retry), and an open breaker
    answers [false] without touching the source. *)

val with_query : t -> ?partial:bool -> ?deadline_ms:float -> (unit -> 'a) -> 'a * string list
(** Run one query under a per-query retry budget: [deadline_ms] (say, a
    server request deadline) bounds the {e total} virtual time the
    query's retries may consume, combining with any enclosing query's
    deadline by [min].  [partial] enables stale serving (see
    {!stale_ok}).  Returns [f]'s result and the sources that were served
    stale during the query. *)

val stale_ok : t -> bool
(** True when the policy allows stale serving and the current
    {!with_query} context is partial-mode. *)

val note_stale : t -> source:string -> unit
(** Record that [source] was answered from a stale cache extent; lands
    in the [with_query] stale list and [retry.stale_served]. *)

val counters : unit -> int * int * int
(** Process-wide [(retries, gave_up, fast_fails)] totals — snapshot
    around a pull to attribute them to an access (EXPLAIN ANALYZE). *)

val breaker_state_name : t -> string -> string
(** ["closed"], ["open"], or ["half-open"] for a source name. *)

val policy_to_string : policy -> string
(** One-line rendering, e.g.
    ["retry: retries=2 backoff=4..64ms jitter=0.25 deadline=none breaker=on threshold=3 cooldown=100ms stale=off"]. *)

val report : t -> string
(** {!policy_to_string} plus one line per source breaker with its state,
    consecutive failures, and open count.  Newline-terminated. *)
