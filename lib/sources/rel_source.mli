(** Relational source adapter: wraps an in-memory {!Rel_db.t} behind the
    {!Source.t} contract.  Accepts SQL text (what the mediator's compiler
    emits), exports table schemas, and serves the canonical XML view of
    each table. *)

val make : Rel_db.t -> Source.t
(** Full capability: select, project, join and aggregate fragments are
    all accepted. *)

val make_limited : Source.capability -> Rel_db.t -> Source.t
(** Same adapter with a restricted capability record — used to model
    legacy sources that only accept scans or single-table selections.
    Queries outside the declared capability raise
    {!Source.Query_rejected}. *)
