(* Mutable backing store, shared by the closures of one source; retained
   in a registry so add_document can find it again. *)
type store = {
  mutable docs : (string * Dtree.t) list;
}

let stores : (string, store) Hashtbl.t = Hashtbl.create 8

let capability =
  {
    Source.can_select = true;
    can_project = false;
    can_join = false;
    can_aggregate = false;
    can_path = true;
  }

(* Registry key for one document's index entry; the source-wide prefix
   "src:<name>/" is what catalog invalidation drops. *)
let idx_name source doc = "src:" ^ source ^ "/" ^ doc

let register_docs name docs =
  List.iter (fun (doc, tree) -> Idx_manager.register (idx_name name doc) [ tree ]) docs

let reindex name =
  match Hashtbl.find_opt stores name with
  | Some store -> register_docs name store.docs
  | None -> ()

let make ~name docs =
  let store = { docs } in
  Hashtbl.replace stores name store;
  register_docs name docs;
  let find doc_name =
    match List.assoc_opt doc_name store.docs with
    | Some tree -> [ tree ]
    | None ->
      raise (Source.Query_rejected (Printf.sprintf "unknown document %s in %s" doc_name name))
  in
  let execute = function
    | Source.Q_scan doc_name -> Source.R_trees (find doc_name)
    | Source.Q_path (doc_name, path) ->
      let trees = find doc_name in
      (* Self-heal after a source invalidation dropped this document's
         entry: re-register from the live trees (no refetch, so wrapped
         network layers charge nothing). *)
      let key = idx_name name doc_name in
      if (not (Idx_manager.is_registered key)) && Idx_manager.mode () <> Idx_manager.Off
      then Idx_manager.register key trees;
      let matches =
        List.concat_map
          (fun tree ->
            match Idx_manager.try_select tree path with
            | Some (results, _) -> results
            | None ->
              List.map Dtree.of_xml_element
                (Xml_path.select path (Dtree.to_xml_element tree)))
          trees
      in
      Source.R_trees matches
    | Source.Q_sql _ -> raise (Source.Query_rejected "XML stores do not accept SQL")
    | Source.Q_batch _ -> raise (Source.Query_rejected "XML stores do not accept batches")
  in
  {
    Source.name;
    kind = Source.Xml_store;
    capability;
    relations = (fun () -> []);
    document_names = (fun () -> List.map fst store.docs);
    documents = find;
    execute;
    is_available = (fun () -> true);
  }

let of_xml_strings ~name texts =
  make ~name
    (List.map
       (fun (doc_name, text) ->
         (doc_name, Dtree.of_xml_element (Xml_parser.parse_element_exn text)))
       texts)

let add_document source doc_name tree =
  match Hashtbl.find_opt stores source.Source.name with
  | Some store ->
    store.docs <- store.docs @ [ (doc_name, tree) ];
    Idx_manager.register (idx_name source.Source.name doc_name) [ tree ]
  | None -> invalid_arg "Xml_source.add_document: not an Xml_source-backed source"
