let count_tables_in_select select =
  let rec count_from = function
    | Sql_ast.From_table _ -> 1
    | Sql_ast.From_join (lhs, _, _, _) -> 1 + count_from lhs
  in
  match select.Sql_ast.from with
  | None -> 0
  | Some f -> count_from f

let check_capability (cap : Source.capability) sql_text =
  match Sql_parser.parse sql_text with
  | Error m -> raise (Source.Query_rejected m)
  | Ok (Sql_ast.Select s) ->
    if (not cap.Source.can_select) && s.Sql_ast.where <> None then
      raise (Source.Query_rejected "source cannot evaluate WHERE");
    if (not cap.Source.can_join) && count_tables_in_select s > 1 then
      raise (Source.Query_rejected "source cannot evaluate joins");
    if
      (not cap.Source.can_aggregate)
      && (s.Sql_ast.group_by <> []
         || List.exists
              (function Sql_ast.Agg_item _ -> true | _ -> false)
              s.Sql_ast.items)
    then raise (Source.Query_rejected "source cannot evaluate aggregates");
    if
      (not cap.Source.can_project)
      && not
           (List.for_all
              (function Sql_ast.Star | Sql_ast.Qualified_star _ -> true | _ -> false)
              s.Sql_ast.items)
    then raise (Source.Query_rejected "source cannot project")
  | Ok _ -> () (* DML/DDL pass through; the engine enforces the rest *)

let make_limited cap db =
  let relations () =
    List.filter_map
      (fun tname -> Option.map Rel_table.schema (Rel_db.table db tname))
      (Rel_db.tables db)
  in
  let documents name =
    match Rel_db.table db name with
    | Some table -> [ Source.table_document name (Rel_table.to_list table) ]
    | None -> raise (Source.Query_rejected (Printf.sprintf "unknown table %s" name))
  in
  let rec execute q =
    match q with
    | Source.Q_batch members ->
      (* One round trip for several fragments: each member evaluates as
         it would alone; the batch shares the connection (the network
         simulator charges its latency once per execute call). *)
      if List.exists (function Source.Q_batch _ -> true | _ -> false) members then
        raise (Source.Query_rejected "nested batches are not accepted");
      Source.R_batch (List.map execute members)
    | Source.Q_sql text ->
      check_capability cap text;
      (try
         match Rel_db.exec db text with
         | Rel_db.Rows (names, rows) -> Source.R_rows (names, rows)
         | Rel_db.Affected n -> Source.R_rows ([ "affected" ], [ Tuple.make [ ("affected", Value.Int n) ] ])
         | Rel_db.Created -> Source.R_rows ([], [])
       with Rel_db.Sql_error m -> raise (Source.Query_rejected m))
    | Source.Q_scan name -> (
      match Rel_db.table db name with
      | Some table ->
        Source.R_rows (Dschema.column_names (Rel_table.schema table), Rel_table.to_list table)
      | None -> raise (Source.Query_rejected (Printf.sprintf "unknown table %s" name)))
    | Source.Q_path (name, path) ->
      let doc = List.hd (documents name) in
      let matches = Xml_path.select path (Dtree.to_xml_element doc) in
      Source.R_trees (List.map Dtree.of_xml_element matches)
  in
  {
    Source.name = Rel_db.name db;
    kind = Source.Relational;
    capability = cap;
    relations;
    document_names = (fun () -> Rel_db.tables db);
    documents;
    execute;
    is_available = (fun () -> true);
  }

let make db = make_limited Source.full_capability db
