(* The scatter-gather fetch scheduler.

   A compiled plan's source accesses are collected up front and issued
   as overlapped rounds on the virtual clock: a round of K fetches
   (configurable fan-out) costs the maximum of its members' virtual
   costs — Obs_clock's round/lane accounting — instead of their sum,
   while per-source Net_sim stats keep charging every call's true cost.
   Identical tasks (same dedup key) collapse into one execution whose
   outcome is shared, exceptions included, so an offline source skips
   identically whether its fragment ran once or was shared. *)

type mode =
  | Sequential
  | Gather

type options = {
  mode : mode;
  fanout : int;
}

let default_fanout = 4

let default_options = { mode = Sequential; fanout = default_fanout }

let gather_options ?(fanout = default_fanout) () = { mode = Gather; fanout }

let mode_to_string = function
  | Sequential -> "seq"
  | Gather -> "gather"

let mode_of_string = function
  | "seq" | "sequential" -> Some Sequential
  | "gather" | "scatter-gather" -> Some Gather
  | _ -> None

let options_to_string o =
  Printf.sprintf "mode=%s fanout=%d" (mode_to_string o.mode) o.fanout

type 'a outcome = {
  result : ('a, exn) result;
  round : int;   (* 0-based round the execution ran in *)
  shared : bool; (* served by another task's execution (dedup) *)
}

let m_rounds = Obs_metrics.counter "fetch.rounds"
let m_tasks = Obs_metrics.counter "fetch.tasks"
let m_dedup = Obs_metrics.counter "fetch.dedup_hits"

type 'a task = {
  task_key : string;
  task_run : unit -> 'a;
}

let rec chunks k = function
  | [] -> []
  | l ->
    let rec take n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (n - 1) (x :: acc) rest
    in
    let round, rest = take k [] l in
    round :: chunks k rest

let run ~fanout tasks =
  let fanout = max 1 fanout in
  Obs_metrics.inc ~by:(List.length tasks) m_tasks;
  (* Dedup: the first task with a key executes; later ones share. *)
  let order : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let unique = ref [] in
  List.iter
    (fun t ->
      if not (Hashtbl.mem order t.task_key) then begin
        Hashtbl.add order t.task_key (Hashtbl.length order);
        unique := t :: !unique
      end)
    tasks;
  let unique = List.rev !unique in
  Obs_metrics.inc ~by:(List.length tasks - List.length unique) m_dedup;
  let outcomes : (string, ('a, exn) result * int) Hashtbl.t =
    Hashtbl.create (List.length unique)
  in
  let m_round_ms = Obs_metrics.histogram "fetch.round_ms" in
  List.iteri
    (fun round_ix round ->
      Obs_metrics.inc m_rounds;
      Obs_clock.begin_round ();
      List.iter
        (fun t ->
          Obs_clock.begin_lane ();
          let result = try Ok (t.task_run ()) with e -> Error e in
          Hashtbl.replace outcomes t.task_key (result, round_ix))
        round;
      Obs_metrics.observe m_round_ms (Obs_clock.end_round ()))
    (chunks fanout unique);
  let seen_first : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.map
    (fun t ->
      let result, round = Hashtbl.find outcomes t.task_key in
      let shared = Hashtbl.mem seen_first t.task_key in
      Hashtbl.replace seen_first t.task_key ();
      { result; round; shared })
    tasks
