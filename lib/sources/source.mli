(** The source abstraction: what the integration engine knows about one
    underlying system.

    Section 2.1: the compiler "considers both the type of the underlying
    source, information concerning the layout of the data within the
    sources, and the presence of indices".  A source is a record of
    closures — name, capabilities, schema/document exports, and an
    execute function accepting the source's native query form (SQL text
    for relational sources, a path for XML stores, plain scans for flat
    files). *)

type kind =
  | Relational  (** accepts SQL; exports tables *)
  | Xml_store   (** accepts path selections; exports documents *)
  | Flat_file   (** scan only *)

(** What the source can evaluate on its side — consulted by the
    capability-aware optimizer (section 4). *)
type capability = {
  can_select : bool;     (** predicate pushdown *)
  can_project : bool;    (** column pruning *)
  can_join : bool;       (** multi-relation fragments *)
  can_aggregate : bool;
  can_path : bool;       (** path-expression pushdown *)
}

type query =
  | Q_sql of string          (** SQL text (relational sources) *)
  | Q_path of string * Xml_path.t  (** document name, path (XML stores) *)
  | Q_scan of string         (** table or document name *)
  | Q_batch of query list
      (** several fragments shipped as one round trip (the fetch
          scheduler's batching hook).  Sources that cannot batch raise
          {!Query_rejected} and the scheduler falls back to individual
          calls; batches never nest. *)

type result =
  | R_rows of string list * Tuple.t list  (** column names, rows *)
  | R_trees of Dtree.t list
  | R_batch of result list
      (** one result per member of a {!Q_batch}, in order *)

exception Unavailable of string
(** Raised by [execute]/[documents] when the source is offline
    (section 3.4). *)

exception Query_rejected of string
(** The query form is outside this source's capabilities. *)

type t = {
  name : string;
  kind : kind;
  capability : capability;
  relations : unit -> Dschema.relational list;
      (** exported relational schemas ([] for non-relational sources) *)
  document_names : unit -> string list;
      (** exported document names; relational sources export one virtual
          document per table *)
  documents : string -> Dtree.t list;
      (** the XML view of a named export: for a relational table [t],
          a single tree [<t><row>...</row>...</t>] *)
  execute : query -> result;
  is_available : unit -> bool;
}

val full_capability : capability
val scan_only : capability

val rows_of_result : result -> Tuple.t list
(** @raise Invalid_argument when the result holds trees. *)

val trees_of_result : result -> Dtree.t list
(** Rows are converted to row trees when needed. *)

val table_document : string -> Tuple.t list -> Dtree.t
(** [<name>] wrapping one [<row>] child per tuple — the canonical XML
    view of a relation. *)
