(** Flat-file source: CSV content exposed as scan-only relations —
    the "legacy system" end of the capability spectrum. *)

val make : name:string -> (string * string) list -> Source.t
(** [make ~name files] with [(file_name, csv_text)] pairs; the first row
    of each file is the header.  Capability: scan only — every pushed
    predicate is rejected, forcing client-side filtering. *)
