let make ~name files =
  let tables =
    List.map
      (fun (file_name, text) ->
        let rows = Csv.to_tuples ~header:true text in
        let schema = Dschema.infer_relational file_name rows in
        (file_name, schema, rows))
      files
  in
  let find file_name =
    match List.find_opt (fun (fname, _, _) -> String.equal fname file_name) tables with
    | Some entry -> entry
    | None ->
      raise (Source.Query_rejected (Printf.sprintf "unknown file %s in %s" file_name name))
  in
  let execute = function
    | Source.Q_scan file_name ->
      let _, schema, rows = find file_name in
      Source.R_rows (Dschema.column_names schema, rows)
    | Source.Q_sql _ -> raise (Source.Query_rejected "flat files do not accept SQL")
    | Source.Q_path _ -> raise (Source.Query_rejected "flat files do not accept paths")
    | Source.Q_batch _ -> raise (Source.Query_rejected "flat files do not accept batches")
  in
  {
    Source.name;
    kind = Source.Flat_file;
    capability = Source.scan_only;
    relations = (fun () -> List.map (fun (_, schema, _) -> schema) tables);
    document_names = (fun () -> List.map (fun (fname, _, _) -> fname) tables);
    documents =
      (fun file_name ->
        let fname, _, rows = find file_name in
        [ Source.table_document fname rows ]);
    execute;
    is_available = (fun () -> true);
  }
