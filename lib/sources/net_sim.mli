(** Deterministic network simulation around a source.

    Substitutes for the paper's corporate-network deployment: each
    wrapped call pays a fixed per-query latency plus a per-tuple (or
    per-tree-node) transfer cost on a {e virtual clock}, and may be
    sampled offline with a configured probability.  Virtual time makes
    the warehousing-vs-virtual trade-off (section 3.3) and the
    availability experiments (section 3.4) measurable without wall-clock
    sleeps, and the seeded PRNG makes every run reproducible. *)

type profile = {
  latency_ms : float;       (** fixed cost per remote call *)
  per_tuple_ms : float;     (** marginal cost per shipped row / tree node *)
  availability : float;     (** probability a call finds the source up *)
}

val default_profile : profile
(** 5 ms latency, 0.01 ms/tuple, always available. *)

(** {1 Fault schedules}

    Deterministic, seeded fault injection on top of the base profile.
    Every window is expressed in virtual milliseconds and tested against
    {!Obs_clock.virtual_ms} at call time, so a schedule is replayable
    from the seed alone, and a retry policy that backs off past a
    transient window recovers by construction. *)

type fault =
  | Offline of { off_from : float; off_until : float }
      (** Calls in [\[off_from, off_until)] raise {!Source.Unavailable}
          after charging the call latency.  [off_until = infinity] makes
          the outage persistent. *)
  | Slow of { slow_from : float; slow_until : float; factor : float; jitter_ms : float }
      (** Calls in the window pay [latency_ms * factor] plus a seeded
          jitter uniform in [\[0, jitter_ms)]. *)
  | Midstream of { mid_from : float; mid_until : float; prefix : int }
      (** Calls in the window ship (and charge for) at most [prefix]
          tuples of the real result, then raise {!Source.Unavailable}.
          The truncated result is discarded, never returned. *)

type schedule = fault list

val offline_window : from_ms:float -> until_ms:float -> fault
(** Transient outage covering [\[from_ms, until_ms)]. *)

val persistently_offline : fault
(** An {!Offline} window from 0 to infinity. *)

val slow_window :
  ?jitter_ms:float -> from_ms:float -> until_ms:float -> factor:float -> unit -> fault
(** Latency-multiplier window; [jitter_ms] defaults to 0. *)

val midstream_window : from_ms:float -> until_ms:float -> prefix:int -> fault
(** Mid-stream failure window: ship [prefix] tuples, then die. *)

val availability_schedule :
  seed:int -> availability:float -> period_ms:float -> horizon_ms:float -> schedule
(** One seeded transient {!Offline} window of [(1 - availability) *
    period_ms] per period until the horizon — the fault-schedule analog
    of the profile's [availability] coin, but bounded and replayable, so
    retries that outlast a window always recover.  Empty when
    [availability >= 1.0]. *)

val fault_to_string : fault -> string
(** Compact rendering for reports and logs, e.g. ["off:0:40"]. *)

type stats = {
  mutable calls : int;
  mutable rejected : int;        (** capability rejections *)
  mutable failed : int;          (** unavailability events *)
  mutable tuples_shipped : int;
  mutable virtual_ms : float;    (** accumulated simulated time *)
}

val wrap : ?seed:int -> ?faults:schedule -> profile -> Source.t -> Source.t * stats
(** The wrapped source charges the profile's costs into [stats] on every
    [execute]/[documents] call and raises {!Source.Unavailable} when the
    availability sample fails.  [is_available] consults (and advances)
    the same sample stream.  [faults] (default none) overlays a
    deterministic {!schedule}: offline and mid-stream windows count into
    [stats.failed] and the lazily registered [fault.*] counters. *)

val profile_of : string -> profile option
(** The profile a source name was last {!wrap}ped with, if any — how
    the cost-based optimizer learns each source's latency and transfer
    parameters.  Process-global, last wrap wins. *)

val reset : stats -> unit

val stats_to_string : stats -> string
