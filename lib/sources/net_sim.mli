(** Deterministic network simulation around a source.

    Substitutes for the paper's corporate-network deployment: each
    wrapped call pays a fixed per-query latency plus a per-tuple (or
    per-tree-node) transfer cost on a {e virtual clock}, and may be
    sampled offline with a configured probability.  Virtual time makes
    the warehousing-vs-virtual trade-off (section 3.3) and the
    availability experiments (section 3.4) measurable without wall-clock
    sleeps, and the seeded PRNG makes every run reproducible. *)

type profile = {
  latency_ms : float;       (** fixed cost per remote call *)
  per_tuple_ms : float;     (** marginal cost per shipped row / tree node *)
  availability : float;     (** probability a call finds the source up *)
}

val default_profile : profile
(** 5 ms latency, 0.01 ms/tuple, always available. *)

type stats = {
  mutable calls : int;
  mutable rejected : int;        (** capability rejections *)
  mutable failed : int;          (** unavailability events *)
  mutable tuples_shipped : int;
  mutable virtual_ms : float;    (** accumulated simulated time *)
}

val wrap : ?seed:int -> profile -> Source.t -> Source.t * stats
(** The wrapped source charges the profile's costs into [stats] on every
    [execute]/[documents] call and raises {!Source.Unavailable} when the
    availability sample fails.  [is_available] consults (and advances)
    the same sample stream. *)

val profile_of : string -> profile option
(** The profile a source name was last {!wrap}ped with, if any — how
    the cost-based optimizer learns each source's latency and transfer
    parameters.  Process-global, last wrap wins. *)

val reset : stats -> unit

val stats_to_string : stats -> string
