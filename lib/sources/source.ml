type kind =
  | Relational
  | Xml_store
  | Flat_file

type capability = {
  can_select : bool;
  can_project : bool;
  can_join : bool;
  can_aggregate : bool;
  can_path : bool;
}

type query =
  | Q_sql of string
  | Q_path of string * Xml_path.t
  | Q_scan of string
  | Q_batch of query list

type result =
  | R_rows of string list * Tuple.t list
  | R_trees of Dtree.t list
  | R_batch of result list

exception Unavailable of string
exception Query_rejected of string

type t = {
  name : string;
  kind : kind;
  capability : capability;
  relations : unit -> Dschema.relational list;
  document_names : unit -> string list;
  documents : string -> Dtree.t list;
  execute : query -> result;
  is_available : unit -> bool;
}

let full_capability =
  { can_select = true; can_project = true; can_join = true; can_aggregate = true; can_path = true }

let scan_only =
  { can_select = false; can_project = false; can_join = false; can_aggregate = false;
    can_path = false }

let rows_of_result = function
  | R_rows (_, rows) -> rows
  | R_trees _ -> invalid_arg "Source.rows_of_result: tree result"
  | R_batch _ -> invalid_arg "Source.rows_of_result: batch result"

let table_document name rows =
  Dtree.node name (List.map (fun row -> Dtree.of_tuple "row" row) rows)

let trees_of_result = function
  | R_trees trees -> trees
  | R_rows (_, rows) -> List.map (fun row -> Dtree.of_tuple "row" row) rows
  | R_batch _ -> invalid_arg "Source.trees_of_result: batch result"
