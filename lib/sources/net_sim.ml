type profile = {
  latency_ms : float;
  per_tuple_ms : float;
  availability : float;
}

let default_profile = { latency_ms = 5.0; per_tuple_ms = 0.01; availability = 1.0 }

type stats = {
  mutable calls : int;
  mutable rejected : int;
  mutable failed : int;
  mutable tuples_shipped : int;
  mutable virtual_ms : float;
}

let new_stats () =
  { calls = 0; rejected = 0; failed = 0; tuples_shipped = 0; virtual_ms = 0.0 }

let reset s =
  s.calls <- 0;
  s.rejected <- 0;
  s.failed <- 0;
  s.tuples_shipped <- 0;
  s.virtual_ms <- 0.0

let result_volume = function
  | Source.R_rows (_, rows) -> List.length rows
  | Source.R_trees trees -> List.fold_left (fun acc t -> acc + Dtree.size t) 0 trees

let wrap ?(seed = 1) profile inner =
  let stats = new_stats () in
  let rng = Prng.create (seed lxor Hashtbl.hash inner.Source.name) in
  let sample_up () = Prng.bernoulli rng profile.availability in
  let charge_call () =
    stats.calls <- stats.calls + 1;
    stats.virtual_ms <- stats.virtual_ms +. profile.latency_ms
  in
  let charge_volume n =
    stats.tuples_shipped <- stats.tuples_shipped + n;
    stats.virtual_ms <- stats.virtual_ms +. (profile.per_tuple_ms *. float_of_int n)
  in
  let guard f =
    charge_call ();
    if not (sample_up ()) then begin
      stats.failed <- stats.failed + 1;
      raise (Source.Unavailable inner.Source.name)
    end;
    try f ()
    with Source.Query_rejected _ as e ->
      stats.rejected <- stats.rejected + 1;
      raise e
  in
  let execute q =
    guard (fun () ->
        let r = inner.Source.execute q in
        charge_volume (result_volume r);
        r)
  in
  let documents doc_name =
    guard (fun () ->
        let trees = inner.Source.documents doc_name in
        charge_volume (List.fold_left (fun acc t -> acc + Dtree.size t) 0 trees);
        trees)
  in
  let wrapped =
    {
      inner with
      Source.execute;
      documents;
      is_available = (fun () -> sample_up ());
    }
  in
  (wrapped, stats)

let stats_to_string s =
  Printf.sprintf "calls=%d rejected=%d failed=%d tuples=%d virtual_ms=%.2f" s.calls s.rejected
    s.failed s.tuples_shipped s.virtual_ms
