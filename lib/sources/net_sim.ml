type profile = {
  latency_ms : float;
  per_tuple_ms : float;
  availability : float;
}

let default_profile = { latency_ms = 5.0; per_tuple_ms = 0.01; availability = 1.0 }

type fault =
  | Offline of { off_from : float; off_until : float }
  | Slow of { slow_from : float; slow_until : float; factor : float; jitter_ms : float }
  | Midstream of { mid_from : float; mid_until : float; prefix : int }

type schedule = fault list

let offline_window ~from_ms ~until_ms =
  Offline { off_from = from_ms; off_until = until_ms }

let persistently_offline = Offline { off_from = 0.0; off_until = infinity }

let slow_window ?(jitter_ms = 0.0) ~from_ms ~until_ms ~factor () =
  Slow { slow_from = from_ms; slow_until = until_ms; factor; jitter_ms }

let midstream_window ~from_ms ~until_ms ~prefix =
  Midstream { mid_from = from_ms; mid_until = until_ms; prefix }

(* One offline window of (1 - availability) * period per period, placed
   at a seeded offset, until the horizon.  Every window is bounded, so a
   retry policy whose backoff crosses the window always recovers. *)
let availability_schedule ~seed ~availability ~period_ms ~horizon_ms =
  if availability >= 1.0 || period_ms <= 0.0 then []
  else
    let rng = Prng.create seed in
    let down = (1.0 -. availability) *. period_ms in
    let slack = period_ms -. down in
    let rec go from acc =
      if from >= horizon_ms then List.rev acc
      else
        let off = from +. (if slack > 0.0 then Prng.float rng slack else 0.0) in
        go (from +. period_ms)
          (Offline { off_from = off; off_until = off +. down } :: acc)
    in
    go 0.0 []

let fault_to_string = function
  | Offline { off_from; off_until } when off_until = infinity ->
    Printf.sprintf "off:%.0f:inf" off_from
  | Offline { off_from; off_until } ->
    Printf.sprintf "off:%.0f:%.0f" off_from off_until
  | Slow { slow_from; slow_until; factor; _ } ->
    Printf.sprintf "slow:%.0f:%.0f:x%.1f" slow_from slow_until factor
  | Midstream { mid_from; mid_until; prefix } ->
    Printf.sprintf "mid:%.0f:%.0f:%d" mid_from mid_until prefix

type stats = {
  mutable calls : int;
  mutable rejected : int;
  mutable failed : int;
  mutable tuples_shipped : int;
  mutable virtual_ms : float;
}

let new_stats () =
  { calls = 0; rejected = 0; failed = 0; tuples_shipped = 0; virtual_ms = 0.0 }

let reset s =
  s.calls <- 0;
  s.rejected <- 0;
  s.failed <- 0;
  s.tuples_shipped <- 0;
  s.virtual_ms <- 0.0

let rec result_volume = function
  | Source.R_rows (_, rows) -> List.length rows
  | Source.R_trees trees -> List.fold_left (fun acc t -> acc + Dtree.size t) 0 trees
  | Source.R_batch results -> List.fold_left (fun acc r -> acc + result_volume r) 0 results

(* Name -> profile registry so cost models can read back the network
   parameters a source was wrapped with.  Last wrap wins, mirroring how
   registries resolve re-registered names. *)
let profiles : (string, profile) Hashtbl.t = Hashtbl.create 16

let profile_of name = Hashtbl.find_opt profiles name

(* Fault counters are created lazily at event time so that fault-free
   runs keep the registered-metric listing byte-identical. *)
let fault_event name = Obs_metrics.inc (Obs_metrics.counter ("fault." ^ name))

let wrap ?(seed = 1) ?(faults = []) profile inner =
  Hashtbl.replace profiles inner.Source.name profile;
  let stats = new_stats () in
  let rng = Prng.create (seed lxor Hashtbl.hash inner.Source.name) in
  let sample_up () = Prng.bernoulli rng profile.availability in
  (* Fault windows are pure functions of the virtual clock, so a run is
     replayable from (seed, schedule) alone — and a retry policy that
     backs off past a transient window deterministically recovers. *)
  let offline_at now =
    List.exists
      (function
        | Offline { off_from; off_until } -> now >= off_from && now < off_until
        | Slow _ | Midstream _ -> false)
      faults
  in
  let slow_at now =
    List.find_map
      (function
        | Slow { slow_from; slow_until; factor; jitter_ms }
          when now >= slow_from && now < slow_until ->
          Some (factor, jitter_ms)
        | Slow _ | Offline _ | Midstream _ -> None)
      faults
  in
  let midstream_at now =
    List.find_map
      (function
        | Midstream { mid_from; mid_until; prefix }
          when now >= mid_from && now < mid_until ->
          Some prefix
        | Midstream _ | Offline _ | Slow _ -> None)
      faults
  in
  (* Registry metrics mirror the local stats record so the CLI's
     per-source breakdown sees every wrapped source. *)
  let metric field = Printf.sprintf "source.%s.%s" inner.Source.name field in
  let m_calls = Obs_metrics.counter (metric "calls") in
  let m_rejected = Obs_metrics.counter (metric "rejected") in
  let m_failed = Obs_metrics.counter (metric "failed") in
  let m_tuples = Obs_metrics.counter (metric "tuples") in
  let m_latency = Obs_metrics.histogram (metric "latency_ms") in
  let charge_call () =
    stats.calls <- stats.calls + 1;
    Obs_metrics.inc m_calls;
    let latency =
      match slow_at (Obs_clock.virtual_ms ()) with
      | Some (factor, jitter_ms) ->
        fault_event "slow_calls";
        (profile.latency_ms *. factor)
        +. (if jitter_ms > 0.0 then Prng.float rng jitter_ms else 0.0)
      | None -> profile.latency_ms
    in
    stats.virtual_ms <- stats.virtual_ms +. latency
  in
  let charge_volume n =
    stats.tuples_shipped <- stats.tuples_shipped + n;
    Obs_metrics.inc ~by:n m_tuples;
    stats.virtual_ms <- stats.virtual_ms +. (profile.per_tuple_ms *. float_of_int n)
  in
  let fail_call event =
    stats.failed <- stats.failed + 1;
    Obs_metrics.inc m_failed;
    fault_event event
  in
  let guard f =
    (* Whatever happens inside, the call's full virtual cost lands on
       the shared virtual clock and the latency histogram. *)
    let before = stats.virtual_ms in
    let settle () =
      let delta = stats.virtual_ms -. before in
      Obs_clock.advance delta;
      Obs_metrics.observe m_latency delta
    in
    let offline = offline_at (Obs_clock.virtual_ms ()) in
    charge_call ();
    if offline then begin
      fail_call "offline_calls";
      settle ();
      raise (Source.Unavailable inner.Source.name)
    end;
    if not (sample_up ()) then begin
      stats.failed <- stats.failed + 1;
      Obs_metrics.inc m_failed;
      settle ();
      raise (Source.Unavailable inner.Source.name)
    end;
    match f () with
    | r ->
      settle ();
      r
    | exception (Source.Query_rejected _ as e) ->
      stats.rejected <- stats.rejected + 1;
      Obs_metrics.inc m_rejected;
      settle ();
      raise e
    | exception e ->
      settle ();
      raise e
  in
  (* A mid-stream failure ships (and charges for) a prefix of the
     result, then dies.  The truncated result is discarded here, never
     returned, so callers can't accidentally cache or learn from it. *)
  let midstream_guard volume_of f =
    guard (fun () ->
        let r = f () in
        match midstream_at (Obs_clock.virtual_ms ()) with
        | Some prefix ->
          charge_volume (min prefix (volume_of r));
          fail_call "midstream_failures";
          raise (Source.Unavailable inner.Source.name)
        | None ->
          charge_volume (volume_of r);
          r)
  in
  let execute q = midstream_guard result_volume (fun () -> inner.Source.execute q) in
  let documents doc_name =
    midstream_guard
      (fun trees -> List.fold_left (fun acc t -> acc + Dtree.size t) 0 trees)
      (fun () -> inner.Source.documents doc_name)
  in
  let wrapped =
    {
      inner with
      Source.execute;
      documents;
      is_available =
        (fun () -> (not (offline_at (Obs_clock.virtual_ms ()))) && sample_up ());
    }
  in
  (wrapped, stats)

let stats_to_string s =
  (* Same formatting path as the CLI stats tables (Obs_report). *)
  Obs_report.cells
    [
      Obs_report.int_cell "calls" s.calls;
      Obs_report.int_cell "rejected" s.rejected;
      Obs_report.int_cell "failed" s.failed;
      Obs_report.int_cell "tuples" s.tuples_shipped;
      Obs_report.ms_cell "virtual_ms" s.virtual_ms;
    ]
