type profile = {
  latency_ms : float;
  per_tuple_ms : float;
  availability : float;
}

let default_profile = { latency_ms = 5.0; per_tuple_ms = 0.01; availability = 1.0 }

type stats = {
  mutable calls : int;
  mutable rejected : int;
  mutable failed : int;
  mutable tuples_shipped : int;
  mutable virtual_ms : float;
}

let new_stats () =
  { calls = 0; rejected = 0; failed = 0; tuples_shipped = 0; virtual_ms = 0.0 }

let reset s =
  s.calls <- 0;
  s.rejected <- 0;
  s.failed <- 0;
  s.tuples_shipped <- 0;
  s.virtual_ms <- 0.0

let rec result_volume = function
  | Source.R_rows (_, rows) -> List.length rows
  | Source.R_trees trees -> List.fold_left (fun acc t -> acc + Dtree.size t) 0 trees
  | Source.R_batch results -> List.fold_left (fun acc r -> acc + result_volume r) 0 results

(* Name -> profile registry so cost models can read back the network
   parameters a source was wrapped with.  Last wrap wins, mirroring how
   registries resolve re-registered names. *)
let profiles : (string, profile) Hashtbl.t = Hashtbl.create 16

let profile_of name = Hashtbl.find_opt profiles name

let wrap ?(seed = 1) profile inner =
  Hashtbl.replace profiles inner.Source.name profile;
  let stats = new_stats () in
  let rng = Prng.create (seed lxor Hashtbl.hash inner.Source.name) in
  let sample_up () = Prng.bernoulli rng profile.availability in
  (* Registry metrics mirror the local stats record so the CLI's
     per-source breakdown sees every wrapped source. *)
  let metric field = Printf.sprintf "source.%s.%s" inner.Source.name field in
  let m_calls = Obs_metrics.counter (metric "calls") in
  let m_rejected = Obs_metrics.counter (metric "rejected") in
  let m_failed = Obs_metrics.counter (metric "failed") in
  let m_tuples = Obs_metrics.counter (metric "tuples") in
  let m_latency = Obs_metrics.histogram (metric "latency_ms") in
  let charge_call () =
    stats.calls <- stats.calls + 1;
    Obs_metrics.inc m_calls;
    stats.virtual_ms <- stats.virtual_ms +. profile.latency_ms
  in
  let charge_volume n =
    stats.tuples_shipped <- stats.tuples_shipped + n;
    Obs_metrics.inc ~by:n m_tuples;
    stats.virtual_ms <- stats.virtual_ms +. (profile.per_tuple_ms *. float_of_int n)
  in
  let guard f =
    (* Whatever happens inside, the call's full virtual cost lands on
       the shared virtual clock and the latency histogram. *)
    let before = stats.virtual_ms in
    let settle () =
      let delta = stats.virtual_ms -. before in
      Obs_clock.advance delta;
      Obs_metrics.observe m_latency delta
    in
    charge_call ();
    if not (sample_up ()) then begin
      stats.failed <- stats.failed + 1;
      Obs_metrics.inc m_failed;
      settle ();
      raise (Source.Unavailable inner.Source.name)
    end;
    match f () with
    | r ->
      settle ();
      r
    | exception (Source.Query_rejected _ as e) ->
      stats.rejected <- stats.rejected + 1;
      Obs_metrics.inc m_rejected;
      settle ();
      raise e
    | exception e ->
      settle ();
      raise e
  in
  let execute q =
    guard (fun () ->
        let r = inner.Source.execute q in
        charge_volume (result_volume r);
        r)
  in
  let documents doc_name =
    guard (fun () ->
        let trees = inner.Source.documents doc_name in
        charge_volume (List.fold_left (fun acc t -> acc + Dtree.size t) 0 trees);
        trees)
  in
  let wrapped =
    {
      inner with
      Source.execute;
      documents;
      is_available = (fun () -> sample_up ());
    }
  in
  (wrapped, stats)

let stats_to_string s =
  (* Same formatting path as the CLI stats tables (Obs_report). *)
  Obs_report.cells
    [
      Obs_report.int_cell "calls" s.calls;
      Obs_report.int_cell "rejected" s.rejected;
      Obs_report.int_cell "failed" s.failed;
      Obs_report.int_cell "tuples" s.tuples_shipped;
      Obs_report.ms_cell "virtual_ms" s.virtual_ms;
    ]
