type t = {
  sources : (string, Source.t) Hashtbl.t;
}

let create () = { sources = Hashtbl.create 16 }

let register t src =
  if Hashtbl.mem t.sources src.Source.name then
    invalid_arg (Printf.sprintf "Src_registry.register: duplicate source %S" src.Source.name);
  Hashtbl.replace t.sources src.Source.name src

let remove t name = Hashtbl.remove t.sources name

let find t name = Hashtbl.find_opt t.sources name

let find_exn t name =
  match find t name with
  | Some src -> src
  | None -> raise Not_found

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.sources [] |> List.sort String.compare

let resolve_export t name =
  match String.index_opt name '.' with
  | Some i ->
    let sname = String.sub name 0 i in
    let export = String.sub name (i + 1) (String.length name - i - 1) in
    Option.map (fun src -> (src, export)) (find t sname)
  | None -> (
    match find t name with
    | None -> None
    | Some src -> (
      match src.Source.document_names () with
      | [ single ] -> Some ((src : Source.t), single)
      | exports ->
        (* A document export named like the source itself wins. *)
        if List.mem name exports then Some (src, name)
        else Some (src, name)))

let documents t name =
  match resolve_export t name with
  | None -> raise Not_found
  | Some (src, export) -> src.Source.documents export

let publish_availability t =
  Hashtbl.iter
    (fun name src ->
      let g = Obs_metrics.gauge (Printf.sprintf "source.%s.available" name) in
      Obs_metrics.set_gauge g (if src.Source.is_available () then 1.0 else 0.0))
    t.sources

let exports t =
  Hashtbl.fold
    (fun sname src acc ->
      List.map (fun e -> sname ^ "." ^ e) (src.Source.document_names ()) @ acc)
    t.sources []
  |> List.sort String.compare
