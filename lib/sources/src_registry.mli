(** Registry of data sources known to the integration engine — the part
    of the metadata server (section 2.1) that maps names to adapters.

    Export naming convention: a query addresses a source export as
    ["source.export"] (e.g. ["crm.customers"] for table [customers] of
    relational source [crm]), or just ["source"] when the source has a
    single export or exports a document under its own name. *)

type t

val create : unit -> t

val register : t -> Source.t -> unit
(** @raise Invalid_argument on duplicate source names. *)

val remove : t -> string -> unit

val find : t -> string -> Source.t option
val find_exn : t -> string -> Source.t
val names : t -> string list

val resolve_export : t -> string -> (Source.t * string) option
(** Split ["source.export"] (or bare ["source"]) into the source and the
    export name it serves.  For a bare name with a relational source of
    exactly one table, that table is the export. *)

val documents : t -> string -> Dtree.t list
(** The XML view of an export — the resolver used by direct evaluation.
    @raise Not_found for unknown names.
    @raise Source.Unavailable when the source is offline. *)

val publish_availability : t -> unit
(** Probe every source's [is_available] and publish the result as a
    [source.<name>.available] gauge in the metrics registry, feeding the
    per-source breakdown of {!Obs_report}.  Note that probing a
    {!Net_sim}-wrapped source consumes one availability sample. *)

val exports : t -> string list
(** Every addressable ["source.export"] name. *)
