type catalog = {
  table_of : string -> Rel_table.t option;
}

type access =
  | Seq_scan
  | Index_eq of string * Value.t
  | Index_range of string * (Value.t * bool) option * (Value.t * bool) option

type plan =
  | Scan of {
      table : string;
      binding : string;
      access : access;
      filter : Sql_ast.expr option;
      est : float;
    }
  | Nl_join of {
      left : plan;
      right : plan;
      kind : Sql_ast.join_kind;
      cond : Sql_ast.expr option;
      est : float;
    }
  | Hash_join of {
      left : plan;
      right : plan;
      kind : Sql_ast.join_kind;
      left_key : Sql_ast.expr;
      right_key : Sql_ast.expr;
      residual : Sql_ast.expr option;
      est : float;
    }

exception Plan_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Plan_error m)) fmt

let estimated_rows = function
  | Scan { est; _ } | Nl_join { est; _ } | Hash_join { est; _ } -> est

let rec bindings_of_plan = function
  | Scan { binding; _ } -> [ binding ]
  | Nl_join { left; right; _ } | Hash_join { left; right; _ } ->
    bindings_of_plan left @ bindings_of_plan right

(* ------------------------------------------------------------------ *)
(* Selectivity heuristics                                              *)
(* ------------------------------------------------------------------ *)

let rec selectivity = function
  | Sql_ast.Binop (Sql_ast.Eq, _, _) -> 0.05
  | Sql_ast.Binop ((Sql_ast.Lt | Sql_ast.Le | Sql_ast.Gt | Sql_ast.Ge), _, _) -> 0.3
  | Sql_ast.Binop (Sql_ast.Neq, _, _) -> 0.9
  | Sql_ast.Binop (Sql_ast.And, a, b) -> selectivity a *. selectivity b
  | Sql_ast.Binop (Sql_ast.Or, a, b) ->
    min 1.0 (selectivity a +. selectivity b)
  | Sql_ast.Like _ -> 0.25
  | Sql_ast.Between _ -> 0.25
  | Sql_ast.In_list (_, es) -> min 1.0 (0.05 *. float_of_int (List.length es))
  | Sql_ast.Is_null _ -> 0.1
  | Sql_ast.Is_not_null _ -> 0.9
  | Sql_ast.Unop (Sql_ast.Not, e) -> 1.0 -. selectivity e
  | Sql_ast.Lit (Value.Bool true) -> 1.0
  | Sql_ast.Lit (Value.Bool false) -> 0.0
  | _ -> 0.5

(* ------------------------------------------------------------------ *)
(* Alias analysis                                                      *)
(* ------------------------------------------------------------------ *)

type from_entry = {
  fe_table : string;
  fe_alias : string;
  (* ON condition attached to the join that introduced this entry, along
     with its kind; the first entry has none. *)
  fe_join : (Sql_ast.join_kind * Sql_ast.expr) option;
}

let rec flatten_from = function
  | Sql_ast.From_table { table; alias } ->
    [ { fe_table = table; fe_alias = Option.value ~default:table alias; fe_join = None } ]
  | Sql_ast.From_join (lhs, kind, { table; alias }, cond) ->
    flatten_from lhs
    @ [
        {
          fe_table = table;
          fe_alias = Option.value ~default:table alias;
          fe_join = Some (kind, cond);
        };
      ]

(* The set of aliases a predicate mentions.  Unqualified columns are
   attributed by searching the table schemas. *)
let aliases_of_expr entries catalog e =
  let owner_of_column name =
    let owners =
      List.filter
        (fun fe ->
          match catalog.table_of fe.fe_table with
          | Some t -> Dschema.find_column (Rel_table.schema t) name <> None
          | None -> false)
        entries
    in
    List.map (fun fe -> fe.fe_alias) owners
  in
  let cols = Sql_ast.expr_columns e in
  List.concat_map
    (fun (q, n) ->
      match q with
      | Some q -> [ q ]
      | None -> owner_of_column n)
    cols
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* Access-path selection                                               *)
(* ------------------------------------------------------------------ *)

(* Match a conjunct as [col op literal] over this alias, in either
   orientation. *)
let as_column_literal alias table e =
  let owns name = Dschema.find_column (Rel_table.schema table) name <> None in
  let col_of = function
    | Sql_ast.Col (Some q, n) when String.equal q alias && owns n -> Some n
    | Sql_ast.Col (None, n) when owns n -> Some n
    | _ -> None
  in
  match e with
  | Sql_ast.Binop (op, lhs, Sql_ast.Lit v) -> (
    match col_of lhs with
    | Some n -> Some (n, op, v)
    | None -> None)
  | Sql_ast.Binop (op, Sql_ast.Lit v, rhs) -> (
    match col_of rhs with
    | Some n ->
      let flip =
        match op with
        | Sql_ast.Lt -> Sql_ast.Gt
        | Sql_ast.Le -> Sql_ast.Ge
        | Sql_ast.Gt -> Sql_ast.Lt
        | Sql_ast.Ge -> Sql_ast.Le
        | op -> op
      in
      Some (n, flip, v)
    | None -> None)
  | _ -> None

(* Choose the best access path for a table given its single-table
   conjuncts.  Returns (access, used conjuncts, leftover conjuncts). *)
let choose_access table alias conjuncts =
  (* Equality on an indexed column wins. *)
  let classified =
    List.map (fun e -> (e, as_column_literal alias table e)) conjuncts
  in
  let eq_pick =
    List.find_opt
      (fun (_, m) ->
        match m with
        | Some (n, Sql_ast.Eq, _) -> Rel_table.index_served table n `Eq
        | _ -> false)
      classified
  in
  match eq_pick with
  | Some ((used, Some (n, _, v)) : Sql_ast.expr * _) ->
    let rest = List.filter (fun e -> e != used) conjuncts in
    (Index_eq (n, v), rest)
  | _ -> (
    (* Collect range bounds per B+tree-indexed column. *)
    let range_cols =
      List.filter_map
        (fun (e, m) ->
          match m with
          | Some (n, (Sql_ast.Lt | Sql_ast.Le | Sql_ast.Gt | Sql_ast.Ge), _)
            when Rel_table.index_served table n `Range -> Some (e, Option.get m)
          | _ -> None)
        classified
    in
    match range_cols with
    | [] -> (Seq_scan, conjuncts)
    | (_, (first_col, _, _)) :: _ ->
      let on_col = List.filter (fun (_, (n, _, _)) -> String.equal n first_col) range_cols in
      let lo = ref None and hi = ref None and used = ref [] in
      List.iter
        (fun (e, (_, op, v)) ->
          match op with
          | Sql_ast.Gt ->
            lo := Some (v, false);
            used := e :: !used
          | Sql_ast.Ge ->
            lo := Some (v, true);
            used := e :: !used
          | Sql_ast.Lt ->
            hi := Some (v, false);
            used := e :: !used
          | Sql_ast.Le ->
            hi := Some (v, true);
            used := e :: !used
          | _ -> ())
        on_col;
      let rest = List.filter (fun e -> not (List.memq e !used)) conjuncts in
      (Index_range (first_col, !lo, !hi), rest))

let access_est table access =
  let n = float_of_int (Rel_table.row_count table) in
  match access with
  | Seq_scan -> n
  | Index_eq _ -> max 1.0 (n *. 0.01)
  | Index_range _ -> max 1.0 (n *. 0.3)

let scan_plan catalog fe conjuncts =
  match catalog.table_of fe.fe_table with
  | None -> fail "unknown table %s" fe.fe_table
  | Some table ->
    let access, rest = choose_access table fe.fe_alias conjuncts in
    let filter = Sql_ast.conjoin rest in
    let est =
      access_est table access
      *. (match filter with Some f -> selectivity f | None -> 1.0)
    in
    Scan { table = fe.fe_table; binding = fe.fe_alias; access; filter; est = max 1.0 est }

(* ------------------------------------------------------------------ *)
(* Join planning                                                       *)
(* ------------------------------------------------------------------ *)

(* Try to split [cond] into an equi-join key pair between [left_aliases]
   and [right_aliases], plus a residual. *)
let equi_split entries catalog left_aliases right_aliases cond =
  let conjuncts = Sql_ast.conjuncts cond in
  let is_key_pair e =
    match e with
    | Sql_ast.Binop (Sql_ast.Eq, a, b) -> (
      let aa = aliases_of_expr entries catalog a in
      let ab = aliases_of_expr entries catalog b in
      let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
      if aa <> [] && ab <> [] then
        if subset aa left_aliases && subset ab right_aliases then Some (a, b)
        else if subset aa right_aliases && subset ab left_aliases then Some (b, a)
        else None
      else None)
    | _ -> None
  in
  let rec pick acc = function
    | [] -> None
    | e :: rest -> (
      match is_key_pair e with
      | Some (lk, rk) -> Some (lk, rk, Sql_ast.conjoin (List.rev_append acc rest))
      | None -> pick (e :: acc) rest)
  in
  pick [] conjuncts

let join_est left right cond =
  let l = estimated_rows left and r = estimated_rows right in
  let sel = match cond with Some c -> selectivity c | None -> 1.0 in
  max 1.0 (l *. r *. sel)

let make_join entries catalog kind left right cond =
  let la = bindings_of_plan left and ra = bindings_of_plan right in
  match cond with
  | None -> Nl_join { left; right; kind; cond = None; est = join_est left right None }
  | Some c -> (
    match equi_split entries catalog la ra c with
    | Some (lk, rk, residual) ->
      Hash_join
        { left; right; kind; left_key = lk; right_key = rk; residual;
          est = join_est left right (Some c) }
    | None -> Nl_join { left; right; kind; cond = Some c; est = join_est left right (Some c) })

let plan_select catalog (s : Sql_ast.select) =
  match s.Sql_ast.from with
  | None -> None
  | Some from ->
    let entries = flatten_from from in
    let aliases = List.map (fun fe -> fe.fe_alias) entries in
    let dup =
      List.find_opt
        (fun a -> List.length (List.filter (String.equal a) aliases) > 1)
        aliases
    in
    (match dup with
    | Some a -> fail "duplicate table alias %s" a
    | None -> ());
    let has_outer =
      List.exists
        (fun fe -> match fe.fe_join with Some (Sql_ast.Left_outer, _) -> true | _ -> false)
        entries
    in
    let where_conjuncts =
      match s.Sql_ast.where with Some w -> Sql_ast.conjuncts w | None -> []
    in
    if has_outer then begin
      (* Structural planning: joins in syntactic order, WHERE applied on
         top (outer-join null semantics make pushdown unsafe in general;
         we only push single-table conjuncts into the leftmost table). *)
      let first, rest =
        match entries with
        | first :: rest -> (first, rest)
        | [] -> fail "empty FROM"
      in
      let first_conj, remaining =
        List.partition
          (fun e -> aliases_of_expr entries catalog e = [ first.fe_alias ])
          where_conjuncts
      in
      let base = scan_plan catalog first first_conj in
      let joined =
        List.fold_left
          (fun acc fe ->
            let kind, cond =
              match fe.fe_join with
              | Some (k, c) -> (k, Some c)
              | None -> (Sql_ast.Inner, None)
            in
            let right = scan_plan catalog fe [] in
            make_join entries catalog kind acc right cond)
          base rest
      in
      match Sql_ast.conjoin remaining with
      | None -> Some joined
      | Some residual ->
        (* Apply as a residual nested-loop filter via an Nl_join with a
           single-sided condition: wrap in a filter-scan is not possible,
           so reuse Nl_join with a constant right side is ugly — instead
           attach to the top join when present. *)
        Some
          (match joined with
          | Nl_join j ->
            let cond =
              match j.cond with
              | Some c -> Some Sql_ast.(c &&& residual)
              | None -> Some residual
            in
            Nl_join { j with cond }
          | Hash_join j ->
            let residual' =
              match j.residual with
              | Some c -> Some Sql_ast.(c &&& residual)
              | None -> Some residual
            in
            Hash_join { j with residual = residual' }
          | Scan sc ->
            let filter =
              match sc.filter with
              | Some f -> Some Sql_ast.(f &&& residual)
              | None -> Some residual
            in
            Scan { sc with filter })
    end
    else begin
      (* Inner joins only: pool all conjuncts (ON + WHERE) and reorder. *)
      let all_conjuncts =
        where_conjuncts
        @ List.concat_map
            (fun fe ->
              match fe.fe_join with
              | Some (_, c) -> Sql_ast.conjuncts c
              | None -> [])
            entries
      in
      (* Single-table conjuncts go into scans. *)
      let single, multi =
        List.partition
          (fun e ->
            match aliases_of_expr entries catalog e with
            | [ _ ] -> true
            | _ -> false)
          all_conjuncts
      in
      let conj_for alias =
        List.filter (fun e -> aliases_of_expr entries catalog e = [ alias ]) single
      in
      let scans =
        List.map (fun fe -> (fe.fe_alias, scan_plan catalog fe (conj_for fe.fe_alias))) entries
      in
      (* Greedy left-deep join: start with the smallest scan; repeatedly
         join in the relation connected by a predicate (preferring the
         smallest result), falling back to the smallest cross product. *)
      let remaining_preds = ref multi in
      let covered aliases e =
        List.for_all (fun a -> List.mem a aliases) (aliases_of_expr entries catalog e)
      in
      let start =
        List.fold_left
          (fun best (_, p) ->
            match best with
            | None -> Some p
            | Some b -> if estimated_rows p < estimated_rows b then Some p else Some b)
          None scans
      in
      let start = match start with Some p -> p | None -> fail "empty FROM" in
      let start_alias = List.hd (bindings_of_plan start) in
      let pending = ref (List.filter (fun (a, _) -> a <> start_alias) scans) in
      let current = ref start in
      while !pending <> [] do
        let cur_aliases = bindings_of_plan !current in
        (* Candidate next relations with an applicable join predicate. *)
        let candidate_cost (alias, p) =
          let aliases' = alias :: cur_aliases in
          let applicable, _ = List.partition (covered aliases') !remaining_preds in
          let connected = applicable <> [] in
          let cond = Sql_ast.conjoin applicable in
          let est = join_est !current p cond in
          (connected, est, alias, p, applicable)
        in
        let cands = List.map candidate_cost !pending in
        let better (c1, e1, _, _, _) (c2, e2, _, _, _) =
          match c1, c2 with
          | true, false -> true
          | false, true -> false
          | _, _ -> e1 < e2
        in
        let best =
          List.fold_left
            (fun acc cand ->
              match acc with
              | None -> Some cand
              | Some b -> if better cand b then Some cand else acc)
            None cands
        in
        let _, _, alias, p, applicable = Option.get best in
        remaining_preds := List.filter (fun e -> not (List.memq e applicable)) !remaining_preds;
        current := make_join entries catalog Sql_ast.Inner !current p (Sql_ast.conjoin applicable);
        pending := List.filter (fun (a, _) -> a <> alias) !pending
      done;
      (* Any predicate still unapplied (e.g. referencing no alias, or a
         constant) is attached on top. *)
      let leftover = Sql_ast.conjoin !remaining_preds in
      match leftover with
      | None -> Some !current
      | Some residual ->
        Some
          (match !current with
          | Scan sc ->
            let filter =
              match sc.filter with
              | Some f -> Some Sql_ast.(f &&& residual)
              | None -> Some residual
            in
            Scan { sc with filter }
          | Nl_join j ->
            let cond =
              match j.cond with
              | Some c -> Some Sql_ast.(c &&& residual)
              | None -> Some residual
            in
            Nl_join { j with cond }
          | Hash_join j ->
            let residual' =
              match j.residual with
              | Some c -> Some Sql_ast.(c &&& residual)
              | None -> Some residual
            in
            Hash_join { j with residual = residual' })
    end

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)
(* ------------------------------------------------------------------ *)

let access_to_string = function
  | Seq_scan -> "seq"
  | Index_eq (c, v) -> Printf.sprintf "index-eq(%s = %s)" c (Value.to_display v)
  | Index_range (c, lo, hi) ->
    let bound label = function
      | None -> ""
      | Some (v, incl) ->
        Printf.sprintf " %s%s %s" label (if incl then "=" else "") (Value.to_display v)
    in
    Printf.sprintf "index-range(%s%s%s)" c (bound ">" lo) (bound "<" hi)

let explain plan =
  let buf = Buffer.create 256 in
  let rec go indent p =
    let pad = String.make (indent * 2) ' ' in
    match p with
    | Scan { table; binding; access; filter; est } ->
      Buffer.add_string buf
        (Printf.sprintf "%sSCAN %s AS %s [%s]%s (est %.0f)\n" pad table binding
           (access_to_string access)
           (match filter with
           | Some f -> " filter " ^ Sql_print.expr_to_string f
           | None -> "")
           est)
    | Nl_join { left; right; kind; cond; est } ->
      Buffer.add_string buf
        (Printf.sprintf "%sNESTED-LOOP %s%s (est %.0f)\n" pad
           (match kind with Sql_ast.Inner -> "INNER" | Sql_ast.Left_outer -> "LEFT")
           (match cond with
           | Some c -> " on " ^ Sql_print.expr_to_string c
           | None -> "")
           est);
      go (indent + 1) left;
      go (indent + 1) right
    | Hash_join { left; right; kind; left_key; right_key; residual; est } ->
      Buffer.add_string buf
        (Printf.sprintf "%sHASH-JOIN %s %s = %s%s (est %.0f)\n" pad
           (match kind with Sql_ast.Inner -> "INNER" | Sql_ast.Left_outer -> "LEFT")
           (Sql_print.expr_to_string left_key)
           (Sql_print.expr_to_string right_key)
           (match residual with
           | Some r -> " residual " ^ Sql_print.expr_to_string r
           | None -> "")
           est);
      go (indent + 1) left;
      go (indent + 1) right
  in
  go 0 plan;
  Buffer.contents buf
