(** A B+tree multimap.

    The ordered index structure behind [CREATE INDEX] in the relational
    substrate.  Keys are ordered by a user-supplied comparison; duplicate
    keys are allowed (each key holds a bag of values).  Leaves are linked
    for cheap range scans, which is what makes pushed-down range
    predicates profitable in experiment E3. *)

type ('k, 'v) t

val create : ?order:int -> cmp:('k -> 'k -> int) -> unit -> ('k, 'v) t
(** [order] is the maximum number of keys per node (default 32, minimum 4). *)

val insert : ('k, 'v) t -> 'k -> 'v -> unit

val remove : ('k, 'v) t -> 'k -> 'v -> bool
(** Remove one (key, value) pair (value compared with polymorphic
    equality).  Returns false when not present.  Leaves may underflow;
    this implementation tolerates sparse leaves rather than rebalancing
    on delete, trading strict height bounds for simplicity — the workload
    (source tables) is read-mostly. *)

val find_all : ('k, 'v) t -> 'k -> 'v list
(** All values bound to the key, in insertion order. *)

val mem : ('k, 'v) t -> 'k -> bool

val range :
  ('k, 'v) t -> ?lo:'k * bool -> ?hi:'k * bool -> unit -> ('k * 'v) list
(** [range t ~lo:(k, inclusive) ~hi:(k', inclusive') ()] returns pairs in
    key order.  Omitted bounds are unbounded. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** In key order. *)

val size : ('k, 'v) t -> int
(** Number of (key, value) pairs. *)

val height : ('k, 'v) t -> int

val check_invariants : ('k, 'v) t -> bool
(** Internal consistency: sortedness, key bounds, leaf links.  Used by
    property tests. *)
