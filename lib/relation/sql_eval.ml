exception Eval_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Eval_error m)) fmt

let resolve tup qualifier name =
  match qualifier with
  | Some q -> (
    let full = q ^ "." ^ name in
    match Tuple.get tup full with
    | Some v -> v
    | None -> (
      (* A bare-named field also answers a qualified reference when it is
         the only candidate (single-table queries need no prefixes). *)
      match Tuple.get tup name with
      | Some v -> v
      | None -> fail "unknown column %s.%s" q name))
  | None -> (
    match Tuple.get tup name with
    | Some v -> v
    | None -> (
      let suffix = "." ^ name in
      let candidates =
        List.filter
          (fun (fname, _) -> String.ends_with ~suffix fname)
          (Tuple.fields tup)
      in
      match candidates with
      | [ (_, v) ] -> v
      | [] -> fail "unknown column %s" name
      | _ :: _ :: _ -> fail "ambiguous column %s" name))

let like_match ~pattern s =
  let pn = String.length pattern and sn = String.length s in
  (* Classic two-pointer LIKE matcher with backtracking on '%'. *)
  let rec go pi si star_pi star_si =
    if pi < pn && pattern.[pi] = '%' then go (pi + 1) si (pi + 1) si
    else if si < sn && pi < pn && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_pi star_si
    else if si >= sn then pi >= pn || (pi < pn && pattern.[pi] = '%' && go (pi + 1) si star_pi star_si)
    else if star_pi >= 0 then go star_pi (star_si + 1) star_pi (star_si + 1)
    else false
  in
  go 0 0 (-1) (-1)

let scalar_functions =
  [ "upper"; "lower"; "length"; "abs"; "coalesce"; "substr"; "trim"; "round"; "concat" ]

let apply_function name args =
  match name, args with
  | "upper", [ Value.Null ] | "lower", [ Value.Null ] | "trim", [ Value.Null ] -> Value.Null
  | "upper", [ v ] -> Value.String (String.uppercase_ascii (Value.to_string v))
  | "lower", [ v ] -> Value.String (String.lowercase_ascii (Value.to_string v))
  | "trim", [ v ] -> Value.String (String.trim (Value.to_string v))
  | "length", [ Value.Null ] -> Value.Null
  | "length", [ v ] -> Value.Int (String.length (Value.to_string v))
  | "abs", [ Value.Null ] -> Value.Null
  | "abs", [ Value.Int i ] -> Value.Int (abs i)
  | "abs", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "round", [ Value.Null ] -> Value.Null
  | "round", [ Value.Float f ] -> Value.Int (int_of_float (Float.round f))
  | "round", [ Value.Int i ] -> Value.Int i
  | "coalesce", args ->
    let rec first = function
      | [] -> Value.Null
      | Value.Null :: rest -> first rest
      | v :: _ -> v
    in
    first args
  | "substr", [ v; Value.Int start ] ->
    let s = Value.to_string v in
    let start = max 1 start - 1 in
    if start >= String.length s then Value.String ""
    else Value.String (String.sub s start (String.length s - start))
  | "substr", [ v; Value.Int start; Value.Int count ] ->
    let s = Value.to_string v in
    let start = max 1 start - 1 in
    if start >= String.length s then Value.String ""
    else Value.String (String.sub s start (min count (String.length s - start)))
  | "concat", args ->
    Value.String (String.concat "" (List.map Value.to_string args))
  | name, args -> fail "unknown function %s/%d" name (List.length args)

let bool3 = function
  | None -> Value.Null
  | Some b -> Value.Bool b

let compare3 op a b =
  match Value.compare_sql a b with
  | None -> Value.Null
  | Some c ->
    let r =
      match op with
      | Sql_ast.Eq -> c = 0
      | Sql_ast.Neq -> c <> 0
      | Sql_ast.Lt -> c < 0
      | Sql_ast.Le -> c <= 0
      | Sql_ast.Gt -> c > 0
      | Sql_ast.Ge -> c >= 0
      | Sql_ast.Add | Sql_ast.Sub | Sql_ast.Mul | Sql_ast.Div | Sql_ast.And | Sql_ast.Or ->
        fail "compare3: not a comparison"
    in
    Value.Bool r

let rec eval tup expr =
  match expr with
  | Sql_ast.Col (q, n) -> resolve tup q n
  | Sql_ast.Lit v -> v
  | Sql_ast.Unop (Sql_ast.Neg, e) -> (
    match eval tup e with
    | Value.Null -> Value.Null
    | v -> (
      try Value.neg v with Invalid_argument _ -> fail "cannot negate %s" (Value.to_display v)))
  | Sql_ast.Unop (Sql_ast.Not, e) -> (
    match eval tup e with
    | Value.Null -> Value.Null
    | v -> Value.Bool (not (Value.is_truthy v)))
  | Sql_ast.Binop (Sql_ast.And, a, b) -> (
    (* Kleene AND: F dominates. *)
    match eval tup a with
    | Value.Bool false -> Value.Bool false
    | va -> (
      match eval tup b with
      | Value.Bool false -> Value.Bool false
      | vb -> (
        match va, vb with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Value.Bool (Value.is_truthy va && Value.is_truthy vb))))
  | Sql_ast.Binop (Sql_ast.Or, a, b) -> (
    match eval tup a with
    | Value.Bool true -> Value.Bool true
    | va -> (
      match eval tup b with
      | Value.Bool true -> Value.Bool true
      | vb -> (
        match va, vb with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Value.Bool (Value.is_truthy va || Value.is_truthy vb))))
  | Sql_ast.Binop ((Sql_ast.Eq | Sql_ast.Neq | Sql_ast.Lt | Sql_ast.Le | Sql_ast.Gt | Sql_ast.Ge) as op, a, b) ->
    compare3 op (eval tup a) (eval tup b)
  | Sql_ast.Binop (Sql_ast.Add, a, b) -> arith Value.add (eval tup a) (eval tup b)
  | Sql_ast.Binop (Sql_ast.Sub, a, b) -> arith Value.sub (eval tup a) (eval tup b)
  | Sql_ast.Binop (Sql_ast.Mul, a, b) -> arith Value.mul (eval tup a) (eval tup b)
  | Sql_ast.Binop (Sql_ast.Div, a, b) -> arith Value.div (eval tup a) (eval tup b)
  | Sql_ast.Fncall (name, args) -> apply_function name (List.map (eval tup) args)
  | Sql_ast.Like (e, pattern) -> (
    match eval tup e with
    | Value.Null -> Value.Null
    | v -> Value.Bool (like_match ~pattern (Value.to_string v)))
  | Sql_ast.In_list (e, es) -> (
    match eval tup e with
    | Value.Null -> Value.Null
    | v ->
      let vs = List.map (eval tup) es in
      if List.exists (fun x -> Value.compare_sql v x = Some 0) vs then Value.Bool true
      else if List.exists (fun x -> x = Value.Null) vs then Value.Null
      else Value.Bool false)
  | Sql_ast.Between (e, lo, hi) -> (
    let v = eval tup e and vlo = eval tup lo and vhi = eval tup hi in
    match Value.compare_sql v vlo, Value.compare_sql v vhi with
    | Some a, Some b -> Value.Bool (a >= 0 && b <= 0)
    | _, _ -> Value.Null)
  | Sql_ast.Is_null e -> bool3 (Some (eval tup e = Value.Null))
  | Sql_ast.Is_not_null e -> bool3 (Some (eval tup e <> Value.Null))

and arith f a b =
  try f a b
  with Invalid_argument _ ->
    fail "type error in arithmetic on %s and %s" (Value.to_display a) (Value.to_display b)

let eval_pred tup expr =
  match eval tup expr with
  | Value.Null -> false
  | v -> Value.is_truthy v
