(** Render {!Sql_ast} back to SQL text.

    This is the emission half of the mediator's compiler (section 2.1):
    translated fragments are printed and shipped to relational sources as
    text.  Output round-trips through {!Sql_parser}. *)

val expr_to_string : Sql_ast.expr -> string
(** Fully parenthesized where precedence requires it. *)

val select_to_string : Sql_ast.select -> string

val statement_to_string : Sql_ast.statement -> string

val value_literal : Value.t -> string
(** SQL literal syntax for a value (strings quoted with [''] doubling,
    dates as [DATE '...']). *)
