(** Render {!Sql_ast} back to SQL text.

    This is the emission half of the mediator's compiler (section 2.1):
    translated fragments are printed and shipped to relational sources as
    text.  Output round-trips through {!Sql_parser}. *)

val expr_to_string : Sql_ast.expr -> string
(** Fully parenthesized where precedence requires it. *)

val select_to_string : Sql_ast.select -> string

val statement_to_string : Sql_ast.statement -> string

val canonical_select : Sql_ast.select -> string
(** Normalized rendering for cache keys: table aliases renumbered
    [t0..tn] in FROM order (dropped entirely for a single unaliased
    table), WHERE/HAVING conjuncts sorted by rendered text with exact
    duplicates removed, no redundant whitespace.  Structurally identical
    fragments that differ only in alias choice or conjunct order — e.g.
    the re-renderings produced by [Srv_plancache] rebinding — map to the
    same string.  Not semantics-preserving as SQL to {e execute} (alias
    renaming changes qualified output names); keys only. *)

val value_literal : Value.t -> string
(** SQL literal syntax for a value (strings quoted with [''] doubling,
    dates as [DATE '...']). *)
