(** Physical planning for the relational substrate.

    The planner turns the FROM/WHERE part of a SELECT into a physical
    plan: access paths per table (sequential scan, index equality, index
    range) and a join tree (hash join for equi-joins, nested loop
    otherwise).  Inner-join-only queries are reordered greedily by
    estimated cardinality; any outer join freezes the syntactic order.

    Grouping, projection, ordering and limits are applied by
    {!Sql_exec} above the plan. *)

type catalog = {
  table_of : string -> Rel_table.t option;
}

type access =
  | Seq_scan
  | Index_eq of string * Value.t
      (** column and key; served by a hash or B+tree index *)
  | Index_range of string * (Value.t * bool) option * (Value.t * bool) option
      (** column, lo bound, hi bound (value, inclusive); B+tree only *)

type plan =
  | Scan of {
      table : string;
      binding : string;  (** alias fields are prefixed with *)
      access : access;
      filter : Sql_ast.expr option;  (** residual single-table predicate *)
      est : float;
    }
  | Nl_join of {
      left : plan;
      right : plan;
      kind : Sql_ast.join_kind;
      cond : Sql_ast.expr option;
      est : float;
    }
  | Hash_join of {
      left : plan;
      right : plan;
      kind : Sql_ast.join_kind;
      left_key : Sql_ast.expr;   (** evaluated against left tuples *)
      right_key : Sql_ast.expr;  (** evaluated against right tuples *)
      residual : Sql_ast.expr option;
      est : float;
    }

exception Plan_error of string

val plan_select : catalog -> Sql_ast.select -> plan option
(** [None] when the select has no FROM clause. *)

val estimated_rows : plan -> float

val bindings_of_plan : plan -> string list
(** Aliases produced, left to right. *)

val explain : plan -> string
(** Indented operator tree with access paths and estimates — the
    EXPLAIN output. *)

val selectivity : Sql_ast.expr -> float
(** Heuristic selectivity of a predicate (used for estimates). *)
