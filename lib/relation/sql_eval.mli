(** Evaluation of SQL expressions over tuples, with SQL's three-valued
    logic ([Value.Null] plays UNKNOWN). *)

exception Eval_error of string

val resolve : Tuple.t -> string option -> string -> Value.t
(** Column resolution against a tuple whose fields may be qualified
    ([alias.column]).  Unqualified references match a field named exactly,
    else a unique field with that suffix.
    @raise Eval_error on unknown or ambiguous references. *)

val eval : Tuple.t -> Sql_ast.expr -> Value.t
(** Evaluate a scalar expression.  Comparisons return [Bool] or [Null];
    [And]/[Or] follow Kleene logic.
    @raise Eval_error on unknown columns or functions. *)

val eval_pred : Tuple.t -> Sql_ast.expr -> bool
(** True only when the expression evaluates to a truthy non-null value —
    SQL WHERE semantics (UNKNOWN rows are dropped). *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE with [%] (any run) and [_] (any single char), case
    sensitive. *)

val scalar_functions : string list
(** Names accepted by [Fncall]: upper, lower, length, abs, coalesce,
    substr, trim, round, concat. *)
