(** Abstract syntax for the SQL subset the relational substrate accepts.

    This is also the *target language* of the mediator's compiler
    (section 2.1: "if an RDB is being queried, then the compiler generates
    SQL"), so the printer in {!Sql_print} round-trips through the parser.

    Supported statements: SELECT (joins, WHERE, GROUP BY, HAVING,
    ORDER BY, LIMIT, DISTINCT), CREATE TABLE, CREATE INDEX, INSERT,
    UPDATE, DELETE. *)

type binop =
  | Add | Sub | Mul | Div
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr =
  | Col of string option * string  (** optional table qualifier, column *)
  | Lit of Value.t
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Fncall of string * expr list   (** scalar functions: upper, lower, abs, length, coalesce, substr *)
  | Like of expr * string          (** pattern with [%] and [_] wildcards *)
  | In_list of expr * expr list
  | Between of expr * expr * expr
  | Is_null of expr
  | Is_not_null of expr

type agg_fn = Count | Count_star | Sum | Avg | Min | Max

type select_item =
  | Star
  | Qualified_star of string       (** [t.*] *)
  | Expr_item of expr * string option         (** expression AS alias *)
  | Agg_item of agg_fn * expr option * string option
      (** COUNT-star carries no expr; the others carry their argument *)

type table_ref = {
  table : string;
  alias : string option;
}

type join_kind = Inner | Left_outer

type from_clause =
  | From_table of table_ref
  | From_join of from_clause * join_kind * table_ref * expr  (** ON condition *)

type order_item = {
  order_expr : expr;
  ascending : bool;
}

type select = {
  distinct : bool;
  items : select_item list;
  from : from_clause option;   (** [None] for SELECT of constants *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  limit : int option;
}

type column_def = {
  cd_name : string;
  cd_ty : Value.ty;
  cd_nullable : bool;
  cd_primary : bool;
}

type statement =
  | Select of select
  | Create_table of string * column_def list
  | Create_index of { unique_ignored : bool; index_table : string; index_column : string; btree : bool }
  | Insert of string * string list option * Value.t list list
      (** table, optional column list, rows of literal values *)
  | Update of string * (string * expr) list * expr option
  | Delete of string * expr option
  | Drop_table of string

(** {1 Helpers} *)

val col : string -> expr
val qcol : string -> string -> expr
val lit_int : int -> expr
val lit_str : string -> expr
val ( &&& ) : expr -> expr -> expr
val ( ||| ) : expr -> expr -> expr
val eq : expr -> expr -> expr

val conjuncts : expr -> expr list
(** Flatten a tree of ANDs into its conjuncts. *)

val conjoin : expr list -> expr option
(** Inverse of {!conjuncts}; [None] for the empty list. *)

val expr_columns : expr -> (string option * string) list
(** All column references in an expression, left-to-right, duplicates
    preserved. *)

val agg_fn_name : agg_fn -> string
