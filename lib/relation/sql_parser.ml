exception Parse_error of string

type cursor = {
  toks : Sql_lexer.token array;
  mutable i : int;
}

let fail msg = raise (Parse_error msg)

let peek c = c.toks.(c.i)
let peek2 c = if c.i + 1 < Array.length c.toks then c.toks.(c.i + 1) else Sql_lexer.EOF
let advance c = c.i <- c.i + 1

let next c =
  let t = peek c in
  advance c;
  t

let expect_kw c kw =
  match next c with
  | Sql_lexer.KW k when k = kw -> ()
  | t -> fail (Printf.sprintf "expected %s, found %s" kw (Sql_lexer.token_to_string t))

let expect_sym c sym =
  match next c with
  | Sql_lexer.SYM s when s = sym -> ()
  | t -> fail (Printf.sprintf "expected %S, found %s" sym (Sql_lexer.token_to_string t))

let accept_kw c kw =
  match peek c with
  | Sql_lexer.KW k when k = kw ->
    advance c;
    true
  | _ -> false

let accept_sym c sym =
  match peek c with
  | Sql_lexer.SYM s when s = sym ->
    advance c;
    true
  | _ -> false

let ident c =
  match next c with
  | Sql_lexer.IDENT name -> name
  | t -> fail (Printf.sprintf "expected an identifier, found %s" (Sql_lexer.token_to_string t))

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing                                    *)
(*   OR < AND < NOT < comparison/LIKE/IN/BETWEEN/IS < add < mul < unary *)
(* ------------------------------------------------------------------ *)

let agg_of_kw = function
  | "COUNT" -> Some Sql_ast.Count
  | "SUM" -> Some Sql_ast.Sum
  | "AVG" -> Some Sql_ast.Avg
  | "MIN" -> Some Sql_ast.Min
  | "MAX" -> Some Sql_ast.Max
  | _ -> None

let rec parse_or c =
  let lhs = parse_and c in
  if accept_kw c "OR" then Sql_ast.Binop (Sql_ast.Or, lhs, parse_or c) else lhs

and parse_and c =
  let lhs = parse_not c in
  if accept_kw c "AND" then Sql_ast.Binop (Sql_ast.And, lhs, parse_and c) else lhs

and parse_not c =
  if accept_kw c "NOT" then Sql_ast.Unop (Sql_ast.Not, parse_not c) else parse_cmp c

and parse_cmp c =
  let lhs = parse_add c in
  match peek c with
  | Sql_lexer.SYM "=" ->
    advance c;
    Sql_ast.Binop (Sql_ast.Eq, lhs, parse_add c)
  | Sql_lexer.SYM "<>" ->
    advance c;
    Sql_ast.Binop (Sql_ast.Neq, lhs, parse_add c)
  | Sql_lexer.SYM "<" ->
    advance c;
    Sql_ast.Binop (Sql_ast.Lt, lhs, parse_add c)
  | Sql_lexer.SYM "<=" ->
    advance c;
    Sql_ast.Binop (Sql_ast.Le, lhs, parse_add c)
  | Sql_lexer.SYM ">" ->
    advance c;
    Sql_ast.Binop (Sql_ast.Gt, lhs, parse_add c)
  | Sql_lexer.SYM ">=" ->
    advance c;
    Sql_ast.Binop (Sql_ast.Ge, lhs, parse_add c)
  | Sql_lexer.KW "LIKE" ->
    advance c;
    (match next c with
    | Sql_lexer.STRING pat -> Sql_ast.Like (lhs, pat)
    | t -> fail (Printf.sprintf "LIKE requires a string pattern, found %s" (Sql_lexer.token_to_string t)))
  | Sql_lexer.KW "BETWEEN" ->
    advance c;
    let lo = parse_add c in
    expect_kw c "AND";
    let hi = parse_add c in
    Sql_ast.Between (lhs, lo, hi)
  | Sql_lexer.KW "IN" ->
    advance c;
    expect_sym c "(";
    let rec items acc =
      let e = parse_add c in
      if accept_sym c "," then items (e :: acc) else List.rev (e :: acc)
    in
    let es = items [] in
    expect_sym c ")";
    Sql_ast.In_list (lhs, es)
  | Sql_lexer.KW "IS" ->
    advance c;
    if accept_kw c "NOT" then begin
      expect_kw c "NULL";
      Sql_ast.Is_not_null lhs
    end
    else begin
      expect_kw c "NULL";
      Sql_ast.Is_null lhs
    end
  | _ -> lhs

and parse_add c =
  let rec go lhs =
    if accept_sym c "+" then go (Sql_ast.Binop (Sql_ast.Add, lhs, parse_mul c))
    else if accept_sym c "-" then go (Sql_ast.Binop (Sql_ast.Sub, lhs, parse_mul c))
    else lhs
  in
  go (parse_mul c)

and parse_mul c =
  let rec go lhs =
    if accept_sym c "*" then go (Sql_ast.Binop (Sql_ast.Mul, lhs, parse_unary c))
    else if accept_sym c "/" then go (Sql_ast.Binop (Sql_ast.Div, lhs, parse_unary c))
    else lhs
  in
  go (parse_unary c)

and parse_unary c =
  if accept_sym c "-" then Sql_ast.Unop (Sql_ast.Neg, parse_unary c) else parse_atom c

and parse_atom c =
  match next c with
  | Sql_lexer.INT i -> Sql_ast.Lit (Value.Int i)
  | Sql_lexer.FLOAT f -> Sql_ast.Lit (Value.Float f)
  | Sql_lexer.STRING s -> Sql_ast.Lit (Value.String s)
  | Sql_lexer.KW "NULL" -> Sql_ast.Lit Value.Null
  | Sql_lexer.KW "TRUE" -> Sql_ast.Lit (Value.Bool true)
  | Sql_lexer.KW "FALSE" -> Sql_ast.Lit (Value.Bool false)
  | Sql_lexer.KW "DATE" -> (
    (* DATE 'YYYY-MM-DD' *)
    match next c with
    | Sql_lexer.STRING s -> (
      match Value.parse_as Value.TDate s with
      | Some d -> Sql_ast.Lit d
      | None -> fail (Printf.sprintf "malformed date literal %S" s))
    | t -> fail (Printf.sprintf "DATE requires a string literal, found %s" (Sql_lexer.token_to_string t)))
  | Sql_lexer.SYM "(" ->
    let e = parse_or c in
    expect_sym c ")";
    e
  | Sql_lexer.IDENT name ->
    if accept_sym c "(" then begin
      (* scalar function call *)
      if accept_sym c ")" then Sql_ast.Fncall (String.lowercase_ascii name, [])
      else begin
        let rec args acc =
          let e = parse_or c in
          if accept_sym c "," then args (e :: acc) else List.rev (e :: acc)
        in
        let es = args [] in
        expect_sym c ")";
        Sql_ast.Fncall (String.lowercase_ascii name, es)
      end
    end
    else if accept_sym c "." then begin
      match next c with
      | Sql_lexer.IDENT col -> Sql_ast.Col (Some name, col)
      | Sql_lexer.SYM "*" -> fail "qualified star is only allowed in a select list"
      | t -> fail (Printf.sprintf "expected a column after '.', found %s" (Sql_lexer.token_to_string t))
    end
    else Sql_ast.Col (None, name)
  | t -> fail (Printf.sprintf "unexpected token %s in expression" (Sql_lexer.token_to_string t))

(* ------------------------------------------------------------------ *)
(* SELECT                                                              *)
(* ------------------------------------------------------------------ *)

let parse_select_item c =
  match peek c with
  | Sql_lexer.SYM "*" ->
    advance c;
    Sql_ast.Star
  | Sql_lexer.IDENT name
    when (match peek2 c with Sql_lexer.SYM "." -> true | _ -> false)
         && c.i + 2 < Array.length c.toks
         && c.toks.(c.i + 2) = Sql_lexer.SYM "*" ->
    advance c;
    advance c;
    advance c;
    Sql_ast.Qualified_star name
  | Sql_lexer.KW kw when agg_of_kw kw <> None ->
    advance c;
    expect_sym c "(";
    let fn = Option.get (agg_of_kw kw) in
    let fn, arg =
      if accept_sym c "*" then
        if fn = Sql_ast.Count then (Sql_ast.Count_star, None)
        else fail (Printf.sprintf "%s(*) is only valid for COUNT" kw)
      else (fn, Some (parse_or c))
    in
    expect_sym c ")";
    let alias = if accept_kw c "AS" then Some (ident c) else None in
    Sql_ast.Agg_item (fn, arg, alias)
  | _ ->
    let e = parse_or c in
    let alias =
      if accept_kw c "AS" then Some (ident c)
      else
        match peek c with
        | Sql_lexer.IDENT a ->
          advance c;
          Some a
        | _ -> None
    in
    Sql_ast.Expr_item (e, alias)

let parse_table_ref c =
  let table = ident c in
  let alias =
    if accept_kw c "AS" then Some (ident c)
    else
      match peek c with
      | Sql_lexer.IDENT a ->
        advance c;
        Some a
      | _ -> None
  in
  { Sql_ast.table; alias }

let parse_from c =
  let rec joins lhs =
    let kind =
      if accept_kw c "JOIN" then Some Sql_ast.Inner
      else if accept_kw c "INNER" then begin
        expect_kw c "JOIN";
        Some Sql_ast.Inner
      end
      else if accept_kw c "LEFT" then begin
        ignore (accept_kw c "OUTER");
        expect_kw c "JOIN";
        Some Sql_ast.Left_outer
      end
      else None
    in
    match kind with
    | None -> lhs
    | Some k ->
      let rhs = parse_table_ref c in
      expect_kw c "ON";
      let cond = parse_or c in
      joins (Sql_ast.From_join (lhs, k, rhs, cond))
  in
  (* comma-separated cross products become inner joins with TRUE *)
  let first = Sql_ast.From_table (parse_table_ref c) in
  let rec commas lhs =
    if accept_sym c "," then begin
      let rhs = parse_table_ref c in
      commas (Sql_ast.From_join (lhs, Sql_ast.Inner, rhs, Sql_ast.Lit (Value.Bool true)))
    end
    else lhs
  in
  joins (commas (joins first))

let parse_select_body c =
  let distinct = accept_kw c "DISTINCT" in
  let rec items acc =
    let item = parse_select_item c in
    if accept_sym c "," then items (item :: acc) else List.rev (item :: acc)
  in
  let items = items [] in
  let from = if accept_kw c "FROM" then Some (parse_from c) else None in
  let where = if accept_kw c "WHERE" then Some (parse_or c) else None in
  let group_by =
    if accept_kw c "GROUP" then begin
      expect_kw c "BY";
      let rec exprs acc =
        let e = parse_or c in
        if accept_sym c "," then exprs (e :: acc) else List.rev (e :: acc)
      in
      exprs []
    end
    else []
  in
  let having = if accept_kw c "HAVING" then Some (parse_or c) else None in
  let order_by =
    if accept_kw c "ORDER" then begin
      expect_kw c "BY";
      let rec orders acc =
        let e = parse_or c in
        let asc =
          if accept_kw c "DESC" then false
          else begin
            ignore (accept_kw c "ASC");
            true
          end
        in
        let item = { Sql_ast.order_expr = e; ascending = asc } in
        if accept_sym c "," then orders (item :: acc) else List.rev (item :: acc)
      in
      orders []
    end
    else []
  in
  let limit =
    if accept_kw c "LIMIT" then begin
      match next c with
      | Sql_lexer.INT n -> Some n
      | t -> fail (Printf.sprintf "LIMIT requires an integer, found %s" (Sql_lexer.token_to_string t))
    end
    else None
  in
  { Sql_ast.distinct; items; from; where; group_by; having; order_by; limit }

(* ------------------------------------------------------------------ *)
(* DDL / DML                                                           *)
(* ------------------------------------------------------------------ *)

let parse_ty c =
  match next c with
  | Sql_lexer.KW ("INT" | "INTEGER") -> Value.TInt
  | Sql_lexer.KW ("FLOAT" | "REAL" | "DOUBLE") -> Value.TFloat
  | Sql_lexer.KW ("TEXT" | "VARCHAR") ->
    (* optional (n) *)
    if accept_sym c "(" then begin
      (match next c with
      | Sql_lexer.INT _ -> ()
      | t -> fail (Printf.sprintf "expected a length, found %s" (Sql_lexer.token_to_string t)));
      expect_sym c ")"
    end;
    Value.TString
  | Sql_lexer.KW ("BOOLEAN" | "BOOL") -> Value.TBool
  | Sql_lexer.KW "DATE" -> Value.TDate
  | t -> fail (Printf.sprintf "expected a type, found %s" (Sql_lexer.token_to_string t))

let parse_column_def c =
  let name = ident c in
  let ty = parse_ty c in
  let nullable = ref true and primary = ref false in
  let rec modifiers () =
    if accept_kw c "NOT" then begin
      expect_kw c "NULL";
      nullable := false;
      modifiers ()
    end
    else if accept_kw c "PRIMARY" then begin
      expect_kw c "KEY";
      primary := true;
      nullable := false;
      modifiers ()
    end
    else if accept_kw c "NULL" then begin
      nullable := true;
      modifiers ()
    end
  in
  modifiers ();
  { Sql_ast.cd_name = name; cd_ty = ty; cd_nullable = !nullable; cd_primary = !primary }

let parse_literal c =
  match next c with
  | Sql_lexer.INT i -> Value.Int i
  | Sql_lexer.FLOAT f -> Value.Float f
  | Sql_lexer.STRING s -> Value.String s
  | Sql_lexer.KW "NULL" -> Value.Null
  | Sql_lexer.KW "TRUE" -> Value.Bool true
  | Sql_lexer.KW "FALSE" -> Value.Bool false
  | Sql_lexer.KW "DATE" -> (
    match next c with
    | Sql_lexer.STRING s -> (
      match Value.parse_as Value.TDate s with
      | Some d -> d
      | None -> fail (Printf.sprintf "malformed date literal %S" s))
    | t -> fail (Printf.sprintf "DATE requires a string, found %s" (Sql_lexer.token_to_string t)))
  | Sql_lexer.SYM "-" -> (
    match next c with
    | Sql_lexer.INT i -> Value.Int (-i)
    | Sql_lexer.FLOAT f -> Value.Float (-.f)
    | t -> fail (Printf.sprintf "expected a number after '-', found %s" (Sql_lexer.token_to_string t)))
  | t -> fail (Printf.sprintf "expected a literal, found %s" (Sql_lexer.token_to_string t))

let parse_statement c =
  match next c with
  | Sql_lexer.KW "SELECT" -> Sql_ast.Select (parse_select_body c)
  | Sql_lexer.KW "CREATE" ->
    if accept_kw c "TABLE" then begin
      let tname = ident c in
      expect_sym c "(";
      let rec defs acc =
        let d = parse_column_def c in
        if accept_sym c "," then defs (d :: acc) else List.rev (d :: acc)
      in
      let defs = defs [] in
      expect_sym c ")";
      Sql_ast.Create_table (tname, defs)
    end
    else begin
      let unique = accept_kw c "UNIQUE" in
      expect_kw c "INDEX";
      (* optional index name *)
      (match peek c with
      | Sql_lexer.IDENT _ when peek2 c = Sql_lexer.KW "ON" -> advance c
      | _ -> ());
      expect_kw c "ON";
      let tname = ident c in
      expect_sym c "(";
      let colname = ident c in
      expect_sym c ")";
      let btree =
        if accept_kw c "USING" then
          if accept_kw c "HASH" then false
          else begin
            expect_kw c "BTREE";
            true
          end
        else true
      in
      Sql_ast.Create_index
        { unique_ignored = unique; index_table = tname; index_column = colname; btree }
    end
  | Sql_lexer.KW "INSERT" ->
    expect_kw c "INTO";
    let tname = ident c in
    let cols =
      if accept_sym c "(" then begin
        let rec names acc =
          let n = ident c in
          if accept_sym c "," then names (n :: acc) else List.rev (n :: acc)
        in
        let names = names [] in
        expect_sym c ")";
        Some names
      end
      else None
    in
    expect_kw c "VALUES";
    let parse_row () =
      expect_sym c "(";
      let rec vals acc =
        let v = parse_literal c in
        if accept_sym c "," then vals (v :: acc) else List.rev (v :: acc)
      in
      let vs = vals [] in
      expect_sym c ")";
      vs
    in
    let rec rows acc =
      let r = parse_row () in
      if accept_sym c "," then rows (r :: acc) else List.rev (r :: acc)
    in
    Sql_ast.Insert (tname, cols, rows [])
  | Sql_lexer.KW "UPDATE" ->
    let tname = ident c in
    expect_kw c "SET";
    let rec assigns acc =
      let cname = ident c in
      expect_sym c "=";
      let e = parse_or c in
      if accept_sym c "," then assigns ((cname, e) :: acc) else List.rev ((cname, e) :: acc)
    in
    let assigns = assigns [] in
    let where = if accept_kw c "WHERE" then Some (parse_or c) else None in
    Sql_ast.Update (tname, assigns, where)
  | Sql_lexer.KW "DELETE" ->
    expect_kw c "FROM";
    let tname = ident c in
    let where = if accept_kw c "WHERE" then Some (parse_or c) else None in
    Sql_ast.Delete (tname, where)
  | Sql_lexer.KW "DROP" ->
    expect_kw c "TABLE";
    Sql_ast.Drop_table (ident c)
  | t -> fail (Printf.sprintf "expected a statement, found %s" (Sql_lexer.token_to_string t))

let finish c =
  ignore (accept_sym c ";");
  match peek c with
  | Sql_lexer.EOF -> ()
  | t -> fail (Printf.sprintf "trailing input: %s" (Sql_lexer.token_to_string t))

let parse_exn input =
  let toks =
    try Sql_lexer.tokenize input
    with Sql_lexer.Lex_error (off, msg) ->
      fail (Printf.sprintf "lexical error at offset %d: %s" off msg)
  in
  let c = { toks = Array.of_list toks; i = 0 } in
  let stmt = parse_statement c in
  finish c;
  stmt

let parse input =
  try Ok (parse_exn input) with Parse_error m -> Error m

let parse_select_exn input =
  match parse_exn input with
  | Sql_ast.Select s -> s
  | _ -> fail "expected a SELECT statement"

let parse_expr_exn input =
  let toks =
    try Sql_lexer.tokenize input
    with Sql_lexer.Lex_error (off, msg) ->
      fail (Printf.sprintf "lexical error at offset %d: %s" off msg)
  in
  let c = { toks = Array.of_list toks; i = 0 } in
  let e = parse_or c in
  finish c;
  e
