(* A B+tree multimap with linked leaves.

   Nodes are mutable arrays managed as sorted key vectors.  Internal nodes
   hold separator keys: child i holds keys < keys.(i) ... actually we use
   the convention: for an internal node with n keys there are n+1 children
   and all keys in children.(i) are < keys.(i) and keys in children.(i+1)
   are >= keys.(i).  Leaves hold (key, value bag) entries and a link to
   the next leaf. *)

type ('k, 'v) leaf = {
  mutable lkeys : 'k array;
  mutable lvals : 'v list array;  (* parallel to lkeys; newest-last bags *)
  mutable lnext : ('k, 'v) leaf option;
}

type ('k, 'v) node =
  | Leaf of ('k, 'v) leaf
  | Internal of ('k, 'v) internal

and ('k, 'v) internal = {
  mutable ikeys : 'k array;
  mutable children : ('k, 'v) node array;
}

type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  order : int;
  mutable root : ('k, 'v) node;
  mutable count : int;
}

let create ?(order = 32) ~cmp () =
  let order = max 4 order in
  { cmp; order; root = Leaf { lkeys = [||]; lvals = [||]; lnext = None }; count = 0 }

(* Index of the first key >= [k], i.e. lower bound. *)
let lower_bound cmp keys k =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child slot to descend into for key [k]. *)
let child_slot cmp ikeys k =
  let lo = ref 0 and hi = ref (Array.length ikeys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp ikeys.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert arr i x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 i;
  Array.blit arr i out (i + 1) (n - i);
  out

let array_remove arr i =
  let n = Array.length arr in
  let out = Array.sub arr 0 (n - 1) in
  Array.blit arr (i + 1) out i (n - i - 1);
  out

(* Split a full leaf in two; returns (separator key, new right sibling). *)
let split_leaf leaf =
  let n = Array.length leaf.lkeys in
  let mid = n / 2 in
  let right =
    {
      lkeys = Array.sub leaf.lkeys mid (n - mid);
      lvals = Array.sub leaf.lvals mid (n - mid);
      lnext = leaf.lnext;
    }
  in
  leaf.lkeys <- Array.sub leaf.lkeys 0 mid;
  leaf.lvals <- Array.sub leaf.lvals 0 mid;
  leaf.lnext <- Some right;
  (right.lkeys.(0), right)

let split_internal node =
  let n = Array.length node.ikeys in
  let mid = n / 2 in
  let sep = node.ikeys.(mid) in
  let right =
    {
      ikeys = Array.sub node.ikeys (mid + 1) (n - mid - 1);
      children = Array.sub node.children (mid + 1) (n - mid);
    }
  in
  node.ikeys <- Array.sub node.ikeys 0 mid;
  node.children <- Array.sub node.children 0 (mid + 1);
  (sep, right)

(* Insert into subtree; returns Some (sep, right) when the node split. *)
let rec insert_node t node k v =
  match node with
  | Leaf leaf ->
    let i = lower_bound t.cmp leaf.lkeys k in
    if i < Array.length leaf.lkeys && t.cmp leaf.lkeys.(i) k = 0 then begin
      leaf.lvals.(i) <- leaf.lvals.(i) @ [ v ];
      None
    end
    else begin
      leaf.lkeys <- array_insert leaf.lkeys i k;
      leaf.lvals <- array_insert leaf.lvals i [ v ];
      if Array.length leaf.lkeys > t.order then begin
        let sep, right = split_leaf leaf in
        Some (sep, Leaf right)
      end
      else None
    end
  | Internal node ->
    let slot = child_slot t.cmp node.ikeys k in
    (match insert_node t node.children.(slot) k v with
    | None -> ()
    | Some (sep, right) ->
      node.ikeys <- array_insert node.ikeys slot sep;
      node.children <- array_insert node.children (slot + 1) right);
    if Array.length node.ikeys > t.order then begin
      let sep, right = split_internal node in
      Some (sep, Internal right)
    end
    else None

let insert t k v =
  (match insert_node t t.root k v with
  | None -> ()
  | Some (sep, right) ->
    t.root <- Internal { ikeys = [| sep |]; children = [| t.root; right |] });
  t.count <- t.count + 1

let rec find_leaf t node k =
  match node with
  | Leaf leaf -> leaf
  | Internal node -> find_leaf t node.children.(child_slot t.cmp node.ikeys k) k

let find_all t k =
  let leaf = find_leaf t t.root k in
  let i = lower_bound t.cmp leaf.lkeys k in
  if i < Array.length leaf.lkeys && t.cmp leaf.lkeys.(i) k = 0 then leaf.lvals.(i) else []

let mem t k = find_all t k <> []

let remove t k v =
  let leaf = find_leaf t t.root k in
  let i = lower_bound t.cmp leaf.lkeys k in
  if i < Array.length leaf.lkeys && t.cmp leaf.lkeys.(i) k = 0 then begin
    let bag = leaf.lvals.(i) in
    let rec drop_one acc = function
      | [] -> None
      | x :: rest -> if x = v then Some (List.rev_append acc rest) else drop_one (x :: acc) rest
    in
    match drop_one [] bag with
    | None -> false
    | Some [] ->
      leaf.lkeys <- array_remove leaf.lkeys i;
      leaf.lvals <- array_remove leaf.lvals i;
      t.count <- t.count - 1;
      true
    | Some bag' ->
      leaf.lvals.(i) <- bag';
      t.count <- t.count - 1;
      true
  end
  else false

let rec leftmost_leaf = function
  | Leaf leaf -> leaf
  | Internal node -> leftmost_leaf node.children.(0)

let range t ?lo ?hi () =
  let start_leaf =
    match lo with
    | Some (k, _) -> find_leaf t t.root k
    | None -> leftmost_leaf t.root
  in
  let in_lo k =
    match lo with
    | None -> true
    | Some (bound, inclusive) ->
      let c = t.cmp k bound in
      if inclusive then c >= 0 else c > 0
  in
  let past_hi k =
    match hi with
    | None -> false
    | Some (bound, inclusive) ->
      let c = t.cmp k bound in
      if inclusive then c > 0 else c >= 0
  in
  let out = ref [] in
  let rec walk leaf =
    let n = Array.length leaf.lkeys in
    let stop = ref false in
    let i = ref 0 in
    while (not !stop) && !i < n do
      let k = leaf.lkeys.(!i) in
      if past_hi k then stop := true
      else begin
        if in_lo k then List.iter (fun v -> out := (k, v) :: !out) leaf.lvals.(!i);
        incr i
      end
    done;
    if not !stop then
      match leaf.lnext with
      | Some next -> walk next
      | None -> ()
  in
  walk start_leaf;
  List.rev !out

let iter f t =
  let rec walk leaf =
    Array.iteri (fun i k -> List.iter (fun v -> f k v) leaf.lvals.(i)) leaf.lkeys;
    match leaf.lnext with
    | Some next -> walk next
    | None -> ()
  in
  walk (leftmost_leaf t.root)

let size t = t.count

let height t =
  let rec go = function
    | Leaf _ -> 1
    | Internal node -> 1 + go node.children.(0)
  in
  go t.root

let check_invariants t =
  let ok = ref true in
  let check_sorted keys =
    for i = 0 to Array.length keys - 2 do
      if t.cmp keys.(i) keys.(i + 1) >= 0 then ok := false
    done
  in
  (* Bounds: every key in a subtree must lie in (lo, hi). *)
  let in_bounds lo hi k =
    (match lo with None -> true | Some b -> t.cmp k b >= 0)
    && match hi with None -> true | Some b -> t.cmp k b < 0
  in
  let rec go lo hi = function
    | Leaf leaf ->
      check_sorted leaf.lkeys;
      Array.iter (fun k -> if not (in_bounds lo hi k) then ok := false) leaf.lkeys;
      Array.iter (fun bag -> if bag = [] then ok := false) leaf.lvals
    | Internal node ->
      check_sorted node.ikeys;
      if Array.length node.children <> Array.length node.ikeys + 1 then ok := false;
      Array.iter (fun k -> if not (in_bounds lo hi k) then ok := false) node.ikeys;
      Array.iteri
        (fun i child ->
          let clo = if i = 0 then lo else Some node.ikeys.(i - 1) in
          let chi = if i = Array.length node.ikeys then hi else Some node.ikeys.(i) in
          go clo chi child)
        node.children
  in
  go None None t.root;
  (* Leaf chain covers exactly the keys in order. *)
  let chain = ref [] in
  iter (fun k _ -> chain := k :: !chain) t;
  let keys = List.rev !chain in
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> t.cmp a b <= 0 && sorted rest
  in
  !ok && sorted keys && List.length keys = t.count
