(** A self-contained in-memory relational database.

    This is the "RDB source" substrate of the reproduction: the mediator
    compiles query fragments to SQL text (section 2.1) and ships them
    here.  The database parses, plans (index selection, join ordering)
    and executes them, exactly the contract a remote commercial RDBMS
    would provide. *)

type t

type result =
  | Rows of string list * Tuple.t list  (** column names and rows *)
  | Affected of int                     (** DML row count *)
  | Created                             (** DDL acknowledgement *)

exception Sql_error of string
(** Any parse, plan, execution or constraint failure, with a message. *)

val create : ?name:string -> unit -> t

val name : t -> string

(** {1 Statement interface} *)

val exec : t -> string -> result
(** Parse and run one SQL statement.  @raise Sql_error on any failure. *)

val query : t -> string -> Tuple.t list
(** [exec] specialized to SELECT; returns the rows.
    @raise Sql_error when the statement is not a SELECT. *)

val query_names : t -> string -> string list * Tuple.t list
(** Like {!query} but also returns output column names in order. *)

val explain : t -> string -> string
(** The physical plan the SELECT would run ([EXPLAIN]). *)

(** {1 Direct (non-SQL) interface} *)

val create_table : t -> ?primary_key:string -> Dschema.relational -> unit
val drop_table : t -> string -> unit
val table : t -> string -> Rel_table.t option
val table_exn : t -> string -> Rel_table.t
val tables : t -> string list
val insert_tuple : t -> string -> Tuple.t -> unit
val insert_many : t -> string -> Tuple.t list -> unit

val catalog : t -> Sql_plan.catalog
(** Planner view of this database. *)

val total_rows : t -> int
(** Sum of live rows across all tables (statistics). *)
