let value_literal v =
  match v with
  | Value.Null -> "NULL"
  | Value.Bool true -> "TRUE"
  | Value.Bool false -> "FALSE"
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.String s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | Value.Date _ -> Printf.sprintf "DATE '%s'" (Value.to_string v)

let binop_str = function
  | Sql_ast.Add -> "+"
  | Sql_ast.Sub -> "-"
  | Sql_ast.Mul -> "*"
  | Sql_ast.Div -> "/"
  | Sql_ast.Eq -> "="
  | Sql_ast.Neq -> "<>"
  | Sql_ast.Lt -> "<"
  | Sql_ast.Le -> "<="
  | Sql_ast.Gt -> ">"
  | Sql_ast.Ge -> ">="
  | Sql_ast.And -> "AND"
  | Sql_ast.Or -> "OR"

(* Precedence levels matching the parser. *)
let prec = function
  | Sql_ast.Or -> 1
  | Sql_ast.And -> 2
  | Sql_ast.Eq | Sql_ast.Neq | Sql_ast.Lt | Sql_ast.Le | Sql_ast.Gt | Sql_ast.Ge -> 4
  | Sql_ast.Add | Sql_ast.Sub -> 5
  | Sql_ast.Mul | Sql_ast.Div -> 6

let rec expr_prec = function
  | Sql_ast.Col _ | Sql_ast.Lit _ | Sql_ast.Fncall _ -> 10
  | Sql_ast.Unop (Sql_ast.Neg, _) -> 7
  | Sql_ast.Unop (Sql_ast.Not, _) -> 3
  | Sql_ast.Binop (op, _, _) -> prec op
  | Sql_ast.Like _ | Sql_ast.In_list _ | Sql_ast.Between _ | Sql_ast.Is_null _
  | Sql_ast.Is_not_null _ -> 4

and expr_to_string e =
  let paren_ge level sub =
    let s = expr_to_string sub in
    if expr_prec sub < level then "(" ^ s ^ ")" else s
  in
  match e with
  | Sql_ast.Col (None, n) -> n
  | Sql_ast.Col (Some q, n) -> q ^ "." ^ n
  | Sql_ast.Lit v -> value_literal v
  | Sql_ast.Unop (Sql_ast.Neg, sub) -> "-" ^ paren_ge 7 sub
  | Sql_ast.Unop (Sql_ast.Not, sub) -> "NOT " ^ paren_ge 3 sub
  | Sql_ast.Binop (op, a, b) ->
    let level = prec op in
    (* Right operand needs strictly-higher precedence for left-assoc ops;
       AND/OR chains are parsed right-recursively but are associative, so
       equal precedence on the right is fine. *)
    let rhs_level =
      match op with Sql_ast.And | Sql_ast.Or -> level | _ -> level + 1
    in
    Printf.sprintf "%s %s %s" (paren_ge level a) (binop_str op) (paren_ge rhs_level b)
  | Sql_ast.Fncall (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr_to_string args))
  | Sql_ast.Like (sub, pat) ->
    Printf.sprintf "%s LIKE %s" (paren_ge 5 sub) (value_literal (Value.String pat))
  | Sql_ast.In_list (sub, es) ->
    Printf.sprintf "%s IN (%s)" (paren_ge 5 sub)
      (String.concat ", " (List.map expr_to_string es))
  | Sql_ast.Between (sub, lo, hi) ->
    Printf.sprintf "%s BETWEEN %s AND %s" (paren_ge 5 sub) (paren_ge 5 lo) (paren_ge 5 hi)
  | Sql_ast.Is_null sub -> Printf.sprintf "%s IS NULL" (paren_ge 5 sub)
  | Sql_ast.Is_not_null sub -> Printf.sprintf "%s IS NOT NULL" (paren_ge 5 sub)

let select_item_to_string = function
  | Sql_ast.Star -> "*"
  | Sql_ast.Qualified_star q -> q ^ ".*"
  | Sql_ast.Expr_item (e, None) -> expr_to_string e
  | Sql_ast.Expr_item (e, Some a) -> Printf.sprintf "%s AS %s" (expr_to_string e) a
  | Sql_ast.Agg_item (Sql_ast.Count_star, _, alias) ->
    "COUNT(*)" ^ (match alias with Some a -> " AS " ^ a | None -> "")
  | Sql_ast.Agg_item (fn, arg, alias) ->
    Printf.sprintf "%s(%s)%s" (Sql_ast.agg_fn_name fn)
      (match arg with Some e -> expr_to_string e | None -> "*")
      (match alias with Some a -> " AS " ^ a | None -> "")

let table_ref_to_string { Sql_ast.table; alias } =
  match alias with
  | Some a when a <> table -> Printf.sprintf "%s AS %s" table a
  | Some _ | None -> table

let rec from_to_string = function
  | Sql_ast.From_table tr -> table_ref_to_string tr
  | Sql_ast.From_join (lhs, kind, rhs, cond) ->
    let kw = match kind with Sql_ast.Inner -> "JOIN" | Sql_ast.Left_outer -> "LEFT JOIN" in
    Printf.sprintf "%s %s %s ON %s" (from_to_string lhs) kw (table_ref_to_string rhs)
      (expr_to_string cond)

let select_to_string s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.Sql_ast.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map select_item_to_string s.Sql_ast.items));
  (match s.Sql_ast.from with
  | Some f ->
    Buffer.add_string buf " FROM ";
    Buffer.add_string buf (from_to_string f)
  | None -> ());
  (match s.Sql_ast.where with
  | Some w ->
    Buffer.add_string buf " WHERE ";
    Buffer.add_string buf (expr_to_string w)
  | None -> ());
  (match s.Sql_ast.group_by with
  | [] -> ()
  | es ->
    Buffer.add_string buf " GROUP BY ";
    Buffer.add_string buf (String.concat ", " (List.map expr_to_string es)));
  (match s.Sql_ast.having with
  | Some h ->
    Buffer.add_string buf " HAVING ";
    Buffer.add_string buf (expr_to_string h)
  | None -> ());
  (match s.Sql_ast.order_by with
  | [] -> ()
  | items ->
    Buffer.add_string buf " ORDER BY ";
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun { Sql_ast.order_expr; ascending } ->
              expr_to_string order_expr ^ if ascending then "" else " DESC")
            items)));
  (match s.Sql_ast.limit with
  | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)
  | None -> ());
  Buffer.contents buf

let ty_sql = function
  | Value.TInt -> "INT"
  | Value.TFloat -> "FLOAT"
  | Value.TString -> "TEXT"
  | Value.TBool -> "BOOLEAN"
  | Value.TDate -> "DATE"
  | Value.TNull -> "TEXT"

let statement_to_string = function
  | Sql_ast.Select s -> select_to_string s
  | Sql_ast.Create_table (name, defs) ->
    let def d =
      Printf.sprintf "%s %s%s%s" d.Sql_ast.cd_name (ty_sql d.Sql_ast.cd_ty)
        (if d.Sql_ast.cd_primary then " PRIMARY KEY" else "")
        (if (not d.Sql_ast.cd_nullable) && not d.Sql_ast.cd_primary then " NOT NULL" else "")
    in
    Printf.sprintf "CREATE TABLE %s (%s)" name (String.concat ", " (List.map def defs))
  | Sql_ast.Create_index { unique_ignored; index_table; index_column; btree } ->
    Printf.sprintf "CREATE %sINDEX ON %s (%s) USING %s"
      (if unique_ignored then "UNIQUE " else "")
      index_table index_column
      (if btree then "BTREE" else "HASH")
  | Sql_ast.Insert (name, cols, rows) ->
    let cols_str =
      match cols with
      | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
      | None -> ""
    in
    let row vs = Printf.sprintf "(%s)" (String.concat ", " (List.map value_literal vs)) in
    Printf.sprintf "INSERT INTO %s%s VALUES %s" name cols_str
      (String.concat ", " (List.map row rows))
  | Sql_ast.Update (name, assigns, where) ->
    Printf.sprintf "UPDATE %s SET %s%s" name
      (String.concat ", "
         (List.map (fun (cname, e) -> Printf.sprintf "%s = %s" cname (expr_to_string e)) assigns))
      (match where with Some w -> " WHERE " ^ expr_to_string w | None -> "")
  | Sql_ast.Delete (name, where) ->
    Printf.sprintf "DELETE FROM %s%s" name
      (match where with Some w -> " WHERE " ^ expr_to_string w | None -> "")
  | Sql_ast.Drop_table name -> Printf.sprintf "DROP TABLE %s" name
