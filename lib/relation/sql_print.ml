let value_literal v =
  match v with
  | Value.Null -> "NULL"
  | Value.Bool true -> "TRUE"
  | Value.Bool false -> "FALSE"
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.String s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | Value.Date _ -> Printf.sprintf "DATE '%s'" (Value.to_string v)

let binop_str = function
  | Sql_ast.Add -> "+"
  | Sql_ast.Sub -> "-"
  | Sql_ast.Mul -> "*"
  | Sql_ast.Div -> "/"
  | Sql_ast.Eq -> "="
  | Sql_ast.Neq -> "<>"
  | Sql_ast.Lt -> "<"
  | Sql_ast.Le -> "<="
  | Sql_ast.Gt -> ">"
  | Sql_ast.Ge -> ">="
  | Sql_ast.And -> "AND"
  | Sql_ast.Or -> "OR"

(* Precedence levels matching the parser. *)
let prec = function
  | Sql_ast.Or -> 1
  | Sql_ast.And -> 2
  | Sql_ast.Eq | Sql_ast.Neq | Sql_ast.Lt | Sql_ast.Le | Sql_ast.Gt | Sql_ast.Ge -> 4
  | Sql_ast.Add | Sql_ast.Sub -> 5
  | Sql_ast.Mul | Sql_ast.Div -> 6

let rec expr_prec = function
  | Sql_ast.Col _ | Sql_ast.Lit _ | Sql_ast.Fncall _ -> 10
  | Sql_ast.Unop (Sql_ast.Neg, _) -> 7
  | Sql_ast.Unop (Sql_ast.Not, _) -> 3
  | Sql_ast.Binop (op, _, _) -> prec op
  | Sql_ast.Like _ | Sql_ast.In_list _ | Sql_ast.Between _ | Sql_ast.Is_null _
  | Sql_ast.Is_not_null _ -> 4

and expr_to_string e =
  let paren_ge level sub =
    let s = expr_to_string sub in
    if expr_prec sub < level then "(" ^ s ^ ")" else s
  in
  match e with
  | Sql_ast.Col (None, n) -> n
  | Sql_ast.Col (Some q, n) -> q ^ "." ^ n
  | Sql_ast.Lit v -> value_literal v
  | Sql_ast.Unop (Sql_ast.Neg, sub) -> "-" ^ paren_ge 7 sub
  | Sql_ast.Unop (Sql_ast.Not, sub) -> "NOT " ^ paren_ge 3 sub
  | Sql_ast.Binop (op, a, b) ->
    let level = prec op in
    (* Right operand needs strictly-higher precedence for left-assoc ops;
       AND/OR chains are parsed right-recursively but are associative, so
       equal precedence on the right is fine. *)
    let rhs_level =
      match op with Sql_ast.And | Sql_ast.Or -> level | _ -> level + 1
    in
    Printf.sprintf "%s %s %s" (paren_ge level a) (binop_str op) (paren_ge rhs_level b)
  | Sql_ast.Fncall (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr_to_string args))
  | Sql_ast.Like (sub, pat) ->
    Printf.sprintf "%s LIKE %s" (paren_ge 5 sub) (value_literal (Value.String pat))
  | Sql_ast.In_list (sub, es) ->
    Printf.sprintf "%s IN (%s)" (paren_ge 5 sub)
      (String.concat ", " (List.map expr_to_string es))
  | Sql_ast.Between (sub, lo, hi) ->
    Printf.sprintf "%s BETWEEN %s AND %s" (paren_ge 5 sub) (paren_ge 5 lo) (paren_ge 5 hi)
  | Sql_ast.Is_null sub -> Printf.sprintf "%s IS NULL" (paren_ge 5 sub)
  | Sql_ast.Is_not_null sub -> Printf.sprintf "%s IS NOT NULL" (paren_ge 5 sub)

let select_item_to_string = function
  | Sql_ast.Star -> "*"
  | Sql_ast.Qualified_star q -> q ^ ".*"
  | Sql_ast.Expr_item (e, None) -> expr_to_string e
  | Sql_ast.Expr_item (e, Some a) -> Printf.sprintf "%s AS %s" (expr_to_string e) a
  | Sql_ast.Agg_item (Sql_ast.Count_star, _, alias) ->
    "COUNT(*)" ^ (match alias with Some a -> " AS " ^ a | None -> "")
  | Sql_ast.Agg_item (fn, arg, alias) ->
    Printf.sprintf "%s(%s)%s" (Sql_ast.agg_fn_name fn)
      (match arg with Some e -> expr_to_string e | None -> "*")
      (match alias with Some a -> " AS " ^ a | None -> "")

let table_ref_to_string { Sql_ast.table; alias } =
  match alias with
  | Some a when a <> table -> Printf.sprintf "%s AS %s" table a
  | Some _ | None -> table

let rec from_to_string = function
  | Sql_ast.From_table tr -> table_ref_to_string tr
  | Sql_ast.From_join (lhs, kind, rhs, cond) ->
    let kw = match kind with Sql_ast.Inner -> "JOIN" | Sql_ast.Left_outer -> "LEFT JOIN" in
    Printf.sprintf "%s %s %s ON %s" (from_to_string lhs) kw (table_ref_to_string rhs)
      (expr_to_string cond)

let select_to_string s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.Sql_ast.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map select_item_to_string s.Sql_ast.items));
  (match s.Sql_ast.from with
  | Some f ->
    Buffer.add_string buf " FROM ";
    Buffer.add_string buf (from_to_string f)
  | None -> ());
  (match s.Sql_ast.where with
  | Some w ->
    Buffer.add_string buf " WHERE ";
    Buffer.add_string buf (expr_to_string w)
  | None -> ());
  (match s.Sql_ast.group_by with
  | [] -> ()
  | es ->
    Buffer.add_string buf " GROUP BY ";
    Buffer.add_string buf (String.concat ", " (List.map expr_to_string es)));
  (match s.Sql_ast.having with
  | Some h ->
    Buffer.add_string buf " HAVING ";
    Buffer.add_string buf (expr_to_string h)
  | None -> ());
  (match s.Sql_ast.order_by with
  | [] -> ()
  | items ->
    Buffer.add_string buf " ORDER BY ";
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun { Sql_ast.order_expr; ascending } ->
              expr_to_string order_expr ^ if ascending then "" else " DESC")
            items)));
  (match s.Sql_ast.limit with
  | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)
  | None -> ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Canonical rendering: the exact-key fragment cache keys on this, so  *)
(* cosmetic differences between structurally identical fragments       *)
(* (alias names chosen by different compilations, conjunct order) must *)
(* normalize away.  Aliases are renumbered t0..tn in FROM order, WHERE *)
(* and HAVING conjuncts are sorted by their rendered text, and the     *)
(* printer itself never emits redundant whitespace.                    *)
(* ------------------------------------------------------------------ *)

let rec from_tables = function
  | Sql_ast.From_table tr -> [ tr ]
  | Sql_ast.From_join (lhs, _, rhs, _) -> from_tables lhs @ [ rhs ]

let canonical_select s =
  let tables = match s.Sql_ast.from with Some f -> from_tables f | None -> [] in
  let alias_map =
    List.concat
      (List.mapi
         (fun i { Sql_ast.table; alias } ->
           let canon = Printf.sprintf "t%d" i in
           let of_name n = (n, canon) in
           match alias with
           | Some a when a <> table -> [ of_name a; of_name table ]
           | _ -> [ of_name table ])
         tables)
  in
  (* With a single unaliased table the qualifier is dropped entirely:
     [SELECT c FROM x] and [SELECT x.c FROM x] key identically. *)
  let single_plain =
    match tables with [ { Sql_ast.alias = None; _ } ] -> true | _ -> false
  in
  let requalify q =
    if single_plain then None
    else
      match q with
      | None -> None
      | Some name -> Some (Option.value (List.assoc_opt name alias_map) ~default:name)
  in
  let rec canon_expr e =
    match e with
    | Sql_ast.Col (q, n) -> Sql_ast.Col (requalify q, n)
    | Sql_ast.Lit _ -> e
    | Sql_ast.Unop (op, a) -> Sql_ast.Unop (op, canon_expr a)
    | Sql_ast.Binop (op, a, b) -> Sql_ast.Binop (op, canon_expr a, canon_expr b)
    | Sql_ast.Fncall (f, args) -> Sql_ast.Fncall (f, List.map canon_expr args)
    | Sql_ast.Like (a, pat) -> Sql_ast.Like (canon_expr a, pat)
    | Sql_ast.In_list (a, es) -> Sql_ast.In_list (canon_expr a, List.map canon_expr es)
    | Sql_ast.Between (a, lo, hi) ->
      Sql_ast.Between (canon_expr a, canon_expr lo, canon_expr hi)
    | Sql_ast.Is_null a -> Sql_ast.Is_null (canon_expr a)
    | Sql_ast.Is_not_null a -> Sql_ast.Is_not_null (canon_expr a)
  in
  let canon_where = function
    | None -> None
    | Some w ->
      let sorted =
        List.sort_uniq compare
          (List.map (fun c -> expr_to_string (canon_expr c)) (Sql_ast.conjuncts w))
      in
      (* Conjuncts are re-parsed positionally: rebuild from the sorted
         renderings by keeping the canonicalized exprs in that order. *)
      let by_render =
        List.map (fun c -> (expr_to_string (canon_expr c), canon_expr c)) (Sql_ast.conjuncts w)
      in
      Sql_ast.conjoin (List.filter_map (fun r -> List.assoc_opt r by_render) sorted)
  in
  let canon_item = function
    | Sql_ast.Star -> Sql_ast.Star
    | Sql_ast.Qualified_star q ->
      Sql_ast.Qualified_star (Option.value (List.assoc_opt q alias_map) ~default:q)
    | Sql_ast.Expr_item (e, a) -> Sql_ast.Expr_item (canon_expr e, a)
    | Sql_ast.Agg_item (fn, arg, a) -> Sql_ast.Agg_item (fn, Option.map canon_expr arg, a)
  in
  (* Tables are renumbered positionally (a self-join's two arms must
     not share one canonical alias). *)
  let next = ref 0 in
  let canon_table { Sql_ast.table; alias = _ } =
    let i = !next in
    incr next;
    if single_plain then { Sql_ast.table; alias = None }
    else { Sql_ast.table; alias = Some (Printf.sprintf "t%d" i) }
  in
  let rec canon_from = function
    | Sql_ast.From_table tr -> Sql_ast.From_table (canon_table tr)
    | Sql_ast.From_join (lhs, kind, rhs, cond) ->
      let lhs = canon_from lhs in
      let rhs = canon_table rhs in
      Sql_ast.From_join (lhs, kind, rhs, canon_expr cond)
  in
  select_to_string
    {
      s with
      Sql_ast.items = List.map canon_item s.Sql_ast.items;
      from = Option.map canon_from s.Sql_ast.from;
      where = canon_where s.Sql_ast.where;
      group_by = List.map canon_expr s.Sql_ast.group_by;
      having = canon_where s.Sql_ast.having;
      order_by =
        List.map
          (fun oi -> { oi with Sql_ast.order_expr = canon_expr oi.Sql_ast.order_expr })
          s.Sql_ast.order_by;
    }

let ty_sql = function
  | Value.TInt -> "INT"
  | Value.TFloat -> "FLOAT"
  | Value.TString -> "TEXT"
  | Value.TBool -> "BOOLEAN"
  | Value.TDate -> "DATE"
  | Value.TNull -> "TEXT"

let statement_to_string = function
  | Sql_ast.Select s -> select_to_string s
  | Sql_ast.Create_table (name, defs) ->
    let def d =
      Printf.sprintf "%s %s%s%s" d.Sql_ast.cd_name (ty_sql d.Sql_ast.cd_ty)
        (if d.Sql_ast.cd_primary then " PRIMARY KEY" else "")
        (if (not d.Sql_ast.cd_nullable) && not d.Sql_ast.cd_primary then " NOT NULL" else "")
    in
    Printf.sprintf "CREATE TABLE %s (%s)" name (String.concat ", " (List.map def defs))
  | Sql_ast.Create_index { unique_ignored; index_table; index_column; btree } ->
    Printf.sprintf "CREATE %sINDEX ON %s (%s) USING %s"
      (if unique_ignored then "UNIQUE " else "")
      index_table index_column
      (if btree then "BTREE" else "HASH")
  | Sql_ast.Insert (name, cols, rows) ->
    let cols_str =
      match cols with
      | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
      | None -> ""
    in
    let row vs = Printf.sprintf "(%s)" (String.concat ", " (List.map value_literal vs)) in
    Printf.sprintf "INSERT INTO %s%s VALUES %s" name cols_str
      (String.concat ", " (List.map row rows))
  | Sql_ast.Update (name, assigns, where) ->
    Printf.sprintf "UPDATE %s SET %s%s" name
      (String.concat ", "
         (List.map (fun (cname, e) -> Printf.sprintf "%s = %s" cname (expr_to_string e)) assigns))
      (match where with Some w -> " WHERE " ^ expr_to_string w | None -> "")
  | Sql_ast.Delete (name, where) ->
    Printf.sprintf "DELETE FROM %s%s" name
      (match where with Some w -> " WHERE " ^ expr_to_string w | None -> "")
  | Sql_ast.Drop_table name -> Printf.sprintf "DROP TABLE %s" name
