type index_kind = Btree_index | Hash_index

type index_impl =
  | Ibtree of (Value.t, int) Rel_btree.t
  | Ihash of (Value.t, int list) Hashtbl.t

type index = {
  idx_column : string;
  idx_pos : int;
  impl : index_impl;
}

type t = {
  tbl_schema : Dschema.relational;
  tbl_primary_key : string option;
  pk_pos : int;  (* -1 when none *)
  mutable slots : Value.t array option array;
  mutable next_slot : int;
  mutable live : int;
  mutable indexes : index list;
}

exception Constraint_violation of string

let column_pos schema cname =
  let rec go i = function
    | [] -> -1
    | c :: rest -> if String.equal c.Dschema.col_name cname then i else go (i + 1) rest
  in
  go 0 schema.Dschema.columns

let create ?primary_key schema =
  let pk_pos =
    match primary_key with
    | None -> -1
    | Some k ->
      let p = column_pos schema k in
      if p < 0 then
        invalid_arg (Printf.sprintf "Rel_table.create: primary key %S is not a column" k);
      p
  in
  {
    tbl_schema = schema;
    tbl_primary_key = primary_key;
    pk_pos;
    slots = Array.make 16 None;
    next_slot = 0;
    live = 0;
    indexes = [];
  }

let schema t = t.tbl_schema
let name t = t.tbl_schema.Dschema.rel_name
let row_count t = t.live
let primary_key t = t.tbl_primary_key

let row_to_tuple t row =
  Tuple.make
    (List.mapi (fun i c -> (c.Dschema.col_name, row.(i))) t.tbl_schema.Dschema.columns)

let tuple_to_row t tup =
  match Dschema.coerce_tuple t.tbl_schema tup with
  | None ->
    raise
      (Constraint_violation
         (Printf.sprintf "row %s does not conform to schema %s" (Tuple.to_string tup)
            (Dschema.relational_to_string t.tbl_schema)))
  | Some coerced -> Array.of_list (Tuple.values coerced)

let grow t =
  if t.next_slot >= Array.length t.slots then begin
    let bigger = Array.make (max 16 (2 * Array.length t.slots)) None in
    Array.blit t.slots 0 bigger 0 (Array.length t.slots);
    t.slots <- bigger
  end

let index_add idx v rowid =
  match idx.impl with
  | Ibtree bt -> Rel_btree.insert bt v rowid
  | Ihash h ->
    let existing = Option.value ~default:[] (Hashtbl.find_opt h v) in
    Hashtbl.replace h v (rowid :: existing)

let index_remove idx v rowid =
  match idx.impl with
  | Ibtree bt -> ignore (Rel_btree.remove bt v rowid)
  | Ihash h -> (
    match Hashtbl.find_opt h v with
    | None -> ()
    | Some ids -> (
      match List.filter (fun id -> id <> rowid) ids with
      | [] -> Hashtbl.remove h v
      | ids' -> Hashtbl.replace h v ids'))

let pk_conflict t row =
  t.pk_pos >= 0
  &&
  let key = row.(t.pk_pos) in
  let found = ref false in
  (* Use a PK index when available, else scan. *)
  let via_index =
    List.find_opt (fun idx -> idx.idx_pos = t.pk_pos) t.indexes
  in
  (match via_index with
  | Some idx -> (
    match idx.impl with
    | Ibtree bt -> found := Rel_btree.find_all bt key <> []
    | Ihash h -> found := Hashtbl.mem h key)
  | None ->
    for i = 0 to t.next_slot - 1 do
      match t.slots.(i) with
      | Some r when Value.equal r.(t.pk_pos) key -> found := true
      | Some _ | None -> ()
    done);
  !found

let insert_row t row =
  if Array.length row <> List.length t.tbl_schema.Dschema.columns then
    raise (Constraint_violation "arity mismatch");
  if pk_conflict t row then
    raise
      (Constraint_violation
         (Printf.sprintf "duplicate primary key %s in table %s"
            (Value.to_display row.(t.pk_pos))
            (name t)));
  grow t;
  let id = t.next_slot in
  t.slots.(id) <- Some row;
  t.next_slot <- id + 1;
  t.live <- t.live + 1;
  List.iter (fun idx -> index_add idx row.(idx.idx_pos) id) t.indexes;
  id

let insert t tup = insert_row t (tuple_to_row t tup)

let insert_values t values =
  let cols = t.tbl_schema.Dschema.columns in
  if List.length values <> List.length cols then
    raise (Constraint_violation "INSERT arity mismatch");
  let tup = Tuple.make (List.map2 (fun c v -> (c.Dschema.col_name, v)) cols values) in
  insert t tup

let get t id =
  if id < 0 || id >= t.next_slot then None
  else Option.map (row_to_tuple t) t.slots.(id)

let scan t f =
  for i = 0 to t.next_slot - 1 do
    match t.slots.(i) with
    | Some row -> f i (row_to_tuple t row)
    | None -> ()
  done

let to_list t =
  let out = ref [] in
  scan t (fun _ tup -> out := tup :: !out);
  List.rev !out

let delete_slot t id =
  match t.slots.(id) with
  | None -> ()
  | Some row ->
    List.iter (fun idx -> index_remove idx row.(idx.idx_pos) id) t.indexes;
    t.slots.(id) <- None;
    t.live <- t.live - 1

let delete_where t pred =
  let deleted = ref 0 in
  for i = 0 to t.next_slot - 1 do
    match t.slots.(i) with
    | Some row when pred (row_to_tuple t row) ->
      delete_slot t i;
      incr deleted
    | Some _ | None -> ()
  done;
  !deleted

let update_where t pred f =
  let updated = ref 0 in
  for i = 0 to t.next_slot - 1 do
    match t.slots.(i) with
    | Some row when pred (row_to_tuple t row) ->
      let new_row = tuple_to_row t (f (row_to_tuple t row)) in
      List.iter
        (fun idx ->
          if not (Value.equal row.(idx.idx_pos) new_row.(idx.idx_pos)) then begin
            index_remove idx row.(idx.idx_pos) i;
            index_add idx new_row.(idx.idx_pos) i
          end)
        t.indexes;
      t.slots.(i) <- Some new_row;
      incr updated
    | Some _ | None -> ()
  done;
  !updated

let clear t =
  t.slots <- Array.make 16 None;
  t.next_slot <- 0;
  t.live <- 0;
  List.iter
    (fun idx ->
      match idx.impl with
      | Ibtree _ -> ()
      | Ihash h -> Hashtbl.reset h)
    t.indexes;
  (* Rebuild btree indexes from scratch (they have no clear). *)
  t.indexes <-
    List.map
      (fun idx ->
        match idx.impl with
        | Ibtree _ ->
          { idx with impl = Ibtree (Rel_btree.create ~cmp:Value.compare ()) }
        | Ihash _ -> idx)
      t.indexes

let create_index t ~kind cname =
  let pos = column_pos t.tbl_schema cname in
  if pos < 0 then invalid_arg (Printf.sprintf "create_index: unknown column %S" cname);
  if List.exists (fun idx -> String.equal idx.idx_column cname) t.indexes then
    invalid_arg (Printf.sprintf "create_index: column %S already indexed" cname);
  let impl =
    match kind with
    | Btree_index -> Ibtree (Rel_btree.create ~cmp:Value.compare ())
    | Hash_index -> Ihash (Hashtbl.create 64)
  in
  let idx = { idx_column = cname; idx_pos = pos; impl } in
  (* Backfill. *)
  for i = 0 to t.next_slot - 1 do
    match t.slots.(i) with
    | Some row -> index_add idx row.(pos) i
    | None -> ()
  done;
  t.indexes <- idx :: t.indexes

let find_index t cname =
  List.find_opt (fun idx -> String.equal idx.idx_column cname) t.indexes

let has_index t cname =
  Option.map
    (fun idx -> match idx.impl with Ibtree _ -> Btree_index | Ihash _ -> Hash_index)
    (find_index t cname)

let rows_of_ids t ids =
  List.filter_map (fun id -> get t id) ids

let lookup_eq t cname v =
  match find_index t cname with
  | Some { impl = Ibtree bt; _ } -> rows_of_ids t (Rel_btree.find_all bt v)
  | Some { impl = Ihash h; _ } ->
    rows_of_ids t (List.rev (Option.value ~default:[] (Hashtbl.find_opt h v)))
  | None ->
    let out = ref [] in
    scan t (fun _ tup ->
        match Tuple.get tup cname with
        | Some v' when Value.equal v v' -> out := tup :: !out
        | Some _ | None -> ());
    List.rev !out

let lookup_range t cname ?lo ?hi () =
  let in_bounds v =
    (match lo with
    | None -> true
    | Some (b, inclusive) ->
      let c = Value.compare v b in
      if inclusive then c >= 0 else c > 0)
    &&
    match hi with
    | None -> true
    | Some (b, inclusive) ->
      let c = Value.compare v b in
      if inclusive then c <= 0 else c < 0
  in
  match find_index t cname with
  | Some { impl = Ibtree bt; _ } ->
    rows_of_ids t (List.map snd (Rel_btree.range bt ?lo ?hi ()))
  | Some { impl = Ihash _; _ } | None ->
    let out = ref [] in
    scan t (fun _ tup ->
        match Tuple.get tup cname with
        | Some v when v <> Value.Null && in_bounds v -> out := tup :: !out
        | Some _ | None -> ());
    List.rev !out

let index_served t cname mode =
  match find_index t cname, mode with
  | Some _, `Eq -> true
  | Some { impl = Ibtree _; _ }, `Range -> true
  | Some { impl = Ihash _; _ }, `Range -> false
  | None, (`Eq | `Range) -> false
