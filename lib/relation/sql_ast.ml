type binop =
  | Add | Sub | Mul | Div
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr =
  | Col of string option * string
  | Lit of Value.t
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Fncall of string * expr list
  | Like of expr * string
  | In_list of expr * expr list
  | Between of expr * expr * expr
  | Is_null of expr
  | Is_not_null of expr

type agg_fn = Count | Count_star | Sum | Avg | Min | Max

type select_item =
  | Star
  | Qualified_star of string
  | Expr_item of expr * string option
  | Agg_item of agg_fn * expr option * string option

type table_ref = {
  table : string;
  alias : string option;
}

type join_kind = Inner | Left_outer

type from_clause =
  | From_table of table_ref
  | From_join of from_clause * join_kind * table_ref * expr

type order_item = {
  order_expr : expr;
  ascending : bool;
}

type select = {
  distinct : bool;
  items : select_item list;
  from : from_clause option;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  limit : int option;
}

type column_def = {
  cd_name : string;
  cd_ty : Value.ty;
  cd_nullable : bool;
  cd_primary : bool;
}

type statement =
  | Select of select
  | Create_table of string * column_def list
  | Create_index of { unique_ignored : bool; index_table : string; index_column : string; btree : bool }
  | Insert of string * string list option * Value.t list list
  | Update of string * (string * expr) list * expr option
  | Delete of string * expr option
  | Drop_table of string

let col name = Col (None, name)
let qcol q name = Col (Some q, name)
let lit_int i = Lit (Value.Int i)
let lit_str s = Lit (Value.String s)
let ( &&& ) a b = Binop (And, a, b)
let ( ||| ) a b = Binop (Or, a, b)
let eq a b = Binop (Eq, a, b)

let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> None
  | e :: rest -> Some (List.fold_left ( &&& ) e rest)

let rec expr_columns = function
  | Col (q, n) -> [ (q, n) ]
  | Lit _ -> []
  | Unop (_, e) | Like (e, _) | Is_null e | Is_not_null e -> expr_columns e
  | Binop (_, a, b) -> expr_columns a @ expr_columns b
  | Fncall (_, args) -> List.concat_map expr_columns args
  | In_list (e, es) -> expr_columns e @ List.concat_map expr_columns es
  | Between (e, lo, hi) -> expr_columns e @ expr_columns lo @ expr_columns hi

let agg_fn_name = function
  | Count -> "COUNT"
  | Count_star -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"
