(** In-memory table storage for the relational substrate.

    Rows are stored positionally against the table schema in a growable
    slot array; deletions tombstone the slot.  Secondary indexes (B+tree
    or hash) map column values to row ids and are maintained on every
    mutation. *)

type t

type index_kind = Btree_index | Hash_index

exception Constraint_violation of string
(** Raised on duplicate primary key or schema violations. *)

val create : ?primary_key:string -> Dschema.relational -> t
(** @raise Invalid_argument when the primary key is not a schema column. *)

val schema : t -> Dschema.relational
val name : t -> string
val row_count : t -> int
val primary_key : t -> string option

(** {1 Mutation} *)

val insert : t -> Tuple.t -> int
(** Coerce the tuple into schema shape and append it; returns the row id.
    @raise Constraint_violation when coercion fails or the primary key is
    duplicated. *)

val insert_values : t -> Value.t list -> int
(** Positional insert (must match schema arity). *)

val delete_where : t -> (Tuple.t -> bool) -> int
(** Delete all rows satisfying the predicate; returns how many. *)

val update_where : t -> (Tuple.t -> bool) -> (Tuple.t -> Tuple.t) -> int
(** Update matching rows through the function (result is re-coerced);
    returns how many. *)

val clear : t -> unit

(** {1 Access} *)

val get : t -> int -> Tuple.t option
(** Fetch by row id; [None] for deleted or out-of-range ids. *)

val scan : t -> (int -> Tuple.t -> unit) -> unit
(** Iterate live rows in insertion order. *)

val to_list : t -> Tuple.t list

(** {1 Indexes} *)

val create_index : t -> kind:index_kind -> string -> unit
(** Index a column; backfills from existing rows.
    @raise Invalid_argument for unknown columns or duplicate index. *)

val has_index : t -> string -> index_kind option

val lookup_eq : t -> string -> Value.t -> Tuple.t list
(** Equality lookup through an index when one exists, else a scan. *)

val lookup_range :
  t -> string -> ?lo:Value.t * bool -> ?hi:Value.t * bool -> unit -> Tuple.t list
(** Range lookup; uses a B+tree index when available, else a scan with
    filtering.  Results are in key order when served by the index. *)

val index_served : t -> string -> [ `Eq | `Range ] -> bool
(** Would {!lookup_eq} / {!lookup_range} on this column be index-backed?
    (The planner's costing hook.) *)
