(** Recursive-descent parser for the SQL subset of {!Sql_ast}. *)

exception Parse_error of string

val parse : string -> (Sql_ast.statement, string) result
(** Parse a single statement (optionally [;]-terminated). *)

val parse_exn : string -> Sql_ast.statement

val parse_select_exn : string -> Sql_ast.select
(** @raise Parse_error when the statement is not a SELECT. *)

val parse_expr_exn : string -> Sql_ast.expr
(** Parse a standalone scalar/boolean expression (used in tests and by
    the mediator when translating predicates). *)
