exception Exec_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Exec_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Plan execution                                                      *)
(* ------------------------------------------------------------------ *)

let scan_rows catalog table_name access =
  match catalog.Sql_plan.table_of table_name with
  | None -> fail "unknown table %s" table_name
  | Some table -> (
    match access with
    | Sql_plan.Seq_scan -> Rel_table.to_list table
    | Sql_plan.Index_eq (cname, v) -> Rel_table.lookup_eq table cname v
    | Sql_plan.Index_range (cname, lo, hi) -> Rel_table.lookup_range table cname ?lo ?hi ())

let rec scans_of_plan = function
  | Sql_plan.Scan { table; binding; _ } -> [ (binding, table) ]
  | Sql_plan.Nl_join { left; right; _ } | Sql_plan.Hash_join { left; right; _ } ->
    scans_of_plan left @ scans_of_plan right

(* Left-outer padding: bind every right-side column to NULL so that
   projections and predicates over the right side stay well defined. *)
let pad_right catalog lt right_plan =
  List.fold_left
    (fun acc (binding, table) ->
      match catalog.Sql_plan.table_of table with
      | None -> fail "unknown table %s" table
      | Some t ->
        List.fold_left
          (fun acc c -> Tuple.set acc (binding ^ "." ^ c.Dschema.col_name) Value.Null)
          acc (Rel_table.schema t).Dschema.columns)
    lt (scans_of_plan right_plan)

let rec run_plan catalog plan =
  match plan with
  | Sql_plan.Scan { table; binding; access; filter; est = _ } ->
    let rows = scan_rows catalog table access in
    let rows = List.map (Tuple.prefix binding) rows in
    (match filter with
    | None -> rows
    | Some f -> List.filter (fun t -> Sql_eval.eval_pred t f) rows)
  | Sql_plan.Nl_join { left; right; kind; cond; est = _ } ->
    let lrows = run_plan catalog left in
    let rrows = run_plan catalog right in
    let match_row lt =
      List.filter_map
        (fun rt ->
          let joined = Tuple.concat lt rt in
          match cond with
          | None -> Some joined
          | Some c -> if Sql_eval.eval_pred joined c then Some joined else None)
        rrows
    in
    List.concat_map
      (fun lt ->
        match match_row lt, kind with
        | [], Sql_ast.Left_outer -> [ pad_right catalog lt right ]
        | matches, _ -> matches)
      lrows
  | Sql_plan.Hash_join { left; right; kind; left_key; right_key; residual; est = _ } ->
    let lrows = run_plan catalog left in
    let rrows = run_plan catalog right in
    (* Build on the right side, probe from the left, preserving left
       order (needed for LEFT OUTER semantics). *)
    let index : (Value.t, Tuple.t list) Hashtbl.t = Hashtbl.create (List.length rrows) in
    List.iter
      (fun rt ->
        match Sql_eval.eval rt right_key with
        | Value.Null -> () (* NULL keys never join *)
        | k ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt index k) in
          Hashtbl.replace index k (rt :: existing))
      (List.rev rrows);
    List.concat_map
      (fun lt ->
        let matches =
          match Sql_eval.eval lt left_key with
          | Value.Null -> []
          | k ->
            Option.value ~default:[] (Hashtbl.find_opt index k)
            |> List.filter_map (fun rt ->
                   let joined = Tuple.concat lt rt in
                   match residual with
                   | None -> Some joined
                   | Some c -> if Sql_eval.eval_pred joined c then Some joined else None)
        in
        match matches, kind with
        | [], Sql_ast.Left_outer -> [ pad_right catalog lt right ]
        | matches, _ -> matches)
      lrows

(* ------------------------------------------------------------------ *)
(* Projection helpers                                                  *)
(* ------------------------------------------------------------------ *)

let rec from_aliases = function
  | Sql_ast.From_table { table; alias } -> [ (Option.value ~default:table alias, table) ]
  | Sql_ast.From_join (lhs, _, { table; alias }, _) ->
    from_aliases lhs @ [ (Option.value ~default:table alias, table) ]

let alias_columns catalog (alias, table) =
  match catalog.Sql_plan.table_of table with
  | None -> fail "unknown table %s" table
  | Some t -> List.map (fun c -> (alias, c.Dschema.col_name)) (Rel_table.schema t).Dschema.columns

(* Expand stars into qualified column refs; compute output names. *)
let expand_items catalog (s : Sql_ast.select) =
  let aliases = match s.Sql_ast.from with Some f -> from_aliases f | None -> [] in
  let all_cols = List.concat_map (alias_columns catalog) aliases in
  let bare_unique n = List.length (List.filter (fun (_, c) -> c = n) all_cols) = 1 in
  let expand = function
    | Sql_ast.Star ->
      List.map
        (fun (a, c) ->
          let name = if bare_unique c then c else a ^ "." ^ c in
          `Expr (Sql_ast.Col (Some a, c), name))
        all_cols
    | Sql_ast.Qualified_star q ->
      let cols = List.filter (fun (a, _) -> a = q) all_cols in
      if cols = [] then fail "unknown alias %s.*" q;
      List.map
        (fun (a, c) ->
          let name = if bare_unique c then c else a ^ "." ^ c in
          `Expr (Sql_ast.Col (Some a, c), name))
        cols
    | Sql_ast.Expr_item (e, alias) ->
      let name =
        match alias, e with
        | Some a, _ -> a
        | None, Sql_ast.Col (_, n) -> n
        | None, e -> Sql_print.expr_to_string e
      in
      [ `Expr (e, name) ]
    | Sql_ast.Agg_item (fn, arg, alias) ->
      let name =
        match alias with
        | Some a -> a
        | None -> (
          match fn, arg with
          | Sql_ast.Count_star, _ -> "count"
          | _, Some e ->
            String.lowercase_ascii (Sql_ast.agg_fn_name fn) ^ "_" ^ Sql_print.expr_to_string e
          | _, None -> String.lowercase_ascii (Sql_ast.agg_fn_name fn))
      in
      [ `Agg (fn, arg, name) ]
  in
  let items = List.concat_map expand s.Sql_ast.items in
  (* Disambiguate duplicate output names: qualified columns fall back to
     their alias-qualified name, anything else gets a numeric suffix. *)
  let counts = Hashtbl.create 8 in
  List.iter
    (fun item ->
      let name = match item with `Expr (_, n) | `Agg (_, _, n) -> n in
      Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name)))
    items;
  let seen = Hashtbl.create 8 in
  List.map
    (fun item ->
      let name = match item with `Expr (_, n) | `Agg (_, _, n) -> n in
      if Option.value ~default:0 (Hashtbl.find_opt counts name) <= 1 then item
      else begin
        let occurrence = 1 + Option.value ~default:0 (Hashtbl.find_opt seen name) in
        Hashtbl.replace seen name occurrence;
        let fresh =
          match item with
          | `Expr (Sql_ast.Col (Some a, n), _) -> a ^ "." ^ n
          | _ -> Printf.sprintf "%s_%d" name occurrence
        in
        match item with
        | `Expr (e, _) -> `Expr (e, fresh)
        | `Agg (fn, arg, _) -> `Agg (fn, arg, fresh)
      end)
    items

let output_names catalog s =
  List.map (function `Expr (_, n) -> n | `Agg (_, _, n) -> n) (expand_items catalog s)

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

type agg_state = {
  mutable count : int;          (* non-null inputs *)
  mutable count_all : int;      (* all rows *)
  mutable sum : Value.t;
  mutable vmin : Value.t option;
  mutable vmax : Value.t option;
}

let new_agg_state () =
  { count = 0; count_all = 0; sum = Value.Int 0; vmin = None; vmax = None }

let agg_feed st v =
  st.count_all <- st.count_all + 1;
  match v with
  | Value.Null -> ()
  | v ->
    st.count <- st.count + 1;
    (match v with
    | Value.Int _ | Value.Float _ -> st.sum <- Value.add st.sum v
    | _ -> ());
    (match st.vmin with
    | None -> st.vmin <- Some v
    | Some m -> if Value.compare v m < 0 then st.vmin <- Some v);
    match st.vmax with
    | None -> st.vmax <- Some v
    | Some m -> if Value.compare v m > 0 then st.vmax <- Some v

let agg_result fn st =
  match fn with
  | Sql_ast.Count_star -> Value.Int st.count_all
  | Sql_ast.Count -> Value.Int st.count
  | Sql_ast.Sum -> if st.count = 0 then Value.Null else st.sum
  | Sql_ast.Avg ->
    if st.count = 0 then Value.Null
    else begin
      match Value.to_float st.sum with
      | Some total -> Value.Float (total /. float_of_int st.count)
      | None -> Value.Null
    end
  | Sql_ast.Min -> Option.value ~default:Value.Null st.vmin
  | Sql_ast.Max -> Option.value ~default:Value.Null st.vmax

let has_agg items =
  List.exists (function `Agg _ -> true | `Expr _ -> false) items

let run_grouped catalog s items rows =
  let group_exprs = s.Sql_ast.group_by in
  (* Group key: evaluated group-by expressions (one group when absent). *)
  let groups : (Value.t list, Tuple.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let order : Value.t list list ref = ref [] in
  List.iter
    (fun row ->
      let key = List.map (fun e -> Sql_eval.eval row e) group_exprs in
      match Hashtbl.find_opt groups key with
      | Some bucket -> bucket := row :: !bucket
      | None ->
        Hashtbl.add groups key (ref [ row ]);
        order := key :: !order)
    rows;
  let keys = List.rev !order in
  let keys = if keys = [] && group_exprs = [] then [ [] ] else keys in
  ignore catalog;
  List.filter_map
    (fun key ->
      let bucket =
        match Hashtbl.find_opt groups key with
        | Some b -> List.rev !b
        | None -> []
      in
      let representative =
        match bucket with
        | r :: _ -> r
        | [] -> Tuple.empty
      in
      (* HAVING can mention aggregates only through aliases of the select
         list in this subset; we evaluate it over the output tuple. *)
      let out_fields =
        List.map
          (function
            | `Expr (e, name) ->
              (* Must be a group-by expression (or constant over group). *)
              (name, Sql_eval.eval representative e)
            | `Agg (fn, arg, name) ->
              let st = new_agg_state () in
              List.iter
                (fun row ->
                  let v =
                    match arg with
                    | Some e -> Sql_eval.eval row e
                    | None -> Value.Int 1
                  in
                  agg_feed st v)
                bucket;
              (name, agg_result fn st))
          items
      in
      let out = Tuple.make out_fields in
      match s.Sql_ast.having with
      | Some h ->
        (* Try the output tuple first (aliases), fall back to the
           representative row extended with outputs. *)
        let env = Tuple.concat out representative in
        if Sql_eval.eval_pred env h then Some out else None
      | None -> Some out)
    keys

(* ------------------------------------------------------------------ *)
(* Ordering, distinct, limit                                           *)
(* ------------------------------------------------------------------ *)

let order_rows (s : Sql_ast.select) pre_rows out_rows =
  match s.Sql_ast.order_by with
  | [] -> out_rows
  | specs ->
    (* Order key may reference either output names or input columns: we
       sort pairs of (pre, out) when arities match, else just outputs. *)
    let paired =
      match pre_rows with
      | Some pres when List.length pres = List.length out_rows ->
        List.combine pres out_rows
      | _ -> List.map (fun o -> (o, o)) out_rows
    in
    let key_of (pre, out) =
      List.map
        (fun { Sql_ast.order_expr; _ } ->
          try Sql_eval.eval out order_expr
          with Sql_eval.Eval_error _ -> Sql_eval.eval (Tuple.concat out pre) order_expr)
        specs
    in
    let cmp (ka, _) (kb, _) =
      let rec go ks specs =
        match ks, specs with
        | [], _ | _, [] -> 0
        | (a, b) :: rest, { Sql_ast.ascending; _ } :: srest ->
          let c = Value.compare a b in
          if c <> 0 then if ascending then c else -c else go rest srest
      in
      go (List.combine ka kb) specs
    in
    let keyed = List.map (fun pair -> (key_of pair, snd pair)) paired in
    let sorted = List.stable_sort cmp keyed in
    List.map snd sorted

let distinct_rows rows =
  (* Bucket by hash, compare with typed equality: rendered text would
     merge values of different types that print alike. *)
  let seen : (int, Tuple.t list) Hashtbl.t = Hashtbl.create 64 in
  List.filter
    (fun row ->
      let h = Tuple.hash row in
      let bucket = Option.value ~default:[] (Hashtbl.find_opt seen h) in
      if List.exists (Tuple.equal row) bucket then false
      else begin
        Hashtbl.replace seen h (row :: bucket);
        true
      end)
    rows

let limit_rows n rows =
  match n with
  | None -> rows
  | Some n ->
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    take n rows

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let run_select catalog (s : Sql_ast.select) =
  let items = expand_items catalog s in
  let base_rows =
    match Sql_plan.plan_select catalog s with
    | None -> [ Tuple.empty ]
    | Some plan -> run_plan catalog plan
  in
  if has_agg items || s.Sql_ast.group_by <> [] then begin
    let outs = run_grouped catalog s items base_rows in
    let outs = order_rows s None outs in
    let outs = if s.Sql_ast.distinct then distinct_rows outs else outs in
    limit_rows s.Sql_ast.limit outs
  end
  else begin
    let project row =
      Tuple.make
        (List.map
           (function
             | `Expr (e, name) -> (name, Sql_eval.eval row e)
             | `Agg _ -> assert false)
           items)
    in
    let outs = List.map project base_rows in
    let outs = order_rows s (Some base_rows) outs in
    let outs = if s.Sql_ast.distinct then distinct_rows outs else outs in
    limit_rows s.Sql_ast.limit outs
  end
