type token =
  | KW of string
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | SYM of string
  | EOF

exception Lex_error of int * string

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "LIMIT";
    "DISTINCT"; "AS"; "AND"; "OR"; "NOT"; "NULL"; "IS"; "IN"; "LIKE";
    "BETWEEN"; "JOIN"; "INNER"; "LEFT"; "OUTER"; "ON"; "ASC"; "DESC";
    "CREATE"; "TABLE"; "INDEX"; "UNIQUE"; "USING"; "INSERT"; "INTO";
    "VALUES"; "UPDATE"; "SET"; "DELETE"; "DROP"; "PRIMARY"; "KEY";
    "INT"; "INTEGER"; "FLOAT"; "REAL"; "DOUBLE"; "TEXT"; "VARCHAR";
    "BOOLEAN"; "BOOL"; "DATE"; "TRUE"; "FALSE"; "COUNT"; "SUM"; "AVG";
    "MIN"; "MAX"; "HASH"; "BTREE";
  ]

let keyword_set =
  let h = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace h k ()) keywords;
  h

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let len = String.length input in
  let pos = ref 0 in
  let out = ref [] in
  let peek k = if !pos + k < len then input.[!pos + k] else '\000' in
  let emit tok = out := tok :: !out in
  while !pos < len do
    let c = input.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && peek 1 = '-' then begin
      while !pos < len && input.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < len && is_ident_char input.[!pos] do
        incr pos
      done;
      let word = String.sub input start (!pos - start) in
      let upper = String.uppercase_ascii word in
      if Hashtbl.mem keyword_set upper then emit (KW upper) else emit (IDENT word)
    end
    else if is_digit c || (c = '.' && is_digit (peek 1)) then begin
      let start = !pos in
      while !pos < len && is_digit input.[!pos] do
        incr pos
      done;
      let is_float = ref false in
      if !pos < len && input.[!pos] = '.' && is_digit (peek 1) then begin
        is_float := true;
        incr pos;
        while !pos < len && is_digit input.[!pos] do
          incr pos
        done
      end;
      if !pos < len && (input.[!pos] = 'e' || input.[!pos] = 'E') then begin
        is_float := true;
        incr pos;
        if !pos < len && (input.[!pos] = '+' || input.[!pos] = '-') then incr pos;
        while !pos < len && is_digit input.[!pos] do
          incr pos
        done
      end;
      let word = String.sub input start (!pos - start) in
      if !is_float then
        match float_of_string_opt word with
        | Some f -> emit (FLOAT f)
        | None -> raise (Lex_error (start, "malformed number " ^ word))
      else
        match int_of_string_opt word with
        | Some i -> emit (INT i)
        | None -> raise (Lex_error (start, "malformed number " ^ word))
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let finished = ref false in
      while not !finished do
        if !pos >= len then raise (Lex_error (!pos, "unterminated string literal"));
        let c = input.[!pos] in
        if c = '\'' then
          if peek 1 = '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2
          end
          else begin
            incr pos;
            finished := true
          end
        else begin
          Buffer.add_char buf c;
          incr pos
        end
      done;
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !pos + 1 < len then String.sub input !pos 2 else "" in
      match two with
      | "<>" | "!=" | "<=" | ">=" ->
        emit (SYM (if two = "!=" then "<>" else two));
        pos := !pos + 2
      | _ -> (
        match c with
        | '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '=' | '<' | '>' | ';' ->
          emit (SYM (String.make 1 c));
          incr pos
        | c -> raise (Lex_error (!pos, Printf.sprintf "unexpected character %C" c)))
    end
  done;
  emit EOF;
  List.rev !out

let token_to_string = function
  | KW k -> k
  | IDENT i -> i
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | SYM s -> s
  | EOF -> "<eof>"
