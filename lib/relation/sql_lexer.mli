(** Tokenizer for the SQL subset. *)

type token =
  | KW of string        (** uppercased keyword *)
  | IDENT of string     (** identifier, case preserved *)
  | INT of int
  | FLOAT of float
  | STRING of string    (** contents of a ['...'] literal, quotes decoded *)
  | SYM of string       (** punctuation / operator: ( ) , . * = <> etc. *)
  | EOF

exception Lex_error of int * string
(** Offset and message. *)

val tokenize : string -> token list
(** Full token stream ending in [EOF].  Keywords are recognized
    case-insensitively from a fixed list; everything else alphabetic is an
    identifier.  Supports [--] line comments. *)

val token_to_string : token -> string
