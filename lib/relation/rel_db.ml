type t = {
  db_name : string;
  tables : (string, Rel_table.t) Hashtbl.t;
}

type result =
  | Rows of string list * Tuple.t list
  | Affected of int
  | Created

exception Sql_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Sql_error m)) fmt

let create ?(name = "db") () = { db_name = name; tables = Hashtbl.create 16 }

let name db = db.db_name

let table db tname = Hashtbl.find_opt db.tables tname

let table_exn db tname =
  match table db tname with
  | Some t -> t
  | None -> fail "unknown table %s" tname

let tables db =
  Hashtbl.fold (fun k _ acc -> k :: acc) db.tables [] |> List.sort String.compare

let catalog db = { Sql_plan.table_of = (fun tname -> table db tname) }

let create_table db ?primary_key schema =
  let tname = schema.Dschema.rel_name in
  if Hashtbl.mem db.tables tname then fail "table %s already exists" tname;
  Hashtbl.replace db.tables tname (Rel_table.create ?primary_key schema)

let drop_table db tname =
  if not (Hashtbl.mem db.tables tname) then fail "unknown table %s" tname;
  Hashtbl.remove db.tables tname

let insert_tuple db tname tup =
  try ignore (Rel_table.insert (table_exn db tname) tup)
  with Rel_table.Constraint_violation m -> fail "%s" m

let insert_many db tname tups = List.iter (insert_tuple db tname) tups

let total_rows db =
  Hashtbl.fold (fun _ t acc -> acc + Rel_table.row_count t) db.tables 0

let run_create_table db tname defs =
  let columns =
    List.map
      (fun d ->
        Dschema.column ~nullable:d.Sql_ast.cd_nullable d.Sql_ast.cd_name d.Sql_ast.cd_ty)
      defs
  in
  let primary_key =
    match List.filter (fun d -> d.Sql_ast.cd_primary) defs with
    | [] -> None
    | [ d ] -> Some d.Sql_ast.cd_name
    | _ :: _ :: _ -> fail "multiple PRIMARY KEY columns"
  in
  let schema =
    try Dschema.relational tname columns with Invalid_argument m -> fail "%s" m
  in
  create_table db ?primary_key schema;
  (* A primary key is always worth an index. *)
  (match primary_key with
  | Some k -> Rel_table.create_index (table_exn db tname) ~kind:Rel_table.Hash_index k
  | None -> ());
  Created

let run_insert db tname cols rows =
  let tbl = table_exn db tname in
  let schema = Rel_table.schema tbl in
  let count = ref 0 in
  List.iter
    (fun values ->
      (try
         match cols with
         | None -> ignore (Rel_table.insert_values tbl values)
         | Some names ->
           if List.length names <> List.length values then fail "INSERT arity mismatch";
           let bindings = List.combine names values in
           (* Unmentioned columns default to NULL. *)
           let tup =
             Tuple.make
               (List.map
                  (fun c ->
                    let cname = c.Dschema.col_name in
                    (cname, Option.value ~default:Value.Null (List.assoc_opt cname bindings)))
                  schema.Dschema.columns)
           in
           ignore (Rel_table.insert tbl tup)
       with Rel_table.Constraint_violation m -> fail "%s" m);
      incr count)
    rows;
  Affected !count

let run_update db tname assigns where =
  let tbl = table_exn db tname in
  let pred tup = match where with None -> true | Some w -> Sql_eval.eval_pred tup w in
  let apply tup =
    List.fold_left
      (fun acc (cname, e) -> Tuple.set acc cname (Sql_eval.eval tup e))
      tup assigns
  in
  try Affected (Rel_table.update_where tbl pred apply)
  with
  | Rel_table.Constraint_violation m -> fail "%s" m
  | Sql_eval.Eval_error m -> fail "%s" m

let run_delete db tname where =
  let tbl = table_exn db tname in
  let pred tup = match where with None -> true | Some w -> Sql_eval.eval_pred tup w in
  try Affected (Rel_table.delete_where tbl pred)
  with Sql_eval.Eval_error m -> fail "%s" m

let run_select db select =
  try
    let names = Sql_exec.output_names (catalog db) select in
    let rows = Sql_exec.run_select (catalog db) select in
    Rows (names, rows)
  with
  | Sql_exec.Exec_error m -> fail "%s" m
  | Sql_eval.Eval_error m -> fail "%s" m
  | Sql_plan.Plan_error m -> fail "%s" m

let exec db text =
  let stmt =
    try Sql_parser.parse_exn text with Sql_parser.Parse_error m -> fail "%s" m
  in
  match stmt with
  | Sql_ast.Select s -> run_select db s
  | Sql_ast.Create_table (tname, defs) -> run_create_table db tname defs
  | Sql_ast.Create_index { index_table; index_column; btree; _ } ->
    let tbl = table_exn db index_table in
    let kind = if btree then Rel_table.Btree_index else Rel_table.Hash_index in
    (try Rel_table.create_index tbl ~kind index_column
     with Invalid_argument m -> fail "%s" m);
    Created
  | Sql_ast.Insert (tname, cols, rows) -> run_insert db tname cols rows
  | Sql_ast.Update (tname, assigns, where) -> run_update db tname assigns where
  | Sql_ast.Delete (tname, where) -> run_delete db tname where
  | Sql_ast.Drop_table tname ->
    drop_table db tname;
    Created

let query db text =
  match exec db text with
  | Rows (_, rows) -> rows
  | Affected _ | Created -> fail "expected a SELECT statement"

let query_names db text =
  match exec db text with
  | Rows (names, rows) -> (names, rows)
  | Affected _ | Created -> fail "expected a SELECT statement"

let explain db text =
  let select =
    try Sql_parser.parse_select_exn text with Sql_parser.Parse_error m -> fail "%s" m
  in
  match Sql_plan.plan_select (catalog db) select with
  | None -> "CONST\n"
  | Some plan -> Sql_plan.explain plan
  | exception Sql_plan.Plan_error m -> fail "%s" m
