(** Execution of SELECT statements over a catalog of tables.

    Joined tuples carry alias-qualified field names ([a.col]); the final
    projection renames to bare column names or aliases.  Grouping,
    HAVING, DISTINCT, ORDER BY and LIMIT follow standard SQL semantics
    (NULLs sort first; UNKNOWN predicates drop rows). *)

exception Exec_error of string

val run_plan : Sql_plan.catalog -> Sql_plan.plan -> Tuple.t list
(** Execute just the FROM/WHERE plan; fields are alias-qualified. *)

val run_select : Sql_plan.catalog -> Sql_ast.select -> Tuple.t list
(** Full SELECT pipeline. *)

val output_names : Sql_plan.catalog -> Sql_ast.select -> string list
(** The column names [run_select] will produce, in order. *)
